(* Persistent digest-keyed verdict cache: an append-only JSON-lines log
   with an in-memory index.

   The router owns one of these per fleet. Every decisive verdict that
   flows back through the router is appended as one line

     {"key":"<digest>|<method>","verdict":"valid","witness":null,
      "solve_ms":12.5}

   and indexed; a later request for the same key is answered from the
   index without touching a backend — across router restarts, because the
   log is re-read on open. The same entries warm each backend's in-memory
   LRU when the supervisor (re)starts it, routed by ring affinity.

   Crash safety is the append-only kind: an entry is one [output_string]
   of one line followed by a flush, the only mutation is appending, and
   the loader ignores any line that does not parse — a torn final line
   from a crash mid-append costs exactly that entry. There is exactly one
   writer (the router's single thread), so no locking and no interleaved
   lines. [put] is last-write-wins on reload but skips keys already
   indexed, so re-serving a cached verdict never grows the log. *)

module Json = Sepsat_serve.Json
module Protocol = Sepsat_serve.Protocol

type entry = {
  d_verdict : Protocol.verdict;  (* decisive only; never [Unknown] *)
  d_witness : string option;
  d_solve_ms : float;
}

type t = {
  path : string;
  index : (string, entry) Hashtbl.t;
  mutable oc : out_channel option;  (* opened lazily on first append *)
  mutable loaded : int;  (* entries recovered from disk at open *)
  mutable appended : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let entry_to_line key e =
  Json.to_string
    (Obj
       [
         ("key", Str key);
         ("verdict", Str (Protocol.verdict_to_string e.d_verdict));
         ( "witness",
           match e.d_witness with Some w -> Json.Str w | None -> Json.Null );
         ("solve_ms", Num e.d_solve_ms);
       ])

let entry_of_line line =
  match Json.parse line with
  | Error _ -> None
  | Ok j -> (
    match (Json.mem_str "key" j, Json.mem_str "verdict" j) with
    | Some key, Some v -> (
      let verdict =
        match v with
        | "valid" -> Some Protocol.Valid
        | "invalid" -> Some Protocol.Invalid
        | _ -> None  (* unknown / garbage: not a decisive entry *)
      in
      match verdict with
      | None -> None
      | Some d_verdict ->
        Some
          ( key,
            {
              d_verdict;
              d_witness = Json.mem_str "witness" j;
              d_solve_ms =
                Option.value (Json.mem_num "solve_ms" j) ~default:0.;
            } ))
    | _ -> None)

let load t =
  match open_in_bin t.path with
  | exception Sys_error _ -> ()
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            match entry_of_line (input_line ic) with
            | Some (key, e) ->
              (* Last write wins, mirroring append order. *)
              if not (Hashtbl.mem t.index key) then t.loaded <- t.loaded + 1;
              Hashtbl.replace t.index key e
            | None -> ()  (* torn or foreign line: skip, keep loading *)
          done
        with End_of_file -> ())

let open_ ~path =
  let t =
    {
      path;
      index = Hashtbl.create 256;
      oc = None;
      loaded = 0;
      appended = 0;
      hits = Atomic.make 0;
      misses = Atomic.make 0;
    }
  in
  load t;
  t

let find t key =
  match Hashtbl.find_opt t.index key with
  | Some e ->
    Atomic.incr t.hits;
    Some e
  | None ->
    Atomic.incr t.misses;
    None

(* If a crash tore the final line mid-append, the log ends without a
   newline; appending straight after would glue the next record onto the
   torn fragment and lose it too. Start the writer on a fresh line. *)
let ends_with_open_line path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        len > 0
        && begin
             seek_in ic (len - 1);
             input_char ic <> '\n'
           end)

let out_channel t =
  match t.oc with
  | Some oc -> oc
  | None ->
    let torn = ends_with_open_line t.path in
    let oc =
      open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 t.path
    in
    if torn then output_char oc '\n';
    t.oc <- Some oc;
    oc

let put t key e =
  if not (Hashtbl.mem t.index key) then begin
    Hashtbl.replace t.index key e;
    let oc = out_channel t in
    output_string oc (entry_to_line key e);
    output_char oc '\n';
    flush oc;
    t.appended <- t.appended + 1
  end

let iter t f = Hashtbl.iter f t.index

let size t = Hashtbl.length t.index

type stats = {
  s_size : int;
  s_loaded : int;
  s_appended : int;
  s_hits : int;
  s_misses : int;
}

let stats t =
  {
    s_size = Hashtbl.length t.index;
    s_loaded = t.loaded;
    s_appended = t.appended;
    s_hits = Atomic.get t.hits;
    s_misses = Atomic.get t.misses;
  }

let sync t =
  match t.oc with
  | None -> ()
  | Some oc -> (
    flush oc;
    try Unix.fsync (Unix.descr_of_out_channel oc)
    with Unix.Unix_error _ -> ())

let close t =
  sync t;
  (match t.oc with None -> () | Some oc -> close_out_noerr oc);
  t.oc <- None
