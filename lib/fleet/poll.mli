(** Poll-style readiness multiplexing for the router's event loop: a
    registry of file descriptors with read/write interest, one blocking
    {!wait} returning per-fd readiness. Backed by [Unix.select] — the
    portable readiness API in the stdlib — behind a poll(2)-shaped
    interface, so the loop code reads like an epoll/poll loop and the
    syscall is an implementation detail. *)

type t

type ready = {
  r_fd : Unix.file_descr;
  r_readable : bool;
  r_writable : bool;
}

val create : unit -> t

val set : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Register or update interest; [read:false ~write:false] deregisters. *)

val remove : t -> Unix.file_descr -> unit

val registered : t -> int

val wait : t -> timeout_s:float -> ready list
(** Block until at least one registered fd is ready or the timeout
    elapses; [[]] on timeout or EINTR. Order is unspecified. *)
