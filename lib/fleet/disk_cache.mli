(** Persistent verdict cache: a digest-keyed append-only JSON-lines log
    plus an in-memory index.

    Keys are the serving engine's cache keys
    ([Ast.digest ^ "|" ^ method]); entries are decisive verdicts only —
    an [unknown] is a budget artifact and must never outlive a restart.
    One writer (the router thread) appends one flushed line per new key;
    the loader skips unparseable lines, so a crash mid-append costs at
    most the torn final entry. Survives restarts by construction: {!open_}
    re-reads the log and {!stats} reports how many entries were
    recovered. *)

module Protocol = Sepsat_serve.Protocol

type entry = {
  d_verdict : Protocol.verdict;  (** [Valid] or [Invalid], never [Unknown] *)
  d_witness : string option;  (** witness digest, [Invalid] only *)
  d_solve_ms : float;  (** cost of the solve that produced the verdict *)
}

type t

val open_ : path:string -> t
(** Load the log at [path] (a missing file is an empty cache); the file is
    created on the first {!put}. *)

val find : t -> string -> entry option
(** Index lookup; counts a hit or miss. *)

val put : t -> string -> entry -> unit
(** Append and index a new entry. A key already present is ignored —
    verdicts are immutable facts, so first-write-wins keeps the log from
    growing on re-served hits. *)

val iter : t -> (string -> entry -> unit) -> unit

val size : t -> int

type stats = {
  s_size : int;
  s_loaded : int;  (** entries recovered from disk at {!open_} *)
  s_appended : int;  (** entries appended since {!open_} *)
  s_hits : int;
  s_misses : int;
}

val stats : t -> stats

val sync : t -> unit
(** Flush and fsync the log. *)

val close : t -> unit
