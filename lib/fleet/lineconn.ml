(* One non-blocking JSON-lines peer (client or backend) of the router.

   The thread-per-connection server blocks in [input_line]; here a single
   thread owns thousands of connections, so every read and write must take
   only what the kernel has ready and bank the rest:

   - inbound bytes accumulate in [inbuf] until a '\n' completes a protocol
     line (partial lines survive across any number of reads);
   - outbound lines queue in [outq]; [on_writable] sends as much as the
     socket accepts and remembers the offset into the head chunk, so a
     slow client stalls only its own queue, never the loop.

   The router consults [wants_write] when rebuilding poll interest: write
   interest exists only while there is something to flush, which is what
   keeps an idle connection costing one registry slot and nothing else. *)

type t = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable outq : string list;  (* reversed tail; see enqueue *)
  mutable outhead : string;  (* chunk currently being written *)
  mutable outoff : int;  (* bytes of outhead already written *)
  mutable closed : bool;
}

let read_chunk = 65536

let create fd =
  Unix.set_nonblock fd;
  {
    fd;
    inbuf = Buffer.create 256;
    outq = [];
    outhead = "";
    outoff = 0;
    closed = false;
  }

let fd t = t.fd

let wants_write t =
  (not t.closed) && (t.outoff < String.length t.outhead || t.outq <> [])

(* Split complete lines out of the inbound buffer; the trailing partial
   line (if any) stays buffered. *)
let take_lines t =
  let s = Buffer.contents t.inbuf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some last ->
    Buffer.clear t.inbuf;
    Buffer.add_substring t.inbuf s (last + 1) (String.length s - last - 1);
    String.split_on_char '\n' (String.sub s 0 last)
    |> List.filter (fun l -> String.trim l <> "")

let on_readable t =
  if t.closed then `Closed
  else begin
    let chunk = Bytes.create read_chunk in
    let rec drain () =
      match Unix.read t.fd chunk 0 read_chunk with
      | 0 -> `Eof
      | n ->
        Buffer.add_subbytes t.inbuf chunk 0 n;
        if n = read_chunk then drain () else `More
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        `More
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      | exception Unix.Unix_error (_, _, _) -> `Eof
    in
    let status = drain () in
    let lines = take_lines t in
    match status with
    | `Eof ->
      (* Deliver what arrived before the close: a peer may send its last
         request and shut down its write side in one packet. *)
      if lines = [] then `Closed else `Lines lines
    | `More -> if lines = [] then `Nothing else `Lines lines
  end

let enqueue t line =
  if not t.closed then
    (* Reversed accumulation keeps enqueue O(1); [on_writable] restores
       order when it refills the head. *)
    t.outq <- (line ^ "\n") :: t.outq

let rec on_writable t =
  if t.closed then `Closed
  else if t.outoff >= String.length t.outhead then
    match List.rev t.outq with
    | [] -> `Ok
    | chunks ->
      t.outhead <- String.concat "" chunks;
      t.outoff <- 0;
      t.outq <- [];
      on_writable t
  else
    let len = String.length t.outhead - t.outoff in
    match
      Unix.write_substring t.fd t.outhead t.outoff len
    with
    | n ->
      t.outoff <- t.outoff + n;
      if n = len then on_writable t else `Ok
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      `Ok
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> on_writable t
    | exception Unix.Unix_error (_, _, _) -> `Closed

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
