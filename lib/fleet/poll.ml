(* Readiness multiplexing for the router's single-threaded event loop.

   The interface is poll(2)-shaped — register an fd with a read/write
   interest mask, wait, get back per-fd revents — and the implementation
   rides on [Unix.select], the one readiness API the OCaml stdlib ships
   everywhere. The fleet's fd population (thousands of clients is the
   design target, but a router instance stays well under select's
   FD_SETSIZE on Linux where fds are cheap) makes select's O(n) scan
   acceptable: the loop already walks every ready fd, and the interest
   sets are rebuilt from the registry on each wait, which is what keeps
   the loop allocation-light and the registry the single source of
   truth. *)

type interest = { mutable want_read : bool; mutable want_write : bool }

type t = { reg : (Unix.file_descr, interest) Hashtbl.t }

type ready = {
  r_fd : Unix.file_descr;
  r_readable : bool;
  r_writable : bool;
}

let create () = { reg = Hashtbl.create 64 }

let set t fd ~read ~write =
  if not (read || write) then Hashtbl.remove t.reg fd
  else
    match Hashtbl.find_opt t.reg fd with
    | Some i ->
      i.want_read <- read;
      i.want_write <- write
    | None -> Hashtbl.replace t.reg fd { want_read = read; want_write = write }

let remove t fd = Hashtbl.remove t.reg fd

let registered t = Hashtbl.length t.reg

let wait t ~timeout_s =
  let rd = ref [] and wr = ref [] in
  Hashtbl.iter
    (fun fd i ->
      if i.want_read then rd := fd :: !rd;
      if i.want_write then wr := fd :: !wr)
    t.reg;
  if !rd = [] && !wr = [] then begin
    (* select([],[],[],t) is a portable sleep; without it an idle router
       would spin. *)
    if timeout_s > 0. then Unix.sleepf timeout_s;
    []
  end
  else
    match Unix.select !rd !wr [] timeout_s with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
    | readable, writable, _ ->
      let tbl = Hashtbl.create (List.length readable + List.length writable) in
      List.iter
        (fun fd ->
          Hashtbl.replace tbl fd
            { r_fd = fd; r_readable = true; r_writable = false })
        readable;
      List.iter
        (fun fd ->
          match Hashtbl.find_opt tbl fd with
          | Some r -> Hashtbl.replace tbl fd { r with r_writable = true }
          | None ->
            Hashtbl.replace tbl fd
              { r_fd = fd; r_readable = false; r_writable = true })
        writable;
      Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
