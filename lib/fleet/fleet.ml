(* Assembly of the fleet: compute per-backend resources, build the
   supervisor config that spawns `sufdec serve` shards, and hand both to
   the router. This is the whole of `sufdec fleet` behind the CLI. *)

module Obs = Sepsat_obs.Obs

type config = {
  f_socket : string;
  f_backends : int;
  f_dir : string option;  (* runtime dir; default <socket>.d *)
  f_cache_dir : string option;  (* persistent cache dir; None = no disk tier *)
  f_workers : int option;  (* per backend; default divides the cores *)
  f_queue : int;
  f_cache : int;  (* per-backend LRU capacity *)
  f_timeout_s : float;
  f_warm_limit : int;
  f_exe : string option;  (* backend executable; default this binary *)
}

let default ~socket ~backends =
  {
    f_socket = socket;
    f_backends = backends;
    f_dir = None;
    f_cache_dir = None;
    f_workers = None;
    f_queue = 64;
    f_cache = 1024;
    f_timeout_s = 30.;
    f_warm_limit = 4096;
    f_exe = None;
  }

let run cfg =
  if cfg.f_backends < 1 then invalid_arg "Fleet.run: backends < 1";
  let dir = Option.value cfg.f_dir ~default:(cfg.f_socket ^ ".d") in
  let exe = Option.value cfg.f_exe ~default:Sys.executable_name in
  (* Backends share the machine: split the cores between them rather than
     letting each claim cores-1 workers and thrash. *)
  let workers =
    match cfg.f_workers with
    | Some w -> max 1 w
    | None ->
      let cores = Domain.recommended_domain_count () in
      max 1 ((cores - 1) / cfg.f_backends)
  in
  let cache_path =
    Option.map
      (fun d ->
        (try Unix.mkdir d 0o755 with Unix.Unix_error _ -> ());
        Filename.concat d "verdicts.jsonl")
      cfg.f_cache_dir
  in
  let args i socket =
    [
      "serve";
      "--socket";
      socket;
      "--instance";
      string_of_int i;
      "--workers";
      string_of_int workers;
      "--queue";
      string_of_int cfg.f_queue;
      "--cache";
      string_of_int cfg.f_cache;
      "-t";
      string_of_float cfg.f_timeout_s;
    ]
  in
  let sup_cfg =
    Supervisor.default_config ~exe ~args ~n_backends:cfg.f_backends ~dir
  in
  Obs.log Obs.Info "fleet: %d backends x %d workers, dir %s%s" cfg.f_backends
    workers dir
    (match cache_path with
    | Some p -> Printf.sprintf ", cache %s" p
    | None -> "");
  let sup = Supervisor.start sup_cfg in
  let rcfg =
    {
      (Router.default_config ~socket:cfg.f_socket ?cache_path ()) with
      Router.rc_warm_limit = cfg.f_warm_limit;
    }
  in
  Router.run rcfg sup
