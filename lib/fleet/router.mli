(** The fleet front end: a single-threaded poll loop that accepts the
    JSON-lines protocol, consistent-hashes solves across the supervised
    backends (routing on {!Sepsat_suf.Ast.digest} for cache affinity),
    answers repeat formulas from the persistent {!Disk_cache}, fans
    [stats]/[metrics]/[dump] out to every live backend and merges the
    replies, and re-dispatches in-flight solves when a backend dies — a
    SIGKILL mid-request costs latency, never an answer.

    Client-visible protocol: identical to a single server (pipelined,
    id-echoed), plus [warm] to pre-seed the persistent cache. [shutdown]
    drains in-flight work, propagates fleet-wide, reaps every backend, and
    only then answers [bye]. *)

type config = {
  rc_socket : string;  (** the fleet's public Unix-domain socket *)
  rc_cache_path : string option;
      (** persistent verdict log; [None] disables the disk tier *)
  rc_warm_limit : int;  (** max entries replayed per backend (re)start *)
  rc_poll_s : float;  (** poll timeout — the supervision cadence *)
  rc_max_attempts : int;  (** dispatch attempts per solve across failovers *)
}

val default_config :
  socket:string -> ?cache_path:string -> unit -> config
(** 4096-entry warm replay, 0.2 s poll, 3 dispatch attempts. *)

val run : config -> Supervisor.t -> unit
(** Bind the socket and serve until a [shutdown] op or {!request_stop}
    (also wired to SIGTERM/SIGINT for the duration). Owns the supervisor:
    ticks it every loop iteration and stops it — reaping every backend —
    before returning. *)

val request_stop : unit -> unit
(** Ask a running {!run} to drain and exit, from a signal handler or
    another thread. *)
