(* Backend process supervision: spawn N `sufdec serve` children, health-check
   them into service, reap crashes, restart with exponential backoff, and
   take the whole set down with no orphans.

   The supervisor is driven, not threaded: the router calls [tick] once per
   poll-loop iteration and reacts to the returned events. Everything in a
   tick is non-blocking or tightly bounded — child reaping is
   [waitpid WNOHANG], a health probe is one connect+ping with 1 s socket
   timeouts, and a probe happens at most once per tick per starting
   backend — so supervision never stalls request traffic.

   Backend lifecycle:

     Backoff --(timer expired: spawn)--> Starting
     Starting --(ping answered)--> Up            [event: Up]
     Starting --(health_timeout_s elapsed)--> killed, Backoff
     any --(child reaped)--> Backoff             [event: Down]

   The backoff delay doubles per consecutive failure (capped), and the
   failure count resets only after a backend has stayed up for
   [stable_s] — a backend that crashes right after passing its health
   check keeps escalating instead of hot-looping. *)

module Obs = Sepsat_obs.Obs

type config = {
  exe : string;  (* the sufdec binary; children are [exe :: args i sock] *)
  args : int -> string -> string list;  (* backend index, socket path -> argv tail *)
  n_backends : int;
  dir : string;  (* runtime dir; backend i listens on dir/backend-<i>.sock *)
  health_timeout_s : float;
  backoff_base_s : float;
  backoff_cap_s : float;
}

let default_config ~exe ~args ~n_backends ~dir =
  {
    exe;
    args;
    n_backends;
    dir;
    health_timeout_s = 10.;
    backoff_base_s = 0.2;
    backoff_cap_s = 5.;
  }

type state =
  | Starting of float  (* spawn wall time *)
  | Up of float  (* wall time the health check passed *)
  | Backoff of float  (* wall time the next spawn is due *)
  | Stopped

type backend = {
  bk_index : int;
  bk_socket : string;
  mutable bk_pid : int;  (* 0 = no live child *)
  mutable bk_state : state;
  mutable bk_failures : int;  (* consecutive, drives the backoff *)
  mutable bk_spawns : int;  (* lifetime spawn count *)
}

type t = {
  cfg : config;
  backends : backend array;
  devnull : Unix.file_descr;
  mutable stopping : bool;
}

type event = Became_up of int | Went_down of int

(* A backend must survive this long for its failure streak to reset. *)
let stable_s = 10.

let socket_path t i = t.backends.(i).bk_socket

let n t = t.cfg.n_backends

let is_up t i = match t.backends.(i).bk_state with Up _ -> true | _ -> false

let pid t i =
  match t.backends.(i).bk_pid with 0 -> None | p -> Some p

let failures t i = t.backends.(i).bk_failures

let spawns t i = t.backends.(i).bk_spawns

let backoff_delay cfg failures =
  let d = cfg.backoff_base_s *. (2. ** float_of_int (max 0 (failures - 1))) in
  Float.min cfg.backoff_cap_s d

let spawn t bk =
  (try Sys.remove bk.bk_socket with Sys_error _ -> ());
  let argv =
    Array.of_list (t.cfg.exe :: t.cfg.args bk.bk_index bk.bk_socket)
  in
  let pid =
    Unix.create_process t.cfg.exe argv t.devnull Unix.stdout Unix.stderr
  in
  bk.bk_pid <- pid;
  bk.bk_spawns <- bk.bk_spawns + 1;
  bk.bk_state <- Starting (Unix.gettimeofday ());
  Obs.log Obs.Info "fleet: backend %d spawned (pid %d, %s)" bk.bk_index pid
    bk.bk_socket

(* One connect+ping round trip with 1 s socket timeouts: cheap enough to
   run once per tick, bounded enough never to wedge the loop. *)
let health_ping path =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> false
  | fd -> (
    Unix.set_close_on_exec fd;
    let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | exception Unix.Unix_error _ ->
      finally ();
      false
    | () -> (
      try
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0;
        let line = "{\"op\":\"ping\",\"id\":\"hc\"}\n" in
        let _ =
          Unix.write_substring fd line 0 (String.length line)
        in
        let buf = Bytes.create 256 in
        let reply = Buffer.create 64 in
        let rec read_line () =
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 -> false
          | n ->
            Buffer.add_subbytes reply buf 0 n;
            if String.contains (Buffer.contents reply) '\n' then true
            else read_line ()
        in
        let got = read_line () in
        finally ();
        got
        &&
        (* Any one-line answer to a ping proves the accept loop and the
           protocol thread are alive; pong is what a healthy server says. *)
        let s = Buffer.contents reply in
        let has_pong =
          let pat = "pong" in
          let n = String.length s and m = String.length pat in
          let rec find i = i + m <= n && (String.sub s i m = pat || find (i + 1)) in
          find 0
        in
        has_pong
      with Unix.Unix_error _ | Sys_error _ ->
        finally ();
        false))

let start cfg =
  if cfg.n_backends < 1 then invalid_arg "Supervisor.start: n_backends < 1";
  (try Unix.mkdir cfg.dir 0o755 with Unix.Unix_error _ -> ());
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  Unix.set_close_on_exec devnull;
  let t =
    {
      cfg;
      backends =
        Array.init cfg.n_backends (fun i ->
            {
              bk_index = i;
              bk_socket = Filename.concat cfg.dir (Printf.sprintf "backend-%d.sock" i);
              bk_pid = 0;
              bk_state = Backoff 0.;
              bk_failures = 0;
              bk_spawns = 0;
            });
      devnull;
      stopping = false;
    }
  in
  Array.iter (fun bk -> spawn t bk) t.backends;
  t

(* The router saw this backend's connection die before we reaped anything:
   force a fresh health check. If the child is really dead the next tick's
   waitpid turns this into a Went_down + backoff; if it is alive (it closed
   one connection, not the listener), the probe re-proves it Up. *)
let note_lost t i =
  let bk = t.backends.(i) in
  match bk.bk_state with
  | Up _ -> bk.bk_state <- Starting (Unix.gettimeofday ())
  | Starting _ | Backoff _ | Stopped -> ()

let tick t =
  if t.stopping then []
  else begin
    let now = Unix.gettimeofday () in
    let events = ref [] in
    Array.iter
      (fun bk ->
        (* Reap: a dead child trumps whatever state we thought it was in. *)
        (if bk.bk_pid > 0 then
           match Unix.waitpid [ Unix.WNOHANG ] bk.bk_pid with
           | 0, _ -> ()
           | _, _ | (exception Unix.Unix_error _) ->
             let was_up = match bk.bk_state with Up since -> Some since | _ -> None in
             bk.bk_pid <- 0;
             bk.bk_failures <-
               (match was_up with
               | Some since when now -. since >= stable_s -> 1
               | _ -> bk.bk_failures + 1);
             let delay = backoff_delay t.cfg bk.bk_failures in
             bk.bk_state <- Backoff (now +. delay);
             Obs.log Obs.Info
               "fleet: backend %d exited; restart in %.1fs (failure %d)"
               bk.bk_index delay bk.bk_failures;
             if was_up <> None then events := Went_down bk.bk_index :: !events);
        match bk.bk_state with
        | Backoff due when now >= due -> spawn t bk
        | Starting since ->
          if health_ping bk.bk_socket then begin
            bk.bk_state <- Up now;
            Obs.log Obs.Info "fleet: backend %d up" bk.bk_index;
            events := Became_up bk.bk_index :: !events
          end
          else if now -. since > t.cfg.health_timeout_s then begin
            (* Wedged before ever answering: kill and escalate. *)
            (if bk.bk_pid > 0 then
               try Unix.kill bk.bk_pid Sys.sigkill with Unix.Unix_error _ -> ());
            (if bk.bk_pid > 0 then
               try ignore (Unix.waitpid [] bk.bk_pid) with Unix.Unix_error _ -> ());
            bk.bk_pid <- 0;
            bk.bk_failures <- bk.bk_failures + 1;
            bk.bk_state <- Backoff (now +. backoff_delay t.cfg bk.bk_failures);
            Obs.log Obs.Info "fleet: backend %d failed health check" bk.bk_index
          end
        | Backoff _ | Up _ | Stopped -> ())
      t.backends;
    List.rev !events
  end

let stopping t = t.stopping

(* Graceful stop. The router has already propagated the shutdown op over
   each live backend connection, so most children exit on their own within
   the grace period; whoever remains gets SIGTERM, then SIGKILL. Every
   child is waited on — the fleet never leaves orphans. *)
let stop ?(grace_s = 5.) t =
  t.stopping <- true;
  let deadline = Unix.gettimeofday () +. grace_s in
  let reap bk =
    if bk.bk_pid > 0 then
      match Unix.waitpid [ Unix.WNOHANG ] bk.bk_pid with
      | 0, _ -> false
      | _ -> (
        bk.bk_pid <- 0;
        bk.bk_state <- Stopped;
        true)
      | exception Unix.Unix_error _ ->
        bk.bk_pid <- 0;
        bk.bk_state <- Stopped;
        true
    else begin
      bk.bk_state <- Stopped;
      true
    end
  in
  let all_done () = Array.for_all reap t.backends in
  let rec wait_until escalate =
    if all_done () then ()
    else if Unix.gettimeofday () >= deadline then escalate ()
    else begin
      Unix.sleepf 0.05;
      wait_until escalate
    end
  in
  wait_until (fun () ->
      Array.iter
        (fun bk ->
          if bk.bk_pid > 0 then
            try Unix.kill bk.bk_pid Sys.sigterm with Unix.Unix_error _ -> ())
        t.backends;
      let term_deadline = Unix.gettimeofday () +. 2. in
      let rec wait_term () =
        if all_done () then ()
        else if Unix.gettimeofday () >= term_deadline then begin
          Array.iter
            (fun bk ->
              if bk.bk_pid > 0 then begin
                (try Unix.kill bk.bk_pid Sys.sigkill with Unix.Unix_error _ -> ());
                (try ignore (Unix.waitpid [] bk.bk_pid)
                 with Unix.Unix_error _ -> ());
                bk.bk_pid <- 0;
                bk.bk_state <- Stopped
              end)
            t.backends
        end
        else begin
          Unix.sleepf 0.05;
          wait_term ()
        end
      in
      wait_term ());
  Array.iter
    (fun bk -> try Sys.remove bk.bk_socket with Sys_error _ -> ())
    t.backends;
  try Unix.close t.devnull with Unix.Unix_error _ -> ()
