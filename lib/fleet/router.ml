(* The fleet front end: one single-threaded poll loop multiplexing every
   client connection, every backend connection, and the listener.

   Request path: a client's JSON-lines request is parsed once, here. A
   solve is parsed into a fresh AST context to compute the structural
   [Ast.digest] — the routing key. The digest first consults the
   persistent disk cache (a hit answers on the spot, surviving restarts);
   a miss is forwarded to the backend the consistent-hash ring names for
   that digest, with the request id rewritten to a router-minted wire id
   so pipelined replies from many clients can be demultiplexed without
   any per-request thread. Replies rewrite the id back, feed the disk
   cache, and go out through the client's buffered connection.

   Failure path: a backend that dies (reaped by the supervisor, or its
   connection EOFs under us) has its in-flight solves re-dispatched along
   the ring's failover order — any backend computes the same verdict, so
   a SIGKILL mid-request costs latency, never an answer. When no live
   backend remains, the router sheds with [busy]; clients retry with
   backoff (see [Session.retrying]).

   Fan-out path: [stats], [metrics] and [dump] go to every live backend;
   the replies merge into one — stats aggregate into an engine-shaped
   object (so `sufdec top` reads a fleet like a single server) with a
   per-backend breakdown, metrics expositions concatenate with their
   metadata lines deduplicated (backends carry distinct [backend="i"]
   labels), dumps nest per-backend flight documents in one JSON value.

   Shutdown ordering: a [shutdown] op (or SIGTERM/SIGINT) drains first —
   the listener stops accepting, new solves shed busy, in-flight requests
   finish and flush — then the shutdown op propagates to every backend,
   the supervisor reaps every child, and only then does the requester get
   its [bye]. Exit leaves no orphan processes and no socket files. *)

module Ast = Sepsat_suf.Ast
module Parse = Sepsat_suf.Parse
module Smtlib = Sepsat_suf.Smtlib
module Protocol = Sepsat_serve.Protocol
module Json = Sepsat_serve.Json
module Obs = Sepsat_obs.Obs
module Metrics = Sepsat_obs.Metrics
module Prom = Sepsat_obs.Prom
module Window = Sepsat_obs.Window
module Flight = Sepsat_obs.Flight
module Clock = Sepsat_obs.Clock

type config = {
  rc_socket : string;
  rc_cache_path : string option;  (* persistent verdict log; None = off *)
  rc_warm_limit : int;  (* max warm entries replayed per backend start *)
  rc_poll_s : float;  (* poll timeout = supervision cadence *)
  rc_max_attempts : int;  (* dispatch attempts per solve across failovers *)
}

let default_config ~socket ?cache_path () =
  {
    rc_socket = socket;
    rc_cache_path = cache_path;
    rc_warm_limit = 4096;
    rc_poll_s = 0.2;
    rc_max_attempts = 3;
  }

(* -- Requests in flight ----------------------------------------------------- *)

type psolve = {
  ps_client : int;
  ps_orig_id : string;
  ps_digest : string;  (* ring key *)
  ps_key : string;  (* digest|method — the cache key *)
  ps_rq : Protocol.solve_req;  (* carries the minted trace context *)
  ps_tried : int list;  (* backends this solve was already sent to *)
  ps_t0 : float;
  ps_rid : string;  (* fleet-wide trace rid, minted once per request *)
  ps_recv_wall : float;  (* request arrival, Clock.pair *)
  ps_recv_mono : float;
  ps_parsed_mono : float;  (* after parse + digest *)
  ps_sent_mono : float;  (* last dispatch to a backend; re-stamped on failover *)
}

type fan = {
  fan_client : int;
  fan_orig_id : string;
  fan_op : [ `Stats | `Metrics | `Dump ];
  mutable fan_waiting : int;
  mutable fan_parts : (int * Protocol.reply option) list;
      (* backend index, its reply; None = backend lost mid-fan *)
}

type kind = K_solve of psolve | K_fan of fan

type pending = { pd_backend : int; pd_kind : kind }

type client = { cl_id : int; cl_conn : Lineconn.t }

(* Per-backend hop-time accumulator (summed ms + request count), the
   source of the per-backend hop columns in merged stats / `sufdec top`.
   Plain mutable fields: the router is single-threaded. *)
type hop_acc = {
  mutable ha_count : int;
  mutable ha_parse : float;
  mutable ha_queue : float;
  mutable ha_wire : float;
  mutable ha_shard_queue : float;
  mutable ha_solve : float;
  mutable ha_reply : float;
}

let fresh_hop_acc () =
  {
    ha_count = 0;
    ha_parse = 0.;
    ha_queue = 0.;
    ha_wire = 0.;
    ha_shard_queue = 0.;
    ha_solve = 0.;
    ha_reply = 0.;
  }

type t = {
  cfg : config;
  sup : Supervisor.t;
  store : Disk_cache.t option;
  ring : Ring.t;  (* static full membership; liveness filters at dispatch *)
  poll : Poll.t;
  listen_fd : Unix.file_descr;
  clients : (int, client) Hashtbl.t;
  by_fd : (Unix.file_descr, [ `Client of int | `Backend of int ]) Hashtbl.t;
  bconns : Lineconn.t option array;
  pending : (string, pending) Hashtbl.t;
  mutable next_client : int;
  mutable next_wire : int;
  mutable next_rid : int;
  hops : hop_acc array;  (* per backend, indexed like bconns *)
  lat : Window.t;
  mutable submitted : int;
  mutable completed : int;
  mutable busy : int;
  mutable errors : int;
  mutable redispatched : int;
  mutable disk_writes : int;
  mutable draining : bool;
  mutable drain_requester : (int * string) option;
  mutable finished : bool;
  started_at : float;
}

let m_requests = lazy (Metrics.counter "fleet.requests")
let m_busy = lazy (Metrics.counter "fleet.busy")
let m_errors = lazy (Metrics.counter "fleet.errors")
let m_disk_hits = lazy (Metrics.counter "fleet.disk.hits")
let m_redispatch = lazy (Metrics.counter "fleet.redispatch")
let m_clients = lazy (Metrics.gauge "fleet.clients")

(* The six-hop latency decomposition of a fleet request, as histograms
   (seconds, rid exemplars): where did the time go, across processes. *)
let m_hop_parse = lazy (Metrics.histogram "fleet.hop.router_parse_s")
let m_hop_queue = lazy (Metrics.histogram "fleet.hop.router_queue_s")
let m_hop_wire = lazy (Metrics.histogram "fleet.hop.wire_s")
let m_hop_shard_queue = lazy (Metrics.histogram "fleet.hop.shard_queue_s")
let m_hop_solve = lazy (Metrics.histogram "fleet.hop.shard_solve_s")
let m_hop_reply = lazy (Metrics.histogram "fleet.hop.reply_s")

let stop_flag = Atomic.make false

let mint_wire t =
  t.next_wire <- t.next_wire + 1;
  Printf.sprintf "f%d" t.next_wire

(* Fleet-wide request ids: the pid makes them unique across router
   restarts sharing a socket path, so merged flight dumps never collide. *)
let mint_rid t =
  t.next_rid <- t.next_rid + 1;
  Printf.sprintf "fl-%d-%d" (Unix.getpid ()) t.next_rid

(* -- Client I/O ------------------------------------------------------------- *)

let reply_client t cl_id reply =
  match Hashtbl.find_opt t.clients cl_id with
  | None -> ()  (* client went away; its replies evaporate *)
  | Some cl -> Lineconn.enqueue cl.cl_conn (Protocol.reply_to_line reply)

let drop_client t cl_id =
  match Hashtbl.find_opt t.clients cl_id with
  | None -> ()
  | Some cl ->
    Hashtbl.remove t.clients cl_id;
    Hashtbl.remove t.by_fd (Lineconn.fd cl.cl_conn);
    Poll.remove t.poll (Lineconn.fd cl.cl_conn);
    Lineconn.close cl.cl_conn;
    Metrics.set (Lazy.force m_clients) (float_of_int (Hashtbl.length t.clients))

let accept_clients t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | exception
        Unix.Unix_error
          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error (_, _, _) -> ()
    | fd, _ ->
      Unix.set_close_on_exec fd;
      t.next_client <- t.next_client + 1;
      let cl = { cl_id = t.next_client; cl_conn = Lineconn.create fd } in
      Hashtbl.replace t.clients cl.cl_id cl;
      Hashtbl.replace t.by_fd fd (`Client cl.cl_id);
      Metrics.set (Lazy.force m_clients)
        (float_of_int (Hashtbl.length t.clients));
      loop ()
  in
  loop ()

(* -- Backend connections ---------------------------------------------------- *)

let disconnect_backend t i =
  match t.bconns.(i) with
  | None -> ()
  | Some conn ->
    Hashtbl.remove t.by_fd (Lineconn.fd conn);
    Poll.remove t.poll (Lineconn.fd conn);
    Lineconn.close conn;
    t.bconns.(i) <- None

let connect_backend t i =
  disconnect_backend t i;
  let path = Supervisor.socket_path t.sup i in
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> false
  | fd -> (
    Unix.set_close_on_exec fd;
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      false
    | () ->
      let conn = Lineconn.create fd in
      t.bconns.(i) <- Some conn;
      Hashtbl.replace t.by_fd fd (`Backend i);
      true)

(* Replay this backend's share of the persistent cache into its fresh LRU.
   Warm requests carry the fixed id "warm"; their replies match no pending
   entry and are dropped — fire-and-forget by construction. *)
let warm_backend t i =
  match (t.store, t.bconns.(i)) with
  | Some store, Some conn ->
    let sent = ref 0 in
    Disk_cache.iter store (fun key e ->
        if !sent < t.cfg.rc_warm_limit then
          let digest =
            match String.index_opt key '|' with
            | Some cut -> String.sub key 0 cut
            | None -> key
          in
          if Ring.lookup t.ring digest = Some i then begin
            Lineconn.enqueue conn
              (Protocol.request_to_line
                 (Protocol.Warm
                    {
                      Protocol.wr_id = "warm";
                      wr_key = key;
                      wr_verdict = e.Disk_cache.d_verdict;
                      wr_witness = e.Disk_cache.d_witness;
                      wr_solve_ms = e.Disk_cache.d_solve_ms;
                    }));
            incr sent
          end);
    if !sent > 0 then
      Obs.log Obs.Info "fleet: warmed backend %d with %d cached verdicts" i !sent
  | _ -> ()

let live_backends t =
  let out = ref [] in
  for i = Supervisor.n t.sup - 1 downto 0 do
    if Supervisor.is_up t.sup i && t.bconns.(i) <> None then out := i :: !out
  done;
  !out

(* -- Solve dispatch --------------------------------------------------------- *)

let dispatch t (ps : psolve) =
  let candidates =
    List.filter
      (fun b ->
        Supervisor.is_up t.sup b
        && t.bconns.(b) <> None
        && not (List.mem b ps.ps_tried))
      (Ring.lookup_order t.ring ps.ps_digest)
  in
  match candidates with
  | [] ->
    t.busy <- t.busy + 1;
    Metrics.incr (Lazy.force m_busy);
    reply_client t ps.ps_client (Protocol.Busy ps.ps_orig_id)
  | b :: _ ->
    let wire = mint_wire t in
    let sent_mono = Clock.mono_now () in
    let ps =
      { ps with ps_tried = b :: ps.ps_tried; ps_sent_mono = sent_mono }
    in
    Hashtbl.replace t.pending wire
      { pd_backend = b; pd_kind = K_solve ps };
    Flight.record ~rid:ps.ps_rid
      ~dur_ms:((sent_mono -. ps.ps_parsed_mono) *. 1000.)
      ~data:[ ("backend", string_of_int b) ]
      Flight.Span "hop.router_queue";
    (match t.bconns.(b) with
    | Some conn ->
      Lineconn.enqueue conn
        (Protocol.request_to_line
           (Protocol.Solve { ps.ps_rq with Protocol.sq_id = wire }))
    | None -> assert false)

let redispatch t wire (ps : psolve) =
  Hashtbl.remove t.pending wire;
  if List.length ps.ps_tried >= t.cfg.rc_max_attempts then begin
    t.errors <- t.errors + 1;
    Metrics.incr (Lazy.force m_errors);
    reply_client t ps.ps_client
      (Protocol.Error (ps.ps_orig_id, "backend lost during solve"))
  end
  else begin
    t.redispatched <- t.redispatched + 1;
    Metrics.incr (Lazy.force m_redispatch);
    (* The re-dispatched request keeps its original rid (ps_rq still
       carries the minted trace context), so the trace shows one request
       crossing two backends rather than two requests. *)
    Flight.record ~rid:ps.ps_rid
      ~data:[ ("attempt", string_of_int (List.length ps.ps_tried)) ]
      Flight.Event "fleet.redispatch";
    dispatch t ps
  end

(* -- Fan-out ops ------------------------------------------------------------ *)

let fan_merge_stats t fan =
  let module J = Json in
  let parts =
    List.sort compare fan.fan_parts
    |> List.map (fun (b, r) ->
           match r with
           | Some (Protocol.Stats (_, j)) -> (b, Some j)
           | _ -> (b, None))
  in
  let num k j = Option.value ~default:0. (J.mem_num k j) in
  let sum k =
    List.fold_left
      (fun acc (_, j) -> match j with Some j -> acc +. num k j | None -> acc)
      0. parts
  in
  let sum_cache k =
    List.fold_left
      (fun acc (_, j) ->
        match Option.bind j (J.member "cache") with
        | Some c -> acc +. num k c
        | None -> acc)
      0. parts
  in
  (* Lanes keep their per-backend identity through a name prefix, so `top`
     shows b0:serve:worker-1 and friends side by side. *)
  let lanes =
    List.concat_map
      (fun (b, j) ->
        match Option.bind j (J.member "lanes") with
        | Some (J.Arr ls) ->
          List.map
            (fun ln ->
              match ln with
              | J.Obj fields ->
                J.Obj
                  (List.map
                     (fun (k, v) ->
                       match (k, v) with
                       | "name", J.Str n ->
                         (k, J.Str (Printf.sprintf "b%d:%s" b n))
                       | _ -> (k, v))
                     fields)
              | other -> other)
            ls
        | _ -> [])
      parts
  in
  (* A part's own "backend" field (the shard's const label) names it;
     the ring index is the fallback for shards predating the field. *)
  let label_of b j =
    match Option.bind j (J.mem_str "backend") with
    | Some l when l <> "" -> l
    | _ -> string_of_int b
  in
  (* Exemplars merge tagged with their backend, so `top` can show which
     shard each slow rid ran on instead of an indistinguishable pool. *)
  let exemplars =
    List.concat_map
      (fun (b, j) ->
        match Option.bind j (J.member "exemplars") with
        | Some (J.Arr es) ->
          List.map
            (fun e ->
              match e with
              | J.Obj fields ->
                J.Obj (fields @ [ ("backend", J.Str (label_of b j)) ])
              | other -> other)
            es
        | _ -> [])
      parts
  in
  let quantiles = Window.quantiles t.lat [ 0.5; 0.9; 0.99 ] in
  let p50, p90, p99 =
    match quantiles with [ a; b; c ] -> (a, b, c) | _ -> (0., 0., 0.)
  in
  let disk =
    match t.store with
    | None -> J.Null
    | Some store ->
      let s = Disk_cache.stats store in
      J.Obj
        [
          ("size", J.Num (float_of_int s.Disk_cache.s_size));
          ("loaded", J.Num (float_of_int s.Disk_cache.s_loaded));
          ("appended", J.Num (float_of_int s.Disk_cache.s_appended));
          ("hits", J.Num (float_of_int s.Disk_cache.s_hits));
          ("misses", J.Num (float_of_int s.Disk_cache.s_misses));
        ]
  in
  let hops_json b =
    if b < 0 || b >= Array.length t.hops then J.Null
    else
      let a = t.hops.(b) in
      if a.ha_count = 0 then J.Null
      else
        let mean v = v /. float_of_int a.ha_count in
        J.Obj
          [
            ("count", J.Num (float_of_int a.ha_count));
            ("router_parse_ms", J.Num (mean a.ha_parse));
            ("router_queue_ms", J.Num (mean a.ha_queue));
            ("wire_ms", J.Num (mean a.ha_wire));
            ("shard_queue_ms", J.Num (mean a.ha_shard_queue));
            ("shard_solve_ms", J.Num (mean a.ha_solve));
            ("reply_ms", J.Num (mean a.ha_reply));
          ]
  in
  let backend_detail =
    List.map
      (fun (b, j) ->
        J.Obj
          [
            ("backend", J.Num (float_of_int b));
            ("label", J.Str (label_of b j));
            ("up", J.Bool (Supervisor.is_up t.sup b));
            ( "pid",
              match Supervisor.pid t.sup b with
              | Some p -> J.Num (float_of_int p)
              | None -> J.Null );
            ("spawns", J.Num (float_of_int (Supervisor.spawns t.sup b)));
            ("failures", J.Num (float_of_int (Supervisor.failures t.sup b)));
            ("hops", hops_json b);
            ("stats", match j with Some j -> j | None -> J.Null);
          ])
      parts
  in
  (* Engine-shaped top level: `sufdec top` renders a fleet unchanged. *)
  J.Obj
    [
      ("fleet", J.Bool true);
      ("workers", J.Num (sum "workers"));
      ("submitted", J.Num (float_of_int t.submitted));
      ("completed", J.Num (float_of_int t.completed));
      ("shed", J.Num (float_of_int t.busy));
      ("errors", J.Num (float_of_int t.errors));
      ("redispatched", J.Num (float_of_int t.redispatched));
      ( "queue_depth",
        J.Num (sum "queue_depth" +. float_of_int (Hashtbl.length t.pending)) );
      ( "latency_ms",
        J.Obj
          [
            ("count", J.Num (float_of_int (Window.length t.lat)));
            ("p50", J.Num p50);
            ("p90", J.Num p90);
            ("p99", J.Num p99);
            ( "p99_rid",
              J.Str
                (match Window.exemplar t.lat 0.99 with
                | Some (_, rid) -> rid
                | None -> "") );
          ] );
      ("exemplars", J.Arr exemplars);
      ("lanes", J.Arr lanes);
      ( "cache",
        J.Obj
          [
            ("hits", J.Num (sum_cache "hits"));
            ("misses", J.Num (sum_cache "misses"));
            ("joins", J.Num (sum_cache "joins"));
            ("evictions", J.Num (sum_cache "evictions"));
            ("size", J.Num (sum_cache "size"));
            ("capacity", J.Num (sum_cache "capacity"));
          ] );
      ("disk_cache", disk);
      ("uptime_s", J.Num (Unix.gettimeofday () -. t.started_at));
      ("backends", J.Arr backend_detail);
    ]

(* Concatenate exposition documents, keeping the first copy of each
   metadata line. Backends expose distinct [backend="i"] labels (the
   router itself exposes [backend="router"]), so the sample lines never
   collide; only # HELP / # TYPE lines repeat, and Prometheus requires
   those once per family. *)
let fan_merge_metrics fan =
  let bodies =
    (("router", Prom.current ())
    :: (List.sort compare fan.fan_parts
       |> List.filter_map (fun (b, r) ->
              match r with
              | Some (Protocol.Metrics (_, body)) ->
                Some (string_of_int b, body)
              | _ -> None)))
  in
  let seen_meta = Hashtbl.create 64 in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (_, body) ->
      String.split_on_char '\n' body
      |> List.iter (fun line ->
             if line = "" then ()
             else if String.length line > 0 && line.[0] = '#' then begin
               if not (Hashtbl.mem seen_meta line) then begin
                 Hashtbl.add seen_meta line ();
                 Buffer.add_string buf line;
                 Buffer.add_char buf '\n'
               end
             end
             else begin
               Buffer.add_string buf line;
               Buffer.add_char buf '\n'
             end))
    bodies;
  Buffer.contents buf

let fan_merge_dump fan =
  let parts =
    List.sort compare fan.fan_parts
    |> List.map (fun (b, r) ->
           let flight =
             match r with
             | Some (Protocol.Dump (_, body)) -> (
               match Json.parse body with Ok j -> j | Error _ -> Json.Str body)
             | _ -> Json.Null
           in
           Json.Obj
             [ ("backend", Json.Num (float_of_int b)); ("flight", flight) ])
  in
  (* The router's own flight ring rides along: it holds the hop spans
     (hop.router_parse, hop.router_queue, hop.wire, fleet.request) that
     the per-process lanes of an assembled trace are built from. *)
  let router_flight =
    match Json.parse (Flight.to_json ()) with
    | Ok j -> j
    | Error _ -> Json.Null
  in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str "sepsat-fleet-dump-1");
         ("router", router_flight);
         ("backends", Json.Arr parts);
       ])

let finish_fan t fan =
  let reply =
    match fan.fan_op with
    | `Stats -> Protocol.Stats (fan.fan_orig_id, fan_merge_stats t fan)
    | `Metrics -> Protocol.Metrics (fan.fan_orig_id, fan_merge_metrics fan)
    | `Dump -> Protocol.Dump (fan.fan_orig_id, fan_merge_dump fan)
  in
  reply_client t fan.fan_client reply

let fan_arrived t fan b reply =
  fan.fan_parts <- (b, reply) :: fan.fan_parts;
  fan.fan_waiting <- fan.fan_waiting - 1;
  if fan.fan_waiting <= 0 then finish_fan t fan

let start_fan t cl_id orig_id op =
  let live = live_backends t in
  let fan =
    {
      fan_client = cl_id;
      fan_orig_id = orig_id;
      fan_op = op;
      fan_waiting = List.length live;
      fan_parts = [];
    }
  in
  if live = [] then finish_fan t fan
  else
    List.iter
      (fun b ->
        let wire = mint_wire t in
        Hashtbl.replace t.pending wire { pd_backend = b; pd_kind = K_fan fan };
        let req =
          match op with
          | `Stats -> Protocol.Stats_req wire
          | `Metrics -> Protocol.Metrics_req wire
          | `Dump -> Protocol.Dump_req wire
        in
        match t.bconns.(b) with
        | Some conn -> Lineconn.enqueue conn (Protocol.request_to_line req)
        | None -> fan_arrived t fan b None)
      live

(* -- Backend loss ----------------------------------------------------------- *)

let backend_lost t i =
  if t.bconns.(i) <> None || Supervisor.is_up t.sup i then
    Obs.log Obs.Info "fleet: backend %d connection lost" i;
  disconnect_backend t i;
  Supervisor.note_lost t.sup i;
  let orphaned =
    Hashtbl.fold
      (fun wire pd acc -> if pd.pd_backend = i then (wire, pd) :: acc else acc)
      t.pending []
  in
  List.iter
    (fun (wire, pd) ->
      match pd.pd_kind with
      | K_solve ps -> redispatch t wire ps
      | K_fan fan ->
        Hashtbl.remove t.pending wire;
        fan_arrived t fan i None)
    orphaned

(* -- Request handling ------------------------------------------------------- *)

let parse_formula lang text =
  let ctx = Ast.create_ctx () in
  match lang with
  | Protocol.Suf -> (
    match Parse.formula ctx text with
    | f -> Ok f
    | exception Parse.Error msg -> Error ("parse error: " ^ msg))
  | Protocol.Smt -> (
    match Smtlib.script ctx text with
    | script -> Ok (Smtlib.goal ctx script)
    | exception Smtlib.Error msg -> Error ("smt-lib error: " ^ msg))

let handle_solve t cl_id (rq : Protocol.solve_req) =
  Metrics.incr (Lazy.force m_requests);
  if t.draining then begin
    t.busy <- t.busy + 1;
    reply_client t cl_id (Protocol.Busy rq.Protocol.sq_id)
  end
  else begin
    let recv_wall, recv_mono = Clock.pair () in
    let t0 = recv_wall in
    (* Trace context for the request's whole fleet crossing: adopt the
       client's context when it sent one (a client that is itself a hop),
       mint a fleet-unique rid otherwise. Installed once in ps_rq, it
       survives re-dispatch untouched — whichever shard the solve lands
       on adopts the same rid. *)
    let rid, path =
      match rq.Protocol.sq_trace with
      | Some tc -> (tc.Protocol.tc_rid, tc.Protocol.tc_path @ [ "router" ])
      | None -> (mint_rid t, [ "router" ])
    in
    let rq =
      { rq with Protocol.sq_trace = Some { Protocol.tc_rid = rid; tc_path = path } }
    in
    t.submitted <- t.submitted + 1;
    match parse_formula rq.Protocol.sq_lang rq.Protocol.sq_text with
    | Error msg ->
      t.errors <- t.errors + 1;
      Metrics.incr (Lazy.force m_errors);
      reply_client t cl_id (Protocol.Error (rq.Protocol.sq_id, msg))
    | Ok formula -> (
      let parsed_mono = Clock.mono_now () in
      let parse_ms = (parsed_mono -. recv_mono) *. 1000. in
      Flight.record ~rid ~dur_ms:parse_ms Flight.Span "hop.router_parse";
      Metrics.observe ~rid (Lazy.force m_hop_parse) (parse_ms /. 1000.);
      let digest = Ast.digest formula in
      let key = digest ^ "|" ^ Protocol.method_to_wire rq.Protocol.sq_method in
      match Option.bind t.store (fun s -> Disk_cache.find s key) with
      | Some e ->
        (* Persistent hit: answered by the router, no backend involved —
           the restart-surviving layer of the cache hierarchy. The reply
           trace says so: served_by "cache" with the lookup as its own
           hop, so cached answers stay distinguishable from shard-solved
           ones in traces and exemplars. *)
        Metrics.incr (Lazy.force m_disk_hits);
        t.completed <- t.completed + 1;
        let send_wall, send_mono = Clock.pair () in
        let ms = (send_mono -. recv_mono) *. 1000. in
        Window.add ~rid t.lat ms;
        Flight.record ~rid ~dur_ms:ms
          ~data:[ ("served_by", "cache") ]
          Flight.Span "fleet.request";
        reply_client t cl_id
          (Protocol.Ok_solve
             {
               Protocol.sv_id = rq.Protocol.sq_id;
               sv_verdict = e.Disk_cache.d_verdict;
               sv_origin = Protocol.Cache_hit;
               sv_digest = digest;
               sv_witness = e.Disk_cache.d_witness;
               sv_solve_ms = e.Disk_cache.d_solve_ms;
               sv_time_ms = ms;
               sv_trace =
                 Some
                   {
                     Protocol.rt_rid = rid;
                     rt_served_by = "cache";
                     rt_hops =
                       [
                         ("router.parse", parse_ms);
                         ("router.cache", Float.max 0. (ms -. parse_ms));
                       ];
                     rt_recv_wall = recv_wall;
                     rt_recv_mono = recv_mono;
                     rt_send_wall = send_wall;
                     rt_send_mono = send_mono;
                   };
             })
      | None ->
        dispatch t
          {
            ps_client = cl_id;
            ps_orig_id = rq.Protocol.sq_id;
            ps_digest = digest;
            ps_key = key;
            ps_rq = rq;
            ps_tried = [];
            ps_t0 = t0;
            ps_rid = rid;
            ps_recv_wall = recv_wall;
            ps_recv_mono = recv_mono;
            ps_parsed_mono = parsed_mono;
            ps_sent_mono = parsed_mono;
          })
  end

let begin_drain t requester =
  if not t.draining then begin
    t.draining <- true;
    t.drain_requester <- requester;
    Obs.log Obs.Info "fleet: draining (%d in flight)" (Hashtbl.length t.pending)
  end

let handle_client_line t cl_id line =
  match Protocol.request_of_line line with
  | Error msg ->
    reply_client t cl_id (Protocol.Error ("", "bad request: " ^ msg))
  | Ok (Protocol.Ping id) -> reply_client t cl_id (Protocol.Pong id)
  | Ok (Protocol.Shutdown id) -> begin_drain t (Some (cl_id, id))
  | Ok (Protocol.Stats_req id) -> start_fan t cl_id id `Stats
  | Ok (Protocol.Metrics_req id) -> start_fan t cl_id id `Metrics
  | Ok (Protocol.Dump_req id) -> start_fan t cl_id id `Dump
  | Ok (Protocol.Warm w) -> (
    (* Operational pre-seeding: a client may feed verdicts straight into
       the persistent cache (and through it, future backend warms). *)
    match t.store with
    | None ->
      reply_client t cl_id
        (Protocol.Error (w.Protocol.wr_id, "fleet has no persistent cache"))
    | Some store ->
      Disk_cache.put store w.Protocol.wr_key
        {
          Disk_cache.d_verdict = w.Protocol.wr_verdict;
          d_witness = w.Protocol.wr_witness;
          d_solve_ms = w.Protocol.wr_solve_ms;
        };
      reply_client t cl_id (Protocol.Warmed w.Protocol.wr_id))
  | Ok (Protocol.Solve rq) -> handle_solve t cl_id rq

let handle_backend_reply t b reply =
  let wire = Protocol.reply_id reply in
  match Hashtbl.find_opt t.pending wire with
  | None -> ()  (* warm acknowledgements and post-redispatch stragglers *)
  | Some pd -> (
    match pd.pd_kind with
    | K_fan fan ->
      Hashtbl.remove t.pending wire;
      fan_arrived t fan b (Some reply)
    | K_solve ps -> (
      match reply with
      | Protocol.Busy _ ->
        (* That backend shed; walk the failover order before giving the
           busy to the client. *)
        redispatch t wire ps
      | Protocol.Ok_solve s ->
        Hashtbl.remove t.pending wire;
        (match (t.store, s.Protocol.sv_verdict) with
        | Some store, (Protocol.Valid | Protocol.Invalid) ->
          Disk_cache.put store ps.ps_key
            {
              Disk_cache.d_verdict = s.Protocol.sv_verdict;
              d_witness = s.Protocol.sv_witness;
              d_solve_ms = s.Protocol.sv_solve_ms;
            };
          t.disk_writes <- t.disk_writes + 1
        | _ -> ());
        t.completed <- t.completed + 1;
        let send_wall, send_mono = Clock.pair () in
        let ms = (send_mono -. ps.ps_recv_mono) *. 1000. in
        Window.add ~rid:ps.ps_rid t.lat ms;
        (* Six-hop decomposition. Every subtraction below pairs mono
           readings from a single process — the shard's residency comes
           from its own recv/send anchors in the reply trace — so the
           breakdown is immune to router/shard wall-clock skew. The
           final [reply] hop is the remainder, so the six sum to the
           router-observed end-to-end time by construction (up to the
           max-0 clamps on pathological clock behaviour). *)
        let parse_ms = (ps.ps_parsed_mono -. ps.ps_recv_mono) *. 1000. in
        let queue_ms = (ps.ps_sent_mono -. ps.ps_parsed_mono) *. 1000. in
        let rtt_ms = (send_mono -. ps.ps_sent_mono) *. 1000. in
        let shard_queue_ms, shard_solve_ms, shard_res_ms =
          match s.Protocol.sv_trace with
          | Some st ->
            let hop name =
              Option.value ~default:0.
                (List.assoc_opt name st.Protocol.rt_hops)
            in
            ( hop "shard.queue",
              hop "shard.solve",
              (st.Protocol.rt_send_mono -. st.Protocol.rt_recv_mono) *. 1000.
            )
          | None ->
            (* Trace-less backend (version skew): charge its reported
               engine time as solve and fold the rest into wire. *)
            (0., s.Protocol.sv_time_ms, s.Protocol.sv_time_ms)
        in
        let wire_ms = Float.max 0. (rtt_ms -. shard_res_ms) in
        let reply_ms =
          Float.max 0.
            (ms -. parse_ms -. queue_ms -. wire_ms -. shard_queue_ms
           -. shard_solve_ms)
        in
        let served_by =
          match s.Protocol.sv_trace with
          | Some st when st.Protocol.rt_served_by <> "" ->
            st.Protocol.rt_served_by
          | _ -> string_of_int b
        in
        let rid = ps.ps_rid in
        Metrics.observe ~rid (Lazy.force m_hop_queue) (queue_ms /. 1000.);
        Metrics.observe ~rid (Lazy.force m_hop_wire) (wire_ms /. 1000.);
        Metrics.observe ~rid (Lazy.force m_hop_shard_queue)
          (shard_queue_ms /. 1000.);
        Metrics.observe ~rid (Lazy.force m_hop_solve)
          (shard_solve_ms /. 1000.);
        Metrics.observe ~rid (Lazy.force m_hop_reply) (reply_ms /. 1000.);
        (if b >= 0 && b < Array.length t.hops then
           let a = t.hops.(b) in
           a.ha_count <- a.ha_count + 1;
           a.ha_parse <- a.ha_parse +. parse_ms;
           a.ha_queue <- a.ha_queue +. queue_ms;
           a.ha_wire <- a.ha_wire +. wire_ms;
           a.ha_shard_queue <- a.ha_shard_queue +. shard_queue_ms;
           a.ha_solve <- a.ha_solve +. shard_solve_ms;
           a.ha_reply <- a.ha_reply +. reply_ms);
        Flight.record ~rid ~dur_ms:wire_ms
          ~data:[ ("backend", string_of_int b) ]
          Flight.Span "hop.wire";
        Flight.record ~rid ~dur_ms:ms
          ~data:[ ("served_by", served_by) ]
          Flight.Span "fleet.request";
        let trace =
          {
            Protocol.rt_rid = rid;
            rt_served_by = served_by;
            rt_hops =
              [
                ("router.parse", parse_ms);
                ("router.queue", queue_ms);
                ("wire", wire_ms);
                ("shard.queue", shard_queue_ms);
                ("shard.solve", shard_solve_ms);
                ("reply", reply_ms);
              ];
            rt_recv_wall = ps.ps_recv_wall;
            rt_recv_mono = ps.ps_recv_mono;
            rt_send_wall = send_wall;
            rt_send_mono = send_mono;
          }
        in
        reply_client t ps.ps_client
          (Protocol.Ok_solve
             {
               s with
               Protocol.sv_id = ps.ps_orig_id;
               sv_time_ms = ms;
               sv_trace = Some trace;
             })
      | Protocol.Error (_, msg) ->
        Hashtbl.remove t.pending wire;
        t.errors <- t.errors + 1;
        Metrics.incr (Lazy.force m_errors);
        reply_client t ps.ps_client (Protocol.Error (ps.ps_orig_id, msg))
      | Protocol.Pong _ | Protocol.Stats _ | Protocol.Metrics _
      | Protocol.Dump _ | Protocol.Bye _ | Protocol.Warmed _ ->
        Hashtbl.remove t.pending wire))

(* -- The loop --------------------------------------------------------------- *)

let rebuild_interest t =
  Hashtbl.iter
    (fun fd who ->
      let conn =
        match who with
        | `Client id ->
          Option.map (fun c -> c.cl_conn) (Hashtbl.find_opt t.clients id)
        | `Backend i -> t.bconns.(i)
      in
      match conn with
      | Some c -> Poll.set t.poll fd ~read:true ~write:(Lineconn.wants_write c)
      | None -> Poll.remove t.poll fd)
    t.by_fd;
  Poll.set t.poll t.listen_fd ~read:(not t.draining) ~write:false

(* After backends are down and the bye is queued, give the outbound client
   buffers a bounded window to flush. *)
let flush_clients_bounded t seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  let rec loop () =
    let pending_out =
      Hashtbl.fold
        (fun _ cl acc -> acc || Lineconn.wants_write cl.cl_conn)
        t.clients false
    in
    if pending_out && Unix.gettimeofday () < deadline then begin
      Hashtbl.iter
        (fun _ cl -> ignore (Lineconn.on_writable cl.cl_conn))
        t.clients;
      Unix.sleepf 0.01;
      loop ()
    end
  in
  loop ()

let shutdown_backends t =
  (* Propagate the shutdown op over every live connection and flush it out
     before the supervisor starts reaping — the voluntary-exit path. *)
  Array.iteri
    (fun i conn ->
      match conn with
      | Some c ->
        Lineconn.enqueue c (Protocol.request_to_line (Protocol.Shutdown "fleet"));
        ignore (Lineconn.on_writable c);
        ignore i
      | None -> ())
    t.bconns;
  let deadline = Unix.gettimeofday () +. 0.5 in
  let rec flush_out () =
    let busy =
      Array.exists
        (function Some c -> Lineconn.wants_write c | None -> false)
        t.bconns
    in
    if busy && Unix.gettimeofday () < deadline then begin
      Array.iter
        (function Some c -> ignore (Lineconn.on_writable c) | None -> ())
        t.bconns;
      Unix.sleepf 0.01;
      flush_out ()
    end
  in
  flush_out ();
  Supervisor.stop t.sup;
  Array.iteri (fun i _ -> disconnect_backend t i) t.bconns

let finish_shutdown t =
  shutdown_backends t;
  Option.iter Disk_cache.close t.store;
  (match t.drain_requester with
  | Some (cl_id, id) -> reply_client t cl_id (Protocol.Bye id)
  | None -> ());
  flush_clients_bounded t 2.;
  Hashtbl.iter (fun _ cl -> Lineconn.close cl.cl_conn) t.clients;
  Hashtbl.reset t.clients;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Sys.remove t.cfg.rc_socket with Sys_error _ -> ());
  t.finished <- true;
  Obs.log Obs.Info "fleet: shut down cleanly"

let handle_ready t (r : Poll.ready) =
  if r.Poll.r_fd = t.listen_fd then begin
    if r.Poll.r_readable then accept_clients t
  end
  else
    match Hashtbl.find_opt t.by_fd r.Poll.r_fd with
    | None -> Poll.remove t.poll r.Poll.r_fd
    | Some (`Client cl_id) -> (
      let conn =
        Option.map (fun c -> c.cl_conn) (Hashtbl.find_opt t.clients cl_id)
      in
      match conn with
      | None -> ()
      | Some conn ->
        (if r.Poll.r_writable then
           match Lineconn.on_writable conn with
           | `Closed -> drop_client t cl_id
           | `Ok -> ());
        if r.Poll.r_readable && Hashtbl.mem t.clients cl_id then (
          match Lineconn.on_readable conn with
          | `Closed -> drop_client t cl_id
          | `Nothing -> ()
          | `Lines lines ->
            List.iter (fun l -> handle_client_line t cl_id l) lines))
    | Some (`Backend i) -> (
      match t.bconns.(i) with
      | None -> ()
      | Some conn ->
        (if r.Poll.r_writable then
           match Lineconn.on_writable conn with
           | `Closed -> backend_lost t i
           | `Ok -> ());
        if t.bconns.(i) <> None then
          if r.Poll.r_readable then (
            match Lineconn.on_readable conn with
            | `Closed -> backend_lost t i
            | `Nothing -> ()
            | `Lines lines ->
              List.iter
                (fun l ->
                  match Protocol.reply_of_line l with
                  | Ok reply -> handle_backend_reply t i reply
                  | Error _ -> ())
                lines))

let request_stop () = Atomic.set stop_flag true

let run cfg sup =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Atomic.set stop_flag false;
  let handle_term =
    Sys.Signal_handle (fun _ -> Atomic.set stop_flag true)
  in
  let prev_term = (try Some (Sys.signal Sys.sigterm handle_term) with _ -> None) in
  let prev_int = (try Some (Sys.signal Sys.sigint handle_term) with _ -> None) in
  Metrics.set_always_on true;
  (* The router is an observability citizen like any shard: its flight
     ring holds the router-side hop spans an assembled cross-process
     trace needs, and its metric series carry the label the metrics
     merge has always documented. *)
  Flight.enable ();
  if Prom.const_label "backend" = None then
    Prom.set_const_labels [ ("backend", "router") ];
  let store = Option.map (fun path -> Disk_cache.open_ ~path) cfg.rc_cache_path in
  (match store with
  | Some s ->
    let st = Disk_cache.stats s in
    Obs.log Obs.Info "fleet: persistent cache %s: %d verdicts loaded"
      (Option.get cfg.rc_cache_path) st.Disk_cache.s_loaded
  | None -> ());
  (try Sys.remove cfg.rc_socket with Sys_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec listen_fd;
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.rc_socket);
  Unix.listen listen_fd 128;
  Unix.set_nonblock listen_fd;
  let t =
    {
      cfg;
      sup;
      store;
      ring = Ring.create (List.init (Supervisor.n sup) Fun.id);
      poll = Poll.create ();
      listen_fd;
      clients = Hashtbl.create 64;
      by_fd = Hashtbl.create 64;
      bconns = Array.make (Supervisor.n sup) None;
      pending = Hashtbl.create 64;
      next_client = 0;
      next_wire = 0;
      next_rid = 0;
      hops = Array.init (Supervisor.n sup) (fun _ -> fresh_hop_acc ());
      lat = Window.create ();
      submitted = 0;
      completed = 0;
      busy = 0;
      errors = 0;
      redispatched = 0;
      disk_writes = 0;
      draining = false;
      drain_requester = None;
      finished = false;
      started_at = Unix.gettimeofday ();
    }
  in
  Obs.log Obs.Info "fleet: router listening on %s (%d backends)" cfg.rc_socket
    (Supervisor.n sup);
  while not t.finished do
    (* Supervision round: connect-and-warm what came up, re-dispatch what
       went down, reconnect a live backend whose connection we lost. *)
    List.iter
      (function
        | Supervisor.Became_up i ->
          if connect_backend t i then warm_backend t i
        | Supervisor.Went_down i -> backend_lost t i)
      (Supervisor.tick t.sup);
    for i = 0 to Supervisor.n t.sup - 1 do
      if Supervisor.is_up t.sup i && t.bconns.(i) = None then
        if connect_backend t i then warm_backend t i
    done;
    if Atomic.get stop_flag then begin_drain t None;
    if t.draining && Hashtbl.length t.pending = 0 then finish_shutdown t
    else begin
      rebuild_interest t;
      let ready = Poll.wait t.poll ~timeout_s:cfg.rc_poll_s in
      List.iter (handle_ready t) ready;
      (* Opportunistic flush: replies enqueued this round go out now
         rather than one poll interval later. *)
      Hashtbl.iter
        (fun _ cl ->
          if Lineconn.wants_write cl.cl_conn then
            ignore (Lineconn.on_writable cl.cl_conn))
        t.clients;
      Array.iteri
        (fun i conn ->
          match conn with
          | Some c when Lineconn.wants_write c -> (
            match Lineconn.on_writable c with
            | `Closed -> backend_lost t i
            | `Ok -> ())
          | _ -> ())
        t.bconns
    end
  done;
  (match prev_term with Some b -> (try Sys.set_signal Sys.sigterm b with _ -> ()) | None -> ());
  (match prev_int with Some b -> (try Sys.set_signal Sys.sigint b with _ -> ()) | None -> ())
