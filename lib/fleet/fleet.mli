(** Fleet assembly — everything behind [sufdec fleet --backends N]: a
    {!Supervisor} spawning N [sufdec serve] shards and a {!Router}
    consistent-hashing the serving protocol across them, with an optional
    persistent {!Disk_cache} that outlives every process involved.

    See DESIGN.md §16 for the architecture. *)

type config = {
  f_socket : string;  (** the fleet's public Unix-domain socket *)
  f_backends : int;
  f_dir : string option;
      (** runtime dir for backend sockets; default [<socket>.d] *)
  f_cache_dir : string option;
      (** directory for the persistent verdict cache ([verdicts.jsonl]);
          [None] runs without the disk tier *)
  f_workers : int option;
      (** worker domains per backend; default [(cores - 1) / backends],
          at least 1 — the shards share the machine *)
  f_queue : int;  (** per-backend request-queue capacity *)
  f_cache : int;  (** per-backend in-memory LRU capacity *)
  f_timeout_s : float;  (** per-backend default request budget *)
  f_warm_limit : int;  (** cache entries replayed per backend start *)
  f_exe : string option;
      (** backend executable; default [Sys.executable_name] *)
}

val default : socket:string -> backends:int -> config
(** Queue 64, LRU 1024, 30 s budget, warm limit 4096, no disk cache. *)

val run : config -> unit
(** Spawn the backends and serve until [shutdown] (or SIGTERM/SIGINT),
    then drain, stop every backend and return — no orphans.
    @raise Invalid_argument if [f_backends < 1]. *)
