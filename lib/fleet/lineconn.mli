(** A buffered non-blocking JSON-lines connection, as the router's poll
    loop sees one peer: reads bank partial lines until a newline completes
    them, writes drain an outbound queue as far as the socket allows and
    park the rest. {!create} switches the fd to non-blocking mode and takes
    ownership ({!close} closes it). *)

type t

val create : Unix.file_descr -> t

val fd : t -> Unix.file_descr

val on_readable : t -> [ `Lines of string list | `Nothing | `Closed ]
(** Drain what the kernel has ready. [`Lines] are the complete,
    newline-terminated, non-blank lines that became available (a final
    batch may accompany the peer's EOF — the connection reports [`Closed]
    on the {e next} call); [`Nothing] means bytes arrived but no line
    completed; [`Closed] means EOF or a hard error with nothing pending. *)

val enqueue : t -> string -> unit
(** Queue one protocol line (newline appended). O(1); dropped silently on
    a closed connection. *)

val on_writable : t -> [ `Ok | `Closed ]
(** Flush as much of the queue as the socket accepts without blocking. *)

val wants_write : t -> bool
(** Whether anything is waiting to be flushed — the write-interest bit for
    {!Poll.set}. *)

val close : t -> unit
(** Close the fd. Idempotent. *)
