(** Consistent-hash ring: the router's map from {!Sepsat_suf.Ast.digest}
    to backend index.

    Each member owns [vnodes] pseudo-random points on a circle (MD5 of
    ["backend#vnode"], so the placement is stable across processes); a key
    belongs to the first point clockwise from its hash. The mapping is a
    pure function of the member set — same members, same assignment,
    anywhere — which is what gives each backend's cache its affinity, and
    membership changes only remap the keys whose arcs actually changed
    hands (see the remapping properties in [test/test_fleet.ml]). *)

type t

val create : ?vnodes:int -> int list -> t
(** Ring over the given backend indices (deduplicated; order-insensitive).
    [vnodes] (default 128) points per member trade lookup-table size for
    distribution evenness.
    @raise Invalid_argument if [vnodes < 1]. *)

val members : t -> int list
(** Ascending member list. *)

val add : t -> int -> t
(** Ring with one more member; no-op if already present. *)

val remove : t -> int -> t

val is_empty : t -> bool

val lookup : t -> string -> int option
(** Owning backend of a key; [None] on an empty ring. *)

val lookup_order : t -> string -> int list
(** All members in clockwise preference order from the key's position:
    head is {!lookup}, the rest is the deterministic failover order used
    while the owner is restarting. *)

val hash_key : string -> int
(** The key hash (exposed for distribution tests). *)
