(** Backend process supervision: spawn, health-check, reap, restart with
    exponential backoff, stop with no orphans.

    Driven by the router: {!tick} once per poll-loop iteration does one
    bounded round of reaping ([waitpid WNOHANG]), backoff-expiry spawning
    and health probing (one connect+ping with 1 s socket timeouts per
    starting backend), and reports the state transitions the router must
    react to — {!Became_up} (connect and warm the backend),
    {!Went_down} (drop its connection, re-dispatch its in-flight work). *)

type config = {
  exe : string;  (** the sufdec binary to spawn *)
  args : int -> string -> string list;
      (** [args index socket_path]: argv tail after the executable *)
  n_backends : int;
  dir : string;  (** runtime dir; backend [i] listens on [backend-i.sock] *)
  health_timeout_s : float;
      (** a spawn that never answers a ping within this window is killed
          and backed off *)
  backoff_base_s : float;
  backoff_cap_s : float;  (** restart delay: [base * 2^(failures-1)], capped *)
}

val default_config :
  exe:string ->
  args:(int -> string -> string list) ->
  n_backends:int ->
  dir:string ->
  config
(** 10 s health timeout, 0.2 s base backoff capped at 5 s. *)

type t

type event =
  | Became_up of int  (** passed its health check; safe to connect *)
  | Went_down of int  (** a previously-up backend's child was reaped *)

val start : config -> t
(** Create the runtime dir if needed and spawn every backend. Children
    are reported {!Became_up} by later {!tick}s as their pings answer.
    @raise Invalid_argument if [n_backends < 1]. *)

val tick : t -> event list
(** One supervision round; call once per event-loop iteration. Returns
    transitions since the last tick, oldest first. Never blocks beyond
    the bounded health-probe timeouts. *)

val note_lost : t -> int -> unit
(** The router saw this backend's connection die: force a re-probe. A
    dead child becomes {!Went_down} on the next tick; a live one (it only
    dropped the connection) re-proves itself and comes back
    {!Became_up}. *)

val n : t -> int

val socket_path : t -> int -> string

val is_up : t -> int -> bool

val pid : t -> int -> int option

val failures : t -> int -> int
(** Consecutive failures (resets after a backend stays up 10 s). *)

val spawns : t -> int -> int
(** Lifetime spawn count of backend [i] (1 = never restarted). *)

val stop : ?grace_s:float -> t -> unit
(** Stop supervising and reap every child: wait [grace_s] (default 5) for
    voluntary exits (the router has already propagated the shutdown op),
    then SIGTERM, then after 2 more seconds SIGKILL. Removes the backend
    sockets. Every child is waited on — no orphans survive. *)

val stopping : t -> bool
