(* Consistent-hash ring over backend indices.

   Each backend owns [vnodes] points on a 2^62 circle, placed by hashing
   "backend#vnode" with MD5 (stable across processes and OCaml versions,
   unlike [Hashtbl.hash] on boxed values). A key maps to the first point
   clockwise from its own hash. Two properties the fleet leans on fall out
   of this construction:

   - {b affinity}: the mapping is a pure function of the member set, so the
     router, a restarted router, and the tests all agree on which backend
     owns a digest — each backend's LRU only ever sees its own keys.
   - {b minimal remapping}: adding a backend only claims the arc segments
     its new points land in; every other key keeps its owner. Removing one
     only reassigns that backend's own arcs.

   The member set is tiny (a handful of backends) and changes rarely
   (crash/restart), so the ring is immutable and rebuilt on change; lookups
   are a binary search over a sorted point array. *)

type t = {
  points : (int * int) array;  (* (position, backend), sorted by position *)
  members : int list;  (* ascending, deduplicated *)
  vnodes : int;
}

let default_vnodes = 128

(* First 62 bits of the MD5, as a non-negative int: enough spread that
   128 vnodes x a few backends never collide in practice, and comparisons
   stay native-int cheap. *)
let point_of_string s =
  let d = Digest.string s in
  let byte i = Char.code d.[i] in
  let v =
    List.fold_left (fun acc i -> (acc lsl 8) lor byte i) 0 [ 0; 1; 2; 3; 4; 5; 6 ]
  in
  (v lsl 6) lor (byte 7 lsr 2)

let hash_key key = point_of_string key

let create ?(vnodes = default_vnodes) members =
  if vnodes < 1 then invalid_arg "Ring.create: vnodes < 1";
  let members = List.sort_uniq compare members in
  let points =
    List.concat_map
      (fun b ->
        List.init vnodes (fun v ->
            (point_of_string (Printf.sprintf "%d#%d" b v), b)))
      members
  in
  let points = Array.of_list points in
  Array.sort compare points;
  { points; members; vnodes }

let members t = t.members

let add t b =
  if List.mem b t.members then t
  else create ~vnodes:t.vnodes (b :: t.members)

let remove t b = create ~vnodes:t.vnodes (List.filter (( <> ) b) t.members)

let is_empty t = Array.length t.points = 0

(* Index of the first point with position >= h, wrapping to 0 past the
   last point — the standard successor search on the circle. *)
let successor t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let lookup t key =
  if is_empty t then None
  else Some (snd t.points.(successor t (hash_key key)))

(* Preference order: walk clockwise from the key's successor and emit each
   distinct backend the first time it appears. The head is [lookup]; the
   tail is the stable failover order the router uses when the owner is
   down — stable because it, too, is a pure function of the member set. *)
let lookup_order t key =
  if is_empty t then []
  else begin
    let n = Array.length t.points in
    let start = successor t (hash_key key) in
    let seen = Hashtbl.create 8 in
    let out = ref [] in
    let i = ref 0 in
    while !i < n && Hashtbl.length seen < List.length t.members do
      let b = snd t.points.((start + !i) mod n) in
      if not (Hashtbl.mem seen b) then begin
        Hashtbl.add seen b ();
        out := b :: !out
      end;
      incr i
    done;
    List.rev !out
  end
