(** Sharded LRU result cache with single-flight deduplication.

    The memoization layer in front of the solver pool. Keys are strings —
    the engine uses [Ast.digest ^ "|" ^ method] so structurally identical
    queries hit regardless of textual formatting or the context they were
    parsed in. Each shard owns a hashtable plus an intrusive doubly-linked
    recency list under its own mutex, so lookups from concurrent worker
    domains only contend when they land on the same shard; eviction is O(1)
    off the list tail.

    {!find_or_compute} adds single-flight semantics: when several domains
    ask for the same absent key at once, exactly one runs the computation
    and the rest block and {e join} its result — N identical in-flight
    queries run the pipeline once. A computation may decline caching (the
    engine declines on [Unknown] verdicts, so a timeout under one budget
    does not poison the answer under a larger one); joiners still receive
    the declined value. An exception inside the computation is re-raised in
    the computing domain {e and} in every joiner, and the in-flight entry is
    cleared so a later request retries. *)

type 'v t

val create : ?shards:int -> capacity:int -> unit -> 'v t
(** [capacity] is the total entry budget, split evenly across [shards]
    (default 16, rounded up per shard). [capacity < 1] disables storage:
    every lookup misses and nothing is retained.
    @raise Invalid_argument if [shards < 1]. *)

val find : 'v t -> string -> 'v option
(** Refreshes the entry's recency on hit. Counts a hit or miss. *)

val add : 'v t -> string -> 'v -> unit
(** Insert or overwrite, evicting the least-recently-used entry of the
    shard when it is at capacity. *)

type origin =
  | Hit  (** answered from the table *)
  | Computed  (** ran the computation (and cached it if it allowed) *)
  | Joined  (** blocked on another domain's identical in-flight call *)

val find_or_compute :
  'v t -> string -> compute:(unit -> 'v * bool) -> 'v * origin
(** [compute] returns the value and whether it may be cached. *)

type stats = {
  hits : int;
  misses : int;
  joins : int;  (** single-flight joins (counted inside the misses) *)
  evictions : int;
  size : int;  (** entries currently stored *)
  capacity : int;
}

val stats : 'v t -> stats

val clear : 'v t -> unit
(** Drop every entry (counters are kept; in-flight computations are not
    interrupted). *)
