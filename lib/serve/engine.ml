module Ast = Sepsat_suf.Ast
module Parse = Sepsat_suf.Parse
module Smtlib = Sepsat_suf.Smtlib
module Decide = Sepsat.Decide
module Verdict = Sepsat_sep.Verdict
module Brute = Sepsat_sep.Brute
module Deadline = Sepsat_util.Deadline
module Obs = Sepsat_obs.Obs
module Metrics = Sepsat_obs.Metrics
module Log = Sepsat_obs.Log
module Window = Sepsat_obs.Window
module Flight = Sepsat_obs.Flight
module Trace_ctx = Sepsat_obs.Trace_ctx
module Progress = Sepsat_obs.Progress
module Clock = Sepsat_obs.Clock

type job = {
  jb_text : string;
  jb_lang : Protocol.lang;
  jb_method : Decide.method_;
  jb_timeout_s : float option;
  jb_id : string;
  jb_rid : string;
  jb_path : string list;  (* trace hops crossed upstream, outermost first *)
  jb_enq_mono : float;  (* Clock.mono_now at job creation = enqueue time *)
}

let job ?(lang = Protocol.Suf) ?(method_ = Decide.Hybrid_default) ?timeout_s
    ?(id = "") ?rid ?(path = []) text =
  {
    jb_text = text;
    jb_lang = lang;
    jb_method = method_;
    jb_timeout_s = timeout_s;
    jb_id = id;
    (* Client ids are echoes, not identities — they may repeat or be empty,
       so every job also gets a correlation id: the wire-carried fleet rid
       when the request arrived with a trace context, minted otherwise. *)
    jb_rid = (match rid with Some r -> r | None -> Log.mint "rq");
    jb_path = path;
    jb_enq_mono = Clock.mono_now ();
  }

type outcome = {
  o_verdict : Protocol.verdict;
  o_origin : Protocol.origin;
  o_digest : string;
  o_witness : string option;
  o_solve_ms : float;
  o_time_ms : float;
  o_queue_ms : float;
}

type reply = (outcome, string) result

type backend =
  method_:Decide.method_ ->
  deadline:Deadline.t ->
  Ast.ctx ->
  Ast.formula ->
  Verdict.t

let default_backend ~method_ ~deadline ctx formula =
  (Decide.decide ~method_ ~deadline ctx formula).Decide.verdict

(* What the cache stores per (digest, method) key. *)
type entry = {
  e_verdict : Protocol.verdict;
  e_witness : string option;
  e_solve_ms : float;
}

type work = job * (reply -> unit)

(* One live solver lane, fed by Progress ticks: which domain, solving for
   which request, and how hard it is working right now. *)
type lane = {
  ln_tid : int;
  ln_name : string;
  ln_rid : string;
  ln_conflicts : int;
  ln_rate : float;  (* conflicts/s over the last tick interval *)
  ln_elapsed_s : float;
  ln_updated : float;  (* wall clock of the tick; stale lanes are pruned *)
}

(* Ticks older than this are solver domains that moved on (pool joined,
   request finished) — drop them from the live view. *)
let lane_ttl_s = 15.

type t = {
  queue : work Bqueue.t;
  cache : entry Cache.t;
  lat : Window.t;  (* per-request wall times (ms), feeds rolling quantiles *)
  stop : bool Atomic.t;
  backend : backend;
  default_timeout_s : float;
  n_workers : int;
  submitted : int Atomic.t;
  completed : int Atomic.t;
  shed : int Atomic.t;
  errors : int Atomic.t;
  flight_dir : string option;  (* where deadline-expiry dumps land; None = off *)
  lanes : (int, lane) Hashtbl.t;
  lanes_mu : Mutex.t;
  mutable domains : unit Domain.t array;
  shutdown_mu : Mutex.t;
}

(* Metric handles are registered lazily so a process that never serves pays
   nothing. [create] flips [Metrics.set_always_on]: a server's operational
   counters must move in default runs, not only under --trace. *)
let m_requests = lazy (Metrics.counter "serve.requests")
let m_shed = lazy (Metrics.counter "serve.shed")
let m_errors = lazy (Metrics.counter "serve.errors")
let m_hits = lazy (Metrics.counter "serve.cache.hits")
let m_misses = lazy (Metrics.counter "serve.cache.misses")
let m_joins = lazy (Metrics.counter "serve.cache.joins")
let m_queue_depth = lazy (Metrics.gauge "serve.queue_depth")
let m_request_s = lazy (Metrics.histogram "serve.request_s")

let witness_digest = function
  | Verdict.Invalid a ->
    (* Canonical: sort both maps by name so the digest is a function of the
       assignment, not of decode order. *)
    let ints = List.sort compare a.Brute.ints in
    let bools = List.sort compare a.Brute.bools in
    let buf = Buffer.create 64 in
    List.iter
      (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "%s=%d;" n v))
      ints;
    List.iter
      (fun (n, b) -> Buffer.add_string buf (Printf.sprintf "%s=%b;" n b))
      bools;
    Some (Digest.to_hex (Digest.string (Buffer.contents buf)))
  | Verdict.Valid | Verdict.Unknown _ -> None

let parse_job jb =
  let ctx = Ast.create_ctx () in
  match jb.jb_lang with
  | Protocol.Suf -> (
    match Parse.formula ctx jb.jb_text with
    | f -> Ok (ctx, f)
    | exception Parse.Error msg -> Error ("parse error: " ^ msg))
  | Protocol.Smt -> (
    match Smtlib.script ctx jb.jb_text with
    | script -> Ok (ctx, Smtlib.goal ctx script)
    | exception Smtlib.Error msg -> Error ("smt-lib error: " ^ msg))

let process t (jb : job) : reply =
  let t0 = Deadline.wall_now () in
  let queue_ms = (Clock.mono_now () -. jb.jb_enq_mono) *. 1000. in
  (* Every log line emitted anywhere below — including deep inside the
     pipeline — carries the request's correlation id, so one grep on the
     rid reconstructs the request's full path. The ambient Trace_ctx rid
     does the same for Obs spans and flight records: the request-root span
     and every descendant (parse, solve, portfolio lanes, component/cube
     workers via the spawn handoff) is tagged with this rid. Installing a
     whole context (not just the rid) both adopts the upstream hop path of
     a fleet request and guarantees no span path leaks in from whatever
     ran on this worker before. *)
  Trace_ctx.with_ctx (Trace_ctx.make ~rid:jb.jb_rid ~path:jb.jb_path ())
  @@ fun () ->
  Flight.record ~dur_ms:queue_ms Flight.Span "hop.shard_queue";
  Log.with_fields [ ("rid", Log.S jb.jb_rid); ("id", Log.S jb.jb_id) ]
  @@ fun () ->
  Obs.span ~cat:"serve" "serve.request" (fun () ->
      Metrics.incr (Lazy.force m_requests);
      Log.event "serve.request"
        [
          ("lang", Log.S (Protocol.lang_to_string jb.jb_lang));
          ("method", Log.S (Protocol.method_to_wire jb.jb_method));
          ( "timeout_s",
            Log.F (Option.value jb.jb_timeout_s ~default:t.default_timeout_s)
          );
        ];
      match Obs.span ~cat:"serve" "serve.parse" (fun () -> parse_job jb) with
      | Error msg ->
        Atomic.incr t.errors;
        Metrics.incr (Lazy.force m_errors);
        let time_ms = (Deadline.wall_now () -. t0) *. 1000. in
        Window.add ~rid:jb.jb_rid t.lat time_ms;
        Log.event "serve.error"
          [ ("reason", Log.S msg); ("time_ms", Log.F time_ms) ];
        Error msg
      | Ok (ctx, formula) ->
        let digest = Ast.digest formula in
        let key = digest ^ "|" ^ Protocol.method_to_wire jb.jb_method in
        let compute () =
          let timeout =
            Option.value jb.jb_timeout_s ~default:t.default_timeout_s
          in
          let deadline =
            Deadline.with_stop (Deadline.after_wall timeout) t.stop
          in
          let ts = Deadline.wall_now () in
          let verdict =
            match
              Obs.span ~cat:"serve" "serve.solve" (fun () ->
                  t.backend ~method_:jb.jb_method ~deadline ctx formula)
            with
            | v -> v
            | exception Deadline.Timeout ->
              let why =
                if Deadline.interrupted deadline then "cancelled"
                else "timeout"
              in
              Log.event "serve.deadline"
                [ ("reason", Log.S why); ("budget_s", Log.F timeout) ];
              (* A blown per-request deadline is exactly the moment the
                 recent history matters: dump the flight recorder so the
                 wedged request's spans, logs and last progress snapshots
                 survive for post-mortem. *)
              (match t.flight_dir with
              | Some _ when why = "timeout" -> (
                match Flight.dump ~reason:("deadline-" ^ jb.jb_rid) () with
                | path -> Log.event "serve.flight_dump" [ ("path", Log.S path) ]
                | exception e ->
                  Log.event "serve.flight_dump_failed"
                    [ ("error", Log.S (Printexc.to_string e)) ])
              | Some _ | None -> ());
              Verdict.Unknown why
          in
          let solve_ms = (Deadline.wall_now () -. ts) *. 1000. in
          let entry =
            {
              e_verdict = Protocol.verdict_of_sep verdict;
              e_witness = witness_digest verdict;
              e_solve_ms = solve_ms;
            }
          in
          let cacheable =
            match verdict with
            | Verdict.Valid | Verdict.Invalid _ -> true
            | Verdict.Unknown _ -> false
          in
          (entry, cacheable)
        in
        let entry, origin = Cache.find_or_compute t.cache key ~compute in
        let o_origin =
          match origin with
          | Cache.Hit ->
            Metrics.incr (Lazy.force m_hits);
            Protocol.Cache_hit
          | Cache.Computed ->
            Metrics.incr (Lazy.force m_misses);
            Protocol.Solved
          | Cache.Joined ->
            Metrics.incr (Lazy.force m_joins);
            Protocol.Joined
        in
        let time_ms = (Deadline.wall_now () -. t0) *. 1000. in
        Metrics.observe ~rid:jb.jb_rid (Lazy.force m_request_s)
          (time_ms /. 1000.);
        Window.add ~rid:jb.jb_rid t.lat time_ms;
        Log.event "serve.reply"
          ([
             ("verdict", Log.S (Protocol.verdict_to_string entry.e_verdict));
             ("origin", Log.S (Protocol.origin_to_string o_origin));
             ("digest", Log.S digest);
             ("solve_ms", Log.F entry.e_solve_ms);
             ("time_ms", Log.F time_ms);
           ]
          @
          match entry.e_verdict with
          | Protocol.Unknown why -> [ ("reason", Log.S why) ]
          | Protocol.Valid | Protocol.Invalid -> []);
        Ok
          {
            o_verdict = entry.e_verdict;
            o_origin;
            o_digest = digest;
            o_witness = entry.e_witness;
            o_solve_ms = entry.e_solve_ms;
            o_time_ms = time_ms;
            o_queue_ms = queue_ms;
          })

let worker t i () =
  Obs.name_thread (Printf.sprintf "serve:worker-%d" i);
  let rec loop () =
    match Bqueue.pop t.queue with
    | None -> ()
    | Some (jb, cb) ->
      Metrics.set (Lazy.force m_queue_depth) (float_of_int (Bqueue.length t.queue));
      let reply =
        try process t jb
        with e -> Result.Error ("internal error: " ^ Printexc.to_string e)
      in
      (* Count before the callback runs: a client that sees its reply and
         immediately asks for stats must observe the request as completed. *)
      Atomic.incr t.completed;
      (try cb reply with _ -> ());
      loop ()
  in
  loop ()

let create ?workers ?(queue_capacity = 64) ?(cache_capacity = 1024)
    ?(cache_shards = 16) ?(default_timeout_s = 30.)
    ?(backend = default_backend) ?flight_dir () =
  let n_workers =
    match workers with
    | Some n -> max 1 n
    | None -> max 1 (min 8 (Domain.recommended_domain_count () - 1))
  in
  (* A serving process reports live metrics whether or not tracing is on;
     see the note on the metric handles above. The flight recorder is
     always-on for the same reason: when a request wedges, its recent
     history must already be in the ring. *)
  Metrics.set_always_on true;
  Flight.enable ();
  Option.iter Flight.set_dump_dir flight_dir;
  let t =
    {
      queue = Bqueue.create ~capacity:queue_capacity;
      cache = Cache.create ~shards:cache_shards ~capacity:cache_capacity ();
      lat = Window.create ();
      stop = Atomic.make false;
      backend;
      default_timeout_s;
      n_workers;
      submitted = Atomic.make 0;
      completed = Atomic.make 0;
      shed = Atomic.make 0;
      errors = Atomic.make 0;
      flight_dir;
      lanes = Hashtbl.create 16;
      lanes_mu = Mutex.create ();
      domains = [||];
      shutdown_mu = Mutex.create ();
    }
  in
  (* Solver domains report progress through this global hook; each tick
     updates the reporting domain's row in the live lane table (consumed by
     `sufdec top` via stats). Tick cadence is once per 1024 conflicts plus
     one at solve start, so the mutex is uncontended in practice. *)
  Progress.set_callback
    (Some
       (fun snap ->
         let tid = snap.Progress.p_tid in
         let name =
           match List.assoc_opt tid (Obs.thread_names ()) with
           | Some n -> n
           | None -> Printf.sprintf "d%d" tid
         in
         let ln =
           {
             ln_tid = tid;
             ln_name = name;
             ln_rid = Trace_ctx.rid ();
             ln_conflicts = snap.Progress.p_conflicts;
             ln_rate = snap.Progress.p_rate;
             ln_elapsed_s = snap.Progress.p_elapsed;
             ln_updated = Unix.gettimeofday ();
           }
         in
         Mutex.protect t.lanes_mu (fun () -> Hashtbl.replace t.lanes tid ln)));
  t.domains <- Array.init n_workers (fun i -> Domain.spawn (worker t i));
  t

let lanes t =
  let now = Unix.gettimeofday () in
  Mutex.protect t.lanes_mu (fun () ->
      Hashtbl.fold
        (fun _ ln acc ->
          if now -. ln.ln_updated <= lane_ttl_s then ln :: acc else acc)
        t.lanes [])
  |> List.sort (fun a b -> compare a.ln_tid b.ln_tid)

let submit t jb cb =
  if Bqueue.try_push t.queue (jb, cb) then begin
    Atomic.incr t.submitted;
    Metrics.set (Lazy.force m_queue_depth) (float_of_int (Bqueue.length t.queue));
    true
  end
  else begin
    Atomic.incr t.shed;
    Metrics.incr (Lazy.force m_shed);
    Obs.instant ~cat:"serve" "serve.shed";
    (* Shed jobs never reach [process], so the correlation fields must be
       explicit here. *)
    Log.event "serve.shed"
      [ ("rid", Log.S jb.jb_rid); ("id", Log.S jb.jb_id) ];
    false
  end

let solve ?(block = false) t jb =
  let mu = Mutex.create () in
  let cv = Condition.create () in
  let slot = ref None in
  let cb reply =
    Mutex.lock mu;
    slot := Some reply;
    Condition.signal cv;
    Mutex.unlock mu
  in
  let accepted =
    if block then begin
      let ok = Bqueue.push t.queue (jb, cb) in
      if ok then Atomic.incr t.submitted
      else begin
        Atomic.incr t.shed;
        Metrics.incr (Lazy.force m_shed);
        Log.event "serve.shed"
          [ ("rid", Log.S jb.jb_rid); ("id", Log.S jb.jb_id) ]
      end;
      ok
    end
    else submit t jb cb
  in
  if not accepted then None
  else begin
    Mutex.lock mu;
    while !slot = None do
      Condition.wait cv mu
    done;
    let r = !slot in
    Mutex.unlock mu;
    r
  end

let queue_depth t = Bqueue.length t.queue

let cache_stats t = Cache.stats t.cache

(* Seed the result cache with a verdict computed elsewhere (the fleet
   router's persistent log replayed at backend start). Decisive verdicts
   only, same invariant as the solve path: an [unknown] is a budget
   artifact and must never be served as a cached answer. *)
let warm t ~key ~verdict ~witness ~solve_ms =
  match verdict with
  | Protocol.Unknown _ -> false
  | (Protocol.Valid | Protocol.Invalid) as v ->
    Cache.add t.cache key
      { e_verdict = v; e_witness = witness; e_solve_ms = solve_ms };
    true

type stats = {
  st_workers : int;
  st_submitted : int;
  st_completed : int;
  st_shed : int;
  st_errors : int;
  st_queue_depth : int;
  st_cache : Cache.stats;
  st_lat_count : int;
  st_p50_ms : float;
  st_p90_ms : float;
  st_p99_ms : float;
  st_p99_rid : string;  (* rid of the request at the p99 rank; "" if none *)
  st_lanes : lane list;
}

let stats t =
  let quantiles = Window.quantiles t.lat [ 0.5; 0.9; 0.99 ] in
  let p50, p90, p99 =
    match quantiles with [ a; b; c ] -> (a, b, c) | _ -> (0., 0., 0.)
  in
  {
    st_workers = t.n_workers;
    st_submitted = Atomic.get t.submitted;
    st_completed = Atomic.get t.completed;
    st_shed = Atomic.get t.shed;
    st_errors = Atomic.get t.errors;
    st_queue_depth = Bqueue.length t.queue;
    st_cache = Cache.stats t.cache;
    st_lat_count = Window.length t.lat;
    st_p50_ms = p50;
    st_p90_ms = p90;
    st_p99_ms = p99;
    st_p99_rid =
      (match Window.exemplar t.lat 0.99 with Some (_, rid) -> rid | None -> "");
    st_lanes = lanes t;
  }

let stats_json t =
  let s = stats t in
  let c = s.st_cache in
  Json.Obj
    [
      (* Which fleet member this is, from the Prometheus const label the
         CLI stamps at startup ("" outside a fleet) — lets the router's
         merged stats attribute exemplars and lanes to a shard. *)
      ( "backend",
        Json.Str
          (Option.value (Sepsat_obs.Prom.const_label "backend") ~default:"")
      );
      ("workers", Json.Num (float_of_int s.st_workers));
      ("submitted", Json.Num (float_of_int s.st_submitted));
      ("completed", Json.Num (float_of_int s.st_completed));
      ("shed", Json.Num (float_of_int s.st_shed));
      ("errors", Json.Num (float_of_int s.st_errors));
      ("queue_depth", Json.Num (float_of_int s.st_queue_depth));
      ( "latency_ms",
        Json.Obj
          [
            ("count", Json.Num (float_of_int s.st_lat_count));
            ("p50", Json.Num s.st_p50_ms);
            ("p90", Json.Num s.st_p90_ms);
            ("p99", Json.Num s.st_p99_ms);
            ("p99_rid", Json.Str s.st_p99_rid);
          ] );
      ( "exemplars",
        Json.Arr
          (List.map
             (fun (ub, e) ->
               Json.Obj
                 [
                   ( "le",
                     if Float.is_finite ub then Json.Num ub
                     else Json.Str "+Inf" );
                   ("rid", Json.Str e.Metrics.ex_rid);
                   ("value_s", Json.Num e.Metrics.ex_value);
                   ("ts", Json.Num e.Metrics.ex_ts);
                 ])
             (Metrics.exemplars (Lazy.force m_request_s))) );
      ( "lanes",
        Json.Arr
          (List.map
             (fun ln ->
               Json.Obj
                 [
                   ("tid", Json.Num (float_of_int ln.ln_tid));
                   ("name", Json.Str ln.ln_name);
                   ("rid", Json.Str ln.ln_rid);
                   ("conflicts", Json.Num (float_of_int ln.ln_conflicts));
                   ("rate", Json.Num ln.ln_rate);
                   ("elapsed_s", Json.Num ln.ln_elapsed_s);
                 ])
             s.st_lanes) );
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Num (float_of_int c.Cache.hits));
            ("misses", Json.Num (float_of_int c.Cache.misses));
            ("joins", Json.Num (float_of_int c.Cache.joins));
            ("evictions", Json.Num (float_of_int c.Cache.evictions));
            ("size", Json.Num (float_of_int c.Cache.size));
            ("capacity", Json.Num (float_of_int c.Cache.capacity));
          ] );
    ]

let shutdown ?(cancel_inflight = true) t =
  Mutex.lock t.shutdown_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.shutdown_mu)
    (fun () ->
      if cancel_inflight then Atomic.set t.stop true;
      Bqueue.close t.queue;
      Array.iter Domain.join t.domains;
      t.domains <- [||];
      (* The progress hook captures [t]; remove it so a later engine in the
         same process (tests) does not feed a dead lane table. *)
      Progress.set_callback None)
