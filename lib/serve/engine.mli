(** The solver pool behind the server: a bounded request queue feeding
    worker domains, fronted by the structural result cache.

    Life of a request: {!submit} enqueues it (or refuses — {e sheds} — when
    the queue is at capacity, the explicit backpressure bound); a worker
    domain pops it, parses the text into a fresh per-request context (AST
    contexts are single-domain, exactly like {!Sepsat.Decide}'s portfolio),
    computes the {!Sepsat_suf.Ast.digest}, and asks the cache. A hit answers
    without solving; a miss runs the pipeline under a per-request wall-clock
    deadline — expiry yields an [unknown] verdict, never a dead worker — and
    identical concurrent misses are single-flighted so the pipeline runs
    once. Only decisive verdicts are cached: an [unknown] under one budget
    must not poison the answer under a larger one.

    Deadlines are wall-clock, not CPU: with several domains solving
    concurrently, [Sys.time] accumulates across all of them and a CPU budget
    would fire N times early (same reasoning as the portfolio's race
    deadline). Every worker also observes the engine's stop flag through
    {!Sepsat_util.Deadline.with_stop}, which is how {!shutdown} cancels
    in-flight solves promptly.

    Observability: spans [serve.request]/[serve.solve], counters
    [serve.requests], [serve.shed], [serve.errors],
    [serve.cache.{hits,misses,joins}], gauge [serve.queue_depth], histogram
    [serve.request_s]. Unlike the batch pipeline's instrumentation these
    are {e always on}: {!create} flips {!Sepsat_obs.Metrics.set_always_on}
    so the metrics and stats surfaces stay live in default runs. Each job
    also carries a server-minted correlation id ([rq-N]); when
    {!Sepsat_obs.Log} is enabled, every request emits [serve.request],
    [serve.shed], [serve.deadline], [serve.error] and [serve.reply] JSON
    lines tagged with that id, and a rolling window of request wall times
    feeds the p50/p90/p99 figures in {!stats}. *)

module Decide = Sepsat.Decide

type job = {
  jb_text : string;
  jb_lang : Protocol.lang;
  jb_method : Decide.method_;
  jb_timeout_s : float option;  (** [None]: the engine's default budget *)
  jb_id : string;  (** client-chosen id, echoed on the reply; may repeat *)
  jb_rid : string;
      (** correlation id, the key that ties this request's log lines,
          spans and exemplars together — the wire-carried fleet rid when
          the request arrived with a {!Protocol.trace_ctx}, server-minted
          otherwise *)
  jb_path : string list;
      (** trace hops crossed upstream of this process, outermost first
          (e.g. [["router"]]); installed as the base span path *)
  jb_enq_mono : float;
      (** {!Sepsat_obs.Clock.mono_now} at job creation; queue time is
          measured from here to processing start *)
}

val job :
  ?lang:Protocol.lang ->
  ?method_:Decide.method_ ->
  ?timeout_s:float ->
  ?id:string ->
  ?rid:string ->
  ?path:string list ->
  string ->
  job
(** Defaults: SUF text, [Hybrid_default], engine default budget, empty
    client id, freshly minted correlation id, empty hop path. Stamps the
    enqueue clock. *)

type outcome = {
  o_verdict : Protocol.verdict;
  o_origin : Protocol.origin;
  o_digest : string;  (** structural digest of the parsed formula *)
  o_witness : string option;  (** witness digest, [Invalid] only *)
  o_solve_ms : float;
      (** pipeline time of the run that produced the verdict; a cache hit
          reports the original solve's cost *)
  o_time_ms : float;  (** this request's wall time inside the engine *)
  o_queue_ms : float;
      (** time spent waiting in the request queue before a worker picked
          the job up — the [shard.queue] hop of a fleet trace *)
}

type reply = (outcome, string) result
(** [Error] carries a parse / front-end message; solver give-ups are
    [Ok] with an [Unknown] verdict. *)

type backend =
  method_:Decide.method_ ->
  deadline:Sepsat_util.Deadline.t ->
  Sepsat_suf.Ast.ctx ->
  Sepsat_suf.Ast.formula ->
  Sepsat_sep.Verdict.t
(** The solving step, pluggable for tests and alternate pipelines. *)

val default_backend : backend
(** [Decide.decide]'s verdict. *)

type t

val create :
  ?workers:int ->
  ?queue_capacity:int ->
  ?cache_capacity:int ->
  ?cache_shards:int ->
  ?default_timeout_s:float ->
  ?backend:backend ->
  ?flight_dir:string ->
  unit ->
  t
(** Spawns the worker domains immediately. Defaults: workers = recommended
    domain count - 1 (clamped to 1..8), queue 64, cache 1024 entries over 16
    shards, 30 s budget. Also enables the always-on
    {!Sepsat_obs.Flight} recorder; when [flight_dir] is given it becomes
    the dump directory and every per-request deadline expiry writes a
    flight dump there (without it, dumps happen only on demand — SIGUSR1,
    crash, [dump] op). *)

val submit : t -> job -> (reply -> unit) -> bool
(** Asynchronous entry point. [false] means the request was shed (queue
    full or engine shut down) and the callback will never run. The callback
    runs on a worker domain; it must not block for long. *)

val solve : ?block:bool -> t -> job -> reply option
(** Synchronous entry point. With [~block:false] (the default) a full queue
    sheds and returns [None]; with [~block:true] the caller waits for queue
    space instead — the cooperative in-process backpressure used by the
    load generator. [None] with [~block:true] only if the engine is shut
    down. *)

val queue_depth : t -> int

val cache_stats : t -> Cache.stats

val warm :
  t ->
  key:string ->
  verdict:Protocol.verdict ->
  witness:string option ->
  solve_ms:float ->
  bool
(** Seed the result cache with an externally computed verdict under the
    full cache key ([digest ^ "|" ^ method]) without running a solve —
    the fleet router's warm path. [false] (and no insertion) for an
    [Unknown] verdict: only decisive verdicts may be cached, the same
    invariant the solve path maintains. *)

type lane = {
  ln_tid : int;  (** solver domain id *)
  ln_name : string;  (** lane label from {!Sepsat_obs.Obs.name_thread} *)
  ln_rid : string;  (** request the lane is solving for; [""] if unknown *)
  ln_conflicts : int;
  ln_rate : float;  (** conflicts/s over the last progress interval *)
  ln_elapsed_s : float;  (** seconds since that lane's solve started *)
  ln_updated : float;  (** wall clock of the last progress tick *)
}
(** A live solver lane, fed by {!Sepsat_obs.Progress} ticks — what each
    solving domain is working on right now (the `sufdec top` view). *)

type stats = {
  st_workers : int;
  st_submitted : int;  (** accepted into the queue *)
  st_completed : int;
  st_shed : int;
  st_errors : int;  (** front-end (parse) failures *)
  st_queue_depth : int;
  st_cache : Cache.stats;
  st_lat_count : int;
      (** requests in the rolling latency window (most recent 512) *)
  st_p50_ms : float;  (** rolling request-latency quantiles; [0.] if empty *)
  st_p90_ms : float;
  st_p99_ms : float;
  st_p99_rid : string;
      (** rid of the actual request at the p99 rank — the one to chase;
          [""] when the window is empty or that slot carried no rid *)
  st_lanes : lane list;  (** lanes with a progress tick in the last 15 s *)
}

val stats : t -> stats

val stats_json : t -> Json.t
(** The [stats] reply payload of the protocol: the {!stats} fields plus
    [latency_ms.p99_rid], the [serve.request_s] histogram's per-bucket
    ["exemplars"] and the live ["lanes"] array. *)

val shutdown : ?cancel_inflight:bool -> t -> unit
(** Close the queue and join the workers. With [cancel_inflight] (default
    [true]) the stop flag is raised first, so queued and running requests
    come back [unknown (cancelled)] quickly; with [false] the backlog is
    drained at full fidelity. Pending callbacks all run either way.
    Idempotent. *)
