(** Minimal JSON values, parser and printer for the serving protocol.

    The repo policy is zero new dependencies, and until now JSON only ever
    flowed outward (hand-rolled writers in {!Sepsat_harness.Runner} and
    {!Sepsat_obs.Metrics}); the JSON-lines protocol needs the inbound
    direction too. This is a complete little JSON: objects, arrays, strings
    with the standard escapes ([\uXXXX] included, encoded to UTF-8), numbers,
    booleans, null. Not streaming — a protocol line is parsed as one value —
    and object member order is preserved, duplicates keep the first
    occurrence on lookup. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Whole-string parse; trailing garbage after the value is an error. The
    error message carries a byte offset. *)

val to_string : t -> string
(** Compact single-line rendering (no newlines — safe as one protocol
    line). Integral numbers print without a decimal point; non-finite
    numbers print as [null] (JSON has no lexeme for them). *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Object member lookup; [None] on missing member or non-object. *)

val to_str : t -> string option

val to_num : t -> float option

val to_int : t -> int option
(** Truncates; [None] on non-numbers. *)

val to_bool : t -> bool option

val mem_str : string -> t -> string option
(** [mem_str k j] = [member k j >>= to_str]; same for the others below. *)

val mem_num : string -> t -> float option

val mem_int : string -> t -> int option

val mem_bool : string -> t -> bool option
