(** Protocol front ends over an {!Engine}: a stdio loop and a Unix-domain
    socket listener.

    Both speak the JSON-lines protocol of {!Protocol}. Requests are
    submitted asynchronously, so one connection can pipeline: replies carry
    the request's [id] and may arrive out of order. Backpressure is the
    engine's: when its bounded queue is full the server answers
    [{"status":"busy"}] immediately instead of buffering — clients retry or
    slow down, the server's memory does not grow with offered load. A
    [shutdown] request stops the loop (and, for the socket listener, the
    accept loop); the caller still owns the engine and decides when to
    {!Engine.shutdown} it. *)

val serve_channels :
  Engine.t -> in_channel -> out_channel -> [ `Eof | `Shutdown ]
(** Serve one JSON-lines stream until end-of-input or a [shutdown] request.
    Waits for every in-flight reply before returning, so the stream is
    complete when this returns. Blank lines are ignored; malformed lines
    get an [error] reply with an empty id. *)

val serve_unix : ?metrics_path:string -> Engine.t -> path:string -> unit
(** Listen on a Unix-domain socket, one system thread per connection (the
    heavy lifting happens on the engine's worker domains; connection
    threads only shuttle lines). An existing socket file at [path] is
    replaced. Returns after a [shutdown] request once every accepted
    connection has drained, and removes the socket file. SIGPIPE is
    ignored; a client that disconnects mid-reply only loses its own
    connection. With [metrics_path] a second socket serves plaintext
    [GET /metrics] (see {!serve_metrics}) until the same shutdown. *)

val serve_metrics : path:string -> stop:bool Atomic.t -> Thread.t
(** Serve Prometheus scrapes ([GET /metrics], HTTP/1.0, one response per
    connection) on a Unix-domain socket, e.g. for
    [curl --unix-socket PATH http://localhost/metrics]. The socket is bound
    before this returns, so a scraper may connect immediately. The returned
    thread polls [stop] (4 Hz) and on stop closes the listener and removes
    the socket file; join it after raising the flag. *)
