(** Bounded multi-producer multi-consumer blocking queue.

    The admission-control point of the serving engine: capacity is the
    explicit backpressure bound, {!try_push} is the load-shedding path (a
    full queue refuses instead of growing), {!push} is the cooperative path
    for in-process clients that prefer waiting to shedding. Implemented with
    one mutex and two condition variables — the queue is touched for
    microseconds per request while solves take milliseconds, so contention
    is immaterial. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val try_push : 'a t -> 'a -> bool
(** [false] when the queue is full or closed — the caller sheds the load. *)

val push : 'a t -> 'a -> bool
(** Blocks while full; [false] only if the queue is (or becomes) closed. *)

val pop : 'a t -> 'a option
(** Blocks while empty; [None] once the queue is closed {e and} drained, so
    consumers process the backlog before exiting. *)

val close : 'a t -> unit
(** Reject future pushes and wake every waiter. Idempotent. *)

val length : 'a t -> int
(** Current depth (racy by nature; exact under the internal lock). *)

val capacity : 'a t -> int
