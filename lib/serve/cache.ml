type 'v node = {
  nkey : string;
  mutable nval : 'v;
  mutable prev : 'v node option;  (* toward the MRU head *)
  mutable next : 'v node option;  (* toward the LRU tail *)
}

type 'v shard = {
  mu : Mutex.t;
  tbl : (string, 'v node) Hashtbl.t;
  mutable head : 'v node option;
  mutable tail : 'v node option;
  mutable size : int;
  cap : int;
}

type 'v flight = {
  fmu : Mutex.t;
  fcv : Condition.t;
  mutable fresult : ('v, exn) result option;
}

type 'v t = {
  shards : 'v shard array;
  inflight_mu : Mutex.t;
  inflight : (string, 'v flight) Hashtbl.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  joins : int Atomic.t;
  evictions : int Atomic.t;
}

let create ?(shards = 16) ~capacity () =
  if shards < 1 then invalid_arg "Cache.create: shards < 1";
  let per_shard =
    if capacity < 1 then 0 else (capacity + shards - 1) / shards
  in
  {
    shards =
      Array.init shards (fun _ ->
          {
            mu = Mutex.create ();
            tbl = Hashtbl.create 64;
            head = None;
            tail = None;
            size = 0;
            cap = per_shard;
          });
    inflight_mu = Mutex.create ();
    inflight = Hashtbl.create 16;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    joins = Atomic.make 0;
    evictions = Atomic.make 0;
  }

let shard_of c key = c.shards.(Hashtbl.hash key mod Array.length c.shards)

let with_lock mu f =
  Mutex.lock mu;
  match f () with
  | v ->
    Mutex.unlock mu;
    v
  | exception e ->
    Mutex.unlock mu;
    raise e

(* -- Recency list (callers hold the shard lock) ---------------------------- *)

let unlink sh n =
  (match n.prev with Some p -> p.next <- n.next | None -> sh.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> sh.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front sh n =
  n.next <- sh.head;
  n.prev <- None;
  (match sh.head with Some h -> h.prev <- Some n | None -> sh.tail <- Some n);
  sh.head <- Some n

(* -- Operations ------------------------------------------------------------ *)

let find c key =
  let sh = shard_of c key in
  with_lock sh.mu (fun () ->
      match Hashtbl.find_opt sh.tbl key with
      | Some n ->
        unlink sh n;
        push_front sh n;
        Atomic.incr c.hits;
        Some n.nval
      | None ->
        Atomic.incr c.misses;
        None)

let add c key v =
  let sh = shard_of c key in
  if sh.cap > 0 then
    with_lock sh.mu (fun () ->
        (match Hashtbl.find_opt sh.tbl key with
        | Some n ->
          n.nval <- v;
          unlink sh n;
          push_front sh n
        | None ->
          let n = { nkey = key; nval = v; prev = None; next = None } in
          Hashtbl.replace sh.tbl key n;
          push_front sh n;
          sh.size <- sh.size + 1);
        if sh.size > sh.cap then
          match sh.tail with
          | Some lru ->
            unlink sh lru;
            Hashtbl.remove sh.tbl lru.nkey;
            sh.size <- sh.size - 1;
            Atomic.incr c.evictions
          | None -> ())

type origin = Hit | Computed | Joined

let find_or_compute c key ~compute =
  match find c key with
  | Some v -> (v, Hit)
  | None -> (
    Mutex.lock c.inflight_mu;
    match Hashtbl.find_opt c.inflight key with
    | Some fl -> (
      Mutex.unlock c.inflight_mu;
      Atomic.incr c.joins;
      let r =
        with_lock fl.fmu (fun () ->
            while fl.fresult = None do
              Condition.wait fl.fcv fl.fmu
            done;
            Option.get fl.fresult)
      in
      match r with Ok v -> (v, Joined) | Error e -> raise e)
    | None -> (
      let fl =
        { fmu = Mutex.create (); fcv = Condition.create (); fresult = None }
      in
      Hashtbl.add c.inflight key fl;
      Mutex.unlock c.inflight_mu;
      let result = try Ok (compute ()) with e -> Error e in
      (match result with
      | Ok (v, cacheable) -> if cacheable then add c key v
      | Error _ -> ());
      (* Publish before clearing the in-flight entry: a joiner that already
         holds [fl] sees the result; later arrivals go through the cache. *)
      with_lock fl.fmu (fun () ->
          fl.fresult <-
            Some (match result with Ok (v, _) -> Ok v | Error e -> Error e);
          Condition.broadcast fl.fcv);
      with_lock c.inflight_mu (fun () -> Hashtbl.remove c.inflight key);
      match result with Ok (v, _) -> (v, Computed) | Error e -> raise e))

type stats = {
  hits : int;
  misses : int;
  joins : int;
  evictions : int;
  size : int;
  capacity : int;
}

let stats c =
  let size = ref 0 and capacity = ref 0 in
  Array.iter
    (fun sh ->
      with_lock sh.mu (fun () ->
          size := !size + sh.size;
          capacity := !capacity + sh.cap))
    c.shards;
  {
    hits = Atomic.get c.hits;
    misses = Atomic.get c.misses;
    joins = Atomic.get c.joins;
    evictions = Atomic.get c.evictions;
    size = !size;
    capacity = !capacity;
  }

let clear c =
  Array.iter
    (fun sh ->
      with_lock sh.mu (fun () ->
          Hashtbl.reset sh.tbl;
          sh.head <- None;
          sh.tail <- None;
          sh.size <- 0))
    c.shards
