type 'a t = {
  mu : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  items : 'a Queue.t;
  cap : int;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity < 1";
  {
    mu = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    items = Queue.create ();
    cap = capacity;
    closed = false;
  }

let with_lock q f =
  Mutex.lock q.mu;
  match f () with
  | v ->
    Mutex.unlock q.mu;
    v
  | exception e ->
    Mutex.unlock q.mu;
    raise e

let try_push q x =
  with_lock q (fun () ->
      if q.closed || Queue.length q.items >= q.cap then false
      else begin
        Queue.push x q.items;
        Condition.signal q.not_empty;
        true
      end)

let push q x =
  with_lock q (fun () ->
      while (not q.closed) && Queue.length q.items >= q.cap do
        Condition.wait q.not_full q.mu
      done;
      if q.closed then false
      else begin
        Queue.push x q.items;
        Condition.signal q.not_empty;
        true
      end)

let pop q =
  with_lock q (fun () ->
      while (not q.closed) && Queue.is_empty q.items do
        Condition.wait q.not_empty q.mu
      done;
      if Queue.is_empty q.items then None
      else begin
        let x = Queue.pop q.items in
        Condition.signal q.not_full;
        Some x
      end)

let close q =
  with_lock q (fun () ->
      q.closed <- true;
      Condition.broadcast q.not_empty;
      Condition.broadcast q.not_full)

let length q = with_lock q (fun () -> Queue.length q.items)

let capacity q = q.cap
