(** Client side of the serving protocol — what `sufdec submit` and tests
    use to talk to a running server.

    A session is one JSON-lines stream: a connected Unix-domain socket or a
    channel pair (e.g. the pipes of a spawned [sufdec serve] process).
    {!send}/{!recv} expose the pipelined protocol directly; {!rpc} and the
    typed wrappers below do one request–reply round trip, which is the
    simple serial mode (at most one request in flight per session — several
    concurrent sessions, not pipelining, is how the CI smoke applies
    load). Sessions are not domain-safe; use one per client. *)

type t

val connect : ?retries:int -> string -> t
(** Connect to a server's Unix-domain socket. [retries] (default 0) extra
    attempts 100 ms apart cover the race against a server still binding
    its socket.
    @raise Unix.Unix_error when the last attempt fails. *)

val of_channels : in_channel -> out_channel -> t
(** Wrap an existing stream; {!close} then closes neither channel. *)

val send : t -> Protocol.request -> unit

val recv : t -> Protocol.reply option
(** Next reply line; [None] on a closed stream. A malformed line surfaces
    as an [Error] reply rather than an exception. *)

val rpc : t -> Protocol.request -> Protocol.reply
(** {!send} then {!recv}; a closed stream surfaces as an [Error] reply. *)

val solve :
  t ->
  ?id:string ->
  ?lang:Protocol.lang ->
  ?method_:Sepsat.Decide.method_ ->
  ?timeout_s:float ->
  ?trace:Protocol.trace_ctx ->
  string ->
  Protocol.reply
(** [trace] propagates an existing trace context to the server (a client
    that is itself a hop, or a test); without it the server mints its
    own rid and the reply carries no trace. *)

val ping : t -> bool

val stats : t -> Json.t option
(** [None] when the server answered anything but a [stats] reply. *)

val metrics : t -> string option
(** The server's Prometheus exposition document, via the protocol's
    [metrics] op. [None] on any other reply. *)

val dump : t -> string option
(** The server's flight-recorder contents as one JSON document, via the
    protocol's [dump] op. [None] on any other reply. *)

val shutdown : t -> unit
(** Ask the server to stop; waits for the [bye]. *)

val close : t -> unit

val with_retry :
  ?attempts:int ->
  ?base_s:float ->
  ?cap_s:float ->
  path:string ->
  t ->
  (t -> Protocol.reply) ->
  t * Protocol.reply
(** [with_retry ~path t f] runs [f] (typically a {!solve}) and retries
    transient failures — [busy] replies, and dead connections (including
    reconnecting through [path], e.g. across a fleet backend restart) —
    with jittered exponential backoff: delay [min cap_s (base_s * 2^k)],
    jittered to 50–100%. Defaults: 8 attempts, 0.1 s base, 2 s cap (worst
    case ≈ 10 s, enough to ride out a backend respawn). Returns the
    session to keep using (it may be a fresh reconnect) and the final
    reply, which is the last transient failure when attempts run out.
    [~attempts:1] disables retrying. *)
