(** Wire types of the JSON-lines serving protocol.

    One JSON object per line in both directions; no framing beyond the
    newline, no binary. Requests select an operation with ["op"] (default
    ["solve"]) and carry a client-chosen ["id"] echoed verbatim on the
    matching reply, so one connection can pipeline requests and match
    out-of-order replies. See DESIGN.md §11 for the full specification.

    Requests:
    {v
    {"op":"solve","id":"r1","lang":"suf","formula":"(= x x)",
     "method":"hybrid","timeout_s":5}
    {"op":"ping","id":"p"}    {"op":"stats","id":"s"}    {"op":"shutdown"}
    v}

    Replies:
    {v
    {"id":"r1","status":"ok","verdict":"valid","origin":"solved",
     "cached":false,"digest":"...","witness":null,"solve_ms":12.3,
     "time_ms":12.5}
    {"id":"r1","status":"busy"}
    {"id":"r1","status":"error","reason":"parse error: ..."}
    v} *)

type lang = Suf | Smt

val lang_of_string : string -> lang option
(** ["suf"] or ["smt"]. *)

val lang_to_string : lang -> string

type trace_ctx = {
  tc_rid : string;  (** fleet-wide request id, e.g. ["fl-3121-17"] *)
  tc_path : string list;  (** hops crossed so far, outermost first *)
}
(** Dapper-style trace context on a solve request — wire field
    ["trace":{"rid":…,"path":[…]}]. The fleet router mints one per client
    request; a shard receiving it adopts the rid as its ambient
    {!Sepsat_obs.Trace_ctx}, so spans, flight records, logs and exemplars
    on both sides of the wire answer to the same id. Absent means the
    receiver mints its own rid — the pre-trace behaviour, so old clients
    and servers interoperate unchanged. *)

type solve_req = {
  sq_id : string;
  sq_lang : lang;
  sq_text : string;  (** formula (SUF s-expression) or SMT-LIB 2 script *)
  sq_method : Sepsat.Decide.method_;
  sq_timeout_s : float option;  (** [None]: the server's default budget *)
  sq_trace : trace_ctx option;
}

type verdict = Valid | Invalid | Unknown of string

type warm_req = {
  wr_id : string;
  wr_key : string;  (** full cache key: [digest ^ "|" ^ method] *)
  wr_verdict : verdict;  (** decisive only; [Unknown] is rejected *)
  wr_witness : string option;
  wr_solve_ms : float;
}

and request =
  | Solve of solve_req
  | Ping of string  (** payload: id *)
  | Stats_req of string
  | Metrics_req of string
      (** ["op":"metrics"] — a Prometheus exposition snapshot over the
          protocol (the HTTP listener serves the same document) *)
  | Dump_req of string
      (** ["op":"dump"] — the flight recorder's current contents, for
          debugging a live server without signals or filesystem access *)
  | Shutdown of string
  | Warm of warm_req
      (** ["op":"warm"] — seed the server's result cache with an
          already-computed decisive verdict without solving. The fleet
          router replays its persistent verdict log through this op when a
          backend (re)starts, so a fresh process begins life with the warm
          working set its ring arc earned before the restart. *)

val method_to_wire : Sepsat.Decide.method_ -> string
(** Inverse of [Decide.method_of_string] — ["hybrid:700"], not the
    pretty-printer's ["HYBRID(700)"]. Also the method component of cache
    keys. *)

val request_of_line : string -> (request, string) result
(** Parse one protocol line. Missing ["id"] defaults to [""]; missing
    ["op"] defaults to solve; unknown fields are ignored (forward
    compatibility). *)

val request_to_line : request -> string
(** One line, no trailing newline. *)

(** {1 Replies} *)

val verdict_of_sep : Sepsat_sep.Verdict.t -> verdict
(** Forgets the falsifying assignment — the wire carries its digest
    instead. *)

val verdict_to_string : verdict -> string
(** ["valid"], ["invalid"], ["unknown"]. *)

type origin =
  | Solved  (** ran the full pipeline *)
  | Cache_hit  (** answered from the result cache *)
  | Joined  (** deduplicated onto an identical in-flight solve *)

val origin_to_string : origin -> string

type reply_trace = {
  rt_rid : string;
  rt_served_by : string;
      (** the serving shard's [backend] const label, ["cache"] for a
          router disk-cache hit, [""] when unknown *)
  rt_hops : (string * float) list;
      (** (hop name, milliseconds). A fleet reply carries the full
          six-hop breakdown [router.parse]; [router.queue]; [wire];
          [shard.queue]; [shard.solve]; [reply], which sums to
          [sv_time_ms] by construction; a shard's reply to the router
          carries its local two ([shard.queue]; [shard.solve]). *)
  rt_recv_wall : float;  (** request arrival, replier's wall clock *)
  rt_recv_mono : float;  (** the same instant, replier's {!Sepsat_obs.Clock} *)
  rt_send_wall : float;  (** reply emission, replier's wall clock *)
  rt_send_mono : float;
}
(** Trace information on a reply — wire field ["trace":{…}]. The recv and
    send stamps are (wall, mono) {!Sepsat_obs.Clock.pair}s from the
    {e replier's} clocks; the receiver derives wire time as its own
    round-trip minus the replier's mono residency, so the two processes'
    wall clocks never need to agree. Present only when the request
    carried a {!trace_ctx} (or came through the fleet router). *)

type solved = {
  sv_id : string;
  sv_verdict : verdict;
  sv_origin : origin;
  sv_digest : string;  (** {!Sepsat_suf.Ast.digest} of the parsed formula *)
  sv_witness : string option;
      (** digest of the falsifying assignment, [Invalid] only *)
  sv_solve_ms : float;
      (** pipeline time of the run that produced the verdict (a cache hit
          reports the original solve's time) *)
  sv_time_ms : float;
      (** this request's wall time inside the replier — engine time from
          a single server, full router end-to-end time from a fleet *)
  sv_trace : reply_trace option;
}

type reply =
  | Ok_solve of solved
  | Warmed of string  (** warm accepted; payload: id *)
  | Busy of string  (** payload: id; the request queue was full — shed *)
  | Error of string * string  (** id, reason *)
  | Pong of string
  | Stats of string * Json.t
  | Metrics of string * string
      (** id, Prometheus text-format document. On the wire the document is
          one JSON string field ["prometheus"] (newlines escaped), next to
          a ["content_type"] field. *)
  | Dump of string * string
      (** id, flight-recorder JSON document (see
          {!Sepsat_obs.Flight.to_json}), carried as one JSON string field
          ["flight"] so the reply stays a single line. *)
  | Bye of string  (** shutdown acknowledged *)

val reply_to_line : reply -> string

val reply_of_line : string -> (reply, string) result

val reply_id : reply -> string
