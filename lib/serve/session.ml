type t = {
  ic : in_channel;
  oc : out_channel;
  fd : Unix.file_descr option;  (* [Some] iff we own the socket *)
}

let rec connect ?(retries = 0) path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () ->
    {
      ic = Unix.in_channel_of_descr fd;
      oc = Unix.out_channel_of_descr fd;
      fd = Some fd;
    }
  | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
    when retries > 0 ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Unix.sleepf 0.1;
    connect ~retries:(retries - 1) path
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let of_channels ic oc = { ic; oc; fd = None }

let send t req =
  output_string t.oc (Protocol.request_to_line req);
  output_char t.oc '\n';
  flush t.oc

let recv t =
  match input_line t.ic with
  | exception (End_of_file | Sys_error _) -> None
  | line -> (
    match Protocol.reply_of_line line with
    | Ok r -> Some r
    | Error e -> Some (Protocol.Error ("", "malformed reply: " ^ e)))

let rpc t req =
  send t req;
  match recv t with
  | Some r -> r
  | None -> Protocol.Error ("", "connection closed")

let solve t ?(id = "") ?(lang = Protocol.Suf)
    ?(method_ = Sepsat.Decide.Hybrid_default) ?timeout_s ?trace text =
  rpc t
    (Protocol.Solve
       {
         Protocol.sq_id = id;
         sq_lang = lang;
         sq_text = text;
         sq_method = method_;
         sq_timeout_s = timeout_s;
         sq_trace = trace;
       })

let ping t =
  match rpc t (Protocol.Ping "ping") with
  | Protocol.Pong _ -> true
  | _ -> false

let stats t =
  match rpc t (Protocol.Stats_req "stats") with
  | Protocol.Stats (_, j) -> Some j
  | _ -> None

let metrics t =
  match rpc t (Protocol.Metrics_req "metrics") with
  | Protocol.Metrics (_, body) -> Some body
  | _ -> None

let dump t =
  match rpc t (Protocol.Dump_req "dump") with
  | Protocol.Dump (_, body) -> Some body
  | _ -> None

let shutdown t = ignore (rpc t (Protocol.Shutdown ""))

let close t =
  match t.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ()

(* Retry loop for transient failures: a [busy] shed, or a connection that
   died under us (a fleet backend restarting, a router draining). Backoff
   is exponential with full jitter in the upper half of the window, so a
   thundering herd of clients retrying a restarted backend spreads out
   instead of re-arriving in lockstep. Anything else — verdicts, parse
   errors, protocol errors — is final and returned as-is. *)
let with_retry ?(attempts = 8) ?(base_s = 0.1) ?(cap_s = 2.0) ~path t f =
  let sleep k =
    let d = Float.min cap_s (base_s *. (2. ** float_of_int k)) in
    Unix.sleepf (d *. (0.5 +. Random.float 0.5))
  in
  let attempt t =
    (* Channel-level failures (EPIPE on send, EOF mid-reply) surface the
       same way [rpc] reports a closed stream. *)
    match f t with
    | r -> r
    | exception (Sys_error _ | End_of_file) ->
      Protocol.Error ("", "connection closed")
    | exception Unix.Unix_error _ -> Protocol.Error ("", "connection closed")
  in
  let rec go k t =
    let r = attempt t in
    let verdict =
      match r with
      | Protocol.Busy _ -> `Busy
      | Protocol.Error (_, "connection closed") -> `Conn
      | _ -> `Final
    in
    if verdict = `Final || k + 1 >= attempts then (t, r)
    else begin
      sleep k;
      let t =
        match verdict with
        | `Conn -> (
          close t;
          (* Reconnect may itself be refused while the server restarts;
             keep the dead session — the next attempt fails fast into
             another backoff round until attempts run out. *)
          match connect path with t' -> t' | exception _ -> t)
        | _ -> t
      in
      go (k + 1) t
    end
  in
  go 0 t
