type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* -- Parsing --------------------------------------------------------------- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "invalid hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let utf8_add buf cp =
    (* Encode a Unicode scalar value as UTF-8. *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let string_body () =
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        (match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            let cp = hex4 () in
            let cp =
              (* Surrogate pair: a high surrogate must be followed by
                 \uDC00-\uDFFF; decode the pair to one scalar value. *)
              if cp >= 0xD800 && cp <= 0xDBFF then begin
                if
                  !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo < 0xDC00 || lo > 0xDFFF then
                    fail "invalid low surrogate";
                  0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                end
                else fail "unpaired high surrogate"
              end
              else if cp >= 0xDC00 && cp <= 0xDFFF then
                fail "unpaired low surrogate"
              else cp
            in
            utf8_add buf cp
          | _ -> fail (Printf.sprintf "invalid escape \\%c" c)));
        loop ())
      | Some c when Char.code c < 0x20 ->
        fail "unescaped control character in string"
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with
      | Some ('+' | '-') -> advance ()
      | _ -> ());
      digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "invalid number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "expected value, found end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let members = ref [] in
        let rec loop () =
          skip_ws ();
          expect '"';
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          members := (k, v) :: !members;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            loop ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}' in object"
        in
        loop ();
        Obj (List.rev !members)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [] in
        let rec loop () =
          let v = value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            loop ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']' in array"
        in
        loop ();
        Arr (List.rev !items)
      end
    | Some '"' ->
      advance ();
      Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then raise (Fail (!pos, "trailing garbage after value"));
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
    Error (Printf.sprintf "JSON error at offset %d: %s" at msg)

(* -- Printing -------------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* Numbers must survive a print/parse round trip exactly: the trace
       clock anchors are epoch-seconds absolutes whose *differences*
       carry the signal, so truncating them to 12 significant digits
       (tens of microseconds at 1.8e9 s) corrupts sub-millisecond hop
       arithmetic downstream. Most numbers still print compactly. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f ->
      if Float.is_nan f || Float.abs f = infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (number_to_string f)
    | Str s -> escape_to buf s
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          go item)
        members;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* -- Accessors ------------------------------------------------------------- *)

let member k = function
  | Obj members -> List.assoc_opt k members
  | Null | Bool _ | Num _ | Str _ | Arr _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_num = function Num f -> Some f | _ -> None

let to_int = function Num f -> Some (int_of_float f) | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let mem_str k j = Option.bind (member k j) to_str

let mem_num k j = Option.bind (member k j) to_num

let mem_int k j = Option.bind (member k j) to_int

let mem_bool k j = Option.bind (member k j) to_bool
