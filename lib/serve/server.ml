module Obs = Sepsat_obs.Obs
module Prom = Sepsat_obs.Prom
module Clock = Sepsat_obs.Clock

let with_lock mu f =
  Mutex.lock mu;
  match f () with
  | v ->
    Mutex.unlock mu;
    v
  | exception e ->
    Mutex.unlock mu;
    raise e

let solved_of_outcome ?trace id (o : Engine.outcome) =
  Protocol.Ok_solve
    {
      Protocol.sv_id = id;
      sv_verdict = o.Engine.o_verdict;
      sv_origin = o.Engine.o_origin;
      sv_digest = o.Engine.o_digest;
      sv_witness = o.Engine.o_witness;
      sv_solve_ms = o.Engine.o_solve_ms;
      sv_time_ms = o.Engine.o_time_ms;
      sv_trace = trace;
    }

(* Reply-side trace for a request that arrived with a wire trace context:
   this process's recv/send clock anchors plus its local hop breakdown.
   The receiver (the fleet router) turns the anchors into the [wire] hop
   and splices these local hops into the six-hop fleet view. *)
let reply_trace_of (tc : Protocol.trace_ctx) ~recv_wall ~recv_mono
    (o : Engine.outcome) =
  let send_wall, send_mono = Clock.pair () in
  {
    Protocol.rt_rid = tc.Protocol.tc_rid;
    rt_served_by =
      Option.value (Prom.const_label "backend") ~default:"";
    rt_hops =
      [
        ("shard.queue", o.Engine.o_queue_ms); ("shard.solve", o.Engine.o_time_ms);
      ];
    rt_recv_wall = recv_wall;
    rt_recv_mono = recv_mono;
    rt_send_wall = send_wall;
    rt_send_mono = send_mono;
  }

let serve_channels eng ic oc =
  let out_mu = Mutex.create () in
  (* Out-standing submissions: the loop must not return (and the channels
     must not be torn down) while worker callbacks still owe replies. *)
  let pend_mu = Mutex.create () in
  let pend_cv = Condition.create () in
  let pending = ref 0 in
  let send reply =
    (* A vanished peer (EPIPE surfaces as Sys_error on channels) only costs
       the peer its replies; the serving loop keeps its invariants. *)
    try
      with_lock out_mu (fun () ->
          output_string oc (Protocol.reply_to_line reply);
          output_char oc '\n';
          flush oc)
    with Sys_error _ -> ()
  in
  let job_of (rq : Protocol.solve_req) =
    (* A wire trace context wins over local minting: the job adopts the
       fleet rid and hop path so everything recorded while serving it
       answers to the fleet-wide id. *)
    let rid, path =
      match rq.Protocol.sq_trace with
      | Some tc -> (Some tc.Protocol.tc_rid, tc.Protocol.tc_path)
      | None -> (None, [])
    in
    Engine.job ~lang:rq.Protocol.sq_lang ~method_:rq.Protocol.sq_method
      ?timeout_s:rq.Protocol.sq_timeout_s ~id:rq.Protocol.sq_id ?rid ~path
      rq.Protocol.sq_text
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> `Eof
    | exception Sys_error _ -> `Eof
    | line -> (
      if String.trim line = "" then loop ()
      else
        match Protocol.request_of_line line with
        | Error msg ->
          send (Protocol.Error ("", "bad request: " ^ msg));
          loop ()
        | Ok (Protocol.Ping id) ->
          send (Protocol.Pong id);
          loop ()
        | Ok (Protocol.Stats_req id) ->
          send (Protocol.Stats (id, Engine.stats_json eng));
          loop ()
        | Ok (Protocol.Metrics_req id) ->
          send (Protocol.Metrics (id, Prom.current ()));
          loop ()
        | Ok (Protocol.Dump_req id) ->
          send (Protocol.Dump (id, Sepsat_obs.Flight.to_json ()));
          loop ()
        | Ok (Protocol.Shutdown id) ->
          send (Protocol.Bye id);
          `Shutdown
        | Ok (Protocol.Warm w) ->
          if
            Engine.warm eng ~key:w.Protocol.wr_key
              ~verdict:w.Protocol.wr_verdict ~witness:w.Protocol.wr_witness
              ~solve_ms:w.Protocol.wr_solve_ms
          then send (Protocol.Warmed w.Protocol.wr_id)
          else
            send
              (Protocol.Error
                 (w.Protocol.wr_id, "warm requires a decisive verdict"));
          loop ()
        | Ok (Protocol.Solve rq) ->
          let id = rq.Protocol.sq_id in
          let recv_wall, recv_mono = Clock.pair () in
          with_lock pend_mu (fun () -> incr pending);
          let cb (reply : Engine.reply) =
            (match reply with
            | Ok o ->
              let trace =
                Option.map
                  (fun tc -> reply_trace_of tc ~recv_wall ~recv_mono o)
                  rq.Protocol.sq_trace
              in
              send (solved_of_outcome ?trace id o)
            | Error msg -> send (Protocol.Error (id, msg)));
            with_lock pend_mu (fun () ->
                decr pending;
                Condition.signal pend_cv)
          in
          if not (Engine.submit eng (job_of rq) cb) then begin
            with_lock pend_mu (fun () ->
                decr pending;
                Condition.signal pend_cv);
            send (Protocol.Busy id)
          end;
          loop ())
  in
  let res = loop () in
  with_lock pend_mu (fun () ->
      while !pending > 0 do
        Condition.wait pend_cv pend_mu
      done);
  res

(* -- Metrics scrape listener ----------------------------------------------- *)

(* A minimal HTTP/1.0 responder so a stock Prometheus (or curl
   --unix-socket) can scrape without speaking the JSON-lines protocol.
   Scrapes are rare, tiny and read-only, so connections are handled
   serially on the listener thread — no per-connection threads, no
   keep-alive, close after one response. *)
let http_respond oc status content_type body =
  Printf.fprintf oc
    "HTTP/1.0 %s\r\n\
     Content-Type: %s; charset=utf-8\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    status content_type (String.length body) body;
  flush oc

let handle_scrape cfd =
  let ic = Unix.in_channel_of_descr cfd in
  let oc = Unix.out_channel_of_descr cfd in
  (try
     let request_line = input_line ic in
     (* Drain headers to the blank line; we need none of them. *)
     (try
        while String.trim (input_line ic) <> "" do
          ()
        done
      with End_of_file -> ());
     match String.split_on_char ' ' (String.trim request_line) with
     | "GET" :: target :: _ when target = "/metrics" || target = "/" ->
       http_respond oc "200 OK" Prom.content_type (Prom.current ())
     | _ -> http_respond oc "404 Not Found" "text/plain" "not found\n"
   with End_of_file | Sys_error _ -> ());
  try Unix.close cfd with Unix.Unix_error _ -> ()

let serve_metrics ~path ~stop =
  (try Sys.remove path with Sys_error _ -> ());
  (* Bind before spawning: when this returns, the socket exists and a
     scraper may connect immediately. *)
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 16;
  Obs.log Obs.Info "serve: metrics on %s" path;
  Thread.create
    (fun () ->
      let rec loop () =
        if not (Atomic.get stop) then begin
          (match Unix.select [ listen_fd ] [] [] 0.25 with
          | [], _, _ -> ()
          | _ :: _, _, _ -> (
            match Unix.accept listen_fd with
            | exception
                Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
              ()
            | cfd, _ -> ( try handle_scrape cfd with _ -> ()))
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          loop ()
        end
      in
      loop ();
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    ()

let serve_unix ?metrics_path eng ~path =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (try Sys.remove path with Sys_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 64;
  let stopping = Atomic.make false in
  let metrics_th =
    Option.map (fun p -> serve_metrics ~path:p ~stop:stopping) metrics_path
  in
  let conns_mu = Mutex.create () in
  let conns = ref [] in
  let handle cfd =
    let ic = Unix.in_channel_of_descr cfd in
    let oc = Unix.out_channel_of_descr cfd in
    let res = try serve_channels eng ic oc with _ -> `Eof in
    (try flush oc with Sys_error _ -> ());
    (try Unix.close cfd with Unix.Unix_error _ -> ());
    if res = `Shutdown then begin
      Atomic.set stopping true;
      Obs.log Obs.Info "serve: shutdown requested"
    end
  in
  (* Poll-accept so a shutdown arriving on any connection stops the
     listener within one poll interval — closing a blocked accept(2) from
     another thread is not portable. *)
  let rec accept_loop () =
    if not (Atomic.get stopping) then begin
      (match Unix.select [ listen_fd ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept listen_fd with
        | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _)
          ->
          ()
        | cfd, _ ->
          let th = Thread.create handle cfd in
          with_lock conns_mu (fun () -> conns := th :: !conns))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  Obs.log Obs.Info "serve: listening on %s" path;
  accept_loop ();
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  List.iter Thread.join (with_lock conns_mu (fun () -> !conns));
  Option.iter Thread.join metrics_th;
  try Sys.remove path with Sys_error _ -> ()
