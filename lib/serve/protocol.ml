module Decide = Sepsat.Decide
module Verdict = Sepsat_sep.Verdict

type lang = Suf | Smt

let lang_of_string = function
  | "suf" -> Some Suf
  | "smt" -> Some Smt
  | _ -> None

let lang_to_string = function Suf -> "suf" | Smt -> "smt"

(* Dapper-style trace context carried on solve requests: the fleet
   router mints one rid per client request and every process it crosses
   adopts it, so spans, flight records, logs and exemplars from router
   and shard all answer to the same id. Absent on the wire means the
   receiver mints its own rid, exactly the pre-trace behaviour. *)
type trace_ctx = { tc_rid : string; tc_path : string list }

type solve_req = {
  sq_id : string;
  sq_lang : lang;
  sq_text : string;
  sq_method : Decide.method_;
  sq_timeout_s : float option;
  sq_trace : trace_ctx option;
}

type verdict = Valid | Invalid | Unknown of string

let verdict_to_string = function
  | Valid -> "valid"
  | Invalid -> "invalid"
  | Unknown _ -> "unknown"

type warm_req = {
  wr_id : string;
  wr_key : string;
  wr_verdict : verdict;
  wr_witness : string option;
  wr_solve_ms : float;
}

and request =
  | Solve of solve_req
  | Ping of string
  | Stats_req of string
  | Metrics_req of string
  | Dump_req of string
  | Shutdown of string
  | Warm of warm_req

(* pp_method prints "HYBRID(700)"; the wire uses the method_of_string
   syntax so requests survive a print/parse round trip. *)
let method_to_wire = function
  | Decide.Sd -> "sd"
  | Decide.Eij -> "eij"
  | Decide.Hybrid_default -> "hybrid"
  | Decide.Hybrid_at t -> Printf.sprintf "hybrid:%d" t
  | Decide.Svc_baseline -> "svc"
  | Decide.Lazy_baseline -> "lazy"
  | Decide.Portfolio -> "portfolio"
  | Decide.Components -> "components"
  | Decide.Cube_and_conquer -> "cube"

let request_of_line line =
  match Json.parse line with
  | Error e -> Result.Error e
  | Ok j -> (
    let id = Option.value (Json.mem_str "id" j) ~default:"" in
    match Option.value (Json.mem_str "op" j) ~default:"solve" with
    | "ping" -> Ok (Ping id)
    | "stats" -> Ok (Stats_req id)
    | "metrics" -> Ok (Metrics_req id)
    | "dump" -> Ok (Dump_req id)
    | "shutdown" -> Ok (Shutdown id)
    | "warm" -> (
      match Json.mem_str "key" j with
      | None -> Result.Error "warm request lacks a \"key\" field"
      | Some key -> (
        match Json.mem_str "verdict" j with
        | Some "valid" | Some "invalid" ->
          Ok
            (Warm
               {
                 wr_id = id;
                 wr_key = key;
                 wr_verdict =
                   (if Json.mem_str "verdict" j = Some "valid" then Valid
                    else Invalid);
                 wr_witness = Json.mem_str "witness" j;
                 wr_solve_ms =
                   Option.value (Json.mem_num "solve_ms" j) ~default:0.;
               })
        | _ -> Result.Error "warm verdict must be \"valid\" or \"invalid\""))
    | "solve" -> (
      match Json.mem_str "formula" j with
      | None -> Result.Error "solve request lacks a \"formula\" field"
      | Some text -> (
        let lang_s = Option.value (Json.mem_str "lang" j) ~default:"suf" in
        match lang_of_string lang_s with
        | None -> Result.Error (Printf.sprintf "unknown lang %S" lang_s)
        | Some lang -> (
          let method_s =
            Option.value (Json.mem_str "method" j) ~default:"hybrid"
          in
          match Decide.method_of_string method_s with
          | None -> Result.Error (Printf.sprintf "unknown method %S" method_s)
          | Some m ->
            let sq_trace =
              match Json.member "trace" j with
              | Some t -> (
                match Json.mem_str "rid" t with
                | None -> None
                | Some tc_rid ->
                  let tc_path =
                    match Json.member "path" t with
                    | Some (Json.Arr l) -> List.filter_map Json.to_str l
                    | _ -> []
                  in
                  Some { tc_rid; tc_path })
              | None -> None
            in
            Ok
              (Solve
                 {
                   sq_id = id;
                   sq_lang = lang;
                   sq_text = text;
                   sq_method = m;
                   sq_timeout_s = Json.mem_num "timeout_s" j;
                   sq_trace;
                 }))))
    | op -> Result.Error (Printf.sprintf "unknown op %S" op))

let request_to_line = function
  | Ping id -> Json.to_string (Obj [ ("op", Str "ping"); ("id", Str id) ])
  | Stats_req id ->
    Json.to_string (Obj [ ("op", Str "stats"); ("id", Str id) ])
  | Metrics_req id ->
    Json.to_string (Obj [ ("op", Str "metrics"); ("id", Str id) ])
  | Dump_req id -> Json.to_string (Obj [ ("op", Str "dump"); ("id", Str id) ])
  | Shutdown id ->
    Json.to_string (Obj [ ("op", Str "shutdown"); ("id", Str id) ])
  | Warm w ->
    Json.to_string
      (Obj
         [
           ("op", Str "warm");
           ("id", Str w.wr_id);
           ("key", Str w.wr_key);
           ("verdict", Str (verdict_to_string w.wr_verdict));
           ( "witness",
             match w.wr_witness with Some s -> Json.Str s | None -> Json.Null
           );
           ("solve_ms", Num w.wr_solve_ms);
         ])
  | Solve r ->
    let base =
      [
        ("op", Json.Str "solve");
        ("id", Json.Str r.sq_id);
        ("lang", Json.Str (lang_to_string r.sq_lang));
        ("formula", Json.Str r.sq_text);
        ("method", Json.Str (method_to_wire r.sq_method));
      ]
    in
    let fields =
      match r.sq_timeout_s with
      | None -> base
      | Some t -> base @ [ ("timeout_s", Json.Num t) ]
    in
    let fields =
      match r.sq_trace with
      | None -> fields
      | Some tc ->
        fields
        @ [
            ( "trace",
              Json.Obj
                [
                  ("rid", Json.Str tc.tc_rid);
                  ( "path",
                    Json.Arr (List.map (fun s -> Json.Str s) tc.tc_path) );
                ] );
          ]
    in
    Json.to_string (Obj fields)

(* -- Replies --------------------------------------------------------------- *)

let verdict_of_sep = function
  | Verdict.Valid -> Valid
  | Verdict.Invalid _ -> Invalid
  | Verdict.Unknown why -> Unknown why

type origin = Solved | Cache_hit | Joined

let origin_to_string = function
  | Solved -> "solved"
  | Cache_hit -> "cache"
  | Joined -> "joined"

let origin_of_string = function
  | "solved" -> Some Solved
  | "cache" -> Some Cache_hit
  | "joined" -> Some Joined
  | _ -> None

(* The trace a reply carries back: who served it, the hop-latency
   breakdown, and this replier's clock anchor (recv/send as wall+mono
   pairs sampled with Clock.pair). The receiver computes wire time as
   rtt minus the replier's own mono residency (send_mono - recv_mono) —
   only same-process mono differences, so clock skew cancels out. *)
type reply_trace = {
  rt_rid : string;
  rt_served_by : string;  (* backend label, "cache", or "" *)
  rt_hops : (string * float) list;  (* (hop name, milliseconds) *)
  rt_recv_wall : float;
  rt_recv_mono : float;
  rt_send_wall : float;
  rt_send_mono : float;
}

type solved = {
  sv_id : string;
  sv_verdict : verdict;
  sv_origin : origin;
  sv_digest : string;
  sv_witness : string option;
  sv_solve_ms : float;
  sv_time_ms : float;
  sv_trace : reply_trace option;
}

type reply =
  | Ok_solve of solved
  | Warmed of string
  | Busy of string
  | Error of string * string
  | Pong of string
  | Stats of string * Json.t
  | Metrics of string * string
  | Dump of string * string
  | Bye of string

let reply_to_line = function
  | Busy id -> Json.to_string (Obj [ ("id", Str id); ("status", Str "busy") ])
  | Warmed id ->
    Json.to_string (Obj [ ("id", Str id); ("status", Str "warmed") ])
  | Error (id, reason) ->
    Json.to_string
      (Obj [ ("id", Str id); ("status", Str "error"); ("reason", Str reason) ])
  | Pong id -> Json.to_string (Obj [ ("id", Str id); ("status", Str "pong") ])
  | Bye id -> Json.to_string (Obj [ ("id", Str id); ("status", Str "bye") ])
  | Stats (id, j) ->
    Json.to_string
      (Obj [ ("id", Str id); ("status", Str "stats"); ("stats", j) ])
  | Metrics (id, body) ->
    (* The exposition document travels as one JSON string; line breaks
       survive as \n escapes, so the reply is still one protocol line. *)
    Json.to_string
      (Obj
         [
           ("id", Str id);
           ("status", Str "metrics");
           ("content_type", Str Sepsat_obs.Prom.content_type);
           ("prometheus", Str body);
         ])
  | Dump (id, body) ->
    (* Like Metrics: the flight-recorder JSON document travels as one
       string field, keeping the reply a single protocol line. *)
    Json.to_string
      (Obj [ ("id", Str id); ("status", Str "dump"); ("flight", Str body) ])
  | Ok_solve s ->
    let fields =
      [
        ("id", Json.Str s.sv_id);
        ("status", Json.Str "ok");
        ("verdict", Json.Str (verdict_to_string s.sv_verdict));
      ]
      @ (match s.sv_verdict with
        | Unknown why -> [ ("reason", Json.Str why) ]
        | Valid | Invalid -> [])
      @ [
          ("origin", Json.Str (origin_to_string s.sv_origin));
          ("cached", Json.Bool (s.sv_origin <> Solved));
          ("digest", Json.Str s.sv_digest);
          ( "witness",
            match s.sv_witness with Some w -> Json.Str w | None -> Json.Null );
          ("solve_ms", Json.Num s.sv_solve_ms);
          ("time_ms", Json.Num s.sv_time_ms);
        ]
      @
      match s.sv_trace with
      | None -> []
      | Some tr ->
        [
          ( "trace",
            Json.Obj
              [
                ("rid", Json.Str tr.rt_rid);
                ("served_by", Json.Str tr.rt_served_by);
                ( "hops",
                  Json.Arr
                    (List.map
                       (fun (name, ms) ->
                         Json.Arr [ Json.Str name; Json.Num ms ])
                       tr.rt_hops) );
                ("recv_wall", Json.Num tr.rt_recv_wall);
                ("recv_mono", Json.Num tr.rt_recv_mono);
                ("send_wall", Json.Num tr.rt_send_wall);
                ("send_mono", Json.Num tr.rt_send_mono);
              ] );
        ]
    in
    Json.to_string (Obj fields)

let reply_of_line line =
  match Json.parse line with
  | Result.Error e -> Result.Error e
  | Ok j -> (
    let id = Option.value (Json.mem_str "id" j) ~default:"" in
    match Json.mem_str "status" j with
    | None -> Result.Error "reply lacks a \"status\" field"
    | Some "busy" -> Ok (Busy id)
    | Some "warmed" -> Ok (Warmed id)
    | Some "pong" -> Ok (Pong id)
    | Some "bye" -> Ok (Bye id)
    | Some "error" ->
      Ok
        (Error (id, Option.value (Json.mem_str "reason" j) ~default:"unknown"))
    | Some "stats" ->
      Ok (Stats (id, Option.value (Json.member "stats" j) ~default:Json.Null))
    | Some "metrics" ->
      Ok
        (Metrics (id, Option.value (Json.mem_str "prometheus" j) ~default:""))
    | Some "dump" ->
      Ok (Dump (id, Option.value (Json.mem_str "flight" j) ~default:""))
    | Some "ok" -> (
      let verdict =
        match Json.mem_str "verdict" j with
        | Some "valid" -> Some Valid
        | Some "invalid" -> Some Invalid
        | Some "unknown" ->
          Some
            (Unknown (Option.value (Json.mem_str "reason" j) ~default:""))
        | _ -> None
      in
      match verdict with
      | None -> Result.Error "ok reply lacks a valid \"verdict\" field"
      | Some sv_verdict ->
        let sv_origin =
          match Option.bind (Json.mem_str "origin" j) origin_of_string with
          | Some o -> o
          | None ->
            if Option.value (Json.mem_bool "cached" j) ~default:false then
              Cache_hit
            else Solved
        in
        let sv_trace =
          match Json.member "trace" j with
          | Some t -> (
            match Json.mem_str "rid" t with
            | None -> None
            | Some rt_rid ->
              let rt_hops =
                match Json.member "hops" t with
                | Some (Json.Arr l) ->
                  List.filter_map
                    (function
                      | Json.Arr [ Json.Str name; Json.Num ms ] ->
                        Some (name, ms)
                      | _ -> None)
                    l
                | _ -> []
              in
              let num k = Option.value (Json.mem_num k t) ~default:0. in
              Some
                {
                  rt_rid;
                  rt_served_by =
                    Option.value (Json.mem_str "served_by" t) ~default:"";
                  rt_hops;
                  rt_recv_wall = num "recv_wall";
                  rt_recv_mono = num "recv_mono";
                  rt_send_wall = num "send_wall";
                  rt_send_mono = num "send_mono";
                })
          | None -> None
        in
        Ok
          (Ok_solve
             {
               sv_id = id;
               sv_verdict;
               sv_origin;
               sv_digest = Option.value (Json.mem_str "digest" j) ~default:"";
               sv_witness = Json.mem_str "witness" j;
               sv_solve_ms =
                 Option.value (Json.mem_num "solve_ms" j) ~default:0.;
               sv_time_ms =
                 Option.value (Json.mem_num "time_ms" j) ~default:0.;
               sv_trace;
             }))
    | Some other -> Result.Error (Printf.sprintf "unknown status %S" other))

let reply_id = function
  | Ok_solve s -> s.sv_id
  | Warmed id
  | Busy id
  | Error (id, _)
  | Pong id
  | Stats (id, _)
  | Metrics (id, _)
  | Dump (id, _)
  | Bye id ->
    id
