module Ast = Sepsat_suf.Ast
module Parse = Sepsat_suf.Parse
module Sset = Sepsat_util.Sset
module Brute = Sepsat_sep.Brute
module Component = Sepsat_sep.Component
module Verdict = Sepsat_sep.Verdict
module Hybrid = Sepsat_encode.Hybrid
module F = Sepsat_prop.Formula
module Tseitin = Sepsat_prop.Tseitin
module Solver = Sepsat_sat.Solver
module Lit = Sepsat_sat.Lit
module Deadline = Sepsat_util.Deadline
module Obs = Sepsat_obs.Obs
module Metrics = Sepsat_obs.Metrics
module Trace_ctx = Sepsat_obs.Trace_ctx

let m_components = lazy (Metrics.counter "parallel.components")

let m_cubes = lazy (Metrics.counter "parallel.cubes")

let m_cubes_pruned = lazy (Metrics.counter "parallel.cubes_pruned")

let default_pool () =
  max 1 (min 4 (Domain.recommended_domain_count () - 1))

(* Successive pools in one process (every serve request builds one) get
   distinct lane names — "components#3:w0", not a second "components:w0" —
   so exported trace lanes and flight records never interleave two pools'
   work under one label. *)
let pool_gen = Atomic.make 0

let next_pool_gen () = 1 + Atomic.fetch_and_add pool_gen 1

(* -- Component pool -------------------------------------------------------- *)

type components_result = {
  cr_verdict : Verdict.t;
  cr_assignment : Brute.assignment option;
  cr_certified : bool option;
  cr_n_components : int;
  cr_pool : int;
  cr_cnf_clauses : int;
  cr_sat_stats : Solver.stats option;
}

(* Outcome of one component's satisfiability check, stored by workers. *)
type comp_res = {
  k_verdict : Verdict.t;  (** [Valid] = goal unsatisfiable *)
  k_assignment : Brute.assignment option;
  k_certified : bool option;
  k_cnf : int;
  k_stats : Solver.stats option;
}

(* Components own disjoint g-constants and Boolean constants, and every
   component decodes all p-constants at the same injected values, so the
   union of their models is a function; a duplicate name with two values
   means the split was wrong — fail loudly rather than return a witness the
   certifier would reject for unclear reasons. *)
let merge_assignments asgs =
  let dedup l =
    let l = List.sort_uniq compare l in
    let rec dup = function
      | (n1, _) :: ((n2, _) :: _ as tl) ->
        if String.equal n1 n2 then
          invalid_arg
            (Printf.sprintf
               "Parallel: components disagree on witness value of %S" n1)
        else dup tl
      | _ -> ()
    in
    dup l;
    l
  in
  {
    Brute.ints = dedup (List.concat_map (fun a -> a.Brute.ints) asgs);
    bools = dedup (List.concat_map (fun a -> a.Brute.bools) asgs);
  }

let solve_components ?pool ?simplify ?stop ?p_value ~config ~deadline ~certify
    _ctx ~p_consts (split : Component.split) =
  let pool = match pool with Some p -> max 1 p | None -> default_pool () in
  let simplify =
    match simplify with Some b -> b | None -> Atomic.get Decide_flags.simplify
  in
  let comps = Array.of_list split.Component.components in
  let n = Array.length comps in
  if Obs.enabled () then Metrics.add (Lazy.force m_components) n;
  let printed =
    Array.map (fun c -> Format.asprintf "%a" Ast.pp c.Component.goal) comps
  in
  let p_value_table =
    match p_value with
    | Some t -> t
    | None -> Hybrid.p_values_of split.Component.classes ~p_consts
  in
  (* Short-circuit flag for the pool itself; the parent's [stop] (if any) is
     folded into the deadline so translation loops and the CDCL deadline
     poll observe it too — [Solver.set_stop] holds only one flag. *)
  let pool_stop = Atomic.make false in
  let deadline =
    let d =
      match stop with
      | Some flag -> Deadline.with_stop deadline flag
      | None -> deadline
    in
    Deadline.with_stop d pool_stop
  in
  let next = Atomic.make 0 in
  let results : comp_res option array = Array.make n None in
  let winner : (int * comp_res) option Atomic.t = Atomic.make None in
  let run_component i =
    let r =
      Obs.span ~cat:"parallel"
        (Printf.sprintf "component:%d" i)
        (fun () ->
        let ctx' = Ast.create_ctx () in
        let goal = Parse.formula ctx' printed.(i) in
        (* The component goal is a conjunctive factor of ¬f: it is
           unsatisfiable exactly when ¬goal is valid, so the standard
           pipeline applies to ¬goal. *)
        let target = Ast.not_ ctx' goal in
        let p_tbl = Hashtbl.create 16 in
        List.iter (fun (k, v) -> Hashtbl.replace p_tbl k v) p_value_table;
        let p_value name =
          match Hashtbl.find_opt p_tbl name with
          | Some v -> v
          | None ->
            invalid_arg (Printf.sprintf "Parallel: unknown p-constant %S" name)
        in
        match Hybrid.encode ~config ~deadline ~p_value ctx' ~p_consts target with
        | exception Hybrid.Translation_blowup ->
          {
            k_verdict = Verdict.Unknown "translation blowup";
            k_assignment = None;
            k_certified = None;
            k_cnf = 0;
            k_stats = None;
          }
        | exception Deadline.Timeout ->
          {
            k_verdict =
              Verdict.Unknown
                (if Deadline.interrupted deadline then "cancelled"
                 else "timeout");
            k_assignment = None;
            k_certified = None;
            k_cnf = 0;
            k_stats = None;
          }
        | encoded ->
          let solver = Solver.create () in
          Solver.set_simplify solver simplify;
          Solver.set_stop solver pool_stop;
          let proof =
            if certify then Some (Solver.start_proof solver) else None
          in
          let mode = if certify then Tseitin.Full else Tseitin.Polarity in
          let tseitin = Tseitin.create ~mode solver in
          Tseitin.assert_root tseitin
            (F.not_ encoded.Hybrid.prop_ctx encoded.Hybrid.f_bool);
          let outcome = Solver.solve ~deadline solver in
          let verdict, assignment =
            match outcome with
            | Solver.Unsat -> (Verdict.Valid, None)
            | Solver.Unknown ->
              ( Verdict.Unknown
                  (if Atomic.get pool_stop || Deadline.interrupted deadline
                   then "cancelled"
                   else "timeout"),
                None )
            | Solver.Sat ->
              let assign v =
                match Tseitin.find_var tseitin v with
                | Some lit -> Solver.value solver lit
                | None -> false
              in
              let a = encoded.Hybrid.decode assign in
              (Verdict.Invalid a, Some a)
          in
          let certified =
            match (verdict, proof) with
            | Verdict.Valid, Some p -> Some (Sepsat_sat.Drup_check.certified p)
            | (Verdict.Invalid _ | Verdict.Unknown _), Some _ | _, None -> None
          in
          let res =
            {
              k_verdict = verdict;
              k_assignment = assignment;
              k_certified = certified;
              k_cnf = Tseitin.clauses_added tseitin;
              k_stats = Some (Solver.stats solver);
            }
          in
          (match verdict with
          | Verdict.Valid ->
            if Atomic.compare_and_set winner None (Some (i, res)) then begin
              Atomic.set pool_stop true;
              Obs.instant ~cat:"parallel" "shortcircuit"
            end
          | Verdict.Invalid _ | Verdict.Unknown _ -> ());
          res)
    in
    results.(i) <- Some r
  in
  let gen = next_pool_gen () in
  (* Child domains start with an empty trace context; hand them the
     spawner's so their spans carry the originating request's rid. *)
  let tctx = Trace_ctx.capture () in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        if Atomic.get pool_stop then
          results.(i) <-
            Some
              {
                k_verdict = Verdict.Unknown "cancelled";
                k_assignment = None;
                k_certified = None;
                k_cnf = 0;
                k_stats = None;
              }
        else run_component i;
        loop ()
      end
    in
    loop ()
  in
  let n_domains = max 1 (min pool n) in
  Obs.span ~cat:"parallel" "components.pool" (fun () ->
      (* Inline on the calling domain when the pool is one wide (keep the
         caller's lane name); otherwise spawn named worker lanes carrying
         the caller's trace context. *)
      if n_domains = 1 then worker ()
      else
        let domains =
          List.init n_domains (fun w ->
              Domain.spawn (fun () ->
                  Obs.name_thread (Printf.sprintf "components#%d:w%d" gen w);
                  Trace_ctx.with_ctx tctx worker))
        in
        List.iter Domain.join domains);
  let results =
    Array.map
      (function
        | Some r -> r
        | None ->
          {
            k_verdict = Verdict.Unknown "cancelled";
            k_assignment = None;
            k_certified = None;
            k_cnf = 0;
            k_stats = None;
          })
      results
  in
  let cnf_clauses = Array.fold_left (fun acc r -> acc + r.k_cnf) 0 results in
  let verdict, assignment, certified, stats =
    match Atomic.get winner with
    | Some (_, r) -> (Verdict.Valid, None, r.k_certified, r.k_stats)
    | None -> (
      let unknown =
        Array.fold_left
          (fun acc r ->
            match (acc, r.k_verdict) with
            | Some _, _ -> acc
            | None, Verdict.Unknown why -> Some why
            | None, _ -> None)
          None results
      in
      match unknown with
      | Some why -> (Verdict.Unknown why, None, None, None)
      | None ->
        let asgs =
          Array.to_list results
          |> List.filter_map (fun r -> r.k_assignment)
        in
        let merged = merge_assignments asgs in
        ( Verdict.Invalid merged,
          Some merged,
          None,
          if n > 0 then results.(0).k_stats else None ))
  in
  {
    cr_verdict = verdict;
    cr_assignment = assignment;
    cr_certified = certified;
    cr_n_components = n;
    cr_pool = n_domains;
    cr_cnf_clauses = cnf_clauses;
    cr_sat_stats = stats;
  }

(* -- Cube-and-conquer ------------------------------------------------------ *)

type cubes_result = {
  qr_verdict : Verdict.t;
  qr_assignment : Brute.assignment option;
  qr_n_cubes : int;
  qr_pruned : int;
  qr_pool : int;
  qr_cnf_clauses : int;
  qr_sat_stats : Solver.stats option;
  qr_encode_stats : Hybrid.stats option;
  qr_phases : (string * float) list;
}

(* A cube containing every literal of a failed-assumption core is
   unsatisfiable by subsumption — the sibling that produced the core already
   did the work. *)
let cube_subsumed cores cube =
  List.exists
    (fun core ->
      List.for_all (fun l -> Array.exists (Lit.equal l) cube) core)
    cores

let solve_cubes ?pool ?simplify ?stop ?(k = 4) ?(probe_budget = 2000) ~config
    ~deadline ctx ~p_consts formula =
  let pool = match pool with Some p -> max 1 p | None -> default_pool () in
  let simplify =
    match simplify with Some b -> b | None -> Atomic.get Decide_flags.simplify
  in
  let pool_stop = Atomic.make false in
  let deadline =
    let d =
      match stop with
      | Some flag -> Deadline.with_stop deadline flag
      | None -> deadline
    in
    Deadline.with_stop d pool_stop
  in
  let t0 = Deadline.wall_now () in
  let unknown ~phases why =
    {
      qr_verdict = Verdict.Unknown why;
      qr_assignment = None;
      qr_n_cubes = 0;
      qr_pruned = 0;
      qr_pool = 0;
      qr_cnf_clauses = 0;
      qr_sat_stats = None;
      qr_encode_stats = None;
      qr_phases = phases;
    }
  in
  match
    Obs.span ~cat:"parallel" "cube.encode" (fun () ->
        Hybrid.encode ~config ~deadline ctx ~p_consts formula)
  with
  | exception Hybrid.Translation_blowup ->
    unknown
      ~phases:[ ("encode", Deadline.wall_now () -. t0) ]
      "translation blowup"
  | exception Deadline.Timeout ->
    unknown
      ~phases:[ ("encode", Deadline.wall_now () -. t0) ]
      (if Deadline.interrupted deadline then "cancelled" else "timeout")
  | encoded ->
    let t_enc = Deadline.wall_now () in
    (* The master stays unsimplified so [export_cnf] hands workers the exact
       problem clauses under the original numbering — worker models then
       index master variables directly and [Tseitin.find_var] decodes them. *)
    let master = Solver.create () in
    Solver.set_simplify master false;
    Solver.set_stop master pool_stop;
    let tseitin = Tseitin.create ~mode:Tseitin.Polarity master in
    Obs.span ~cat:"parallel" "cube.cnf" (fun () ->
        Tseitin.assert_root tseitin
          (F.not_ encoded.Hybrid.prop_ctx encoded.Hybrid.f_bool));
    let t_cnf = Deadline.wall_now () in
    let decode_with model =
      let assign v =
        match Tseitin.find_var tseitin v with
        | Some lit ->
          let b = model.(Lit.var lit) in
          if Lit.sign lit then b else not b
        | None -> false
      in
      encoded.Hybrid.decode assign
    in
    let probe =
      Obs.span ~cat:"parallel" "cube.probe" (fun () ->
          Solver.solve ~deadline ~conflict_budget:probe_budget master)
    in
    let t_probe = Deadline.wall_now () in
    let phases_upto t =
      [
        ("encode", t_enc -. t0);
        ("cnf", t_cnf -. t_enc);
        ("probe", t_probe -. t_cnf);
        ("cube", t -. t_probe);
      ]
    in
    let finish ?assignment ?(n_cubes = 0) ?(pruned = 0) ?(pool = 0) verdict =
      {
        qr_verdict = verdict;
        qr_assignment = assignment;
        qr_n_cubes = n_cubes;
        qr_pruned = pruned;
        qr_pool = pool;
        qr_cnf_clauses = Tseitin.clauses_added tseitin;
        qr_sat_stats = Some (Solver.stats master);
        qr_encode_stats = Some encoded.Hybrid.stats;
        qr_phases = phases_upto (Deadline.wall_now ());
      }
    in
    (match probe with
    | Solver.Unsat -> finish Verdict.Valid
    | Solver.Sat ->
      let a = decode_with (Solver.model master) in
      finish ~assignment:a (Verdict.Invalid a)
    | Solver.Unknown when Deadline.exceeded deadline ->
      finish
        (Verdict.Unknown
           (if Deadline.interrupted deadline then "cancelled" else "timeout"))
    | Solver.Unknown ->
      (* Budget exhausted: the probe seeded VSIDS — branch on its favorites. *)
      let vars = Solver.top_vars master k in
      if vars = [] then finish (Verdict.Unknown "no split variables")
      else begin
        let vars = Array.of_list vars in
        let k' = Array.length vars in
        let n_cubes = 1 lsl k' in
        if Obs.enabled () then Metrics.add (Lazy.force m_cubes) n_cubes;
        let nvars, clauses = Solver.export_cnf master in
        let cube_of ix =
          Array.init k' (fun j ->
              Lit.make vars.(j) (ix land (1 lsl j) <> 0))
        in
        let next = Atomic.make 0 in
        let sat_model : bool array option Atomic.t = Atomic.make None in
        let db_unsat = Atomic.make false in
        let any_unknown = Atomic.make false in
        let pruned = Atomic.make 0 in
        let cores_mu = Mutex.create () in
        let cores : Lit.t list list ref = ref [] in
        let worker () =
          let solver = Solver.create () in
          Solver.set_simplify solver simplify;
          Solver.set_stop solver pool_stop;
          for _ = 1 to nvars do
            ignore (Solver.new_var solver)
          done;
          List.iter (Solver.add_clause solver) clauses;
          let rec loop () =
            let ix = Atomic.fetch_and_add next 1 in
            if ix < n_cubes && not (Atomic.get pool_stop) then begin
              let cube = cube_of ix in
              let known_cores =
                Mutex.lock cores_mu;
                let cs = !cores in
                Mutex.unlock cores_mu;
                cs
              in
              if cube_subsumed known_cores cube then begin
                Atomic.incr pruned;
                if Obs.enabled () then
                  Metrics.incr (Lazy.force m_cubes_pruned)
              end
              else
                Obs.span ~cat:"parallel"
                  (Printf.sprintf "cube:%d" ix)
                  (fun () ->
                    match
                      Solver.solve ~deadline
                        ~assumptions:(Array.to_list cube) solver
                    with
                    | Solver.Sat ->
                      if
                        Atomic.compare_and_set sat_model None
                          (Some (Solver.model solver))
                      then begin
                        Atomic.set pool_stop true;
                        Obs.instant ~cat:"parallel" "cube.sat"
                      end
                    | Solver.Unsat -> (
                      match Solver.unsat_core solver with
                      | [] ->
                        (* The database alone is unsatisfiable — every
                           sibling cube is moot. *)
                        Atomic.set db_unsat true;
                        Atomic.set pool_stop true;
                        Obs.instant ~cat:"parallel" "cube.db_unsat"
                      | core ->
                        Mutex.lock cores_mu;
                        cores := core :: !cores;
                        Mutex.unlock cores_mu)
                    | Solver.Unknown -> Atomic.set any_unknown true);
              loop ()
            end
          in
          loop ()
        in
        let n_domains = max 1 (min pool n_cubes) in
        let gen = next_pool_gen () in
        let tctx = Trace_ctx.capture () in
        Obs.span ~cat:"parallel" "cube.pool" (fun () ->
            if n_domains = 1 then worker ()
            else
              let domains =
                List.init n_domains (fun w ->
                    Domain.spawn (fun () ->
                        Obs.name_thread
                          (Printf.sprintf "cubes#%d:w%d" gen w);
                        Trace_ctx.with_ctx tctx worker))
              in
              List.iter Domain.join domains);
        let pruned = Atomic.get pruned in
        match Atomic.get sat_model with
        | Some model ->
          let a = decode_with model in
          finish ~assignment:a ~n_cubes ~pruned ~pool:n_domains
            (Verdict.Invalid a)
        | None ->
          if Atomic.get db_unsat then
            finish ~n_cubes ~pruned ~pool:n_domains Verdict.Valid
          else if Atomic.get any_unknown || Atomic.get next < n_cubes then
            finish ~n_cubes ~pruned ~pool:n_domains
              (Verdict.Unknown
                 (if Deadline.interrupted deadline then "cancelled"
                  else "timeout"))
          else
            (* Every cube came back unsatisfiable (or was pruned by a core,
               which implies the same): the cubes are a tautology over the
               split variables, so the database is unsatisfiable. *)
            finish ~n_cubes ~pruned ~pool:n_domains Verdict.Valid
      end)
