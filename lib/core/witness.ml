module Elim = Sepsat_suf.Elim
module Interp = Sepsat_suf.Interp
module Brute = Sepsat_sep.Brute

type t = {
  ints : (string * int) list;
  bools : (string * bool) list;
  funcs : (string * (int list * int) list) list;
  preds : (string * (int list * bool) list) list;
}

let of_assignment (elim : Elim.result) (a : Brute.assignment) =
  let int_of name =
    match List.assoc_opt name a.Brute.ints with Some v -> v | None -> 0
  in
  let bool_of name =
    match List.assoc_opt name a.Brute.bools with Some b -> b | None -> false
  in
  (* Definition arguments are application-free, so a constants-only
     interpretation is enough to evaluate them. *)
  let const_interp =
    {
      Interp.func =
        (fun name args ->
          match args with
          | [] -> int_of name
          | _ :: _ -> invalid_arg "Witness.of_assignment: nested application");
      Interp.pred =
        (fun name args ->
          match args with
          | [] -> bool_of name
          | _ :: _ -> invalid_arg "Witness.of_assignment: nested application");
    }
  in
  let ftables : (string, (int list * int) list) Hashtbl.t = Hashtbl.create 16 in
  let ptables : (string, (int list * bool) list) Hashtbl.t = Hashtbl.create 16 in
  let forder = ref [] and porder = ref [] in
  let append tbl order key entry =
    (match Hashtbl.find_opt tbl key with
    | None ->
      order := key :: !order;
      Hashtbl.add tbl key [ entry ]
    | Some prev -> Hashtbl.replace tbl key (prev @ [ entry ]))
  in
  List.iter
    (fun (d : Elim.def) ->
      let vals = List.map (Interp.eval_term const_interp) d.Elim.args in
      if d.Elim.is_predicate then
        append ptables porder d.symbol (vals, bool_of d.fresh)
      else append ftables forder d.symbol (vals, int_of d.fresh))
    elim.Elim.defs;
  {
    ints = a.Brute.ints;
    bools = a.Brute.bools;
    funcs = List.rev_map (fun s -> (s, Hashtbl.find ftables s)) !forder;
    preds = List.rev_map (fun s -> (s, Hashtbl.find ptables s)) !porder;
  }

(* First-match order mirrors the elimination's ITE chains. *)
let lookup table default name vals =
  match List.assoc_opt name table with
  | None -> default
  | Some entries -> (
    match List.find_opt (fun (vs, _) -> vs = vals) entries with
    | Some (_, v) -> v
    | None -> default)

let to_interp w =
  {
    Interp.func =
      (fun name args ->
        match args with
        | [] -> (
          match List.assoc_opt name w.ints with Some v -> v | None -> 0)
        | _ :: _ -> lookup w.funcs 0 name args);
    Interp.pred =
      (fun name args ->
        match args with
        | [] -> (
          match List.assoc_opt name w.bools with Some b -> b | None -> false)
        | _ :: _ -> lookup w.preds false name args);
  }

let eval w f = Interp.eval (to_interp w) f

let falsifies w f = not (eval w f)

let pp ppf w =
  let pp_args ppf vals =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      Format.pp_print_int ppf vals
  in
  List.iter (fun (n, v) -> Format.fprintf ppf "%s = %d@." n v) w.ints;
  List.iter (fun (n, b) -> Format.fprintf ppf "%s = %b@." n b) w.bools;
  List.iter
    (fun (f, entries) ->
      List.iter
        (fun (vals, v) -> Format.fprintf ppf "%s(%a) = %d@." f pp_args vals v)
        entries;
      Format.fprintf ppf "%s(_) = 0 otherwise@." f)
    w.funcs;
  List.iter
    (fun (p, entries) ->
      List.iter
        (fun (vals, b) -> Format.fprintf ppf "%s(%a) = %b@." p pp_args vals b)
        entries;
      Format.fprintf ppf "%s(_) = false otherwise@." p)
    w.preds
