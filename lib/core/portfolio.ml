type member = Decide.method_ =
  | Sd
  | Eij
  | Hybrid_default
  | Hybrid_at of int
  | Svc_baseline
  | Lazy_baseline
  | Portfolio
  | Components
  | Cube_and_conquer

let members = Decide.portfolio_members

let decide ?deadline ?certify ?simplify ctx formula =
  Decide.decide ~method_:Decide.Portfolio ?deadline ?certify ?simplify ctx
    formula

let winner (r : Decide.result) = r.Decide.winner
