(** Concrete first-order witnesses for [Invalid] verdicts.

    A falsifying assignment of the eliminated formula [F_sep] (the payload of
    {!Sepsat_sep.Verdict.Invalid}) determines a falsifying interpretation of
    the *original* SUF formula. This module materializes that interpretation
    as finite data — integer values for symbolic constants and finite
    first-match tables for uninterpreted functions and predicates — so it can
    be printed, compared and independently re-checked, unlike the opaque
    closures of {!Sepsat_suf.Interp}.

    Symbols absent from the tables take the defaults (0 / false): constants
    simplified away during encoding cannot influence the formula's value, and
    function entries are only pinned at the argument tuples the elimination
    actually introduced. *)

module Elim = Sepsat_suf.Elim
module Interp = Sepsat_suf.Interp
module Brute = Sepsat_sep.Brute

type t = {
  ints : (string * int) list;  (** symbolic constants *)
  bools : (string * bool) list;  (** symbolic Boolean constants *)
  funcs : (string * (int list * int) list) list;
      (** per function symbol, a first-match table: the first entry whose
          argument tuple matches wins (mirroring the elimination's ITE
          chains); unlisted tuples evaluate to 0 *)
  preds : (string * (int list * bool) list) list;
      (** same, for uninterpreted predicates; unlisted tuples are false *)
}

val of_assignment : Elim.result -> Brute.assignment -> t
(** Witness of the original formula from a falsifying assignment of the
    eliminated one: each fresh constant's value becomes a table entry of its
    defining application, at argument values computed under the assignment. *)

val to_interp : t -> Interp.t
(** The total interpretation the witness denotes (defaults applied). *)

val eval : t -> Sepsat_suf.Ast.formula -> bool

val falsifies : t -> Sepsat_suf.Ast.formula -> bool
(** [eval] is false — what a countermodel of a validity query must do. *)

val pp : Format.formatter -> t -> unit
