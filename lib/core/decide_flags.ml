(* Process-wide pipeline defaults shared by Decide and Parallel (which must
   not depend on Decide — Decide orchestrates it). [Atomic] because racing
   domains read them. *)

(* Default for SatELite-style pre/inprocessing in every procedure that
   bottoms out in [Solver]; toggled whole-pipeline by the bench harness and
   the differential fuzzer via [Decide.set_simplify_default]. *)
let simplify = Atomic.make true
