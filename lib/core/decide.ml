module Ast = Sepsat_suf.Ast
module Parse = Sepsat_suf.Parse
module Elim = Sepsat_suf.Elim
module Verdict = Sepsat_sep.Verdict
module Component = Sepsat_sep.Component
module Hybrid = Sepsat_encode.Hybrid
module F = Sepsat_prop.Formula
module Tseitin = Sepsat_prop.Tseitin
module Solver = Sepsat_sat.Solver
module Lit = Sepsat_sat.Lit
module Deadline = Sepsat_util.Deadline
module Svc = Sepsat_baselines.Svc
module Lazy_smt = Sepsat_baselines.Lazy_smt
module Obs = Sepsat_obs.Obs
module Trace_ctx = Sepsat_obs.Trace_ctx

type method_ =
  | Sd
  | Eij
  | Hybrid_default
  | Hybrid_at of int
  | Svc_baseline
  | Lazy_baseline
  | Portfolio
  | Components
  | Cube_and_conquer

let pp_method ppf = function
  | Sd -> Format.pp_print_string ppf "SD"
  | Eij -> Format.pp_print_string ppf "EIJ"
  | Hybrid_default ->
    Format.fprintf ppf "HYBRID(%d)" Hybrid.default_threshold
  | Hybrid_at t -> Format.fprintf ppf "HYBRID(%d)" t
  | Svc_baseline -> Format.pp_print_string ppf "SVC"
  | Lazy_baseline -> Format.pp_print_string ppf "LAZY"
  | Portfolio -> Format.pp_print_string ppf "PORTFOLIO"
  | Components -> Format.pp_print_string ppf "COMPONENTS"
  | Cube_and_conquer -> Format.pp_print_string ppf "CUBE"

let method_of_string s =
  match String.lowercase_ascii s with
  | "sd" -> Some Sd
  | "eij" -> Some Eij
  | "hybrid" -> Some Hybrid_default
  | "svc" -> Some Svc_baseline
  | "lazy" -> Some Lazy_baseline
  | "portfolio" -> Some Portfolio
  | "components" -> Some Components
  | "cube" | "cube-and-conquer" -> Some Cube_and_conquer
  | s -> (
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "hybrid" -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some t -> Some (Hybrid_at t)
      | None -> None)
    | _ -> None)

type result = {
  verdict : Verdict.t;
  certified : bool option;
  witness : Witness.t option;
  elim : Elim.result;
  translate_time : float;
  sat_time : float;
  total_time : float;
  phase_times : (string * float) list;
  cnf_clauses : int;
  sat_stats : Solver.stats option;
  encode_stats : Hybrid.stats option;
  winner : method_ option;
}

let eliminate = Elim.eliminate

let witness_of elim = function
  | Verdict.Invalid a -> Some (Witness.of_assignment elim a)
  | Verdict.Valid | Verdict.Unknown _ -> None

let eager_config = function
  | Sd -> Hybrid.sd_only
  | Eij -> Hybrid.eij_only
  | Hybrid_default -> Hybrid.default
  | Hybrid_at t -> Hybrid.hybrid ~threshold:t ()
  | Svc_baseline | Lazy_baseline | Portfolio | Components | Cube_and_conquer
    ->
    invalid_arg "Decide.eager_config: not an eager method"

(* Process-wide default for SatELite-style pre/inprocessing in every
   procedure that bottoms out in [Solver]. A mutable default rather than a
   parameter threaded through every call chain, so the bench harness and the
   differential fuzzer can toggle the whole pipeline per run; lives in
   [Decide_flags] so [Parallel] shares it without depending on this module. *)
let simplify_flag = Decide_flags.simplify

let set_simplify_default on = Atomic.set simplify_flag on

let simplify_default () = Atomic.get simplify_flag

let want_simplify = function
  | Some b -> b
  | None -> Atomic.get simplify_flag

let decide_eager ?stop ?simplify ?elim ~config ~deadline ~certify ctx formula
    =
  let deadline =
    match stop with
    | Some flag -> Deadline.with_stop deadline flag
    | None -> deadline
  in
  let t0 = Deadline.now () in
  (* A precomputed elimination (the component splitter's, say) is reused as
     is: [Elim.eliminate] mints fresh p-constant names per call, so running
     it twice would desynchronize the caller's [p_consts] from ours. *)
  let elim =
    match elim with
    | Some e -> e
    | None ->
      Obs.span ~cat:"pipeline" "elim" (fun () -> Elim.eliminate ctx formula)
  in
  let t_elim = Deadline.now () in
  (* [~phases] names the phase the pipeline died in, so an Unknown result
     still reports where the time went (satellite: diagnosable give-ups). *)
  let unknown ~phases why =
    let t1 = Deadline.now () in
    {
      verdict = Verdict.Unknown why;
      certified = None;
      witness = None;
      elim;
      translate_time = t1 -. t0;
      sat_time = 0.;
      total_time = t1 -. t0;
      phase_times = phases t1;
      cnf_clauses = 0;
      sat_stats = None;
      encode_stats = None;
      winner = None;
    }
  in
  let died_in_encode t1 =
    [ ("elim", t_elim -. t0); ("encode", t1 -. t_elim) ]
  in
  match
    Obs.span ~cat:"pipeline" "encode" (fun () ->
        Hybrid.encode ~config ~deadline ctx ~p_consts:elim.Elim.p_consts
          elim.Elim.formula)
  with
  | exception Hybrid.Translation_blowup ->
    unknown ~phases:died_in_encode "translation blowup"
  | exception Deadline.Timeout ->
    unknown ~phases:died_in_encode
      (if Deadline.interrupted deadline then "cancelled" else "timeout")
  | encoded ->
    let t_enc = Deadline.now () in
    let solver = Solver.create () in
    Solver.set_simplify solver (want_simplify simplify);
    (match stop with Some flag -> Solver.set_stop solver flag | None -> ());
    let proof = if certify then Some (Solver.start_proof solver) else None in
    (* DRUP certification replays against the exact clause stream, so it
       keeps the reference full-Tseitin conversion. *)
    let mode = if certify then Tseitin.Full else Tseitin.Polarity in
    let tseitin = Tseitin.create ~mode solver in
    Obs.span ~cat:"pipeline" "cnf" (fun () ->
        Tseitin.assert_root tseitin
          (F.not_ encoded.Hybrid.prop_ctx encoded.Hybrid.f_bool));
    let t1 = Deadline.now () in
    let outcome =
      Obs.span ~cat:"pipeline" "sat" (fun () -> Solver.solve ~deadline solver)
    in
    let t2 = Deadline.now () in
    let verdict =
      match outcome with
      | Solver.Unsat -> Verdict.Valid
      | Solver.Unknown -> Verdict.Unknown "timeout"
      | Solver.Sat ->
        let assign i =
          match Tseitin.find_var tseitin i with
          | Some lit -> Solver.value solver lit
          | None -> false
        in
        Verdict.Invalid (encoded.Hybrid.decode assign)
    in
    let certified =
      match (verdict, proof) with
      | Verdict.Valid, Some p -> Some (Sepsat_sat.Drup_check.certified p)
      | (Verdict.Invalid _ | Verdict.Unknown _), Some _ | _, None -> None
    in
    {
      verdict;
      certified;
      witness = witness_of elim verdict;
      elim;
      translate_time = t1 -. t0;
      sat_time = t2 -. t1;
      total_time = t2 -. t0;
      phase_times =
        [
          ("elim", t_elim -. t0);
          ("encode", t_enc -. t_elim);
          ("cnf", t1 -. t_enc);
          ("sat", t2 -. t1);
        ];
      cnf_clauses = Tseitin.clauses_added tseitin;
      sat_stats = Some (Solver.stats solver);
      encode_stats = Some encoded.Hybrid.stats;
      winner = None;
    }

(* SVC and LAZY interleave translation and search, so past elimination the
   split collapses to a single "search" phase. *)
let decide_baseline ~span_name ~deadline ~decide_fn ctx formula =
  let t0 = Deadline.now () in
  let elim = Obs.span ~cat:"pipeline" "elim" (fun () -> Elim.eliminate ctx formula) in
  let t1 = Deadline.now () in
  let verdict, _stats =
    Obs.span ~cat:"pipeline" span_name (fun () ->
        decide_fn ~deadline ctx elim.Elim.formula)
  in
  let t2 = Deadline.now () in
  {
    verdict;
    certified = None;
    witness = witness_of elim verdict;
    elim;
    translate_time = t1 -. t0;
    sat_time = t2 -. t1;
    total_time = t2 -. t0;
    phase_times = [ ("elim", t1 -. t0); ("search", t2 -. t1) ];
    cnf_clauses = 0;
    sat_stats = None;
    encode_stats = None;
    winner = None;
  }

let decide_svc ~deadline ctx formula =
  decide_baseline ~span_name:"svc.search" ~deadline
    ~decide_fn:(fun ~deadline ctx f -> Svc.decide ~deadline ctx f)
    ctx formula

let decide_lazy ?simplify ~deadline ctx formula =
  let simplify = want_simplify simplify in
  decide_baseline ~span_name:"lazy.search" ~deadline
    ~decide_fn:(fun ~deadline ctx f -> Lazy_smt.decide ~simplify ~deadline ctx f)
    ctx formula

(* -- Structure-parallel methods -------------------------------------------- *)

(* Both parallel strategies (and the portfolio below) run several domains at
   once: [Sys.time] accumulates CPU across every domain, so they must work
   against a wall-clock budget or N workers would burn the deadline N times
   faster. *)
let wall_of deadline =
  match Deadline.remaining deadline with
  | None -> Deadline.none
  | Some r -> Deadline.after_wall r

let decide_components ?stop ?simplify ~deadline ~certify ctx formula =
  let t0 = Deadline.wall_now () in
  let deadline = wall_of deadline in
  let elim =
    Obs.span ~cat:"pipeline" "elim" (fun () -> Elim.eliminate ctx formula)
  in
  let t_elim = Deadline.wall_now () in
  let split =
    Obs.span ~cat:"pipeline" "split" (fun () ->
        Component.split ctx ~p_consts:elim.Elim.p_consts elim.Elim.formula)
  in
  let t_split = Deadline.wall_now () in
  match split.Component.components with
  | [] | [ _ ] ->
    (* Nothing to parallelize: the unchanged sequential path, on the same
       elimination (fresh p-names per call, so it must not rerun), with the
       split attempt accounted in the phase report. *)
    let r =
      decide_eager ?stop ?simplify ~elim ~config:Hybrid.default ~deadline
        ~certify ctx formula
    in
    {
      r with
      phase_times =
        ("elim", t_elim -. t0)
        :: ("split", t_split -. t_elim)
        :: List.filter (fun (name, _) -> name <> "elim") r.phase_times;
      total_time = Deadline.wall_now () -. t0;
    }
  | _ :: _ :: _ ->
    let cr =
      Obs.span ~cat:"pipeline" "components" (fun () ->
          Parallel.solve_components ?stop ?simplify ~config:Hybrid.default
            ~deadline ~certify ctx ~p_consts:elim.Elim.p_consts split)
    in
    let t1 = Deadline.wall_now () in
    let verdict = cr.Parallel.cr_verdict in
    {
      verdict;
      certified = cr.Parallel.cr_certified;
      witness = witness_of elim verdict;
      elim;
      translate_time = t_split -. t0;
      sat_time = t1 -. t_split;
      total_time = t1 -. t0;
      phase_times =
        [
          ("elim", t_elim -. t0);
          ("split", t_split -. t_elim);
          ("solve", t1 -. t_split);
        ];
      cnf_clauses = cr.Parallel.cr_cnf_clauses;
      sat_stats = cr.Parallel.cr_sat_stats;
      encode_stats = None;
      winner = None;
    }

let decide_cubes ?stop ?simplify ~deadline ~certify:_ ctx formula =
  let t0 = Deadline.wall_now () in
  let deadline = wall_of deadline in
  let elim =
    Obs.span ~cat:"pipeline" "elim" (fun () -> Elim.eliminate ctx formula)
  in
  let t_elim = Deadline.wall_now () in
  let q =
    Obs.span ~cat:"pipeline" "cube" (fun () ->
        Parallel.solve_cubes ?stop ?simplify ~config:Hybrid.default ~deadline
          ctx ~p_consts:elim.Elim.p_consts elim.Elim.formula)
  in
  let t1 = Deadline.wall_now () in
  let verdict = q.Parallel.qr_verdict in
  let phase t = try List.assoc t q.Parallel.qr_phases with Not_found -> 0. in
  {
    verdict;
    (* No DRUP certificate: the verdict is assembled from per-cube
       assumption cores, not one checkable clause stream. *)
    certified = None;
    witness = witness_of elim verdict;
    elim;
    translate_time = (t_elim -. t0) +. phase "encode" +. phase "cnf";
    sat_time = phase "probe" +. phase "cube";
    total_time = t1 -. t0;
    phase_times = ("elim", t_elim -. t0) :: q.Parallel.qr_phases;
    cnf_clauses = q.Parallel.qr_cnf_clauses;
    sat_stats = q.Parallel.qr_sat_stats;
    encode_stats = q.Parallel.qr_encode_stats;
    winner = None;
  }

(* -- Multicore portfolio -------------------------------------------------- *)

let portfolio_members = [ Sd; Eij; Hybrid_default; Components ]

(* One racing lane: the eager encodings plus the structural strategies. *)
let decide_member m ~stop ?simplify ~deadline ~certify ctx formula =
  match m with
  | Sd | Eij | Hybrid_default | Hybrid_at _ ->
    decide_eager ~stop ?simplify ~config:(eager_config m) ~deadline ~certify
      ctx formula
  | Components ->
    decide_components ~stop ?simplify ~deadline ~certify ctx formula
  | Cube_and_conquer ->
    decide_cubes ~stop ?simplify ~deadline ~certify ctx formula
  | Svc_baseline | Lazy_baseline | Portfolio ->
    invalid_arg "Decide.decide_member: not a racing member"

(* Races the eager methods on separate domains; the first decisive verdict
   raises a shared stop flag that every competing solver polls from its
   propagation loop — and, via [Deadline.with_stop] inside [decide_eager],
   from the translation loops, where a losing EIJ encoding can otherwise
   spend seconds after the race is already decided. The AST context and the
   encoders mutate shared state, so each domain re-parses the formula
   (print/parse round-trips are stable) into a context of its own instead of
   sharing nodes across domains. *)
let decide_portfolio ?simplify ~deadline ~certify ctx formula =
  ignore ctx;
  let t0 = Deadline.wall_now () in
  let printed = Format.asprintf "%a" Ast.pp formula in
  (* [Sys.time] accumulates CPU across every domain, so the race must run on
     a wall-clock budget or N competitors would burn the deadline N times
     faster. *)
  let deadline =
    match Deadline.remaining deadline with
    | None -> Deadline.none
    | Some r -> Deadline.after_wall r
  in
  let stop = Atomic.make false in
  let winner_slot : (method_ * result) option Atomic.t = Atomic.make None in
  let run m =
    (* Per-domain rings mean each competitor gets its own trace lane; naming
       the thread labels the lane in the Chrome trace. *)
    Obs.name_thread (Format.asprintf "portfolio:%a" pp_method m);
    Obs.span ~cat:"portfolio" (Format.asprintf "race:%a" pp_method m)
      (fun () ->
        let ctx' = Ast.create_ctx () in
        let formula' = Parse.formula ctx' printed in
        let r = decide_member m ~stop ?simplify ~deadline ~certify ctx' formula' in
        (match r.verdict with
        | Verdict.Valid | Verdict.Invalid _ ->
          if Atomic.compare_and_set winner_slot None (Some (m, r)) then begin
            Atomic.set stop true;
            Obs.instant ~cat:"portfolio"
              (Format.asprintf "winner:%a" pp_method m)
          end
        | Verdict.Unknown _ -> ());
        r)
  in
  (* Hand the spawner's trace context across the domain boundary so every
     lane's spans carry the originating request's rid. *)
  let tctx = Trace_ctx.capture () in
  let domains =
    List.map
      (fun m -> Domain.spawn (fun () -> Trace_ctx.with_ctx tctx (fun () -> run m)))
      portfolio_members
  in
  let results =
    Obs.span ~cat:"portfolio" "portfolio.race" (fun () ->
        List.map Domain.join domains)
  in
  let t1 = Deadline.wall_now () in
  let m, r =
    match Atomic.get winner_slot with
    | Some (m, r) -> (m, r)
    | None ->
      (* Nobody finished decisively: surface the first member's outcome. *)
      (List.hd portfolio_members, List.hd results)
  in
  { r with total_time = t1 -. t0; winner = Some m }

let decide ?(method_ = Hybrid_default) ?(deadline = Deadline.none)
    ?(certify = false) ?simplify ctx formula =
  match method_ with
  | Sd | Eij | Hybrid_default | Hybrid_at _ ->
    decide_eager ?simplify ~config:(eager_config method_) ~deadline ~certify
      ctx formula
  | Svc_baseline -> decide_svc ~deadline ctx formula
  | Lazy_baseline -> decide_lazy ?simplify ~deadline ctx formula
  | Portfolio -> decide_portfolio ?simplify ~deadline ~certify ctx formula
  | Components -> decide_components ?simplify ~deadline ~certify ctx formula
  | Cube_and_conquer -> decide_cubes ?simplify ~deadline ~certify ctx formula

(* -- Incremental SEP_THOLD sweep ------------------------------------------ *)

type sweep_point = {
  sw_threshold : int;
  sw_verdict : Verdict.t;
  sw_conflicts : int;
  sw_time : float;
}

type sweep = {
  points : sweep_point list;
  solver_creates : int;
  sweep_cnf_clauses : int;
  sweep_translate_time : float;
  sweep_stats : Solver.stats option;
}

let default_sweep_thresholds = [ 0; 50; 200; 400; 700; 2000; max_int ]

let decide_sweep ?(thresholds = default_sweep_thresholds)
    ?(deadline = Deadline.none) ?simplify ctx formula =
  let t0 = Deadline.now () in
  let elim = Obs.span ~cat:"pipeline" "elim" (fun () -> Elim.eliminate ctx formula) in
  match
    Obs.span ~cat:"pipeline" "encode.selective" (fun () ->
        Hybrid.encode_selective ctx ~p_consts:elim.Elim.p_consts
          elim.Elim.formula)
  with
  | exception Hybrid.Translation_blowup ->
    (* Selector mode routes every class through EIJ too, so its translation
       can blow up where high fixed thresholds would not; sweep the slow way,
       one encoding and solver per threshold. *)
    let points =
      List.map
        (fun th ->
          let r =
            decide_eager ~config:(Hybrid.hybrid ~threshold:th ()) ~deadline
              ~certify:false ctx formula
          in
          {
            sw_threshold = th;
            sw_verdict = r.verdict;
            sw_conflicts =
              (match r.sat_stats with
              | Some st -> st.Solver.conflicts
              | None -> 0);
            sw_time = r.total_time;
          })
        thresholds
    in
    {
      points;
      solver_creates = List.length thresholds;
      sweep_cnf_clauses = 0;
      sweep_translate_time = Deadline.now () -. t0;
      sweep_stats = None;
    }
  | enc ->
    let solver = Solver.create () in
    Solver.set_simplify solver (want_simplify simplify);
    let tseitin = Tseitin.create solver in
    Obs.span ~cat:"pipeline" "cnf" (fun () ->
        Tseitin.assert_root tseitin
          (F.not_ enc.Hybrid.sel_prop_ctx enc.Hybrid.sel_f_bool));
    let t1 = Deadline.now () in
    let sel_lits =
      Array.map
        (fun sel -> Tseitin.lit_of_var tseitin (F.var_index sel))
        enc.Hybrid.selectors
    in
    (* Every sweep point re-assumes the full selector vector, so the
       simplifier must never resolve these variables away between calls. *)
    Array.iter (fun l -> Solver.freeze solver (Lit.var l)) sel_lits;
    let points =
      List.map
        (fun th ->
          (* SEP_THOLD = th as an assumption vector over the selectors: class
             i goes through SD exactly when its SepCnt exceeds th. *)
          let assumptions =
            Array.to_list
              (Array.mapi
                 (fun i l ->
                   if enc.Hybrid.sep_cnts.(i) > th then l else Lit.neg l)
                 sel_lits)
          in
          let c0 = (Solver.stats solver).Solver.conflicts in
          let ta = Deadline.now () in
          let outcome =
            Obs.span ~cat:"sweep"
              (Printf.sprintf "sweep.th=%d" th)
              (fun () -> Solver.solve ~deadline ~assumptions solver)
          in
          let tb = Deadline.now () in
          let verdict =
            match outcome with
            | Solver.Unsat -> Verdict.Valid
            | Solver.Unknown -> Verdict.Unknown "timeout"
            | Solver.Sat ->
              let assign i =
                match Tseitin.find_var tseitin i with
                | Some lit -> Solver.value solver lit
                | None -> false
              in
              Verdict.Invalid (enc.Hybrid.sel_decode assign)
          in
          {
            sw_threshold = th;
            sw_verdict = verdict;
            sw_conflicts = (Solver.stats solver).Solver.conflicts - c0;
            sw_time = tb -. ta;
          })
        thresholds
    in
    {
      points;
      solver_creates = 1;
      sweep_cnf_clauses = Tseitin.clauses_added tseitin;
      sweep_translate_time = t1 -. t0;
      sweep_stats = Some (Solver.stats solver);
    }

let valid ?method_ ctx formula =
  match (decide ?method_ ctx formula).verdict with
  | Verdict.Valid -> true
  | Verdict.Invalid _ -> false
  | Verdict.Unknown why -> failwith ("Decide.valid: unknown verdict: " ^ why)
