module Ast = Sepsat_suf.Ast
module Elim = Sepsat_suf.Elim
module Verdict = Sepsat_sep.Verdict
module Hybrid = Sepsat_encode.Hybrid
module F = Sepsat_prop.Formula
module Tseitin = Sepsat_prop.Tseitin
module Solver = Sepsat_sat.Solver
module Deadline = Sepsat_util.Deadline
module Svc = Sepsat_baselines.Svc
module Lazy_smt = Sepsat_baselines.Lazy_smt

type method_ =
  | Sd
  | Eij
  | Hybrid_default
  | Hybrid_at of int
  | Svc_baseline
  | Lazy_baseline

let pp_method ppf = function
  | Sd -> Format.pp_print_string ppf "SD"
  | Eij -> Format.pp_print_string ppf "EIJ"
  | Hybrid_default ->
    Format.fprintf ppf "HYBRID(%d)" Hybrid.default_threshold
  | Hybrid_at t -> Format.fprintf ppf "HYBRID(%d)" t
  | Svc_baseline -> Format.pp_print_string ppf "SVC"
  | Lazy_baseline -> Format.pp_print_string ppf "LAZY"

let method_of_string s =
  match String.lowercase_ascii s with
  | "sd" -> Some Sd
  | "eij" -> Some Eij
  | "hybrid" -> Some Hybrid_default
  | "svc" -> Some Svc_baseline
  | "lazy" -> Some Lazy_baseline
  | s -> (
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "hybrid" -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some t -> Some (Hybrid_at t)
      | None -> None)
    | _ -> None)

type result = {
  verdict : Verdict.t;
  certified : bool option;
  witness : Witness.t option;
  elim : Elim.result;
  translate_time : float;
  sat_time : float;
  total_time : float;
  cnf_clauses : int;
  sat_stats : Solver.stats option;
  encode_stats : Hybrid.stats option;
}

let eliminate = Elim.eliminate

let witness_of elim = function
  | Verdict.Invalid a -> Some (Witness.of_assignment elim a)
  | Verdict.Valid | Verdict.Unknown _ -> None

let eager_config = function
  | Sd -> Hybrid.sd_only
  | Eij -> Hybrid.eij_only
  | Hybrid_default -> Hybrid.default
  | Hybrid_at t -> Hybrid.hybrid ~threshold:t ()
  | Svc_baseline | Lazy_baseline ->
    invalid_arg "Decide.eager_config: not an eager method"

let decide_eager ~config ~deadline ~certify ctx formula =
  let t0 = Deadline.now () in
  let elim = Elim.eliminate ctx formula in
  match
    Hybrid.encode ~config ctx ~p_consts:elim.Elim.p_consts elim.Elim.formula
  with
  | exception Hybrid.Translation_blowup ->
    let t1 = Deadline.now () in
    {
      verdict = Verdict.Unknown "translation blowup";
      certified = None;
      witness = None;
      elim;
      translate_time = t1 -. t0;
      sat_time = 0.;
      total_time = t1 -. t0;
      cnf_clauses = 0;
      sat_stats = None;
      encode_stats = None;
    }
  | encoded ->
    let solver = Solver.create () in
    let proof = if certify then Some (Solver.start_proof solver) else None in
    let tseitin = Tseitin.create solver in
    Tseitin.assert_root tseitin
      (F.not_ encoded.Hybrid.prop_ctx encoded.Hybrid.f_bool);
    let t1 = Deadline.now () in
    let outcome = Solver.solve ~deadline solver in
    let t2 = Deadline.now () in
    let verdict =
      match outcome with
      | Solver.Unsat -> Verdict.Valid
      | Solver.Unknown -> Verdict.Unknown "timeout"
      | Solver.Sat ->
        let assign i =
          match Tseitin.find_var tseitin i with
          | Some lit -> Solver.value solver lit
          | None -> false
        in
        Verdict.Invalid (encoded.Hybrid.decode assign)
    in
    let certified =
      match (verdict, proof) with
      | Verdict.Valid, Some p -> Some (Sepsat_sat.Drup_check.certified p)
      | (Verdict.Invalid _ | Verdict.Unknown _), Some _ | _, None -> None
    in
    {
      verdict;
      certified;
      witness = witness_of elim verdict;
      elim;
      translate_time = t1 -. t0;
      sat_time = t2 -. t1;
      total_time = t2 -. t0;
      cnf_clauses = Tseitin.clauses_added tseitin;
      sat_stats = Some (Solver.stats solver);
      encode_stats = Some encoded.Hybrid.stats;
    }

let decide_svc ~deadline ctx formula =
  let t0 = Deadline.now () in
  let elim = Elim.eliminate ctx formula in
  let t1 = Deadline.now () in
  let verdict, _stats = Svc.decide ~deadline ctx elim.Elim.formula in
  let t2 = Deadline.now () in
  {
    verdict;
    certified = None;
    witness = witness_of elim verdict;
    elim;
    translate_time = t1 -. t0;
    sat_time = t2 -. t1;
    total_time = t2 -. t0;
    cnf_clauses = 0;
    sat_stats = None;
    encode_stats = None;
  }

let decide_lazy ~deadline ctx formula =
  let t0 = Deadline.now () in
  let elim = Elim.eliminate ctx formula in
  let t1 = Deadline.now () in
  let verdict, _stats = Lazy_smt.decide ~deadline ctx elim.Elim.formula in
  let t2 = Deadline.now () in
  {
    verdict;
    certified = None;
    witness = witness_of elim verdict;
    elim;
    translate_time = t1 -. t0;
    sat_time = t2 -. t1;
    total_time = t2 -. t0;
    cnf_clauses = 0;
    sat_stats = None;
    encode_stats = None;
  }

let decide ?(method_ = Hybrid_default) ?(deadline = Deadline.none)
    ?(certify = false) ctx formula =
  match method_ with
  | Sd | Eij | Hybrid_default | Hybrid_at _ ->
    decide_eager ~config:(eager_config method_) ~deadline ~certify ctx formula
  | Svc_baseline -> decide_svc ~deadline ctx formula
  | Lazy_baseline -> decide_lazy ~deadline ctx formula

let valid ?method_ ctx formula =
  match (decide ?method_ ctx formula).verdict with
  | Verdict.Valid -> true
  | Verdict.Invalid _ -> false
  | Verdict.Unknown why -> failwith ("Decide.valid: unknown verdict: " ^ why)
