(** Multicore method portfolio.

    Races the eager methods (SD, EIJ, HYBRID at the default [SEP_THOLD]) and
    the structural COMPONENTS strategy on separate OCaml domains over the
    same formula. The first member to reach a decisive verdict wins: it
    flips a shared atomic stop flag that every competing CDCL solver polls
    from its propagation loop, so the losers abandon their searches within a
    few hundred propagations. Because the methods' strengths are
    complementary (the motivation for HYBRID in the first place), the
    portfolio tracks the best single method per benchmark at the cost of
    cores instead of tuning.

    This is a thin facade over {!Decide.Portfolio}; use [Decide.decide
    ~method_:Portfolio] for the full option surface. *)

type member = Decide.method_ =
  | Sd
  | Eij
  | Hybrid_default
  | Hybrid_at of int
  | Svc_baseline
  | Lazy_baseline
  | Portfolio
  | Components
  | Cube_and_conquer

val members : member list
(** The raced methods: SD, EIJ, HYBRID(default), COMPONENTS. *)

val decide :
  ?deadline:Sepsat_util.Deadline.t ->
  ?certify:bool ->
  ?simplify:bool ->
  Sepsat_suf.Ast.ctx ->
  Sepsat_suf.Ast.formula ->
  Decide.result
(** [decide] with [~method_:Portfolio]. The result's [winner] field names the
    member whose verdict is reported; [total_time] is the wall-clock time of
    the race (deadlines are enforced on the wall clock, since CPU time
    accumulates across domains). *)

val winner : Decide.result -> member option
(** The [winner] field. *)
