(** Structure-parallel solving: independent components on a domain pool, and
    cube-and-conquer for instances that refuse to split (ROADMAP item 3).

    Both strategies turn the portfolio's race-redundancy into genuine
    parallel speedup:

    - {!solve_components} takes a {!Component.split} of the validity goal
      and decides each component on its own domain, pulled from a shared
      work queue heaviest-first. Validity (some component's goal is
      unsatisfiable) short-circuits the pool through a stop flag the sibling
      solvers poll; invalidity merges the per-component countermodels into
      one assignment of the whole formula (sound because components share no
      g-constants or Boolean constants and agree on the injected p-values).
    - {!solve_cubes} encodes the whole formula once, probes it briefly to
      rank branch variables by VSIDS activity ({!Solver.top_vars}), splits
      on the top [k] into [2^k] sign cubes, and fans the cubes over the pool
      as [solve ~assumptions] against per-domain replicas of the exported
      CNF. Failed-assumption cores prune sibling cubes (a cube containing a
      known core is unsatisfiable without solving); an empty core proves the
      database itself unsatisfiable. All cubes unsatisfiable is validity —
      the sign cubes over any variable set are a tautology.

    This module is strategy only: {!Decide} owns elimination, phase timing
    and result packaging. Deadlines passed here should be wall-clock
    ({!Deadline.after_wall}) — several domains burn CPU time concurrently. *)

module Ast = Sepsat_suf.Ast
module Sset = Sepsat_util.Sset
module Brute = Sepsat_sep.Brute
module Component = Sepsat_sep.Component
module Verdict = Sepsat_sep.Verdict
module Hybrid = Sepsat_encode.Hybrid
module Solver = Sepsat_sat.Solver
module Deadline = Sepsat_util.Deadline

val default_pool : unit -> int
(** Domains the strategies use by default:
    [max 1 (min 4 (Domain.recommended_domain_count () - 1))] — capped at the
    acceptance hardware's 4, one core left for the coordinator. *)

type components_result = {
  cr_verdict : Verdict.t;
      (** verdict for the original formula: [Valid] when some component's
          goal is unsatisfiable, [Invalid] when every component produced a
          model, [Unknown] otherwise *)
  cr_assignment : Brute.assignment option;
      (** merged countermodel on [Invalid] *)
  cr_certified : bool option;
      (** DRUP verdict of the winning component's proof, when [certify] *)
  cr_n_components : int;
  cr_pool : int;  (** domains actually spawned *)
  cr_cnf_clauses : int;  (** summed over components *)
  cr_sat_stats : Solver.stats option;
      (** the decisive component's solver, or the heaviest's *)
}

val solve_components :
  ?pool:int ->
  ?simplify:bool ->
  ?stop:bool Atomic.t ->
  ?p_value:(string * int) list ->
  config:Hybrid.config ->
  deadline:Deadline.t ->
  certify:bool ->
  Ast.ctx ->
  p_consts:Sset.t ->
  Component.split ->
  components_result
(** Decides every component of the split on a pool of [pool] domains (at
    most one per component). Each worker re-parses its component goal into a
    private AST context, encodes its negation with {!Hybrid.encode}
    [~p_value] pinned to the whole formula's table (computed here via
    {!Hybrid.p_values} unless supplied), and runs the standard CDCL check;
    [certify] routes the winning UNSAT component through full Tseitin with
    DRUP logging, exactly like the sequential pipeline. [stop] cancels the
    whole pool from outside (e.g. a portfolio race). *)

type cubes_result = {
  qr_verdict : Verdict.t;
  qr_assignment : Brute.assignment option;
  qr_n_cubes : int;  (** [2^k'] after clamping [k] to available variables *)
  qr_pruned : int;  (** cubes discharged by a sibling's assumption core *)
  qr_pool : int;
  qr_cnf_clauses : int;  (** master CNF clauses replicated per domain *)
  qr_sat_stats : Solver.stats option;  (** master (probe) solver *)
  qr_encode_stats : Hybrid.stats option;
  qr_phases : (string * float) list;
      (** [encode; cnf; probe; cube] — {!Decide} prepends [elim] *)
}

val solve_cubes :
  ?pool:int ->
  ?simplify:bool ->
  ?stop:bool Atomic.t ->
  ?k:int ->
  ?probe_budget:int ->
  config:Hybrid.config ->
  deadline:Deadline.t ->
  Ast.ctx ->
  p_consts:Sset.t ->
  Ast.formula ->
  cubes_result
(** [solve_cubes ctx ~p_consts f] decides validity of the application-free
    (eliminated) formula [f] by cube-and-conquer. The master encoding runs
    with simplification off so {!Solver.export_cnf} reproduces the exact
    problem clauses under the original variable numbering; workers replicate
    that CNF (and may simplify locally — assumption variables are frozen by
    [solve]) and share a conflict-core list under a mutex for sibling
    pruning. A probe of [probe_budget] conflicts (default 2000) both ranks
    the split variables and decides easy instances outright, in which case
    [qr_n_cubes = 0]. No DRUP certificate is produced — the verdict is
    assembled from per-cube cores, not one clause stream. *)
