module Elim = Sepsat_suf.Elim
module Interp = Sepsat_suf.Interp
module Brute = Sepsat_sep.Brute

let lift elim a = Witness.to_interp (Witness.of_assignment elim a)
