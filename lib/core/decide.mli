(** The decision procedure for SUF validity — the library's front door.

    Runs the full pipeline of the paper: positive-equality-aware function
    elimination (§2.1.1), the hybrid SD/EIJ propositional encoding (§4), CNF
    conversion and CDCL search. The encoding configuration selects the pure
    SD method, the pure EIJ method, or HYBRID at any [SEP_THOLD].

    Baseline procedures (SVC-style case splitting, CVC-style lazy
    refinement) are reachable through {!method_} for apples-to-apples
    comparison on the same formulas. *)

module Ast = Sepsat_suf.Ast
module Verdict = Sepsat_sep.Verdict
module Hybrid = Sepsat_encode.Hybrid
module Solver = Sepsat_sat.Solver

type method_ =
  | Sd  (** small-domain encoding everywhere *)
  | Eij  (** per-constraint encoding everywhere *)
  | Hybrid_default  (** HYBRID at the paper's default SEP_THOLD (700) *)
  | Hybrid_at of int  (** HYBRID at an explicit SEP_THOLD *)
  | Svc_baseline
  | Lazy_baseline
  | Portfolio
      (** races SD, EIJ, HYBRID and COMPONENTS on separate domains; first
          decisive verdict wins and cancels the rest *)
  | Components
      (** splits the validity goal into independent components
          ({!Sepsat_sep.Component}) and decides them concurrently on a
          domain pool ({!Parallel.solve_components}); single-component
          formulas fall back to the sequential HYBRID path *)
  | Cube_and_conquer
      (** one encoding, probed briefly to rank VSIDS variables, then split
          into [2^k] assumption cubes fanned over the pool
          ({!Parallel.solve_cubes}) *)

val pp_method : Format.formatter -> method_ -> unit

val method_of_string : string -> method_ option
(** Accepts ["sd"], ["eij"], ["hybrid"], ["hybrid:<n>"], ["svc"],
    ["lazy"], ["portfolio"], ["components"], ["cube"]
    (or ["cube-and-conquer"]). *)

type result = {
  verdict : Verdict.t;
  certified : bool option;
      (** with [~certify:true] on an eager method or {!Components} (where
          the winning UNSAT component's solver logs the proof): [Some true]
          iff the [Valid] verdict's DRUP trace passed the independent
          {!Sepsat_sat.Drup_check} replay; [None] when certification was not
          requested or not applicable ({!Cube_and_conquer} never certifies —
          its verdict is assembled from per-cube assumption cores) *)
  witness : Witness.t option;
      (** for an [Invalid] verdict, the falsifying assignment lifted to a
          concrete first-order interpretation of the original formula
          (integer constants plus finite function/predicate tables);
          [None] otherwise *)
  elim : Sepsat_suf.Elim.result;
      (** the function-elimination actually used; pass it (not a fresh
          re-elimination, whose fresh names would differ) to
          {!Countermodel.lift} *)
  translate_time : float;  (** seconds spent producing the CNF / abstraction *)
  sat_time : float;  (** seconds inside the SAT/theory search *)
  total_time : float;
  phase_times : (string * float) list;
      (** finer-grained split of [total_time], in pipeline order. Eager
          methods report [elim]/[encode]/[cnf]/[sat] (so [translate_time] =
          elim + encode + cnf); SVC and LAZY report [elim]/[search];
          COMPONENTS reports [elim]/[split]/[solve] (or, degenerating to the
          sequential path, [elim]/[split]/[encode]/[cnf]/[sat]); CUBE reports
          [elim]/[encode]/[cnf]/[probe]/[cube]. On an [Unknown] from a
          translation blowup or timeout the list stops at the phase that gave
          up, which names the culprit. Same CPU clock as the coarse fields
          for the sequential methods; the parallel methods (and the
          {!Sepsat_obs} spans emitted alongside) use wall time. *)
  cnf_clauses : int;  (** CNF clauses handed to the solver (0 for SVC) *)
  sat_stats : Solver.stats option;
  encode_stats : Hybrid.stats option;  (** eager methods only *)
  winner : method_ option;
      (** for {!Portfolio}: the member whose verdict (and per-method fields —
          times, stats, witness) this result carries; [total_time] is the
          wall-clock time of the whole race. [None] for every other method.
          Note that a portfolio [elim] comes from the winning domain's
          internal re-parse of the formula, not the caller's context. *)
}

val decide :
  ?method_:method_ ->
  ?deadline:Sepsat_util.Deadline.t ->
  ?certify:bool ->
  ?simplify:bool ->
  Ast.ctx ->
  Ast.formula ->
  result
(** Validity of a SUF formula; defaults to [Hybrid_default]. An [Invalid]
    verdict carries a falsifying assignment of the eliminated formula; use
    {!Countermodel.lift} (with {!eliminate}'s output) to obtain a first-order
    interpretation falsifying the original formula. [simplify] enables the
    SAT core's SatELite-style pre/inprocessing; it defaults to
    {!simplify_default} (initially on). *)

val set_simplify_default : bool -> unit
(** Sets the process-wide default for the [?simplify] arguments of {!decide}
    and {!decide_sweep} (and everything layered on them: {!Portfolio}, the
    bench harness, the differential fuzzer). Initially [true]. Atomic, so a
    toggle is visible to portfolio domains spawned afterwards. *)

val simplify_default : unit -> bool

val eliminate : Ast.ctx -> Ast.formula -> Sepsat_suf.Elim.result
(** Re-export of {!Sepsat_suf.Elim.eliminate}. Note that each call draws
    fresh constant names from the context; to lift a countermodel of a
    {!decide} run, use the [elim] field of its result. *)

val valid : ?method_:method_ -> Ast.ctx -> Ast.formula -> bool
(** Convenience wrapper. @raise Failure on an [Unknown] verdict. *)

val portfolio_members : method_ list
(** The methods {!Portfolio} races: SD, EIJ, HYBRID(default), COMPONENTS. *)

(** {2 Incremental SEP_THOLD sweep}

    Decides the same formula at several [SEP_THOLD] values on one incremental
    SAT solver: the selector-literal encoding
    ({!Sepsat_encode.Hybrid.encode_selective}) defers each class's SD/EIJ
    routing to a selector variable, and each threshold becomes a vector of
    assumptions over the selectors. Learnt clauses, activities and saved
    phases carry across the whole sweep. *)

type sweep_point = {
  sw_threshold : int;
  sw_verdict : Verdict.t;
  sw_conflicts : int;  (** conflicts spent on this threshold alone *)
  sw_time : float;  (** seconds inside this threshold's [solve] call *)
}

type sweep = {
  points : sweep_point list;
  solver_creates : int;
      (** SAT solver instances built: 1 on the incremental path, one per
          threshold on the {!Sepsat_encode.Hybrid.Translation_blowup}
          fallback *)
  sweep_cnf_clauses : int;  (** 0 on the fallback path *)
  sweep_translate_time : float;
  sweep_stats : Solver.stats option;  (** final solver stats; incremental path only *)
}

val default_sweep_thresholds : int list
(** [0; 50; 200; 400; 700; 2000; max_int] — pure SD through pure EIJ. *)

val decide_sweep :
  ?thresholds:int list ->
  ?deadline:Sepsat_util.Deadline.t ->
  ?simplify:bool ->
  Ast.ctx ->
  Ast.formula ->
  sweep
(** Verdicts agree point-for-point with [decide ~method_:(Hybrid_at t)].
    [simplify] defaults to {!simplify_default}; the selector variables are
    frozen so inprocessing never eliminates them between sweep points. *)
