module Ast = Sepsat_suf.Ast
module F = Sepsat_prop.Formula
module Tseitin = Sepsat_prop.Tseitin
module Solver = Sepsat_sat.Solver
module Lit = Sepsat_sat.Lit
module Sep = Sepsat_sep
module Normal = Sep.Normal
module Bound = Sep.Bound
module Brute = Sep.Brute
module Verdict = Sep.Verdict
module Eij = Sepsat_encode.Eij
module Diff_solver = Sepsat_theory.Diff_solver
module Deadline = Sepsat_util.Deadline
module Obs = Sepsat_obs.Obs
module Metrics = Sepsat_obs.Metrics

let m_iterations = lazy (Metrics.counter "lazy.iterations")

let m_lemmas = lazy (Metrics.counter "lazy.lemmas")

type stats = {
  iterations : int;
  conflict_clauses : int;
  sat_conflicts : int;
}

let no_p _ = false

let decide ?(simplify = false) ?(deadline = Deadline.none) ctx formula =
  let formula = Normal.normalize ctx formula in
  let pctx = F.create_ctx () in
  (* The per-predicate Boolean abstraction is exactly EIJ's atom encoding —
     without F_trans, which this procedure enforces lazily. *)
  let eij = Eij.create pctx in
  let gmap = Sep.Ground_map.create ctx in
  let bconst_vars : (string, F.t) Hashtbl.t = Hashtbl.create 16 in
  let fmemo = Hashtbl.create 256 in
  let rec abstract (f : Ast.formula) =
    match Hashtbl.find_opt fmemo f.fid with
    | Some p -> p
    | None ->
      let p =
        match f.fnode with
        | Ast.Ftrue -> F.tru pctx
        | Ast.Ffalse -> F.fls pctx
        | Ast.Not g -> F.not_ pctx (abstract g)
        | Ast.And (a, b) -> F.and_ pctx (abstract a) (abstract b)
        | Ast.Or (a, b) -> F.or_ pctx (abstract a) (abstract b)
        | Ast.Bconst name -> (
          match Hashtbl.find_opt bconst_vars name with
          | Some v -> v
          | None ->
            let v = F.fresh_var pctx in
            Hashtbl.add bconst_vars name v;
            v)
        | Ast.Eq (t1, t2) -> atom t1 t2 (Eij.encode_eq eij ~is_p:no_p)
        | Ast.Lt (t1, t2) -> atom t1 t2 (Eij.encode_lt eij ~is_p:no_p)
        | Ast.Papp _ -> invalid_arg "Lazy_smt: application present"
      in
      Hashtbl.add fmemo f.fid p;
      p
  and atom t1 t2 encode_pair =
    let pairs1 = Sep.Ground_map.of_term gmap t1 in
    let pairs2 = Sep.Ground_map.of_term gmap t2 in
    F.or_list pctx
      (List.concat_map
         (fun (g1, c1) ->
           List.map
             (fun (g2, c2) ->
               F.and_ pctx
                 (F.and_ pctx (abstract c1) (abstract c2))
                 (encode_pair g1 g2))
             pairs2)
         pairs1)
  in
  let f_bvar = abstract formula in
  let solver = Solver.create () in
  Solver.set_simplify solver simplify;
  let tseitin = Tseitin.create solver in
  Tseitin.assert_root tseitin (F.not_ pctx f_bvar);
  (* Activation literal guarding the theory lemmas — the incremental-SMT
     idiom: each lemma is added as [act ∨ cycle] and switched on per call by
     assuming [¬act], so the refinement state rides the solver's retained
     learnt clauses, activities and saved phases instead of re-encoding. *)
  let act = Lit.pos (Solver.new_var solver) in
  let bounds = Eij.bounds eij in
  let iterations = ref 0 in
  let conflict_clauses = ref 0 in
  let all_consts = List.map fst (Ast.functions formula) in
  (* One span per refinement iteration (SAT query + theory check), so the
     abstraction/refinement ping-pong is visible on the exported timeline. *)
  let step () =
    Deadline.check deadline;
    incr iterations;
    Metrics.incr (Lazy.force m_iterations);
    match Solver.solve ~deadline ~assumptions:[ Lit.neg act ] solver with
    | Solver.Unsat -> Some Verdict.Valid
    | Solver.Unknown -> Some (Verdict.Unknown "timeout")
    | Solver.Sat -> (
      (* Collect the difference constraints the model asserts; each is
         tagged with the SAT literal that must flip to escape it. *)
      let ds = Diff_solver.create () in
      List.iter (fun name -> ignore (Diff_solver.node ds name)) all_consts;
      List.iter
        (fun ((b : Bound.t), v) ->
          match Tseitin.find_var tseitin (F.var_index v) with
          | None ->
            (* The predicate variable was simplified out of the query; its
               value is unconstrained, so no bound needs asserting. *)
            ()
          | Some lit ->
            let x = Diff_solver.node ds b.Bound.x in
            let y = Diff_solver.node ds b.Bound.y in
            if Solver.value solver lit then
              Diff_solver.assert_le ds ~x ~y ~c:b.Bound.c ~tag:(Lit.neg lit)
            else
              Diff_solver.assert_le ds ~x:y ~y:x ~c:(-b.Bound.c - 1) ~tag:lit)
        bounds;
      match Diff_solver.infeasibility ds with
      | None ->
        let bools =
          Hashtbl.fold
            (fun name v acc ->
              let value =
                match Tseitin.find_var tseitin (F.var_index v) with
                | Some lit -> Solver.value solver lit
                | None -> false
              in
              (name, value) :: acc)
            bconst_vars []
          |> List.sort compare
        in
        Some (Verdict.Invalid { Brute.ints = Diff_solver.model ds; bools })
      | Some cycle_lits ->
        (* The negative cycle's negation, as in CVC's incremental
           translation. *)
        incr conflict_clauses;
        Metrics.incr (Lazy.force m_lemmas);
        Solver.add_clause solver (act :: cycle_lits);
        None)
  in
  let rec refine () =
    match Obs.span ~cat:"lazy" "lazy.iter" step with
    | Some v -> v
    | None -> refine ()
  in
  let verdict = try refine () with Deadline.Timeout -> Verdict.Unknown "timeout" in
  ( verdict,
    {
      iterations = !iterations;
      conflict_clauses = !conflict_clauses;
      sat_conflicts = (Solver.stats solver).Solver.conflicts;
    } )
