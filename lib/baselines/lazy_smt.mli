(** CVC-style lazy refinement procedure (baseline of paper §5).

    Like EIJ, every separation predicate is abstracted by one Boolean
    variable — but realizability is enforced *lazily*: the SAT solver
    produces a full propositional model, the induced difference constraints
    are checked with Bellman-Ford, and on inconsistency the negative cycle is
    returned to the solver as a conflict clause. The loop repeats until a
    consistent model is found (invalid) or the abstraction is unsatisfiable
    (valid).

    Operates on application-free formulas; positive equality is not
    exploited, mirroring CVC's treatment of the benchmarks. *)

module Ast = Sepsat_suf.Ast

type stats = {
  iterations : int;  (** lazy refinement rounds *)
  conflict_clauses : int;  (** theory conflict clauses added *)
  sat_conflicts : int;  (** CDCL conflicts across all rounds *)
}

val decide :
  ?simplify:bool ->
  ?deadline:Sepsat_util.Deadline.t ->
  Ast.ctx ->
  Ast.formula ->
  Sepsat_sep.Verdict.t * stats
(** [simplify] (default [false]) turns on the SAT core's pre/inprocessing;
    the activation variable guarding theory lemmas is frozen automatically
    because it is assumed on every refinement call. *)
