type t = {
  cpu_until : float option;
  wall_until : float option;
  stop : bool Atomic.t option;
}

exception Timeout

let none = { cpu_until = None; wall_until = None; stop = None }

let now () = Sys.time ()

let wall_now () = Unix.gettimeofday ()

let after s = { none with cpu_until = Some (now () +. s) }

let after_wall s = { none with wall_until = Some (wall_now () +. s) }

let with_stop t flag = { t with stop = Some flag }

let interrupted t =
  match t.stop with None -> false | Some f -> Atomic.get f

let exceeded t =
  interrupted t
  || (match t.cpu_until with None -> false | Some u -> now () > u)
  || match t.wall_until with None -> false | Some u -> wall_now () > u

let remaining t =
  let cpu = Option.map (fun u -> u -. now ()) t.cpu_until in
  let wall = Option.map (fun u -> u -. wall_now ()) t.wall_until in
  match (cpu, wall) with
  | None, None -> None
  | Some c, None -> Some c
  | None, Some w -> Some w
  | Some c, Some w -> Some (Float.min c w)

let check t = if exceeded t then raise Timeout
