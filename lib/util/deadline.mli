(** Cooperative CPU-time and wall-clock budgets.

    Long-running phases (SAT search, transitivity-constraint generation, the
    lazy refinement loop) poll a deadline and abort with {!Timeout} when the
    budget is exhausted, standing in for the paper's 30-minute wall-clock
    timeout at laptop-friendly scales.

    Single-method runs use processor-time deadlines ({!after}), matching the
    paper's CPU-budget methodology. The multicore portfolio uses wall-clock
    deadlines ({!after_wall}): [Sys.time] accumulates across every running
    domain, so a CPU deadline would fire N times too early when N domains
    race. *)

type t

exception Timeout

val none : t
(** A deadline that never fires. *)

val after : float -> t
(** [after s] fires [s] seconds of processor time from now. *)

val after_wall : float -> t
(** [after_wall s] fires [s] seconds of wall-clock time from now. *)

val with_stop : t -> bool Atomic.t -> t
(** [with_stop t flag] also fires as soon as [flag] becomes true — the
    cancellation path of the portfolio race: the winner raises the shared
    flag and every deadline poll in the losers (translation loops included)
    observes it. *)

val interrupted : t -> bool
(** Whether the {!with_stop} flag (if any) has been raised — distinguishes
    cancellation from a genuine budget timeout. *)

val exceeded : t -> bool

val remaining : t -> float option
(** Seconds until the deadline fires (negative if already passed); [None]
    for {!none}. When both clocks are armed, the tighter one is reported. *)

val check : t -> unit
(** @raise Timeout if the deadline has passed. *)

val now : unit -> float
(** Processor time in seconds, the clock CPU deadlines are measured
    against. *)

val wall_now : unit -> float
(** Wall-clock time in seconds, the clock wall deadlines are measured
    against. *)
