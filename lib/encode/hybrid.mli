(** The hybrid encoding (paper §4) and its SD/EIJ degenerations.

    Encodes an application-free SUF formula (the output of
    {!Sepsat_suf.Elim}) into a propositional formula
    [F_bool = F_trans ⟹ F_bvar]:

    + symbolic constants are partitioned into independent equivalence classes;
    + ground terms are normalized;
    + per class, the method is SD when [SepCnt(V_i) > threshold], EIJ
      otherwise — so [threshold = -1] is the pure SD procedure and
      [threshold = max_int] the pure EIJ procedure;
    + p-constants fold to fixed diverse values.

    The result carries a decoder from propositional models back to integer /
    Boolean countermodels of the separation-logic formula. *)

module F = Sepsat_prop.Formula
module Ast = Sepsat_suf.Ast
module Sset = Sepsat_util.Sset
module Brute = Sepsat_sep.Brute

exception Translation_blowup
(** Re-raised from {!Eij}: the transitivity-constraint budget was exhausted
    (the paper's translation-stage timeout). *)

type config = {
  threshold : int;  (** the paper's [SEP_THOLD]; default 700 (§4.1) *)
  eij_budget : int;  (** transitivity-constraint budget *)
}

val default_threshold : int
(** 700, the value the paper's clustering procedure selects. *)

val default : config

val sd_only : config
(** Every class through SD — the paper's standalone SD method. *)

val eij_only : config
(** Every class through EIJ — the paper's standalone EIJ method. *)

val hybrid : ?threshold:int -> unit -> config

type stats = {
  n_classes : int;
  sd_classes : int;
  eij_classes : int;
  total_sep_cnt : int;  (** pre-encoding separation-predicate estimate *)
  eij_predicates : int;  (** predicate variables actually allocated *)
  trans_constraints : int;
  bool_size : int;  (** DAG size of [F_bool] *)
}

type encoded = {
  prop_ctx : F.ctx;
  f_bool : F.t;  (** valid input iff [not f_bool] is unsatisfiable *)
  stats : stats;
  decode : (int -> bool) -> Brute.assignment;
      (** countermodel of the separation-logic formula from a propositional
          model of [not f_bool] *)
}

val encode :
  ?config:config ->
  ?deadline:Sepsat_util.Deadline.t ->
  ?p_value:(string -> int) ->
  Ast.ctx ->
  p_consts:Sset.t ->
  Ast.formula ->
  encoded
(** [deadline] is polled during transitivity-constraint generation, the
    expensive translation phase. [p_value] overrides the internally computed
    maximally diverse p-constant values — component solving injects the whole
    formula's table ({!p_values}) so every component agrees on them and
    witnesses merge; injected values must be at least as diverse as the local
    ones (guaranteed when they come from a formula of which this is a
    conjunctive fragment).
    @raise Translation_blowup when EIJ translation exceeds its budget.
    @raise Sepsat_util.Deadline.Timeout when the deadline fires during
    translation.
    @raise Invalid_argument if the formula contains applications. *)

val p_values :
  Ast.ctx -> p_consts:Sset.t -> Ast.formula -> (string * int) list
(** The fixed maximally diverse p-constant values {!encode} would use for
    this formula, in {!Sset.elements} order of [p_consts]. Feed back through
    [encode ~p_value] to pin sub-formula encodings to the whole formula's
    interpretation. *)

val p_values_of :
  Sepsat_sep.Classes.t -> p_consts:Sset.t -> (string * int) list
(** Same table from an already-built class partition of the normalized
    formula — what {!p_values} computes internally. Lets callers that built
    the classes for other reasons (e.g. the component split) avoid
    re-normalizing. *)

type selective = {
  sel_prop_ctx : F.ctx;
  sel_f_bool : F.t;
  selectors : F.t array;
      (** per-class selector variables, indexed by class id: forcing
          [selectors.(i)] true routes class [i]'s atoms through SD, false
          through EIJ. Fixing every selector (e.g. as SAT assumptions)
          recovers the fixed-threshold encoding of any [SEP_THOLD] from one
          CNF. *)
  sep_cnts : int array;
      (** per-class [SepCnt], the quantity [SEP_THOLD] thresholds against;
          selector [i] should be assumed true iff [sep_cnts.(i) > threshold] *)
  sel_stats : stats;  (** [sd_classes]/[eij_classes] are 0: not fixed here *)
  sel_decode : (int -> bool) -> Brute.assignment;
      (** reads the selector values off the model itself, so it decodes
          correctly whatever threshold the assumptions imposed *)
}

val encode_selective :
  ?eij_budget:int ->
  ?deadline:Sepsat_util.Deadline.t ->
  Ast.ctx ->
  p_consts:Sset.t ->
  Ast.formula ->
  selective
(** Threshold-deferred encoding: every class is encoded both ways, with
    per-atom if-then-else on the class selector. One propositional formula
    (and hence one incremental SAT solver) then serves a whole [SEP_THOLD]
    sweep via {!Sepsat_sat.Solver.solve}'s [assumptions]. Because EIJ runs on
    every class (not just the small ones), the translation budget can be
    exhausted where a fixed high threshold would not — callers should fall
    back to per-threshold {!encode} on {!Translation_blowup}.
    @raise Translation_blowup when EIJ translation exceeds its budget.
    @raise Invalid_argument if the formula contains applications. *)
