module F = Sepsat_prop.Formula
module Ast = Sepsat_suf.Ast
module Sset = Sepsat_util.Sset
module Sep = Sepsat_sep
module Classes = Sep.Classes
module Normal = Sep.Normal
module Ground = Sep.Ground
module Bound = Sep.Bound
module Brute = Sep.Brute
module Diff_solver = Sepsat_theory.Diff_solver
module Obs = Sepsat_obs.Obs
module Metrics = Sepsat_obs.Metrics

exception Translation_blowup

type config = { threshold : int; eij_budget : int }

let default_threshold = 700

let default_budget = 500_000

let default = { threshold = default_threshold; eij_budget = default_budget }

let sd_only = { threshold = -1; eij_budget = default_budget }

let eij_only = { threshold = max_int; eij_budget = default_budget }

let hybrid ?(threshold = default_threshold) () =
  { threshold; eij_budget = default_budget }

type stats = {
  n_classes : int;
  sd_classes : int;
  eij_classes : int;
  total_sep_cnt : int;
  eij_predicates : int;
  trans_constraints : int;
  bool_size : int;
}

type encoded = {
  prop_ctx : F.ctx;
  f_bool : F.t;
  stats : stats;
  decode : (int -> bool) -> Brute.assignment;
}

type selective = {
  sel_prop_ctx : F.ctx;
  sel_f_bool : F.t;
  selectors : F.t array;
  sep_cnts : int array;
  sel_stats : stats;
  sel_decode : (int -> bool) -> Brute.assignment;
}

let m_trans = lazy (Metrics.counter "encode.trans_constraints")

let m_eij_predicates = lazy (Metrics.counter "encode.eij_predicates")

let m_sd_classes = lazy (Metrics.counter "encode.sd_classes")

let m_eij_classes = lazy (Metrics.counter "encode.eij_classes")

type method_choice = Use_sd | Use_eij

(* How each class's atoms pick their encoding: either fixed at encode time
   (from a SEP_THOLD comparison) or deferred to a per-class selector
   variable, so one CNF serves every threshold via assumptions. *)
type class_mode = Fixed of method_choice array | Selected of F.t array

(* Fixed values realizing the maximally diverse interpretation: above every
   value a class bit-vector can reach, spaced wider than any pair of offsets
   can bridge. *)
let p_value_fun classes ~p_consts =
  let infos = Classes.classes classes in
  let global_reach =
    Array.fold_left
      (fun acc (c : Classes.class_info) ->
        max acc (c.range + c.shift - 1 + max 0 c.umax))
      0 infos
  in
  let p_names = Sset.elements p_consts in
  let max_abs_offset =
    List.fold_left
      (fun acc name ->
        let l, u = Classes.offsets classes name in
        max acc (max (abs l) (abs u)))
      (Array.fold_left
         (fun acc (c : Classes.class_info) ->
           List.fold_left
             (fun acc m ->
               let l, u = Classes.offsets classes m in
               max acc (max (abs l) (abs u)))
             acc c.members)
         0 infos)
      p_names
  in
  let spacing = (2 * max_abs_offset) + 1 in
  let base = global_reach + spacing in
  let table = Hashtbl.create 16 in
  List.iteri (fun i name -> Hashtbl.add table name (base + (i * spacing))) p_names;
  fun name ->
    match Hashtbl.find_opt table name with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Hybrid: unknown p-constant %S" name)

let encode_core ~mode_of ~eij_budget ~deadline ?p_value ctx ~p_consts formula =
  let formula =
    Obs.span ~cat:"encode" "normalize" (fun () -> Normal.normalize ctx formula)
  in
  let classes =
    Obs.span ~cat:"encode" "classes" (fun () -> Classes.build ~p_consts formula)
  in
  let infos = Classes.classes classes in
  let pctx = F.create_ctx () in
  let mode = mode_of pctx infos in
  (* Choice of a class under a propositional model: fixed modes ignore the
     model, selector mode reads the class's selector variable off it. *)
  let choice_of assign cls_id =
    match mode with
    | Fixed choice -> choice.(cls_id)
    | Selected sels ->
      if F.eval assign sels.(cls_id) then Use_sd else Use_eij
  in
  (* An injected p-value table (component solving) overrides the local one:
     per-component reaches are no larger than the whole formula's, so values
     diverse for the whole formula stay diverse — and identical across every
     component, which is what makes per-component witnesses mergeable. *)
  let p_value =
    match p_value with
    | Some f -> f
    | None -> p_value_fun classes ~p_consts
  in
  let sd = Sd.create pctx classes ~p_value in
  let eij = Eij.create ~budget:eij_budget pctx in
  let is_p name = Classes.is_p classes name in
  let gmap = Sep.Ground_map.create ctx in
  let bconst_vars : (string, F.t) Hashtbl.t = Hashtbl.create 16 in
  let fmemo : (int, F.t) Hashtbl.t = Hashtbl.create 1024 in
  let rec encode_f (f : Ast.formula) =
    match Hashtbl.find_opt fmemo f.fid with
    | Some p -> p
    | None ->
      let p =
        match f.fnode with
        | Ast.Ftrue -> F.tru pctx
        | Ast.Ffalse -> F.fls pctx
        | Ast.Not g -> F.not_ pctx (encode_f g)
        | Ast.And (a, b) -> F.and_ pctx (encode_f a) (encode_f b)
        | Ast.Or (a, b) -> F.or_ pctx (encode_f a) (encode_f b)
        | Ast.Bconst name -> (
          match Hashtbl.find_opt bconst_vars name with
          | Some v -> v
          | None ->
            let v = F.fresh_var pctx in
            Hashtbl.add bconst_vars name v;
            v)
        | Ast.Eq _ | Ast.Lt _ -> encode_atom f
        | Ast.Papp (name, _) ->
          invalid_arg
            (Printf.sprintf "Hybrid.encode: application of %S present" name)
      in
      Hashtbl.add fmemo f.fid p;
      p
  and encode_atom atom =
    (* EIJ (or pure-p): enumerate ground pairs with their ITE path
       conditions — the Bryant et al. technique of paper §4 step 5. *)
    let encode_eij () =
      match atom.Ast.fnode with
      | Ast.Eq (t1, t2) -> encode_pairs t1 t2 (Eij.encode_eq eij ~is_p)
      | Ast.Lt (t1, t2) -> encode_pairs t1 t2 (Eij.encode_lt eij ~is_p)
      | _ -> assert false
    in
    match (Classes.atom_class classes atom, mode) with
    | Some cls, Fixed choice ->
      if choice.(cls.Classes.id) = Use_sd then
        Sd.encode_atom sd ~encode_formula:encode_f ~cls atom
      else encode_eij ()
    | Some cls, Selected sels ->
      (* Both encodings are built; the selector picks which one the atom
         means. The unselected side's variables are left unconstrained by
         F_bvar (its domain/transitivity constraints remain satisfiable on
         their own), so validity under a fixed selector assignment coincides
         with the corresponding fixed-threshold encoding. *)
      F.ite pctx
        sels.(cls.Classes.id)
        (Sd.encode_atom sd ~encode_formula:encode_f ~cls atom)
        (encode_eij ())
    | None, _ -> encode_eij ()
  and encode_pairs t1 t2 encode_ground_pair =
    let g1s = Sep.Ground_map.of_term gmap t1 in
    let g2s = Sep.Ground_map.of_term gmap t2 in
    let disjuncts =
      List.concat_map
        (fun (g1, c1) ->
          List.map
            (fun (g2, c2) ->
              F.and_ pctx
                (F.and_ pctx (encode_f c1) (encode_f c2))
                (encode_ground_pair g1 g2))
            g2s)
        g1s
    in
    F.or_list pctx disjuncts
  in
  let f_bvar =
    Obs.span ~cat:"encode" "encode.bvar" (fun () ->
        try encode_f formula
        with Eij.Translation_blowup -> raise Translation_blowup)
  in
  let f_trans =
    Obs.span ~cat:"encode" "encode.trans" (fun () ->
        try Eij.trans_constraints ~deadline eij
        with Eij.Translation_blowup -> raise Translation_blowup)
  in
  let f_domain =
    Obs.span ~cat:"encode" "encode.domain" (fun () -> Sd.domain_constraints sd)
  in
  (* F_bool = (F_trans ∧ domain) ⟹ F_bvar: falsifying models must respect
     both the realizability constraints and the finite domains. *)
  let f_bool = F.implies pctx (F.and_ pctx f_trans f_domain) f_bvar in
  let sd_classes =
    match mode with
    | Fixed choice ->
      Array.fold_left (fun n c -> if c = Use_sd then n + 1 else n) 0 choice
    | Selected _ -> 0
  in
  let stats =
    {
      n_classes = Array.length infos;
      sd_classes;
      eij_classes =
        (match mode with
        | Fixed _ -> Array.length infos - sd_classes
        | Selected _ -> 0);
      total_sep_cnt = Classes.total_sep_cnt classes;
      eij_predicates = Eij.num_predicates eij;
      trans_constraints = Eij.num_trans_constraints eij;
      bool_size = F.size f_bool;
    }
  in
  if Obs.enabled () then begin
    Metrics.add (Lazy.force m_trans) stats.trans_constraints;
    Metrics.add (Lazy.force m_eij_predicates) stats.eij_predicates;
    Metrics.add (Lazy.force m_sd_classes) stats.sd_classes;
    Metrics.add (Lazy.force m_eij_classes) stats.eij_classes
  end;
  let decode assign =
    let bools =
      Hashtbl.fold
        (fun name v acc -> (name, F.eval assign v) :: acc)
        bconst_vars []
      |> List.sort compare
    in
    (* In selector mode the SD encoder covered every class; keep only the
       constants of classes the model actually routed through SD. *)
    let sd_ints =
      List.filter
        (fun (name, _) ->
          match Classes.const_class classes name with
          | Some cls -> choice_of assign cls.Classes.id = Use_sd
          | None -> true)
        (Sd.decode_consts sd assign)
    in
    (* EIJ classes: rebuild the difference constraints a model asserts and
       read integer values off shortest paths, then shift each class below
       the p-constant region (classes are independent, so a uniform per-class
       shift is invisible to every encoded atom). *)
    let eij_ints = ref [] in
    let by_class : (int, (Bound.t * bool) list ref) Hashtbl.t =
      Hashtbl.create 8
    in
    List.iter
      (fun ((b : Bound.t), v) ->
        match Classes.const_class classes b.Bound.x with
        | None -> assert false
        | Some cls ->
          let r =
            match Hashtbl.find_opt by_class cls.Classes.id with
            | Some r -> r
            | None ->
              let r = ref [] in
              Hashtbl.add by_class cls.Classes.id r;
              r
          in
          r := (b, F.eval assign v) :: !r)
      (Eij.bounds eij);
    let global_reach =
      Array.fold_left
        (fun acc (c : Classes.class_info) ->
          max acc (c.range + c.shift - 1 + max 0 c.umax))
        0 infos
    in
    Array.iter
      (fun (cls : Classes.class_info) ->
        if choice_of assign cls.id = Use_eij then begin
          let ds = Diff_solver.create () in
          List.iter (fun m -> ignore (Diff_solver.node ds m)) cls.members;
          (match Hashtbl.find_opt by_class cls.id with
          | None -> ()
          | Some constraints ->
            List.iter
              (fun ((b : Bound.t), value) ->
                let x = Diff_solver.node ds b.Bound.x in
                let y = Diff_solver.node ds b.Bound.y in
                if value then Diff_solver.assert_le ds ~x ~y ~c:b.Bound.c ~tag:()
                else
                  Diff_solver.assert_le ds ~x:y ~y:x ~c:(-b.Bound.c - 1)
                    ~tag:())
              !constraints);
          let values = Diff_solver.model ds in
          let maxv = List.fold_left (fun acc (_, v) -> max acc v) 0 values in
          let delta = global_reach - maxv in
          List.iter
            (fun (name, v) -> eij_ints := (name, v + delta) :: !eij_ints)
            values
        end)
      infos;
    let p_ints = List.map (fun name -> (name, p_value name)) (Sset.elements p_consts) in
    (* Only constants of the formula matter; extra p entries are harmless. *)
    { Brute.ints = sd_ints @ List.sort compare !eij_ints @ p_ints; bools }
  in
  (pctx, f_bool, stats, decode, mode, infos)

let encode ?(config = default) ?(deadline = Sepsat_util.Deadline.none) ?p_value
    ctx ~p_consts formula =
  let mode_of _pctx infos =
    Fixed
      (Array.map
         (fun (c : Classes.class_info) ->
           if c.sep_cnt > config.threshold then Use_sd else Use_eij)
         infos)
  in
  let pctx, f_bool, stats, decode, _mode, _infos =
    encode_core ~mode_of ~eij_budget:config.eij_budget ~deadline ?p_value ctx
      ~p_consts formula
  in
  { prop_ctx = pctx; f_bool; stats; decode }

let p_values_of classes ~p_consts =
  let f = p_value_fun classes ~p_consts in
  List.map (fun name -> (name, f name)) (Sset.elements p_consts)

let p_values ctx ~p_consts formula =
  let formula = Normal.normalize ctx formula in
  let classes = Classes.build ~p_consts formula in
  p_values_of classes ~p_consts

let encode_selective ?(eij_budget = default_budget)
    ?(deadline = Sepsat_util.Deadline.none) ctx ~p_consts formula =
  let mode_of pctx infos =
    Selected (Array.map (fun (_ : Classes.class_info) -> F.fresh_var pctx) infos)
  in
  let pctx, f_bool, stats, decode, mode, infos =
    encode_core ~mode_of ~eij_budget ~deadline ctx ~p_consts formula
  in
  let selectors =
    match mode with Selected sels -> sels | Fixed _ -> assert false
  in
  {
    sel_prop_ctx = pctx;
    sel_f_bool = f_bool;
    selectors;
    sep_cnts = Array.map (fun (c : Classes.class_info) -> c.sep_cnt) infos;
    sel_stats = stats;
    sel_decode = decode;
  }
