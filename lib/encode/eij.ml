module F = Sepsat_prop.Formula
module Bound = Sepsat_sep.Bound
module Ground = Sepsat_sep.Ground

exception Translation_blowup

module Bound_map = Map.Make (Bound)

type t = {
  pctx : F.ctx;
  budget : int;
  mutable evars : F.t Bound_map.t;  (* canonical bound -> variable *)
  mutable originals : (Bound.t * F.t) list;
  mutable n_trans : int;
}

let create ?(budget = 2_000_000) pctx =
  { pctx; budget; evars = Bound_map.empty; originals = []; n_trans = 0 }

let var_of_bound t bound =
  match Bound_map.find_opt bound t.evars with
  | Some v -> v
  | None ->
    let v = F.fresh_var t.pctx in
    t.evars <- Bound_map.add bound v t.evars;
    t.originals <- (bound, v) :: t.originals;
    v

let encode_view t (view : Bound.view) =
  let v = var_of_bound t view.Bound.bound in
  if view.Bound.negated then F.not_ t.pctx v else v

let encode_eq t ~is_p g1 g2 =
  match Bound.eq_grounds ~is_p g1 g2 with
  | `Static b -> F.of_bool t.pctx b
  | `Conj (v1, v2) -> F.and_ t.pctx (encode_view t v1) (encode_view t v2)

let encode_lt t ~is_p g1 g2 =
  match Bound.lt_grounds ~is_p g1 g2 with
  | `Static b -> F.of_bool t.pctx b
  | `Bound v -> encode_view t v

let num_predicates t = Bound_map.cardinal t.evars

let num_trans_constraints t = t.n_trans

(* -- Transitivity constraints by vertex elimination ----------------------- *)

(* An edge (u, v, w, lit) asserts u − v <= w whenever lit holds. Each
   predicate variable contributes the edge of its bound and the reverse
   strict edge of its negation. *)

type edge = { src : string; dst : string; weight : int; lit : F.t }
(* src − dst <= weight *)

let trans_constraints ?(deadline = Sepsat_util.Deadline.none) t =
  let pctx = t.pctx in
  (* Weight window, per connected component. Every edge arising during
     elimination stands for a simple path of original edges, so its weight is
     at most S+ (the component's sum of positive original weights) and at
     least -S- (the sum of negative magnitudes). Two exact reductions follow:
     - an edge with weight >= S- can never close a negative cycle (every
       completion weighs at least -S-): drop it;
     - weights below floor = -S+ - 1 all behave identically (every completion
       weighs at most S+, so the cycle is negative regardless): clamp them
       to the floor.
     On equality-dominated components (weights in {0,-1}) this collapses the
     derived weights to {0,-1}, keeping F_trans near the Bryant-Velev
     polynomial bound; components with long offset chains still blow up — as
     the paper observes they must. *)
  let comp_of, s_plus, s_minus =
    let parent : (string, string) Hashtbl.t = Hashtbl.create 64 in
    let rec find v =
      match Hashtbl.find_opt parent v with
      | None | Some "" -> v
      | Some p ->
        let r = find p in
        Hashtbl.replace parent v r;
        r
    in
    let union u v =
      let ru = find u and rv = find v in
      if ru <> rv then Hashtbl.replace parent ru rv
    in
    List.iter
      (fun ((b : Bound.t), _) -> union b.Bound.x b.Bound.y)
      t.originals;
    let s_plus : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let s_minus : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let bump tbl rep d =
      let cur = try Hashtbl.find tbl rep with Not_found -> 0 in
      Hashtbl.replace tbl rep (cur + d)
    in
    List.iter
      (fun ((b : Bound.t), _) ->
        let rep = find b.Bound.x in
        (* both orientations of the bound: weights c and -c-1 *)
        List.iter
          (fun w ->
            bump s_plus rep (max 0 w);
            bump s_minus rep (max 0 (-w)))
          [ b.Bound.c; -b.Bound.c - 1 ])
      t.originals;
    let get tbl rep = try Hashtbl.find tbl rep with Not_found -> 0 in
    (find, get s_plus, get s_minus)
  in
  let floor_of v = -s_plus (comp_of v) - 1 in
  let normalize_weight v w =
    let f = floor_of v in
    if w < f then f else w
  in
  let useless v w = w >= s_minus (comp_of v) in
  (* Adjacency: per live vertex, edges leaving it (src = vertex) and entering
     it (dst = vertex). *)
  let out_edges : (string, edge list ref) Hashtbl.t = Hashtbl.create 64 in
  let in_edges : (string, edge list ref) Hashtbl.t = Hashtbl.create 64 in
  let vertices = Hashtbl.create 64 in
  let adj tbl v =
    match Hashtbl.find_opt tbl v with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add tbl v r;
      r
  in
  let add_edge e =
    Hashtbl.replace vertices e.src ();
    Hashtbl.replace vertices e.dst ();
    adj out_edges e.src := e :: !(adj out_edges e.src);
    adj in_edges e.dst := e :: !(adj in_edges e.dst)
  in
  List.iter
    (fun ((b : Bound.t), v) ->
      let install src dst weight lit =
        if not (useless src weight) then
          add_edge { src; dst; weight = normalize_weight src weight; lit }
      in
      install b.Bound.x b.Bound.y b.Bound.c v;
      install b.Bound.y b.Bound.x (-b.Bound.c - 1) (F.not_ pctx v))
    t.originals;
  (* Derived-edge variables are deduplicated on (src, dst, weight); a
     canonical bound that already has a predicate variable is reused (its
     truth is then further constrained, which is sound and sharpens the
     encoding). *)
  let derived : (string * string * int, F.t) Hashtbl.t = Hashtbl.create 256 in
  let constraints = ref [] in
  t.n_trans <- 0;
  let emit c =
    constraints := c :: !constraints;
    t.n_trans <- t.n_trans + 1;
    if t.n_trans > t.budget then raise Translation_blowup;
    (* Vertex elimination is the expensive translation phase, so it is the
       one that must poll the budget — and, in a portfolio race, the shared
       stop flag a winning competitor raises. *)
    if t.n_trans land 1023 = 0 then begin
      Sepsat_util.Deadline.check deadline;
      (* Mid-translation progress on the counter track: EIJ blowups are
         visible on the timeline before they exhaust the budget. *)
      Sepsat_obs.Obs.sample "eij.trans_constraints" (float_of_int t.n_trans)
    end
  in
  let lit_for_derived src dst weight =
    match Hashtbl.find_opt derived (src, dst, weight) with
    | Some lit -> (lit, false)
    | None ->
      let view = Bound.view ~x:src ~y:dst ~c:weight in
      let lit, needs_edge =
        match Bound_map.find_opt view.Bound.bound t.evars with
        | Some v ->
          (* An original predicate variable already carries this bound (and
             its graph edges, installed up front). *)
          ((if view.Bound.negated then F.not_ pctx v else v), false)
        | None -> (F.fresh_var pctx, true)
      in
      Hashtbl.add derived (src, dst, weight) lit;
      (lit, needs_edge)
  in
  let eliminate v =
    let incoming = !(adj in_edges v) and outgoing = !(adj out_edges v) in
    Hashtbl.remove in_edges v;
    Hashtbl.remove out_edges v;
    Hashtbl.remove vertices v;
    let new_edges = ref [] in
    List.iter
      (fun e1 ->
        (* e1: u − v <= w1 *)
        if not (String.equal e1.src v) then
          List.iter
            (fun e2 ->
              (* e2: v − z <= w2 *)
              if not (String.equal e2.dst v) then begin
                let u = e1.src and z = e2.dst in
                let w = e1.weight + e2.weight in
                if String.equal u z then begin
                  (* A cycle through v: infeasible iff its weight is
                     negative. *)
                  if w < 0 then
                    emit (F.not_ pctx (F.and_ pctx e1.lit e2.lit))
                end
                else if not (useless u w) then begin
                  let w = normalize_weight u w in
                  let both = F.and_ pctx e1.lit e2.lit in
                  let lit, fresh = lit_for_derived u z w in
                  emit (F.implies pctx both lit);
                  if fresh then
                    new_edges := { src = u; dst = z; weight = w; lit } :: !new_edges
                end
              end)
            outgoing)
      incoming;
    (* Drop edges incident to v from the neighbours' lists, then install the
       derived edges. *)
    let prune tbl key =
      match Hashtbl.find_opt tbl key with
      | None -> ()
      | Some r ->
        r :=
          List.filter
            (fun e -> not (String.equal e.src v || String.equal e.dst v))
            !r
    in
    List.iter (fun e -> prune out_edges e.src) incoming;
    List.iter (fun e -> prune in_edges e.dst) outgoing;
    List.iter add_edge !new_edges
  in
  (* Min-fill-style greedy order: repeatedly eliminate the vertex with the
     smallest in*out product. *)
  let rec loop () =
    if Hashtbl.length vertices > 0 then begin
      let best = ref None in
      Hashtbl.iter
        (fun v () ->
          let cost =
            List.length !(adj in_edges v) * List.length !(adj out_edges v)
          in
          match !best with
          | Some (_, c) when c <= cost -> ()
          | _ -> best := Some (v, cost))
        vertices;
      match !best with
      | None -> ()
      | Some (v, _) ->
        eliminate v;
        loop ()
    end
  in
  loop ();
  F.and_list pctx !constraints

let bounds t = t.originals
