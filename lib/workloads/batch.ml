module Ast = Sepsat_suf.Ast

(* Scenario-generation batches: [n_units] store-buffer units over disjoint
   symbol spaces, conjoined into one joint-feasibility query. Each unit
   constrains its own queue — store addresses inside allocation windows,
   ascending address order — and demands a local "dirty read" state: the
   first [n_dirty] load addresses must each alias some store. The batch
   formula claims the joint scenario is impossible, so a healthy batch is
   INVALID and the countermodel assembles every unit's scenario at once.

   Because the units share no symbols, the negation is a conjunction of
   independent constraint systems — the connected-component decomposition
   target: a monolithic solver pays for every unit's model search, a
   component solver pays only for the slowest.

   [bug] here is an overconstrained spec: the last unit also keeps its whole
   load region strictly below the queue tail, which contradicts its dirty
   reads and makes the batch vacuously valid (one UNSAT component). *)

let unit_system ctx ~prefix ~n_ops ~blocked =
  let n = max 2 n_ops in
  let n_dirty = max 1 (n / 2) in
  let cst fmt = Format.kasprintf (Ast.const ctx) fmt in
  let head = cst "%s_h" prefix and tail = cst "%s_t" prefix in
  let addr = Array.init n (fun k -> cst "%s_sa%d" prefix k) in
  let stored = Array.init n (fun k -> cst "%s_w%d" prefix k) in
  let mem0 idx = Ast.app ctx (prefix ^ "_mem0") [ idx ] in
  let read a =
    let rec overlay k =
      if k < 0 then mem0 a
      else Ast.tite ctx (Ast.eq ctx a addr.(k)) stored.(k) (overlay (k - 1))
    in
    overlay (n - 1)
  in
  (* Store address k sits in the allocation window [t+k, t+n]. *)
  let window =
    List.concat
      (List.init n (fun k ->
           [
             Ast.le ctx (Ast.plus ctx tail k) addr.(k);
             Ast.le ctx addr.(k) (Ast.plus ctx tail n);
           ]))
  in
  (* Stores drain in address order. *)
  let order =
    List.init (n - 1) (fun k -> Ast.lt ctx addr.(k) addr.(k + 1))
  in
  (* The load region starts below the tail; a blocked unit keeps ALL of it
     below the tail, putting every load under every store window. *)
  let occupancy =
    if blocked then Ast.lt ctx (Ast.plus ctx head n_dirty) tail
    else Ast.lt ctx head tail
  in
  (* Local bad state: the first [n_dirty] loads past the head all read a
     store, not the original memory. *)
  let dirty =
    List.init n_dirty (fun i ->
        let a = Ast.plus ctx head (i + 1) in
        Ast.not_ ctx (Ast.eq ctx (read a) (mem0 a)))
  in
  Ast.and_list ctx ((occupancy :: window) @ order @ dirty)

let formula ?(bug = false) ctx ~n_units ~n_ops =
  let k = max 1 n_units in
  let units =
    List.init k (fun u ->
        unit_system ctx
          ~prefix:(Printf.sprintf "b%d" u)
          ~n_ops
          ~blocked:(bug && u = k - 1))
  in
  Ast.not_ ctx (Ast.and_list ctx units)
