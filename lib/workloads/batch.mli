(** Scenario-generation batches: [n_units] symbol-disjoint store-buffer
    units, each demanding a local "dirty read" scenario, conjoined into one
    joint-feasibility query. The formula claims the joint scenario is
    impossible, so a healthy batch is {e invalid} and its countermodel is
    every unit's scenario at once; the negation decomposes into [n_units]
    independent constraint systems — the target of the connected-component
    solver. [bug] overconstrains the last unit into infeasibility, making
    the batch vacuously valid through a single UNSAT component. *)

val formula :
  ?bug:bool -> Sepsat_suf.Ast.ctx -> n_units:int -> n_ops:int ->
  Sepsat_suf.Ast.formula
