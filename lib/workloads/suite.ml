module Ast = Sepsat_suf.Ast

type family =
  | Pipeline
  | Load_store
  | Ooo_invariant
  | Cache
  | Trans_valid
  | Device_driver
  | Batch

let family_name = function
  | Pipeline -> "pipeline"
  | Load_store -> "load-store"
  | Ooo_invariant -> "ooo-invariant"
  | Cache -> "cache"
  | Trans_valid -> "trans-valid"
  | Device_driver -> "device-driver"
  | Batch -> "batch"

type benchmark = {
  name : string;
  family : family;
  invariant_checking : bool;
  build : ?bug:bool -> Ast.ctx -> Ast.formula;
}

let pipeline i n =
  {
    name = Printf.sprintf "pipe.%d" i;
    family = Pipeline;
    invariant_checking = false;
    build =
      (fun ?bug ctx -> Pipeline.formula ?bug ctx ~n_instructions:n ~seed:(31 * i));
  }

let load_store i n =
  {
    name = Printf.sprintf "lsu.%d" i;
    family = Load_store;
    invariant_checking = false;
    build = (fun ?bug ctx -> Load_store.formula ?bug ctx ~n_ops:n);
  }

let cache i n =
  {
    name = Printf.sprintf "cache.%d" i;
    family = Cache;
    invariant_checking = false;
    build = (fun ?bug ctx -> Cache.formula ?bug ctx ~n_caches:n);
  }

let trans_valid i n =
  {
    name = Printf.sprintf "tv.%d" i;
    family = Trans_valid;
    invariant_checking = false;
    build =
      (fun ?bug ctx -> Trans_valid.formula ?bug ctx ~n_blocks:n ~seed:(17 * i));
  }

let device_driver i n =
  {
    name = Printf.sprintf "drv.%d" i;
    family = Device_driver;
    invariant_checking = false;
    build =
      (fun ?bug ctx -> Device_driver.formula ?bug ctx ~n_steps:n ~seed:(13 * i));
  }

let ooo i n =
  {
    name = Printf.sprintf "ooo.%d" i;
    family = Ooo_invariant;
    invariant_checking = true;
    build = (fun ?bug ctx -> Ooo_invariant.formula ?bug ctx ~n_entries:n);
  }

let non_invariant =
  List.concat
    [
      (* 10 pipeline bundles of growing width *)
      List.mapi pipeline [ 2; 3; 4; 5; 6; 8; 10; 12; 14; 15 ];
      (* 8 load-store queues *)
      List.mapi load_store [ 3; 5; 8; 12; 16; 22; 26; 30 ];
      (* 8 coherence protocols *)
      List.mapi cache [ 3; 4; 5; 6; 8; 10; 12; 14 ];
      (* 7 translation-validation runs *)
      List.mapi trans_valid [ 3; 6; 10; 15; 21; 28; 36 ];
      (* 6 device-driver paths *)
      List.mapi device_driver [ 6; 10; 16; 24; 34; 46 ];
    ]

let invariant_checking =
  List.mapi ooo [ 12; 14; 16; 18; 20; 22; 24; 26; 28; 30 ]

let benchmarks = non_invariant @ invariant_checking

(* Multi-component instances beyond the paper's 49: [benchmarks] keeps the
   paper's population, [find] sees these too. *)
let batch_entry i (u, m) =
  {
    name = Printf.sprintf "batch.%d" i;
    family = Batch;
    invariant_checking = false;
    build = (fun ?bug ctx -> Batch.formula ?bug ctx ~n_units:u ~n_ops:m);
  }

let batch =
  List.mapi batch_entry [ (4, 16); (8, 16); (10, 18); (12, 20); (20, 20) ]

let sample16 =
  let pick names = List.filter (fun b -> List.mem b.name names) benchmarks in
  pick
    [
      "pipe.0"; "pipe.1"; "pipe.2";
      "lsu.0"; "lsu.1";
      "cache.2"; "cache.4"; "cache.6";
      "tv.0"; "tv.1"; "tv.2"; "tv.3"; "tv.4";
      "drv.1"; "drv.3";
      "ooo.0";
    ]

let find name = List.find_opt (fun b -> b.name = name) (benchmarks @ batch)
