(** The benchmark suite standing in for the paper's 49 SUF formulas (§3).

    49 valid formulas drawn from the same six problem domains the paper
    lists: 39 non-invariant-checking benchmarks (processor pipelines,
    load-store units, cache coherence, translation validation, device
    drivers) and 10 out-of-order invariant-checking benchmarks. DAG sizes
    span roughly the paper's 100–7500 node range. Every benchmark also has an
    invalid mutation used by the soundness tests.

    A seventh family of {!batch} instances — scenario-generation batches
    whose negation decomposes into independent constraint systems — sits
    outside the paper's population: {!benchmarks} keeps the 49, {!find}
    sees the batches too. *)

module Ast = Sepsat_suf.Ast

type family =
  | Pipeline
  | Load_store
  | Ooo_invariant
  | Cache
  | Trans_valid
  | Device_driver
  | Batch

val family_name : family -> string

type benchmark = {
  name : string;
  family : family;
  invariant_checking : bool;
      (** the 10 benchmarks of the paper's Fig. 5 discussion *)
  build : ?bug:bool -> Ast.ctx -> Ast.formula;
}

val benchmarks : benchmark list
(** All 49, non-invariant first. *)

val non_invariant : benchmark list
(** The 39 benchmarks of Figs. 4 and 6. *)

val invariant_checking : benchmark list
(** The 10 benchmarks of Fig. 5. *)

val sample16 : benchmark list
(** A 16-benchmark sample with at least one per domain — the paper's §3
    sample used for Fig. 3 and the SEP_THOLD selection. *)

val batch : benchmark list
(** The {!Batch} instances ([batch.N]): healthy builds are {e invalid}
    (the joint scenario exists; the countermodel merges per-unit
    witnesses), [bug] builds are valid through one UNSAT unit. Not part of
    {!benchmarks}. *)

val find : string -> benchmark option
(** Looks through {!benchmarks} and {!batch}. *)
