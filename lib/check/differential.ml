module Ast = Sepsat_suf.Ast
module Smtlib = Sepsat_suf.Smtlib
module Verdict = Sepsat_sep.Verdict
module Deadline = Sepsat_util.Deadline
module Decide = Sepsat.Decide
module Random_formula = Sepsat_workloads.Random_formula

type procedure = {
  name : string;
  expect_proof : bool;
  run : Ast.ctx -> Ast.formula -> Decide.result;
}

let procedure_of_method ?(timeout = 10.) method_ =
  let eager =
    match method_ with
    | Decide.Sd | Decide.Eij | Decide.Hybrid_default | Decide.Hybrid_at _ ->
      true
    (* COMPONENTS certifies like the eager methods: the winning UNSAT
       component's solver logs the DRUP trace (the degenerate path IS the
       eager pipeline), so a Valid answer must carry a certificate. *)
    | Decide.Components -> true
    (* Portfolio certifies through its winning eager member, but DRUP traces
       are not yet plumbed out of the race, so don't demand one. CUBE builds
       its verdict from per-cube assumption cores — no single checkable
       clause stream exists. *)
    | Decide.Svc_baseline | Decide.Lazy_baseline | Decide.Portfolio
    | Decide.Cube_and_conquer ->
      false
  in
  {
    name = Format.asprintf "%a" Decide.pp_method method_;
    expect_proof = eager;
    run =
      (fun ctx f ->
        Decide.decide ~method_ ~deadline:(Deadline.after timeout)
          ~certify:eager ctx f);
  }

let default_procedures ?timeout () =
  List.map
    (procedure_of_method ?timeout)
    [
      Decide.Sd;
      Decide.Eij;
      Decide.Hybrid_at 0;
      Decide.Hybrid_default;
      Decide.Hybrid_at max_int;
      Decide.Svc_baseline;
      Decide.Lazy_baseline;
    ]

type failure_kind =
  | Disagreement
  | Bad_witness of string
  | Bad_proof of string
  | Crash of string

type failure = {
  kind : failure_kind;
  detail : string;
  verdicts : (string * string) list;
}

type tally = { sat_answers : int; unsat_answers : int; unknowns : int }

let no_answers = { sat_answers = 0; unsat_answers = 0; unknowns = 0 }

let add_tally a b =
  {
    sat_answers = a.sat_answers + b.sat_answers;
    unsat_answers = a.unsat_answers + b.unsat_answers;
    unknowns = a.unknowns + b.unknowns;
  }

let verdict_name = function
  | Verdict.Valid -> "valid"
  | Verdict.Invalid _ -> "invalid"
  | Verdict.Unknown why -> "unknown: " ^ why

let check_formula ~procedures ctx formula =
  let outcomes =
    List.map
      (fun p ->
        match p.run ctx formula with
        | r -> (p, Ok r)
        | exception e -> (p, Error (Printexc.to_string e)))
      procedures
  in
  let verdicts =
    List.map
      (fun (p, o) ->
        ( p.name,
          match o with
          | Ok r -> verdict_name r.Decide.verdict
          | Error msg -> "crash: " ^ msg ))
      outcomes
  in
  let fail kind detail = Error { kind; detail; verdicts } in
  (* Certify every answer before comparing them. *)
  let rec certify_all tally = function
    | [] -> Ok tally
    | (p, Error msg) :: _ -> fail (Crash p.name) msg
    | (p, Ok r) :: rest -> (
      match Certify.check ~expect_proof:p.expect_proof formula r with
      | Error (Certify.Witness_error msg) -> fail (Bad_witness p.name) msg
      | Error (Certify.Proof_error msg) -> fail (Bad_proof p.name) msg
      | Ok outcome ->
        let tally =
          match outcome with
          | Certify.Invalid_witnessed _ ->
            { tally with sat_answers = tally.sat_answers + 1 }
          | Certify.Valid_certified | Certify.Valid_uncertified ->
            { tally with unsat_answers = tally.unsat_answers + 1 }
          | Certify.Gave_up _ -> { tally with unknowns = tally.unknowns + 1 }
        in
        certify_all tally rest)
  in
  match certify_all no_answers outcomes with
  | Error _ as e -> e
  | Ok tally -> (
    let decisive =
      List.filter_map
        (fun (p, o) ->
          match o with
          | Ok { Decide.verdict = Verdict.Valid; _ } -> Some (p.name, true)
          | Ok { Decide.verdict = Verdict.Invalid _; _ } ->
            Some (p.name, false)
          | Ok { Decide.verdict = Verdict.Unknown _; _ } | Error _ -> None)
        outcomes
    in
    match decisive with
    | [] | [ _ ] -> Ok tally
    | (_, v) :: rest ->
      if List.for_all (fun (_, v') -> v' = v) rest then Ok tally
      else
        fail Disagreement
          (String.concat ", "
             (List.map
                (fun (n, v) -> Printf.sprintf "%s=%s" n
                   (if v then "valid" else "invalid"))
                decisive)))

let same_kind a b =
  match (a, b) with
  | Disagreement, Disagreement -> true
  | Bad_witness _, Bad_witness _ -> true
  | Bad_proof _, Bad_proof _ -> true
  | Crash _, Crash _ -> true
  | (Disagreement | Bad_witness _ | Bad_proof _ | Crash _), _ -> false

let shrink_failure ~procedures ctx formula (failure : failure) =
  let still_failing g =
    match check_formula ~procedures ctx g with
    | Ok _ -> false
    | Error f -> same_kind f.kind failure.kind
  in
  Shrink.shrink ctx ~still_failing formula

type counterexample = {
  iteration : int;
  gen_seed : int;
  failure : failure;
  original : Ast.formula;
  shrunk : Ast.formula;
  script : string;
}

type summary = {
  iterations : int;
  tally : tally;
  failures : counterexample list;
}

let parallel_methods = [ Decide.Components; Decide.Cube_and_conquer ]

let parallel_procedures ?timeout () =
  List.map (procedure_of_method ?timeout) parallel_methods

let fuzz ?procedures ?(gen = Random_formula.small) ?(shrink_failures = true)
    ?(vary_simplify = false) ?(parallel = `Off) ?parallel_timeout
    ?(log = fun _ -> ()) ~iters ~seed () =
  let procedures =
    match procedures with Some ps -> ps | None -> default_procedures ()
  in
  let parallel_procs =
    match parallel with
    | `Off -> []
    | `On | `Vary -> parallel_procedures ?timeout:parallel_timeout ()
  in
  let tally = ref no_answers in
  let failures = ref [] in
  let saved_simplify = Decide.simplify_default () in
  Fun.protect
    ~finally:(fun () -> Decide.set_simplify_default saved_simplify)
  @@ fun () ->
  for i = 0 to iters - 1 do
    let gen_seed = (seed * 1_000_003) + i in
    (* Alternate the SAT core's pre/inprocessing across iterations so the
       cross-procedure verdict comparison also covers simplified-vs-plain
       search on the same formula stream (shrinking inherits the iteration's
       setting, so reproducers stay deterministic). *)
    if vary_simplify then Decide.set_simplify_default (gen_seed land 1 = 0);
    (* The structural strategies join the comparison either every iteration
       or (vary) on an independent bit of the seed, so vary-mode still
       exercises the sequential-only combinations. *)
    let procedures =
      match parallel with
      | `Off -> procedures
      | `On -> procedures @ parallel_procs
      | `Vary ->
        if gen_seed land 2 = 0 then procedures @ parallel_procs
        else procedures
    in
    let ctx = Ast.create_ctx () in
    let f = Random_formula.generate gen ctx ~seed:gen_seed in
    (match check_formula ~procedures ctx f with
    | Ok t -> tally := add_tally !tally t
    | Error failure ->
      log
        (Printf.sprintf "iteration %d (gen seed %d): %s" i gen_seed
           failure.detail);
      let shrunk =
        if shrink_failures then shrink_failure ~procedures ctx f failure
        else f
      in
      let script = Smtlib.script_to_string [ Ast.not_ ctx shrunk ] in
      failures :=
        { iteration = i; gen_seed; failure; original = f; shrunk; script }
        :: !failures);
    if (i + 1) mod 100 = 0 then
      log
        (Printf.sprintf "%d/%d iterations, %d sat / %d unsat answers, %d \
                         failure(s)"
           (i + 1) iters !tally.sat_answers !tally.unsat_answers
           (List.length !failures))
  done;
  { iterations = iters; tally = !tally; failures = List.rev !failures }

let pp_kind ppf = function
  | Disagreement -> Format.pp_print_string ppf "verdict disagreement"
  | Bad_witness p -> Format.fprintf ppf "bad witness from %s" p
  | Bad_proof p -> Format.fprintf ppf "bad proof from %s" p
  | Crash p -> Format.fprintf ppf "crash in %s" p

let pp_counterexample ppf c =
  Format.fprintf ppf "failure at iteration %d (gen seed %d): %a@." c.iteration
    c.gen_seed pp_kind c.failure.kind;
  Format.fprintf ppf "  %s@." c.failure.detail;
  List.iter
    (fun (name, v) -> Format.fprintf ppf "  %-12s %s@." name v)
    c.failure.verdicts;
  Format.fprintf ppf "original (%d nodes): %a@." (Ast.size c.original) Ast.pp
    c.original;
  Format.fprintf ppf "shrunk to %d nodes; SMT-LIB reproducer:@.%s"
    (Ast.size c.shrunk) c.script

let pp_summary ppf s =
  Format.fprintf ppf
    "%d iterations: %d sat answers (all witness-checked), %d unsat answers \
     (DRUP-checked where applicable), %d unknowns, %d failure(s)@."
    s.iterations s.tally.sat_answers s.tally.unsat_answers s.tally.unknowns
    (List.length s.failures);
  List.iter (fun c -> pp_counterexample ppf c) s.failures
