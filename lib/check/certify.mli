(** End-to-end certification of single {!Sepsat.Decide} answers.

    The paper's pipeline is a chain of satisfiability-preserving
    transformations, and each direction of an answer admits an independent
    check that does not trust the chain:

    - a SAT answer (an [Invalid] verdict) carries a decoded assignment; we
      re-evaluate the eliminated formula under it with the reference
      {!Sepsat_suf.Interp} semantics, lift it to a concrete first-order
      {!Sepsat.Witness} (finite function tables) and re-evaluate the
      {e original} formula — both must come out false;
    - an UNSAT answer (a [Valid] verdict) from an eager method must carry a
      DRUP trace that replays through the independent
      {!Sepsat_sat.Drup_check} unit-propagation engine.

    A decision procedure answer passing {!check} is therefore correct no
    matter how buggy the encoder or the CDCL solver is. *)

module Ast = Sepsat_suf.Ast
module Decide = Sepsat.Decide
module Witness = Sepsat.Witness

type outcome =
  | Valid_certified  (** UNSAT answer whose DRUP trace replays *)
  | Valid_uncertified
      (** UNSAT answer from a procedure that produces no proof (baselines,
          or certification not requested) *)
  | Invalid_witnessed of Witness.t
      (** SAT answer whose decoded witness falsifies both the eliminated and
          the original formula *)
  | Gave_up of string  (** [Unknown] verdict: nothing to certify *)

type error =
  | Witness_error of string
      (** the decoded countermodel does not falsify the formula it claims
          to falsify *)
  | Proof_error of string
      (** a proof was expected and is missing, or its DRUP replay failed *)

val check :
  ?expect_proof:bool ->
  Ast.formula ->
  Decide.result ->
  (outcome, error) result
(** Certify [result] as an answer to the validity query [formula] (the exact
    formula passed to {!Decide.decide}). With [~expect_proof:true] (default
    false) a [Valid] verdict without a passing DRUP certificate is an
    error. *)

val pp_outcome : Format.formatter -> outcome -> unit

val pp_error : Format.formatter -> error -> unit
