(** Differential fuzzing of the decision procedures.

    Runs one validity query through several independent procedures (SD, EIJ,
    HYBRID at several thresholds, the SVC-style and lazy baselines), demands
    unanimous verdicts where decisive, witness-checks every SAT answer with
    {!Certify} and DRUP-checks every UNSAT answer of a proof-producing
    procedure. Any discrepancy is shrunk with {!Shrink} to a minimal
    reproducer and rendered in the repo's SMT-LIB dialect.

    This is the standing oracle for refactoring and performance work: a
    change to any encoder, the solver, or the elimination passes if a fuzz
    run over random formulas reports zero failures. *)

module Ast = Sepsat_suf.Ast
module Decide = Sepsat.Decide
module Random_formula = Sepsat_workloads.Random_formula

type procedure = {
  name : string;
  expect_proof : bool;
      (** UNSAT answers of this procedure must carry a passing DRUP
          certificate *)
  run : Ast.ctx -> Ast.formula -> Decide.result;
}

val procedure_of_method : ?timeout:float -> Decide.method_ -> procedure
(** Eager methods and COMPONENTS run with [~certify:true] and
    [expect_proof = true]; baselines, PORTFOLIO and CUBE produce no proofs.
    [timeout] (seconds, default 10) bounds each call. *)

val default_procedures : ?timeout:float -> unit -> procedure list
(** SD, EIJ, HYBRID at thresholds 0 / default / max, SVC and LAZY. *)

val parallel_methods : Decide.method_ list
(** [Components; Cube_and_conquer] — the structure-parallel strategies. *)

val parallel_procedures : ?timeout:float -> unit -> procedure list
(** {!parallel_methods} as procedures, for cross-checking the parallel
    strategies against the sequential ones. *)

type failure_kind =
  | Disagreement  (** two decisive verdicts differ *)
  | Bad_witness of string  (** procedure whose SAT answer fails its check *)
  | Bad_proof of string  (** procedure whose UNSAT answer fails its check *)
  | Crash of string  (** procedure that raised *)

type failure = {
  kind : failure_kind;
  detail : string;
  verdicts : (string * string) list;  (** procedure name -> verdict *)
}

type tally = { sat_answers : int; unsat_answers : int; unknowns : int }

val check_formula :
  procedures:procedure list ->
  Ast.ctx ->
  Ast.formula ->
  (tally, failure) result
(** Decide [formula] with every procedure and certify every answer. *)

val shrink_failure :
  procedures:procedure list ->
  Ast.ctx ->
  Ast.formula ->
  failure ->
  Ast.formula
(** Smallest formula (greedy local minimum) still exhibiting the same kind
    of failure. *)

type counterexample = {
  iteration : int;
  gen_seed : int;  (** pass to {!Random_formula.generate} to regenerate *)
  failure : failure;
  original : Ast.formula;
  shrunk : Ast.formula;
  script : string;
      (** SMT-LIB reproducer: asserts the negation of the shrunk formula, so
          [check-sat] answers [sat] iff the formula is invalid *)
}

type summary = {
  iterations : int;
  tally : tally;  (** totals across all iterations and procedures *)
  failures : counterexample list;
}

val fuzz :
  ?procedures:procedure list ->
  ?gen:Random_formula.config ->
  ?shrink_failures:bool ->
  ?vary_simplify:bool ->
  ?parallel:[ `On | `Off | `Vary ] ->
  ?parallel_timeout:float ->
  ?log:(string -> unit) ->
  iters:int ->
  seed:int ->
  unit ->
  summary
(** Deterministic: iteration [i] decides the formula generated from seed
    [seed * 1_000_003 + i] in a fresh context. [vary_simplify] (default
    [false]) toggles {!Decide.set_simplify_default} per iteration (by seed
    parity, restored afterwards) so both the simplified and the plain SAT
    core face the same formula stream. [parallel] (default [`Off]) adds
    {!parallel_procedures} to the comparison: [`On] every iteration, [`Vary]
    on an independent bit of the iteration seed ([gen_seed land 2]), so the
    component and cube verdicts are cross-checked against the sequential
    procedures on the same formulas; [parallel_timeout] bounds those calls
    like [timeout] does in {!procedure_of_method}. [log] receives one-line
    progress messages (default: silent). *)

val pp_counterexample : Format.formatter -> counterexample -> unit

val pp_summary : Format.formatter -> summary -> unit
