(** Greedy delta debugging of SUF formulas.

    Given a formula exhibiting some failure (a cross-procedure disagreement,
    a bad witness, ...) and a predicate recognizing the failure, repeatedly
    replace subexpressions with simpler ones — subformulas by [true]/[false]
    or by their own children, subterms by their children or by a (shared)
    fresh symbolic constant — keeping any strictly smaller candidate on which
    the failure persists, until no replacement helps. The result is a local
    minimum: every single further replacement loses the failure. *)

module Ast = Sepsat_suf.Ast

val shrink :
  ?max_checks:int ->
  Ast.ctx ->
  still_failing:(Ast.formula -> bool) ->
  Ast.formula ->
  Ast.formula
(** [shrink ctx ~still_failing f] with [still_failing f = true]. Every
    candidate passed to [still_failing] is strictly smaller (in
    {!Ast.size}) than the current formula, so the procedure terminates;
    [max_checks] (default 10_000) additionally bounds the number of
    predicate evaluations. *)
