module Ast = Sepsat_suf.Ast
module Interp = Sepsat_suf.Interp
module Elim = Sepsat_suf.Elim
module Brute = Sepsat_sep.Brute
module Verdict = Sepsat_sep.Verdict
module Decide = Sepsat.Decide
module Witness = Sepsat.Witness

type outcome =
  | Valid_certified
  | Valid_uncertified
  | Invalid_witnessed of Witness.t
  | Gave_up of string

type error = Witness_error of string | Proof_error of string

(* The eliminated formula is application-free: constants simplified away
   during encoding may be missing from the assignment and default to
   0/false — they cannot influence its value. *)
let sep_interp (a : Brute.assignment) =
  {
    Interp.func =
      (fun n args ->
        match (args, List.assoc_opt n a.Brute.ints) with
        | [], Some v -> v
        | [], None -> 0
        | _ :: _, _ ->
          invalid_arg "Certify: application in eliminated formula");
    Interp.pred =
      (fun n args ->
        match (args, List.assoc_opt n a.Brute.bools) with
        | [], Some b -> b
        | [], None -> false
        | _ :: _, _ ->
          invalid_arg "Certify: application in eliminated formula");
  }

let check ?(expect_proof = false) formula (r : Decide.result) =
  match r.Decide.verdict with
  | Verdict.Unknown why -> Ok (Gave_up why)
  | Verdict.Valid -> (
    match r.Decide.certified with
    | Some true -> Ok Valid_certified
    | Some false -> Error (Proof_error "DRUP replay rejected the trace")
    | None ->
      if expect_proof then
        Error (Proof_error "UNSAT answer carries no DRUP certificate")
      else Ok Valid_uncertified)
  | Verdict.Invalid assignment ->
    if Interp.eval (sep_interp assignment) r.Decide.elim.Elim.formula then
      Error
        (Witness_error
           "decoded assignment does not falsify the eliminated formula")
    else
      let witness =
        match r.Decide.witness with
        | Some w -> w
        | None -> Witness.of_assignment r.Decide.elim assignment
      in
      if not (Witness.falsifies witness formula) then
        Error
          (Witness_error
             "lifted first-order witness does not falsify the original \
              formula")
      else Ok (Invalid_witnessed witness)

let pp_outcome ppf = function
  | Valid_certified -> Format.pp_print_string ppf "valid (DRUP-certified)"
  | Valid_uncertified -> Format.pp_print_string ppf "valid (uncertified)"
  | Invalid_witnessed _ -> Format.pp_print_string ppf "invalid (witnessed)"
  | Gave_up why -> Format.fprintf ppf "unknown (%s)" why

let pp_error ppf = function
  | Witness_error msg -> Format.fprintf ppf "witness error: %s" msg
  | Proof_error msg -> Format.fprintf ppf "proof error: %s" msg
