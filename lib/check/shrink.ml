module Ast = Sepsat_suf.Ast

(* Distinct formula and term nodes reachable from [root]. *)
let nodes root =
  let fs = ref [] and ts = ref [] in
  let seen_f = Hashtbl.create 64 and seen_t = Hashtbl.create 64 in
  let rec go_f (f : Ast.formula) =
    if not (Hashtbl.mem seen_f f.Ast.fid) then begin
      Hashtbl.add seen_f f.Ast.fid ();
      fs := f :: !fs;
      match f.Ast.fnode with
      | Ast.Ftrue | Ast.Ffalse | Ast.Bconst _ -> ()
      | Ast.Not g -> go_f g
      | Ast.And (a, b) | Ast.Or (a, b) ->
        go_f a;
        go_f b
      | Ast.Eq (t1, t2) | Ast.Lt (t1, t2) ->
        go_t t1;
        go_t t2
      | Ast.Papp (_, args) -> List.iter go_t args
    end
  and go_t (t : Ast.term) =
    if not (Hashtbl.mem seen_t t.Ast.tid) then begin
      Hashtbl.add seen_t t.Ast.tid ();
      ts := t :: !ts;
      match t.Ast.tnode with
      | Ast.Const _ -> ()
      | Ast.Succ a | Ast.Pred a -> go_t a
      | Ast.Tite (c, a, b) ->
        go_f c;
        go_t a;
        go_t b
      | Ast.App (_, args) -> List.iter go_t args
    end
  in
  go_f root;
  (!fs, !ts)

(* Rebuild [root] replacing one node (identified by id) everywhere; smart
   constructors re-simplify around the substitution. *)
let rebuild ctx ~target_f ~target_t root =
  let fmemo = Hashtbl.create 64 and tmemo = Hashtbl.create 64 in
  let rec go_f (f : Ast.formula) =
    match target_f with
    | Some (fid, repl) when f.Ast.fid = fid -> repl
    | _ -> (
      match Hashtbl.find_opt fmemo f.Ast.fid with
      | Some f' -> f'
      | None ->
        let f' =
          match f.Ast.fnode with
          | Ast.Ftrue -> Ast.tru ctx
          | Ast.Ffalse -> Ast.fls ctx
          | Ast.Bconst b -> Ast.bconst ctx b
          | Ast.Not g -> Ast.not_ ctx (go_f g)
          | Ast.And (a, b) -> Ast.and_ ctx (go_f a) (go_f b)
          | Ast.Or (a, b) -> Ast.or_ ctx (go_f a) (go_f b)
          | Ast.Eq (t1, t2) -> Ast.eq ctx (go_t t1) (go_t t2)
          | Ast.Lt (t1, t2) -> Ast.lt ctx (go_t t1) (go_t t2)
          | Ast.Papp (p, args) -> Ast.papp ctx p (List.map go_t args)
        in
        Hashtbl.add fmemo f.Ast.fid f';
        f')
  and go_t (t : Ast.term) =
    match target_t with
    | Some (tid, repl) when t.Ast.tid = tid -> repl
    | _ -> (
      match Hashtbl.find_opt tmemo t.Ast.tid with
      | Some t' -> t'
      | None ->
        let t' =
          match t.Ast.tnode with
          | Ast.Const c -> Ast.const ctx c
          | Ast.Succ a -> Ast.succ ctx (go_t a)
          | Ast.Pred a -> Ast.pred ctx (go_t a)
          | Ast.Tite (c, a, b) -> Ast.tite ctx (go_f c) (go_t a) (go_t b)
          | Ast.App (g, args) -> Ast.app ctx g (List.map go_t args)
        in
        Hashtbl.add tmemo t.Ast.tid t';
        t')
  in
  go_f root

let replace_formula ctx root g repl =
  rebuild ctx ~target_f:(Some (g.Ast.fid, repl)) ~target_t:None root

let replace_term ctx root t repl =
  rebuild ctx ~target_f:None ~target_t:(Some (t.Ast.tid, repl)) root

(* All one-step simplification candidates, biggest replaced nodes first so
   large chunks disappear early. *)
let candidates ctx ~fresh root =
  let fs, ts = nodes root in
  let fs =
    List.filter
      (fun (f : Ast.formula) ->
        match f.Ast.fnode with Ast.Ftrue | Ast.Ffalse -> false | _ -> true)
      fs
    |> List.map (fun f -> (Ast.size f, f))
    |> List.sort (fun (a, _) (b, _) -> compare b a)
    |> List.map snd
  in
  let ts = List.sort (fun a b -> compare b.Ast.tid a.Ast.tid) ts in
  let of_formula (g : Ast.formula) =
    let hoisted =
      match g.Ast.fnode with
      | Ast.Not a -> [ a ]
      | Ast.And (a, b) | Ast.Or (a, b) -> [ a; b ]
      | _ -> []
    in
    List.map
      (fun repl -> replace_formula ctx root g repl)
      (Ast.tru ctx :: Ast.fls ctx :: hoisted)
  in
  let of_term (t : Ast.term) =
    let hoisted =
      match t.Ast.tnode with
      | Ast.Const _ -> []
      | Ast.Succ a | Ast.Pred a -> [ a ]
      | Ast.Tite (_, a, b) -> [ a; b ]
      | Ast.App (_, args) -> args
    in
    List.map
      (fun repl -> replace_term ctx root t repl)
      (hoisted @ [ fresh ])
  in
  List.concat_map of_formula fs @ List.concat_map of_term ts

let shrink ?(max_checks = 10_000) ctx ~still_failing f0 =
  let fresh = Ast.const ctx (Ast.fresh_name ctx "shrink") in
  let checks = ref 0 in
  let rec improve f =
    let n = Ast.size f in
    let keep c =
      if c == f || Ast.size c >= n || !checks >= max_checks then false
      else begin
        incr checks;
        still_failing c
      end
    in
    match List.find_opt keep (candidates ctx ~fresh f) with
    | Some c -> improve c
    | None -> f
  in
  improve f0
