type term = { tid : int; tnode : tnode }

and tnode =
  | Const of string
  | Succ of term
  | Pred of term
  | Tite of formula * term * term
  | App of string * term list

and formula = { fid : int; fnode : fnode }

and fnode =
  | Ftrue
  | Ffalse
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Eq of term * term
  | Lt of term * term
  | Papp of string * term list
  | Bconst of string

type tkey =
  | KConst of string
  | KSucc of int
  | KPred of int
  | KTite of int * int * int
  | KApp of string * int list

type fkey =
  | KTrue
  | KFalse
  | KNot of int
  | KAnd of int * int
  | KOr of int * int
  | KEq of int * int
  | KLt of int * int
  | KPapp of string * int list
  | KBconst of string

type kind = Func of int | Pred_sym of int  (* payload: arity *)

type ctx = {
  mutable next_tid : int;
  mutable next_fid : int;
  terms : (tkey, term) Hashtbl.t;
  formulas : (fkey, formula) Hashtbl.t;
  symbols : (string, kind) Hashtbl.t;
}

let create_ctx () =
  {
    next_tid = 0;
    next_fid = 0;
    terms = Hashtbl.create 1024;
    formulas = Hashtbl.create 1024;
    symbols = Hashtbl.create 64;
  }

let register ctx name kind =
  match Hashtbl.find_opt ctx.symbols name with
  | None -> Hashtbl.add ctx.symbols name kind
  | Some k ->
    if k <> kind then
      invalid_arg
        (Printf.sprintf "Ast: symbol %S used with inconsistent kind/arity" name)

let mk_term ctx key node =
  match Hashtbl.find_opt ctx.terms key with
  | Some t -> t
  | None ->
    let t = { tid = ctx.next_tid; tnode = node } in
    ctx.next_tid <- ctx.next_tid + 1;
    Hashtbl.add ctx.terms key t;
    t

let mk_formula ctx key node =
  match Hashtbl.find_opt ctx.formulas key with
  | Some f -> f
  | None ->
    let f = { fid = ctx.next_fid; fnode = node } in
    ctx.next_fid <- ctx.next_fid + 1;
    Hashtbl.add ctx.formulas key f;
    f

(* -- Terms --------------------------------------------------------------- *)

let const ctx name =
  register ctx name (Func 0);
  mk_term ctx (KConst name) (Const name)

let succ ctx t =
  match t.tnode with
  | Pred t' -> t'
  | Const _ | Succ _ | Tite _ | App _ -> mk_term ctx (KSucc t.tid) (Succ t)

let pred ctx t =
  match t.tnode with
  | Succ t' -> t'
  | Const _ | Pred _ | Tite _ | App _ -> mk_term ctx (KPred t.tid) (Pred t)

let plus ctx t k =
  let rec up t k = if k = 0 then t else up (succ ctx t) (k - 1) in
  let rec down t k = if k = 0 then t else down (pred ctx t) (k - 1) in
  if k >= 0 then up t k else down t (-k)

(* -- Formulas ------------------------------------------------------------ *)

let tru ctx = mk_formula ctx KTrue Ftrue

let fls ctx = mk_formula ctx KFalse Ffalse

let of_bool ctx b = if b then tru ctx else fls ctx

let tite ctx c a b =
  match c.fnode with
  | Ftrue -> a
  | Ffalse -> b
  | Not _ | And _ | Or _ | Eq _ | Lt _ | Papp _ | Bconst _ ->
    if a == b then a else mk_term ctx (KTite (c.fid, a.tid, b.tid)) (Tite (c, a, b))

let app ctx name args =
  match args with
  | [] -> const ctx name
  | _ :: _ ->
    register ctx name (Func (List.length args));
    mk_term ctx
      (KApp (name, List.map (fun t -> t.tid) args))
      (App (name, args))

let not_ ctx f =
  match f.fnode with
  | Ftrue -> fls ctx
  | Ffalse -> tru ctx
  | Not g -> g
  | And _ | Or _ | Eq _ | Lt _ | Papp _ | Bconst _ ->
    mk_formula ctx (KNot f.fid) (Not f)

let and_ ctx a b =
  match (a.fnode, b.fnode) with
  | Ffalse, _ | _, Ffalse -> fls ctx
  | Ftrue, _ -> b
  | _, Ftrue -> a
  | _ ->
    if a == b then a
    else if (match a.fnode with Not a' -> a' == b | _ -> false) then fls ctx
    else if (match b.fnode with Not b' -> b' == a | _ -> false) then fls ctx
    else
      let x, y = if a.fid <= b.fid then (a, b) else (b, a) in
      mk_formula ctx (KAnd (x.fid, y.fid)) (And (x, y))

let or_ ctx a b =
  match (a.fnode, b.fnode) with
  | Ftrue, _ | _, Ftrue -> tru ctx
  | Ffalse, _ -> b
  | _, Ffalse -> a
  | _ ->
    if a == b then a
    else if (match a.fnode with Not a' -> a' == b | _ -> false) then tru ctx
    else if (match b.fnode with Not b' -> b' == a | _ -> false) then tru ctx
    else
      let x, y = if a.fid <= b.fid then (a, b) else (b, a) in
      mk_formula ctx (KOr (x.fid, y.fid)) (Or (x, y))

let implies ctx a b = or_ ctx (not_ ctx a) b

let iff ctx a b = and_ ctx (implies ctx a b) (implies ctx b a)

let fite ctx c a b = and_ ctx (implies ctx c a) (implies ctx (not_ ctx c) b)

let and_list ctx fs = List.fold_left (and_ ctx) (tru ctx) fs

let or_list ctx fs = List.fold_left (or_ ctx) (fls ctx) fs

let eq ctx t1 t2 =
  if t1 == t2 then tru ctx
  else
    let x, y = if t1.tid <= t2.tid then (t1, t2) else (t2, t1) in
    mk_formula ctx (KEq (x.tid, y.tid)) (Eq (x, y))

let lt ctx t1 t2 =
  if t1 == t2 then fls ctx else mk_formula ctx (KLt (t1.tid, t2.tid)) (Lt (t1, t2))

let le ctx t1 t2 = not_ ctx (lt ctx t2 t1)

let gt ctx t1 t2 = lt ctx t2 t1

let ge ctx t1 t2 = not_ ctx (lt ctx t1 t2)

let bconst ctx name =
  register ctx name (Pred_sym 0);
  mk_formula ctx (KBconst name) (Bconst name)

let papp ctx name args =
  match args with
  | [] -> bconst ctx name
  | _ :: _ ->
    register ctx name (Pred_sym (List.length args));
    mk_formula ctx
      (KPapp (name, List.map (fun t -> t.tid) args))
      (Papp (name, args))

(* -- Traversal ------------------------------------------------------------ *)

(* Visits every distinct node once; [ft] on terms, [ff] on formulas. *)
let traverse ~ft ~ff root =
  let seen_t = Hashtbl.create 256 in
  let seen_f = Hashtbl.create 256 in
  let rec go_t t =
    if not (Hashtbl.mem seen_t t.tid) then begin
      Hashtbl.add seen_t t.tid ();
      ft t;
      match t.tnode with
      | Const _ -> ()
      | Succ t' | Pred t' -> go_t t'
      | Tite (c, a, b) ->
        go_f c;
        go_t a;
        go_t b
      | App (_, args) -> List.iter go_t args
    end
  and go_f f =
    if not (Hashtbl.mem seen_f f.fid) then begin
      Hashtbl.add seen_f f.fid ();
      ff f;
      match f.fnode with
      | Ftrue | Ffalse | Bconst _ -> ()
      | Not g -> go_f g
      | And (a, b) | Or (a, b) ->
        go_f a;
        go_f b
      | Eq (t1, t2) | Lt (t1, t2) ->
        go_t t1;
        go_t t2
      | Papp (_, args) -> List.iter go_t args
    end
  in
  go_f root

let size root =
  let n = ref 0 in
  traverse ~ft:(fun _ -> incr n) ~ff:(fun _ -> incr n) root;
  !n

let collect_symbols root =
  let funcs = Hashtbl.create 32 in
  let preds = Hashtbl.create 32 in
  let ft t =
    match t.tnode with
    | Const c -> Hashtbl.replace funcs c 0
    | App (f, args) -> Hashtbl.replace funcs f (List.length args)
    | Succ _ | Pred _ | Tite _ -> ()
  in
  let ff f =
    match f.fnode with
    | Bconst b -> Hashtbl.replace preds b 0
    | Papp (p, args) -> Hashtbl.replace preds p (List.length args)
    | Ftrue | Ffalse | Not _ | And _ | Or _ | Eq _ | Lt _ -> ()
  in
  traverse ~ft ~ff root;
  let sorted tbl =
    Hashtbl.fold (fun name arity acc -> (name, arity) :: acc) tbl []
    |> List.sort compare
  in
  (sorted funcs, sorted preds)

let functions root = fst (collect_symbols root)

let predicates root = snd (collect_symbols root)

let atoms root =
  let acc = ref [] in
  let ff f =
    match f.fnode with
    | Eq _ | Lt _ -> acc := f :: !acc
    | Ftrue | Ffalse | Not _ | And _ | Or _ | Papp _ | Bconst _ -> ()
  in
  traverse ~ft:(fun _ -> ()) ~ff root;
  List.rev !acc

let has_applications root =
  let found = ref false in
  let ft t = match t.tnode with App _ -> found := true | _ -> () in
  let ff f = match f.fnode with Papp _ -> found := true | _ -> () in
  traverse ~ft ~ff root;
  !found

let fresh_name ctx stem =
  let rec loop i =
    let name = Printf.sprintf "%s!%d" stem i in
    if Hashtbl.mem ctx.symbols name then loop (i + 1) else name
  in
  if Hashtbl.mem ctx.symbols stem then loop 1 else stem

(* -- Structural digest ----------------------------------------------------- *)

(* Raw 16-byte MD5 of a node's structure: a tag, length-prefixed symbol names
   and the children's digests.  The smart constructors order And/Or/Eq
   children by hash-cons id, which depends on construction order; hashing
   those children as a sorted digest pair makes the digest a function of the
   formula alone, so two contexts that built the same formula in different
   orders (or a parse of a print) agree.  Memoized on the hash-cons ids, so
   the cost is linear in DAG nodes. *)
let digesters () =
  let tmemo = Hashtbl.create 256 in
  let fmemo = Hashtbl.create 256 in
  let memo tbl key f =
    match Hashtbl.find_opt tbl key with
    | Some d -> d
    | None ->
      let d = f () in
      Hashtbl.add tbl key d;
      d
  in
  let nm s = string_of_int (String.length s) ^ ":" ^ s in
  let sorted2 x y = if String.compare x y <= 0 then x ^ y else y ^ x in
  let rec dt t =
    memo tmemo t.tid (fun () ->
        Digest.string
          (match t.tnode with
          | Const c -> "C" ^ nm c
          | Succ t' -> "S" ^ dt t'
          | Pred t' -> "P" ^ dt t'
          | Tite (c, a, b) -> "I" ^ df c ^ dt a ^ dt b
          | App (f, args) ->
            "A" ^ nm f
            ^ string_of_int (List.length args)
            ^ ":"
            ^ String.concat "" (List.map dt args)))
  and df f =
    memo fmemo f.fid (fun () ->
        Digest.string
          (match f.fnode with
          | Ftrue -> "T"
          | Ffalse -> "F"
          | Not g -> "N" ^ df g
          | And (a, b) -> "&" ^ sorted2 (df a) (df b)
          | Or (a, b) -> "|" ^ sorted2 (df a) (df b)
          | Eq (t1, t2) -> "=" ^ sorted2 (dt t1) (dt t2)
          | Lt (t1, t2) -> "<" ^ dt t1 ^ dt t2
          | Papp (p, args) ->
            "p" ^ nm p
            ^ string_of_int (List.length args)
            ^ ":"
            ^ String.concat "" (List.map dt args)
          | Bconst b -> "B" ^ nm b))
  in
  (dt, df)

let digest root =
  let _, df = digesters () in
  Digest.to_hex (df root)

let digest_term t =
  let dt, _ = digesters () in
  Digest.to_hex (dt t)

(* -- Printing ------------------------------------------------------------- *)

let rec pp_term ppf t =
  match t.tnode with
  | Const c -> Format.pp_print_string ppf c
  | Succ t' -> Format.fprintf ppf "(succ %a)" pp_term t'
  | Pred t' -> Format.fprintf ppf "(pred %a)" pp_term t'
  | Tite (c, a, b) ->
    Format.fprintf ppf "@[<hv 1>(ite %a@ %a@ %a)@]" pp c pp_term a pp_term b
  | App (f, args) ->
    Format.fprintf ppf "@[<hv 1>(%s" f;
    List.iter (fun a -> Format.fprintf ppf "@ %a" pp_term a) args;
    Format.fprintf ppf ")@]"

and pp ppf f =
  match f.fnode with
  | Ftrue -> Format.pp_print_string ppf "true"
  | Ffalse -> Format.pp_print_string ppf "false"
  | Not g -> Format.fprintf ppf "@[<hv 1>(not@ %a)@]" pp g
  | And (a, b) -> Format.fprintf ppf "@[<hv 1>(and@ %a@ %a)@]" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "@[<hv 1>(or@ %a@ %a)@]" pp a pp b
  | Eq (t1, t2) -> Format.fprintf ppf "@[<hv 1>(=@ %a@ %a)@]" pp_term t1 pp_term t2
  | Lt (t1, t2) -> Format.fprintf ppf "@[<hv 1>(<@ %a@ %a)@]" pp_term t1 pp_term t2
  | Papp (p, args) ->
    Format.fprintf ppf "@[<hv 1>(%s" p;
    List.iter (fun a -> Format.fprintf ppf "@ %a" pp_term a) args;
    Format.fprintf ppf ")@]"
  | Bconst b -> Format.pp_print_string ppf b

let to_string f = Format.asprintf "%a" pp f
