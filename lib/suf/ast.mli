(** Abstract syntax of SUF — separation logic with uninterpreted functions.

    This is the input logic of the decision procedure, exactly the grammar of
    the paper's Figure 1: Boolean connectives over equalities, inequalities
    and uninterpreted predicate applications; integer expressions built from
    symbolic constants, [succ]/[pred], [ITE] and uninterpreted function
    applications.

    Terms and formulas are hash-consed inside a {!ctx} manager: structurally
    equal subexpressions are physically shared, so {!size} counts DAG nodes
    (the paper's formula-size measure) and downstream analyses memoize on node
    ids. The manager also enforces symbol discipline: a name keeps a single
    kind (function vs predicate) and arity for its lifetime.
    @raise Invalid_argument on symbol misuse. *)

type ctx

type term = private { tid : int; tnode : tnode }

and tnode =
  | Const of string  (** symbolic constant: 0-ary uninterpreted function *)
  | Succ of term
  | Pred of term
  | Tite of formula * term * term
  | App of string * term list  (** uninterpreted function, arity >= 1 *)

and formula = private { fid : int; fnode : fnode }

and fnode =
  | Ftrue
  | Ffalse
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Eq of term * term
  | Lt of term * term
  | Papp of string * term list  (** uninterpreted predicate, arity >= 1 *)
  | Bconst of string  (** symbolic Boolean constant: 0-ary predicate *)

val create_ctx : unit -> ctx

(** {1 Term constructors} *)

val const : ctx -> string -> term

val succ : ctx -> term -> term

val pred : ctx -> term -> term

val plus : ctx -> term -> int -> term
(** [plus ctx t k] is [succ]{^ k}[(t)] ([pred] chains for negative [k]). *)

val tite : ctx -> formula -> term -> term -> term

val app : ctx -> string -> term list -> term
(** 0-ary application collapses to {!const}. *)

(** {1 Formula constructors} *)

val tru : ctx -> formula

val fls : ctx -> formula

val of_bool : ctx -> bool -> formula

val not_ : ctx -> formula -> formula

val and_ : ctx -> formula -> formula -> formula

val or_ : ctx -> formula -> formula -> formula

val implies : ctx -> formula -> formula -> formula

val iff : ctx -> formula -> formula -> formula

val fite : ctx -> formula -> formula -> formula -> formula

val and_list : ctx -> formula list -> formula

val or_list : ctx -> formula list -> formula

val eq : ctx -> term -> term -> formula

val lt : ctx -> term -> term -> formula

val le : ctx -> term -> term -> formula

val gt : ctx -> term -> term -> formula

val ge : ctx -> term -> term -> formula

val papp : ctx -> string -> term list -> formula
(** 0-ary application collapses to {!bconst}. *)

val bconst : ctx -> string -> formula

(** {1 Queries} *)

val size : formula -> int
(** Distinct DAG nodes (terms + formulas) reachable from the root. *)

val functions : formula -> (string * int) list
(** Function symbols with arities, sorted by name; arity 0 = symbolic
    constants. *)

val predicates : formula -> (string * int) list
(** Predicate symbols with arities, sorted by name; arity 0 = symbolic
    Boolean constants. *)

val atoms : formula -> formula list
(** All distinct [Eq]/[Lt] atom nodes. *)

val has_applications : formula -> bool
(** Whether any uninterpreted function or predicate of arity >= 1 remains. *)

val fresh_name : ctx -> string -> string
(** A name based on the stem that is not yet registered in the manager. *)

(** {1 Structural digest} *)

val digest : formula -> string
(** Stable 32-hex-character structural digest of the formula. The digest is a
    function of the formula's abstract syntax alone: it does not depend on
    the hash-cons table order, the context it was built in, or the
    construction order of commutative children (And/Or/Eq children hash as an
    unordered pair, matching the smart constructors' id-based
    canonicalization). Parse/print round-trips — {!pp} and
    {!Smtlib.print_script} alike — preserve it, which is what makes it a
    sound whole-query memoization key for result caches. Linear in DAG
    nodes. *)

val digest_term : term -> string
(** Same digest, rooted at a term. *)

val pp_term : Format.formatter -> term -> unit

val pp : Format.formatter -> formula -> unit
(** Prints in the concrete s-expression syntax accepted by {!Parse}. *)

val to_string : formula -> string
