exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type script = {
  logic : string option;
  assertions : Ast.formula list;
  requested_check : bool;
}

type sort = Int_sort | Bool_sort

(* A converted subterm: SMT-LIB terms are sort-overloaded, so conversion
   carries the sort in the result. *)
type value = T of Ast.term | F of Ast.formula

type env = {
  ctx : Ast.ctx;
  decls : (string, sort list * sort) Hashtbl.t;
  mutable lets : (string * value) list;  (* innermost first *)
}

let sort_of_sexp = function
  | Sexp.Atom "Int" -> Int_sort
  | Sexp.Atom "Bool" -> Bool_sort
  | Sexp.Atom s -> error "unsupported sort %S (only Int and Bool)" s
  | Sexp.List _ -> error "unsupported compound sort"

(* Negative numerals are written (- k) in SMT-LIB and handled at the
   operand level. *)
let numeral s = int_of_string_opt s

let check_symbol name =
  if String.length name = 0 then error "empty symbol";
  if String.contains name '|' then error "quoted symbols are unsupported";
  if numeral name <> None then error "numeral %S used as a symbol" name

let declared_sort env name =
  match Hashtbl.find_opt env.decls name with
  | Some ([], sort) -> Some sort
  | Some (_ :: _, _) -> error "function symbol %S used without arguments" name
  | None -> None

(* -- Term conversion ------------------------------------------------------- *)

let rec convert env (s : Sexp.t) : value =
  match s with
  | Sexp.Atom "true" -> F (Ast.tru env.ctx)
  | Sexp.Atom "false" -> F (Ast.fls env.ctx)
  | Sexp.Atom name -> (
    match numeral name with
    | Some _ ->
      error
        "bare numeral %S: absolute constants are outside separation logic \
         (use offsets like (+ x %s))"
        name name
    | None -> (
      check_symbol name;
      match List.assoc_opt name env.lets with
      | Some v -> v
      | None -> (
        match declared_sort env name with
        | Some Bool_sort -> F (Ast.bconst env.ctx name)
        | Some Int_sort | None -> T (Ast.const env.ctx name))))
  | Sexp.List (Sexp.Atom "let" :: rest) -> convert_let env rest
  | Sexp.List (Sexp.Atom head :: args) -> convert_app env head args
  | Sexp.List _ -> error "term head must be a symbol"

and convert_let env = function
  | [ Sexp.List bindings; body ] ->
    let saved = env.lets in
    let bound =
      List.map
        (fun b ->
          match b with
          | Sexp.List [ Sexp.Atom name; value ] -> (name, convert env value)
          | _ -> error "malformed let binding")
        bindings
    in
    (* SMT-LIB let is parallel: all values are converted in the outer
       environment before any binding takes effect. *)
    env.lets <- bound @ saved;
    let v = convert env body in
    env.lets <- saved;
    v
  | _ -> error "let expects a binding list and a body"

and formula env s =
  match convert env s with
  | F f -> f
  | T _ -> error "expected a Bool term"

and term env s =
  match convert env s with
  | T t -> t
  | F _ -> error "expected an Int term"

(* An order/equality operand: either an Int term, or the difference pattern
   (- x y), or a plain numeral (valid only opposite a difference). *)
and operand env (s : Sexp.t) =
  match s with
  | Sexp.Atom a when numeral a <> None -> `Num (Option.get (numeral a))
  | Sexp.List [ Sexp.Atom "-"; Sexp.Atom a ] when numeral a <> None ->
    `Num (-Option.get (numeral a))
  | Sexp.List [ Sexp.Atom "-"; x; y ] -> (
    (* could be an offset (- t k) or a difference (- x y) *)
    match y with
    | Sexp.Atom a when numeral a <> None ->
      `Term (Ast.plus env.ctx (term env x) (-Option.get (numeral a)))
    | _ -> `Diff (term env x, term env y))
  | _ -> `Term (term_arith env s)

(* Int terms including the offset sugar. *)
and term_arith env (s : Sexp.t) =
  match s with
  | Sexp.List [ Sexp.Atom "+"; x; Sexp.Atom k ] when numeral k <> None ->
    Ast.plus env.ctx (term env x) (Option.get (numeral k))
  | Sexp.List [ Sexp.Atom "+"; Sexp.Atom k; x ] when numeral k <> None ->
    Ast.plus env.ctx (term env x) (Option.get (numeral k))
  | Sexp.List [ Sexp.Atom "-"; x; Sexp.Atom k ] when numeral k <> None ->
    Ast.plus env.ctx (term env x) (-Option.get (numeral k))
  | _ -> term env s

(* Orders and equality over Int operands, with difference rewriting:
   (op (- x y) k)  <=>  (op x (+ y k)). *)
and compare_app env op_name build a b =
  compare_operands env op_name build (operand env a) (operand env b)

and convert_app env head args =
  let ctx = env.ctx in
  let formulas () = List.map (formula env) args in
  match (head, args) with
  | "not", [ a ] -> F (Ast.not_ ctx (formula env a))
  | "and", _ :: _ -> F (Ast.and_list ctx (formulas ()))
  | "or", _ :: _ -> F (Ast.or_list ctx (formulas ()))
  | "xor", [ a; b ] ->
    F (Ast.not_ ctx (Ast.iff ctx (formula env a) (formula env b)))
  | "=>", _ :: _ :: _ ->
    (* right-associative chain *)
    let rec chain = function
      | [ last ] -> formula env last
      | a :: rest -> Ast.implies ctx (formula env a) (chain rest)
      | [] -> assert false
    in
    F (chain args)
  | "ite", [ c; a; b ] -> (
    let c = formula env c in
    match (convert env a, convert env b) with
    | T t1, T t2 -> T (Ast.tite ctx c t1 t2)
    | F f1, F f2 -> F (Ast.fite ctx c f1 f2)
    | T _, F _ | F _, T _ -> error "ite branches have different sorts")
  | "=", [ a; b ] -> (
    match (convert_eq_operand env a, convert_eq_operand env b) with
    | `Formula f1, `Formula f2 -> F (Ast.iff ctx f1 f2)
    | `Operand o1, `Operand o2 ->
      F (compare_operands env "=" (Ast.eq ctx) o1 o2)
    | `Formula _, `Operand _ | `Operand _, `Formula _ ->
      error "= arguments have different sorts")
  | "distinct", _ :: _ :: _ ->
    let terms = List.map (term_arith env) args in
    let rec pairs = function
      | [] -> []
      | x :: rest ->
        List.map (fun y -> Ast.not_ ctx (Ast.eq ctx x y)) rest @ pairs rest
    in
    F (Ast.and_list ctx (pairs terms))
  | "<", [ a; b ] -> F (compare_app env "<" (Ast.lt ctx) a b)
  | "<=", [ a; b ] -> F (compare_app env "<=" (Ast.le ctx) a b)
  | ">", [ a; b ] -> F (compare_app env ">" (Ast.gt ctx) a b)
  | ">=", [ a; b ] -> F (compare_app env ">=" (Ast.ge ctx) a b)
  | ("+" | "-"), _ -> T (term_arith env (Sexp.List (Sexp.Atom head :: args)))
  | name, _ -> (
    check_symbol name;
    if args = [] then error "application of %S with no arguments" name;
    let arg_terms = List.map (term env) args in
    match Hashtbl.find_opt env.decls name with
    | Some (_, Bool_sort) -> F (Ast.papp ctx name arg_terms)
    | Some (_, Int_sort) | None -> T (Ast.app ctx name arg_terms))

and convert_eq_operand env s =
  (* = is overloaded over Bool and Int; probe for Bool first via structure *)
  match s with
  | Sexp.Atom ("true" | "false") -> `Formula (formula env s)
  | Sexp.Atom name when numeral name = None -> (
    match List.assoc_opt name env.lets with
    | Some (F f) -> `Formula f
    | Some (T t) -> `Operand (`Term t)
    | None -> (
      match declared_sort env name with
      | Some Bool_sort -> `Formula (Ast.bconst env.ctx name)
      | Some Int_sort | None -> `Operand (operand env s)))
  | Sexp.List (Sexp.Atom head :: _)
    when List.mem head
           [ "not"; "and"; "or"; "xor"; "=>"; "="; "distinct"; "<"; "<="; ">";
             ">=" ] ->
    `Formula (formula env s)
  | Sexp.List (Sexp.Atom name :: _) when Hashtbl.mem env.decls name -> (
    match Hashtbl.find env.decls name with
    | _, Bool_sort -> `Formula (formula env s)
    | _, Int_sort -> `Operand (operand env s))
  | _ -> `Operand (operand env s)

and compare_operands env op_name build o1 o2 =
  match (o1, o2) with
  | `Term t1, `Term t2 -> build t1 t2
  | `Diff (x, y), `Num k -> build x (Ast.plus env.ctx y k)
  | `Num k, `Diff (x, y) -> build (Ast.plus env.ctx y k) x
  | `Num _, `Num _ | `Num _, `Term _ | `Term _, `Num _ ->
    error
      "%s compares against an absolute constant, which is outside separation \
       logic"
      op_name
  | `Diff _, (`Term _ | `Diff _) | `Term _, `Diff _ ->
    error "%s: differences may only be compared against a numeral" op_name

(* -- Commands --------------------------------------------------------------- *)

let script ctx text =
  let env = { ctx; decls = Hashtbl.create 32; lets = [] } in
  let logic = ref None in
  let assertions = ref [] in
  let requested_check = ref false in
  let command = function
    | Sexp.List [ Sexp.Atom "set-logic"; Sexp.Atom l ] -> logic := Some l
    | Sexp.List (Sexp.Atom ("set-info" | "set-option") :: _) -> ()
    | Sexp.List [ Sexp.Atom "declare-fun"; Sexp.Atom name; Sexp.List sorts;
                  ret ] ->
      check_symbol name;
      Hashtbl.replace env.decls name (List.map sort_of_sexp sorts, sort_of_sexp ret)
    | Sexp.List [ Sexp.Atom "declare-const"; Sexp.Atom name; ret ] ->
      check_symbol name;
      Hashtbl.replace env.decls name ([], sort_of_sexp ret)
    | Sexp.List [ Sexp.Atom "assert"; t ] ->
      assertions := formula env t :: !assertions
    | Sexp.List [ Sexp.Atom "check-sat" ] -> requested_check := true
    | Sexp.List [ Sexp.Atom "exit" ] -> ()
    | Sexp.List (Sexp.Atom ("push" | "pop") :: _) ->
      error "push/pop are unsupported"
    | Sexp.List (Sexp.Atom "define-fun" :: _) ->
      error "define-fun is unsupported"
    | Sexp.List (Sexp.Atom cmd :: _) -> error "unsupported command %S" cmd
    | Sexp.List _ | Sexp.Atom _ -> error "malformed command"
  in
  (try List.iter command (Sexp.parse_all text) with
  | Sexp.Error msg -> error "%s" msg
  | Invalid_argument msg -> error "%s" msg);
  {
    logic = !logic;
    assertions = List.rev !assertions;
    requested_check = !requested_check;
  }

let script_of_file ctx path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  script ctx text

let goal ctx s = Ast.not_ ctx (Ast.and_list ctx s.assertions)

(* -- Printing --------------------------------------------------------------- *)

(* Collapse a succ/pred chain (homogeneous by smart-constructor cancellation)
   into an offset from its base term. *)
let rec peel_offset k (t : Ast.term) =
  match t.Ast.tnode with
  | Ast.Succ t' -> peel_offset (k + 1) t'
  | Ast.Pred t' -> peel_offset (k - 1) t'
  | Ast.Const _ | Ast.Tite _ | Ast.App _ -> (k, t)

let rec pp_term ppf (t : Ast.term) =
  let k, base = peel_offset 0 t in
  if k > 0 then Format.fprintf ppf "(+ %a %d)" pp_base base k
  else if k < 0 then Format.fprintf ppf "(- %a %d)" pp_base base (-k)
  else pp_base ppf base

and pp_base ppf (t : Ast.term) =
  match t.Ast.tnode with
  | Ast.Const c -> Format.pp_print_string ppf c
  | Ast.Tite (c, a, b) ->
    Format.fprintf ppf "@[<hv 1>(ite %a@ %a@ %a)@]" pp_formula c pp_term a
      pp_term b
  | Ast.App (f, args) ->
    Format.fprintf ppf "@[<hv 1>(%s" f;
    List.iter (fun a -> Format.fprintf ppf "@ %a" pp_term a) args;
    Format.fprintf ppf ")@]"
  | Ast.Succ _ | Ast.Pred _ -> assert false (* peeled by the caller *)

and pp_formula ppf (f : Ast.formula) =
  match f.Ast.fnode with
  | Ast.Ftrue -> Format.pp_print_string ppf "true"
  | Ast.Ffalse -> Format.pp_print_string ppf "false"
  | Ast.Not g -> Format.fprintf ppf "@[<hv 1>(not@ %a)@]" pp_formula g
  | Ast.And (a, b) ->
    Format.fprintf ppf "@[<hv 1>(and@ %a@ %a)@]" pp_formula a pp_formula b
  | Ast.Or (a, b) ->
    Format.fprintf ppf "@[<hv 1>(or@ %a@ %a)@]" pp_formula a pp_formula b
  | Ast.Eq (t1, t2) ->
    Format.fprintf ppf "@[<hv 1>(=@ %a@ %a)@]" pp_term t1 pp_term t2
  | Ast.Lt (t1, t2) ->
    Format.fprintf ppf "@[<hv 1>(<@ %a@ %a)@]" pp_term t1 pp_term t2
  | Ast.Papp (p, args) ->
    Format.fprintf ppf "@[<hv 1>(%s" p;
    List.iter (fun a -> Format.fprintf ppf "@ %a" pp_term a) args;
    Format.fprintf ppf ")@]"
  | Ast.Bconst b -> Format.pp_print_string ppf b

let print_script ppf assertions =
  let funcs = Hashtbl.create 32 and preds = Hashtbl.create 32 in
  List.iter
    (fun f ->
      List.iter (fun (n, a) -> Hashtbl.replace funcs n a) (Ast.functions f);
      List.iter (fun (n, a) -> Hashtbl.replace preds n a) (Ast.predicates f))
    assertions;
  let sorted tbl =
    Hashtbl.fold (fun n a acc -> (n, a) :: acc) tbl [] |> List.sort compare
  in
  let pp_decl ret (name, arity) =
    Format.fprintf ppf "(declare-fun %s (%s) %s)@." name
      (String.concat " " (List.init arity (fun _ -> "Int")))
      ret
  in
  Format.fprintf ppf "(set-logic QF_UFIDL)@.";
  List.iter (pp_decl "Int") (sorted funcs);
  List.iter (pp_decl "Bool") (sorted preds);
  List.iter
    (fun f -> Format.fprintf ppf "@[<hv 1>(assert@ %a)@]@." pp_formula f)
    assertions;
  Format.fprintf ppf "(check-sat)@.(exit)@."

let script_to_string assertions =
  Format.asprintf "%a" print_script assertions
