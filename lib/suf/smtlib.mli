(** SMT-LIB 2 front end for the QF_UFIDL fragment expressible in SUF.

    Accepts scripts with [set-logic]/[set-info]/[set-option],
    [declare-fun]/[declare-const] over sorts [Int] and [Bool], [assert],
    [check-sat] and [exit]. Terms may use [and]/[or]/[not]/[=>]/[xor]/[ite]/
    [let]/[distinct]/[=], the orders [<] [<=] [>] [>=], and integer-difference
    arithmetic in the shapes SUF can express:

    - offsets: [(+ t k)], [(- t k)], [(+ k t)] with a numeral [k];
    - differences under an order or equality: [(op (- x y) k)] is rewritten
      to [(op x (+ y k))].

    Absolute numerals (e.g. [(< x 3)] with no second constant) are outside
    separation logic and are rejected with a clear error, as are [push]/[pop]
    and [define-fun]. *)

exception Error of string

type script = {
  logic : string option;
  assertions : Ast.formula list;
  requested_check : bool;  (** the script contained [check-sat] *)
}

val script : Ast.ctx -> string -> script
(** @raise Error on unsupported or malformed input. *)

val script_of_file : Ast.ctx -> string -> script

val goal : Ast.ctx -> script -> Ast.formula
(** The validity query answering the script: the assertions are satisfiable
    iff this formula ([¬ (∧ assertions)]) is invalid. *)

(** {1 Printing}

    Inverse of {!script}, staying inside the dialect documented above:
    [succ]/[pred] chains fold to [(+ t k)] / [(- t k)] offsets and every
    symbol of the assertions is declared up front. Printing then re-parsing
    into the same context yields the identical hash-consed formulas, and the
    printed text is a fixpoint of [parse ∘ print]. *)

val print_script : Format.formatter -> Ast.formula list -> unit
(** A complete script: declarations, one [assert] per formula, [check-sat],
    [exit]. *)

val script_to_string : Ast.formula list -> string
