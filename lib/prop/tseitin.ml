module Solver = Sepsat_sat.Solver
module Lit = Sepsat_sat.Lit

type mode = Full | Polarity

type t = {
  solver : Solver.t;
  mode : mode;
  var_lits : (int, Lit.t) Hashtbl.t;  (* formula var index -> solver literal *)
  memo : (int, Lit.t) Hashtbl.t;  (* formula node id -> solver literal *)
  done_pos : (int, unit) Hashtbl.t;  (* gate ids with l => def clauses out *)
  done_neg : (int, unit) Hashtbl.t;  (* gate ids with def => l clauses out *)
  root_done : (int, unit) Hashtbl.t;  (* nodes already asserted as roots *)
  mutable const_true : Lit.t option;
  mutable n_clauses : int;
}

(* Cap on n-ary flattening: an And/Or spine wider than this is split into
   nested gates so no single definition clause grows unboundedly (long
   clauses slow the two-watched-literal scheme's new-watch scan). *)
let max_width = 64

let create ?(mode = Polarity) solver =
  {
    solver;
    mode;
    var_lits = Hashtbl.create 256;
    memo = Hashtbl.create 1024;
    done_pos = Hashtbl.create 1024;
    done_neg = Hashtbl.create 1024;
    root_done = Hashtbl.create 64;
    const_true = None;
    n_clauses = 0;
  }

(* One registry-wide counter across every converter instance. *)
let m_clauses = lazy (Sepsat_obs.Metrics.counter "cnf.clauses")

let add_clause t c =
  t.n_clauses <- t.n_clauses + 1;
  Sepsat_obs.Metrics.incr (Lazy.force m_clauses);
  Solver.add_clause t.solver c

let lit_of_var t i =
  match Hashtbl.find_opt t.var_lits i with
  | Some l -> l
  | None ->
    let l = Lit.pos (Solver.new_var t.solver) in
    Hashtbl.add t.var_lits i l;
    l

let find_var t i = Hashtbl.find_opt t.var_lits i

let true_lit t =
  match t.const_true with
  | Some l -> l
  | None ->
    let l = Lit.pos (Solver.new_var t.solver) in
    add_clause t [ l ];
    t.const_true <- Some l;
    l

(* -- Full (both-direction, binary) conversion --------------------------- *)

let rec encode_full t (f : Formula.t) =
  match Hashtbl.find_opt t.memo f.id with
  | Some l -> l
  | None ->
    let l =
      match f.node with
      | Formula.True -> true_lit t
      | Formula.False -> Lit.neg (true_lit t)
      | Formula.Var i -> lit_of_var t i
      | Formula.Not g -> Lit.neg (encode_full t g)
      | Formula.And (a, b) ->
        let la = encode_full t a and lb = encode_full t b in
        let l = Lit.pos (Solver.new_var t.solver) in
        add_clause t [ Lit.neg l; la ];
        add_clause t [ Lit.neg l; lb ];
        add_clause t [ l; Lit.neg la; Lit.neg lb ];
        l
      | Formula.Or (a, b) ->
        let la = encode_full t a and lb = encode_full t b in
        let l = Lit.pos (Solver.new_var t.solver) in
        add_clause t [ Lit.neg l; la; lb ];
        add_clause t [ l; Lit.neg la ];
        add_clause t [ l; Lit.neg lb ];
        l
    in
    Hashtbl.add t.memo f.id l;
    l

(* -- Polarity-aware (Plaisted-Greenbaum) conversion ---------------------- *)

let gate_lit t (f : Formula.t) =
  match Hashtbl.find_opt t.memo f.id with
  | Some l -> l
  | None ->
    let l = Lit.pos (Solver.new_var t.solver) in
    Hashtbl.add t.memo f.id l;
    l

(* Children of the same-connective spine rooted at [f] (an And or Or gate),
   deduplicated. Flattening stops at nodes that already carry a gate literal
   (shared subformulas keep their single definition) and at [max_width]. *)
let gather t (f : Formula.t) =
  let is_and = match f.node with Formula.And _ -> true | _ -> false in
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let count = ref 0 in
  let rec go (g : Formula.t) =
    let flatten =
      !count < max_width
      && (not (Hashtbl.mem t.memo g.id))
      &&
      match (g.node, is_and) with
      | Formula.And _, true | Formula.Or _, false -> true
      | _ -> false
    in
    if flatten then
      match g.node with
      | Formula.And (a, b) | Formula.Or (a, b) ->
        go a;
        go b
      | _ -> assert false
    else if not (Hashtbl.mem seen g.id) then begin
      Hashtbl.add seen g.id ();
      acc := g :: !acc;
      incr count
    end
  in
  (match f.node with
  | Formula.And (a, b) | Formula.Or (a, b) ->
    go a;
    go b
  | _ -> assert false);
  List.rev !acc

(* Returns the literal for [f], emitting only the definition directions that
   the occurrence polarity demands: [pos] asks for l => def (the node occurs
   under an even number of negations), [neg] for def => l. Directions are
   tracked per gate, so a shared node seen under both polarities ends up
   fully defined while single-polarity nodes stay at half price. *)
let rec encode_pg t (f : Formula.t) ~pos ~neg =
  match f.node with
  | Formula.True -> true_lit t
  | Formula.False -> Lit.neg (true_lit t)
  | Formula.Var i -> lit_of_var t i
  | Formula.Not g -> Lit.neg (encode_pg t g ~pos:neg ~neg:pos)
  | Formula.And _ | Formula.Or _ ->
    let l = gate_lit t f in
    let need_pos = pos && not (Hashtbl.mem t.done_pos f.id) in
    let need_neg = neg && not (Hashtbl.mem t.done_neg f.id) in
    if need_pos then Hashtbl.add t.done_pos f.id ();
    if need_neg then Hashtbl.add t.done_neg f.id ();
    if need_pos || need_neg then begin
      let children = gather t f in
      let clits =
        List.map (fun g -> encode_pg t g ~pos:need_pos ~neg:need_neg) children
      in
      match f.node with
      | Formula.And _ ->
        if need_pos then
          List.iter (fun c -> add_clause t [ Lit.neg l; c ]) clits;
        if need_neg then add_clause t (l :: List.map Lit.neg clits)
      | Formula.Or _ ->
        if need_pos then add_clause t (Lit.neg l :: clits);
        if need_neg then
          List.iter (fun c -> add_clause t [ l; Lit.neg c ]) clits
      | _ -> assert false
    end;
    l

let encode t f =
  match t.mode with
  | Full -> encode_full t f
  | Polarity -> encode_pg t f ~pos:true ~neg:true

let rec assert_root t (f : Formula.t) =
  match t.mode with
  | Full -> add_clause t [ encode_full t f ]
  | Polarity ->
    if not (Hashtbl.mem t.root_done f.id) then begin
      Hashtbl.add t.root_done f.id ();
      match f.node with
      | Formula.True -> ()
      | Formula.False -> add_clause t []
      | Formula.And (a, b) when not (Hashtbl.mem t.memo f.id) ->
        (* A conjunctive root splits into several roots: no gate variable,
           no definition clauses. *)
        assert_root t a;
        assert_root t b
      | Formula.Or _ when not (Hashtbl.mem t.memo f.id) ->
        (* A disjunctive root becomes a single clause over its children. *)
        let clits =
          List.map (fun g -> encode_pg t g ~pos:true ~neg:false) (gather t f)
        in
        add_clause t clits
      | _ -> add_clause t [ encode_pg t f ~pos:true ~neg:false ]
    end

let clauses_added t = t.n_clauses
