(** CNF conversion into a live SAT solver.

    Each distinct formula DAG node is encoded once (sharing-preserving), so
    the clause count is linear in the DAG size. Negations reuse the
    complemented literal and cost no variables or clauses.

    Two conversions are available. {!Polarity} (the default) is the
    Plaisted-Greenbaum translation: a gate's definition clauses are emitted
    only in the direction(s) its occurrence polarity demands, and maximal
    same-connective And/Or spines are flattened into n-ary definitions
    (width-capped), cutting both clause and variable counts versus the
    textbook translation. Models still project correctly onto the input
    variables of an asserted root. {!Full} is the classical both-direction
    binary Tseitin conversion, kept for paths that need the gate variables to
    be fully defined — model reconstruction over arbitrary subformulas and
    the DRUP certification pipeline. *)

type t

type mode =
  | Full  (** both-direction binary Tseitin, the paper's translation *)
  | Polarity  (** polarity-aware Plaisted-Greenbaum with n-ary flattening *)

val create : ?mode:mode -> Sepsat_sat.Solver.t -> t
(** [mode] defaults to {!Polarity}. *)

val lit_of_var : t -> int -> Sepsat_sat.Lit.t
(** Solver literal standing for a formula variable index; allocated (and
    cached) on demand, so the caller can decode models. *)

val find_var : t -> int -> Sepsat_sat.Lit.t option
(** Like {!lit_of_var} but without allocating: [None] means the formula
    variable never reached the solver (its value is unconstrained). *)

val encode : t -> Formula.t -> Sepsat_sat.Lit.t
(** Returns the literal equisatisfiably representing the formula; definition
    clauses are added to the solver as a side effect. In {!Polarity} mode the
    returned literal is fully defined (both directions), since the caller may
    use it under either sign. *)

val assert_root : t -> Formula.t -> unit
(** Encodes the formula and asserts it. In {!Polarity} mode the assertion is
    clausal: conjunctive roots split into several roots and disjunctive roots
    become a single clause, so no top-level gate variables are introduced. *)

val clauses_added : t -> int
(** Total CNF clauses this encoder has pushed into the solver (the "# of CNF
    clauses" column of the paper's Fig. 2). *)
