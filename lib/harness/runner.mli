(** Uniform benchmark execution with statistics collection. *)

module Suite = Sepsat_workloads.Suite
module Decide = Sepsat.Decide
module Verdict = Sepsat_sep.Verdict

type outcome = Completed | Timed_out | Blew_up

type row = {
  bench : string;
  family : string;
  invariant_checking : bool;
  method_ : Decide.method_;
  size : int;  (** SUF DAG nodes *)
  sep_cnt : int;  (** separation-predicate estimate of the formula *)
  verdict : Verdict.t;
  outcome : outcome;
  total_time : float;  (** CPU time reported by the decision procedure *)
  wall_time : float;  (** wall clock around the whole decide call *)
  translate_time : float;
  sat_time : float;
  cnf_clauses : int;
  conflicts : int;  (** learned conflict clauses (0 for SVC) *)
  decisions : int;
  propagations : int;
  trans_constraints : int;
  winner : Decide.method_ option;  (** portfolio runs only *)
  phase_times : (string * float) list;
      (** per-phase split of [total_time]; see {!Sepsat.Decide.result} *)
  alloc_words : float;  (** words allocated during the decide call *)
  major_words : float;  (** words allocated directly on the major heap *)
  heap_words : int;  (** major-heap size after the call *)
}

val run : ?deadline_s:float -> Decide.method_ -> Suite.benchmark -> row
(** Builds the benchmark in a fresh context and decides it. Default deadline
    30 seconds of CPU time (the laptop-scale stand-in for the paper's
    30-minute limit). *)

val reset_recorded : unit -> unit
(** Forget the rows recorded so far. *)

val recorded_rows : unit -> row list
(** All rows recorded by {!run} since start (or the last
    {!reset_recorded}), in execution order. *)

val write_json : string -> row list -> unit
(** Write a schema-2 report object (hand-rolled JSON; no external
    dependency): [{"schema": 2, "runs": [...], "gc": {...}, "metrics":
    {...}}]. Keys per run: [bench], [family], [method], [verdict]
    ([valid]/[invalid]/[unknown]), [outcome]
    ([completed]/[timeout]/[blowup]), [wall_time], [cpu_time],
    [translate_time], [sat_time], [phase_times] (object of per-phase
    seconds), [size], [sep_cnt], [cnf_clauses], [conflicts], [decisions],
    [propagations], [winner] (string or null), [gc] (per-run allocation
    deltas). The top-level [gc] is the process-wide [Gc.quick_stat] at write
    time; [metrics] is {!Sepsat_obs.Metrics.to_json} (empty object when
    observability is off). *)

val penalized_time : deadline_s:float -> row -> float
(** Total time, with timeouts/blowups charged the full deadline — the
    convention used when plotting against the paper's "timeout" gridline. *)

val normalized_time : deadline_s:float -> row -> float
(** {!penalized_time} per thousand DAG nodes (the paper's sec/Knodes
    normalization for Fig. 3). *)
