(** Uniform benchmark execution with statistics collection. *)

module Suite = Sepsat_workloads.Suite
module Decide = Sepsat.Decide
module Verdict = Sepsat_sep.Verdict

type outcome = Completed | Timed_out | Blew_up

type row = {
  bench : string;
  family : string;
  invariant_checking : bool;
  method_ : Decide.method_;
  size : int;  (** SUF DAG nodes *)
  sep_cnt : int;  (** separation-predicate estimate of the formula *)
  verdict : Verdict.t;
  outcome : outcome;
  total_time : float;  (** CPU time reported by the decision procedure *)
  wall_time : float;  (** wall clock around the whole decide call *)
  translate_time : float;
  sat_time : float;
  cnf_clauses : int;
  conflicts : int;  (** learned conflict clauses (0 for SVC) *)
  decisions : int;
  propagations : int;
  trans_constraints : int;
  winner : Decide.method_ option;  (** portfolio runs only *)
}

val run : ?deadline_s:float -> Decide.method_ -> Suite.benchmark -> row
(** Builds the benchmark in a fresh context and decides it. Default deadline
    30 seconds of CPU time (the laptop-scale stand-in for the paper's
    30-minute limit). *)

val reset_recorded : unit -> unit
(** Forget the rows recorded so far. *)

val recorded_rows : unit -> row list
(** All rows recorded by {!run} since start (or the last
    {!reset_recorded}), in execution order. *)

val write_json : string -> row list -> unit
(** Write rows as a JSON array (hand-rolled; no external dependency). Keys
    per row: [bench], [family], [method], [verdict]
    ([valid]/[invalid]/[unknown]), [outcome]
    ([completed]/[timeout]/[blowup]), [wall_time], [cpu_time],
    [translate_time], [sat_time], [size], [sep_cnt], [cnf_clauses],
    [conflicts], [decisions], [propagations], [winner] (string or null). *)

val penalized_time : deadline_s:float -> row -> float
(** Total time, with timeouts/blowups charged the full deadline — the
    convention used when plotting against the paper's "timeout" gridline. *)

val normalized_time : deadline_s:float -> row -> float
(** {!penalized_time} per thousand DAG nodes (the paper's sec/Knodes
    normalization for Fig. 3). *)
