(* Perf-regression baselines: record the suite's per-benchmark wall times,
   re-run later, and decide "did this change make something slower" in a
   way that survives both run-to-run noise and machine-to-machine speed
   differences.

   Noise: each entry keeps the *minimum* wall time over its runs. The
   minimum is the standard low-noise location estimate for benchmark
   timing — interference (GC from a previous run, a scheduler hiccup, a
   cold cache) only ever adds time, so the fastest observed run is the
   closest to the code's intrinsic cost.

   Machine drift: a checked-in baseline is scraped on one machine and
   compared on another, so every comparison first estimates a global
   drift factor — the median of the per-benchmark current/baseline
   ratios — and judges each benchmark against its drift-adjusted
   expectation. A uniformly 2x-slower CI runner moves every ratio to ~2,
   the median absorbs it, and nothing is flagged; a genuine regression
   moves *one* benchmark off the pack and sticks out of the median. The
   median needs a few points to be meaningful, so drift correction only
   engages with >= 4 paired entries. A flagged benchmark must exceed both
   a relative threshold (ratio above drift) and an absolute one (seconds
   above drift-adjusted baseline): the relative test alone would flag
   microsecond jitter on trivial benchmarks, the absolute test alone
   would miss a 10x slowdown of a fast one. *)

module Decide = Sepsat.Decide
module J = Sepsat_serve.Json

type entry = {
  e_bench : string;
  e_method : string;  (* Decide.pp_method rendering, as in schema-2 files *)
  e_wall_s : float;  (* min over the aggregated runs *)
  e_runs : int;
  e_phases : (string * float) list;  (* phase times of the fastest run *)
}

let key e = (e.e_bench, e.e_method)

let entry_of_row (r : Runner.row) =
  {
    e_bench = r.Runner.bench;
    e_method = Format.asprintf "%a" Decide.pp_method r.Runner.method_;
    e_wall_s = r.Runner.wall_time;
    e_runs = 1;
    e_phases = r.Runner.phase_times;
  }

let merge a b =
  if b.e_wall_s < a.e_wall_s then
    { b with e_runs = a.e_runs + b.e_runs }
  else { a with e_runs = a.e_runs + b.e_runs }

(* Group by (bench, method), min-of-k wall time, order of first sight. *)
let aggregate entries =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun e ->
      match Hashtbl.find_opt tbl (key e) with
      | None ->
        Hashtbl.add tbl (key e) e;
        order := key e :: !order
      | Some prev -> Hashtbl.replace tbl (key e) (merge prev e))
    entries;
  List.rev_map (Hashtbl.find tbl) !order

let of_rows rows = aggregate (List.map entry_of_row rows)

let schema = "sepsat-bench-baseline-1"

let write path entries =
  let entry_json e =
    J.Obj
      [
        ("bench", J.Str e.e_bench);
        ("method", J.Str e.e_method);
        ("wall_s", J.Num e.e_wall_s);
        ("runs", J.Num (float_of_int e.e_runs));
        ( "phase_times",
          J.Obj (List.map (fun (n, t) -> (n, J.Num t)) e.e_phases) );
      ]
  in
  let j =
    J.Obj
      [ ("schema", J.Str schema); ("runs", J.Arr (List.map entry_json entries)) ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (J.to_string j);
      output_char oc '\n')

(* Reads both this module's baseline files and Runner.write_json's schema-2
   reports: either way there is a "runs" array whose elements carry
   "bench", "method", a wall time ("wall_s" here, "wall_time" in schema-2)
   and optionally "phase_times". Schema-2 files repeat a benchmark once per
   recorded run; aggregation takes the min, exactly as [of_rows] does. *)
let read path =
  let text =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match J.parse text with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok j -> (
    match J.member "runs" j with
    | Some (J.Arr runs) -> (
      let parse_run r =
        match
          ( J.mem_str "bench" r,
            Option.fold ~none:(J.mem_num "wall_time" r) ~some:Option.some
              (J.mem_num "wall_s" r) )
        with
        | Some bench, Some wall ->
          let phases =
            match J.member "phase_times" r with
            | Some (J.Obj fields) ->
              List.filter_map
                (fun (n, v) -> Option.map (fun t -> (n, t)) (J.to_num v))
                fields
            | _ -> []
          in
          Ok
            {
              e_bench = bench;
              e_method = Option.value (J.mem_str "method" r) ~default:"";
              e_wall_s = wall;
              e_runs = Option.value (J.mem_int "runs" r) ~default:1;
              e_phases = phases;
            }
        | _ -> Error "run entry lacks \"bench\" or a wall time"
      in
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | r :: rest -> (
          match parse_run r with
          | Ok e -> collect (e :: acc) rest
          | Error e -> Error (Printf.sprintf "%s: %s" path e))
      in
      match collect [] runs with
      | Error _ as e -> e
      | Ok entries -> Ok (aggregate entries))
    | _ -> Error (Printf.sprintf "%s: no \"runs\" array" path))

(* -- Comparison ------------------------------------------------------------ *)

type delta = {
  d_bench : string;
  d_method : string;
  d_base_s : float;
  d_cur_s : float;
  d_ratio : float;  (* cur / base, drift not applied *)
  d_adjusted : float;  (* ratio / drift — the judged quantity *)
  d_regressed : bool;
  d_worst_phase : (string * float) option;
      (* phase with the largest absolute growth over drift-adjusted base *)
}

type comparison = {
  c_drift : float;
  c_deltas : delta list;
  c_regressions : delta list;
  c_missing : entry list;  (* in the baseline, absent from the current run *)
  c_new : entry list;
}

let median = function
  | [] -> 1.
  | xs ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2)
    else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let ratio ~base ~cur = if base > 0. then cur /. base else 1.

let worst_phase ~drift ~base ~cur =
  let growth (name, cur_t) =
    let base_t = Option.value (List.assoc_opt name base.e_phases) ~default:0. in
    (name, cur_t -. (base_t *. drift))
  in
  match List.map growth cur.e_phases with
  | [] -> None
  | g :: gs ->
    Some (List.fold_left (fun acc x -> if snd x > snd acc then x else acc) g gs)

let compare_ ?(rel = 0.25) ?(abs_s = 0.05) ~baseline current =
  let find entries k = List.find_opt (fun e -> key e = k) entries in
  let paired =
    List.filter_map
      (fun cur ->
        Option.map (fun base -> (base, cur)) (find baseline (key cur)))
      current
  in
  let ratios =
    List.map (fun (b, c) -> ratio ~base:b.e_wall_s ~cur:c.e_wall_s) paired
  in
  (* Drift needs a population to take a median over; with fewer points the
     median *is* the (few) benchmarks under judgment and would normalize a
     real regression away. *)
  let drift = if List.length paired >= 4 then median ratios else 1. in
  let deltas =
    List.map
      (fun (base, cur) ->
        let r = ratio ~base:base.e_wall_s ~cur:cur.e_wall_s in
        let adjusted = if drift > 0. then r /. drift else r in
        let regressed =
          adjusted > 1. +. rel
          && cur.e_wall_s -. (base.e_wall_s *. drift) > abs_s
        in
        {
          d_bench = cur.e_bench;
          d_method = cur.e_method;
          d_base_s = base.e_wall_s;
          d_cur_s = cur.e_wall_s;
          d_ratio = r;
          d_adjusted = adjusted;
          d_regressed = regressed;
          d_worst_phase =
            (if regressed then worst_phase ~drift ~base ~cur else None);
        })
      paired
  in
  {
    c_drift = drift;
    c_deltas = deltas;
    c_regressions = List.filter (fun d -> d.d_regressed) deltas;
    c_missing =
      List.filter (fun b -> find current (key b) = None) baseline;
    c_new = List.filter (fun c -> find baseline (key c) = None) current;
  }

let regressed c = c.c_regressions <> []

let pp ppf c =
  Format.fprintf ppf "Baseline comparison: %d paired, drift %.3fx@."
    (List.length c.c_deltas) c.c_drift;
  List.iter
    (fun d ->
      Format.fprintf ppf "  %-12s %-14s %8.3fs -> %8.3fs  x%.2f (adj x%.2f)%s@."
        d.d_bench d.d_method d.d_base_s d.d_cur_s d.d_ratio d.d_adjusted
        (if d.d_regressed then "  REGRESSION" else "");
      match d.d_worst_phase with
      | Some (phase, s) when d.d_regressed ->
        Format.fprintf ppf "    worst phase: %s (+%.3fs over baseline)@."
          phase s
      | _ -> ())
    c.c_deltas;
  (match c.c_missing with
  | [] -> ()
  | ms ->
    Format.fprintf ppf "  missing from this run (%d):" (List.length ms);
    List.iter (fun e -> Format.fprintf ppf " %s/%s" e.e_bench e.e_method) ms;
    Format.fprintf ppf "@.");
  (match c.c_new with
  | [] -> ()
  | ns ->
    Format.fprintf ppf "  not in the baseline (%d):" (List.length ns);
    List.iter (fun e -> Format.fprintf ppf " %s/%s" e.e_bench e.e_method) ns;
    Format.fprintf ppf "@.");
  if c.c_regressions = [] then Format.fprintf ppf "  no regressions@."
  else
    Format.fprintf ppf "  %d regression(s)@." (List.length c.c_regressions)
