module Suite = Sepsat_workloads.Suite
module Decide = Sepsat.Decide
module Ast = Sepsat_suf.Ast
module Verdict = Sepsat_sep.Verdict
module Deadline = Sepsat_util.Deadline
module Engine = Sepsat_serve.Engine
module Protocol = Sepsat_serve.Protocol
module Session = Sepsat_serve.Session

type target = In_process | Fleet of string

type config = {
  clients : int;
  repeats : int;
  bench_names : string list;
  method_ : Decide.method_;
  timeout_s : float;
  workers : int;
  queue_capacity : int;
  cache_capacity : int;
  target : target;
}

let default =
  {
    clients = 4;
    repeats = 3;
    bench_names = [ "pipe.3"; "pipe.5"; "cache.5"; "cache.6"; "tv.1" ];
    method_ = Decide.Hybrid_default;
    timeout_s = 30.;
    workers = 2;
    queue_capacity = 64;
    cache_capacity = 1024;
    target = In_process;
  }

type lat = {
  l_count : int;
  l_mean_ms : float;
  l_min_ms : float;
  l_max_ms : float;
  l_p50_ms : float;
  l_p90_ms : float;
  l_p99_ms : float;
}

let lat_of = function
  | [] ->
    {
      l_count = 0;
      l_mean_ms = 0.;
      l_min_ms = 0.;
      l_max_ms = 0.;
      l_p50_ms = 0.;
      l_p90_ms = 0.;
      l_p99_ms = 0.;
    }
  | ms ->
    let n = List.length ms in
    (* Same estimator the serving engine's stats use: a window sized to
       hold everything is just "exact quantiles of the sample". *)
    let w = Sepsat_obs.Window.create ~capacity:n () in
    List.iter (Sepsat_obs.Window.add w) ms;
    let p50, p90, p99 =
      match Sepsat_obs.Window.quantiles w [ 0.5; 0.9; 0.99 ] with
      | [ a; b; c ] -> (a, b, c)
      | _ -> (0., 0., 0.)
    in
    {
      l_count = n;
      l_mean_ms = List.fold_left ( +. ) 0. ms /. float_of_int n;
      l_min_ms = List.fold_left min infinity ms;
      l_max_ms = List.fold_left max neg_infinity ms;
      l_p50_ms = p50;
      l_p90_ms = p90;
      l_p99_ms = p99;
    }

type report = {
  r_config : config;
  r_requests : int;
  r_ok : int;
  r_busy : int;
  r_errors : int;
  r_wall_s : float;
  r_throughput_rps : float;
  r_all : lat;
  r_cold : lat;
  r_hit : lat;
  r_joined : lat;
  r_speedup : float;
  r_mismatches : (string * string * string) list;
}

(* One client's record of one response. *)
type obs = {
  ob_id : string;
  ob_bench : string;
  ob_verdict : string;  (* "valid"/"invalid"/"unknown"/"busy"/"error" *)
  ob_origin : Protocol.origin option;
  ob_ms : float;
}

let run config =
  let benchmarks =
    List.map
      (fun name ->
        match Suite.find name with
        | Some b -> b
        | None -> invalid_arg (Printf.sprintf "Loadgen.run: no benchmark %S" name))
      config.bench_names
  in
  (* The workload is text, like real traffic: each client re-sends the same
     bytes, and structural caching is what collapses them. *)
  let texts =
    List.map
      (fun (b : Suite.benchmark) ->
        let ctx = Ast.create_ctx () in
        (b.Suite.name, Format.asprintf "%a" Ast.pp (b.Suite.build ctx)))
      benchmarks
  in
  (* Sequential reference pass: the verdicts every concurrent response must
     reproduce. *)
  let sequential =
    List.map
      (fun (name, text) ->
        let ctx = Ast.create_ctx () in
        let f = Sepsat_suf.Parse.formula ctx text in
        let r =
          Decide.decide ~method_:config.method_
            ~deadline:(Deadline.after_wall config.timeout_s) ctx f
        in
        ( name,
          Protocol.verdict_to_string (Protocol.verdict_of_sep r.Decide.verdict)
        ))
      texts
  in
  let n_texts = List.length texts in
  let texts_arr = Array.of_list texts in
  (* One client's request schedule: client-specific rotation, so the cold
     phase overlaps distinct formulas instead of joining on one. *)
  let schedule k f =
    for round = 0 to config.repeats - 1 do
      for i = 0 to n_texts - 1 do
        let name, text = texts_arr.((i + k) mod n_texts) in
        let id = Printf.sprintf "%s#c%d.r%d" name k round in
        f ~id ~name ~text
      done
    done
  in
  let observations, wall_s =
    match config.target with
    | In_process ->
      let engine =
        Engine.create ~workers:config.workers
          ~queue_capacity:config.queue_capacity
          ~cache_capacity:config.cache_capacity
          ~default_timeout_s:config.timeout_s ()
      in
      let client k () =
        Sepsat_obs.Obs.name_thread (Printf.sprintf "loadgen:client-%d" k);
        let out = ref [] in
        schedule k (fun ~id ~name ~text ->
            let t0 = Deadline.wall_now () in
            let reply =
              Engine.solve ~block:true engine
                (Engine.job ~method_:config.method_
                   ~timeout_s:config.timeout_s text)
            in
            let ms = (Deadline.wall_now () -. t0) *. 1000. in
            let ob =
              match reply with
              | None ->
                { ob_id = id; ob_bench = name; ob_verdict = "busy";
                  ob_origin = None; ob_ms = ms }
              | Some (Error msg) ->
                ignore msg;
                { ob_id = id; ob_bench = name; ob_verdict = "error";
                  ob_origin = None; ob_ms = ms }
              | Some (Ok o) ->
                {
                  ob_id = id;
                  ob_bench = name;
                  ob_verdict = Protocol.verdict_to_string o.Engine.o_verdict;
                  ob_origin = Some o.Engine.o_origin;
                  ob_ms = ms;
                }
            in
            out := ob :: !out);
        !out
      in
      let t0 = Deadline.wall_now () in
      let domains =
        List.init config.clients (fun k -> Domain.spawn (client k))
      in
      let observations = List.concat_map Domain.join domains in
      let wall_s = Deadline.wall_now () -. t0 in
      Engine.shutdown engine;
      (observations, wall_s)
    | Fleet path ->
      (* Socket clients against a running server or fleet router. Threads,
         not domains: each client spends its life blocked on socket I/O,
         and threads let the concurrency exceed the core count — the
         p99-under-load scenario. Retries ride out busy sheds and backend
         restarts; a reply that is still busy after the retry budget is
         recorded as busy. *)
      let results = Array.make config.clients [] in
      let client k =
        let session = ref (Session.connect ~retries:50 path) in
        let out = ref [] in
        schedule k (fun ~id ~name ~text ->
            let t0 = Deadline.wall_now () in
            let s, reply =
              Session.with_retry ~path !session (fun s ->
                  Session.solve s ~id ~method_:config.method_
                    ~timeout_s:config.timeout_s text)
            in
            session := s;
            let ms = (Deadline.wall_now () -. t0) *. 1000. in
            let ob =
              match reply with
              | Protocol.Ok_solve s ->
                {
                  ob_id = id;
                  ob_bench = name;
                  ob_verdict =
                    Protocol.verdict_to_string s.Protocol.sv_verdict;
                  ob_origin = Some s.Protocol.sv_origin;
                  ob_ms = ms;
                }
              | Protocol.Busy _ ->
                { ob_id = id; ob_bench = name; ob_verdict = "busy";
                  ob_origin = None; ob_ms = ms }
              | _ ->
                { ob_id = id; ob_bench = name; ob_verdict = "error";
                  ob_origin = None; ob_ms = ms }
            in
            out := ob :: !out);
        Session.close !session;
        results.(k) <- !out
      in
      let t0 = Deadline.wall_now () in
      let threads = List.init config.clients (fun k -> Thread.create client k) in
      List.iter Thread.join threads;
      let wall_s = Deadline.wall_now () -. t0 in
      (List.concat (Array.to_list results), wall_s)
  in
  let requests = List.length observations in
  let ok =
    List.length
      (List.filter (fun o -> o.ob_origin <> None) observations)
  in
  let busy =
    List.length (List.filter (fun o -> o.ob_verdict = "busy") observations)
  in
  let errors =
    List.length (List.filter (fun o -> o.ob_verdict = "error") observations)
  in
  let bucket origin =
    List.filter_map
      (fun o -> if o.ob_origin = Some origin then Some o.ob_ms else None)
      observations
  in
  let cold = lat_of (bucket Protocol.Solved) in
  let hit = lat_of (bucket Protocol.Cache_hit) in
  let joined = lat_of (bucket Protocol.Joined) in
  let all =
    lat_of
      (List.filter_map
         (fun o -> if o.ob_origin <> None then Some o.ob_ms else None)
         observations)
  in
  let speedup =
    if cold.l_count > 0 && hit.l_count > 0 && hit.l_mean_ms > 0. then
      cold.l_mean_ms /. hit.l_mean_ms
    else 0.
  in
  let mismatches =
    List.filter_map
      (fun o ->
        match o.ob_origin with
        | None -> None
        | Some _ ->
          let expected = List.assoc o.ob_bench sequential in
          (* Unknown under concurrent load (budget contention) is a
             resource answer, not a soundness defect; only decisive
             disagreement counts. *)
          if
            o.ob_verdict <> expected
            && o.ob_verdict <> "unknown"
            && expected <> "unknown"
          then Some (o.ob_id, expected, o.ob_verdict)
          else None)
      observations
  in
  {
    r_config = config;
    r_requests = requests;
    r_ok = ok;
    r_busy = busy;
    r_errors = errors;
    r_wall_s = wall_s;
    r_throughput_rps =
      (if wall_s > 0. then float_of_int ok /. wall_s else 0.);
    r_all = all;
    r_cold = cold;
    r_hit = hit;
    r_joined = joined;
    r_speedup = speedup;
    r_mismatches = mismatches;
  }

let pp_lat ppf (name, l) =
  if l.l_count = 0 then Format.fprintf ppf "  %-7s -@." name
  else
    Format.fprintf ppf
      "  %-7s %5d responses  mean %8.3f ms  min %8.3f  p50 %8.3f  p90 \
       %8.3f  p99 %8.3f  max %8.3f@."
      name l.l_count l.l_mean_ms l.l_min_ms l.l_p50_ms l.l_p90_ms l.l_p99_ms
      l.l_max_ms

let pp ppf r =
  (match r.r_config.target with
  | In_process -> Format.fprintf ppf "Serving load generator@."
  | Fleet path -> Format.fprintf ppf "Serving load generator — fleet at %s@." path);
  Format.fprintf ppf
    "  %d clients x %d repeats over %d benchmarks, %d workers, %a@."
    r.r_config.clients r.r_config.repeats
    (List.length r.r_config.bench_names)
    r.r_config.workers Decide.pp_method r.r_config.method_;
  Format.fprintf ppf "  %d requests (%d ok, %d busy, %d errors) in %.3f s  =>  %.1f req/s@."
    r.r_requests r.r_ok r.r_busy r.r_errors r.r_wall_s r.r_throughput_rps;
  pp_lat ppf ("all", r.r_all);
  pp_lat ppf ("cold", r.r_cold);
  pp_lat ppf ("hit", r.r_hit);
  pp_lat ppf ("joined", r.r_joined);
  (if r.r_speedup > 0. then
     Format.fprintf ppf "  cache-hit speedup: %.1fx@." r.r_speedup);
  match r.r_mismatches with
  | [] -> Format.fprintf ppf "  verdicts: all agree with the sequential pass@."
  | ms ->
    Format.fprintf ppf "  VERDICT MISMATCHES (%d):@." (List.length ms);
    List.iter
      (fun (id, want, got) ->
        Format.fprintf ppf "    %s: sequential %s, served %s@." id want got)
      ms

let write_json path r =
  let module J = Sepsat_serve.Json in
  let flat l =
    J.Obj
      [
        ("count", J.Num (float_of_int l.l_count));
        ("mean_ms", J.Num l.l_mean_ms);
        ("min_ms", J.Num (if l.l_count = 0 then 0. else l.l_min_ms));
        ("p50_ms", J.Num l.l_p50_ms);
        ("p90_ms", J.Num l.l_p90_ms);
        ("p99_ms", J.Num l.l_p99_ms);
        ("max_ms", J.Num (if l.l_count = 0 then 0. else l.l_max_ms));
      ]
  in
  (* The "runs" array speaks the perf-gate dialect ({!Baseline.read}
     pairs on bench+method, reads "wall_s"): each latency quantile of the
     run becomes one comparable entry, so `bench --compare` gates fleet
     p99-under-load exactly like a figure-2 wall time. Machine speed
     cancels through the gate's drift normalization (all quantiles shift
     together); a genuine tail blowup moves p99 out of the pack. *)
  let bench_label =
    match r.r_config.target with
    | In_process -> "serve.loadgen"
    | Fleet _ -> "fleet.loadgen"
  in
  let runs =
    List.map
      (fun (m, ms) ->
        J.Obj
          [
            ("bench", J.Str bench_label);
            ("method", J.Str m);
            ("wall_s", J.Num (ms /. 1000.));
          ])
      [
        ("mean", r.r_all.l_mean_ms);
        ("p50", r.r_all.l_p50_ms);
        ("p90", r.r_all.l_p90_ms);
        ("p99", r.r_all.l_p99_ms);
      ]
  in
  let j =
    J.Obj
      [
        ("schema", J.Num 2.);
        ("runs", J.Arr runs);
        ( "config",
          J.Obj
            [
              ("clients", J.Num (float_of_int r.r_config.clients));
              ("repeats", J.Num (float_of_int r.r_config.repeats));
              ( "benchmarks",
                J.Arr (List.map (fun n -> J.Str n) r.r_config.bench_names) );
              ("method", J.Str (Protocol.method_to_wire r.r_config.method_));
              ("timeout_s", J.Num r.r_config.timeout_s);
              ("workers", J.Num (float_of_int r.r_config.workers));
              ( "queue_capacity",
                J.Num (float_of_int r.r_config.queue_capacity) );
              ( "cache_capacity",
                J.Num (float_of_int r.r_config.cache_capacity) );
            ] );
        ("requests", J.Num (float_of_int r.r_requests));
        ("ok", J.Num (float_of_int r.r_ok));
        ("busy", J.Num (float_of_int r.r_busy));
        ("errors", J.Num (float_of_int r.r_errors));
        ("wall_s", J.Num r.r_wall_s);
        ("throughput_rps", J.Num r.r_throughput_rps);
        ("all", flat r.r_all);
        ("cold", flat r.r_cold);
        ("hit", flat r.r_hit);
        ("joined", flat r.r_joined);
        ("speedup", J.Num r.r_speedup);
        ( "mismatches",
          J.Arr
            (List.map
               (fun (id, want, got) ->
                 J.Obj
                   [
                     ("id", J.Str id);
                     ("sequential", J.Str want);
                     ("served", J.Str got);
                   ])
               r.r_mismatches) );
      ]
  in
  let oc = open_out path in
  output_string oc (J.to_string j);
  output_char oc '\n';
  close_out oc
