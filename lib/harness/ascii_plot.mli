(** Log-log ASCII scatter plots, for regenerating the paper's figures in a
    terminal. *)

type series = { label : string; glyph : char; points : (float * float) list }

val scatter :
  ?width:int ->
  ?height:int ->
  ?diagonal:bool ->
  xlabel:string ->
  ylabel:string ->
  Format.formatter ->
  series list ->
  unit
(** Both axes are log-scaled; non-positive values are clamped to the smallest
    positive value plotted. [diagonal] draws the y = x line (the paper's
    Figs. 4–6 reference). *)

val sparkline : ?width:int -> float array -> string
(** The last [width] (default 60) values as one line of ▁▂▃▄▅▆▇█ block
    glyphs, scaled to the min/max of the shown range (a flat series renders
    as all-▁). [""] on an empty array. The `sufdec top` dashboard's trend
    lines. *)
