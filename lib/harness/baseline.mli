(** Perf-regression baselines over the benchmark suite: record per-bench
    wall times, re-run later, flag what got slower.

    Two defenses against false alarms, both needed for a checked-in
    baseline to be useful across machines:

    - {b Noise}: entries keep the {e minimum} wall time over their runs
      (interference only adds time, so min-of-k is the low-noise
      estimate).
    - {b Machine drift}: a comparison first estimates a global drift
      factor — the median of per-benchmark current/baseline ratios, when
      at least 4 benchmarks pair up — and judges each benchmark against
      its drift-adjusted expectation. A uniformly slower machine shifts
      the median and flags nothing; a single benchmark going off the pack
      is exactly what sticks out.

    A regression must clear {e both} a relative threshold (drift-adjusted
    ratio) and an absolute one (seconds over drift-adjusted baseline). *)

type entry = {
  e_bench : string;
  e_method : string;
      (** [Decide.pp_method] rendering, matching schema-2 report files *)
  e_wall_s : float;  (** min over the aggregated runs *)
  e_runs : int;  (** how many runs were aggregated *)
  e_phases : (string * float) list;  (** phase times of the fastest run *)
}

val of_rows : Runner.row list -> entry list
(** Group recorded rows by (bench, method); min-of-k wall time, phase
    times of the fastest run. First-seen order. *)

val write : string -> entry list -> unit
(** Write a baseline file:
    [{"schema":"sepsat-bench-baseline-1","runs":[...]}]. *)

val read : string -> (entry list, string) result
(** Read a baseline file {e or} a {!Runner.write_json} schema-2 report —
    anything with a ["runs"] array of objects carrying ["bench"], a wall
    time (["wall_s"] or ["wall_time"]) and optionally ["method"] and
    ["phase_times"]. Duplicate (bench, method) entries aggregate by min,
    so a multi-run report reads back exactly like {!of_rows}. *)

type delta = {
  d_bench : string;
  d_method : string;
  d_base_s : float;
  d_cur_s : float;
  d_ratio : float;  (** current / baseline, before drift adjustment *)
  d_adjusted : float;  (** ratio / drift — what the thresholds judge *)
  d_regressed : bool;
  d_worst_phase : (string * float) option;
      (** regressed entries only: the phase with the largest absolute
          growth over its drift-adjusted baseline, for attribution *)
}

type comparison = {
  c_drift : float;  (** the applied drift factor ([1.] below 4 pairs) *)
  c_deltas : delta list;  (** one per paired (bench, method) *)
  c_regressions : delta list;
  c_missing : entry list;  (** in the baseline but not in this run *)
  c_new : entry list;  (** in this run but not in the baseline *)
}

val compare_ :
  ?rel:float -> ?abs_s:float -> baseline:entry list -> entry list -> comparison
(** [compare_ ~baseline current]. A paired benchmark regresses iff its
    drift-adjusted ratio exceeds [1 + rel] (default [rel = 0.25]) {e and}
    it is more than [abs_s] seconds (default 0.05) over its
    drift-adjusted baseline. Missing/new entries are reported, never
    flagged. *)

val regressed : comparison -> bool

val pp : Format.formatter -> comparison -> unit
