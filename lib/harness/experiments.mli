(** Regeneration of every table and figure in the paper's evaluation (§3–5).

    Each function runs the relevant benchmarks and prints the corresponding
    artifact: the exact rows of the paper's Figure 2 table, the data series
    plus an ASCII rendering of the scatter plots of Figures 3–6, and the
    SEP_THOLD selection of §4.1. Deadlines are per-run CPU budgets — the
    laptop-scale analog of the paper's 30-minute wall-clock limit. *)

val figure2 : ?deadline_s:float -> Format.formatter -> unit
(** Effect of the encoding on the SAT solver: CNF clauses, conflict clauses
    and SAT time for SD vs EIJ on five of the larger sample benchmarks. *)

val figure3 : ?deadline_s:float -> Format.formatter -> unit
(** Normalized total time (sec/Knodes) against the number of separation
    predicates, for SD and EIJ over the 16-benchmark sample. *)

val threshold_selection : ?deadline_s:float -> Format.formatter -> int
(** The §4.1 statistical procedure: clusters the sample's EIJ normalized
    run-times and returns the selected SEP_THOLD. *)

val figure4 : ?deadline_s:float -> Format.formatter -> unit
(** HYBRID (default threshold) against SD and EIJ on the 39 non-invariant
    benchmarks. *)

val figure5 : ?deadline_s:float -> Format.formatter -> unit
(** HYBRID (SEP_THOLD = 100) against SD and EIJ on the 10 invariant-checking
    benchmarks. *)

val figure6 : ?deadline_s:float -> Format.formatter -> unit
(** HYBRID against the SVC-style and CVC-style (lazy) baselines on the 39
    non-invariant benchmarks. *)

val figure_portfolio : ?deadline_s:float -> Format.formatter -> unit
(** The multicore portfolio (SD ∥ EIJ ∥ HYBRID racing on separate domains)
    against each member on a representative benchmark subset, with the
    winning method and wall-clock time per benchmark. *)

val parallel_benchmarks : string list
(** Benchmarks of {!figure_parallel}: representative single-component
    suite instances plus three multi-component [batch.N] instances. *)

val figure_parallel : ?deadline_s:float -> Format.formatter -> unit
(** The structure-parallel strategies (COMPONENTS, CUBE) against the
    sequential HYBRID lane: unchanged verdicts on the single-component
    suite instances, and the wall-clock speedup evidence on the
    multi-component [batch.N] instances. *)

val ablation_threshold : ?deadline_s:float -> Format.formatter -> unit
(** Design-choice ablation: HYBRID search time across a SEP_THOLD sweep on
    representative benchmarks, run as assumption vectors against a single
    incremental SAT solver ({!Sepsat.Decide.decide_sweep}), showing the
    SD/EIJ crossover the default threshold balances. *)

val ablation_positive_equality : ?deadline_s:float -> Format.formatter -> unit
(** Design-choice ablation: encoding cost with and without the
    positive-equality analysis (all constants forced into [V_g]), measuring
    what the Bryant-German-Velev optimization buys. *)

val all : ?deadline_s:float -> Format.formatter -> unit
(** Every artifact in paper order, then the ablations. *)
