(** Load generator for the serving engine: concurrent clients over a
    repeated benchmark workload, measuring throughput and the cache's
    effect on latency.

    Drives an in-process {!Sepsat_serve.Engine} (no sockets — the protocol
    layer is measured by the CI smoke instead) with N client domains, each
    submitting the whole workload [repeats] times in a client-specific
    rotation, so early requests overlap distinct formulas while later
    rounds hammer the cache. Three numbers fall out per response: its
    verdict (checked against a sequential [Decide.decide] pass over the
    same workload — the concurrency soundness gate), its origin (cold
    solve, cache hit, or single-flight join) and its client-observed
    latency. The report separates cold from cache-hit latency; the
    engine's whole point is that the ratio between them is large. *)

module Suite = Sepsat_workloads.Suite
module Decide = Sepsat.Decide

type target =
  | In_process  (** drive an {!Sepsat_serve.Engine} directly (no sockets) *)
  | Fleet of string
      (** connect client sessions to this Unix-domain socket — a single
          [sufdec serve] or a fleet router; clients are threads (blocked
          on I/O, so concurrency may exceed the core count) and retry
          transient failures via {!Sepsat_serve.Session.with_retry} *)

type config = {
  clients : int;  (** concurrent client domains (or threads, for {!Fleet}) *)
  repeats : int;  (** workload passes per client; ≥ 2 exercises the cache *)
  bench_names : string list;  (** suite benchmarks ({!Suite.find} names) *)
  method_ : Decide.method_;
  timeout_s : float;  (** per-request wall budget *)
  workers : int;  (** engine worker domains; ignored for {!Fleet} *)
  queue_capacity : int;
  cache_capacity : int;
  target : target;
}

val default : config
(** 4 clients x 3 repeats over the Figure-2 benchmarks, hybrid method,
    2 engine workers. *)

type lat = {
  l_count : int;
  l_mean_ms : float;
  l_min_ms : float;
  l_max_ms : float;
  l_p50_ms : float;  (** {!Sepsat_obs.Window} quantiles; 0 when empty *)
  l_p90_ms : float;
  l_p99_ms : float;
}

type report = {
  r_config : config;
  r_requests : int;
  r_ok : int;
  r_busy : int;
  r_errors : int;
  r_wall_s : float;
  r_throughput_rps : float;  (** completed requests per wall second *)
  r_all : lat;  (** every successful response — the under-load quantiles *)
  r_cold : lat;  (** responses that ran the pipeline *)
  r_hit : lat;  (** responses answered from the cache *)
  r_joined : lat;  (** responses deduplicated onto an in-flight solve *)
  r_speedup : float;
      (** cold mean / hit mean — the acceptance headline; 0 when either
          bucket is empty *)
  r_mismatches : (string * string * string) list;
      (** (request id, sequential verdict, served verdict) for every
          response disagreeing with the sequential pass; must be [] *)
}

val run : config -> report
(** Builds the workload, runs the sequential reference pass, then the
    concurrent phase, then shuts the engine down. *)

val pp : Format.formatter -> report -> unit

val write_json : string -> report -> unit
(** Schema-2 throughput report (hand-rolled JSON, same policy as
    {!Runner.write_json}). Includes a perf-gate-dialect ["runs"] array —
    one entry per overall latency quantile (mean/p50/p90/p99, bench
    ["serve.loadgen"] or ["fleet.loadgen"]) — so
    [bench --compare BASELINE --compare-current THIS.json] gates the
    served latency distribution like any other benchmark. *)
