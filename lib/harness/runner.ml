module Ast = Sepsat_suf.Ast
module Suite = Sepsat_workloads.Suite
module Decide = Sepsat.Decide
module Verdict = Sepsat_sep.Verdict
module Deadline = Sepsat_util.Deadline
module Solver = Sepsat_sat.Solver
module Hybrid = Sepsat_encode.Hybrid
module Obs = Sepsat_obs.Obs
module Metrics = Sepsat_obs.Metrics

type outcome = Completed | Timed_out | Blew_up

type row = {
  bench : string;
  family : string;
  invariant_checking : bool;
  method_ : Decide.method_;
  size : int;
  sep_cnt : int;
  verdict : Verdict.t;
  outcome : outcome;
  total_time : float;
  wall_time : float;
  translate_time : float;
  sat_time : float;
  cnf_clauses : int;
  conflicts : int;
  decisions : int;
  propagations : int;
  trans_constraints : int;
  winner : Decide.method_ option;  (** portfolio runs only *)
  phase_times : (string * float) list;
  alloc_words : float;
  major_words : float;
  heap_words : int;
}

(* Every [run] appends its row here (newest first), so experiments render
   their tables as before while the bench driver exports the same
   measurements as machine-readable JSON afterwards. *)
let recorded : row list ref = ref []

let reset_recorded () = recorded := []

let recorded_rows () = List.rev !recorded

(* The separation-predicate estimate is a property of the formula, not of
   the method, so compute it through the standard pipeline. *)
let sep_count ctx formula =
  let elim = Sepsat_suf.Elim.eliminate ctx formula in
  let normalized = Sepsat_sep.Normal.normalize ctx elim.Sepsat_suf.Elim.formula in
  let classes =
    Sepsat_sep.Classes.build ~p_consts:elim.Sepsat_suf.Elim.p_consts normalized
  in
  Sepsat_sep.Classes.total_sep_cnt classes

let run ?(deadline_s = 30.) method_ (bench : Suite.benchmark) =
  let ctx = Ast.create_ctx () in
  let formula = bench.Suite.build ctx in
  let size = Ast.size formula in
  let sep_cnt = sep_count ctx formula in
  let deadline = Deadline.after deadline_s in
  (* [Gc.quick_stat] reads counters without forcing a collection, so the
     allocation/heap deltas are cheap enough to record on every row. *)
  let g0 = Gc.quick_stat () in
  let w0 = Deadline.wall_now () in
  let r =
    Obs.span ~cat:"bench"
      (Printf.sprintf "%s/%s" bench.Suite.name
         (Format.asprintf "%a" Decide.pp_method method_))
      (fun () -> Decide.decide ~method_ ~deadline ctx formula)
  in
  let w1 = Deadline.wall_now () in
  let g1 = Gc.quick_stat () in
  let alloc_words =
    g1.Gc.minor_words +. g1.Gc.major_words -. g1.Gc.promoted_words
    -. (g0.Gc.minor_words +. g0.Gc.major_words -. g0.Gc.promoted_words)
  in
  let outcome =
    match r.Decide.verdict with
    | Verdict.Valid | Verdict.Invalid _ -> Completed
    | Verdict.Unknown "translation blowup" -> Blew_up
    | Verdict.Unknown _ -> Timed_out
  in
  let row =
    {
      bench = bench.Suite.name;
      family = Suite.family_name bench.Suite.family;
      invariant_checking = bench.Suite.invariant_checking;
      method_;
      size;
      sep_cnt;
      verdict = r.Decide.verdict;
      outcome;
      total_time = r.Decide.total_time;
      wall_time = w1 -. w0;
      translate_time = r.Decide.translate_time;
      sat_time = r.Decide.sat_time;
      cnf_clauses = r.Decide.cnf_clauses;
      conflicts =
        (match r.Decide.sat_stats with
        | Some st -> st.Solver.conflicts
        | None -> 0);
      decisions =
        (match r.Decide.sat_stats with
        | Some st -> st.Solver.decisions
        | None -> 0);
      propagations =
        (match r.Decide.sat_stats with
        | Some st -> st.Solver.propagations
        | None -> 0);
      trans_constraints =
        (match r.Decide.encode_stats with
        | Some es -> es.Hybrid.trans_constraints
        | None -> 0);
      winner = r.Decide.winner;
      phase_times = r.Decide.phase_times;
      alloc_words;
      major_words = g1.Gc.major_words -. g0.Gc.major_words;
      heap_words = g1.Gc.heap_words;
    }
  in
  recorded := row :: !recorded;
  row

let penalized_time ~deadline_s row =
  match row.outcome with
  | Completed -> row.total_time
  | Timed_out | Blew_up -> deadline_s

let normalized_time ~deadline_s row =
  penalized_time ~deadline_s row /. (float_of_int (max row.size 1) /. 1000.)

(* -- Machine-readable export (hand-rolled JSON, no dependency) ------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let verdict_label = function
  | Verdict.Valid -> "valid"
  | Verdict.Invalid _ -> "invalid"
  | Verdict.Unknown _ -> "unknown"

let outcome_label = function
  | Completed -> "completed"
  | Timed_out -> "timeout"
  | Blew_up -> "blowup"

let row_to_json row =
  let method_str = Format.asprintf "%a" Decide.pp_method row.method_ in
  let winner_str =
    match row.winner with
    | Some m -> Printf.sprintf "%S" (Format.asprintf "%a" Decide.pp_method m)
    | None -> "null"
  in
  let phases_str =
    String.concat ", "
      (List.map
         (fun (name, t) -> Printf.sprintf "\"%s\": %.6f" (json_escape name) t)
         row.phase_times)
  in
  Printf.sprintf
    "{\"bench\": \"%s\", \"family\": \"%s\", \"method\": \"%s\", \"verdict\": \
     \"%s\", \"outcome\": \"%s\", \"wall_time\": %.6f, \"cpu_time\": %.6f, \
     \"translate_time\": %.6f, \"sat_time\": %.6f, \"phase_times\": {%s}, \
     \"size\": %d, \"sep_cnt\": %d, \"cnf_clauses\": %d, \"conflicts\": %d, \
     \"decisions\": %d, \"propagations\": %d, \"winner\": %s, \"gc\": \
     {\"alloc_words\": %.0f, \"major_words\": %.0f, \"heap_words\": %d}}"
    (json_escape row.bench) (json_escape row.family) (json_escape method_str)
    (verdict_label row.verdict)
    (outcome_label row.outcome)
    row.wall_time row.total_time row.translate_time row.sat_time phases_str
    row.size row.sep_cnt row.cnf_clauses row.conflicts row.decisions
    row.propagations winner_str row.alloc_words row.major_words row.heap_words

let rows_to_json rows =
  String.concat ""
    [ "[\n  "; String.concat ",\n  " (List.map row_to_json rows); "\n]" ]

(* Schema 2: the run array moved under "runs" to make room for process-wide
   GC telemetry and the observability metrics registry snapshot. *)
let report_to_json rows =
  let g = Gc.quick_stat () in
  let gc_json =
    Printf.sprintf
      "{\"minor_words\": %.0f, \"major_words\": %.0f, \"promoted_words\": \
       %.0f, \"minor_collections\": %d, \"major_collections\": %d, \
       \"heap_words\": %d, \"top_heap_words\": %d, \"compactions\": %d}"
      g.Gc.minor_words g.Gc.major_words g.Gc.promoted_words
      g.Gc.minor_collections g.Gc.major_collections g.Gc.heap_words
      g.Gc.top_heap_words g.Gc.compactions
  in
  String.concat ""
    [
      "{\n\"schema\": 2,\n\"runs\": ";
      rows_to_json rows;
      ",\n\"gc\": ";
      gc_json;
      ",\n\"metrics\": ";
      Metrics.to_json ();
      "\n}\n";
    ]

let write_json path rows =
  let oc = open_out path in
  output_string oc (report_to_json rows);
  close_out oc
