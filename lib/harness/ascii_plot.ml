type series = { label : string; glyph : char; points : (float * float) list }

(* Eight block glyphs from U+2581 to U+2588, each 3 bytes of UTF-8. *)
let spark_glyphs =
  [| "\u{2581}"; "\u{2582}"; "\u{2583}"; "\u{2584}"; "\u{2585}"; "\u{2586}";
     "\u{2587}"; "\u{2588}" |]

let sparkline ?(width = 60) values =
  let n = Array.length values in
  if n = 0 then ""
  else begin
    (* Keep the most recent [width] points — a rolling dashboard shows the
       newest history, not the oldest. *)
    let first = max 0 (n - width) in
    let shown = Array.sub values first (n - first) in
    let lo = Array.fold_left Float.min infinity shown in
    let hi = Array.fold_left Float.max neg_infinity shown in
    let span = if hi -. lo < 1e-12 then 1. else hi -. lo in
    let buf = Buffer.create (Array.length shown * 3) in
    Array.iter
      (fun v ->
        let i =
          int_of_float ((v -. lo) /. span *. 7.99)
        in
        Buffer.add_string buf spark_glyphs.(max 0 (min 7 i)))
      shown;
    Buffer.contents buf
  end

let scatter ?(width = 64) ?(height = 22) ?(diagonal = false) ~xlabel ~ylabel
    ppf series_list =
  let all_points = List.concat_map (fun s -> s.points) series_list in
  if all_points = [] then Format.fprintf ppf "(no data)@."
  else begin
    let positives =
      List.concat_map (fun (x, y) -> [ x; y ]) all_points
      |> List.filter (fun v -> v > 0.)
    in
    let min_pos = List.fold_left min infinity (1.0 :: positives) in
    let clamp v = if v > 0. then v else min_pos in
    let lo = ref infinity and hi = ref neg_infinity in
    List.iter
      (fun (x, y) ->
        lo := min !lo (min (clamp x) (clamp y));
        hi := max !hi (max (clamp x) (clamp y)))
      all_points;
    let lo = log10 !lo and hi = log10 (max (!lo *. 1.001) !hi) in
    let span = if hi -. lo < 1e-9 then 1. else hi -. lo in
    let grid = Array.make_matrix height width ' ' in
    let place x y glyph =
      let gx =
        int_of_float ((log10 (clamp x) -. lo) /. span *. float_of_int (width - 1))
      in
      let gy =
        int_of_float ((log10 (clamp y) -. lo) /. span *. float_of_int (height - 1))
      in
      let gx = max 0 (min (width - 1) gx) in
      let gy = height - 1 - max 0 (min (height - 1) gy) in
      grid.(gy).(gx) <- glyph
    in
    if diagonal then
      for i = 0 to width - 1 do
        let v = lo +. (float_of_int i /. float_of_int (width - 1) *. span) in
        let v = 10. ** v in
        place v v '.'
      done;
    List.iter
      (fun s -> List.iter (fun (x, y) -> place x y s.glyph) s.points)
      series_list;
    Format.fprintf ppf "  %s (log scale)@." ylabel;
    Array.iter
      (fun line ->
        Format.fprintf ppf "  |%s|@." (String.init width (Array.get line)))
      grid;
    Format.fprintf ppf "  +%s+@." (String.make width '-');
    Format.fprintf ppf "   %s (log scale)   " xlabel;
    List.iter
      (fun s -> Format.fprintf ppf "[%c = %s] " s.glyph s.label)
      series_list;
    Format.fprintf ppf "@."
  end
