module Suite = Sepsat_workloads.Suite
module Decide = Sepsat.Decide
module Verdict = Sepsat_sep.Verdict

let default_deadline = 30.

let pp_time ppf (row : Runner.row) =
  match row.Runner.outcome with
  | Runner.Completed -> Format.fprintf ppf "%8.2f" row.Runner.total_time
  | Runner.Timed_out -> Format.fprintf ppf "%8s" "t/o"
  | Runner.Blew_up -> Format.fprintf ppf "%8s" "blowup"

let pp_verdict_short ppf (row : Runner.row) =
  match row.Runner.verdict with
  | Verdict.Valid -> Format.pp_print_string ppf "valid"
  | Verdict.Invalid _ -> Format.pp_print_string ppf "INVALID"
  | Verdict.Unknown _ -> Format.pp_print_string ppf "?"

(* -- Figure 2 ------------------------------------------------------------ *)

let figure2_benchmarks = [ "pipe.3"; "pipe.5"; "cache.5"; "cache.6"; "tv.1" ]

let figure2 ?(deadline_s = default_deadline) ppf =
  Format.fprintf ppf
    "== Figure 2: effect of encoding on the SAT solver (SD vs EIJ) ==@.";
  Format.fprintf ppf "%-10s %12s %12s %12s %12s %10s %10s@." "Benchmark"
    "CNF(SD)" "CNF(EIJ)" "Confl(SD)" "Confl(EIJ)" "SAT(SD)" "SAT(EIJ)";
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> ()
      | Some bench ->
        let sd = Runner.run ~deadline_s Decide.Sd bench in
        let eij = Runner.run ~deadline_s Decide.Eij bench in
        Format.fprintf ppf "%-10s %12d %12d %12d %12d %9.2fs %9.2fs@." name
          sd.Runner.cnf_clauses eij.Runner.cnf_clauses sd.Runner.conflicts
          eij.Runner.conflicts sd.Runner.sat_time eij.Runner.sat_time)
    figure2_benchmarks;
  Format.fprintf ppf
    "(expected shape: EIJ has more CNF clauses but fewer conflict clauses@.\
    \ and lower SAT time than SD on each benchmark)@.@."

(* -- Figure 3 ------------------------------------------------------------ *)

let sample_rows ?(deadline_s = default_deadline) method_ =
  List.map (fun bench -> Runner.run ~deadline_s method_ bench) Suite.sample16

let figure3 ?(deadline_s = default_deadline) ppf =
  Format.fprintf ppf
    "== Figure 3: normalized time vs number of separation predicates ==@.";
  let sd = sample_rows ~deadline_s Decide.Sd in
  let eij = sample_rows ~deadline_s Decide.Eij in
  Format.fprintf ppf "%-10s %10s %14s %14s %8s@." "Benchmark" "SepPreds"
    "SD(s/Knode)" "EIJ(s/Knode)" "EIJ";
  let sorted = List.sort (fun a b -> compare a.Runner.sep_cnt b.Runner.sep_cnt) sd in
  List.iter
    (fun (sdr : Runner.row) ->
      let eijr = List.find (fun r -> r.Runner.bench = sdr.Runner.bench) eij in
      Format.fprintf ppf "%-10s %10d %14.3f %14.3f %8s@." sdr.Runner.bench
        sdr.Runner.sep_cnt
        (Runner.normalized_time ~deadline_s sdr)
        (Runner.normalized_time ~deadline_s eijr)
        (match eijr.Runner.outcome with
        | Runner.Completed -> "ok"
        | Runner.Timed_out -> "t/o"
        | Runner.Blew_up -> "blowup"))
    sorted;
  let series m rows =
    {
      Ascii_plot.label = m;
      glyph = (if m = "SD" then 'o' else '+');
      points =
        List.map
          (fun (r : Runner.row) ->
            ( float_of_int (max 1 r.Runner.sep_cnt),
              Runner.normalized_time ~deadline_s r ))
          rows;
    }
  in
  Ascii_plot.scatter ~diagonal:false ~xlabel:"separation predicates"
    ~ylabel:"normalized total time (s/Knode)" ppf
    [ series "SD" sd; series "EIJ" eij ];
  Format.fprintf ppf
    "(expected shape: EIJ grows with the predicate count and fails beyond@.\
    \ a threshold; SD stays bounded)@.@."

(* -- SEP_THOLD selection (paper 4.1) -------------------------------------- *)

let threshold_selection ?(deadline_s = default_deadline) ppf =
  Format.fprintf ppf "== SEP_THOLD selection by 1-D variance clustering ==@.";
  let eij = sample_rows ~deadline_s Decide.Eij in
  let samples =
    List.map
      (fun (r : Runner.row) ->
        (r.Runner.sep_cnt, Runner.normalized_time ~deadline_s r))
      eij
  in
  let threshold = Cluster.select_threshold samples in
  let sorted = List.sort (fun (_, a) (_, b) -> compare a b) samples in
  Format.fprintf ppf "sorted (sep predicates, normalized time):@.";
  List.iter (fun (n, t) -> Format.fprintf ppf "  %6d %10.3f@." n t) sorted;
  Format.fprintf ppf "selected SEP_THOLD = %d (paper: 700)@.@." threshold;
  threshold

(* -- Scatter comparisons (Figures 4-6) ------------------------------------ *)

let comparison ~title ~benchmarks ~base_method ~base_name ~others ~deadline_s
    ppf =
  Format.fprintf ppf "== %s ==@." title;
  let base = List.map (fun b -> Runner.run ~deadline_s base_method b) benchmarks in
  let other_rows =
    List.map
      (fun (name, m) ->
        (name, List.map (fun b -> Runner.run ~deadline_s m b) benchmarks))
      others
  in
  Format.fprintf ppf "%-10s %6s %8s %9s" "Benchmark" "size" "verdict" base_name;
  List.iter (fun (name, _) -> Format.fprintf ppf " %9s" name) other_rows;
  Format.fprintf ppf "@.";
  List.iteri
    (fun i (b : Runner.row) ->
      let verdict = Format.asprintf "%a" pp_verdict_short b in
      Format.fprintf ppf "%-10s %6d %8s %a" b.Runner.bench b.Runner.size
        verdict pp_time b;
      List.iter
        (fun (_, rows) -> Format.fprintf ppf " %a" pp_time (List.nth rows i))
        other_rows;
      Format.fprintf ppf "@.")
    base;
  let glyphs = [ '+'; 'o'; 'x' ] in
  let series =
    List.mapi
      (fun i (name, rows) ->
        {
          Ascii_plot.label = name;
          glyph = List.nth glyphs (i mod List.length glyphs);
          points =
            List.map2
              (fun (b : Runner.row) (r : Runner.row) ->
                ( Runner.penalized_time ~deadline_s b,
                  Runner.penalized_time ~deadline_s r ))
              base rows;
        })
      other_rows
  in
  Ascii_plot.scatter ~diagonal:true
    ~xlabel:(Printf.sprintf "total time for %s (s)" base_name)
    ~ylabel:"total time for competitor (s)" ppf series;
  Format.fprintf ppf
    "(points above the diagonal: %s wins; below: the competitor wins)@.@."
    base_name

let figure4 ?(deadline_s = default_deadline) ppf =
  comparison
    ~title:
      "Figure 4: HYBRID vs SD and EIJ (39 non-invariant benchmarks, default \
       SEP_THOLD)"
    ~benchmarks:Suite.non_invariant ~base_method:Decide.Hybrid_default
    ~base_name:"HYBRID"
    ~others:
      [ ("SD", Decide.Sd); ("EIJ", Decide.Eij); ("PORTFOLIO", Decide.Portfolio) ]
    ~deadline_s ppf

let portfolio_benchmarks =
  [ "pipe.3"; "pipe.5"; "lsu.3"; "cache.5"; "tv.2"; "ooo.1" ]

let figure_portfolio ?(deadline_s = default_deadline) ppf =
  let already = List.length (Runner.recorded_rows ()) in
  comparison
    ~title:
      "Portfolio: first-verdict-wins race vs its members (wall-clock; the \
       portfolio should track the best column)"
    ~benchmarks:
      (List.filter_map Suite.find portfolio_benchmarks)
    ~base_method:Decide.Portfolio ~base_name:"PORTFOLIO"
    ~others:
      [
        ("SD", Decide.Sd);
        ("EIJ", Decide.Eij);
        ("HYBRID", Decide.Hybrid_default);
      ]
    ~deadline_s ppf;
  (* The race reports which member crossed the line first. *)
  List.iteri
    (fun i (r : Runner.row) ->
      match (r.Runner.method_, r.Runner.winner) with
      | Decide.Portfolio, Some w when i >= already ->
        Format.fprintf ppf "%-10s winner: %a (%.2fs wall)@." r.Runner.bench
          Decide.pp_method w r.Runner.wall_time
      | _ -> ())
    (Runner.recorded_rows ());
  Format.fprintf ppf "@."

let parallel_benchmarks =
  [
    "pipe.3"; "pipe.5"; "cache.5"; "lsu.3"; "tv.1";
    (* the multi-component instances carrying the speedup claim *)
    "batch.1"; "batch.3"; "batch.4";
  ]

let figure_parallel ?(deadline_s = default_deadline) ppf =
  comparison
    ~title:
      "Structure-parallel: sequential HYBRID vs COMPONENTS and CUBE \
       (wall-clock; multi-component benchmarks should sit below the \
       diagonal in the COMPONENTS column)"
    ~benchmarks:(List.filter_map Suite.find parallel_benchmarks)
    ~base_method:Decide.Hybrid_default ~base_name:"HYBRID"
    ~others:
      [ ("COMPONENTS", Decide.Components); ("CUBE", Decide.Cube_and_conquer) ]
    ~deadline_s ppf

let figure5 ?(deadline_s = default_deadline) ppf =
  comparison
    ~title:
      "Figure 5: HYBRID(SEP_THOLD=100) vs SD and EIJ (10 invariant-checking \
       benchmarks)"
    ~benchmarks:Suite.invariant_checking ~base_method:(Decide.Hybrid_at 100)
    ~base_name:"HYBRID"
    ~others:[ ("SD", Decide.Sd); ("EIJ", Decide.Eij) ]
    ~deadline_s ppf

let figure6 ?(deadline_s = default_deadline) ppf =
  comparison
    ~title:"Figure 6: HYBRID vs SVC and CVC-style lazy (39 non-invariant)"
    ~benchmarks:Suite.non_invariant ~base_method:Decide.Hybrid_default
    ~base_name:"HYBRID"
    ~others:[ ("SVC", Decide.Svc_baseline); ("LAZY", Decide.Lazy_baseline) ]
    ~deadline_s ppf

(* -- Ablations ------------------------------------------------------------ *)

let ablation_threshold ?(deadline_s = default_deadline) ppf =
  Format.fprintf ppf
    "== Ablation: HYBRID search time across the SEP_THOLD sweep ==@.";
  Format.fprintf ppf
    "(one incremental SAT solver per benchmark; thresholds are assumption@.\
    \ vectors over the selector-literal encoding)@.";
  let thresholds = Decide.default_sweep_thresholds in
  let thold_label t = if t = max_int then "inf" else string_of_int t in
  Format.fprintf ppf "%-10s" "Benchmark";
  List.iter (fun t -> Format.fprintf ppf " %8s" (thold_label t)) thresholds;
  Format.fprintf ppf " %8s@." "solvers";
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> ()
      | Some bench ->
        let ctx = Sepsat_suf.Ast.create_ctx () in
        let formula = bench.Sepsat_workloads.Suite.build ctx in
        let sweep =
          Decide.decide_sweep ~thresholds
            ~deadline:(Sepsat_util.Deadline.after deadline_s)
            ctx formula
        in
        Format.fprintf ppf "%-10s" name;
        List.iter
          (fun (p : Decide.sweep_point) ->
            match p.Decide.sw_verdict with
            | Verdict.Unknown _ -> Format.fprintf ppf " %8s" "t/o"
            | Verdict.Valid | Verdict.Invalid _ ->
              Format.fprintf ppf " %8.2f" p.Decide.sw_time)
          sweep.Decide.points;
        Format.fprintf ppf " %8d@." sweep.Decide.solver_creates)
    [ "pipe.4"; "lsu.4"; "cache.5"; "tv.2"; "drv.4"; "ooo.1" ];
  Format.fprintf ppf
    "(SEP_THOLD = 0 is pure SD, SEP_THOLD = inf is pure EIJ; the default@.\
    \ sits where neither extreme dominates; solvers = SAT solver instances@.\
    \ created for the whole sweep — 1 on the incremental path)@.@."

let ablation_positive_equality ?(deadline_s = default_deadline) ppf =
  Format.fprintf ppf
    "== Ablation: positive-equality analysis on vs off ==@.";
  Format.fprintf ppf "%-10s %10s %12s %12s %10s %10s@." "Benchmark" "p-consts"
    "size(on)" "size(off)" "time(on)" "time(off)";
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> ()
      | Some bench ->
        let measure ~use_p =
          let ctx = Sepsat_suf.Ast.create_ctx () in
          let f = bench.Suite.build ctx in
          let t0 = Sepsat_util.Deadline.now () in
          let elim = Sepsat_suf.Elim.eliminate ctx f in
          let p_consts =
            if use_p then elim.Sepsat_suf.Elim.p_consts
            else Sepsat_util.Sset.empty
          in
          let enc =
            Sepsat_encode.Hybrid.encode ctx ~p_consts
              elim.Sepsat_suf.Elim.formula
          in
          let solver = Sepsat_sat.Solver.create () in
          let ts = Sepsat_prop.Tseitin.create solver in
          Sepsat_prop.Tseitin.assert_root ts
            (Sepsat_prop.Formula.not_ enc.Sepsat_encode.Hybrid.prop_ctx
               enc.Sepsat_encode.Hybrid.f_bool);
          let outcome =
            Sepsat_sat.Solver.solve
              ~deadline:(Sepsat_util.Deadline.after deadline_s)
              solver
          in
          let t1 = Sepsat_util.Deadline.now () in
          ( Sepsat_util.Sset.cardinal elim.Sepsat_suf.Elim.p_consts,
            enc.Sepsat_encode.Hybrid.stats.Sepsat_encode.Hybrid.bool_size,
            (t1 -. t0, outcome = Sepsat_sat.Solver.Unknown) )
        in
        match (measure ~use_p:true, measure ~use_p:false) with
        | ( (p_count, size_on, (time_on, tmo_on)),
            (_, size_off, (time_off, tmo_off)) ) ->
          let cell (t, tmo) =
            if tmo then "t/o" else Printf.sprintf "%.2f" t
          in
          Format.fprintf ppf "%-10s %10d %12d %12d %10s %10s@." name p_count
            size_on size_off
            (cell (time_on, tmo_on))
            (cell (time_off, tmo_off))
        | exception Sepsat_encode.Hybrid.Translation_blowup ->
          Format.fprintf ppf "%-10s %10s@." name "blowup")
    [ "pipe.3"; "pipe.5"; "lsu.3"; "cache.4"; "tv.2" ];
  Format.fprintf ppf
    "(positive equality folds p-constant comparisons to constants: smaller@.\
    \ encodings and faster search where p-fractions are high)@.@."

let all ?(deadline_s = default_deadline) ppf =
  figure2 ~deadline_s ppf;
  figure3 ~deadline_s ppf;
  ignore (threshold_selection ~deadline_s ppf);
  figure4 ~deadline_s ppf;
  figure5 ~deadline_s ppf;
  figure6 ~deadline_s ppf;
  figure_portfolio ~deadline_s ppf;
  figure_parallel ~deadline_s ppf;
  ablation_threshold ~deadline_s ppf;
  ablation_positive_equality ~deadline_s ppf
