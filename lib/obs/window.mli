(** Sliding-window quantile estimator over the last [capacity]
    observations.

    Lifetime histograms answer "how has this process behaved since start";
    operators watching a service need "how is it behaving {e now}". This is
    the rolling complement: a fixed-size ring of the most recent
    observations with exact quantiles over that window. Domain-safe (one
    mutex); adds are O(1), quantile reads sort a snapshot and are meant for
    stats replies and scrapes, not hot paths. *)

type t

val create : ?capacity:int -> unit -> t
(** Ring size in observations, default 512. Values beyond capacity
    overwrite the oldest. *)

val capacity : t -> int

val add : ?rid:string -> t -> float -> unit
(** [add ?rid t v] appends one observation, optionally labelled with the
    request id that produced it (consumed by {!exemplar}). *)

val length : t -> int
(** Observations currently in the window ([min total capacity]). *)

val total : t -> int
(** Observations ever added (monotone; survives ring wrap-around). *)

val clear : t -> unit

val snapshot : t -> float array
(** The window's current contents, in no particular order. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [[0,1]] (clamped), linearly interpolated
    between closest ranks of the sorted window. [0.] on an empty window —
    callers that must distinguish "no data" check {!length} first. *)

val quantiles : t -> float list -> float list
(** Like {!quantile} for several ranks over one snapshot (one sort). *)

val exemplar : t -> float -> (float * string) option
(** [exemplar t q] is the [(value, rid)] of the observation at [q]'s upper
    closest rank — an actual request, not an interpolation, so "p99 is
    41ms" comes with the rid of a request that took about that long. [None]
    on an empty window; the rid is [""] when the observation was added
    without one. *)
