(* Off-by-default tracing with per-domain ring buffers.

   Hot-path discipline: every public emission function first loads one
   atomic ([enabled_]) and returns when unset — instrumented code pays a
   load and a branch, nothing else. When enabled, the emitting domain owns
   its ring buffer (reached through domain-local storage), so pushes are
   plain mutations with no synchronization; only ring *registration* (once
   per domain per generation) takes the global mutex. Readers merge the
   rings after the writers have quiesced. *)

type event =
  | Span of {
      name : string;
      cat : string;
      ts : float;
      dur : float;
      tid : int;
      rid : string;  (* ambient request id at capture; "" outside requests *)
    }
  | Instant of {
      name : string;
      cat : string;
      ts : float;
      tid : int;
      rid : string;
    }
  | Sample of { name : string; ts : float; value : float; tid : int }

let event_ts = function
  | Span { ts; _ } | Instant { ts; _ } | Sample { ts; _ } -> ts

let event_tid = function
  | Span { tid; _ } | Instant { tid; _ } | Sample { tid; _ } -> tid

let dummy_event = Instant { name = ""; cat = ""; ts = 0.; tid = 0; rid = "" }

type ring = {
  r_tid : int;
  r_gen : int;
  data : event array;
  mutable count : int;  (* total pushes; the ring holds the last [cap] *)
  mutable last : float;  (* monotone clamp for this domain's captures *)
}

let enabled_ = Atomic.make false

let capacity_ = Atomic.make 65536

let generation = Atomic.make 0

let registry : ring list ref = ref []

let registry_mu = Mutex.create ()

let names : (int * string) list ref = ref []

let names_mu = Mutex.create ()

let enabled () = Atomic.get enabled_

let fresh_ring () =
  let r =
    {
      r_tid = (Domain.self () :> int);
      r_gen = Atomic.get generation;
      data = Array.make (max 16 (Atomic.get capacity_)) dummy_event;
      count = 0;
      last = 0.;
    }
  in
  Mutex.protect registry_mu (fun () -> registry := r :: !registry);
  r

let key = Domain.DLS.new_key fresh_ring

(* A reset bumps the generation; stale domain-local rings (already dropped
   from the registry) are replaced on next use. *)
let ring () =
  let r = Domain.DLS.get key in
  if r.r_gen = Atomic.get generation then r
  else begin
    let r = fresh_ring () in
    Domain.DLS.set key r;
    r
  end

(* Wall clock filtered to be non-decreasing per domain, so capture order is
   timestamp order even across system clock steps — the invariant that makes
   span sets well-nested by construction. *)
let mono_now r =
  let t = Unix.gettimeofday () in
  if t > r.last then r.last <- t;
  r.last

let push r e =
  let cap = Array.length r.data in
  r.data.(r.count mod cap) <- e;
  r.count <- r.count + 1

let enable ?(capacity = 65536) () =
  Atomic.set capacity_ capacity;
  Atomic.set enabled_ true

let disable () = Atomic.set enabled_ false

let reset () =
  Mutex.protect registry_mu (fun () -> registry := []);
  Mutex.protect names_mu (fun () -> names := []);
  Atomic.incr generation

(* -- Levels -------------------------------------------------------------- *)

type level = Quiet | Info | Debug

let rank = function Quiet -> 0 | Info -> 1 | Debug -> 2

let level_ = Atomic.make Quiet

let set_level l = Atomic.set level_ l

let get_level () = Atomic.get level_

let level_of_string = function
  | "quiet" -> Some Quiet
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let log lvl fmt =
  if rank lvl <= rank (Atomic.get level_) && lvl <> Quiet then
    Printf.eprintf (fmt ^^ "\n%!")
  else Printf.ifprintf stderr (fmt ^^ "\n%!")

(* -- Emission ------------------------------------------------------------ *)

(* Spans feed two collectors: the full-fidelity trace ring when tracing is
   enabled, and the bounded flight recorder when that is enabled (servers
   keep it always-on). Both share the Trace_ctx span path, so a flight
   record knows where in the request tree it completed. Idle cost with both
   collectors off is two atomic loads and a branch. *)

let flight_span ~rid ~cat name dur =
  if Flight.enabled () then begin
    let path = Trace_ctx.path_string () in
    let data = if cat = "" then [] else [ ("cat", cat) ] in
    let data = if path = "" || path = name then data else ("path", path) :: data in
    Flight.record ~rid ~dur_ms:(dur *. 1000.) ~data Flight.Span name
  end

let span ?(cat = "") name f =
  let obs_on = Atomic.get enabled_ in
  if not (obs_on || Flight.enabled ()) then f ()
  else begin
    let rid = Trace_ctx.rid () in
    Trace_ctx.push name;
    let t0 = if obs_on then mono_now (ring ()) else Unix.gettimeofday () in
    let finish () =
      (* Re-fetch: a reset during [f] swapped the ring underneath us. *)
      let t1 = if obs_on then mono_now (ring ()) else Unix.gettimeofday () in
      let dur = Float.max 0. (t1 -. t0) in
      if obs_on then begin
        let r = ring () in
        push r (Span { name; cat; ts = t0; dur; tid = r.r_tid; rid })
      end;
      flight_span ~rid ~cat name dur;
      Trace_ctx.pop ()
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let timed ?(cat = "") name f =
  let obs_on = Atomic.get enabled_ in
  if not (obs_on || Flight.enabled ()) then begin
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Float.max 0. (Unix.gettimeofday () -. t0))
  end
  else begin
    let rid = Trace_ctx.rid () in
    Trace_ctx.push name;
    let t0 = if obs_on then mono_now (ring ()) else Unix.gettimeofday () in
    let finish () =
      let t1 = if obs_on then mono_now (ring ()) else Unix.gettimeofday () in
      let dur = Float.max 0. (t1 -. t0) in
      if obs_on then begin
        let r = ring () in
        push r (Span { name; cat; ts = t0; dur; tid = r.r_tid; rid })
      end;
      flight_span ~rid ~cat name dur;
      Trace_ctx.pop ();
      dur
    in
    match f () with
    | v -> (v, finish ())
    | exception e ->
      ignore (finish ());
      raise e
  end

let instant ?(cat = "") name =
  let obs_on = Atomic.get enabled_ in
  if obs_on || Flight.enabled () then begin
    let rid = Trace_ctx.rid () in
    if obs_on then begin
      let r = ring () in
      push r (Instant { name; cat; ts = mono_now r; tid = r.r_tid; rid })
    end;
    if Flight.enabled () then
      Flight.record ~rid
        ~data:(if cat = "" then [] else [ ("cat", cat) ])
        Flight.Event name
  end

let sample name value =
  if Atomic.get enabled_ then begin
    let r = ring () in
    push r (Sample { name; ts = mono_now r; value; tid = r.r_tid })
  end

(* -- Thread naming ------------------------------------------------------- *)

(* Unconditional (no [enabled_] gate): lane names are consumed by the
   flight recorder, the engine's live lane table and exported traces alike,
   and pools name their workers once per spawn — off the hot path. *)
let name_thread name =
  let tid = (Domain.self () :> int) in
  Mutex.protect names_mu (fun () ->
      names := (tid, name) :: List.remove_assoc tid !names)

let thread_names () =
  Mutex.protect names_mu (fun () -> List.sort compare !names)

(* -- Collection ---------------------------------------------------------- *)

let ring_events r =
  let cap = Array.length r.data in
  let n = min r.count cap in
  let first = if r.count <= cap then 0 else r.count mod cap in
  List.init n (fun i -> r.data.((first + i) mod cap))

let events () =
  let rings = Mutex.protect registry_mu (fun () -> !registry) in
  List.concat_map ring_events rings
  |> List.stable_sort (fun a b ->
         match Float.compare (event_ts a) (event_ts b) with
         | 0 -> compare (event_tid a) (event_tid b)
         | c -> c)

let dropped () =
  let rings = Mutex.protect registry_mu (fun () -> !registry) in
  List.fold_left
    (fun acc r -> acc + max 0 (r.count - Array.length r.data))
    0 rings

(* -- Span rollup --------------------------------------------------------- *)

type span_stat = {
  ss_name : string;
  ss_count : int;
  ss_total : float;
  ss_max : float;
}

let span_summary evs =
  let tbl : (string, span_stat ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (function
      | Span { name; dur; _ } -> (
        match Hashtbl.find_opt tbl name with
        | Some s ->
          s :=
            {
              !s with
              ss_count = !s.ss_count + 1;
              ss_total = !s.ss_total +. dur;
              ss_max = Float.max !s.ss_max dur;
            }
        | None ->
          Hashtbl.add tbl name
            (ref { ss_name = name; ss_count = 1; ss_total = dur; ss_max = dur }))
      | Instant _ | Sample _ -> ())
    evs;
  Hashtbl.fold (fun _ s acc -> !s :: acc) tbl []
  |> List.sort (fun a b -> Float.compare b.ss_total a.ss_total)

let pp_summary ppf evs =
  let stats = span_summary evs in
  Format.fprintf ppf "%-24s %8s %12s %12s %12s@." "span" "count" "total(s)"
    "mean(s)" "max(s)";
  List.iter
    (fun s ->
      Format.fprintf ppf "%-24s %8d %12.4f %12.4f %12.4f@." s.ss_name
        s.ss_count s.ss_total
        (s.ss_total /. float_of_int (max 1 s.ss_count))
        s.ss_max)
    stats
