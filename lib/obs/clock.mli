(** Process-global monotone clock derived from the wall clock.

    The repo has no monotonic-clock dependency, so this module clamps
    [Unix.gettimeofday] to be non-decreasing process-wide (one atomic
    CAS-max). Differences of {!mono_now} readings taken in the same
    process are valid durations even across a backwards wall-clock step.
    Raw mono readings are {e not} comparable across processes — use a
    {!pair} captured in each process to align timelines. *)

val mono_now : unit -> float
(** Seconds, non-decreasing for the lifetime of the process. Starts on
    the wall timeline and stays there unless the wall clock steps back. *)

val pair : unit -> float * float
(** [(wall, mono)] sampled from one wall reading, so the pair pins this
    process's mono timeline to the shared wall timeline at one instant.
    Flight-dump headers carry one; {!Flight.assemble} aligns with it. *)
