(** Leveled JSON-lines structured logger with request-correlation ids.

    {!Obs.log} prints lines for humans; this module prints lines for
    machines: one JSON object per line with a timestamp, level, event name
    and typed fields, so one [grep] on a correlation id reconstructs a
    request's full path through the server and [jq] can aggregate the rest.

    Concurrency: each domain formats into a domain-local buffer, then the
    completed line is handed to the sink under a single mutex — concurrent
    worker domains never interleave mid-line. Exception safety: the domain
    buffer is cleared whether formatting or the sink raises, so a failing
    sink cannot corrupt subsequent lines. Off by default; a disabled
    {!event} costs one atomic load and a branch. *)

type value = S of string | I of int | F of float | B of bool
(** Field values. Non-finite floats render as [null] (strict JSON). *)

type field = string * value

val enable : ?level:Obs.level -> ?sink:(string -> unit) -> unit -> unit
(** Start emitting. [level] (default [Info]) is the threshold: events above
    it are dropped. [sink] receives one complete line (no newline) per
    event, serialized under the module's mutex; default writes to stderr.
    The sink should not call back into [Log]. *)

val disable : unit -> unit

val enabled : unit -> bool

val set_level : Obs.level -> unit

val event : ?level:Obs.level -> string -> field list -> unit
(** [event name fields] emits one line
    [{"ts":…, "level":…, "event":name, …fields, …ambient}]. Ambient
    context fields (see {!with_fields}) are appended unless shadowed by an
    explicit field of the same key. [~level:Quiet] events are never
    emitted. When the {!Flight} recorder is on, every non-Quiet event is
    also recorded there (regardless of {!enabled} and the level
    threshold), filed under the explicit or ambient ["rid"] field. *)

val with_fields : field list -> (unit -> 'a) -> 'a
(** Push ambient fields for the calling domain for the duration of the
    callback (restored on return {e and} on exception). Nested calls
    accumulate. This is how a correlation id threads through a request's
    whole path without plumbing it into every call site. *)

val current_fields : unit -> field list
(** The calling domain's ambient fields, outermost first. *)

val mint : string -> string
(** [mint "rq"] returns ["rq-1"], ["rq-2"], … — process-globally unique
    correlation ids, cheap enough to mint per request. *)
