(* Prometheus text-format exposition (format version 0.0.4) over the
   Metrics registry. Zero dependencies: the format is line-oriented ASCII
   and the registry snapshot already carries everything a scrape needs.

   Mapping choices:
   - Registry names use dots ("serve.request_s"); Prometheus names must
     match [a-zA-Z_:][a-zA-Z0-9_:]*, so every invalid byte becomes '_' and
     a leading digit gets a '_' prefix. The original name is preserved in
     the HELP line so a dashboard author can trace a series back.
   - Histograms are exported the Prometheus way: cumulative
     [name_bucket{le="ub"}] series ending at le="+Inf", plus [name_sum]
     and [name_count]. The registry stores per-bin (non-cumulative)
     counts; the running total is accumulated here, which also guarantees
     the +Inf bucket equals _count by construction.
   - Collisions after sanitization ("a.b" and "a_b") are rendered under
     one name with distinct HELP lines; Prometheus tolerates this and the
     registry has no such pairs in practice. *)

let is_valid_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let sanitize_name name =
  let s = String.map (fun c -> if is_valid_char c then c else '_') name in
  if s = "" then "_"
  else if s.[0] >= '0' && s.[0] <= '9' then "_" ^ s
  else s

(* Label values escape backslash, double-quote and newline. *)
let escape_label s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* HELP text escapes backslash and newline only (quotes are legal there). *)
let escape_help s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Constant labels stamped on every sample line — how each member of a
   fleet marks its series ([backend="2"]) so the router can concatenate
   expositions without collisions. Empty (the default) renders exactly the
   historical unlabelled format. *)
let const_labels = ref []

let set_const_labels l = const_labels := l

let const_label k = List.assoc_opt k !const_labels

let label_str () =
  String.concat ","
    (List.map
       (fun (k, v) ->
         Printf.sprintf "%s=\"%s\"" (sanitize_name k) (escape_label v))
       !const_labels)

let number f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let render metrics =
  let buf = Buffer.create 1024 in
  let lbl = match label_str () with "" -> "" | s -> "{" ^ s ^ "}" in
  let le_prefix = match label_str () with "" -> "" | s -> s ^ "," in
  List.iter
    (fun (orig, v) ->
      let name = sanitize_name orig in
      let help () =
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s sepsat metric %s\n" name
             (escape_help orig))
      in
      match v with
      | Metrics.Counter n ->
        help ();
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" name);
        Buffer.add_string buf (Printf.sprintf "%s%s %d\n" name lbl n)
      | Metrics.Gauge f ->
        help ();
        Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" name);
        Buffer.add_string buf (Printf.sprintf "%s%s %s\n" name lbl (number f))
      | Metrics.Histogram { count; sum; buckets; exemplars } ->
        help ();
        Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
        (* OpenMetrics exemplar suffix on the bucket the observation fell
           into: `… # {rid="rq-17"} 0.043 1691500000.123`. Plain Prometheus
           text parsers ignore everything after '#'; OpenMetrics scrapers
           surface the rid next to the bucket. *)
        let exemplar_suffix ub =
          match List.find_opt (fun (b, _) -> b = ub) exemplars with
          | None -> ""
          | Some (_, e) ->
            Printf.sprintf " # {rid=\"%s\"} %s %.3f"
              (escape_label e.Metrics.ex_rid)
              (number e.Metrics.ex_value)
              e.Metrics.ex_ts
        in
        let cum = ref 0 in
        List.iter
          (fun (ub, n) ->
            cum := !cum + n;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{%sle=\"%s\"} %d%s\n" name le_prefix
                 (escape_label (number ub))
                 !cum (exemplar_suffix ub)))
          buckets;
        (* The registry's bucket list ends with the +inf bin, so the last
           cumulative value equals [count]; emit an explicit +Inf series
           anyway if the list was empty or ended on a finite bound. *)
        (match List.rev buckets with
        | (ub, _) :: _ when ub = Float.infinity -> ()
        | _ ->
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{%sle=\"+Inf\"} %d\n" name le_prefix
               count));
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" name lbl (number sum));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" name lbl count))
    metrics;
  Buffer.contents buf

let content_type = "text/plain; version=0.0.4"

let current () = render (Metrics.snapshot ())
