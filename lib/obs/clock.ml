(* Process-global monotone clock, derived from the wall clock.

   The toolchain ships no monotonic-clock binding (no mtime, no ptime),
   so we make our own guarantee: [mono_now] is [Unix.gettimeofday]
   clamped to be non-decreasing across the whole process via a CAS-max
   on one atomic. Within one process, differences of [mono_now] readings
   are valid durations even if NTP steps the wall clock backwards —
   time stands still through the step instead of going negative.

   Cross-process alignment is the reason [pair] exists: both clocks are
   sampled from the *same* wall reading, so a (wall, mono) pair pins the
   process's mono timeline to the shared wall timeline at one instant.
   A flight-dump header carries such a pair; the assembler maps any
   record's mono stamp to an absolute time as
   [wall_at_dump -. (mono_at_dump -. record_mono)], which never compares
   raw wall readings from two processes. *)

let last = Atomic.make 0.

let rec clamp w =
  let prev = Atomic.get last in
  if w <= prev then prev
  else if Atomic.compare_and_set last prev w then w
  else clamp w

let mono_now () = clamp (Unix.gettimeofday ())

let pair () =
  let w = Unix.gettimeofday () in
  (w, clamp w)
