(* Leveled JSON-lines structured logger with request correlation.

   Obs.log prints human lines; this module prints machine lines — one JSON
   object per line, so `grep rq-17 server.log` reconstructs a request's
   whole path (request → shed/hit/solve/deadline → reply) and `jq` can
   aggregate. Design points:

   - Per-domain buffering: each domain formats its line into a
     domain-local Buffer, then hands the *complete* line to the sink under
     one mutex. Lines from concurrent worker domains never interleave
     mid-line, and formatting itself takes no lock.
   - Exception safety: the domain buffer is cleared on every path
     (Fun.protect), so a sink that raises — a closed log file, a full pipe
     — cannot leave half a line to corrupt the next event, and the
     exception propagates to the caller.
   - Ambient context: [with_fields] pushes key/values (typically the
     correlation id) onto a domain-local stack; every event emitted inside
     carries them. That is how one rid threads through the engine's
     parse/cache/solve path without plumbing it into each call. *)

type value = S of string | I of int | F of float | B of bool

type field = string * value

let enabled_ = Atomic.make false

let level_ = Atomic.make Obs.Info

let rank = function Obs.Quiet -> 0 | Obs.Info -> 1 | Obs.Debug -> 2

let sink_mu = Mutex.create ()

let default_sink line =
  output_string stderr line;
  output_char stderr '\n';
  flush stderr

let sink = ref default_sink

let enable ?(level = Obs.Info) ?sink:(s = default_sink) () =
  Mutex.protect sink_mu (fun () -> sink := s);
  Atomic.set level_ level;
  Atomic.set enabled_ true

let disable () = Atomic.set enabled_ false

let enabled () = Atomic.get enabled_

let set_level l = Atomic.set level_ l

(* Correlation ids: a process-global counter, so every minted id is unique
   within one server's log stream and cheap enough to mint per request. *)
let mint_counter = Atomic.make 0

let mint prefix =
  Printf.sprintf "%s-%d" prefix (1 + Atomic.fetch_and_add mint_counter 1)

(* -- Ambient per-domain context ------------------------------------------- *)

let ctx_key : field list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let with_fields fields f =
  let old = Domain.DLS.get ctx_key in
  Domain.DLS.set ctx_key (old @ fields);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ctx_key old) f

let current_fields () = Domain.DLS.get ctx_key

(* -- JSON rendering -------------------------------------------------------- *)

let buf_key : Buffer.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Buffer.create 256)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_value buf = function
  | S s -> add_json_string buf s
  | I i -> Buffer.add_string buf (string_of_int i)
  | B b -> Buffer.add_string buf (if b then "true" else "false")
  | F f ->
    if not (Float.is_finite f) then Buffer.add_string buf "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.0f" f)
    else Buffer.add_string buf (Printf.sprintf "%.9g" f)

let add_field buf (k, v) =
  Buffer.add_string buf ", ";
  add_json_string buf k;
  Buffer.add_string buf ": ";
  add_value buf v

let level_name = function
  | Obs.Quiet -> "quiet"
  | Obs.Info -> "info"
  | Obs.Debug -> "debug"

(* The rid the flight recorder should file a log record under: an explicit
   "rid" field wins, then the ambient log context; otherwise Flight falls
   back to Trace_ctx. *)
let field_rid fields =
  let pick fs =
    match List.assoc_opt "rid" fs with Some (S r) -> Some r | _ -> None
  in
  match pick fields with
  | Some _ as r -> r
  | None -> pick (Domain.DLS.get ctx_key)

let value_string = function
  | S s -> s
  | I i -> string_of_int i
  | B b -> string_of_bool b
  | F f -> Printf.sprintf "%.9g" f

let event ?(level = Obs.Info) name fields =
  (* Emitted lines also land in the flight recorder (when that is on) even
     if the log sink itself is disabled — a server run without --log-json
     still has its recent request history in a flight dump. *)
  let to_sink =
    Atomic.get enabled_ && level <> Obs.Quiet
    && rank level <= rank (Atomic.get level_)
  in
  let to_flight = Flight.enabled () && level <> Obs.Quiet in
  if to_sink || to_flight then begin
    if to_flight then
      Flight.record ?rid:(field_rid fields)
        ~data:(List.map (fun (k, v) -> (k, value_string v)) fields)
        Flight.Log name;
    if to_sink then begin
      let buf = Domain.DLS.get buf_key in
      Buffer.clear buf;
      Fun.protect
        ~finally:(fun () -> Buffer.clear buf)
        (fun () ->
          Buffer.add_string buf
            (Printf.sprintf "{\"ts\": %.6f, \"level\": \"%s\", \"event\": "
               (Unix.gettimeofday ()) (level_name level));
          add_json_string buf name;
          List.iter (add_field buf) fields;
          (* Ambient context after the explicit fields; a context key shadowed
             by an explicit field is dropped so lookups (first occurrence
             wins) see the more specific value. *)
          List.iter
            (fun (k, v) ->
              if not (List.mem_assoc k fields) then add_field buf (k, v))
            (Domain.DLS.get ctx_key);
          Buffer.add_char buf '}';
          let line = Buffer.contents buf in
          Mutex.protect sink_mu (fun () -> !sink line))
    end
  end
