(* Sliding-window quantile estimator: a mutex-protected ring of the last
   [capacity] observations.

   The serving engine needs *current* latency, not lifetime latency — a
   histogram accumulated since process start hides a regression that began
   five minutes ago behind hours of healthy traffic. A count-bounded window
   is the simplest estimator with that property: quantiles are exact over
   the window, the memory bound is fixed, and there is no decay parameter
   to tune. Reads sort a snapshot (O(capacity log capacity)), which is fine
   for the intended read rate (a stats request or a scrape, not a hot
   path); writes are O(1) under the mutex.

   Each slot optionally carries the request id of its observation, so a
   reported quantile can name a concrete request near that rank — the
   rolling counterpart of Metrics histogram exemplars. *)

type t = {
  mu : Mutex.t;
  data : float array;
  rids : string array;  (* rids.(i) labels data.(i); "" when absent *)
  mutable count : int;  (* total adds; the ring holds the last [capacity] *)
}

let create ?(capacity = 512) () =
  let cap = max 1 capacity in
  {
    mu = Mutex.create ();
    data = Array.make cap 0.;
    rids = Array.make cap "";
    count = 0;
  }

let capacity t = Array.length t.data

let add ?(rid = "") t v =
  Mutex.protect t.mu (fun () ->
      let i = t.count mod Array.length t.data in
      t.data.(i) <- v;
      t.rids.(i) <- rid;
      t.count <- t.count + 1)

let length t =
  Mutex.protect t.mu (fun () -> min t.count (Array.length t.data))

let total t = Mutex.protect t.mu (fun () -> t.count)

let clear t = Mutex.protect t.mu (fun () -> t.count <- 0)

(* Window contents, unordered (quantiles do not care about arrival order). *)
let snapshot t =
  Mutex.protect t.mu (fun () ->
      Array.init (min t.count (Array.length t.data)) (fun i -> t.data.(i)))

let snapshot_rids t =
  Mutex.protect t.mu (fun () ->
      Array.init
        (min t.count (Array.length t.data))
        (fun i -> (t.data.(i), t.rids.(i))))

let quantiles t qs =
  let a = snapshot t in
  let n = Array.length a in
  if n = 0 then List.map (fun _ -> 0.) qs
  else begin
    Array.sort Float.compare a;
    List.map
      (fun q ->
        let q = Float.max 0. (Float.min 1. q) in
        (* linear interpolation between closest ranks *)
        let pos = q *. float_of_int (n - 1) in
        let lo = int_of_float (Float.floor pos) in
        let hi = int_of_float (Float.ceil pos) in
        let frac = pos -. Float.floor pos in
        (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac))
      qs
  end

let quantile t q =
  match quantiles t [ q ] with [ v ] -> v | _ -> assert false

(* The labelled observation at the quantile's upper closest rank — the
   concrete request an operator should chase when the quantile looks bad.
   Unlike {!quantile} this does not interpolate: an exemplar must be a
   request that actually happened. *)
let exemplar t q =
  let a = snapshot_rids t in
  let n = Array.length a in
  if n = 0 then None
  else begin
    Array.sort (fun (x, _) (y, _) -> Float.compare x y) a;
    let q = Float.max 0. (Float.min 1. q) in
    let idx = int_of_float (Float.ceil (q *. float_of_int (n - 1))) in
    Some a.(idx)
  end
