(** Request-scoped ambient trace context.

    Carries the request id ([rid]) and the stack of currently-open span
    names in domain-local storage. {!Obs.span} tags recorded events with
    the ambient rid and maintains the path; everything else reads it.

    Child domains start with an empty context — fan-out code must
    {!capture} before [Domain.spawn] and wrap the child body in
    {!with_ctx} so the request identity survives the crossing. *)

type t
(** Immutable snapshot of a context (rid + open-span path). *)

val none : t
(** The empty context: no rid, no open spans. *)

val make : rid:string -> ?path:string list -> unit -> t
(** Build a context from parts received over the wire — how a fleet shard
    adopts the router-minted trace: [make ~rid ~path ()] with [path]
    outermost-first (e.g. [["router"]]), installed via {!with_ctx}, makes
    every span, flight record, log line and exemplar under it carry the
    fleet-wide rid. *)

val capture : unit -> t
(** Snapshot the calling domain's current context, for handing to a child
    domain. Cheap (returns the current immutable record). *)

val with_ctx : t -> (unit -> 'a) -> 'a
(** [with_ctx ctx f] runs [f] with [ctx] installed as the ambient context,
    restoring the previous context afterwards (also on exceptions). *)

val with_rid : string -> (unit -> 'a) -> 'a
(** [with_rid rid f] runs [f] with the ambient rid set to [rid], keeping
    the current span path. The serve engine wraps request processing in
    this. *)

val rid : unit -> string
(** The ambient request id; [""] outside any request. *)

val path : unit -> string list
(** Names of the currently-open spans, outermost first. *)

val path_string : unit -> string
(** {!path} joined with ["/"]; [""] when no span is open. *)

val push : string -> unit
(** Push a span name onto the ambient path. Called by {!Obs.span} — user
    code should not need this. *)

val pop : unit -> unit
(** Pop the innermost span name; no-op on an empty path. *)
