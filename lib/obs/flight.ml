(* Always-on flight recorder: a bounded ring of recent span completions,
   log lines and solver-progress snapshots per domain, kept even when full
   tracing is off, so a wedged or slow server can be debugged *after the
   fact* — dump on SIGUSR1, on crash, on deadline expiry, or via the
   serve protocol's [dump] op.

   Concurrency contract. Writers follow the Obs ring discipline: each
   domain owns its ring through DLS, so recording is a plain array store
   with no synchronization; only ring registration takes the global mutex.
   Records are immutable OCaml blocks stored through a single pointer
   write into an ['a option array], so a reader that races a writer sees
   either the old record or the new one, never a torn mix — this is what
   makes dumping a *live* server safe, and what test/test_flight.ml's
   qcheck battery checks. The [count] field may lag the data array during
   a race; readers only use it to bound how much they scan, so the worst
   case is a dump missing the very newest records. *)

type kind = Span | Log | Progress | Event

let kind_name = function
  | Span -> "span"
  | Log -> "log"
  | Progress -> "progress"
  | Event -> "event"

type record = {
  fr_ts : float;  (* completion wall-clock time *)
  fr_tid : int;
  fr_rid : string;  (* "" when outside any request *)
  fr_kind : kind;
  fr_name : string;
  fr_dur_ms : float;  (* 0 for point records *)
  fr_data : (string * string) list;
}

type ring = {
  r_tid : int;
  r_gen : int;
  data : record option array;
  mutable count : int;  (* total records; the ring holds the last [cap] *)
}

let default_capacity = 4096

let enabled_ = Atomic.make false

let capacity_ = Atomic.make default_capacity

let generation = Atomic.make 0

let registry : ring list ref = ref []

let registry_mu = Mutex.create ()

let enabled () = Atomic.get enabled_

let fresh_ring () =
  let r =
    {
      r_tid = (Domain.self () :> int);
      r_gen = Atomic.get generation;
      data = Array.make (max 16 (Atomic.get capacity_)) None;
      count = 0;
    }
  in
  Mutex.protect registry_mu (fun () -> registry := r :: !registry);
  r

let key = Domain.DLS.new_key fresh_ring

let ring () =
  let r = Domain.DLS.get key in
  if r.r_gen = Atomic.get generation then r
  else begin
    let r = fresh_ring () in
    Domain.DLS.set key r;
    r
  end

let enable ?(capacity = default_capacity) () =
  Atomic.set capacity_ capacity;
  Atomic.set enabled_ true

let disable () = Atomic.set enabled_ false

let reset () =
  Mutex.protect registry_mu (fun () -> registry := []);
  Atomic.incr generation

let record ?rid ?(dur_ms = 0.) ?(data = []) kind name =
  if Atomic.get enabled_ then begin
    let rid = match rid with Some r -> r | None -> Trace_ctx.rid () in
    let r = ring () in
    let rec_ =
      {
        fr_ts = Unix.gettimeofday ();
        fr_tid = r.r_tid;
        fr_rid = rid;
        fr_kind = kind;
        fr_name = name;
        fr_dur_ms = dur_ms;
        fr_data = data;
      }
    in
    r.data.(r.count mod Array.length r.data) <- Some rec_;
    r.count <- r.count + 1
  end

(* -- Collection ----------------------------------------------------------- *)

let ring_records r =
  (* Scan the whole array rather than trusting [count]'s ordering: a live
     writer may be mid-overwrite, and every slot holds either None or a
     complete record. *)
  Array.to_list r.data |> List.filter_map Fun.id

let records () =
  let rings = Mutex.protect registry_mu (fun () -> !registry) in
  List.concat_map ring_records rings
  |> List.stable_sort (fun a b ->
         match Float.compare a.fr_ts b.fr_ts with
         | 0 -> compare a.fr_tid b.fr_tid
         | c -> c)

let dropped () =
  let rings = Mutex.protect registry_mu (fun () -> !registry) in
  List.fold_left
    (fun acc r -> acc + max 0 (r.count - Array.length r.data))
    0 rings

(* -- JSON dump ------------------------------------------------------------ *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_record buf r =
  Buffer.add_string buf
    (Printf.sprintf "{\"ts\": %.6f, \"tid\": %d, \"kind\": \"%s\", " r.fr_ts
       r.fr_tid (kind_name r.fr_kind));
  Buffer.add_string buf "\"name\": ";
  add_json_string buf r.fr_name;
  if r.fr_rid <> "" then begin
    Buffer.add_string buf ", \"rid\": ";
    add_json_string buf r.fr_rid
  end;
  if r.fr_dur_ms <> 0. then
    Buffer.add_string buf (Printf.sprintf ", \"dur_ms\": %.6f" r.fr_dur_ms);
  if r.fr_data <> [] then begin
    Buffer.add_string buf ", \"data\": {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        add_json_string buf k;
        Buffer.add_string buf ": ";
        add_json_string buf v)
      r.fr_data;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}'

let to_json () =
  let recs = records () in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema\": \"sepsat-flight-1\", \"pid\": %d, \"dumped_at\": %.6f, \
        \"dropped\": %d, \"records\": ["
       (Unix.getpid ()) (Unix.gettimeofday ()) (dropped ()));
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ", ";
      add_record buf r)
    recs;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_json ());
      output_char oc '\n')

(* -- Dump management ------------------------------------------------------ *)

let dump_dir = Atomic.make "."

let dump_seq = Atomic.make 0

let set_dump_dir d = Atomic.set dump_dir d

let sanitize_reason s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    s

let dump ~reason () =
  let path =
    Filename.concat (Atomic.get dump_dir)
      (Printf.sprintf "flight-%d-%d-%s.json" (Unix.getpid ())
         (1 + Atomic.fetch_and_add dump_seq 1)
         (sanitize_reason reason))
  in
  write path;
  path

let install_signal_dump ?(signal = Sys.sigusr1) () =
  Sys.set_signal signal
    (Sys.Signal_handle
       (fun _ ->
         (* Signal handlers run on the main domain at a safe point; dumping
            takes only the registry mutex briefly and writes a fresh file,
            so it cannot deadlock request processing. *)
         try ignore (dump ~reason:"signal" ()) with _ -> ()))

let install_crash_dump () =
  Printexc.set_uncaught_exception_handler (fun exn bt ->
      (try
         let path = dump ~reason:"crash" () in
         Printf.eprintf "flight recorder dumped to %s\n%!" path
       with _ -> ());
      Printf.eprintf "Fatal error: exception %s\n%s%!" (Printexc.to_string exn)
        (Printexc.raw_backtrace_to_string bt))
