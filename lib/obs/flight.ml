(* Always-on flight recorder: a bounded ring of recent span completions,
   log lines and solver-progress snapshots per domain, kept even when full
   tracing is off, so a wedged or slow server can be debugged *after the
   fact* — dump on SIGUSR1, on crash, on deadline expiry, or via the
   serve protocol's [dump] op.

   Concurrency contract. Writers follow the Obs ring discipline: each
   domain owns its ring through DLS, so recording is a plain array store
   with no synchronization; only ring registration takes the global mutex.
   Records are immutable OCaml blocks stored through a single pointer
   write into an ['a option array], so a reader that races a writer sees
   either the old record or the new one, never a torn mix — this is what
   makes dumping a *live* server safe, and what test/test_flight.ml's
   qcheck battery checks. The [count] field may lag the data array during
   a race; readers only use it to bound how much they scan, so the worst
   case is a dump missing the very newest records. *)

type kind = Span | Log | Progress | Event

let kind_name = function
  | Span -> "span"
  | Log -> "log"
  | Progress -> "progress"
  | Event -> "event"

type record = {
  fr_ts : float;  (* completion wall-clock time *)
  fr_mono : float;  (* same instant on this process's Clock.mono_now *)
  fr_tid : int;
  fr_rid : string;  (* "" when outside any request *)
  fr_kind : kind;
  fr_name : string;
  fr_dur_ms : float;  (* 0 for point records *)
  fr_data : (string * string) list;
}

type ring = {
  r_tid : int;
  r_gen : int;
  data : record option array;
  mutable count : int;  (* total records; the ring holds the last [cap] *)
}

let default_capacity = 4096

let enabled_ = Atomic.make false

let capacity_ = Atomic.make default_capacity

let generation = Atomic.make 0

let registry : ring list ref = ref []

let registry_mu = Mutex.create ()

let enabled () = Atomic.get enabled_

let fresh_ring () =
  let r =
    {
      r_tid = (Domain.self () :> int);
      r_gen = Atomic.get generation;
      data = Array.make (max 16 (Atomic.get capacity_)) None;
      count = 0;
    }
  in
  Mutex.protect registry_mu (fun () -> registry := r :: !registry);
  r

let key = Domain.DLS.new_key fresh_ring

let ring () =
  let r = Domain.DLS.get key in
  if r.r_gen = Atomic.get generation then r
  else begin
    let r = fresh_ring () in
    Domain.DLS.set key r;
    r
  end

let enable ?(capacity = default_capacity) () =
  Atomic.set capacity_ capacity;
  Atomic.set enabled_ true

let disable () = Atomic.set enabled_ false

let reset () =
  Mutex.protect registry_mu (fun () -> registry := []);
  Atomic.incr generation

let record ?rid ?(dur_ms = 0.) ?(data = []) kind name =
  if Atomic.get enabled_ then begin
    let rid = match rid with Some r -> r | None -> Trace_ctx.rid () in
    let r = ring () in
    let wall, mono = Clock.pair () in
    let rec_ =
      {
        fr_ts = wall;
        fr_mono = mono;
        fr_tid = r.r_tid;
        fr_rid = rid;
        fr_kind = kind;
        fr_name = name;
        fr_dur_ms = dur_ms;
        fr_data = data;
      }
    in
    r.data.(r.count mod Array.length r.data) <- Some rec_;
    r.count <- r.count + 1
  end

(* -- Collection ----------------------------------------------------------- *)

let ring_records r =
  (* Scan the whole array rather than trusting [count]'s ordering: a live
     writer may be mid-overwrite, and every slot holds either None or a
     complete record. *)
  Array.to_list r.data |> List.filter_map Fun.id

let records () =
  let rings = Mutex.protect registry_mu (fun () -> !registry) in
  List.concat_map ring_records rings
  |> List.stable_sort (fun a b ->
         match Float.compare a.fr_ts b.fr_ts with
         | 0 -> compare a.fr_tid b.fr_tid
         | c -> c)

let dropped () =
  let rings = Mutex.protect registry_mu (fun () -> !registry) in
  List.fold_left
    (fun acc r -> acc + max 0 (r.count - Array.length r.data))
    0 rings

(* -- JSON dump ------------------------------------------------------------ *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_record buf r =
  Buffer.add_string buf
    (Printf.sprintf "{\"ts\": %.6f, \"mono\": %.6f, \"tid\": %d, \"kind\": \"%s\", "
       r.fr_ts r.fr_mono r.fr_tid (kind_name r.fr_kind));
  Buffer.add_string buf "\"name\": ";
  add_json_string buf r.fr_name;
  if r.fr_rid <> "" then begin
    Buffer.add_string buf ", \"rid\": ";
    add_json_string buf r.fr_rid
  end;
  if r.fr_dur_ms <> 0. then
    Buffer.add_string buf (Printf.sprintf ", \"dur_ms\": %.6f" r.fr_dur_ms);
  if r.fr_data <> [] then begin
    Buffer.add_string buf ", \"data\": {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        add_json_string buf k;
        Buffer.add_string buf ": ";
        add_json_string buf v)
      r.fr_data;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}'

let to_json () =
  let recs = records () in
  let buf = Buffer.create 65536 in
  (* The (wall, mono) pair is sampled together so a consumer can map any
     record's mono stamp onto the wall timeline without assuming the two
     processes' wall clocks agree — see [assemble]. *)
  let wall, mono = Clock.pair () in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema\": \"sepsat-flight-1\", \"pid\": %d, \"dumped_at\": %.6f, \
        \"wall\": %.6f, \"mono\": %.6f, \"dropped\": %d, \"records\": ["
       (Unix.getpid ()) wall wall mono (dropped ()));
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ", ";
      add_record buf r)
    recs;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_json ());
      output_char oc '\n')

(* -- Cross-process assembly ----------------------------------------------- *)

type source = {
  src_label : string;
  src_pid : int;
  src_wall : float;
  src_mono : float;
  src_records : record list;
}

(* One Chrome trace from many processes' flight dumps. Each source's
   (wall, mono) header pair pins its mono timeline to the shared wall
   timeline; a record's absolute end time is then

     src_wall -. (src_mono -. fr_mono)

   which only ever subtracts mono readings from the *same* process —
   immune to wall-clock skew between router and shards. Spans become
   "X" (complete) events ending at that instant; point records become
   thread-scoped instants. One Chrome pid per source, named via
   process_name metadata, gives the lane-per-process view. *)
let assemble ?rid sources =
  let keep r = match rid with None -> true | Some id -> r.fr_rid = id in
  let abs_end src r = src.src_wall -. (src.src_mono -. r.fr_mono) in
  let origin =
    List.fold_left
      (fun acc src ->
        List.fold_left
          (fun acc r ->
            if keep r then Float.min acc (abs_end src r -. (r.fr_dur_ms /. 1e3))
            else acc)
          acc src.src_records)
      Float.infinity sources
  in
  let origin = if origin = Float.infinity then 0. else origin in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\": [";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ", "
  in
  List.iteri
    (fun pid src ->
      sep ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, \
            \"tid\": 0, \"args\": {\"name\": "
           pid);
      add_json_string buf src.src_label;
      Buffer.add_string buf "}}")
    sources;
  (* Flatten, tag with the source lane, and sort by start time so the
     event stream reads in causal order. *)
  let events =
    List.concat
      (List.mapi
         (fun pid src ->
           List.filter_map
             (fun r ->
               if keep r then
                 let start_us =
                   (abs_end src r -. origin) *. 1e6 -. (r.fr_dur_ms *. 1e3)
                 in
                 Some (Float.max 0. start_us, pid, r)
               else None)
             src.src_records)
         sources)
    |> List.stable_sort (fun (a, _, _) (b, _, _) -> Float.compare a b)
  in
  List.iter
    (fun (start_us, pid, r) ->
      sep ();
      Buffer.add_string buf "{\"name\": ";
      add_json_string buf r.fr_name;
      Buffer.add_string buf
        (Printf.sprintf
           ", \"cat\": \"%s\", \"pid\": %d, \"tid\": %d, \"ts\": %.3f"
           (kind_name r.fr_kind) pid r.fr_tid start_us);
      if r.fr_dur_ms > 0. then
        Buffer.add_string buf
          (Printf.sprintf ", \"ph\": \"X\", \"dur\": %.3f"
             (r.fr_dur_ms *. 1e3))
      else Buffer.add_string buf ", \"ph\": \"i\", \"s\": \"t\"";
      Buffer.add_string buf ", \"args\": {";
      Buffer.add_string buf "\"rid\": ";
      add_json_string buf r.fr_rid;
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf ", ";
          add_json_string buf ("data." ^ k);
          Buffer.add_string buf ": ";
          add_json_string buf v)
        r.fr_data;
      Buffer.add_string buf "}}")
    events;
  Buffer.add_string buf "], \"displayTimeUnit\": \"ms\"}";
  Buffer.contents buf

(* -- Dump management ------------------------------------------------------ *)

let dump_dir = Atomic.make "."

let dump_seq = Atomic.make 0

let set_dump_dir d = Atomic.set dump_dir d

let sanitize_reason s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    s

let dump ~reason () =
  let path =
    Filename.concat (Atomic.get dump_dir)
      (Printf.sprintf "flight-%d-%d-%s.json" (Unix.getpid ())
         (1 + Atomic.fetch_and_add dump_seq 1)
         (sanitize_reason reason))
  in
  write path;
  path

let install_signal_dump ?(signal = Sys.sigusr1) () =
  Sys.set_signal signal
    (Sys.Signal_handle
       (fun _ ->
         (* Signal handlers run on the main domain at a safe point; dumping
            takes only the registry mutex briefly and writes a fresh file,
            so it cannot deadlock request processing. *)
         try ignore (dump ~reason:"signal" ()) with _ -> ()))

let install_crash_dump () =
  Printexc.set_uncaught_exception_handler (fun exn bt ->
      (try
         let path = dump ~reason:"crash" () in
         Printf.eprintf "flight recorder dumped to %s\n%!" path
       with _ -> ());
      Printf.eprintf "Fatal error: exception %s\n%s%!" (Printexc.to_string exn)
        (Printexc.raw_backtrace_to_string bt))
