(** Pipeline tracing: nested phase spans collected into per-domain ring
    buffers.

    The whole subsystem is off by default and costs one atomic load per
    collector (tracing, {!Flight}) per call site when everything is
    disabled. When enabled ({!enable}), every emission goes to
    a ring buffer owned by the emitting domain — no locks or cross-domain
    writes on the hot path — so the portfolio's racing domains can trace
    concurrently. Buffers register themselves in a global list under a mutex
    on first use; {!events} merges them after the emitting domains have
    quiesced (for the portfolio: after [Domain.join]).

    Timestamps are wall-clock seconds filtered through a per-domain monotone
    clamp, so within one domain the capture order is the timestamp order even
    if the system clock steps backwards. Spans close in LIFO order per
    domain, which together with the clamp makes every domain's span set
    well-nested: two spans of one domain are either disjoint or one contains
    the other. Export with {!Chrome_trace}. *)

(** {2 Enabling} *)

val enabled : unit -> bool
(** One atomic load; every emission function returns immediately when this
    is false. *)

val enable : ?capacity:int -> unit -> unit
(** Start collecting. [capacity] is the per-domain ring size in events
    (default 65536); when a ring overflows, the oldest events are dropped
    and counted in {!dropped}. *)

val disable : unit -> unit

val reset : unit -> unit
(** Drop every collected event, ring and thread name. Collection state
    (enabled flag, level) is unchanged. *)

(** {2 Log levels} *)

type level = Quiet | Info | Debug

val set_level : level -> unit

val get_level : unit -> level

val level_of_string : string -> level option
(** ["quiet"], ["info"], ["debug"]. *)

val log : level -> ('a, out_channel, unit) format -> 'a
(** [log lvl fmt ...] prints one line to stderr when the current level is at
    least [lvl]. Independent of {!enabled}: logging is for humans, the event
    stream for exporters. *)

(** {2 Events} *)

type event =
  | Span of {
      name : string;
      cat : string;
      ts : float;
      dur : float;
      tid : int;
      rid : string;
    }
      (** a completed phase scope; [ts] is the begin time, [rid] the ambient
          {!Trace_ctx.rid} at capture ([""] outside any request) *)
  | Instant of {
      name : string;
      cat : string;
      ts : float;
      tid : int;
      rid : string;
    }
  | Sample of { name : string; ts : float; value : float; tid : int }
      (** a point on a counter track (e.g. conflicts so far) *)

val event_ts : event -> float

val event_tid : event -> int

val span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a phase scope. The span is recorded when
    [f] returns {e or raises} (the exception is re-raised), so timeouts and
    translation blowups still leave their phase in the trace. Disabled mode
    is a single branch around a tail call of [f]. *)

val timed : ?cat:string -> string -> (unit -> 'a) -> 'a * float
(** Like {!span} but always measures: returns [f]'s result together with the
    elapsed wall-clock seconds, recording the span only when enabled. For
    callers that need the duration regardless of tracing (phase breakdowns
    in results). On an exception the span is still recorded, then the
    exception is re-raised. *)

val instant : ?cat:string -> string -> unit

val sample : string -> float -> unit
(** [sample name v] records a counter-track point, e.g.
    [sample "sat.conflicts" (float n)]. *)

(** {2 Thread (domain) naming} *)

val name_thread : string -> unit
(** Label the calling domain's lane in exported traces, flight dumps and the
    engine's live lane table — the portfolio names each racing domain after
    its method, pools suffix a generation. Last call per domain wins.
    Unconditional (not gated on {!enabled}). *)

val thread_names : unit -> (int * string) list

(** {2 Collection} *)

val events : unit -> event list
(** Every recorded event across all domains, sorted by timestamp (ties by
    domain id). Safe once emitting domains have quiesced; events emitted
    concurrently with this call may be missed. *)

val dropped : unit -> int
(** Events lost to ring overflow since the last {!reset}. *)

(** {2 Span rollup} *)

type span_stat = {
  ss_name : string;
  ss_count : int;
  ss_total : float;  (** summed duration, seconds *)
  ss_max : float;
}

val span_summary : event list -> span_stat list
(** Per-name aggregation of the [Span] events, sorted by descending total
    duration. *)

val pp_summary : Format.formatter -> event list -> unit
(** Human-readable table of {!span_summary} (the [--stats] view). *)
