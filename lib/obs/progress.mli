(** MiniSat-style periodic progress snapshots from the CDCL loop.

    The solver calls {!tick} from its existing budget/deadline polling point
    (every 1024 conflicts), so enabling progress reporting adds no new
    branches to propagation. Each tick builds a {!snapshot}, forwards it to
    the installed callback, and emits [sat.conflicts] / [sat.learnts]
    counter-track samples into the {!Obs} event stream so mid-solve progress
    is visible on the exported timeline.

    Everything is domain-safe: the callback cell is an atomic, and the
    rate/printer state is domain-local, so the portfolio's racing solvers
    report independently. *)

type snapshot = {
  p_conflicts : int;
  p_decisions : int;
  p_propagations : int;
  p_learnts : int;
  p_trail : int;  (** assigned literals *)
  p_vars : int;
  p_level : int;  (** current decision level *)
  p_elapsed : float;  (** wall seconds since the [solve] call started *)
  p_rate : float;  (** conflicts/second over the interval since the last tick *)
  p_tid : int;  (** emitting domain *)
}

val set_callback : (snapshot -> unit) option -> unit
(** Install (or remove) the global snapshot consumer. *)

val callback : unit -> (snapshot -> unit) option

val tick :
  conflicts:int ->
  decisions:int ->
  propagations:int ->
  learnts:int ->
  trail:int ->
  vars:int ->
  level:int ->
  started:float ->
  unit
(** No-op unless some consumer is live: {!Obs.enabled}, {!Flight.enabled}
    or an installed callback. [started] is the [Unix.gettimeofday] at the
    start of the enclosing [solve] call. *)

val install_printer : ?every_s:float -> unit -> unit
(** Install a callback printing one progress line per snapshot to stderr,
    rate-limited to one line per [every_s] (default 1.0) per domain — the
    [--log-level debug] view. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
