(** Prometheus text-format exposition (version 0.0.4) over the {!Metrics}
    registry — zero dependencies.

    Registry names are sanitized to the Prometheus charset
    ([[a-zA-Z_:][a-zA-Z0-9_:]*]): invalid bytes become ['_'] and a leading
    digit gains a ['_'] prefix; the original name is preserved in the
    [# HELP] line. Histograms are exported as cumulative
    [name_bucket{le="…"}] series ending at [le="+Inf"] (whose value always
    equals [name_count]), plus [name_sum] and [name_count]. *)

val current : unit -> string
(** Render {!Metrics.snapshot} as a complete exposition document. *)

val set_const_labels : (string * string) list -> unit
(** Constant labels stamped on every sample line of subsequent renders
    (names sanitized, values escaped) — e.g. [[("backend", "2")]] so one
    fleet member's series stay distinct when the router merges the
    backends' expositions into one document. The default (empty) renders
    the historical unlabelled format byte-for-byte. *)

val const_label : string -> string option
(** Look up one constant label by (unsanitized) name — how the serve
    engine reports which fleet backend it is ([const_label "backend"])
    in [stats] so merged exemplars stay attributable. *)

val render : (string * Metrics.value) list -> string
(** Render an explicit snapshot (for tests and offline reports). *)

val content_type : string
(** The HTTP [Content-Type] for this format:
    ["text/plain; version=0.0.4"]. *)

val sanitize_name : string -> string

val escape_label : string -> string
(** Escape a label {e value}: backslash, double-quote, newline. *)

val escape_help : string -> string
(** Escape HELP text: backslash and newline. *)

val number : float -> string
(** Prometheus float rendering: [NaN], [+Inf], [-Inf], integral values
    without exponent, otherwise shortest round-trippable decimal. *)
