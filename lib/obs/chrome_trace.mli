(** Chrome [trace_event] JSON export of the {!Obs} event stream.

    The output loads in [chrome://tracing] and {{:https://ui.perfetto.dev}
    Perfetto}: one lane per emitting domain (named via {!Obs.name_thread}),
    spans as matched ["B"]/["E"] duration events, {!Obs.Instant} as ["i"]
    instants and {!Obs.Sample} as ["C"] counter tracks. Timestamps are
    microseconds relative to the earliest event.

    Every ["B"] is guaranteed a matching ["E"] on the same [tid], emitted in
    non-decreasing timestamp order with proper nesting — the emitter sorts
    each domain's spans and replays them against a stack, so the file is
    structurally valid even if ring overflow dropped events. *)

val to_buffer : Buffer.t -> Obs.event list -> unit

val to_string : Obs.event list -> string

val write_file : string -> Obs.event list -> unit
(** Export {!Obs.events} (plus thread-name metadata) to [path]. *)

val write_current : string -> unit
(** [write_current path] is [write_file path (Obs.events ())]. *)
