(* Request-scoped ambient context: a request id plus the stack of open span
   names, stored in domain-local storage. Domains do not inherit DLS on
   spawn, so fan-out points ([Parallel], the portfolio) must [capture] the
   context before spawning and re-install it with [with_ctx] inside the
   child — that explicit handoff is what lets one rid reconstruct a span
   tree that crosses domain boundaries. *)

type t = { rid : string; path : string list (* innermost first *) }

let none = { rid = ""; path = [] }

(* [path] arrives outermost-first (the order a wire hop list reads);
   internally the stack is innermost-first. *)
let make ~rid ?(path = []) () = { rid; path = List.rev path }

let key : t ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref none)

let current () = !(Domain.DLS.get key)

let capture = current

let rid () = (current ()).rid

let path () = List.rev (current ()).path

let path_string () = String.concat "/" (path ())

let with_ctx ctx f =
  let cell = Domain.DLS.get key in
  let old = !cell in
  cell := ctx;
  Fun.protect ~finally:(fun () -> cell := old) f

let with_rid rid f =
  let cell = Domain.DLS.get key in
  let old = !cell in
  cell := { old with rid };
  Fun.protect ~finally:(fun () -> cell := old) f

(* push/pop are called only from Obs's span machinery, and only when some
   collector (tracing or the flight recorder) is on — idle cost is zero. *)

let push name =
  let cell = Domain.DLS.get key in
  cell := { !cell with path = name :: !cell.path }

let pop () =
  let cell = Domain.DLS.get key in
  match !cell.path with
  | [] -> ()
  | _ :: tl -> cell := { !cell with path = tl }
