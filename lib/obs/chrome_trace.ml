(* trace_event JSON writer. The format reference is the "Trace Event
   Format" document of the Chromium project; the subset here is B/E
   duration events, i instants, C counters and M metadata, which both
   chrome://tracing and Perfetto load. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

type out = { buf : Buffer.t; mutable first : bool }

let emit o fmt =
  if o.first then o.first <- false else Buffer.add_string o.buf ",\n  ";
  Printf.ksprintf (Buffer.add_string o.buf) fmt

(* Span begin/end replay for one tid. Spans are sorted so parents precede
   their children ([ts] ascending, duration descending breaks the tie);
   walking with a stack then closes every span that cannot contain the next
   one before opening it. Per-domain monotone capture in [Obs] makes real
   traces perfectly nested; for defensive completeness, a span that
   partially overlaps the stack top is clipped by closing the top first, so
   B/E events always stay matched and ordered. *)
let emit_spans o ~tid spans =
  let spans =
    List.stable_sort
      (fun (_, _, _, ts1, d1) (_, _, _, ts2, d2) ->
        match Float.compare ts1 ts2 with
        | 0 -> Float.compare d2 d1
        | c -> c)
      spans
  in
  (* The rid rides in [args] so Perfetto's query/filter UI can isolate one
     request's spans across every lane. *)
  let rid_args rid =
    if rid = "" then ""
    else Printf.sprintf ", \"args\": {\"rid\": \"%s\"}" (escape rid)
  in
  let emit_b (name, cat, rid, ts, _) =
    emit o
      "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"B\", \"pid\": 0, \
       \"tid\": %d, \"ts\": %.3f%s}"
      (escape name)
      (escape (if cat = "" then "sepsat" else cat))
      tid ts (rid_args rid)
  in
  let emit_e ~at (name, _, _, _, _) =
    emit o
      "{\"name\": \"%s\", \"ph\": \"E\", \"pid\": 0, \"tid\": %d, \"ts\": \
       %.3f}"
      (escape name) tid at
  in
  let ends (_, _, _, ts, d) = ts +. d in
  let contains p c = ends c <= ends p in
  let stack = ref [] in
  List.iter
    (fun ((_, _, _, ts, _) as s) ->
      (* Close every stacked span that cannot contain [s] before opening it,
         clamping close times to be non-decreasing. *)
      let rec close_until last =
        match !stack with
        | top :: rest when not (contains top s) ->
          (* Usually [ends top <= ts] (disjoint siblings); a partial overlap
             (impossible under monotone capture, possible after ring drops)
             is clipped at the new begin so timestamps never decrease. *)
          let at = Float.max last (Float.min (ends top) ts) in
          emit_e ~at top;
          stack := rest;
          close_until at
        | _ -> ()
      in
      close_until neg_infinity;
      emit_b s;
      stack := s :: !stack)
    spans;
  let rec drain last =
    match !stack with
    | [] -> ()
    | top :: rest ->
      let at = Float.max (ends top) last in
      emit_e ~at top;
      stack := rest;
      drain at
  in
  drain neg_infinity

let to_buffer buf evs =
  let o = { buf; first = true } in
  let t0 =
    List.fold_left (fun acc e -> Float.min acc (Obs.event_ts e)) infinity evs
  in
  let t0 = if Float.is_finite t0 then t0 else 0. in
  let us t = (t -. t0) *. 1e6 in
  Buffer.add_string buf "{\"traceEvents\": [\n  ";
  emit o
    "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \
     \"args\": {\"name\": \"sepsat\"}}";
  List.iter
    (fun (tid, name) ->
      emit o
        "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": %d, \
         \"args\": {\"name\": \"%s\"}}"
        tid (escape name))
    (Obs.thread_names ());
  (* Group spans per tid so each lane's B/E stream nests independently. *)
  let by_tid :
      (int, (string * string * string * float * float) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (function
      | Obs.Span { name; cat; ts; dur; tid; rid } ->
        let r =
          match Hashtbl.find_opt by_tid tid with
          | Some r -> r
          | None ->
            let r = ref [] in
            Hashtbl.add by_tid tid r;
            r
        in
        r := (name, cat, rid, us ts, dur *. 1e6) :: !r
      | Obs.Instant { name; cat; ts; tid; rid } ->
        emit o
          "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"i\", \"s\": \"t\", \
           \"pid\": 0, \"tid\": %d, \"ts\": %.3f%s}"
          (escape name)
          (escape (if cat = "" then "sepsat" else cat))
          tid (us ts)
          (if rid = "" then ""
           else Printf.sprintf ", \"args\": {\"rid\": \"%s\"}" (escape rid))
      | Obs.Sample { name; ts; value; tid } ->
        emit o
          "{\"name\": \"%s\", \"ph\": \"C\", \"pid\": 0, \"tid\": %d, \"ts\": \
           %.3f, \"args\": {\"value\": %.6g}}"
          (escape name) tid (us ts) value)
    evs;
  let tids =
    Hashtbl.fold (fun tid _ acc -> tid :: acc) by_tid [] |> List.sort compare
  in
  List.iter
    (fun tid ->
      match Hashtbl.find_opt by_tid tid with
      | Some spans -> emit_spans o ~tid (List.rev !spans)
      | None -> ())
    tids;
  Buffer.add_string buf "\n], \"displayTimeUnit\": \"ms\"}\n"

let to_string evs =
  let buf = Buffer.create 65536 in
  to_buffer buf evs;
  Buffer.contents buf

let write_file path evs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      to_buffer buf evs;
      Buffer.output_buffer oc buf)

let write_current path = write_file path (Obs.events ())
