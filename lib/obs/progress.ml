type snapshot = {
  p_conflicts : int;
  p_decisions : int;
  p_propagations : int;
  p_learnts : int;
  p_trail : int;
  p_vars : int;
  p_level : int;
  p_elapsed : float;
  p_rate : float;
  p_tid : int;
}

let callback_ : (snapshot -> unit) option Atomic.t = Atomic.make None

let set_callback cb = Atomic.set callback_ cb

let callback () = Atomic.get callback_

(* Per-domain (time, conflicts) of the previous tick, for the interval
   conflict rate; fresh domains start from the tick itself. *)
let last_key = Domain.DLS.new_key (fun () -> ref (0., 0))

let tick ~conflicts ~decisions ~propagations ~learnts ~trail ~vars ~level
    ~started =
  (* Runs for any live consumer: the trace stream, the flight recorder
     (always-on in servers, so a wedged solve leaves its last snapshots in
     the dump) or an installed callback (the engine's live lane table). *)
  if Obs.enabled () || Flight.enabled () || Option.is_some (Atomic.get callback_)
  then begin
    let now = Unix.gettimeofday () in
    let last = Domain.DLS.get last_key in
    let t_prev, c_prev = !last in
    let rate =
      if t_prev > 0. && now > t_prev && conflicts >= c_prev then
        float_of_int (conflicts - c_prev) /. (now -. t_prev)
      else 0.
    in
    last := (now, conflicts);
    Obs.sample "sat.conflicts" (float_of_int conflicts);
    Obs.sample "sat.learnts" (float_of_int learnts);
    if Flight.enabled () then
      Flight.record
        ~data:
          [
            ("conflicts", string_of_int conflicts);
            ("learnts", string_of_int learnts);
            ("trail", Printf.sprintf "%d/%d" trail vars);
            ("rate", Printf.sprintf "%.0f" rate);
            ("elapsed_s", Printf.sprintf "%.3f" (Float.max 0. (now -. started)));
          ]
        Flight.Progress "sat.progress";
    let snap =
      {
        p_conflicts = conflicts;
        p_decisions = decisions;
        p_propagations = propagations;
        p_learnts = learnts;
        p_trail = trail;
        p_vars = vars;
        p_level = level;
        p_elapsed = Float.max 0. (now -. started);
        p_rate = rate;
        p_tid = (Domain.self () :> int);
      }
    in
    match Atomic.get callback_ with None -> () | Some f -> f snap
  end

let pp_snapshot ppf s =
  Format.fprintf ppf
    "[d%d %7.1fs] conflicts=%d (%.0f/s) decisions=%d propagations=%d \
     learnts=%d trail=%d/%d level=%d"
    s.p_tid s.p_elapsed s.p_conflicts s.p_rate s.p_decisions s.p_propagations
    s.p_learnts s.p_trail s.p_vars s.p_level

let printer_key = Domain.DLS.new_key (fun () -> ref 0.)

let install_printer ?(every_s = 1.0) () =
  set_callback
    (Some
       (fun snap ->
         let last_print = Domain.DLS.get printer_key in
         let now = Unix.gettimeofday () in
         if now -. !last_print >= every_s then begin
           last_print := now;
           Format.eprintf "%a@." pp_snapshot snap
         end))
