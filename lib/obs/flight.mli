(** Always-on flight recorder: bounded per-domain rings of recent span
    completions, log lines and solver-progress snapshots, dumpable as JSON
    at any moment — on SIGUSR1, on crash, on per-request deadline expiry,
    or through the serve protocol's [dump] op. Post-hoc debugging of a
    wedged server without tracing pre-enabled.

    Recording follows {!Obs}'s ring discipline (domain-owned rings via
    DLS, registration under one mutex) and stores each record with a
    single pointer write of an immutable block, so concurrent dumps never
    observe a torn record. A disabled {!record} costs one atomic load and
    a branch. *)

type kind = Span | Log | Progress | Event

type record = {
  fr_ts : float;  (** completion wall-clock time *)
  fr_mono : float;  (** the same instant on this process's {!Clock.mono_now} *)
  fr_tid : int;  (** recording domain id *)
  fr_rid : string;  (** request id; [""] outside any request *)
  fr_kind : kind;
  fr_name : string;
  fr_dur_ms : float;  (** span duration in ms; [0.] for point records *)
  fr_data : (string * string) list;  (** extra key/value payload *)
}

val enabled : unit -> bool

val enable : ?capacity:int -> unit -> unit
(** Start recording. [capacity] is the per-domain ring size in records
    (default 4096); on overflow the oldest records are overwritten and
    counted in {!dropped}. The serve engine enables this at startup. *)

val disable : unit -> unit

val reset : unit -> unit
(** Drop every recorded ring. The enabled flag is unchanged. *)

val record :
  ?rid:string ->
  ?dur_ms:float ->
  ?data:(string * string) list ->
  kind ->
  string ->
  unit
(** [record kind name] appends one record to the calling domain's ring.
    [rid] defaults to the ambient {!Trace_ctx.rid}. No-op (one atomic
    load) when disabled. *)

val records : unit -> record list
(** Every live record across all domains, sorted by timestamp. Safe to
    call while writers are recording; records written concurrently with
    the call may be missed or appear out of ring order, never torn. *)

val dropped : unit -> int
(** Records lost to ring overwrite since the last {!reset}. *)

val to_json : unit -> string
(** The full recorder state as one JSON document
    [{"schema": "sepsat-flight-1", "pid", "dumped_at", "wall", "mono",
    "dropped", "records": [...]}]. [wall] and [mono] are one
    {!Clock.pair} sampled at dump time — the anchor {!assemble} uses to
    align this process's records with other processes' dumps. *)

(** {1 Cross-process assembly} *)

type source = {
  src_label : string;  (** Chrome lane (process) name, e.g. ["router"] *)
  src_pid : int;  (** the dumping process's OS pid (informational) *)
  src_wall : float;  (** dump-header [wall] *)
  src_mono : float;  (** dump-header [mono], paired with [src_wall] *)
  src_records : record list;
}
(** One process's flight dump, decoded. For dumps predating the header
    pair, set [src_mono = src_wall] and each record's [fr_mono = fr_ts]
    — alignment degrades to raw wall time, exactly the old behaviour. *)

val assemble : ?rid:string -> source list -> string
(** Merge many processes' flight records into one Chrome trace document
    (catapult JSON, one [pid] lane per source, named by [src_label]).
    Spans become ["X"] complete events; point records become instants.
    Record times are aligned onto one timeline via each source's
    wall/mono anchor pair, so only same-process mono differences are
    ever taken — correct even when the processes' wall clocks disagree.
    [rid] keeps only records of that request. *)

val write : string -> unit
(** Write {!to_json} (plus a trailing newline) to a file. *)

val set_dump_dir : string -> unit
(** Directory for {!dump} files (default ["."]). *)

val dump : reason:string -> unit -> string
(** Write a dump file [flight-<pid>-<seq>-<reason>.json] into the dump
    directory and return its path. [reason] is sanitized to
    [[A-Za-z0-9._-]]. *)

val install_signal_dump : ?signal:int -> unit -> unit
(** Install a handler (default SIGUSR1) that writes a {!dump} with reason
    ["signal"]. *)

val install_crash_dump : unit -> unit
(** Replace the uncaught-exception handler with one that writes a dump
    with reason ["crash"] before printing the exception and backtrace. *)
