type counter = int Atomic.t

type gauge = float Atomic.t

(* No separate observation counter: the count is derived as the sum of the
   bins at read time. [reset] zeroes the fields one atomic at a time, so a
   counter read independently of the bins could tear — report a non-zero
   count against already-zeroed buckets. Deriving the count makes
   "count > 0 with all-zero buckets" impossible by construction; the only
   remaining reset race is benign (a concurrent [observe]'s bin increment
   and sum addition may land on opposite sides of the reset, skewing [sum]
   by at most that one in-flight observation). *)
(* An exemplar is the concrete observation an operator chases: "bucket
   (0.64, 2.56] has 31 requests" becomes "…and the slowest was rq-1042 at
   1.93s". One slot per bin holds the max-valued observation that carried a
   rid since the last reset, maintained by CAS on an immutable record so
   readers never see a torn exemplar. *)
type exemplar = { ex_rid : string; ex_value : float; ex_ts : float }

type histogram = {
  bounds : float array;  (* upper bounds; the +inf bin is bounds-length *)
  bins : int Atomic.t array;  (* length = Array.length bounds + 1 *)
  sum : float Atomic.t;
  exes : exemplar option Atomic.t array;  (* length = Array.length bins *)
}

type metric = C of counter | G of gauge | H of histogram

let table : (string, metric) Hashtbl.t = Hashtbl.create 64

let mu = Mutex.create ()

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register name make match_ =
  Mutex.protect mu (fun () ->
      match Hashtbl.find_opt table name with
      | Some m -> (
        match match_ m with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is already a %s" name (kind_name m)))
      | None ->
        let v = make () in
        (match match_ v with
        | Some _ -> ()
        | None -> assert false);
        Hashtbl.add table name v;
        (match match_ v with Some x -> x | None -> assert false))

let counter name =
  register name
    (fun () -> C (Atomic.make 0))
    (function C c -> Some c | G _ | H _ -> None)

let gauge name =
  register name
    (fun () -> G (Atomic.make 0.))
    (function G g -> Some g | C _ | H _ -> None)

(* Base-4 ladder from 1µs to ~4ks: wide enough for phase durations without
   per-instance configuration. *)
let default_buckets =
  Array.init 16 (fun i -> 1e-6 *. (4. ** float_of_int i))

let histogram ?(buckets = default_buckets) name =
  register name
    (fun () ->
      H
        {
          bounds = Array.copy buckets;
          bins = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
          sum = Atomic.make 0.;
          exes =
            Array.init (Array.length buckets + 1) (fun _ -> Atomic.make None);
        })
    (function H h -> Some h | C _ | G _ -> None)

let rec atomic_add_float cell x =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. x)) then
    atomic_add_float cell x

(* Updates are normally gated on [Obs.enabled] so the pipeline's hot paths
   pay one load and a branch when tracing is off. A long-lived server is
   the exception: its operational counters must move in a default run or
   the metrics surfaces lie, so the serving engine flips [always_] and
   updates flow regardless of tracing. *)
let always_ = Atomic.make false

let set_always_on b = Atomic.set always_ b

let always_on () = Atomic.get always_

let on () = Obs.enabled () || Atomic.get always_

let incr c = if on () then ignore (Atomic.fetch_and_add c 1)

let add c k = if on () then ignore (Atomic.fetch_and_add c k)

let set g v = if on () then Atomic.set g v

let observe ?rid h v =
  if on () then begin
    let i = ref 0 in
    let nb = Array.length h.bounds in
    while !i < nb && v > h.bounds.(!i) do
      i := !i + 1
    done;
    ignore (Atomic.fetch_and_add h.bins.(!i) 1);
    atomic_add_float h.sum v;
    match rid with
    | None -> ()
    | Some rid ->
      let cell = h.exes.(!i) in
      let rec keep_max () =
        let cur = Atomic.get cell in
        let better =
          match cur with None -> true | Some e -> v > e.ex_value
        in
        if
          better
          && not
               (Atomic.compare_and_set cell cur
                  (Some { ex_rid = rid; ex_value = v; ex_ts = Unix.gettimeofday () }))
        then keep_max ()
      in
      keep_max ()
  end

(* Per-bucket exemplars of a live histogram handle: (upper bound, exemplar)
   for every bin that has one, +inf bin last. *)
let exemplars h =
  List.init (Array.length h.exes) (fun i ->
      match Atomic.get h.exes.(i) with
      | None -> None
      | Some e ->
        Some ((if i < Array.length h.bounds then h.bounds.(i) else infinity), e))
  |> List.filter_map Fun.id

let get c = Atomic.get c

(* -- Reporting ------------------------------------------------------------ *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;
      sum : float;
      buckets : (float * int) list;
      exemplars : (float * exemplar) list;
    }

let read = function
  | C c -> Counter (Atomic.get c)
  | G g -> Gauge (Atomic.get g)
  | H h ->
    let buckets =
      List.init
        (Array.length h.bins)
        (fun i ->
          ( (if i < Array.length h.bounds then h.bounds.(i) else infinity),
            Atomic.get h.bins.(i) ))
    in
    (* Derived, not stored: count always equals the bucket total, even when
       this read races a [reset]. *)
    let count = List.fold_left (fun acc (_, n) -> acc + n) 0 buckets in
    Histogram { count; sum = Atomic.get h.sum; buckets; exemplars = exemplars h }

let snapshot () =
  Mutex.protect mu (fun () ->
      Hashtbl.fold (fun name m acc -> (name, read m) :: acc) table [])
  |> List.sort compare

(* Strict JSON: no infinity lexeme exists, and the once-used `1e999`
   workaround is rejected by conforming parsers. Non-finite values render
   as null, and the histogram's +inf bucket is simply omitted — it is
   implicit, [count - sum(finite bins)] — the same convention Prometheus
   uses with its mandatory `_count` series. *)
let json_float f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let to_json () =
  let entry (name, v) =
    let body =
      match v with
      | Counter n -> string_of_int n
      | Gauge f -> json_float f
      | Histogram { count; sum; buckets; exemplars } ->
        let exemplars_json =
          if exemplars = [] then ""
          else
            Printf.sprintf ", \"exemplars\": [%s]"
              (String.concat ", "
                 (List.map
                    (fun (ub, e) ->
                      Printf.sprintf
                        "{\"le\": %s, \"rid\": \"%s\", \"value\": %s, \"ts\": \
                         %.6f}"
                        (json_float ub) (String.escaped e.ex_rid)
                        (json_float e.ex_value) e.ex_ts)
                    exemplars))
        in
        Printf.sprintf "{\"count\": %d, \"sum\": %s, \"buckets\": [%s]%s}" count
          (json_float sum)
          (String.concat ", "
             (List.filter_map
                (fun (ub, n) ->
                  if Float.is_finite ub then
                    Some (Printf.sprintf "[%s, %d]" (json_float ub) n)
                  else None)
                buckets))
          exemplars_json
    in
    Printf.sprintf "\"%s\": %s" name body
  in
  "{" ^ String.concat ", " (List.map entry (snapshot ())) ^ "}"

let pp ppf () =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> Format.fprintf ppf "%-32s %12d@." name n
      | Gauge f -> Format.fprintf ppf "%-32s %12.4f@." name f
      | Histogram { count; sum; _ } ->
        Format.fprintf ppf "%-32s %12d obs, sum %.4f@." name count sum)
    (snapshot ())

let reset () =
  Mutex.protect mu (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | C c -> Atomic.set c 0
          | G g -> Atomic.set g 0.
          | H h ->
            Array.iter (fun b -> Atomic.set b 0) h.bins;
            Array.iter (fun e -> Atomic.set e None) h.exes;
            Atomic.set h.sum 0.)
        table)
