type counter = int Atomic.t

type gauge = float Atomic.t

type histogram = {
  bounds : float array;  (* upper bounds; the +inf bin is bounds-length *)
  bins : int Atomic.t array;  (* length = Array.length bounds + 1 *)
  sum : float Atomic.t;
  n : int Atomic.t;
}

type metric = C of counter | G of gauge | H of histogram

let table : (string, metric) Hashtbl.t = Hashtbl.create 64

let mu = Mutex.create ()

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register name make match_ =
  Mutex.protect mu (fun () ->
      match Hashtbl.find_opt table name with
      | Some m -> (
        match match_ m with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is already a %s" name (kind_name m)))
      | None ->
        let v = make () in
        (match match_ v with
        | Some _ -> ()
        | None -> assert false);
        Hashtbl.add table name v;
        (match match_ v with Some x -> x | None -> assert false))

let counter name =
  register name
    (fun () -> C (Atomic.make 0))
    (function C c -> Some c | G _ | H _ -> None)

let gauge name =
  register name
    (fun () -> G (Atomic.make 0.))
    (function G g -> Some g | C _ | H _ -> None)

(* Base-4 ladder from 1µs to ~4ks: wide enough for phase durations without
   per-instance configuration. *)
let default_buckets =
  Array.init 16 (fun i -> 1e-6 *. (4. ** float_of_int i))

let histogram ?(buckets = default_buckets) name =
  register name
    (fun () ->
      H
        {
          bounds = Array.copy buckets;
          bins = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
          sum = Atomic.make 0.;
          n = Atomic.make 0;
        })
    (function H h -> Some h | C _ | G _ -> None)

let rec atomic_add_float cell x =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. x)) then
    atomic_add_float cell x

let incr c = if Obs.enabled () then ignore (Atomic.fetch_and_add c 1)

let add c k = if Obs.enabled () then ignore (Atomic.fetch_and_add c k)

let set g v = if Obs.enabled () then Atomic.set g v

let observe h v =
  if Obs.enabled () then begin
    let i = ref 0 in
    let nb = Array.length h.bounds in
    while !i < nb && v > h.bounds.(!i) do
      i := !i + 1
    done;
    ignore (Atomic.fetch_and_add h.bins.(!i) 1);
    ignore (Atomic.fetch_and_add h.n 1);
    atomic_add_float h.sum v
  end

let get c = Atomic.get c

(* -- Reporting ------------------------------------------------------------ *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : float; buckets : (float * int) list }

let read = function
  | C c -> Counter (Atomic.get c)
  | G g -> Gauge (Atomic.get g)
  | H h ->
    let buckets =
      List.init
        (Array.length h.bins)
        (fun i ->
          ( (if i < Array.length h.bounds then h.bounds.(i) else infinity),
            Atomic.get h.bins.(i) ))
    in
    Histogram { count = Atomic.get h.n; sum = Atomic.get h.sum; buckets }

let snapshot () =
  Mutex.protect mu (fun () ->
      Hashtbl.fold (fun name m acc -> (name, read m) :: acc) table [])
  |> List.sort compare

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.is_finite f then Printf.sprintf "%.9g" f
  else "1e999"  (* +inf bucket bound; JSON has no infinity *)

let to_json () =
  let entry (name, v) =
    let body =
      match v with
      | Counter n -> string_of_int n
      | Gauge f -> json_float f
      | Histogram { count; sum; buckets } ->
        Printf.sprintf "{\"count\": %d, \"sum\": %s, \"buckets\": [%s]}" count
          (json_float sum)
          (String.concat ", "
             (List.map
                (fun (ub, n) -> Printf.sprintf "[%s, %d]" (json_float ub) n)
                buckets))
    in
    Printf.sprintf "\"%s\": %s" name body
  in
  "{" ^ String.concat ", " (List.map entry (snapshot ())) ^ "}"

let pp ppf () =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> Format.fprintf ppf "%-32s %12d@." name n
      | Gauge f -> Format.fprintf ppf "%-32s %12.4f@." name f
      | Histogram { count; sum; _ } ->
        Format.fprintf ppf "%-32s %12d obs, sum %.4f@." name count sum)
    (snapshot ())

let reset () =
  Mutex.protect mu (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | C c -> Atomic.set c 0
          | G g -> Atomic.set g 0.
          | H h ->
            Array.iter (fun b -> Atomic.set b 0) h.bins;
            Atomic.set h.sum 0.;
            Atomic.set h.n 0)
        table)
