(** Named counters, gauges and histograms — one publication interface for
    the whole pipeline.

    Registration ([{!counter}], [{!gauge}], [{!histogram}]) is idempotent by
    name and takes a global mutex; keep the handle (or register under
    [lazy]) rather than re-looking up on a hot path. Updates are lock-free
    (atomics) and domain-safe, and like the event stream they are normally
    gated on {!Obs.enabled}: a disabled-mode update is one atomic load and a
    branch. Long-lived servers flip {!set_always_on} so their operational
    counters move even when tracing is off.

    Reads ({!snapshot}, {!to_json}) are meant for end-of-run reporting; they
    see a consistent-enough view once updating domains have quiesced. *)

type counter

type gauge

type histogram

type exemplar = { ex_rid : string; ex_value : float; ex_ts : float }
(** A concrete traceable observation: the request id, value and wall-clock
    time of the max-valued rid-carrying observation a histogram bucket has
    seen since the last {!reset}. *)

val counter : string -> counter
(** Find-or-create. @raise Invalid_argument if [name] is already registered
    as a different metric kind. *)

val gauge : string -> gauge

val histogram : ?buckets:float array -> string -> histogram
(** [buckets] are the upper bounds of the histogram bins (an implicit
    [+inf] bin is appended); default is a base-4 exponential ladder from
    1e-6 suited to phase durations in seconds. [buckets] is ignored when
    [name] already exists. *)

val incr : counter -> unit

val add : counter -> int -> unit

val set : gauge -> float -> unit

val observe : ?rid:string -> histogram -> float -> unit
(** [observe ?rid h v] adds [v] to the histogram. When [rid] is given, the
    target bucket's exemplar slot is updated (CAS, keep-max) if [v] exceeds
    the slot's current value — so each bucket remembers the worst concrete
    request it has absorbed. *)

val exemplars : histogram -> (float * exemplar) list
(** Per-bucket exemplars: [(upper_bound, exemplar)] for every bucket that
    has one, the [+inf] bucket (bound [infinity]) last. *)

val get : counter -> int

val set_always_on : bool -> unit
(** When [true], updates flow regardless of {!Obs.enabled}. Meant for the
    serving engine, whose metrics surfaces must stay live in default runs;
    batch pipelines leave it [false] so disabled-mode updates stay free. *)

val always_on : unit -> bool

(** {2 Reporting} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;
      sum : float;
      buckets : (float * int) list;
      exemplars : (float * exemplar) list;
    }
      (** [buckets] pairs each upper bound with its cumulative-free bin
          count; the [+inf] bin is last. [count] is derived from the bins at
          read time, so a snapshot racing {!reset} can never report a
          non-zero count against all-zero buckets. [exemplars] lists the
          buckets that have one (see {!exemplars}). *)

val snapshot : unit -> (string * value) list
(** Every registered metric with its current value, sorted by name. *)

val to_json : unit -> string
(** The snapshot as one JSON object keyed by metric name: counters as
    integers, gauges as floats, histograms as
    [{"count":n,"sum":s,"buckets":[[ub,n],...]}] plus an ["exemplars"]
    array when any bucket holds one. Strict JSON: non-finite
    floats render as [null], and only finite-bound buckets are listed — the
    [+inf] bin is implicit ([count] minus the listed bins). ["{}"] when
    nothing is registered. *)

val pp : Format.formatter -> unit -> unit
(** Human-readable table of the snapshot (the [--stats] view). *)

val reset : unit -> unit
(** Zero every registered metric (registrations are kept). *)
