module Ast = Sepsat_suf.Ast
module Sset = Sepsat_util.Sset

type component = {
  goal : Ast.formula;
  n_conjuncts : int;
  class_ids : int list;
  n_consts : int;
  comp_sep_cnt : int;
  residue : bool;
}

type split = {
  components : component list;
  n_classes : int;
  n_conjuncts : int;
  normalized : Ast.formula;
  classes : Classes.t;
}

(* Conjuncts of [¬f]: push the negation through Or and double negations,
   split And spines of positive subtrees. The recursion mirrors NNF but
   stops at the first node that is neither a conjunction (in the current
   polarity) nor a negation, so conjuncts stay subformulas of [f] (possibly
   under one Not) — their atoms are exactly atoms of [f], which is what
   lets [Classes.atom_class] resolve them against the global classes. *)
let conjuncts_of_negation ctx f =
  let rec pos acc f =
    match f.Ast.fnode with
    | Ast.And (a, b) -> pos (pos acc a) b
    | Ast.Not g -> neg acc g
    | Ast.Ftrue -> acc
    | _ -> f :: acc
  and neg acc f =
    match f.Ast.fnode with
    | Ast.Or (a, b) -> neg (neg acc a) b
    | Ast.Not g -> pos acc g
    | Ast.Ffalse -> acc
    | _ -> Ast.not_ ctx f :: acc
  in
  List.rev (neg [] f)

(* Symbols through which a conjunct can interact with another: the
   equivalence classes of its integer atoms and its symbolic Boolean
   constants. Pure-p atoms touch no class — the p-constants' values are
   fixed identically in every component, so they carry nothing across. *)
type key = Class of int | Bool of string

let keys_of_conjunct classes conj =
  let ks = ref [] in
  List.iter
    (fun atom ->
      match Classes.atom_class classes atom with
      | Some ci -> ks := Class ci.Classes.id :: !ks
      | None -> ())
    (Ast.atoms conj);
  List.iter
    (fun (name, arity) -> if arity = 0 then ks := Bool name :: !ks)
    (Ast.predicates conj);
  List.sort_uniq compare !ks

(* Small union-find over an index space assigned on first sight. *)
module Uf = struct
  type t = { parent : int array; rank : int array }

  let create n = { parent = Array.init n Fun.id; rank = Array.make n 0 }

  let rec find t i =
    let p = t.parent.(i) in
    if p = i then i
    else begin
      let r = find t p in
      t.parent.(i) <- r;
      r
    end

  let union t i j =
    let ri = find t i and rj = find t j in
    if ri <> rj then
      if t.rank.(ri) < t.rank.(rj) then t.parent.(ri) <- rj
      else if t.rank.(ri) > t.rank.(rj) then t.parent.(rj) <- ri
      else begin
        t.parent.(rj) <- ri;
        t.rank.(ri) <- t.rank.(ri) + 1
      end
end

let split ctx ~p_consts f =
  if Ast.has_applications f then
    invalid_arg "Component.split: formula has uninterpreted applications";
  let nf = Normal.normalize ctx f in
  let classes = Classes.build ~p_consts nf in
  let conjs = conjuncts_of_negation ctx nf in
  let conj_keys = List.map (keys_of_conjunct classes) conjs in
  (* Index every distinct key, then union the keys of each conjunct. *)
  let key_ix = Hashtbl.create 16 in
  let n_keys = ref 0 in
  let ix_of k =
    match Hashtbl.find_opt key_ix k with
    | Some i -> i
    | None ->
        let i = !n_keys in
        incr n_keys;
        Hashtbl.add key_ix k i;
        i
  in
  List.iter (fun ks -> List.iter (fun k -> ignore (ix_of k)) ks) conj_keys;
  let uf = Uf.create (max 1 !n_keys) in
  List.iter
    (fun ks ->
      match List.map ix_of ks with
      | [] -> ()
      | i0 :: rest -> List.iter (fun i -> Uf.union uf i0 i) rest)
    conj_keys;
  (* Bucket conjuncts by the root of their first key; keyless conjuncts
     form the residue. Buckets keep conjunct order, so each goal is the
     original conjunction restricted to its group. *)
  let buckets : (int, Ast.formula list) Hashtbl.t = Hashtbl.create 8 in
  let bucket_order = ref [] in
  let residue_conjs = ref [] in
  List.iter2
    (fun conj ks ->
      match ks with
      | [] -> residue_conjs := conj :: !residue_conjs
      | k :: _ ->
          let r = Uf.find uf (ix_of k) in
          (match Hashtbl.find_opt buckets r with
          | Some cs -> Hashtbl.replace buckets r (conj :: cs)
          | None ->
              bucket_order := r :: !bucket_order;
              Hashtbl.add buckets r [ conj ]))
    conjs conj_keys;
  (* Per-root class ids, from the key table rather than the buckets so a
     class joined only through a shared Boolean still counts once. *)
  let root_classes : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter
    (fun k i ->
      match k with
      | Bool _ -> ()
      | Class cid ->
          let r = Uf.find uf i in
          let prev = Option.value ~default:[] (Hashtbl.find_opt root_classes r) in
          Hashtbl.replace root_classes r (cid :: prev))
    key_ix;
  let infos = Classes.classes classes in
  let mk_component r =
    let conjs = List.rev (Hashtbl.find buckets r) in
    let class_ids =
      List.sort_uniq compare
        (Option.value ~default:[] (Hashtbl.find_opt root_classes r))
    in
    let n_consts, comp_sep_cnt =
      List.fold_left
        (fun (nc, sc) cid ->
          let ci = infos.(cid) in
          (nc + List.length ci.Classes.members, sc + ci.Classes.sep_cnt))
        (0, 0) class_ids
    in
    {
      goal = Ast.and_list ctx conjs;
      n_conjuncts = List.length conjs;
      class_ids;
      n_consts;
      comp_sep_cnt;
      residue = false;
    }
  in
  let components = List.rev_map mk_component !bucket_order in
  let components =
    List.sort
      (fun a b ->
        let c = compare b.comp_sep_cnt a.comp_sep_cnt in
        if c <> 0 then c
        else
          let c = compare b.n_conjuncts a.n_conjuncts in
          if c <> 0 then c else compare a.class_ids b.class_ids)
      components
  in
  let components =
    match !residue_conjs with
    | [] -> components
    | rs ->
        components
        @ [
            {
              goal = Ast.and_list ctx (List.rev rs);
              n_conjuncts = List.length rs;
              class_ids = [];
              n_consts = 0;
              comp_sep_cnt = 0;
              residue = true;
            };
          ]
  in
  (* An empty negation (¬f ≡ true) still yields one trivially-true residue
     component so downstream pools have something to decide. *)
  let components =
    match components with
    | [] ->
        [
          {
            goal = Ast.tru ctx;
            n_conjuncts = 0;
            class_ids = [];
            n_consts = 0;
            comp_sep_cnt = 0;
            residue = true;
          };
        ]
    | cs -> cs
  in
  {
    components;
    n_classes = Array.length infos;
    n_conjuncts = List.length conjs;
    normalized = nf;
    classes;
  }
