(** Conjunct-level decomposition of the negated validity goal into
    independent components (the structure-parallel split of ROADMAP item 3).

    Validity of an application-free formula [f] is unsatisfiability of [¬f].
    After {!Normal.normalize}, [¬f] flattens into a conjunction of goal
    conjuncts; two conjuncts interact only through the symbols they share —
    the g-constant equivalence classes of {!Classes} and the symbolic
    Boolean constants. p-constants do NOT connect conjuncts: by positive
    equality they take the same fixed maximally diverse values in every
    satisfiability check, so a shared p-constant never carries information
    between components.

    Grouping conjuncts by a union-find over their touched classes and
    Boolean constants therefore yields sub-formulas [g_1 ∧ ... ∧ g_n = ¬f]
    over pairwise disjoint free symbols (p-constants aside): [¬f] is
    satisfiable iff every [g_i] is, and per-component models merge into one
    model of [¬f]. Conjuncts touching nothing partitionable (ground facts,
    pure-p atoms) gather into a single residue component. *)

module Ast = Sepsat_suf.Ast
module Sset = Sepsat_util.Sset

type component = {
  goal : Ast.formula;
      (** conjunction of this component's goal conjuncts — a conjunctive
          factor of [¬f]; the component is decided by checking [goal]'s
          satisfiability, e.g. by running the standard validity pipeline on
          [¬goal] *)
  n_conjuncts : int;
  class_ids : int list;  (** ids into {!Classes.classes}, sorted *)
  n_consts : int;  (** g-constants owned by those classes *)
  comp_sep_cnt : int;  (** sum of the owned classes' [SepCnt] *)
  residue : bool;  (** the class-free leftover component *)
}

type split = {
  components : component list;
      (** heaviest ([comp_sep_cnt], then conjunct count) first, so a work
          pool starts the longest poles earliest; the residue, if any, last *)
  n_classes : int;  (** classes of the whole formula *)
  n_conjuncts : int;
  normalized : Ast.formula;  (** [Normal.normalize] of the input *)
  classes : Classes.t;  (** classes of [normalized], global ids *)
}

val split : Ast.ctx -> p_consts:Sset.t -> Ast.formula -> split
(** [split ctx ~p_consts f] decomposes the validity goal of [f]. The formula
    must be application-free (the output of {!Sepsat_suf.Elim}); it is
    normalized here. The conjunction of all component goals is logically
    equivalent to [¬ normalized].
    @raise Invalid_argument if the formula contains applications. *)

val conjuncts_of_negation : Ast.ctx -> Ast.formula -> Ast.formula list
(** The flattening [split] groups: conjuncts of [¬f], obtained by pushing
    the negation through [Or] and double negations and splitting [And]
    spines. Exposed for tests. *)
