(** CDCL Boolean satisfiability solver.

    A from-scratch conflict-driven clause-learning solver in the Chaff/MiniSat
    family, standing in for the zChaff 2001.2.17 engine used by the paper:
    two-watched-literal propagation, VSIDS branching with phase saving,
    first-UIP clause learning with basic self-subsumption minimization,
    activity-driven learnt-clause deletion and Luby restarts.

    The solver is incremental in the MiniSat sense: clauses may be added
    between [solve] calls (the solver backtracks to the root level first),
    [solve ~assumptions] decides satisfiability under a temporary conjunction
    of literals without committing them, and learned clauses, variable
    activities and saved phases persist across calls. The lazy CVC-style
    refinement loop and the hybrid threshold sweep are built on this. *)

type t

type result =
  | Sat
  | Unsat
  | Unknown  (** conflict budget or deadline exhausted, or stop flag raised *)

type stats = {
  conflicts : int;  (** conflict clauses learned, the paper's Fig. 2 metric *)
  decisions : int;
  propagations : int;
  restarts : int;
  clauses : int;  (** problem clauses currently attached *)
  learnts : int;  (** learnt clauses currently attached *)
  max_vars : int;
  eliminated : int;
      (** clauses dropped at [add_clause] time (tautological or already
          satisfied at the root level) *)
  simp_rounds : int;  (** simplification rounds run (pre- and inprocessing) *)
  simp_subsumed : int;  (** clauses removed by backward subsumption *)
  simp_strengthened : int;  (** clauses shrunk by self-subsumption *)
  simp_vars_eliminated : int;  (** variables removed by bounded elimination *)
  simp_blocked : int;  (** clauses removed by blocked-clause elimination *)
  simp_restored : int;
      (** extension-stack clauses restored because a later increment touched
          their variables *)
}

val create : unit -> t

val set_simplify : t -> bool -> unit
(** Enables SatELite-style pre/inprocessing (subsumption, self-subsumption,
    bounded variable elimination, blocked-clause elimination) for subsequent
    [solve] calls: a preprocessing pass runs when new clauses are pending and
    further rounds are scheduled between restarts. Off by default. Sound with
    proofs (the DRUP trace stays checkable) and with the incremental API:
    assumption variables are frozen, and clauses parked by elimination are
    restored automatically when later additions touch their variables. *)

val simplify : t -> unit
(** Runs a full simplification pass immediately (regardless of the
    [set_simplify] setting). Mainly for tests and tooling; [solve] schedules
    simplification itself when enabled. *)

val freeze : t -> int -> unit
(** Marks a variable untouchable by the simplifier (never eliminated, never a
    blocking witness). [solve] freezes assumption variables automatically;
    freeze manually when a variable's semantics must survive, e.g. selector
    variables looked up in models without being assumed every call. *)

val is_eliminated : t -> int -> bool
(** Whether the simplifier currently has this variable eliminated. Eliminated
    variables still receive model values (via the reconstruction stack) but
    are never decided on. *)

val start_proof : t -> Proof.t
(** Enables DRUP proof logging (from a fresh solver, before any clause is
    added) and returns the trace being built; verify it afterwards with
    {!Drup_check}. Logging costs memory proportional to the learned-clause
    traffic. *)

val new_var : t -> int
(** Allocates the next variable; returns its index (dense, from 0). *)

val nvars : t -> int

val add_clause : t -> Lit.t list -> unit
(** Adds a clause. Literals are sorted and deduplicated; tautologies and
    clauses containing a root-level-true literal are dropped (counted in
    [stats.eliminated]); root-level-false literals are removed; an empty or
    root-contradicting clause makes the instance unsatisfiable. May be called
    between [solve] calls. *)

val solve :
  ?deadline:Sepsat_util.Deadline.t ->
  ?conflict_budget:int ->
  ?assumptions:Lit.t list ->
  t ->
  result
(** Decides satisfiability of the clause database conjoined with the
    [assumptions] literals. Assumptions are placed as pseudo-decisions below
    the heuristic search, MiniSat-style, and are retracted when the call
    returns — they do not change the database, so the solver remains usable
    whatever the result. [Unsat] under non-empty assumptions means the
    database together with {!unsat_core} (a subset of the assumptions) is
    unsatisfiable; the database alone may still be satisfiable. *)

val unsat_core : t -> Lit.t list
(** After [solve ~assumptions] returned [Unsat]: the failed-assumption core —
    a subset of the assumptions whose conjunction with the clause database is
    unsatisfiable. Empty when the database is unsatisfiable on its own.
    Meaningless after any other result. *)

val set_stop : t -> bool Atomic.t -> unit
(** Installs a shared cancellation flag. The propagation loop polls it (on a
    256-propagation mask) and [solve] returns [Unknown] promptly once it is
    set; the portfolio racer uses one flag across all competing solvers. *)

val interrupted : t -> bool
(** Whether the installed stop flag is currently set. *)

val value : t -> Lit.t -> bool
(** Model value of a literal after [solve] returned [Sat].
    @raise Invalid_argument if no model is available. *)

val model : t -> bool array
(** Model as an array indexed by variable, after [Sat].
    @raise Invalid_argument if no model is available. *)

val warm_start : t -> bool array -> unit
(** Seeds the saved branching phases from a model of a related instance (for
    example the winning portfolio member's), so the next [solve] call
    re-converges on a nearby assignment. Extra entries are ignored. *)

val export_cnf : t -> int * Lit.t list list
(** [(nvars, clauses)]: the active problem clauses plus the root-level unit
    facts — equisatisfiable with everything added so far. Learnt clauses are
    not included. Feed to {!Dimacs.print} via its [cnf] record for
    interchange with external solvers. *)

val top_vars : t -> int -> int list
(** [top_vars s k]: up to [k] unassigned, uneliminated variables in
    decreasing VSIDS-activity order (problem-clause occurrence count breaks
    ties). After a short budgeted [solve] probe this ranks the most
    conflict-implicated variables — the cube-and-conquer splitter branches
    on them. Root-level assignments and simplifier-eliminated variables are
    excluded, so every returned variable is a sound assumption candidate. *)

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
