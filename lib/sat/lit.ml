type t = int [@@ocaml.immediate]

let[@inline] make v sign =
  assert (v >= 0);
  (2 * v) + if sign then 0 else 1

let[@inline] pos v = make v true

let[@inline] neg_of v = make v false

let[@inline] var l = l lsr 1

let[@inline] sign l = l land 1 = 0

let[@inline] neg l = l lxor 1

let[@inline] to_int l = l

let[@inline] of_int i =
  assert (i >= 0);
  i

let to_dimacs l = if sign l then var l + 1 else -(var l + 1)

let of_dimacs i =
  if i = 0 then invalid_arg "Lit.of_dimacs: 0";
  if i > 0 then pos (i - 1) else neg_of (-i - 1)

let compare = Int.compare

let equal = Int.equal

let pp ppf l = Format.fprintf ppf "%s%d" (if sign l then "" else "-") (var l + 1)
