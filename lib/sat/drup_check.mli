(** Independent DRUP proof checker.

    Replays a {!Proof} trace with a self-contained unit-propagation engine:
    every [Learned] clause must have the RUP property (asserting its negation
    and propagating over the active database yields a conflict), and the
    trace must derive the empty clause. The engine shares no code with the
    CDCL solver, so a successful check certifies an UNSAT answer without
    trusting the solver's search, learning, or simplification.

    Deletions of non-unit clauses are honoured; unit deletions are ignored
    (the standard lenient DRUP treatment — every retained clause is a logical
    consequence of the input, so the final verdict is unaffected). *)

type result =
  | Certified  (** every step RUP-valid and the empty clause derived *)
  | Incomplete  (** steps valid, but no empty clause: proves nothing *)
  | Bogus of string
      (** some learned clause is not RUP; the message carries the 1-based
          index of the offending step *)

val check : Proof.step list -> result

val certified : Proof.t -> bool
(** [check (Proof.steps p) = Certified]. *)
