(** SatELite-style pre/inprocessing over the {!Db} clause arena: backward
    subsumption, self-subsumption strengthening, bounded variable elimination
    and blocked-clause elimination.

    The module mutates the shared solver state in place and keeps three
    invariants the rest of the system depends on:

    - DRUP soundness: every clause it adds (resolvents, strengthenings) is
      logged as a RUP addition before anything it replaces is dropped, and
      clauses parked on the model-extension stack are never logged as deleted,
      so the proof checker's database stays a superset of the live one.
    - Model totality: every removal that can unsatisfy a model pushes a
      witness entry onto {!Db}'s extension stack; [Db.extend_model] replays it.
    - Incremental safety: frozen variables (assumptions, selectors, restored
      variables) are never chosen for elimination or as blocking literals. *)

val simplify : Db.t -> deadline:Sepsat_util.Deadline.t -> max_rounds:int -> unit
(** Run up to [max_rounds] simplification rounds at decision level 0, then
    rebuild the watch lists and propagate to quiescence. No-op unless the
    trail is at the root. Respects the deadline and the stop flag, aborting
    between rewrites with the database consistent. *)
