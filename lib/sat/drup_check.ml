module Vec = Sepsat_util.Vec

type result = Certified | Incomplete | Bogus of string

(* A minimal two-watched-literal propagation engine, independent of the CDCL
   solver. Values: 0 unassigned, 1 true, -1 false. *)

type clause = { lits : Lit.t array; mutable dead : bool }

type engine = {
  mutable assigns : int array;  (* per variable *)
  watches : clause Vec.t Vec.t;  (* per literal *)
  trail : Lit.t Vec.t;
  mutable permanent : int;  (* trail prefix that is never rolled back *)
  mutable contradiction : bool;  (* empty clause follows by propagation *)
  by_key : (string, clause list ref) Hashtbl.t;  (* for deletions *)
}

let create () =
  {
    assigns = Array.make 16 0;
    watches = Vec.create ~dummy:(Vec.create ~dummy:{ lits = [||]; dead = true });
    trail = Vec.create ~dummy:(Lit.pos 0);
    permanent = 0;
    contradiction = false;
    by_key = Hashtbl.create 256;
  }

let ensure_var e v =
  if v >= Array.length e.assigns then begin
    let a = Array.make (max (v + 1) (2 * Array.length e.assigns)) 0 in
    Array.blit e.assigns 0 a 0 (Array.length e.assigns);
    e.assigns <- a
  end;
  while Vec.size e.watches <= (2 * v) + 1 do
    Vec.push e.watches (Vec.create ~dummy:{ lits = [||]; dead = true })
  done

let value e l =
  let a = e.assigns.(Lit.var l) in
  if Lit.sign l then a else -a

let assign e l =
  e.assigns.(Lit.var l) <- (if Lit.sign l then 1 else -1);
  Vec.push e.trail l

let key lits =
  List.sort_uniq Lit.compare lits
  |> List.map (fun l -> string_of_int (Lit.to_int l))
  |> String.concat ","

(* Propagate from [from] onwards; true = no conflict. *)
let propagate e ~from =
  let qhead = ref from in
  let conflict = ref false in
  while (not !conflict) && !qhead < Vec.size e.trail do
    let p = Vec.get e.trail !qhead in
    incr qhead;
    let ws = Vec.get e.watches (Lit.to_int p) in
    (* clauses watching (neg p), registered under p *)
    let i = ref 0 in
    let j = ref 0 in
    let n = Vec.size ws in
    while !i < n do
      let c = Vec.get ws !i in
      incr i;
      if c.dead then () (* drop lazily *)
      else begin
        let false_lit = Lit.neg p in
        if Lit.equal c.lits.(0) false_lit then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- false_lit
        end;
        let first = c.lits.(0) in
        if value e first = 1 then begin
          Vec.set ws !j c;
          incr j
        end
        else begin
          let len = Array.length c.lits in
          let k = ref 2 in
          while !k < len && value e c.lits.(!k) = -1 do
            incr k
          done;
          if !k < len then begin
            c.lits.(1) <- c.lits.(!k);
            c.lits.(!k) <- false_lit;
            Vec.push (Vec.get e.watches (Lit.to_int (Lit.neg c.lits.(1)))) c
          end
          else if value e first = -1 then begin
            conflict := true;
            while !i < n do
              Vec.set ws !j (Vec.get ws !i);
              incr j;
              incr i
            done;
            Vec.set ws !j c;
            incr j
          end
          else begin
            assign e first;
            Vec.set ws !j c;
            incr j
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  not !conflict

(* Roll the trail back to [mark], unassigning. *)
let rollback e mark =
  for i = Vec.size e.trail - 1 downto mark do
    e.assigns.(Lit.var (Vec.get e.trail i)) <- 0
  done;
  Vec.shrink e.trail mark

(* Add a clause permanently (after the containing step was validated). *)
let add_clause e lits =
  if not e.contradiction then begin
    let lits = List.sort_uniq Lit.compare lits in
    List.iter (fun l -> ensure_var e (Lit.var l)) lits;
    let taut = List.exists (fun l -> List.exists (Lit.equal (Lit.neg l)) lits) lits in
    if not taut then
      match lits with
      | [] -> e.contradiction <- true
      | [ l ] -> (
        match value e l with
        | 1 -> ()
        | -1 -> e.contradiction <- true
        | _ ->
          assign e l;
          e.permanent <- Vec.size e.trail;
          if not (propagate e ~from:(e.permanent - 1)) then
            e.contradiction <- true
          else e.permanent <- Vec.size e.trail)
      | _ :: _ :: _ ->
        let c = { lits = Array.of_list lits; dead = false } in
        (* Prefer watching unassigned/true literals so the invariant holds
           under the current permanent assignment. *)
        let arr = c.lits in
        let swap a b =
          let t = arr.(a) in
          arr.(a) <- arr.(b);
          arr.(b) <- t
        in
        let pick into from_ =
          if value e arr.(into) = -1 then begin
            let k = ref from_ in
            while !k < Array.length arr && value e arr.(!k) = -1 do
              incr k
            done;
            if !k < Array.length arr then swap into !k
          end
        in
        pick 0 2;
        pick 1 2;
        Vec.push (Vec.get e.watches (Lit.to_int (Lit.neg arr.(0)))) c;
        Vec.push (Vec.get e.watches (Lit.to_int (Lit.neg arr.(1)))) c;
        let entry =
          match Hashtbl.find_opt e.by_key (key lits) with
          | Some r -> r
          | None ->
            let r = ref [] in
            Hashtbl.add e.by_key (key lits) r;
            r
        in
        entry := c :: !entry;
        (* The clause may be unit or false under the permanent trail. *)
        if value e arr.(0) = -1 && value e arr.(1) = -1 then
          e.contradiction <- true
        else if value e arr.(1) = -1 && value e arr.(0) = 0 then begin
          assign e arr.(0);
          if not (propagate e ~from:(Vec.size e.trail - 1)) then
            e.contradiction <- true
          else e.permanent <- Vec.size e.trail
        end
  end

let delete_clause e lits =
  let lits = List.sort_uniq Lit.compare lits in
  match lits with
  | [] | [ _ ] -> () (* lenient: unit/empty deletions are ignored *)
  | _ -> (
    match Hashtbl.find_opt e.by_key (key lits) with
    | Some ({ contents = c :: rest } as r) ->
      c.dead <- true;
      r := rest
    | Some { contents = [] } | None -> ())

(* RUP check: asserting the negation of every literal of [lits] and
   propagating must conflict. *)
let rup e lits =
  if e.contradiction then true
  else begin
    let mark = Vec.size e.trail in
    let lits = List.sort_uniq Lit.compare lits in
    List.iter (fun l -> ensure_var e (Lit.var l)) lits;
    let rec assume = function
      | [] -> true (* no immediate contradiction among the assumptions *)
      | l :: rest -> (
        match value e l with
        | 1 -> false (* l already true: ¬l contradicts immediately *)
        | -1 -> assume rest
        | _ ->
          assign e (Lit.neg l);
          assume rest)
    in
    let no_immediate = assume lits in
    let ok = (not no_immediate) || not (propagate e ~from:mark) in
    rollback e mark;
    ok
  end

let check steps =
  let e = create () in
  let empty_seen = ref false in
  let rec go i = function
    | [] ->
      if !empty_seen || e.contradiction then Certified else Incomplete
    | step :: rest -> (
      match step with
      | Proof.Input c ->
        add_clause e c;
        go (i + 1) rest
      | Proof.Deleted c ->
        delete_clause e c;
        go (i + 1) rest
      | Proof.Learned c ->
        if not (rup e c) then
          Bogus
            (Format.asprintf "step %d: clause {%a} is not RUP" i
               (Format.pp_print_list
                  ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
                  Lit.pp)
               c)
        else begin
          if c = [] then empty_seen := true;
          add_clause e c;
          go (i + 1) rest
        end)
  in
  go 1 steps

let certified p = check (Proof.steps p) = Certified
