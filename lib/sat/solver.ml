module Vec = Sepsat_util.Vec
module Deadline = Sepsat_util.Deadline
module Obs = Sepsat_obs.Obs
module Metrics = Sepsat_obs.Metrics
module Progress = Sepsat_obs.Progress

(* Truth values: 0 = undefined, 1 = true, -1 = false. *)

type clause = {
  mutable lits : Lit.t array;
  learnt : bool;
  mutable activity : float;
}

type result = Sat | Unsat | Unknown

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  clauses : int;
  learnts : int;
  max_vars : int;
  eliminated : int;
}

let dummy_lit = Lit.pos 0

let dummy_clause = { lits = [||]; learnt = false; activity = 0. }

type t = {
  (* Clause database *)
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  watches : clause Vec.t Vec.t;  (* literal -> clauses watching it *)
  (* Assignment *)
  assigns : int Vec.t;  (* var -> -1/0/1 *)
  level : int Vec.t;
  reason : clause Vec.t;  (* dummy_clause = no reason *)
  trail : Lit.t Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  (* Branching *)
  var_act : float Vec.t;
  polarity : bool Vec.t;
  heap : int Vec.t;
  heap_index : int Vec.t;  (* var -> position in heap, -1 if absent *)
  mutable var_inc : float;
  mutable cla_inc : float;
  (* Analysis scratch *)
  seen : bool Vec.t;
  (* Incremental interface *)
  assumptions : Lit.t Vec.t;  (* placed as pseudo-decisions below the search *)
  mutable conflict_core : Lit.t list;  (* failed assumptions of the last solve *)
  mutable stop : bool Atomic.t;  (* external cancellation (portfolio racing) *)
  (* State *)
  mutable ok : bool;
  mutable model : bool array option;
  mutable proof : Proof.t option;
  (* Statistics *)
  mutable n_conflicts : int;
  mutable n_decisions : int;
  mutable n_props : int;
  mutable n_restarts : int;
  mutable n_eliminated : int;
  mutable solve_started : float;  (* wall clock at the current solve's start *)
}

let var_decay = 1. /. 0.95

let cla_decay = 1. /. 0.999

let create () =
  {
    clauses = Vec.create ~dummy:dummy_clause;
    learnts = Vec.create ~dummy:dummy_clause;
    watches = Vec.create ~dummy:(Vec.create ~dummy:dummy_clause);
    assigns = Vec.create ~dummy:0;
    level = Vec.create ~dummy:0;
    reason = Vec.create ~dummy:dummy_clause;
    trail = Vec.create ~dummy:dummy_lit;
    trail_lim = Vec.create ~dummy:0;
    qhead = 0;
    var_act = Vec.create ~dummy:0.;
    polarity = Vec.create ~dummy:false;
    heap = Vec.create ~dummy:(-1);
    heap_index = Vec.create ~dummy:(-1);
    var_inc = 1.;
    cla_inc = 1.;
    seen = Vec.create ~dummy:false;
    assumptions = Vec.create ~dummy:dummy_lit;
    conflict_core = [];
    stop = Atomic.make false;
    ok = true;
    model = None;
    proof = None;
    n_conflicts = 0;
    n_decisions = 0;
    n_props = 0;
    n_restarts = 0;
    n_eliminated = 0;
    solve_started = 0.;
  }

let set_stop s flag = s.stop <- flag

let interrupted s = Atomic.get s.stop

let start_proof s =
  let p = Proof.create () in
  s.proof <- Some p;
  p

let log_learned s lits =
  match s.proof with None -> () | Some p -> Proof.learned p lits

let log_input s lits =
  match s.proof with None -> () | Some p -> Proof.input p lits

let log_deleted s lits =
  match s.proof with None -> () | Some p -> Proof.deleted p lits

let nvars s = Vec.size s.assigns

let decision_level s = Vec.size s.trail_lim

(* Value of a literal under the current partial assignment. *)
let value s l =
  let a = Vec.get s.assigns (Lit.var l) in
  if Lit.sign l then a else -a

(* -- Variable order heap (max-heap on activity) ----------------------- *)

let heap_lt s v w = Vec.get s.var_act v > Vec.get s.var_act w

let heap_percolate_up s i =
  let x = Vec.get s.heap i in
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let px = Vec.get s.heap p in
    if heap_lt s x px then begin
      Vec.set s.heap !i px;
      Vec.set s.heap_index px !i;
      i := p
    end
    else continue := false
  done;
  Vec.set s.heap !i x;
  Vec.set s.heap_index x !i

let heap_percolate_down s i =
  let x = Vec.get s.heap i in
  let sz = Vec.size s.heap in
  let i = ref i in
  let continue = ref true in
  while !continue && (2 * !i) + 1 < sz do
    let l = (2 * !i) + 1 in
    let r = l + 1 in
    let child =
      if r < sz && heap_lt s (Vec.get s.heap r) (Vec.get s.heap l) then r
      else l
    in
    let cx = Vec.get s.heap child in
    if heap_lt s cx x then begin
      Vec.set s.heap !i cx;
      Vec.set s.heap_index cx !i;
      i := child
    end
    else continue := false
  done;
  Vec.set s.heap !i x;
  Vec.set s.heap_index x !i

let heap_in s v = Vec.get s.heap_index v >= 0

let heap_insert s v =
  if not (heap_in s v) then begin
    Vec.push s.heap v;
    Vec.set s.heap_index v (Vec.size s.heap - 1);
    heap_percolate_up s (Vec.size s.heap - 1)
  end

let heap_pop s =
  let x = Vec.get s.heap 0 in
  let last = Vec.pop s.heap in
  Vec.set s.heap_index x (-1);
  if Vec.size s.heap > 0 then begin
    Vec.set s.heap 0 last;
    Vec.set s.heap_index last 0;
    heap_percolate_down s 0
  end;
  x

let heap_bump s v = if heap_in s v then heap_percolate_up s (Vec.get s.heap_index v)

(* -- Activities -------------------------------------------------------- *)

let var_bump s v =
  Vec.set s.var_act v (Vec.get s.var_act v +. s.var_inc);
  if Vec.get s.var_act v > 1e100 then begin
    for u = 0 to nvars s - 1 do
      Vec.set s.var_act u (Vec.get s.var_act u *. 1e-100)
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  heap_bump s v

let var_decay_activity s = s.var_inc <- s.var_inc *. var_decay

let cla_bump s c =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun cl -> cl.activity <- cl.activity *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let cla_decay_activity s = s.cla_inc <- s.cla_inc *. cla_decay

(* -- Variables --------------------------------------------------------- *)

let new_var s =
  let v = nvars s in
  Vec.push s.assigns 0;
  Vec.push s.level 0;
  Vec.push s.reason dummy_clause;
  Vec.push s.var_act 0.;
  Vec.push s.polarity false;
  Vec.push s.seen false;
  Vec.push s.heap_index (-1);
  Vec.push s.watches (Vec.create ~dummy:dummy_clause);
  Vec.push s.watches (Vec.create ~dummy:dummy_clause);
  heap_insert s v;
  v

(* -- Assignment trail -------------------------------------------------- *)

let unchecked_enqueue s p reason =
  assert (value s p = 0);
  let v = Lit.var p in
  Vec.set s.assigns v (if Lit.sign p then 1 else -1);
  Vec.set s.level v (decision_level s);
  Vec.set s.reason v reason;
  Vec.push s.trail p

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let p = Vec.get s.trail i in
      let v = Lit.var p in
      Vec.set s.assigns v 0;
      Vec.set s.polarity v (Lit.sign p);
      Vec.set s.reason v dummy_clause;
      heap_insert s v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- Vec.size s.trail
  end

(* -- Clause attachment -------------------------------------------------- *)

let attach s c =
  assert (Array.length c.lits >= 2);
  Vec.push (Vec.get s.watches (Lit.to_int (Lit.neg c.lits.(0)))) c;
  Vec.push (Vec.get s.watches (Lit.to_int (Lit.neg c.lits.(1)))) c

let detach s c =
  let remove l =
    Vec.remove_if (fun c' -> c' == c) (Vec.get s.watches (Lit.to_int (Lit.neg l)))
  in
  remove c.lits.(0);
  remove c.lits.(1)

(* -- Propagation -------------------------------------------------------- *)

(* Visits the watch list of the literal [neg p] after [p] became true.
   Returns the conflicting clause, if any. *)
let propagate s =
  let confl = ref dummy_clause in
  let stopped = ref false in
  while (not !stopped) && !confl == dummy_clause && s.qhead < Vec.size s.trail do
    (* Cheap cancellation poll: a masked atomic load keeps the hot loop hot
       while letting a portfolio peer abort a propagation-heavy search.
       Breaking before the queue head advances keeps the state consistent. *)
    if s.n_props land 255 = 0 && Atomic.get s.stop then stopped := true
    else begin
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.n_props <- s.n_props + 1;
    let false_lit = Lit.neg p in
    let ws = Vec.get s.watches (Lit.to_int p) in
    (* [ws] holds clauses in which [false_lit] is watched: a clause watching
       literal l is registered under index (neg l). *)
    let i = ref 0 in
    let j = ref 0 in
    let n = Vec.size ws in
    while !i < n do
      let c = Vec.get ws !i in
      incr i;
      (* Make sure the false literal is at position 1. *)
      if Lit.equal c.lits.(0) false_lit then begin
        c.lits.(0) <- c.lits.(1);
        c.lits.(1) <- false_lit
      end;
      let first = c.lits.(0) in
      if value s first = 1 then begin
        (* Clause already satisfied; keep the watch. *)
        Vec.set ws !j c;
        incr j
      end
      else begin
        (* Look for a new literal to watch. *)
        let len = Array.length c.lits in
        let k = ref 2 in
        while !k < len && value s c.lits.(!k) = -1 do
          incr k
        done;
        if !k < len then begin
          c.lits.(1) <- c.lits.(!k);
          c.lits.(!k) <- false_lit;
          Vec.push (Vec.get s.watches (Lit.to_int (Lit.neg c.lits.(1)))) c
          (* watch moved: do not keep in this list *)
        end
        else if value s first = -1 then begin
          (* Conflict: keep remaining watches and stop. *)
          confl := c;
          s.qhead <- Vec.size s.trail;
          while !i < n do
            Vec.set ws !j (Vec.get ws !i);
            incr j;
            incr i
          done;
          Vec.set ws !j c;
          incr j
        end
        else begin
          unchecked_enqueue s first c;
          Vec.set ws !j c;
          incr j
        end
      end
    done;
    Vec.shrink ws !j
    end
  done;
  if !confl == dummy_clause then None else Some !confl

(* -- Conflict analysis (first UIP) -------------------------------------- *)

let litredundant s l =
  (* Basic minimization: a literal is redundant if it has a reason clause all
     of whose other literals are already seen or at level 0. *)
  let c = Vec.get s.reason (Lit.var l) in
  c != dummy_clause
  && Array.for_all
       (fun q ->
         Lit.var q = Lit.var l
         || Vec.get s.seen (Lit.var q)
         || Vec.get s.level (Lit.var q) = 0)
       c.lits

let analyze s confl =
  let out = Vec.create ~dummy:dummy_lit in
  Vec.push out dummy_lit (* slot for the asserting literal *);
  let to_clear = Vec.create ~dummy:0 in
  let path = ref 0 in
  let p = ref dummy_lit in
  let first = ref true in
  let c = ref confl in
  let index = ref (Vec.size s.trail - 1) in
  let continue = ref true in
  while !continue do
    if !c.learnt then cla_bump s !c;
    let start = if !first then 0 else 1 in
    for k = start to Array.length !c.lits - 1 do
      let q = !c.lits.(k) in
      let v = Lit.var q in
      if (not (Vec.get s.seen v)) && Vec.get s.level v > 0 then begin
        var_bump s v;
        Vec.set s.seen v true;
        Vec.push to_clear v;
        if Vec.get s.level v >= decision_level s then incr path
        else Vec.push out q
      end
    done;
    (* Select the next trail literal to expand. *)
    while not (Vec.get s.seen (Lit.var (Vec.get s.trail !index))) do
      decr index
    done;
    p := Vec.get s.trail !index;
    decr index;
    c := Vec.get s.reason (Lit.var !p);
    Vec.set s.seen (Lit.var !p) false;
    decr path;
    first := false;
    if !path <= 0 then continue := false
  done;
  Vec.set out 0 (Lit.neg !p);
  (* Minimize. *)
  let keep = Vec.create ~dummy:dummy_lit in
  Vec.push keep (Vec.get out 0);
  for k = 1 to Vec.size out - 1 do
    let l = Vec.get out k in
    if not (litredundant s l) then Vec.push keep l
  done;
  (* Find backtrack level: highest level among keep[1..]. *)
  let btlevel = ref 0 in
  if Vec.size keep > 1 then begin
    let maxi = ref 1 in
    for k = 2 to Vec.size keep - 1 do
      if Vec.get s.level (Lit.var (Vec.get keep k))
         > Vec.get s.level (Lit.var (Vec.get keep !maxi))
      then maxi := k
    done;
    btlevel := Vec.get s.level (Lit.var (Vec.get keep !maxi));
    Vec.swap keep 1 !maxi
  end;
  Vec.iter (fun v -> Vec.set s.seen v false) to_clear;
  (Vec.to_list keep, !btlevel)

(* -- Final-conflict analysis (failed-assumption core) -------------------- *)

(* [p] is an assumption found false at placement time. Walks the implication
   graph backwards from [p]; every pseudo-decision reached is an assumption
   that participated in falsifying [p]. Returns the failed core: a subset
   [core] of the current assumptions (including [p]) such that the clause
   database conjoined with [core] is unsatisfiable. *)
let analyze_final s p =
  let core = ref [ p ] in
  if decision_level s > 0 && Vec.get s.level (Lit.var p) > 0 then begin
    Vec.set s.seen (Lit.var p) true;
    let bound = Vec.get s.trail_lim 0 in
    for i = Vec.size s.trail - 1 downto bound do
      let q = Vec.get s.trail i in
      let v = Lit.var q in
      if Vec.get s.seen v then begin
        let r = Vec.get s.reason v in
        if r == dummy_clause then
          (* A pseudo-decision: an assumption placed earlier. Note that this
             is [¬p] itself when the assumptions are directly contradictory,
             in which case the core rightly lists both polarities. *)
          core := q :: !core
        else
          Array.iter
            (fun l ->
              if Vec.get s.level (Lit.var l) > 0 then
                Vec.set s.seen (Lit.var l) true)
            r.lits;
        Vec.set s.seen v false
      end
    done
  end;
  !core

(* -- Learnt clause management ------------------------------------------- *)

let locked s c =
  Array.length c.lits > 0
  && Vec.get s.reason (Lit.var c.lits.(0)) == c
  && value s c.lits.(0) = 1

let reduce_db s =
  Vec.sort (fun a b -> compare b.activity a.activity) s.learnts;
  let keep_count = Vec.size s.learnts / 2 in
  let kept = Vec.create ~dummy:dummy_clause in
  Vec.iteri
    (fun i c ->
      if i < keep_count || locked s c || Array.length c.lits <= 2 then
        Vec.push kept c
      else begin
        log_deleted s (Array.to_list c.lits);
        detach s c
      end)
    s.learnts;
  Vec.clear s.learnts;
  Vec.iter (Vec.push s.learnts) kept

(* -- Clause addition ----------------------------------------------------- *)

let add_clause s lits =
  if s.ok then begin
    cancel_until s 0;
    s.model <- None;
    (* Sort, dedupe, drop false-at-root literals, detect tautology. *)
    let lits = List.sort_uniq Lit.compare lits in
    log_input s lits;
    let taut =
      List.exists (fun l -> List.exists (Lit.equal (Lit.neg l)) lits) lits
      || List.exists (fun l -> value s l = 1 && Vec.get s.level (Lit.var l) = 0)
           lits
    in
    if taut then s.n_eliminated <- s.n_eliminated + 1
    else begin
      let live =
        List.filter
          (fun l -> not (value s l = -1 && Vec.get s.level (Lit.var l) = 0))
          lits
      in
      (* Removing root-falsified literals is itself a RUP inference. *)
      if live <> lits then log_learned s live;
      match live with
      | [] -> s.ok <- false
      | [ l ] ->
        if value s l = -1 then begin
          log_learned s [];
          s.ok <- false
        end
        else if value s l = 0 then unchecked_enqueue s l dummy_clause
      | _ :: _ :: _ ->
        let c =
          { lits = Array.of_list live; learnt = false; activity = 0. }
        in
        Vec.push s.clauses c;
        attach s c
    end
  end

(* -- Search -------------------------------------------------------------- *)

let all_assigned s = Vec.size s.trail = nvars s

let pick_branch_var s =
  let rec loop () =
    if Vec.size s.heap = 0 then -1
    else
      let v = heap_pop s in
      if Vec.get s.assigns v = 0 then v else loop ()
  in
  loop ()

let record_learnt s lits =
  log_learned s lits;
  match lits with
  | [] -> s.ok <- false
  | [ l ] -> unchecked_enqueue s l dummy_clause
  | l :: _ ->
    let c = { lits = Array.of_list lits; learnt = true; activity = 0. } in
    Vec.push s.learnts c;
    attach s c;
    cla_bump s c;
    unchecked_enqueue s l c

let luby y x =
  (* Finite-subsequence Luby restart sequence. *)
  let rec find_size size seq =
    if size >= x + 1 then (size, seq) else find_size ((2 * size) + 1) (seq + 1)
  in
  let rec loop x (size, seq) =
    if size - 1 = x then (size, seq)
    else
      let size = (size - 1) / 2 in
      loop (x mod size) (size, seq - 1)
  in
  let size, seq = loop x (find_size 1 0) in
  ignore size;
  y ** float_of_int seq

exception Solved of result

exception Assumptions_failed
(* Unsatisfiable only under the current assumptions; [conflict_core] holds
   the failed subset and the solver stays usable. *)

(* Records the satisfying assignment and feeds it back into the branching
   phases, so the next (incremental) call re-converges on a nearby model. *)
let save_model s =
  let m = Array.init (nvars s) (fun v -> Vec.get s.assigns v = 1) in
  s.model <- Some m;
  for v = 0 to nvars s - 1 do
    Vec.set s.polarity v m.(v)
  done

(* Places pending assumptions as pseudo-decisions, one per level, below any
   heuristic decision — the MiniSat assumption discipline. *)
type placement = Placed | All_placed | Failed of Lit.t

let place_assumptions s =
  let rec go () =
    if decision_level s >= Vec.size s.assumptions then All_placed
    else
      let p = Vec.get s.assumptions (decision_level s) in
      match value s p with
      | 1 ->
        (* Already entailed: open an empty pseudo-level to keep the
           level-to-assumption correspondence. *)
        Vec.push s.trail_lim (Vec.size s.trail);
        go ()
      | -1 ->
        s.conflict_core <- analyze_final s p;
        Failed p
      | _ ->
        Vec.push s.trail_lim (Vec.size s.trail);
        unchecked_enqueue s p dummy_clause;
        Placed
  in
  go ()

let search s ~nof_conflicts ~deadline ~budget =
  let conflict_count = ref 0 in
  let rec loop () =
    match propagate s with
    | Some confl ->
      s.n_conflicts <- s.n_conflicts + 1;
      incr conflict_count;
      if Atomic.get s.stop then raise (Solved Unknown);
      if decision_level s = 0 then begin
        log_learned s [];
        s.conflict_core <- [];
        s.ok <- false;
        raise (Solved Unsat)
      end;
      (* Conflicts at assumption levels need no special casing: first-UIP
         learning only expands reason clauses, so the learnt clause is a
         consequence of the database alone and the backjump may legally land
         inside the assumption prefix — [place_assumptions] re-places the
         rest. Assumption failure is detected at placement time instead. *)
      let learnt, btlevel = analyze s confl in
      cancel_until s btlevel;
      record_learnt s learnt;
      var_decay_activity s;
      cla_decay_activity s;
      (* The periodic poll doubles as the progress-snapshot point: no new
         branches in propagation, one mask test per conflict. *)
      if s.n_conflicts land 1023 = 0 then begin
        if Deadline.exceeded deadline then raise (Solved Unknown);
        Progress.tick ~conflicts:s.n_conflicts ~decisions:s.n_decisions
          ~propagations:s.n_props ~learnts:(Vec.size s.learnts)
          ~trail:(Vec.size s.trail) ~vars:(nvars s)
          ~level:(decision_level s) ~started:s.solve_started
      end;
      if budget > 0 && s.n_conflicts >= budget then raise (Solved Unknown);
      loop ()
    | None ->
      if Atomic.get s.stop then raise (Solved Unknown);
      if !conflict_count >= nof_conflicts then begin
        s.n_restarts <- s.n_restarts + 1;
        cancel_until s 0
        (* restart *)
      end
      else if
        Vec.size s.learnts >= (Vec.size s.clauses / 2) + 5000 + nvars s
      then begin
        reduce_db s;
        loop ()
      end
      else begin
        match place_assumptions s with
        | Failed _ -> raise Assumptions_failed
        | Placed -> loop ()
        | All_placed ->
          if all_assigned s then begin
            save_model s;
            raise (Solved Sat)
          end
          else begin
            let v = pick_branch_var s in
            if v < 0 then begin
              save_model s;
              raise (Solved Sat)
            end;
            s.n_decisions <- s.n_decisions + 1;
            Vec.push s.trail_lim (Vec.size s.trail);
            unchecked_enqueue s (Lit.make v (Vec.get s.polarity v)) dummy_clause;
            loop ()
          end
      end
  in
  loop ()

let stats s =
  {
    conflicts = s.n_conflicts;
    decisions = s.n_decisions;
    propagations = s.n_props;
    restarts = s.n_restarts;
    clauses = Vec.size s.clauses;
    learnts = Vec.size s.learnts;
    max_vars = nvars s;
    eliminated = s.n_eliminated;
  }

(* Metric handles are shared across every solver instance; [lazy] defers
   registration to first (enabled) use. *)
let m_solves = lazy (Metrics.counter "sat.solves")

let m_conflicts = lazy (Metrics.counter "sat.conflicts")

let m_decisions = lazy (Metrics.counter "sat.decisions")

let m_propagations = lazy (Metrics.counter "sat.propagations")

let m_restarts = lazy (Metrics.counter "sat.restarts")

let m_solve_seconds = lazy (Metrics.histogram "sat.solve_seconds")

let publish_deltas before after elapsed =
  Metrics.incr (Lazy.force m_solves);
  Metrics.add (Lazy.force m_conflicts) (after.conflicts - before.conflicts);
  Metrics.add (Lazy.force m_decisions) (after.decisions - before.decisions);
  Metrics.add (Lazy.force m_propagations)
    (after.propagations - before.propagations);
  Metrics.add (Lazy.force m_restarts) (after.restarts - before.restarts);
  Metrics.observe (Lazy.force m_solve_seconds) elapsed

let solve ?(deadline = Deadline.none) ?(conflict_budget = 0) ?(assumptions = [])
    s =
  s.conflict_core <- [];
  if not s.ok then Unsat
  else begin
    cancel_until s 0;
    s.model <- None;
    Vec.clear s.assumptions;
    List.iter (Vec.push s.assumptions) assumptions;
    s.solve_started <- Deadline.wall_now ();
    let before = if Obs.enabled () then Some (stats s) else None in
    let finish r =
      (* Pop the assumption levels so the solver is immediately reusable;
         phase saving in [cancel_until] retains the branching state. *)
      cancel_until s 0;
      Vec.clear s.assumptions;
      (match before with
      | Some b ->
        publish_deltas b (stats s) (Deadline.wall_now () -. s.solve_started)
      | None -> ());
      r
    in
    try
      (match propagate s with
      | Some _ ->
        log_learned s [];
        s.conflict_core <- [];
        s.ok <- false;
        raise (Solved Unsat)
      | None -> ());
      let restart = ref 0 in
      while true do
        let nof_conflicts = int_of_float (100. *. luby 2. !restart) in
        incr restart;
        search s ~nof_conflicts ~deadline ~budget:conflict_budget;
        if Deadline.exceeded deadline then raise (Solved Unknown)
      done;
      assert false
    with
    | Solved r -> finish r
    | Assumptions_failed -> finish Unsat
  end

let unsat_core s = s.conflict_core

let model s =
  match s.model with
  | Some m -> Array.copy m
  | None -> invalid_arg "Solver.model: no model available"

let warm_start s phases =
  let n = min (Array.length phases) (nvars s) in
  for v = 0 to n - 1 do
    Vec.set s.polarity v phases.(v)
  done

let value s l =
  match s.model with
  | Some m ->
    let b = m.(Lit.var l) in
    if Lit.sign l then b else not b
  | None -> invalid_arg "Solver.value: no model available"

let export_cnf s =
  let clauses = ref [] in
  Vec.iter (fun c -> clauses := Array.to_list c.lits :: !clauses) s.clauses;
  (* Root-level facts live on the trail, not in the clause database. *)
  for i = 0 to Vec.size s.trail - 1 do
    let p = Vec.get s.trail i in
    if Vec.get s.level (Lit.var p) = 0 then clauses := [ p ] :: !clauses
  done;
  (nvars s, List.rev !clauses)

let pp_stats ppf st =
  Format.fprintf ppf
    "vars=%d clauses=%d conflicts=%d decisions=%d propagations=%d restarts=%d \
     learnts=%d eliminated=%d"
    st.max_vars st.clauses st.conflicts st.decisions st.propagations
    st.restarts st.learnts st.eliminated
