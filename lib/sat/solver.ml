module Deadline = Sepsat_util.Deadline
module Obs = Sepsat_obs.Obs
module Metrics = Sepsat_obs.Metrics
module Progress = Sepsat_obs.Progress
module Iv = Db.Iv

(* The CDCL search and public API over the data-oriented core in [Db]:
   clauses live in a flat int arena, watches are flat (cref, blocker) int
   vectors, and all literals inside the hot path are raw ints in the [Lit]
   packing. [Simplifier] provides SatELite-style pre/inprocessing; this module
   schedules it before a solve and between restarts.

   Truth values: 0 = undefined, 1 = true, -1 = false. *)

type t = Db.t

type result = Sat | Unsat | Unknown

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  clauses : int;
  learnts : int;
  max_vars : int;
  eliminated : int;
  simp_rounds : int;
  simp_subsumed : int;
  simp_strengthened : int;
  simp_vars_eliminated : int;
  simp_blocked : int;
  simp_restored : int;
}

let create () = Db.create ()

let set_stop (s : t) flag = s.Db.stop <- flag

let interrupted (s : t) = Atomic.get s.Db.stop

let start_proof (s : t) =
  let p = Proof.create () in
  s.Db.proof <- Some p;
  p

let set_simplify (s : t) on = s.Db.simp_enabled <- on

let freeze (s : t) v = if v < s.Db.nvars then s.Db.frozen.(v) <- true

let is_eliminated (s : t) v = v < s.Db.nvars && s.Db.elimed.(v)

let nvars (s : t) = s.Db.nvars

let new_var = Db.new_var

let add_clause = Db.add_clause

(* -- Conflict analysis (first UIP) --------------------------------------- *)

let litredundant (s : t) l =
  (* Basic minimization: a literal is redundant if it has a reason clause all
     of whose other literals are already seen or at level 0. *)
  let r = s.Db.reason.(l lsr 1) in
  r <> Db.cref_undef
  &&
  let ok = ref true in
  for k = 0 to Db.clause_size s r - 1 do
    let q = Db.clause_lit s r k in
    let v = q lsr 1 in
    if v <> l lsr 1 && (not s.Db.seen.(v)) && s.Db.level.(v) <> 0 then
      ok := false
  done;
  !ok

let analyze (s : t) confl =
  let out = s.Db.tmp_out in
  Iv.clear out;
  Iv.push out 0 (* slot for the asserting literal *);
  let to_clear = s.Db.tmp_clear in
  Iv.clear to_clear;
  let path = ref 0 in
  let p = ref 0 in
  let first = ref true in
  let c = ref confl in
  let index = ref (Iv.size s.Db.trail - 1) in
  let continue = ref true in
  while !continue do
    if Db.clause_learnt s !c then Db.cla_bump s !c;
    let start = if !first then 0 else 1 in
    for k = start to Db.clause_size s !c - 1 do
      let q = Db.clause_lit s !c k in
      let v = q lsr 1 in
      if (not s.Db.seen.(v)) && s.Db.level.(v) > 0 then begin
        Db.var_bump s v;
        s.Db.seen.(v) <- true;
        Iv.push to_clear v;
        if s.Db.level.(v) >= Db.decision_level s then incr path
        else Iv.push out q
      end
    done;
    (* Select the next trail literal to expand. *)
    while not s.Db.seen.(Iv.get s.Db.trail !index lsr 1) do
      decr index
    done;
    p := Iv.get s.Db.trail !index;
    decr index;
    c := s.Db.reason.(!p lsr 1);
    s.Db.seen.(!p lsr 1) <- false;
    decr path;
    first := false;
    if !path <= 0 then continue := false
  done;
  Iv.set out 0 (!p lxor 1);
  (* Minimize. *)
  let keep = s.Db.tmp_keep in
  Iv.clear keep;
  Iv.push keep (Iv.get out 0);
  for k = 1 to Iv.size out - 1 do
    let l = Iv.get out k in
    if not (litredundant s l) then Iv.push keep l
  done;
  (* Find backtrack level: highest level among keep[1..]. *)
  let btlevel = ref 0 in
  if Iv.size keep > 1 then begin
    let maxi = ref 1 in
    for k = 2 to Iv.size keep - 1 do
      if s.Db.level.(Iv.get keep k lsr 1) > s.Db.level.(Iv.get keep !maxi lsr 1)
      then maxi := k
    done;
    btlevel := s.Db.level.(Iv.get keep !maxi lsr 1);
    let a = Iv.get keep 1 and b = Iv.get keep !maxi in
    Iv.set keep 1 b;
    Iv.set keep !maxi a
  end;
  for k = 0 to Iv.size to_clear - 1 do
    s.Db.seen.(Iv.get to_clear k) <- false
  done;
  (keep, !btlevel)

(* -- Final-conflict analysis (failed-assumption core) --------------------- *)

(* [p] is an assumption found false at placement time. Walks the implication
   graph backwards from [p]; every pseudo-decision reached is an assumption
   that participated in falsifying [p]. Returns the failed core: a subset
   [core] of the current assumptions (including [p]) such that the clause
   database conjoined with [core] is unsatisfiable. *)
let analyze_final (s : t) p =
  let core = ref [ Lit.of_int p ] in
  if Db.decision_level s > 0 && s.Db.level.(p lsr 1) > 0 then begin
    s.Db.seen.(p lsr 1) <- true;
    let bound = Iv.get s.Db.trail_lim 0 in
    for i = Iv.size s.Db.trail - 1 downto bound do
      let q = Iv.get s.Db.trail i in
      let v = q lsr 1 in
      if s.Db.seen.(v) then begin
        let r = s.Db.reason.(v) in
        if r = Db.cref_undef then
          (* A pseudo-decision: an assumption placed earlier. Note that this
             is [¬p] itself when the assumptions are directly contradictory,
             in which case the core rightly lists both polarities. *)
          core := Lit.of_int q :: !core
        else
          for k = 0 to Db.clause_size s r - 1 do
            let x = Db.clause_lit s r k in
            if s.Db.level.(x lsr 1) > 0 then s.Db.seen.(x lsr 1) <- true
          done;
        s.Db.seen.(v) <- false
      end
    done
  end;
  !core

(* -- Learnt clause management --------------------------------------------- *)

let locked (s : t) cr =
  Db.clause_size s cr > 0
  &&
  let l0 = Db.clause_lit s cr 0 in
  s.Db.reason.(l0 lsr 1) = cr && Db.value_lit s l0 = 1

let reduce_db (s : t) =
  let n = Iv.size s.Db.learnts in
  let arr = Array.init n (fun i -> Iv.get s.Db.learnts i) in
  Array.sort (fun a b -> compare (Db.clause_act s b) (Db.clause_act s a)) arr;
  let keep_count = n / 2 in
  Iv.clear s.Db.learnts;
  Array.iteri
    (fun i cr ->
      if i < keep_count || locked s cr || Db.clause_size s cr <= 2 then
        Iv.push s.Db.learnts cr
      else begin
        Db.log_deleted s (Db.clause_lits_list s cr);
        Db.detach s cr;
        Db.mark_dead s cr
      end)
    arr;
  Db.maybe_gc s

(* -- Search ---------------------------------------------------------------- *)

let pick_branch_var (s : t) =
  let rec loop () =
    if Iv.size s.Db.heap = 0 then -1
    else
      let v = Db.heap_pop s in
      if s.Db.assigns.(v) = 0 && not s.Db.elimed.(v) then v else loop ()
  in
  loop ()

let record_learnt (s : t) (keep : Iv.t) =
  let lits =
    let rec go i acc = if i < 0 then acc else go (i - 1) (Iv.get keep i :: acc) in
    go (Iv.size keep - 1) []
  in
  Db.log_learned s lits;
  match lits with
  | [] -> s.Db.ok <- false
  | [ l ] -> Db.unchecked_enqueue s l Db.cref_undef
  | l :: _ ->
    let cr =
      Db.alloc_clause s (Array.init (Iv.size keep) (Iv.get keep)) ~learnt:true
    in
    Iv.push s.Db.learnts cr;
    Db.attach s cr;
    Db.cla_bump s cr;
    Db.unchecked_enqueue s l cr

let luby y x =
  (* Finite-subsequence Luby restart sequence. *)
  let rec find_size size seq =
    if size >= x + 1 then (size, seq) else find_size ((2 * size) + 1) (seq + 1)
  in
  let rec loop x (size, seq) =
    if size - 1 = x then (size, seq)
    else
      let size = (size - 1) / 2 in
      loop (x mod size) (size, seq - 1)
  in
  let size, seq = loop x (find_size 1 0) in
  ignore size;
  y ** float_of_int seq

exception Solved of result

exception Assumptions_failed
(* Unsatisfiable only under the current assumptions; [conflict_core] holds
   the failed subset and the solver stays usable. *)

(* Records the satisfying assignment — extended over the simplifier's
   elimination stack to a total model of the input — and feeds it back into
   the branching phases, so the next (incremental) call re-converges on a
   nearby model. *)
let save_model (s : t) =
  let m =
    Array.init s.Db.nvars (fun v ->
        match s.Db.assigns.(v) with
        | 1 -> true
        | -1 -> false
        | _ -> s.Db.polarity.(v))
  in
  Db.extend_model s m;
  s.Db.model <- Some m;
  for v = 0 to s.Db.nvars - 1 do
    s.Db.polarity.(v) <- m.(v)
  done

(* Places pending assumptions as pseudo-decisions, one per level, below any
   heuristic decision — the MiniSat assumption discipline. *)
type placement = Placed | All_placed | Failed of int

let place_assumptions (s : t) =
  let rec go () =
    if Db.decision_level s >= Iv.size s.Db.assumptions then All_placed
    else
      let p = Iv.get s.Db.assumptions (Db.decision_level s) in
      match Db.value_lit s p with
      | 1 ->
        (* Already entailed: open an empty pseudo-level to keep the
           level-to-assumption correspondence. *)
        Iv.push s.Db.trail_lim (Iv.size s.Db.trail);
        go ()
      | -1 ->
        s.Db.conflict_core <- analyze_final s p;
        Failed p
      | _ ->
        Iv.push s.Db.trail_lim (Iv.size s.Db.trail);
        Db.unchecked_enqueue s p Db.cref_undef;
        Placed
  in
  go ()

let search (s : t) ~nof_conflicts ~deadline ~budget =
  let conflict_count = ref 0 in
  let rec loop () =
    let confl = Db.propagate s in
    if confl <> Db.cref_undef then begin
      s.Db.n_conflicts <- s.Db.n_conflicts + 1;
      incr conflict_count;
      if Atomic.get s.Db.stop then raise (Solved Unknown);
      if Db.decision_level s = 0 then begin
        Db.log_learned s [];
        s.Db.conflict_core <- [];
        s.Db.ok <- false;
        raise (Solved Unsat)
      end;
      (* Conflicts at assumption levels need no special casing: first-UIP
         learning only expands reason clauses, so the learnt clause is a
         consequence of the database alone and the backjump may legally land
         inside the assumption prefix — [place_assumptions] re-places the
         rest. Assumption failure is detected at placement time instead. *)
      let keep, btlevel = analyze s confl in
      Db.cancel_until s btlevel;
      record_learnt s keep;
      Db.var_decay_activity s;
      Db.cla_decay_activity s;
      (* The periodic poll doubles as the progress-snapshot point: no new
         branches in propagation, one mask test per conflict. *)
      if s.Db.n_conflicts land 1023 = 0 then begin
        if Deadline.exceeded deadline then raise (Solved Unknown);
        Progress.tick ~conflicts:s.Db.n_conflicts ~decisions:s.Db.n_decisions
          ~propagations:s.Db.n_props ~learnts:(Iv.size s.Db.learnts)
          ~trail:(Iv.size s.Db.trail) ~vars:s.Db.nvars
          ~level:(Db.decision_level s) ~started:s.Db.solve_started
      end;
      if budget > 0 && s.Db.n_conflicts >= budget then raise (Solved Unknown);
      loop ()
    end
    else begin
      if Atomic.get s.Db.stop then raise (Solved Unknown);
      if !conflict_count >= nof_conflicts then begin
        s.Db.n_restarts <- s.Db.n_restarts + 1;
        Db.cancel_until s 0
        (* restart: return to [solve], which may inprocess before re-entry *)
      end
      else if
        Iv.size s.Db.learnts >= (Iv.size s.Db.clauses / 2) + 5000 + s.Db.nvars
      then begin
        reduce_db s;
        loop ()
      end
      else begin
        match place_assumptions s with
        | Failed _ -> raise Assumptions_failed
        | Placed -> loop ()
        | All_placed ->
          let v = pick_branch_var s in
          if v < 0 then begin
            save_model s;
            raise (Solved Sat)
          end;
          s.Db.n_decisions <- s.Db.n_decisions + 1;
          Iv.push s.Db.trail_lim (Iv.size s.Db.trail);
          Db.unchecked_enqueue s
            ((2 * v) + if s.Db.polarity.(v) then 0 else 1)
            Db.cref_undef;
          loop ()
      end
    end
  in
  loop ()

let stats (s : t) =
  {
    conflicts = s.Db.n_conflicts;
    decisions = s.Db.n_decisions;
    propagations = s.Db.n_props;
    restarts = s.Db.n_restarts;
    clauses = Iv.size s.Db.clauses;
    learnts = Iv.size s.Db.learnts;
    max_vars = s.Db.nvars;
    eliminated = s.Db.n_eliminated;
    simp_rounds = s.Db.n_simp_rounds;
    simp_subsumed = s.Db.n_subsumed;
    simp_strengthened = s.Db.n_strengthened;
    simp_vars_eliminated = s.Db.n_elim_vars;
    simp_blocked = s.Db.n_blocked;
    simp_restored = s.Db.n_restored;
  }

(* Metric handles are shared across every solver instance; [lazy] defers
   registration to first (enabled) use. *)
let m_solves = lazy (Metrics.counter "sat.solves")

let m_conflicts = lazy (Metrics.counter "sat.conflicts")

let m_decisions = lazy (Metrics.counter "sat.decisions")

let m_propagations = lazy (Metrics.counter "sat.propagations")

let m_restarts = lazy (Metrics.counter "sat.restarts")

let m_solve_seconds = lazy (Metrics.histogram "sat.solve_seconds")

let publish_deltas before after elapsed =
  Metrics.incr (Lazy.force m_solves);
  Metrics.add (Lazy.force m_conflicts) (after.conflicts - before.conflicts);
  Metrics.add (Lazy.force m_decisions) (after.decisions - before.decisions);
  Metrics.add (Lazy.force m_propagations)
    (after.propagations - before.propagations);
  Metrics.add (Lazy.force m_restarts) (after.restarts - before.restarts);
  Metrics.observe (Lazy.force m_solve_seconds) elapsed

(* Inprocessing cadence: first pass after [simp_base] conflicts, then backing
   off linearly with the number of rounds already run. *)
let simp_base = 3000

(* Whether eager preprocessing pays depends on how conflict-heavy the search
   turns out to be, which cannot be known up front.  On a small database a
   full SatELite pass costs a few milliseconds either way; on a large one it
   can cost multiples of an easy solve (the wide EIJ encodings finish in a few
   hundred conflicts), so above this many problem clauses all simplification
   is deferred to conflict-triggered inprocessing, which fires only once the
   search has proven the instance hard. *)
let preprocess_clause_limit = 5000

let maybe_inprocess (s : t) ~deadline =
  if s.Db.simp_enabled && s.Db.n_conflicts >= s.Db.next_simp then begin
    Simplifier.simplify s ~deadline ~max_rounds:1;
    s.Db.next_simp <-
      s.Db.n_conflicts + simp_base + (1000 * s.Db.n_simp_rounds)
  end

let solve ?(deadline = Deadline.none) ?(conflict_budget = 0) ?(assumptions = [])
    (s : t) =
  s.Db.conflict_core <- [];
  if not s.Db.ok then Unsat
  else begin
    Db.cancel_until s 0;
    s.Db.model <- None;
    Iv.clear s.Db.assumptions;
    let il = List.map Lit.to_int assumptions in
    List.iter (Iv.push s.Db.assumptions) il;
    s.Db.solve_started <- Deadline.wall_now ();
    (* One snapshot at solve start: short solves (most serve requests) never
       reach the 1024-conflict poll, and live lane views need to see a lane
       the moment it starts working, not only once it struggles. *)
    Progress.tick ~conflicts:s.Db.n_conflicts ~decisions:s.Db.n_decisions
      ~propagations:s.Db.n_props ~learnts:(Iv.size s.Db.learnts)
      ~trail:(Iv.size s.Db.trail) ~vars:s.Db.nvars
      ~level:(Db.decision_level s) ~started:s.Db.solve_started;
    let before = if Obs.enabled () then Some (stats s) else None in
    let finish r =
      (* Pop the assumption levels so the solver is immediately reusable;
         phase saving in [cancel_until] retains the branching state. *)
      Db.cancel_until s 0;
      Iv.clear s.Db.assumptions;
      (match before with
      | Some b ->
        publish_deltas b (stats s) (Deadline.wall_now () -. s.Db.solve_started)
      | None -> ());
      r
    in
    try
      (* Assumption variables must survive elimination: restore any stack
         entries they touch, then freeze them for good. *)
      Db.restore_touching s il;
      List.iter (fun l -> freeze s (l lsr 1)) il;
      if not s.Db.ok then raise (Solved Unsat);
      (if Db.propagate s <> Db.cref_undef then begin
         Db.log_learned s [];
         s.Db.conflict_core <- [];
         s.Db.ok <- false;
         raise (Solved Unsat)
       end);
      if s.Db.simp_enabled then begin
        if s.Db.dirty > 0 && Iv.size s.Db.clauses <= preprocess_clause_limit
        then begin
          Simplifier.simplify s ~deadline ~max_rounds:3;
          if not s.Db.ok then raise (Solved Unsat)
        end;
        s.Db.next_simp <- s.Db.n_conflicts + simp_base
      end;
      let restart = ref 0 in
      while true do
        let nof_conflicts = int_of_float (100. *. luby 2. !restart) in
        incr restart;
        search s ~nof_conflicts ~deadline ~budget:conflict_budget;
        if Deadline.exceeded deadline then raise (Solved Unknown);
        maybe_inprocess s ~deadline;
        if not s.Db.ok then raise (Solved Unsat)
      done;
      assert false
    with
    | Solved r -> finish r
    | Assumptions_failed -> finish Unsat
  end

let simplify (s : t) =
  if s.Db.ok then begin
    Db.cancel_until s 0;
    s.Db.model <- None;
    if Db.propagate s <> Db.cref_undef then Db.confirm_unsat s
    else Simplifier.simplify s ~deadline:Deadline.none ~max_rounds:3
  end

let unsat_core (s : t) = s.Db.conflict_core

let model (s : t) =
  match s.Db.model with
  | Some m -> Array.copy m
  | None -> invalid_arg "Solver.model: no model available"

let warm_start (s : t) phases =
  let n = min (Array.length phases) s.Db.nvars in
  for v = 0 to n - 1 do
    s.Db.polarity.(v) <- phases.(v)
  done

let value (s : t) l =
  match s.Db.model with
  | Some m ->
    let b = m.(Lit.var l) in
    if Lit.sign l then b else not b
  | None -> invalid_arg "Solver.value: no model available"

let export_cnf (s : t) =
  let units = ref [] in
  (* Root-level facts live on the trail, not in the clause database. *)
  for i = Iv.size s.Db.trail - 1 downto 0 do
    let p = Iv.get s.Db.trail i in
    if s.Db.level.(p lsr 1) = 0 then units := [ Lit.of_int p ] :: !units
  done;
  let clauses = ref !units in
  for i = Iv.size s.Db.clauses - 1 downto 0 do
    let cr = Iv.get s.Db.clauses i in
    if not (Db.clause_dead s cr) then
      clauses := List.map Lit.of_int (Db.clause_lits_list s cr) :: !clauses
  done;
  (s.Db.nvars, !clauses)

(* Branch-variable ranking for cube-and-conquer: unassigned, uneliminated
   variables ordered by VSIDS activity, problem-clause occurrence count as
   the tie-break (activity ties are common right after a short probe, when
   many variables still sit at their initial bump). *)
let top_vars (s : t) k =
  let n = s.Db.nvars in
  let occ = Array.make (max 1 n) 0 in
  for i = 0 to Iv.size s.Db.clauses - 1 do
    let cr = Iv.get s.Db.clauses i in
    if not (Db.clause_dead s cr) then
      for j = 0 to Db.clause_size s cr - 1 do
        let v = Db.clause_lit s cr j lsr 1 in
        occ.(v) <- occ.(v) + 1
      done
  done;
  let cand = ref [] in
  for v = n - 1 downto 0 do
    if s.Db.assigns.(v) = 0 && not s.Db.elimed.(v) then cand := v :: !cand
  done;
  let arr = Array.of_list !cand in
  Array.sort
    (fun a b ->
      let c = compare s.Db.var_act.(b) s.Db.var_act.(a) in
      if c <> 0 then c
      else
        let c = compare occ.(b) occ.(a) in
        if c <> 0 then c else compare a b)
    arr;
  Array.to_list (Array.sub arr 0 (min k (Array.length arr)))

let pp_stats ppf st =
  Format.fprintf ppf
    "vars=%d clauses=%d conflicts=%d decisions=%d propagations=%d restarts=%d \
     learnts=%d eliminated=%d simp_rounds=%d subsumed=%d strengthened=%d \
     vars_eliminated=%d blocked=%d restored=%d"
    st.max_vars st.clauses st.conflicts st.decisions st.propagations
    st.restarts st.learnts st.eliminated st.simp_rounds st.simp_subsumed
    st.simp_strengthened st.simp_vars_eliminated st.simp_blocked
    st.simp_restored
