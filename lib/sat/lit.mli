(** Propositional literals.

    A literal is a variable (a dense non-negative integer) together with a
    sign. The representation is the MiniSat packing [2*var + (negated ? 1 : 0)]
    so literals index arrays directly. *)

type t = private int [@@immediate]

val make : int -> bool -> t
(** [make v sign] is the literal over variable [v]; [sign = true] gives the
    positive literal [v], [sign = false] gives [¬v]. Requires [v >= 0]. *)

val pos : int -> t
(** Positive literal of a variable. *)

val neg_of : int -> t
(** Negative literal of a variable. *)

val var : t -> int

val sign : t -> bool
(** [true] iff the literal is positive. *)

val neg : t -> t
(** Complement. *)

val to_int : t -> int
(** The packed representation, suitable as an array index in [0, 2n). *)

val of_int : int -> t
(** Inverse of {!to_int}. *)

val to_dimacs : t -> int
(** Signed DIMACS form: variable index + 1, negative if the literal is. *)

val of_dimacs : int -> t
(** Inverse of {!to_dimacs}. @raise Invalid_argument on 0. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
