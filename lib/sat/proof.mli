(** DRUP proof traces.

    When recording is enabled, the solver logs every input clause, every
    learned (or input-simplification) clause, and every deletion. An
    unsatisfiability conclusion appends the empty clause. The resulting trace
    can be replayed by {!Drup_check} — an independent unit-propagation
    checker — so UNSAT answers (hence [Valid] verdicts upstream) do not
    depend on trusting the CDCL implementation. *)

type step =
  | Input of Lit.t list  (** axiom: part of the problem *)
  | Learned of Lit.t list  (** must have the RUP property when checked *)
  | Deleted of Lit.t list  (** removed from the active database *)

type t

val create : unit -> t

val input : t -> Lit.t list -> unit

val learned : t -> Lit.t list -> unit

val deleted : t -> Lit.t list -> unit

val steps : t -> step list
(** In logging order. *)

val n_steps : t -> int
(** Number of recorded steps, without materialising the list. *)

val pp_dimacs : Format.formatter -> t -> unit
(** The standard textual DRUP format ([d] lines for deletions); inputs are
    emitted as comments, since DRUP files accompany a separate CNF. *)
