(* Data-oriented storage core of the CDCL solver.

   Clauses live in one flat int arena instead of boxed records: a clause at
   cref [c] is

     arena.(c)     header: [size lsl 2 lor (learnt ? 2 : 0) lor (dead ? 1 : 0)]
     arena.(c+1)   learnt: activity as float bits shifted right by one;
                   problem: 62-bit variable signature used by subsumption
     arena.(c+2..) the literals, as packed ints

   Watch lists are flat int vectors of (cref, blocker) pairs, and all per-var
   state is plain mutable arrays indexed by variable, so the propagate /
   analyze hot path allocates nothing and touches contiguous memory. This
   module owns the state and the low-level operations; [Simplifier] implements
   SatELite-style pre/inprocessing on top of it and [Solver] the CDCL search
   and the public API.

   Literals are raw ints here (the [Lit] packing: [2*v] positive, [2*v+1]
   negative); conversion to [Lit.t] happens only at the proof-logging and API
   boundaries. *)

(* -- Growable int vectors ----------------------------------------------- *)

module Iv = struct
  type t = { mutable a : int array; mutable n : int }

  let create ?(cap = 16) () = { a = Array.make (max cap 1) 0; n = 0 }

  let[@inline] size v = v.n

  let[@inline] get v i = Array.unsafe_get v.a i

  let[@inline] set v i x = Array.unsafe_set v.a i x

  let grow v need =
    let cap = max need (2 * Array.length v.a) in
    let a = Array.make cap 0 in
    Array.blit v.a 0 a 0 v.n;
    v.a <- a

  let[@inline] push v x =
    if v.n = Array.length v.a then grow v (v.n + 1);
    Array.unsafe_set v.a v.n x;
    v.n <- v.n + 1

  let[@inline] pop v =
    v.n <- v.n - 1;
    Array.unsafe_get v.a v.n

  let[@inline] clear v = v.n <- 0

  let[@inline] shrink v n = v.n <- n
end

let cref_undef = -1

type t = {
  (* Clause arena *)
  mutable arena : int array;
  mutable arena_top : int;  (* first free word *)
  mutable wasted : int;  (* words buried in dead clauses *)
  clauses : Iv.t;  (* problem crefs *)
  learnts : Iv.t;  (* learnt crefs *)
  mutable watches : Iv.t array;  (* lit -> flat (cref, blocker) pairs *)
  (* Per-variable state *)
  mutable nvars : int;
  mutable assigns : int array;  (* -1 / 0 / 1 *)
  mutable level : int array;
  mutable reason : int array;  (* cref, or cref_undef *)
  mutable var_act : float array;
  mutable polarity : bool array;
  mutable seen : bool array;  (* analysis scratch *)
  mutable frozen : bool array;  (* protected from elimination *)
  mutable elimed : bool array;  (* eliminated by the simplifier *)
  mutable ext_count : int array;  (* live extension entries touching var *)
  mutable heap_index : int array;  (* -1 if absent *)
  heap : Iv.t;
  (* Trail *)
  trail : Iv.t;  (* lits in assignment order *)
  trail_lim : Iv.t;
  mutable qhead : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  (* Model-extension stack: chunks [witness; size; lits...] recording clauses
     removed by variable / blocked-clause elimination. Entries are replayed
     in reverse to extend a model of the simplified formula to a total model
     of the input, and restored into the database when later increments touch
     their variables. *)
  ext_data : Iv.t;
  ext_off : Iv.t;  (* chunk offsets *)
  ext_live : Iv.t;  (* 1 live / 0 dead-or-restored, parallel to ext_off *)
  (* Incremental interface *)
  assumptions : Iv.t;
  mutable conflict_core : Lit.t list;
  mutable stop : bool Atomic.t;
  (* State *)
  mutable ok : bool;
  mutable model : bool array option;
  mutable proof : Proof.t option;
  mutable simp_enabled : bool;
  mutable dirty : int;  (* clauses added since the last simplification *)
  mutable next_simp : int;  (* conflict count scheduling the next inprocess *)
  (* Analysis scratch vectors (reused across conflicts) *)
  tmp_out : Iv.t;
  tmp_keep : Iv.t;
  tmp_clear : Iv.t;
  (* Statistics *)
  mutable n_conflicts : int;
  mutable n_decisions : int;
  mutable n_props : int;
  mutable n_restarts : int;
  mutable n_eliminated : int;
  mutable n_simp_rounds : int;
  mutable n_subsumed : int;
  mutable n_strengthened : int;
  mutable n_elim_vars : int;
  mutable n_blocked : int;
  mutable n_restored : int;
  mutable solve_started : float;
}

let create () =
  let cap = 16 in
  {
    arena = Array.make 1024 0;
    arena_top = 0;
    wasted = 0;
    clauses = Iv.create ();
    learnts = Iv.create ();
    watches = Array.init (2 * cap) (fun _ -> Iv.create ~cap:4 ());
    nvars = 0;
    assigns = Array.make cap 0;
    level = Array.make cap 0;
    reason = Array.make cap cref_undef;
    var_act = Array.make cap 0.;
    polarity = Array.make cap false;
    seen = Array.make cap false;
    frozen = Array.make cap false;
    elimed = Array.make cap false;
    ext_count = Array.make cap 0;
    heap_index = Array.make cap (-1);
    heap = Iv.create ();
    trail = Iv.create ();
    trail_lim = Iv.create ();
    qhead = 0;
    var_inc = 1.;
    cla_inc = 1.;
    ext_data = Iv.create ();
    ext_off = Iv.create ();
    ext_live = Iv.create ();
    assumptions = Iv.create ();
    conflict_core = [];
    stop = Atomic.make false;
    ok = true;
    model = None;
    proof = None;
    simp_enabled = false;
    dirty = 0;
    next_simp = 0;
    tmp_out = Iv.create ();
    tmp_keep = Iv.create ();
    tmp_clear = Iv.create ();
    n_conflicts = 0;
    n_decisions = 0;
    n_props = 0;
    n_restarts = 0;
    n_eliminated = 0;
    n_simp_rounds = 0;
    n_subsumed = 0;
    n_strengthened = 0;
    n_elim_vars = 0;
    n_blocked = 0;
    n_restored = 0;
    solve_started = 0.;
  }

(* -- Proof logging -------------------------------------------------------- *)

let[@inline] to_lits il = List.map Lit.of_int il

let log_input s il =
  match s.proof with None -> () | Some p -> Proof.input p (to_lits il)

let log_learned s il =
  match s.proof with None -> () | Some p -> Proof.learned p (to_lits il)

let log_deleted s il =
  match s.proof with None -> () | Some p -> Proof.deleted p (to_lits il)

(* The empty clause follows by unit propagation from the clauses already in
   the trace (the checker's database is always a superset of the live one),
   so logging it as learned is a valid RUP step. *)
let confirm_unsat s =
  if s.ok then begin
    log_learned s [];
    s.ok <- false
  end

(* -- Values and levels ---------------------------------------------------- *)

let[@inline] value_lit s l =
  let a = Array.unsafe_get s.assigns (l lsr 1) in
  if l land 1 = 0 then a else -a

let[@inline] decision_level s = Iv.size s.trail_lim

(* -- Clause arena --------------------------------------------------------- *)

let[@inline] clause_size s cr = Array.unsafe_get s.arena cr lsr 2

let[@inline] clause_learnt s cr = Array.unsafe_get s.arena cr land 2 <> 0

let[@inline] clause_dead s cr = Array.unsafe_get s.arena cr land 1 <> 0

let[@inline] clause_lit s cr i = Array.unsafe_get s.arena (cr + 2 + i)

(* Activities are non-negative floats, so the top bit of their IEEE encoding
   is clear and the remaining 63 bits fit an OCaml int. *)
let[@inline] clause_act s cr =
  Int64.float_of_bits (Int64.shift_left (Int64.of_int s.arena.(cr + 1)) 1)

let[@inline] set_clause_act s cr f =
  s.arena.(cr + 1) <-
    Int64.to_int (Int64.shift_right_logical (Int64.bits_of_float f) 1)

let[@inline] clause_sig s cr = s.arena.(cr + 1)

let clause_calc_sig s cr =
  let g = ref 0 in
  for i = 0 to clause_size s cr - 1 do
    g := !g lor (1 lsl (clause_lit s cr i lsr 1 mod 62))
  done;
  s.arena.(cr + 1) <- !g

let clause_lits_list s cr =
  let rec go i acc = if i < 0 then acc else go (i - 1) (clause_lit s cr i :: acc) in
  go (clause_size s cr - 1) []

let ensure_arena s need =
  if s.arena_top + need > Array.length s.arena then begin
    let cap = max (s.arena_top + need) (2 * Array.length s.arena) in
    let a = Array.make cap 0 in
    Array.blit s.arena 0 a 0 s.arena_top;
    s.arena <- a
  end

let alloc_clause s (lits : int array) ~learnt =
  let sz = Array.length lits in
  ensure_arena s (sz + 2);
  let cr = s.arena_top in
  s.arena.(cr) <- (sz lsl 2) lor if learnt then 2 else 0;
  s.arena.(cr + 1) <- 0;
  Array.blit lits 0 s.arena (cr + 2) sz;
  s.arena_top <- cr + sz + 2;
  cr

let mark_dead s cr =
  let hd = s.arena.(cr) in
  if hd land 1 = 0 then begin
    s.arena.(cr) <- hd lor 1;
    s.wasted <- s.wasted + (hd lsr 2) + 2
  end

(* In-place removal of one literal (simplifier strengthening). The orphaned
   trailing word is reclaimed at the next arena collection. *)
let clause_remove_lit s cr l =
  let sz = clause_size s cr in
  let i = ref 0 in
  while clause_lit s cr !i <> l do incr i done;
  for k = !i to sz - 2 do
    s.arena.(cr + 2 + k) <- s.arena.(cr + 2 + k + 1)
  done;
  s.arena.(cr) <- (s.arena.(cr) land 3) lor ((sz - 1) lsl 2);
  s.wasted <- s.wasted + 1

(* -- Variable order heap (max-heap on activity) --------------------------- *)

let[@inline] heap_lt s v w =
  Array.unsafe_get s.var_act v > Array.unsafe_get s.var_act w

let heap_percolate_up s i =
  let x = Iv.get s.heap i in
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let px = Iv.get s.heap p in
    if heap_lt s x px then begin
      Iv.set s.heap !i px;
      s.heap_index.(px) <- !i;
      i := p
    end
    else continue := false
  done;
  Iv.set s.heap !i x;
  s.heap_index.(x) <- !i

let heap_percolate_down s i =
  let x = Iv.get s.heap i in
  let sz = Iv.size s.heap in
  let i = ref i in
  let continue = ref true in
  while !continue && (2 * !i) + 1 < sz do
    let l = (2 * !i) + 1 in
    let r = l + 1 in
    let child =
      if r < sz && heap_lt s (Iv.get s.heap r) (Iv.get s.heap l) then r else l
    in
    let cx = Iv.get s.heap child in
    if heap_lt s cx x then begin
      Iv.set s.heap !i cx;
      s.heap_index.(cx) <- !i;
      i := child
    end
    else continue := false
  done;
  Iv.set s.heap !i x;
  s.heap_index.(x) <- !i

let[@inline] heap_in s v = s.heap_index.(v) >= 0

let heap_insert s v =
  if not (heap_in s v) then begin
    Iv.push s.heap v;
    s.heap_index.(v) <- Iv.size s.heap - 1;
    heap_percolate_up s (Iv.size s.heap - 1)
  end

let heap_pop s =
  let x = Iv.get s.heap 0 in
  let last = Iv.pop s.heap in
  s.heap_index.(x) <- -1;
  if Iv.size s.heap > 0 then begin
    Iv.set s.heap 0 last;
    s.heap_index.(last) <- 0;
    heap_percolate_down s 0
  end;
  x

let[@inline] heap_bump s v =
  if heap_in s v then heap_percolate_up s s.heap_index.(v)

(* -- Activities ------------------------------------------------------------ *)

let var_decay = 1. /. 0.95

let cla_decay = 1. /. 0.999

let var_bump s v =
  s.var_act.(v) <- s.var_act.(v) +. s.var_inc;
  if s.var_act.(v) > 1e100 then begin
    for u = 0 to s.nvars - 1 do
      s.var_act.(u) <- s.var_act.(u) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  heap_bump s v

let var_decay_activity s = s.var_inc <- s.var_inc *. var_decay

let cla_bump s cr =
  let a = clause_act s cr +. s.cla_inc in
  set_clause_act s cr a;
  if a > 1e20 then begin
    for i = 0 to Iv.size s.learnts - 1 do
      let c = Iv.get s.learnts i in
      set_clause_act s c (clause_act s c *. 1e-20)
    done;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let cla_decay_activity s = s.cla_inc <- s.cla_inc *. cla_decay

(* -- Variables ------------------------------------------------------------- *)

let grow_vars s =
  let old = Array.length s.assigns in
  let cap = 2 * old in
  let gi a d =
    let b = Array.make cap d in
    Array.blit a 0 b 0 old;
    b
  in
  s.assigns <- gi s.assigns 0;
  s.level <- gi s.level 0;
  s.reason <- gi s.reason cref_undef;
  s.heap_index <- gi s.heap_index (-1);
  s.ext_count <- gi s.ext_count 0;
  let gf a =
    let b = Array.make cap 0. in
    Array.blit a 0 b 0 old;
    b
  in
  s.var_act <- gf s.var_act;
  let gb a =
    let b = Array.make cap false in
    Array.blit a 0 b 0 old;
    b
  in
  s.polarity <- gb s.polarity;
  s.seen <- gb s.seen;
  s.frozen <- gb s.frozen;
  s.elimed <- gb s.elimed;
  let w = s.watches in
  s.watches <-
    Array.init (2 * cap) (fun i ->
        if i < Array.length w then w.(i) else Iv.create ~cap:4 ())

let new_var s =
  let v = s.nvars in
  if v = Array.length s.assigns then grow_vars s;
  s.nvars <- v + 1;
  heap_insert s v;
  v

(* -- Trail ------------------------------------------------------------------ *)

let[@inline] unchecked_enqueue s p r =
  let v = p lsr 1 in
  Array.unsafe_set s.assigns v (if p land 1 = 0 then 1 else -1);
  Array.unsafe_set s.level v (Iv.size s.trail_lim);
  Array.unsafe_set s.reason v r;
  Iv.push s.trail p

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Iv.get s.trail_lim lvl in
    for i = Iv.size s.trail - 1 downto bound do
      let p = Iv.get s.trail i in
      let v = p lsr 1 in
      s.assigns.(v) <- 0;
      s.polarity.(v) <- p land 1 = 0;
      s.reason.(v) <- cref_undef;
      heap_insert s v
    done;
    Iv.shrink s.trail bound;
    Iv.shrink s.trail_lim lvl;
    s.qhead <- Iv.size s.trail
  end

(* -- Watches ----------------------------------------------------------------- *)

(* A clause watching literal [l] is registered under index [neg l]: propagating
   [p] visits exactly the clauses in which [neg p] is watched. Each entry
   carries a blocker literal — some other literal of the clause — whose truth
   lets propagation skip the clause without touching the arena. *)

let attach s cr =
  let l0 = s.arena.(cr + 2) and l1 = s.arena.(cr + 3) in
  let w0 = s.watches.(l0 lxor 1) in
  Iv.push w0 cr;
  Iv.push w0 l1;
  let w1 = s.watches.(l1 lxor 1) in
  Iv.push w1 cr;
  Iv.push w1 l0

let watch_remove s l cr =
  let ws = s.watches.(l) in
  let n = Iv.size ws in
  let i = ref 0 in
  while !i < n && Iv.get ws !i <> cr do
    i := !i + 2
  done;
  if !i < n then begin
    Iv.set ws !i (Iv.get ws (n - 2));
    Iv.set ws (!i + 1) (Iv.get ws (n - 1));
    Iv.shrink ws (n - 2)
  end

let detach s cr =
  watch_remove s (s.arena.(cr + 2) lxor 1) cr;
  watch_remove s (s.arena.(cr + 3) lxor 1) cr

(* Attach at root level when some literals may already be assigned: orders the
   least-falsified literals into the watch slots so the two-watch invariant
   holds, and reports whether the clause is currently unit or false. *)
let attach_careful s cr =
  let a = s.arena in
  let base = cr + 2 in
  let sz = a.(cr) lsr 2 in
  let swap i j =
    let t = a.(base + i) in
    a.(base + i) <- a.(base + j);
    a.(base + j) <- t
  in
  let find_nonfalse from_ =
    let k = ref from_ in
    while !k < sz && value_lit s a.(base + !k) = -1 do
      incr k
    done;
    !k
  in
  let k0 = find_nonfalse 0 in
  if k0 < sz && k0 <> 0 then swap 0 k0;
  if k0 < sz then begin
    let k1 = find_nonfalse 1 in
    if k1 < sz && k1 <> 1 then swap 1 k1
  end;
  attach s cr;
  let v0 = value_lit s a.(base) in
  if v0 = -1 then `Conflict
  else if v0 = 0 && value_lit s a.(base + 1) = -1 then `Unit a.(base)
  else `Ok

(* -- Propagation -------------------------------------------------------------- *)

(* Returns the conflicting cref or [cref_undef]. *)
let propagate s =
  let confl = ref cref_undef in
  let stopped = ref false in
  while (not !stopped) && !confl = cref_undef && s.qhead < Iv.size s.trail do
    (* Cheap cancellation poll: a masked atomic load keeps the hot loop hot
       while letting a portfolio peer abort a propagation-heavy search. *)
    if s.n_props land 255 = 0 && Atomic.get s.stop then stopped := true
    else begin
      let p = Iv.get s.trail s.qhead in
      s.qhead <- s.qhead + 1;
      s.n_props <- s.n_props + 1;
      let false_lit = p lxor 1 in
      let ws = Array.unsafe_get s.watches p in
      let i = ref 0 in
      let j = ref 0 in
      let n = Iv.size ws in
      while !i < n do
        let cr = Iv.get ws !i in
        let blk = Iv.get ws (!i + 1) in
        i := !i + 2;
        if value_lit s blk = 1 then begin
          (* Blocker true: clause satisfied, watch kept, arena untouched. *)
          Iv.set ws !j cr;
          Iv.set ws (!j + 1) blk;
          j := !j + 2
        end
        else begin
          let arena = s.arena in
          let hd = Array.unsafe_get arena cr in
          if hd land 1 = 1 then () (* dead (simplifier): drop the watch *)
          else begin
            let base = cr + 2 in
            let sz = hd lsr 2 in
            if Array.unsafe_get arena base = false_lit then begin
              Array.unsafe_set arena base (Array.unsafe_get arena (base + 1));
              Array.unsafe_set arena (base + 1) false_lit
            end;
            let first = Array.unsafe_get arena base in
            if first <> blk && value_lit s first = 1 then begin
              Iv.set ws !j cr;
              Iv.set ws (!j + 1) first;
              j := !j + 2
            end
            else begin
              (* Look for a new literal to watch. *)
              let k = ref 2 in
              while
                !k < sz && value_lit s (Array.unsafe_get arena (base + !k)) = -1
              do
                incr k
              done;
              if !k < sz then begin
                let nw = Array.unsafe_get arena (base + !k) in
                Array.unsafe_set arena (base + 1) nw;
                Array.unsafe_set arena (base + !k) false_lit;
                let ws' = Array.unsafe_get s.watches (nw lxor 1) in
                Iv.push ws' cr;
                Iv.push ws' first
                (* watch moved: not kept in this list *)
              end
              else if value_lit s first = -1 then begin
                (* Conflict: keep remaining watches and stop. *)
                confl := cr;
                s.qhead <- Iv.size s.trail;
                while !i < n do
                  Iv.set ws !j (Iv.get ws !i);
                  incr j;
                  incr i
                done;
                Iv.set ws !j cr;
                Iv.set ws (!j + 1) first;
                j := !j + 2
              end
              else begin
                unchecked_enqueue s first cr;
                Iv.set ws !j cr;
                Iv.set ws (!j + 1) first;
                j := !j + 2
              end
            end
          end
        end
      done;
      Iv.shrink ws !j
    end
  done;
  !confl

(* Rebuild every watch list from the live clauses (after the simplifier has
   reordered or killed clauses) and queue the whole trail for re-propagation.
   Also compacts the cref lists. Returns [true] when some live clause is
   already false under the root assignment. *)
let rebuild_watches s =
  for l = 0 to (2 * s.nvars) - 1 do
    Iv.clear s.watches.(l)
  done;
  let confl = ref false in
  let one iv =
    let j = ref 0 in
    for i = 0 to Iv.size iv - 1 do
      let cr = Iv.get iv i in
      if not (clause_dead s cr) then begin
        Iv.set iv !j cr;
        incr j;
        match attach_careful s cr with
        | `Conflict -> confl := true
        | `Unit l -> if value_lit s l = 0 then unchecked_enqueue s l cr
        | `Ok -> ()
      end
    done;
    Iv.shrink iv !j
  in
  one s.clauses;
  one s.learnts;
  s.qhead <- 0;
  !confl

(* -- Arena garbage collection --------------------------------------------------- *)

(* Compacts live clauses into a fresh arena. Relocation preserves literal
   order, so existing watch slots stay valid and plain re-attachment keeps the
   two-watch invariant; reasons are remapped through forwarding headers.
   Reasons pointing at dead clauses can only belong to root-level assignments
   (conflict analysis never dereferences those) and are dropped. *)
let gc_arena s =
  let old = s.arena in
  let na = Array.make (Array.length old) 0 in
  let top = ref 0 in
  let move cr =
    let hd = old.(cr) in
    let sz = hd lsr 2 in
    let nc = !top in
    na.(nc) <- hd;
    na.(nc + 1) <- old.(cr + 1);
    Array.blit old (cr + 2) na (nc + 2) sz;
    top := nc + sz + 2;
    old.(cr) <- lnot nc;
    nc
  in
  let compact iv =
    let j = ref 0 in
    for i = 0 to Iv.size iv - 1 do
      let cr = Iv.get iv i in
      if old.(cr) >= 0 && old.(cr) land 1 = 0 then begin
        Iv.set iv !j (move cr);
        incr j
      end
    done;
    Iv.shrink iv !j
  in
  compact s.clauses;
  compact s.learnts;
  for v = 0 to s.nvars - 1 do
    let r = s.reason.(v) in
    if r <> cref_undef then
      if old.(r) < 0 then s.reason.(v) <- lnot old.(r)
      else s.reason.(v) <- cref_undef
  done;
  s.arena <- na;
  s.arena_top <- !top;
  s.wasted <- 0;
  for l = 0 to (2 * s.nvars) - 1 do
    Iv.clear s.watches.(l)
  done;
  let att iv =
    for i = 0 to Iv.size iv - 1 do
      attach s (Iv.get iv i)
    done
  in
  att s.clauses;
  att s.learnts

let maybe_gc s = if s.wasted > 0 && s.wasted * 3 >= s.arena_top then gc_arena s

(* -- Model-extension stack and restoration ---------------------------------------- *)

let push_ext s ~witness lits =
  Iv.push s.ext_off (Iv.size s.ext_data);
  Iv.push s.ext_live 1;
  Iv.push s.ext_data witness;
  Iv.push s.ext_data (List.length lits);
  List.iter
    (fun l ->
      Iv.push s.ext_data l;
      s.ext_count.(l lsr 1) <- s.ext_count.(l lsr 1) + 1)
    lits

(* Extends a model of the live clauses to a total model of the input: replay
   entries newest-first; whenever the recorded clause is unsatisfied, flipping
   its witness variable satisfies it without breaking any clause fixed so far
   (the defining property of BVE groups and blocked clauses). *)
let extend_model s (m : bool array) =
  for j = Iv.size s.ext_off - 1 downto 0 do
    if Iv.get s.ext_live j = 1 then begin
      let off = Iv.get s.ext_off j in
      let witness = Iv.get s.ext_data off in
      let sz = Iv.get s.ext_data (off + 1) in
      let sat = ref false in
      for k = 0 to sz - 1 do
        let l = Iv.get s.ext_data (off + 2 + k) in
        if (if l land 1 = 0 then m.(l lsr 1) else not m.(l lsr 1)) then
          sat := true
      done;
      if not !sat then m.(witness lsr 1) <- witness land 1 = 0
    end
  done

(* Re-adds one stack entry to the database: the clause goes back in (it was
   never deleted from the proof checker's view, so no proof step is needed),
   its eliminated variables come back to life, and every variable involved is
   frozen so the entry cannot thrash in and out. *)
let restore_entry s j =
  Iv.set s.ext_live j 0;
  let off = Iv.get s.ext_off j in
  let witness = Iv.get s.ext_data off in
  let sz = Iv.get s.ext_data (off + 1) in
  let lits = Array.make sz 0 in
  for k = 0 to sz - 1 do
    let l = Iv.get s.ext_data (off + 2 + k) in
    lits.(k) <- l;
    let v = l lsr 1 in
    s.ext_count.(v) <- s.ext_count.(v) - 1;
    if s.elimed.(v) then begin
      s.elimed.(v) <- false;
      s.frozen.(v) <- true;
      if s.assigns.(v) = 0 then heap_insert s v
    end
  done;
  s.frozen.(witness lsr 1) <- true;
  s.n_restored <- s.n_restored + 1;
  let cr = alloc_clause s lits ~learnt:false in
  Iv.push s.clauses cr;
  match attach_careful s cr with
  | `Conflict -> confirm_unsat s
  | `Unit l -> if value_lit s l = 0 then unchecked_enqueue s l cr
  | `Ok -> ()

(* Incremental soundness: when a new clause or assumption mentions a variable
   that was eliminated, or that occurs in a clause parked on the extension
   stack, the affected suffix of the stack is restored (every live entry from
   the newest down to the earliest touched one). Restoring a whole suffix
   keeps the remaining prefix a valid reconstruction sequence regardless of
   how entries interleave. Runs at decision level 0. *)
let restore_touching s (ilits : int list) =
  let touched =
    List.exists
      (fun l ->
        let v = l lsr 1 in
        v < s.nvars && (s.elimed.(v) || s.ext_count.(v) > 0))
      ilits
  in
  if touched then begin
    let vars = List.map (fun l -> l lsr 1) ilits in
    let entry_touches j =
      let off = Iv.get s.ext_off j in
      let sz = Iv.get s.ext_data (off + 1) in
      let rec go k =
        k < sz
        && (List.mem (Iv.get s.ext_data (off + 2 + k) lsr 1) vars || go (k + 1))
      in
      go 0
    in
    let i0 = ref (-1) in
    (let j = ref 0 in
     let n = Iv.size s.ext_off in
     while !i0 < 0 && !j < n do
       if Iv.get s.ext_live !j = 1 && entry_touches !j then i0 := !j;
       incr j
     done);
    if !i0 >= 0 then
      for j = Iv.size s.ext_off - 1 downto !i0 do
        if Iv.get s.ext_live j = 1 then restore_entry s j
      done;
    (* Variables eliminated with no clause occurrences at all leave no stack
       entry; just revive them. *)
    List.iter
      (fun v ->
        if v < s.nvars && s.elimed.(v) then begin
          s.elimed.(v) <- false;
          s.frozen.(v) <- true;
          if s.assigns.(v) = 0 then heap_insert s v
        end)
      vars
  end

(* -- Clause addition (public hygiene path) -------------------------------------------- *)

let add_clause s (lits : Lit.t list) =
  if s.ok then begin
    cancel_until s 0;
    s.model <- None;
    let lits = List.sort_uniq Lit.compare lits in
    let il = List.map Lit.to_int lits in
    log_input s il;
    restore_touching s il;
    if s.ok then begin
      (* Sort, dedupe, drop false-at-root literals, detect tautology. *)
      let taut =
        List.exists (fun l -> List.mem (l lxor 1) il) il
        || List.exists
             (fun l -> value_lit s l = 1 && s.level.(l lsr 1) = 0)
             il
      in
      if taut then s.n_eliminated <- s.n_eliminated + 1
      else begin
        let live =
          List.filter
            (fun l -> not (value_lit s l = -1 && s.level.(l lsr 1) = 0))
            il
        in
        (* Removing root-falsified literals is itself a RUP inference. *)
        if live <> il then log_learned s live;
        match live with
        | [] -> s.ok <- false
        | [ l ] ->
          if value_lit s l = -1 then begin
            log_learned s [];
            s.ok <- false
          end
          else if value_lit s l = 0 then begin
            unchecked_enqueue s l cref_undef;
            s.dirty <- s.dirty + 1
          end
        | _ :: _ :: _ ->
          let cr = alloc_clause s (Array.of_list live) ~learnt:false in
          Iv.push s.clauses cr;
          attach s cr;
          s.dirty <- s.dirty + 1
      end
    end
  end
