type step = Input of Lit.t list | Learned of Lit.t list | Deleted of Lit.t list

type t = { mutable rev_steps : step list }

let create () = { rev_steps = [] }

let input t c = t.rev_steps <- Input c :: t.rev_steps

let learned t c = t.rev_steps <- Learned c :: t.rev_steps

let deleted t c = t.rev_steps <- Deleted c :: t.rev_steps

let steps t = List.rev t.rev_steps

let n_steps t = List.length t.rev_steps

let pp_dimacs ppf t =
  let pp_lits ppf c =
    List.iter (fun l -> Format.fprintf ppf "%d " (Lit.to_dimacs l)) c;
    Format.fprintf ppf "0@."
  in
  List.iter
    (fun step ->
      match step with
      | Input c -> Format.fprintf ppf "c input %a" pp_lits c
      | Learned c -> pp_lits ppf c
      | Deleted c -> Format.fprintf ppf "d %a" pp_lits c)
    (steps t)
