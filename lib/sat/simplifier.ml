(* SatELite-style clause-database simplification over the [Db] arena:
   subsumption, self-subsumption strengthening, bounded variable elimination
   and blocked-clause elimination, scheduled by [Solver] before a solve
   (preprocessing) and between restarts (inprocessing).

   Proof discipline under elimination:
   - Resolvents and strengthened clauses are valid RUP additions, logged as
     [Learned] before the clauses they replace are dropped.
   - Clauses removed because they are subsumed or satisfied at the root are
     logged as [Deleted].
   - Clauses parked on the model-extension stack (the originals of an
     eliminated variable, blocked clauses) are *not* logged as deleted: the
     checker keeps a superset of the live database, which is sound for RUP
     checking and lets [Db.restore_entry] re-add them later without any
     non-RUP proof step.

   All work happens at decision level 0. Derived unit clauses are enqueued on
   the trail immediately but propagated only once at the end, after
   [Db.rebuild_watches] has restored the two-watch invariant over the
   surviving clauses. *)

module Deadline = Sepsat_util.Deadline
module Obs = Sepsat_obs.Obs
module Metrics = Sepsat_obs.Metrics

let subsumption_occ_limit = 500

let bve_occ_limit = 10

let bve_clause_limit = 24

let bce_occ_limit = 60

(* Metric handles are shared across solver instances. *)
let m_rounds = lazy (Metrics.counter "sat.simplify.rounds")

let m_subsumed = lazy (Metrics.counter "sat.simplify.subsumed")

let m_strengthened = lazy (Metrics.counter "sat.simplify.strengthened")

let m_elim_vars = lazy (Metrics.counter "sat.simplify.eliminated_vars")

let m_blocked = lazy (Metrics.counter "sat.simplify.blocked")

let m_restored = lazy (Metrics.counter "sat.simplify.restored")

let m_seconds = lazy (Metrics.histogram "sat.simplify_seconds")

exception Closed
(* The database became unsat (or the deadline/stop flag fired) mid-round. *)

let check_continue (s : Db.t) ~deadline =
  if (not s.Db.ok) || Deadline.exceeded deadline || Atomic.get s.Db.stop then
    raise Closed

(* Enqueue a derived root-level unit, closing the instance when it contradicts
   the trail. The unit itself has already been logged as [Learned]. *)
let assert_unit (s : Db.t) l =
  match Db.value_lit s l with
  | -1 -> Db.confirm_unsat s
  | 0 -> Db.unchecked_enqueue s l Db.cref_undef
  | _ -> ()

(* -- Root cleanup: drop satisfied clauses, strip false literals ------------- *)

let cleanup_clause (s : Db.t) cr =
  let sz = Db.clause_size s cr in
  let sat = ref false in
  let nfalse = ref 0 in
  for i = 0 to sz - 1 do
    match Db.value_lit s (Db.clause_lit s cr i) with
    | 1 -> sat := true
    | -1 -> incr nfalse
    | _ -> ()
  done;
  if !sat then begin
    Db.log_deleted s (Db.clause_lits_list s cr);
    Db.mark_dead s cr;
    true
  end
  else if !nfalse > 0 then begin
    let old = Db.clause_lits_list s cr in
    let live = List.filter (fun l -> Db.value_lit s l <> -1) old in
    Db.log_learned s live;
    Db.log_deleted s old;
    List.iter
      (fun l -> if Db.value_lit s l = -1 then Db.clause_remove_lit s cr l)
      old;
    (match live with
    | [] ->
      Db.mark_dead s cr;
      Db.confirm_unsat s
    | [ l ] ->
      Db.mark_dead s cr;
      assert_unit s l
    | _ -> ());
    true
  end
  else false

(* -- Occurrence lists -------------------------------------------------------- *)

(* Variable-indexed occurrence lists over live problem clauses, rebuilt each
   round. Entries can go stale when a clause dies; readers re-check. Literals
   removed by strengthening are expunged eagerly so BVE polarity counts stay
   honest. *)
type occs = Db.Iv.t array

let build_occs (s : Db.t) : occs =
  let occ = Array.init s.Db.nvars (fun _ -> Db.Iv.create ~cap:4 ()) in
  for i = 0 to Db.Iv.size s.Db.clauses - 1 do
    let cr = Db.Iv.get s.Db.clauses i in
    if not (Db.clause_dead s cr) then begin
      Db.clause_calc_sig s cr;
      for k = 0 to Db.clause_size s cr - 1 do
        Db.Iv.push occ.(Db.clause_lit s cr k lsr 1) cr
      done
    end
  done;
  occ

let occ_remove (occ : occs) v cr =
  let ws = occ.(v) in
  let n = Db.Iv.size ws in
  let i = ref 0 in
  while !i < n && Db.Iv.get ws !i <> cr do
    incr i
  done;
  if !i < n then begin
    Db.Iv.set ws !i (Db.Iv.get ws (n - 1));
    Db.Iv.shrink ws (n - 1)
  end

(* -- Subsumption / self-subsumption ------------------------------------------ *)

(* MiniSat's [Clause::subsumes]: [`Sub] when C ⊆ D; [`Str l] when C subsumes D
   with exactly one literal flipped, in which case removing [l] from D (the
   resolvent of C and D, which C makes RUP) strengthens it; [`No] otherwise. *)
let subsumes (s : Db.t) c d =
  let csz = Db.clause_size s c and dsz = Db.clause_size s d in
  let flipped = ref (-1) in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < csz do
    let lc = Db.clause_lit s c !i in
    let found = ref false in
    let j = ref 0 in
    while (not !found) && !j < dsz do
      let ld = Db.clause_lit s d !j in
      if ld = lc then found := true
      else if ld = lc lxor 1 && !flipped < 0 then begin
        flipped := ld;
        found := true
      end;
      incr j
    done;
    if not !found then ok := false;
    incr i
  done;
  if not !ok then `No else if !flipped < 0 then `Sub else `Str !flipped

let strengthen (s : Db.t) occ queue cr l =
  let old = Db.clause_lits_list s cr in
  let live = List.filter (fun x -> x <> l) old in
  Db.log_learned s live;
  Db.log_deleted s old;
  Db.clause_remove_lit s cr l;
  occ_remove occ (l lsr 1) cr;
  s.Db.n_strengthened <- s.Db.n_strengthened + 1;
  match live with
  | [ u ] ->
    Db.mark_dead s cr;
    assert_unit s u
  | _ ->
    Db.clause_calc_sig s cr;
    Db.Iv.push queue cr

(* Backward subsumption with a worklist: each queued clause C kills or
   strengthens the clauses sharing its rarest variable. Signatures (62-bit
   variable masks in the arena's second header word) filter most candidates
   without touching their literals. *)
let subsumption_pass (s : Db.t) (occ : occs) ~deadline =
  let queue = Db.Iv.create ~cap:(Db.Iv.size s.Db.clauses) () in
  for i = 0 to Db.Iv.size s.Db.clauses - 1 do
    let cr = Db.Iv.get s.Db.clauses i in
    if not (Db.clause_dead s cr) then Db.Iv.push queue cr
  done;
  let changed = ref false in
  let qi = ref 0 in
  while !qi < Db.Iv.size queue do
    if !qi land 63 = 0 then check_continue s ~deadline;
    let c = Db.Iv.get queue !qi in
    incr qi;
    if not (Db.clause_dead s c) then begin
      (* rarest variable of C *)
      let best = ref (Db.clause_lit s c 0 lsr 1) in
      for k = 1 to Db.clause_size s c - 1 do
        let v = Db.clause_lit s c k lsr 1 in
        if Db.Iv.size occ.(v) < Db.Iv.size occ.(!best) then best := v
      done;
      let ws = occ.(!best) in
      if Db.Iv.size ws <= subsumption_occ_limit then begin
        let csig = Db.clause_sig s c in
        let i = ref 0 in
        while !i < Db.Iv.size ws do
          let d = Db.Iv.get ws !i in
          incr i;
          if
            d <> c
            && (not (Db.clause_dead s d))
            && (not (Db.clause_dead s c))
            && Db.clause_size s d >= Db.clause_size s c
            && csig land lnot (Db.clause_sig s d) = 0
          then
            match subsumes s c d with
            | `No -> ()
            | `Sub ->
              Db.log_deleted s (Db.clause_lits_list s d);
              Db.mark_dead s d;
              s.Db.n_subsumed <- s.Db.n_subsumed + 1;
              changed := true
            | `Str l ->
              strengthen s occ queue d l;
              changed := true;
              (* strengthening may have shifted [ws] under us *)
              i := 0
        done
      end
    end
  done;
  !changed

(* -- Bounded variable elimination --------------------------------------------- *)

(* Resolvent of [c] and [d] on variable [v]; [None] when tautological. *)
let resolve (s : Db.t) c d v =
  let lits = ref [] in
  let taut = ref false in
  let add l =
    if l lsr 1 <> v then
      if List.mem (l lxor 1) !lits then taut := true
      else if not (List.mem l !lits) then lits := l :: !lits
  in
  for i = 0 to Db.clause_size s c - 1 do
    add (Db.clause_lit s c i)
  done;
  for i = 0 to Db.clause_size s d - 1 do
    if not !taut then add (Db.clause_lit s d i)
  done;
  if !taut then None else Some (List.sort compare !lits)

let live_occs (s : Db.t) (occ : occs) v =
  let pos = ref [] and neg = ref [] in
  for i = 0 to Db.Iv.size occ.(v) - 1 do
    let cr = Db.Iv.get occ.(v) i in
    if not (Db.clause_dead s cr) then begin
      let has_pos = ref false in
      for k = 0 to Db.clause_size s cr - 1 do
        if Db.clause_lit s cr k = 2 * v then has_pos := true
      done;
      if !has_pos then pos := cr :: !pos else neg := cr :: !neg
    end
  done;
  (!pos, !neg)

(* Eliminate [v] when the set of non-tautological resolvents is no larger
   than the set of clauses it replaces (SatELite's grow-0 rule, with a cap on
   resolvent width). The originals move to the extension stack — witnessed by
   their [v]-literal — so models extend and later increments can restore. *)
let try_eliminate (s : Db.t) (occ : occs) queue v =
  let pos, neg = live_occs s occ v in
  let npos = List.length pos and nneg = List.length neg in
  if npos > bve_occ_limit && nneg > bve_occ_limit then false
  else begin
    let limit = npos + nneg in
    let resolvents = ref [] in
    let count = ref 0 in
    let feasible = ref true in
    List.iter
      (fun c ->
        List.iter
          (fun d ->
            if !feasible then
              match resolve s c d v with
              | None -> ()
              | Some lits ->
                incr count;
                if !count > limit || List.length lits > bve_clause_limit then
                  feasible := false
                else resolvents := lits :: !resolvents)
          neg)
      pos;
    if not !feasible then false
    else begin
      (* Log and add the resolvents first, then park the originals. *)
      List.iter
        (fun lits ->
          Db.log_learned s lits;
          match lits with
          | [ u ] -> assert_unit s u
          | _ ->
            let cr = Db.alloc_clause s (Array.of_list lits) ~learnt:false in
            Db.Iv.push s.Db.clauses cr;
            Db.clause_calc_sig s cr;
            List.iter (fun l -> Db.Iv.push occ.(l lsr 1) cr) lits;
            Db.Iv.push queue cr)
        !resolvents;
      List.iter
        (fun cr ->
          let witness =
            if List.mem cr pos then 2 * v else (2 * v) + 1
          in
          Db.push_ext s ~witness (Db.clause_lits_list s cr);
          Db.mark_dead s cr)
        (pos @ neg);
      s.Db.elimed.(v) <- true;
      s.Db.n_elim_vars <- s.Db.n_elim_vars + 1;
      true
    end
  end

let bve_pass (s : Db.t) (occ : occs) ~deadline =
  (* Cheapest variables first: elimination of low-occurrence variables is the
     most likely to shrink the database and unlock further eliminations. *)
  let order = Array.init s.Db.nvars (fun v -> v) in
  Array.sort
    (fun a b -> compare (Db.Iv.size occ.(a)) (Db.Iv.size occ.(b)))
    order;
  let queue = Db.Iv.create () in
  let changed = ref false in
  Array.iteri
    (fun i v ->
      if i land 63 = 0 then check_continue s ~deadline;
      if
        s.Db.ok
        && (not s.Db.frozen.(v))
        && (not s.Db.elimed.(v))
        && s.Db.assigns.(v) = 0
      then if try_eliminate s occ queue v then changed := true)
    order;
  !changed

(* -- Blocked-clause elimination ------------------------------------------------ *)

(* C is blocked on l when every resolvent of C with a clause containing ¬l is
   tautological; removing C preserves satisfiability and the extension stack
   entry (witness l) repairs any model. Checked against problem clauses only —
   learnts are implied by the input, so the reconstructed model satisfies them
   vacuously. *)
let blocked_on (s : Db.t) (occ : occs) cr l =
  let nl = l lxor 1 in
  let v = l lsr 1 in
  let ws = occ.(v) in
  let n = Db.Iv.size ws in
  if n > bce_occ_limit then false
  else begin
    let all_taut = ref true in
    let i = ref 0 in
    while !all_taut && !i < n do
      let d = Db.Iv.get ws !i in
      incr i;
      if d <> cr && not (Db.clause_dead s d) then begin
        let has_nl = ref false in
        for k = 0 to Db.clause_size s d - 1 do
          if Db.clause_lit s d k = nl then has_nl := true
        done;
        if !has_nl then begin
          let taut = ref false in
          for a = 0 to Db.clause_size s cr - 1 do
            let m = Db.clause_lit s cr a in
            if m <> l then
              for b = 0 to Db.clause_size s d - 1 do
                if Db.clause_lit s d b = m lxor 1 then taut := true
              done
          done;
          if not !taut then all_taut := false
        end
      end
    done;
    !all_taut
  end

let bce_pass (s : Db.t) (occ : occs) ~deadline =
  let changed = ref false in
  for i = 0 to Db.Iv.size s.Db.clauses - 1 do
    if i land 63 = 0 then check_continue s ~deadline;
    let cr = Db.Iv.get s.Db.clauses i in
    if not (Db.clause_dead s cr) then begin
      let k = ref 0 in
      let sz = Db.clause_size s cr in
      let hit = ref false in
      while (not !hit) && !k < sz do
        let l = Db.clause_lit s cr !k in
        let v = l lsr 1 in
        incr k;
        if
          (not s.Db.frozen.(v))
          && (not s.Db.elimed.(v))
          && s.Db.assigns.(v) = 0
          && blocked_on s occ cr l
        then begin
          Db.push_ext s ~witness:l (Db.clause_lits_list s cr);
          Db.mark_dead s cr;
          List.iter
            (fun x -> occ_remove occ (x lsr 1) cr)
            (Db.clause_lits_list s cr);
          s.Db.n_blocked <- s.Db.n_blocked + 1;
          hit := true;
          changed := true
        end
      done
    end
  done;
  !changed

(* -- Driver --------------------------------------------------------------------- *)

let round (s : Db.t) ~deadline ~bce =
  let changed = ref false in
  (* Root cleanup over problem clauses. *)
  for i = 0 to Db.Iv.size s.Db.clauses - 1 do
    if i land 255 = 0 then check_continue s ~deadline;
    let cr = Db.Iv.get s.Db.clauses i in
    if not (Db.clause_dead s cr) then
      if cleanup_clause s cr then changed := true
  done;
  check_continue s ~deadline;
  let occ = build_occs s in
  if subsumption_pass s occ ~deadline then changed := true;
  check_continue s ~deadline;
  if bve_pass s occ ~deadline then changed := true;
  check_continue s ~deadline;
  if bce then if bce_pass s occ ~deadline then changed := true;
  s.Db.n_simp_rounds <- s.Db.n_simp_rounds + 1;
  !changed

(* Drop learnt clauses mentioning eliminated variables: they are re-derivable
   and must not keep dead variables alive. Deleting learnts is always sound
   to log. *)
let purge_learnts (s : Db.t) =
  for i = 0 to Db.Iv.size s.Db.learnts - 1 do
    let cr = Db.Iv.get s.Db.learnts i in
    if not (Db.clause_dead s cr) then begin
      let touches = ref false in
      for k = 0 to Db.clause_size s cr - 1 do
        if s.Db.elimed.(Db.clause_lit s cr k lsr 1) then touches := true
      done;
      if !touches then begin
        Db.log_deleted s (Db.clause_lits_list s cr);
        Db.mark_dead s cr
      end
    end
  done

let publish (s : Db.t) before_subsumed before_str before_elim before_blocked
    before_restored rounds elapsed =
  Metrics.add (Lazy.force m_rounds) rounds;
  Metrics.add (Lazy.force m_subsumed) (s.Db.n_subsumed - before_subsumed);
  Metrics.add (Lazy.force m_strengthened)
    (s.Db.n_strengthened - before_str);
  Metrics.add (Lazy.force m_elim_vars) (s.Db.n_elim_vars - before_elim);
  Metrics.add (Lazy.force m_blocked) (s.Db.n_blocked - before_blocked);
  Metrics.add (Lazy.force m_restored) (s.Db.n_restored - before_restored);
  Metrics.observe (Lazy.force m_seconds) elapsed

(* Run up to [max_rounds] simplification rounds at decision level 0, then
   restore the two-watch invariant and propagate to quiescence. Safe to call
   whenever the trail is at the root; a deadline or stop flag aborts between
   (never inside) rewrites, leaving the database consistent. *)
let simplify (s : Db.t) ~deadline ~max_rounds =
  if s.Db.ok && Db.decision_level s = 0 then begin
    let started = Deadline.wall_now () in
    let obs = Obs.enabled () in
    let b_sub = s.Db.n_subsumed
    and b_str = s.Db.n_strengthened
    and b_elim = s.Db.n_elim_vars
    and b_blk = s.Db.n_blocked
    and b_res = s.Db.n_restored in
    let rounds = ref 0 in
    (try
       let continue = ref true in
       while !continue && !rounds < max_rounds do
         let changed = round s ~deadline ~bce:(!rounds = 0) in
         incr rounds;
         if not changed then continue := false
       done
     with Closed -> ());
    if s.Db.ok then begin
      purge_learnts s;
      (* Clauses were reordered and killed: rebuild watches from scratch and
         re-propagate the whole trail. *)
      if Db.rebuild_watches s then Db.confirm_unsat s
      else if Db.propagate s <> Db.cref_undef then Db.confirm_unsat s;
      Db.maybe_gc s
    end;
    s.Db.dirty <- 0;
    if obs then
      publish s b_sub b_str b_elim b_blk b_res !rounds
        (Deadline.wall_now () -. started)
  end
