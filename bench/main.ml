(* Benchmark driver: regenerates every table and figure of the paper's
   evaluation section (Figures 2-6 plus the SEP_THOLD selection of 4.1), then
   runs one Bechamel micro-benchmark per artifact on a small representative.

   Usage:
     main.exe                 all figures (default 30s/run deadline) + micro
     main.exe --figure 4      one artifact
     main.exe --deadline 30   per-run CPU budget in seconds
     main.exe --no-micro      skip the Bechamel pass
     main.exe --json OUT.json write every recorded run as JSON
     main.exe --strict        exit 1 if any run ended Unknown
     main.exe --repeat 3      run the selected figure(s) K times (min-of-k)
     main.exe --no-simplify   turn off SAT pre/inprocessing (A/B the simplifier)
     main.exe --baseline-out B.json   record a perf baseline
     main.exe --compare B.json        diff against a baseline; exit 4 on a
                                      noise/drift-adjusted regression
     main.exe --compare-current C.json  compare a saved report instead of
                                        running anything                  *)

module Experiments = Sepsat_harness.Experiments
module Runner = Sepsat_harness.Runner
module Suite = Sepsat_workloads.Suite
module Decide = Sepsat.Decide
module Verdict = Sepsat_sep.Verdict
module Ast = Sepsat_suf.Ast
module Deadline = Sepsat_util.Deadline
module Obs = Sepsat_obs.Obs
module Metrics = Sepsat_obs.Metrics
module Chrome_trace = Sepsat_obs.Chrome_trace

let deadline_s = ref 30.

let figure = ref "all"

let micro_enabled = ref true

let json_path = ref ""

let strict = ref false

let trace_path = ref ""

let stats = ref false

let log_level = ref "quiet"

let repeat = ref 1

let no_simplify = ref false

let flight = ref false

let baseline_out = ref ""

let compare_path = ref ""

let compare_current = ref ""

let compare_rel = ref 0.25

let compare_abs = ref 0.05

let usage =
  "main.exe [--figure 2|3|threshold|4|5|6|portfolio|parallel|all] [--deadline S] \
   [--no-micro] [--json PATH] [--strict] [--trace PATH] [--stats] \
   [--log-level quiet|info|debug] [--repeat K] [--flight] [--baseline-out PATH] \
   [--compare PATH] [--compare-rel R] [--compare-abs S] \
   [--compare-current PATH]"

let spec =
  [
    ("--figure", Arg.Set_string figure, " which artifact to regenerate");
    ("--deadline", Arg.Set_float deadline_s, " per-run CPU budget (s)");
    ("--no-micro", Arg.Clear micro_enabled, " skip Bechamel micro-benchmarks");
    ( "--json",
      Arg.Set_string json_path,
      " write every recorded run to PATH (schema-2 report object)" );
    ( "--strict",
      Arg.Set strict,
      " exit 1 if any recorded run ended with an Unknown verdict" );
    ( "--trace",
      Arg.Set_string trace_path,
      " write a Chrome trace_event JSON timeline to PATH" );
    ("--stats", Arg.Set stats, " print span rollup and metrics tables at exit");
    ("--log-level", Arg.Set_string log_level, " quiet (default), info or debug");
    ( "--no-simplify",
      Arg.Set no_simplify,
      " disable the SAT core's pre/inprocessing for every run" );
    ( "--flight",
      Arg.Set flight,
      " turn on the flight recorder for every run, as a server would — the \
       perf gate uses this to price always-on recording" );
    ( "--repeat",
      Arg.Set_int repeat,
      " run the selected figure(s) K times; baselines keep the min" );
    ( "--baseline-out",
      Arg.Set_string baseline_out,
      " write a perf baseline (min-of-k per bench/method) to PATH" );
    ( "--compare",
      Arg.Set_string compare_path,
      " compare against the baseline at PATH; exit 4 on regression" );
    ( "--compare-rel",
      Arg.Set_float compare_rel,
      " relative regression threshold after drift adjustment (default 0.25)" );
    ( "--compare-abs",
      Arg.Set_float compare_abs,
      " absolute regression threshold in seconds (default 0.05)" );
    ( "--compare-current",
      Arg.Set_string compare_current,
      " with --compare: read the current run from a saved report at PATH \
       instead of benchmarking" );
  ]

(* -- Bechamel micro-benchmarks: one per paper artifact ------------------- *)

let decide_bench method_ bench_name () =
  match Suite.find bench_name with
  | None -> invalid_arg bench_name
  | Some b ->
    let ctx = Ast.create_ctx () in
    let f = b.Suite.build ctx in
    ignore (Decide.decide ~method_ ~deadline:(Deadline.after 10.) ctx f)

let micro ppf =
  let open Bechamel in
  let stage name method_ bench =
    Test.make ~name (Staged.stage (decide_bench method_ bench))
  in
  let tests =
    Test.make_grouped ~name:"sepsat"
      [
        (* Figure 2: SD vs EIJ encodings feeding the CDCL solver *)
        stage "fig2-sd-lsu.3" Decide.Sd "lsu.3";
        stage "fig2-eij-lsu.3" Decide.Eij "lsu.3";
        (* Figure 3: EIJ cost around the separation-predicate knee *)
        stage "fig3-eij-cache.4" Decide.Eij "cache.4";
        (* Figure 4: the hybrid on a non-invariant benchmark *)
        stage "fig4-hybrid-pipe.4" Decide.Hybrid_default "pipe.4";
        (* Figure 5: SD on an invariant-checking benchmark *)
        stage "fig5-sd-ooo.0" Decide.Sd "ooo.0";
        (* Figure 6: the lazy baseline *)
        stage "fig6-lazy-cache.4" Decide.Lazy_baseline "cache.4";
      ]
  in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 1.5) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Format.fprintf ppf "== Bechamel micro-benchmarks (ns/run, OLS) ==@.";
  let rows =
    Hashtbl.fold
      (fun name res acc ->
        let est =
          match Analyze.OLS.estimates res with
          | Some (e :: _) -> e
          | Some [] | None -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, est) ->
      Format.fprintf ppf "%-28s %14.0f ns/run  (%.3f s)@." name est (est /. 1e9))
    rows;
  Format.fprintf ppf "@."

let () =
  Arg.parse (Arg.align spec) (fun a -> raise (Arg.Bad a)) usage;
  (match Obs.level_of_string !log_level with
  | Some l -> Obs.set_level l
  | None -> raise (Arg.Bad ("unknown log level: " ^ !log_level)));
  if !trace_path <> "" || !stats || Obs.get_level () <> Obs.Quiet then
    Obs.enable ();
  if !no_simplify then Decide.set_simplify_default false;
  if !flight then Sepsat_obs.Flight.enable ();
  let ppf = Format.std_formatter in
  let d = !deadline_s in
  Runner.reset_recorded ();
  let run_figures () =
    match !figure with
    | "2" -> Experiments.figure2 ~deadline_s:d ppf
    | "3" -> Experiments.figure3 ~deadline_s:d ppf
    | "threshold" -> ignore (Experiments.threshold_selection ~deadline_s:d ppf)
    | "4" -> Experiments.figure4 ~deadline_s:d ppf
    | "5" -> Experiments.figure5 ~deadline_s:d ppf
    | "6" -> Experiments.figure6 ~deadline_s:d ppf
    | "portfolio" -> Experiments.figure_portfolio ~deadline_s:d ppf
    | "parallel" -> Experiments.figure_parallel ~deadline_s:d ppf
    | "all" -> Experiments.all ~deadline_s:d ppf
    | other -> raise (Arg.Bad ("unknown figure: " ^ other))
  in
  (* With a saved current report there is nothing to benchmark: the compare
     step below judges file against file (CI uses this for the synthetic
     regression self-check). *)
  let offline = !compare_current <> "" && !compare_path <> "" in
  if not offline then
    for _ = 1 to max 1 !repeat do
      run_figures ()
    done;
  let rows = Runner.recorded_rows () in
  if !json_path <> "" then begin
    Runner.write_json !json_path rows;
    Format.fprintf ppf "wrote %d rows to %s@." (List.length rows) !json_path
  end;
  if !baseline_out <> "" then begin
    let entries = Sepsat_harness.Baseline.of_rows rows in
    Sepsat_harness.Baseline.write !baseline_out entries;
    Format.fprintf ppf "wrote %d baseline entries to %s@."
      (List.length entries) !baseline_out
  end;
  if !micro_enabled && !figure = "all" && not offline then micro ppf;
  if !trace_path <> "" then begin
    Chrome_trace.write_current !trace_path;
    Format.fprintf ppf "wrote trace to %s@." !trace_path
  end;
  if !stats then begin
    Format.fprintf ppf "%a" Obs.pp_summary (Obs.events ());
    Format.fprintf ppf "%a" Metrics.pp ()
  end;
  if !strict then begin
    let unknowns =
      List.filter
        (fun (r : Runner.row) ->
          match r.Runner.verdict with
          | Verdict.Unknown _ -> true
          | Verdict.Valid | Verdict.Invalid _ -> false)
        rows
    in
    if unknowns <> [] then begin
      List.iter
        (fun (r : Runner.row) ->
          Format.fprintf ppf "strict: %s/%a ended Unknown@." r.Runner.bench
            Decide.pp_method r.Runner.method_)
        unknowns;
      exit 1
    end
  end;
  if !compare_path <> "" then begin
    let module Baseline = Sepsat_harness.Baseline in
    let read_or_die path =
      match Baseline.read path with
      | Ok entries -> entries
      | Error msg ->
        Format.eprintf "compare: %s@." msg;
        exit 2
    in
    let baseline = read_or_die !compare_path in
    let current =
      if offline then read_or_die !compare_current
      else Baseline.of_rows rows
    in
    let c =
      Baseline.compare_ ~rel:!compare_rel ~abs_s:!compare_abs ~baseline
        current
    in
    Format.fprintf ppf "%a" Baseline.pp c;
    if Baseline.regressed c then exit 4
  end
