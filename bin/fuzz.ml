(* fuzz — differential fuzzer over the decision procedures.

   Generates random SUF formulas, decides each with SD, EIJ, HYBRID at
   several thresholds, SVC and LAZY, demands unanimous verdicts,
   witness-checks every SAT answer and DRUP-checks every UNSAT answer of a
   proof-producing method. Discrepancies are delta-debugged to a minimal
   reproducer and printed in the SMT-LIB dialect. Exit status: 0 when clean,
   1 when any failure was found. *)

module Differential = Sepsat_check.Differential
module Random_formula = Sepsat_workloads.Random_formula
module Obs = Sepsat_obs.Obs
module Metrics = Sepsat_obs.Metrics
module Chrome_trace = Sepsat_obs.Chrome_trace
open Cmdliner

let profiles =
  [
    ("small", Random_formula.small);
    ("default", Random_formula.default);
    ("equality", Random_formula.equality_only);
    ("no-apps", { Random_formula.small with Random_formula.allow_apps = false });
  ]

let profile_conv =
  let parse s =
    match List.assoc_opt s profiles with
    | Some c -> Ok c
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown profile %S (expected %s)" s
             (String.concat ", " (List.map fst profiles))))
  in
  let print ppf c =
    let name =
      match List.find_opt (fun (_, c') -> c' = c) profiles with
      | Some (n, _) -> n
      | None -> "<custom>"
    in
    Format.pp_print_string ppf name
  in
  Arg.conv (parse, print)

let iters_arg =
  Arg.(
    value & opt int 200
    & info [ "iters" ] ~docv:"N" ~doc:"Number of random formulas to check.")

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"K" ~doc:"Base seed of the deterministic run.")

let profile_arg =
  Arg.(
    value
    & opt profile_conv Random_formula.small
    & info [ "profile" ] ~docv:"P"
        ~doc:"Formula shape: small, default, equality or no-apps.")

let timeout_arg =
  Arg.(
    value & opt float 10.
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"CPU-time budget of each individual decide call.")

let simplify_modes = [ ("on", `On); ("off", `Off); ("vary", `Vary) ]

let simplify_arg =
  Arg.(
    value
    & opt (enum simplify_modes) `Vary
    & info [ "simplify" ] ~docv:"MODE"
        ~doc:
          "SAT-core pre/inprocessing: $(b,on) or $(b,off) for every \
           iteration, or $(b,vary) (default) to alternate per iteration and \
           fuzz the simplifier against the plain core.")

let parallel_modes = [ ("on", `On); ("off", `Off); ("vary", `Vary) ]

let parallel_arg =
  Arg.(
    value
    & opt (enum parallel_modes) `Off
    & info [ "parallel" ] ~docv:"MODE"
        ~doc:
          "Cross-check the structure-parallel strategies (COMPONENTS, CUBE) \
           against the sequential procedures: $(b,on) every iteration, \
           $(b,off) (default) never, or $(b,vary) on an independent bit of \
           the iteration seed.")

let no_shrink_arg =
  Arg.(
    value & flag
    & info [ "no-shrink" ]
        ~doc:"Report failing formulas as generated, without delta debugging.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress progress output.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON timeline of the whole fuzzing run \
           to $(docv) (Perfetto / chrome://tracing).")

let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"After the run, print the span rollup and metrics tables.")

let log_level_arg =
  Arg.(
    value & opt string "quiet"
    & info [ "log-level" ] ~docv:"LEVEL" ~doc:"quiet (default), info or debug.")

let run iters seed gen timeout simplify parallel no_shrink quiet trace stats
    log_level =
  (match Obs.level_of_string log_level with
  | Some l -> Obs.set_level l
  | None ->
    Printf.eprintf "unknown log level %S (expected quiet, info or debug)\n"
      log_level;
    exit 2);
  if trace <> None || stats || Obs.get_level () <> Obs.Quiet then
    Obs.enable ();
  let log = if quiet then fun _ -> () else fun s -> Printf.eprintf "%s\n%!" s in
  let vary_simplify =
    match simplify with
    | `On -> Sepsat.Decide.set_simplify_default true; false
    | `Off -> Sepsat.Decide.set_simplify_default false; false
    | `Vary -> true
  in
  let summary =
    Differential.fuzz
      ~procedures:(Differential.default_procedures ~timeout ())
      ~gen ~shrink_failures:(not no_shrink) ~vary_simplify ~parallel
      ~parallel_timeout:timeout ~log ~iters ~seed ()
  in
  Format.printf "%a" Differential.pp_summary summary;
  (match trace with
  | Some path -> Chrome_trace.write_current path
  | None -> ());
  if stats then begin
    Format.printf "%a" Obs.pp_summary (Obs.events ());
    Format.printf "%a" Metrics.pp ()
  end;
  exit (if summary.Differential.failures = [] then 0 else 1)

let () =
  let info =
    Cmd.info "fuzz" ~version:"1.0.0"
      ~doc:
        "Differential fuzzer certifying the sepsat decision procedures \
         against each other, with witness checking of SAT answers and DRUP \
         checking of UNSAT answers."
  in
  let term =
    Term.(
      const run $ iters_arg $ seed_arg $ profile_arg $ timeout_arg
      $ simplify_arg $ parallel_arg $ no_shrink_arg $ quiet_arg $ trace_arg
      $ stats_flag $ log_level_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
