(* sufdec — command-line front end of the sepsat decision procedure.

   sufdec solve FILE [--method M | --portfolio] [--timeout S] [--countermodel]
                     [--certify]
   sufdec smt FILE [--method M] [--timeout S]      SMT-LIB 2 (QF_UFIDL subset)
   sufdec stats FILE
   sufdec cnf FILE [--method M]                    DIMACS export
   sufdec gen --family F --size N [--bug] [--seed K]
   sufdec bench [--figure 2|3|threshold|4|5|6|portfolio|all] [--timeout S]
   sufdec list
   sufdec serve [--socket PATH] [--workers N] [--queue N] [--cache N]
                [--flight-dir DIR]
   sufdec submit --socket PATH [FILE...|--suite S] [--method M] [--json]
   sufdec top --socket PATH [--interval S] [--frames N]
   sufdec loadgen [--clients N] [--repeats K] [--json FILE]

   FILE is '-' for stdin throughout. *)

module Ast = Sepsat_suf.Ast
module Parse = Sepsat_suf.Parse
module Decide = Sepsat.Decide
module Countermodel = Sepsat.Countermodel
module Verdict = Sepsat_sep.Verdict
module Brute = Sepsat_sep.Brute
module Deadline = Sepsat_util.Deadline
module Suite = Sepsat_workloads.Suite
module Obs = Sepsat_obs.Obs
module Metrics = Sepsat_obs.Metrics
module Progress = Sepsat_obs.Progress
module Chrome_trace = Sepsat_obs.Chrome_trace
open Cmdliner

(* Chunked, not byte-at-a-time: scripts pipe whole benchmark suites through
   stdin, and 64 KiB reads keep that I/O-bound rather than syscall-bound. *)
let read_all ic =
  let buf = Buffer.create 65536 in
  let chunk = Bytes.create 65536 in
  let rec loop () =
    let n = input ic chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      loop ()
    end
  in
  (try loop () with End_of_file -> ());
  Buffer.contents buf

let read_text path = if path = "-" then read_all stdin else (
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read_all ic))

let read_formula ctx path =
  if path = "-" then Parse.formula ctx (read_all stdin)
  else Parse.formula_of_file ctx path

let method_conv =
  let parse s =
    match Decide.method_of_string s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown method %S (expected sd, eij, hybrid, hybrid:<n>, svc, \
              lazy, portfolio, components, cube)"
             s))
  in
  let print ppf m = Decide.pp_method ppf m in
  Arg.conv (parse, print)

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Formula file in the s-expression syntax ('-' for stdin).")

let method_arg =
  Arg.(
    value
    & opt method_conv Decide.Hybrid_default
    & info [ "m"; "method" ] ~docv:"METHOD"
        ~doc:
          "Decision method: sd, eij, hybrid, hybrid:N, svc, lazy, \
           portfolio, components or cube.")

let portfolio_arg =
  Arg.(
    value & flag
    & info [ "portfolio" ]
        ~doc:
          "Race SD, EIJ and HYBRID on separate cores; the first decisive \
           verdict wins and cancels the others. Overrides $(b,--method).")

let timeout_arg =
  Arg.(
    value
    & opt float 60.
    & info [ "t"; "timeout" ] ~docv:"SECONDS" ~doc:"CPU-time budget.")

let countermodel_arg =
  Arg.(
    value & flag
    & info [ "countermodel" ]
        ~doc:"On an invalid formula, print a falsifying assignment.")

let certify_arg =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Record a DRUP proof and replay it through the independent \
           checker; valid verdicts then report their certification status. \
           Eager methods only.")

(* -- Observability flags (shared by solve, smt and bench) ----------------- *)

let level_conv =
  let parse s =
    match Obs.level_of_string s with
    | Some l -> Ok l
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown log level %S (expected quiet, info or debug)" s))
  in
  let print ppf l =
    Format.pp_print_string ppf
      (match l with Obs.Quiet -> "quiet" | Obs.Info -> "info" | Obs.Debug -> "debug")
  in
  Arg.conv (parse, print)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON timeline of the run to $(docv); \
           load it in https://ui.perfetto.dev or chrome://tracing.")

let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"After the run, print the span rollup and metrics tables.")

let log_level_arg =
  Arg.(
    value
    & opt level_conv Obs.Quiet
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "quiet (default), info or debug. info prints one CDCL progress \
           line per second to stderr; debug prints four.")

(* Turns collection on when any observability output was requested; the
   returned finalizer writes/prints those outputs (call it before [exit]). *)
let obs_setup trace stats level =
  Obs.set_level level;
  if trace <> None || stats || level <> Obs.Quiet then begin
    Obs.enable ();
    match level with
    | Obs.Debug -> Progress.install_printer ~every_s:0.25 ()
    | Obs.Info -> Progress.install_printer ()
    | Obs.Quiet -> ()
  end;
  fun () ->
    (match trace with
    | Some path ->
      Chrome_trace.write_current path;
      Obs.log Obs.Info "trace written to %s" path
    | None -> ());
    if stats then begin
      Format.printf "%a" Obs.pp_summary (Obs.events ());
      Format.printf "%a" Metrics.pp ()
    end

let obs_term = Term.(const obs_setup $ trace_arg $ stats_flag $ log_level_arg)

let pp_assignment ppf (a : Brute.assignment) =
  List.iter (fun (n, v) -> Format.fprintf ppf "  %s = %d@." n v) a.Brute.ints;
  List.iter (fun (n, b) -> Format.fprintf ppf "  %s = %b@." n b) a.Brute.bools

let solve_cmd =
  let run file method_ portfolio timeout countermodel certify obs_finish =
    let method_ = if portfolio then Decide.Portfolio else method_ in
    let ctx = Ast.create_ctx () in
    match Obs.span ~cat:"pipeline" "parse" (fun () -> read_formula ctx file) with
    | exception Parse.Error msg ->
      Format.eprintf "parse error: %s@." msg;
      exit 2
    | formula ->
      let deadline = Deadline.after timeout in
      let r =
        Obs.span ~cat:"pipeline" "solve" (fun () ->
            Decide.decide ~method_ ~deadline ~certify ctx formula)
      in
      Format.printf "method:     %a@." Decide.pp_method method_;
      (match r.Decide.winner with
      | Some w -> Format.printf "winner:     %a@." Decide.pp_method w
      | None -> ());
      Format.printf "size:       %d DAG nodes@." (Ast.size formula);
      Format.printf "translate:  %.3fs@." r.Decide.translate_time;
      Format.printf "search:     %.3fs@." r.Decide.sat_time;
      (match r.Decide.phase_times with
      | [] -> ()
      | phases ->
        Format.printf "phases:    ";
        List.iter (fun (n, t) -> Format.printf " %s=%.3fs" n t) phases;
        Format.printf "@.");
      (match r.Decide.sat_stats with
      | Some st ->
        Format.printf "sat:        %a@." Sepsat_sat.Solver.pp_stats st
      | None -> ());
      let code =
        match r.Decide.verdict with
        | Verdict.Valid ->
          (match r.Decide.certified with
          | Some true -> Format.printf "result:     valid (DRUP-certified)@."
          | Some false ->
            Format.printf "result:     valid (CERTIFICATION FAILED)@."
          | None -> Format.printf "result:     valid@.");
          0
        | Verdict.Invalid assignment ->
          Format.printf "result:     invalid@.";
          if countermodel then begin
            Format.printf "countermodel (separation-logic constants):@.";
            pp_assignment Format.std_formatter assignment;
            match r.Decide.witness with
            | Some w ->
              Format.printf
                "first-order witness (falsifies the original formula):@.%a"
                Sepsat.Witness.pp w
            | None -> ()
          end;
          1
        | Verdict.Unknown why ->
          Format.printf "result:     unknown (%s)@." why;
          (* Unknown must not be a dead end: name the phase that gave up so
             the user knows whether to raise the timeout, switch encodings
             or shrink the formula. *)
          (match List.rev r.Decide.phase_times with
          | (phase, t) :: _ ->
            Format.printf "gave up in: %s (%.3fs of %.3fs total)@." phase t
              r.Decide.total_time
          | [] -> ());
          (match r.Decide.cnf_clauses with
          | 0 -> ()
          | n -> Format.printf "cnf:        %d clauses@." n);
          3
      in
      obs_finish ();
      exit code
  in
  let term =
    Term.(
      const run $ file_arg $ method_arg $ portfolio_arg $ timeout_arg
      $ countermodel_arg $ certify_arg $ obs_term)
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Decide the validity of a SUF formula.")
    term

let stats_cmd =
  let run file =
    let ctx = Ast.create_ctx () in
    match read_formula ctx file with
    | exception Parse.Error msg ->
      Format.eprintf "parse error: %s@." msg;
      exit 2
    | formula ->
      let elim = Decide.eliminate ctx formula in
      let normalized = Sepsat_sep.Normal.normalize ctx elim.Sepsat_suf.Elim.formula in
      let classes =
        Sepsat_sep.Classes.build ~p_consts:elim.Sepsat_suf.Elim.p_consts
          normalized
      in
      Format.printf "size:             %d DAG nodes@." (Ast.size formula);
      Format.printf "functions:        %d@."
        (List.length (Ast.functions formula));
      Format.printf "predicates:       %d@."
        (List.length (Ast.predicates formula));
      Format.printf "p-constants:      %d@."
        (Sepsat_util.Sset.cardinal elim.Sepsat_suf.Elim.p_consts);
      Format.printf "atoms:            %d@."
        (Sepsat_sep.Classes.num_atoms classes);
      Format.printf "sep. predicates:  %d@."
        (Sepsat_sep.Classes.total_sep_cnt classes);
      Format.printf "classes:@.";
      Array.iter
        (fun (c : Sepsat_sep.Classes.class_info) ->
          Format.printf
            "  class %d: %d members, range %d, SepCnt %d -> %s@."
            c.Sepsat_sep.Classes.id
            (List.length c.Sepsat_sep.Classes.members)
            c.Sepsat_sep.Classes.range c.Sepsat_sep.Classes.sep_cnt
            (if
               c.Sepsat_sep.Classes.sep_cnt
               > Sepsat_encode.Hybrid.default_threshold
             then "SD"
             else "EIJ"))
        (Sepsat_sep.Classes.classes classes)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Print encoding-relevant statistics of a SUF formula.")
    Term.(const run $ file_arg)

let family_conv =
  let parse s =
    match
      List.find_opt
        (fun f -> Suite.family_name f = s)
        [
          Suite.Pipeline; Suite.Load_store; Suite.Ooo_invariant; Suite.Cache;
          Suite.Trans_valid; Suite.Device_driver; Suite.Batch;
        ]
    with
    | Some f -> Ok f
    | None -> Error (`Msg (Printf.sprintf "unknown family %S" s))
  in
  Arg.conv (parse, fun ppf f -> Format.pp_print_string ppf (Suite.family_name f))

let gen_cmd =
  let run family size bug seed =
    let ctx = Ast.create_ctx () in
    let formula =
      match family with
      | Suite.Pipeline ->
        Sepsat_workloads.Pipeline.formula ~bug ctx ~n_instructions:size ~seed
      | Suite.Load_store -> Sepsat_workloads.Load_store.formula ~bug ctx ~n_ops:size
      | Suite.Ooo_invariant ->
        Sepsat_workloads.Ooo_invariant.formula ~bug ctx ~n_entries:size
      | Suite.Cache -> Sepsat_workloads.Cache.formula ~bug ctx ~n_caches:size
      | Suite.Trans_valid ->
        Sepsat_workloads.Trans_valid.formula ~bug ctx ~n_blocks:size ~seed
      | Suite.Device_driver ->
        Sepsat_workloads.Device_driver.formula ~bug ctx ~n_steps:size ~seed
      | Suite.Batch ->
        Sepsat_workloads.Batch.formula ~bug ctx ~n_units:4 ~n_ops:size
    in
    Format.printf "%a@." Ast.pp formula
  in
  let family_arg =
    Arg.(
      required
      & opt (some family_conv) None
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:
            "Benchmark family: pipeline, load-store, ooo-invariant, cache, \
             trans-valid or device-driver.")
  in
  let size_arg =
    Arg.(value & opt int 5 & info [ "size" ] ~docv:"N" ~doc:"Instance size.")
  in
  let bug_arg =
    Arg.(value & flag & info [ "bug" ] ~doc:"Generate the invalid mutation.")
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"K" ~doc:"Random seed.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a benchmark formula on stdout.")
    Term.(const run $ family_arg $ size_arg $ bug_arg $ seed_arg)

let bench_cmd =
  let run figure timeout obs_finish =
    let ppf = Format.std_formatter in
    (match figure with
    | "2" -> Sepsat_harness.Experiments.figure2 ~deadline_s:timeout ppf
    | "3" -> Sepsat_harness.Experiments.figure3 ~deadline_s:timeout ppf
    | "threshold" ->
      ignore (Sepsat_harness.Experiments.threshold_selection ~deadline_s:timeout ppf)
    | "4" -> Sepsat_harness.Experiments.figure4 ~deadline_s:timeout ppf
    | "5" -> Sepsat_harness.Experiments.figure5 ~deadline_s:timeout ppf
    | "6" -> Sepsat_harness.Experiments.figure6 ~deadline_s:timeout ppf
    | "portfolio" ->
      Sepsat_harness.Experiments.figure_portfolio ~deadline_s:timeout ppf
    | "parallel" ->
      Sepsat_harness.Experiments.figure_parallel ~deadline_s:timeout ppf
    | "all" -> Sepsat_harness.Experiments.all ~deadline_s:timeout ppf
    | other ->
      Format.eprintf "unknown figure %S@." other;
      exit 2);
    obs_finish ()
  in
  let figure_arg =
    Arg.(
      value & opt string "all"
      & info [ "figure" ] ~docv:"ID"
          ~doc:"2, 3, threshold, 4, 5, 6, portfolio, parallel or all.")
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Regenerate the paper's tables and figures.")
    Term.(const run $ figure_arg $ timeout_arg $ obs_term)

let cnf_cmd =
  let run file method_ =
    let ctx = Ast.create_ctx () in
    match read_formula ctx file with
    | exception Parse.Error msg ->
      Format.eprintf "parse error: %s@." msg;
      exit 2
    | formula -> (
      let config =
        match method_ with
        | Decide.Sd -> Sepsat_encode.Hybrid.sd_only
        | Decide.Eij -> Sepsat_encode.Hybrid.eij_only
        | Decide.Hybrid_default -> Sepsat_encode.Hybrid.default
        | Decide.Hybrid_at t -> Sepsat_encode.Hybrid.hybrid ~threshold:t ()
        | Decide.Svc_baseline | Decide.Lazy_baseline | Decide.Portfolio
        | Decide.Components | Decide.Cube_and_conquer ->
          Format.eprintf "cnf export requires a single eager method@.";
          exit 2
      in
      let elim = Decide.eliminate ctx formula in
      match
        Sepsat_encode.Hybrid.encode ~config ctx
          ~p_consts:elim.Sepsat_suf.Elim.p_consts elim.Sepsat_suf.Elim.formula
      with
      | exception Sepsat_encode.Hybrid.Translation_blowup ->
        Format.eprintf "translation blowup@.";
        exit 3
      | encoded ->
        let solver = Sepsat_sat.Solver.create () in
        let ts = Sepsat_prop.Tseitin.create solver in
        Sepsat_prop.Tseitin.assert_root ts
          (Sepsat_prop.Formula.not_ encoded.Sepsat_encode.Hybrid.prop_ctx
             encoded.Sepsat_encode.Hybrid.f_bool);
        let nvars, clauses = Sepsat_sat.Solver.export_cnf solver in
        Format.printf "c negation of the validity query of %s@." file;
        Format.printf "c the formula is valid iff this instance is unsat@.";
        Format.printf "%a" Sepsat_sat.Dimacs.print
          { Sepsat_sat.Dimacs.nvars; clauses })
  in
  Cmd.v
    (Cmd.info "cnf"
       ~doc:
         "Print the DIMACS CNF of the (negated) validity query, for external \
          SAT solvers.")
    Term.(const run $ file_arg $ method_arg)

let smt_cmd =
  let run file method_ timeout obs_finish =
    let ctx = Ast.create_ctx () in
    match
      if file = "-" then Sepsat_suf.Smtlib.script ctx (read_all stdin)
      else Sepsat_suf.Smtlib.script_of_file ctx file
    with
    | exception Sepsat_suf.Smtlib.Error msg ->
      Format.eprintf "smt-lib error: %s@." msg;
      exit 2
    | script ->
      let goal = Sepsat_suf.Smtlib.goal ctx script in
      let deadline = Deadline.after timeout in
      let r = Decide.decide ~method_ ~deadline ctx goal in
      let code =
        match r.Decide.verdict with
        | Verdict.Valid ->
          print_endline "unsat";
          0
        | Verdict.Invalid _ ->
          print_endline "sat";
          0
        | Verdict.Unknown why ->
          Format.printf "unknown ; %s@." why;
          3
      in
      obs_finish ();
      exit code
  in
  Cmd.v
    (Cmd.info "smt"
       ~doc:
         "Run an SMT-LIB 2 script (QF_UFIDL subset) and answer check-sat.")
    Term.(const run $ file_arg $ method_arg $ timeout_arg $ obs_term)

(* -- Serving -------------------------------------------------------------- *)

module Engine = Sepsat_serve.Engine
module Server = Sepsat_serve.Server
module Session = Sepsat_serve.Session
module Protocol = Sepsat_serve.Protocol

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path (serve: listen; submit: connect).")

let serve_cmd =
  let run socket metrics_socket log_json flight_dir workers queue_cap
      cache_cap default_timeout instance obs_finish =
    (match instance with
    | None -> ()
    | Some label ->
      (* Fleet members stamp their series so the router can merge the
         backends' expositions into one document without collisions. *)
      Sepsat_obs.Prom.set_const_labels [ ("backend", label) ]);
    let log_close =
      match log_json with
      | None -> fun () -> ()
      | Some "-" ->
        Sepsat_obs.Log.enable ();
        fun () -> ()
      | Some path ->
        let oc = open_out path in
        let sink line =
          output_string oc line;
          output_char oc '\n';
          flush oc
        in
        Sepsat_obs.Log.enable ~sink ();
        fun () ->
          Sepsat_obs.Log.disable ();
          close_out_noerr oc
    in
    let engine =
      Engine.create ?workers ?flight_dir ~queue_capacity:queue_cap
        ~cache_capacity:cache_cap ~default_timeout_s:default_timeout ()
    in
    (* The engine turned the flight recorder on; wire up the on-demand
       dumps: SIGUSR1 for a live server, the crash handler for everything
       else. *)
    Sepsat_obs.Flight.install_signal_dump ();
    Sepsat_obs.Flight.install_crash_dump ();
    (match socket with
    | Some path -> Server.serve_unix ?metrics_path:metrics_socket engine ~path
    | None ->
      (* Stdio mode still gets the scrape socket: the JSON-lines stream is
         owned by the client, so HTTP is the only side channel. *)
      let stop = Atomic.make false in
      let metrics_th =
        Option.map
          (fun p -> Server.serve_metrics ~path:p ~stop)
          metrics_socket
      in
      ignore (Server.serve_channels engine stdin stdout);
      Atomic.set stop true;
      Option.iter Thread.join metrics_th);
    Engine.shutdown engine;
    log_close ();
    obs_finish ()
  in
  let metrics_socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-socket" ] ~docv:"PATH"
          ~doc:
            "Serve Prometheus scrapes (GET /metrics over HTTP) on a second \
             Unix-domain socket, e.g. for curl --unix-socket $(docv) \
             http://localhost/metrics.")
  in
  let log_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-json" ] ~docv:"FILE"
          ~doc:
            "Write structured JSON-lines request logs (one object per \
             event, correlated by request id) to $(docv); '-' for stderr.")
  in
  let flight_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-dir" ] ~docv:"DIR"
          ~doc:
            "Directory for flight-recorder dumps (default: current \
             directory). Also arms automatic dumps on per-request deadline \
             expiry; SIGUSR1 and crash dumps are always armed.")
  in
  let workers_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains (default: cores - 1, clamped to 1..8).")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Bounded request-queue capacity; beyond it the server sheds \
             load with busy replies.")
  in
  let cache_arg =
    Arg.(
      value & opt int 1024
      & info [ "cache" ] ~docv:"N" ~doc:"Result-cache capacity in entries.")
  in
  let default_timeout_arg =
    Arg.(
      value & opt float 30.
      & info [ "t"; "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Default per-request wall-clock budget (requests may override \
             with timeout_s). Expiry answers unknown; it never kills the \
             server.")
  in
  let instance_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "instance" ] ~docv:"LABEL"
          ~doc:
            "Stamp every Prometheus series with a constant \
             backend=\"$(docv)\" label — how fleet members keep their \
             metrics distinct when the router merges them.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the solver as a long-lived service speaking the JSON-lines \
          protocol on stdin/stdout or a Unix-domain socket.")
    Term.(
      const run $ socket_arg $ metrics_socket_arg $ log_json_arg
      $ flight_dir_arg $ workers_arg $ queue_arg $ cache_arg
      $ default_timeout_arg $ instance_arg $ obs_term)

let submit_cmd =
  let run socket files suite method_ timeout lang_s as_json retries no_retry
      do_ping do_stats do_metrics do_dump do_shutdown =
    let path =
      match socket with
      | Some p -> p
      | None ->
        Format.eprintf "submit requires --socket PATH@.";
        exit 2
    in
    let lang =
      match Protocol.lang_of_string lang_s with
      | Some l -> l
      | None ->
        Format.eprintf "unknown lang %S (expected suf or smt)@." lang_s;
        exit 2
    in
    let session =
      try ref (Session.connect ~retries:50 path)
      with Unix.Unix_error (e, _, _) ->
        Format.eprintf "cannot connect to %s: %s@." path (Unix.error_message e);
        exit 2
    in
    (* Busy sheds and connections dropped by a restarting backend retry
       with jittered backoff; --no-retry keeps the first answer (the
       scriptable mode — a busy is then visible, not hidden). *)
    let attempts = if no_retry then 1 else max 1 retries in
    let rpc_retrying req =
      let s, reply =
        Session.with_retry ~attempts ~path !session (fun s ->
            Session.rpc s req)
      in
      session := s;
      reply
    in
    let failures = ref 0 in
    let print_reply reply =
      if as_json then print_endline (Protocol.reply_to_line reply)
      else
        match reply with
        | Protocol.Ok_solve s ->
          let trace_suffix =
            match s.Protocol.sv_trace with
            | None -> ""
            | Some tr ->
              Printf.sprintf " rid=%s via=%s" tr.Protocol.rt_rid
                tr.Protocol.rt_served_by
          in
          Format.printf "%-24s %-8s origin=%-6s solve=%.3fms time=%.3fms%s@."
            s.Protocol.sv_id
            (Protocol.verdict_to_string s.Protocol.sv_verdict)
            (Protocol.origin_to_string s.Protocol.sv_origin)
            s.Protocol.sv_solve_ms s.Protocol.sv_time_ms trace_suffix
        | Protocol.Busy id ->
          incr failures;
          Format.printf "%-24s BUSY (queue full — retry)@." id
        | Protocol.Error (id, reason) ->
          incr failures;
          Format.printf "%-24s ERROR %s@." id reason
        | Protocol.Pong id -> Format.printf "%-24s pong@." id
        | Protocol.Warmed id -> Format.printf "%-24s warmed@." id
        | Protocol.Bye id -> Format.printf "%-24s bye@." id
        | Protocol.Stats (id, j) ->
          Format.printf "%-24s %s@." id (Sepsat_serve.Json.to_string j)
        | Protocol.Metrics (_, body) ->
          (* The exposition document is already line-oriented text. *)
          print_string body
        | Protocol.Dump (_, body) ->
          (* One JSON document — pipe it to python3 -m json.tool or jq. *)
          print_endline body
    in
    if do_ping then print_reply (rpc_retrying (Protocol.Ping "ping"));
    (* Benchmark-suite workloads, by name; files afterwards. *)
    let suite_requests =
      match suite with
      | None -> []
      | Some sel ->
        let benches =
          match sel with
          | "figure2" ->
            List.filter_map Suite.find
              [ "pipe.3"; "pipe.5"; "cache.5"; "cache.6"; "tv.1" ]
          | "sample16" -> Suite.sample16
          | "all" -> Suite.benchmarks
          | name -> (
            match Suite.find name with
            | Some b -> [ b ]
            | None ->
              Format.eprintf
                "unknown suite %S (expected figure2, sample16, all or a \
                 benchmark name)@."
                sel;
              exit 2)
        in
        List.map
          (fun (b : Suite.benchmark) ->
            let ctx = Ast.create_ctx () in
            (b.Suite.name, Format.asprintf "%a" Ast.pp (b.Suite.build ctx)))
          benches
    in
    let file_requests = List.map (fun f -> (f, read_text f)) files in
    List.iter
      (fun (id, text) ->
        print_reply
          (rpc_retrying
             (Protocol.Solve
                {
                  Protocol.sq_id = id;
                  sq_lang = lang;
                  sq_text = text;
                  sq_method = method_;
                  sq_timeout_s = Some timeout;
                  sq_trace = None;
                })))
      (suite_requests @ file_requests);
    if do_stats then
      print_reply (rpc_retrying (Protocol.Stats_req "stats"));
    if do_metrics then
      print_reply (rpc_retrying (Protocol.Metrics_req "metrics"));
    if do_dump then print_reply (rpc_retrying (Protocol.Dump_req "dump"));
    if do_shutdown then
      print_reply (Session.rpc !session (Protocol.Shutdown ""));
    Session.close !session;
    if !failures > 0 then exit 3
  in
  let files_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE" ~doc:"Formula files to submit ('-' for stdin).")
  in
  let suite_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "suite" ] ~docv:"SEL"
          ~doc:
            "Submit built-in benchmarks: figure2, sample16, all, or a \
             benchmark name.")
  in
  let lang_arg =
    Arg.(
      value & opt string "suf"
      & info [ "lang" ] ~docv:"LANG" ~doc:"Input language: suf or smt.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print raw protocol reply lines (JSON-lines).")
  in
  let ping_flag =
    Arg.(value & flag & info [ "ping" ] ~doc:"Ping the server first.")
  in
  let stats_flag' =
    Arg.(
      value & flag
      & info [ "server-stats" ] ~doc:"Fetch server statistics afterwards.")
  in
  let metrics_flag =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Fetch the server's Prometheus exposition document afterwards \
             (printed as text; with $(b,--json), as the raw reply line).")
  in
  let dump_flag =
    Arg.(
      value & flag
      & info [ "dump" ]
          ~doc:
            "Fetch the server's flight-recorder contents afterwards (one \
             JSON document).")
  in
  let shutdown_flag =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Ask the server to shut down afterwards.")
  in
  let retries_arg =
    Arg.(
      value & opt int 8
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry budget for transient failures — busy sheds and \
             connections dropped by a restarting backend — with jittered \
             exponential backoff (0.1 s base, 2 s cap).")
  in
  let no_retry_flag =
    Arg.(
      value & flag
      & info [ "no-retry" ]
          ~doc:
            "Take the first answer, transient or not; busy replies and \
             dropped connections surface immediately.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit formulas (files or built-in benchmarks) to a running \
          sufdec server over its Unix-domain socket.")
    Term.(
      const run $ socket_arg $ files_arg $ suite_arg $ method_arg
      $ timeout_arg $ lang_arg $ json_flag $ retries_arg $ no_retry_flag
      $ ping_flag $ stats_flag' $ metrics_flag $ dump_flag $ shutdown_flag)

(* -- top: live terminal dashboard ----------------------------------------- *)

module Sjson = Sepsat_serve.Json

let top_cmd =
  let run socket interval frames =
    let path =
      match socket with
      | Some p -> p
      | None ->
        Format.eprintf "top requires --socket PATH@.";
        exit 2
    in
    let session =
      try Session.connect ~retries:50 path
      with Unix.Unix_error (e, _, _) ->
        Format.eprintf "cannot connect to %s: %s@." path (Unix.error_message e);
        exit 2
    in
    let num k j = Option.value ~default:0. (Sjson.mem_num k j) in
    let str k j = Option.value ~default:"" (Sjson.mem_str k j) in
    let obj k j = Option.value ~default:(Sjson.Obj []) (Sjson.member k j) in
    let arr k j =
      match Sjson.member k j with Some (Sjson.Arr l) -> l | _ -> []
    in
    (* Rolling trend history, newest first; sparklines read oldest first. *)
    let hist_qps = ref [] and hist_queue = ref [] and hist_p99 = ref [] in
    let push h v = h := v :: !h in
    let spark h =
      Sepsat_harness.Ascii_plot.sparkline (Array.of_list (List.rev !h))
    in
    let prev = ref None in
    let frame i =
      match Session.stats session with
      | None ->
        Format.eprintf "server did not answer stats@.";
        exit 3
      | Some j ->
        let now = Unix.gettimeofday () in
        let completed = num "completed" j in
        let qps =
          match !prev with
          | Some (c0, t0) when now -. t0 > 1e-3 -> (completed -. c0) /. (now -. t0)
          | _ -> 0.
        in
        prev := Some (completed, now);
        push hist_qps qps;
        push hist_queue (num "queue_depth" j);
        let lat = obj "latency_ms" j in
        push hist_p99 (num "p99" lat);
        let cache = obj "cache" j in
        let hits = num "hits" cache and misses = num "misses" cache in
        let hit_rate =
          if hits +. misses > 0. then 100. *. hits /. (hits +. misses) else 0.
        in
        (* A single frame is a plain report (the CI mode); a live loop
           repaints in place. *)
        if frames <> 1 then print_string "\027[2J\027[H";
        Format.printf "sufdec top — %s  frame %d%s  every %.1fs@." path i
          (if frames = 0 then "" else Printf.sprintf "/%d" frames)
          interval;
        Format.printf
          "requests  submitted %.0f  completed %.0f  shed %.0f  errors %.0f  \
           workers %.0f@."
          (num "submitted" j) completed (num "shed" j) (num "errors" j)
          (num "workers" j);
        Format.printf "qps       %8.1f  %s@." qps (spark hist_qps);
        Format.printf "queue     %8.0f  %s@." (num "queue_depth" j)
          (spark hist_queue);
        Format.printf "p99 ms    %8.2f  %s@." (num "p99" lat) (spark hist_p99);
        Format.printf
          "latency   p50 %.2fms  p90 %.2fms  p99 %.2fms over %.0f reqs%s@."
          (num "p50" lat) (num "p90" lat) (num "p99" lat) (num "count" lat)
          (match str "p99_rid" lat with
          | "" -> ""
          | rid -> Printf.sprintf "  (p99 exemplar %s)" rid);
        Format.printf
          "cache     %.1f%% hit  (hits %.0f  misses %.0f  size %.0f/%.0f)@."
          hit_rate hits misses (num "size" cache) (num "capacity" cache);
        (match arr "exemplars" j with
        | [] -> ()
        | exes ->
          (* Fleet stats tag each exemplar with the backend it ran on;
             single-server stats have no backend field and get no column. *)
          let fleet = List.exists (fun e -> str "backend" e <> "") exes in
          Format.printf "slowest request per latency bucket:@.";
          List.iter
            (fun e ->
              let le =
                match Sjson.member "le" e with
                | Some (Sjson.Num ub) -> Printf.sprintf "%g" ub
                | _ -> "+Inf"
              in
              if fleet then
                Format.printf "  le %-6s  %-16s on %-8s %8.1fms@." le
                  (str "rid" e) (str "backend" e)
                  (1000. *. num "value_s" e)
              else
                Format.printf "  le %-6s  %-12s %8.1fms@." le (str "rid" e)
                  (1000. *. num "value_s" e))
            exes);
        (match
           List.filter_map
             (fun b ->
               match Sjson.member "hops" b with
               | Some (Sjson.Obj _ as h) -> Some (b, h)
               | _ -> None)
             (arr "backends" j)
         with
        | [] -> ()
        | hop_rows ->
          Format.printf "hop means per backend (ms):@.";
          Format.printf "  %-10s %6s %8s %8s %8s %8s %8s %8s@." "backend"
            "count" "parse" "rtr.q" "wire" "shd.q" "solve" "reply";
          List.iter
            (fun (b, h) ->
              Format.printf
                "  %-10s %6.0f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f@."
                (str "label" b) (num "count" h) (num "router_parse_ms" h)
                (num "router_queue_ms" h) (num "wire_ms" h)
                (num "shard_queue_ms" h) (num "shard_solve_ms" h)
                (num "reply_ms" h))
            hop_rows);
        (match arr "lanes" j with
        | [] -> Format.printf "lanes     (idle)@."
        | lanes ->
          Format.printf "lanes:@.";
          Format.printf "  %-4s %-22s %-12s %10s %10s %9s@." "tid" "name"
            "rid" "conflicts" "confl/s" "elapsed";
          List.iter
            (fun ln ->
              Format.printf "  %-4.0f %-22s %-12s %10.0f %10.0f %8.1fs@."
                (num "tid" ln) (str "name" ln) (str "rid" ln)
                (num "conflicts" ln) (num "rate" ln) (num "elapsed_s" ln))
            lanes)
    in
    let rec loop i =
      frame i;
      if frames = 0 || i < frames then begin
        Unix.sleepf interval;
        loop (i + 1)
      end
    in
    loop 1;
    Session.close session
  in
  let interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh period.")
  in
  let frames_arg =
    Arg.(
      value & opt int 0
      & info [ "frames" ] ~docv:"N"
          ~doc:
            "Stop after $(docv) refreshes; 0 (default) runs until \
             interrupted. $(b,--frames 1) prints one plain report — the \
             scriptable mode.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal dashboard for a running sufdec server: qps, queue \
          depth, cache hit rate, latency quantiles with exemplar request \
          ids, and per-lane solver progress, polled over the stats op.")
    Term.(const run $ socket_arg $ interval_arg $ frames_arg)

(* -- trace: assemble a cross-process Chrome trace from flight dumps ------- *)

module Flight = Sepsat_obs.Flight

(* Decode one flight-recorder JSON document into an [assemble] source.
   Dumps predating the wall/mono header pair (or the per-record mono
   stamp) fall back to raw wall time, per the documented compat rule. *)
let flight_source_of_json ~label j =
  let fnum k o = Sjson.mem_num k o in
  let wall =
    match fnum "wall" j with
    | Some w -> w
    | None -> Option.value ~default:0. (fnum "dumped_at" j)
  in
  let mono = Option.value ~default:wall (fnum "mono" j) in
  let records =
    match Sjson.member "records" j with
    | Some (Sjson.Arr rs) ->
      List.filter_map
        (fun r ->
          match r with
          | Sjson.Obj _ ->
            let ts = Option.value ~default:0. (fnum "ts" r) in
            Some
              {
                Flight.fr_ts = ts;
                fr_mono = Option.value ~default:ts (fnum "mono" r);
                fr_tid = Option.value ~default:0 (Sjson.mem_int "tid" r);
                fr_rid = Option.value ~default:"" (Sjson.mem_str "rid" r);
                fr_kind =
                  (match Sjson.mem_str "kind" r with
                  | Some "span" -> Flight.Span
                  | Some "log" -> Flight.Log
                  | Some "progress" -> Flight.Progress
                  | _ -> Flight.Event);
                fr_name = Option.value ~default:"" (Sjson.mem_str "name" r);
                fr_dur_ms = Option.value ~default:0. (fnum "dur_ms" r);
                fr_data =
                  (match Sjson.member "data" r with
                  | Some (Sjson.Obj kvs) ->
                    List.filter_map
                      (fun (k, v) ->
                        match v with Sjson.Str s -> Some (k, s) | _ -> None)
                      kvs
                  | _ -> []);
              }
          | _ -> None)
        rs
    | _ -> []
  in
  {
    Flight.src_label = label;
    src_pid = Option.value ~default:0 (Sjson.mem_int "pid" j);
    src_wall = wall;
    src_mono = mono;
    src_records = records;
  }

let trace_cmd =
  let run socket rid out =
    let path =
      match socket with
      | Some p -> p
      | None ->
        Format.eprintf "trace requires --socket PATH@.";
        exit 2
    in
    let session =
      try Session.connect ~retries:50 path
      with Unix.Unix_error (e, _, _) ->
        Format.eprintf "cannot connect to %s: %s@." path (Unix.error_message e);
        exit 2
    in
    let body =
      match Session.dump session with
      | Some b -> b
      | None ->
        Format.eprintf "server did not answer the dump op@.";
        exit 3
    in
    Session.close session;
    let doc =
      match Sjson.parse body with
      | Error e ->
        Format.eprintf "malformed dump: %s@." e;
        exit 3
      | Ok j -> j
    in
    (* A fleet router nests one flight document per process; a single
       server answers its own flight document directly. Either way the
       result is one lane per process. *)
    let sources =
      match Sjson.mem_str "schema" doc with
      | Some "sepsat-fleet-dump-1" ->
        let router =
          match Sjson.member "router" doc with
          | Some (Sjson.Obj _ as r) ->
            [ flight_source_of_json ~label:"router" r ]
          | _ -> []
        in
        let backends =
          match Sjson.member "backends" doc with
          | Some (Sjson.Arr parts) ->
            List.filter_map
              (fun p ->
                let b = Option.value ~default:0 (Sjson.mem_int "backend" p) in
                match Sjson.member "flight" p with
                | Some (Sjson.Obj _ as f) ->
                  Some
                    (flight_source_of_json
                       ~label:(Printf.sprintf "backend-%d" b)
                       f)
                | _ -> None)
              parts
          | _ -> []
        in
        router @ backends
      | _ -> [ flight_source_of_json ~label:"server" doc ]
    in
    let trace = Flight.assemble ?rid sources in
    let kept (r : Flight.record) =
      match rid with None -> true | Some id -> r.Flight.fr_rid = id
    in
    let total =
      List.fold_left
        (fun acc s ->
          acc + List.length (List.filter kept s.Flight.src_records))
        0 sources
    in
    let rids =
      List.sort_uniq compare
        (List.concat_map
           (fun s ->
             List.filter_map
               (fun (r : Flight.record) ->
                 if kept r && r.Flight.fr_rid <> "" then
                   Some r.Flight.fr_rid
                 else None)
               s.Flight.src_records)
           sources)
    in
    if out = "-" then print_endline trace
    else begin
      let oc = open_out out in
      output_string oc trace;
      output_char oc '\n';
      close_out oc
    end;
    Format.eprintf "trace: %d lanes (%s), %d records, %d request ids%s%s@."
      (List.length sources)
      (String.concat ", "
         (List.map (fun s -> s.Flight.src_label) sources))
      total (List.length rids)
      (match rid with
      | Some id -> Printf.sprintf ", filtered to rid %s" id
      | None -> "")
      (if out = "-" then "" else Printf.sprintf " -> %s" out);
    if total = 0 then exit 3
  in
  let rid_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "rid" ] ~docv:"RID"
          ~doc:
            "Keep only records of this request id (e.g. the p99 exemplar \
             from $(b,sufdec top)); default keeps every record.")
  in
  let out_arg =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Output file for the Chrome trace (open in chrome://tracing \
             or Perfetto); '-' writes it to stdout.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Assemble one cross-process Chrome trace from a running server or \
          fleet: fetch every process's flight-recorder dump over the \
          protocol's dump op, align their clocks via the dumps' wall/mono \
          anchor pairs, and merge the records into a single timeline with \
          one lane per process.")
    Term.(const run $ socket_arg $ rid_arg $ out_arg)

let loadgen_cmd =
  let run clients repeats workers method_ timeout fleet json_out min_speedup =
    let target =
      match fleet with
      | Some path -> Sepsat_harness.Loadgen.Fleet path
      | None -> Sepsat_harness.Loadgen.In_process
    in
    let config =
      {
        Sepsat_harness.Loadgen.default with
        Sepsat_harness.Loadgen.clients;
        repeats;
        workers;
        method_;
        timeout_s = timeout;
        target;
      }
    in
    let report = Sepsat_harness.Loadgen.run config in
    Format.printf "%a" Sepsat_harness.Loadgen.pp report;
    (match json_out with
    | Some path ->
      Sepsat_harness.Loadgen.write_json path report;
      Format.printf "report written to %s@." path
    | None -> ());
    let r = report in
    if r.Sepsat_harness.Loadgen.r_mismatches <> [] then exit 1;
    if r.Sepsat_harness.Loadgen.r_errors > 0 then exit 1;
    match min_speedup with
    | Some m when r.Sepsat_harness.Loadgen.r_speedup < m ->
      Format.eprintf "cache-hit speedup %.1fx below required %.1fx@."
        r.Sepsat_harness.Loadgen.r_speedup m;
      exit 1
    | _ -> ()
  in
  let clients_arg =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client domains.")
  in
  let repeats_arg =
    Arg.(
      value & opt int 3
      & info [ "repeats" ] ~docv:"K"
          ~doc:"Workload passes per client (>= 2 exercises the cache).")
  in
  let workers_arg =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Engine worker domains.")
  in
  let fleet_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "fleet" ] ~docv:"SOCKET"
          ~doc:
            "Drive a running server or fleet router at $(docv) over the \
             JSON-lines protocol instead of an in-process engine; clients \
             become I/O-bound threads, so their count may exceed the \
             cores — the p99-under-load mode.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the throughput report as JSON.")
  in
  let min_speedup_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-speedup" ] ~docv:"X"
          ~doc:"Fail unless cache hits are at least $(docv) times faster \
                than cold solves.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Benchmark the serving engine in-process: concurrent clients over \
          a repeated suite workload; verifies concurrent verdicts against \
          a sequential pass and reports cold vs cache-hit latency.")
    Term.(
      const run $ clients_arg $ repeats_arg $ workers_arg $ method_arg
      $ timeout_arg $ fleet_arg $ json_arg $ min_speedup_arg)

(* -- fleet: router + supervised backend shards ----------------------------- *)

let fleet_cmd =
  let run socket backends dir cache_dir workers queue cache timeout
      warm_limit obs_finish =
    let path =
      match socket with
      | Some p -> p
      | None ->
        Format.eprintf "fleet requires --socket PATH@.";
        exit 2
    in
    if backends < 1 then begin
      Format.eprintf "fleet requires --backends >= 1@.";
      exit 2
    end;
    Sepsat_fleet.Fleet.run
      {
        Sepsat_fleet.Fleet.f_socket = path;
        f_backends = backends;
        f_dir = dir;
        f_cache_dir = cache_dir;
        f_workers = workers;
        f_queue = queue;
        f_cache = cache;
        f_timeout_s = timeout;
        f_warm_limit = warm_limit;
        f_exe = None;
      };
    obs_finish ()
  in
  let backends_arg =
    Arg.(
      value & opt int 3
      & info [ "backends" ] ~docv:"N" ~doc:"Supervised sufdec serve shards.")
  in
  let dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Runtime dir for backend sockets (default: SOCKET.d).")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persistent verdict cache (append-only verdicts.jsonl): repeat \
             formulas answer from disk across fleet restarts, and each \
             backend's in-memory cache is warmed from it on (re)start. \
             Omitted: no disk tier.")
  in
  let workers_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Worker domains per backend (default: (cores - 1) / backends, \
             at least 1).")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N" ~doc:"Per-backend request-queue capacity.")
  in
  let cache_arg =
    Arg.(
      value & opt int 1024
      & info [ "cache" ] ~docv:"N"
          ~doc:"Per-backend in-memory result-cache capacity.")
  in
  let timeout_arg' =
    Arg.(
      value & opt float 30.
      & info [ "t"; "timeout" ] ~docv:"SECONDS"
          ~doc:"Default per-request budget passed to each backend.")
  in
  let warm_limit_arg =
    Arg.(
      value & opt int 4096
      & info [ "warm-limit" ] ~docv:"N"
          ~doc:
            "Max cached verdicts replayed into a backend when it \
             (re)starts.")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Serve through a consistent-hash router over N supervised sufdec \
          serve shards: one public socket, the same JSON-lines protocol, \
          digest-affine routing, crash restarts with backoff, in-flight \
          re-dispatch, and an optional restart-surviving verdict cache.")
    Term.(
      const run $ socket_arg $ backends_arg $ dir_arg $ cache_dir_arg
      $ workers_arg $ queue_arg $ cache_arg $ timeout_arg' $ warm_limit_arg
      $ obs_term)

let list_cmd =
  let run () =
    List.iter
      (fun (b : Suite.benchmark) ->
        let ctx = Ast.create_ctx () in
        let f = b.Suite.build ctx in
        Format.printf "%-10s %-14s %6d nodes%s@." b.Suite.name
          (Suite.family_name b.Suite.family)
          (Ast.size f)
          (if b.Suite.invariant_checking then "  [invariant-checking]" else ""))
      Suite.benchmarks
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the built-in benchmark suite.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "sufdec" ~version:"1.0.0"
      ~doc:
        "Hybrid SAT-based decision procedure for separation logic with \
         uninterpreted functions (Seshia, Lahiri, Bryant; DAC 2003)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            solve_cmd; smt_cmd; stats_cmd; cnf_cmd; gen_cmd; bench_cmd;
            list_cmd; serve_cmd; submit_cmd; top_cmd; trace_cmd; loadgen_cmd;
            fleet_cmd;
          ]))
