(* Tests of the observability subsystem: span collection across domains,
   the metrics registry, progress snapshots and the Chrome-trace exporter.

   Obs state is process-global, so every test starts from [fresh ()]. *)

module Obs = Sepsat_obs.Obs
module Metrics = Sepsat_obs.Metrics
module Progress = Sepsat_obs.Progress
module Chrome_trace = Sepsat_obs.Chrome_trace
module Prom = Sepsat_obs.Prom
module Window = Sepsat_obs.Window
module Log = Sepsat_obs.Log
module Flight = Sepsat_obs.Flight
module Trace_ctx = Sepsat_obs.Trace_ctx

let fresh ?capacity () =
  Obs.disable ();
  Obs.reset ();
  Flight.disable ();
  Flight.reset ();
  Metrics.reset ();
  Progress.set_callback None;
  Obs.enable ?capacity ()

(* -- A minimal JSON reader, just enough to validate exporter output ------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else '\255' in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      if peek () <> c then
        raise (Bad (Printf.sprintf "expected %c at %d" c !pos));
      advance ()
    in
    let string_lit () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            (* skip the four hex digits; the tests compare ASCII names only *)
            advance ();
            advance ();
            advance ();
            Buffer.add_char buf '?'
          | c -> Buffer.add_char buf c);
          advance ();
          go ()
        | '\255' -> raise (Bad "eof in string")
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents buf
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (
          advance ();
          Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            if peek () = ',' then (
              advance ();
              members ((k, v) :: acc))
            else (
              expect '}';
              List.rev ((k, v) :: acc))
          in
          Obj (members [])
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (
          advance ();
          Arr [])
        else
          let rec elements acc =
            let v = value () in
            skip_ws ();
            if peek () = ',' then (
              advance ();
              elements (v :: acc))
            else (
              expect ']';
              List.rev (v :: acc))
          in
          Arr (elements [])
      | '"' -> Str (string_lit ())
      | 't' ->
        pos := !pos + 4;
        Bool true
      | 'f' ->
        pos := !pos + 5;
        Bool false
      | 'n' ->
        pos := !pos + 4;
        Null
      | _ ->
        let start = !pos in
        let num_char c =
          match c with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false
        in
        while num_char (peek ()) do
          advance ()
        done;
        if !pos = start then raise (Bad (Printf.sprintf "junk at %d" start));
        Num (float_of_string (String.sub s start (!pos - start)))
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v

  let member k = function
    | Obj kvs -> List.assoc k kvs
    | _ -> raise (Bad ("not an object at " ^ k))

  let str = function Str s -> s | _ -> raise (Bad "not a string")

  let num = function Num f -> f | _ -> raise (Bad "not a number")
end

(* -- Disabled mode -------------------------------------------------------- *)

let test_disabled_no_events () =
  Obs.disable ();
  Obs.reset ();
  Metrics.reset ();
  let c = Metrics.counter "test.disabled" in
  let r = Obs.span "dead" (fun () -> 42) in
  Obs.instant "dead.instant";
  Obs.sample "dead.sample" 1.;
  Metrics.incr c;
  Alcotest.(check int) "span is transparent" 42 r;
  Alcotest.(check int) "no events" 0 (List.length (Obs.events ()));
  Alcotest.(check int) "no metric update" 0 (Metrics.get c);
  Alcotest.(check bool) "still disabled" false (Obs.enabled ())

(* -- Span collection ------------------------------------------------------ *)

let test_span_basic () =
  fresh ();
  let r =
    Obs.span ~cat:"t" "outer" (fun () ->
        Obs.span ~cat:"t" "inner" (fun () -> 7))
  in
  Alcotest.(check int) "result" 7 r;
  let spans =
    List.filter_map
      (function
        | Obs.Span { name; ts; dur; _ } -> Some (name, ts, dur)
        | _ -> None)
      (Obs.events ())
  in
  Alcotest.(check int) "two spans" 2 (List.length spans);
  let find n = List.find (fun (n', _, _) -> n' = n) spans in
  let _, ots, odur = find "outer" and _, its, idur = find "inner" in
  Alcotest.(check bool) "inner starts inside" true (its >= ots);
  Alcotest.(check bool) "inner ends inside" true
    (its +. idur <= ots +. odur +. 1e-9)

let test_span_exception () =
  fresh ();
  (try Obs.span "boom" (fun () -> failwith "x") with Failure _ -> ());
  let names =
    List.filter_map
      (function Obs.Span { name; _ } -> Some name | _ -> None)
      (Obs.events ())
  in
  Alcotest.(check (list string)) "span recorded on raise" [ "boom" ] names

let test_timed () =
  fresh ();
  let r, dt = Obs.timed "timed.work" (fun () -> 5) in
  Alcotest.(check int) "result" 5 r;
  Alcotest.(check bool) "non-negative elapsed" true (dt >= 0.);
  Obs.disable ();
  let r', dt' = Obs.timed "timed.off" (fun () -> 6) in
  Alcotest.(check int) "disabled result" 6 r';
  Alcotest.(check bool) "still measures when disabled" true (dt' >= 0.)

let test_ring_overflow () =
  fresh ~capacity:16 ();
  for i = 0 to 99 do
    Obs.sample "tick" (float_of_int i)
  done;
  let evs = Obs.events () in
  Alcotest.(check int) "ring keeps capacity" 16 (List.length evs);
  Alcotest.(check int) "dropped counted" 84 (Obs.dropped ());
  (* The survivors are the newest events, in order. *)
  let values =
    List.filter_map
      (function Obs.Sample { value; _ } -> Some value | _ -> None)
      evs
  in
  Alcotest.(check (list (float 1e-9)))
    "newest survive"
    (List.init 16 (fun i -> float_of_int (84 + i)))
    values

let test_span_summary () =
  fresh ();
  Obs.span "a" (fun () -> Obs.span "b" (fun () -> ()));
  Obs.span "b" (fun () -> ());
  let stats = Obs.span_summary (Obs.events ()) in
  let find n = List.find (fun s -> s.Obs.ss_name = n) stats in
  Alcotest.(check int) "a count" 1 (find "a").Obs.ss_count;
  Alcotest.(check int) "b count" 2 (find "b").Obs.ss_count;
  Alcotest.(check bool) "totals non-negative" true
    (List.for_all (fun s -> s.Obs.ss_total >= 0.) stats)

(* -- Concurrent domain emission ------------------------------------------- *)

(* Each domain runs a random tree of nested spans. The collected stream must
   then be, per domain: timestamp-monotone, and well-nested — any two spans
   are either disjoint or one contains the other. This is the structural
   invariant the Chrome exporter's stack replay relies on. *)
let prop_concurrent_well_nested =
  let gen =
    QCheck2.Gen.(
      pair (int_range 1 4)
        (list_size (int_range 1 30) (int_range 0 3)))
  in
  QCheck2.Test.make ~name:"concurrent spans are well-nested per domain"
    ~count:30 gen (fun (n_domains, shape) ->
      fresh ();
      let work d =
        List.iteri
          (fun i depth ->
            let rec nest k =
              Obs.span
                (Printf.sprintf "d%d.s%d.%d" d i k)
                (fun () -> if k < depth then nest (k + 1))
            in
            nest 0;
            Obs.sample "work" (float_of_int i))
          shape
      in
      let domains =
        List.init n_domains (fun d -> Domain.spawn (fun () -> work d))
      in
      List.iter Domain.join domains;
      let evs = Obs.events () in
      let tids = List.sort_uniq compare (List.map Obs.event_tid evs) in
      List.for_all
        (fun tid ->
          let mine = List.filter (fun e -> Obs.event_tid e = tid) evs in
          (* monotone timestamps per domain *)
          let rec monotone = function
            | a :: (b :: _ as rest) ->
              Obs.event_ts a <= Obs.event_ts b && monotone rest
            | _ -> true
          in
          let spans =
            List.filter_map
              (function
                | Obs.Span { ts; dur; _ } -> Some (ts, ts +. dur)
                | _ -> None)
              mine
          in
          let disjoint_or_nested (s1, e1) (s2, e2) =
            e1 <= s2 || e2 <= s1
            || (s1 <= s2 && e2 <= e1)
            || (s2 <= s1 && e1 <= e2)
          in
          let rec pairs_ok = function
            | [] -> true
            | x :: rest ->
              List.for_all (disjoint_or_nested x) rest && pairs_ok rest
          in
          monotone mine && pairs_ok spans)
        tids)

(* -- Chrome trace export -------------------------------------------------- *)

let collect_some_events () =
  fresh ();
  Obs.name_thread "main";
  Obs.span ~cat:"pipeline" "outer" (fun () ->
      Obs.span ~cat:"pipeline" "inner" (fun () -> Obs.sample "counter" 3.);
      Obs.instant ~cat:"pipeline" "mark \"quoted\"");
  Obs.events ()

let test_chrome_valid_json () =
  let evs = collect_some_events () in
  let json = Json.parse (Chrome_trace.to_string evs) in
  let trace = Json.member "traceEvents" json in
  match trace with
  | Json.Arr items ->
    Alcotest.(check bool) "non-empty" true (items <> []);
    List.iter
      (fun item ->
        let ph = Json.str (Json.member "ph" item) in
        Alcotest.(check bool) "known phase" true
          (List.mem ph [ "B"; "E"; "i"; "C"; "M" ]);
        if ph <> "M" then
          Alcotest.(check bool) "ts non-negative" true
            (Json.num (Json.member "ts" item) >= 0.))
      items
  | _ -> Alcotest.fail "traceEvents is not an array"

let test_chrome_matched_begin_end () =
  let evs = collect_some_events () in
  let json = Json.parse (Chrome_trace.to_string evs) in
  let items =
    match Json.member "traceEvents" json with
    | Json.Arr items -> items
    | _ -> Alcotest.fail "traceEvents is not an array"
  in
  (* Replay per-tid: every E must close the most recent open B, timestamps
     must never decrease, and nothing may stay open. *)
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 4 in
  let last_ts : (int, float ref) Hashtbl.t = Hashtbl.create 4 in
  let get tbl tid v0 =
    match Hashtbl.find_opt tbl tid with
    | Some r -> r
    | None ->
      let r = ref v0 in
      Hashtbl.add tbl tid r;
      r
  in
  List.iter
    (fun item ->
      match Json.str (Json.member "ph" item) with
      | "B" | "E" as ph ->
        let tid = int_of_float (Json.num (Json.member "tid" item)) in
        let ts = Json.num (Json.member "ts" item) in
        let lt = get last_ts tid 0. in
        Alcotest.(check bool) "timestamps non-decreasing" true (ts >= !lt);
        lt := ts;
        let stack = get stacks tid [] in
        if ph = "B" then
          stack := Json.str (Json.member "name" item) :: !stack
        else begin
          match !stack with
          | top :: rest ->
            Alcotest.(check string) "E matches innermost B" top
              (Json.str (Json.member "name" item));
            stack := rest
          | [] -> Alcotest.fail "E without open B"
        end
      | _ -> ())
    items;
  Hashtbl.iter
    (fun _ stack ->
      Alcotest.(check (list string)) "all spans closed" [] !stack)
    stacks

let test_chrome_thread_names () =
  let evs = collect_some_events () in
  let json = Json.parse (Chrome_trace.to_string evs) in
  let items =
    match Json.member "traceEvents" json with
    | Json.Arr items -> items
    | _ -> []
  in
  let names =
    List.filter_map
      (fun item ->
        if
          Json.str (Json.member "ph" item) = "M"
          && Json.str (Json.member "name" item) = "thread_name"
        then Some (Json.str (Json.member "name" (Json.member "args" item)))
        else None)
      items
  in
  Alcotest.(check bool) "main lane named" true (List.mem "main" names)

(* -- Trace context and rid-tagged spans ------------------------------------ *)

let test_trace_ctx_basic () =
  Alcotest.(check string) "no ambient rid" "" (Trace_ctx.rid ());
  Trace_ctx.with_rid "rq-7" (fun () ->
      Alcotest.(check string) "ambient rid" "rq-7" (Trace_ctx.rid ()));
  Alcotest.(check string) "restored after scope" "" (Trace_ctx.rid ());
  (try Trace_ctx.with_rid "rq-doomed" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check string) "restored after exception" "" (Trace_ctx.rid ())

let test_span_rid_tagging () =
  fresh ();
  Trace_ctx.with_rid "rq-42" (fun () ->
      Obs.span "tagged" (fun () -> Obs.span "tagged.child" (fun () -> ())));
  Obs.span "untagged" (fun () -> ());
  Obs.instant "mark";
  let rids =
    List.filter_map
      (function
        | Obs.Span { name; rid; _ } -> Some (name, rid)
        | Obs.Instant { name; rid; _ } -> Some (name, rid)
        | _ -> None)
      (Obs.events ())
  in
  Alcotest.(check string) "request root tagged" "rq-42"
    (List.assoc "tagged" rids);
  Alcotest.(check string) "descendant tagged" "rq-42"
    (List.assoc "tagged.child" rids);
  Alcotest.(check string) "outside a request: empty" ""
    (List.assoc "untagged" rids);
  Alcotest.(check string) "instant outside: empty" "" (List.assoc "mark" rids)

(* The handoff the pools use: capture in the requesting domain, adopt in
   the worker — the worker's spans then carry the request's rid. *)
let test_trace_ctx_cross_domain () =
  fresh ();
  let tctx =
    Trace_ctx.with_rid "rq-far" (fun () -> Trace_ctx.capture ())
  in
  let d =
    Domain.spawn (fun () ->
        Trace_ctx.with_ctx tctx (fun () ->
            Obs.span "remote.work" (fun () -> ())))
  in
  Domain.join d;
  let rid =
    List.find_map
      (function
        | Obs.Span { name = "remote.work"; rid; _ } -> Some rid
        | _ -> None)
      (Obs.events ())
  in
  Alcotest.(check (option string)) "adopted rid" (Some "rq-far") rid

let test_chrome_rid_args () =
  fresh ();
  Obs.name_thread "main";
  Trace_ctx.with_rid "rq-chrome" (fun () ->
      Obs.span ~cat:"serve" "req" (fun () -> Obs.instant "req.mark"));
  Obs.span "plain" (fun () -> ());
  let json = Json.parse (Chrome_trace.to_string (Obs.events ())) in
  let items =
    match Json.member "traceEvents" json with
    | Json.Arr items -> items
    | _ -> Alcotest.fail "traceEvents is not an array"
  in
  let rid_of name ph =
    List.find_map
      (fun item ->
        if
          Json.str (Json.member "ph" item) = ph
          && Json.str (Json.member "name" item) = name
        then
          match Json.member "args" item with
          | args -> Some (Json.str (Json.member "rid" args))
          | exception Not_found -> Some "<no args>"
        else None)
      items
  in
  Alcotest.(check (option string)) "B event carries rid"
    (Some "rq-chrome") (rid_of "req" "B");
  Alcotest.(check (option string)) "instant carries rid"
    (Some "rq-chrome") (rid_of "req.mark" "i");
  Alcotest.(check (option string)) "rid-less span has no args"
    (Some "<no args>") (rid_of "plain" "B")

(* -- Metrics -------------------------------------------------------------- *)

let test_metrics_basic () =
  fresh ();
  let c = Metrics.counter "m.count" in
  let g = Metrics.gauge "m.gauge" in
  let h = Metrics.histogram "m.hist" in
  Metrics.incr c;
  Metrics.add c 4;
  Metrics.set g 2.5;
  Metrics.observe h 0.001;
  Metrics.observe h 10.;
  Alcotest.(check int) "counter" 5 (Metrics.get c);
  (match List.assoc "m.gauge" (Metrics.snapshot ()) with
  | Metrics.Gauge v -> Alcotest.(check (float 1e-9)) "gauge" 2.5 v
  | _ -> Alcotest.fail "gauge kind");
  (match List.assoc "m.hist" (Metrics.snapshot ()) with
  | Metrics.Histogram { count; sum; buckets; _ } ->
    Alcotest.(check int) "hist count" 2 count;
    Alcotest.(check (float 1e-9)) "hist sum" 10.001 sum;
    Alcotest.(check int) "hist binned" 2
      (List.fold_left (fun acc (_, n) -> acc + n) 0 buckets)
  | _ -> Alcotest.fail "hist kind");
  (* registration is idempotent, kind mismatch rejected *)
  Metrics.incr (Metrics.counter "m.count");
  Alcotest.(check int) "same handle" 6 (Metrics.get c);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics: \"m.count\" is already a counter") (fun () ->
      ignore (Metrics.gauge "m.count"));
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.get c)

let test_metrics_json () =
  fresh ();
  Metrics.add (Metrics.counter "j.c") 3;
  Metrics.set (Metrics.gauge "j.g") 1.5;
  Metrics.observe (Metrics.histogram "j.h") 0.01;
  let json = Json.parse (Metrics.to_json ()) in
  Alcotest.(check (float 1e-9)) "counter" 3. (Json.num (Json.member "j.c" json));
  Alcotest.(check (float 1e-9)) "gauge" 1.5 (Json.num (Json.member "j.g" json));
  let h = Json.member "j.h" json in
  Alcotest.(check (float 1e-9)) "hist count" 1. (Json.num (Json.member "count" h));
  Obs.disable ();
  Obs.reset ();
  Metrics.reset ();
  Alcotest.(check string) "empty registry after reset keeps shape" "{"
    (String.sub (Metrics.to_json ()) 0 1)

let test_metrics_json_strict () =
  fresh ();
  let h = Metrics.histogram "strict.h" in
  Metrics.observe h 1e-6;
  Metrics.observe h 1e9;  (* lands in the +inf bin *)
  let text = Metrics.to_json () in
  (* The old non-finite encoding must be gone entirely... *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no 1e999 lexeme" false (contains text "1e999");
  (* ...and a strict parser must accept the document with finite bounds
     only; the +inf bin is implicit (count - listed bins). *)
  let j = Json.parse text in
  (match Json.member "strict.h" j with
  | Json.Obj _ as hj ->
    let count = int_of_float (Json.num (Json.member "count" hj)) in
    Alcotest.(check int) "count sees both" 2 count;
    (match Json.member "buckets" hj with
    | Json.Arr pairs ->
      let listed =
        List.map
          (function
            | Json.Arr [ ub; n ] -> (Json.num ub, int_of_float (Json.num n))
            | _ -> Alcotest.fail "bucket pair shape")
          pairs
      in
      List.iter
        (fun (ub, _) ->
          Alcotest.(check bool) "finite bound" true (Float.is_finite ub))
        listed;
      let binned = List.fold_left (fun acc (_, n) -> acc + n) 0 listed in
      Alcotest.(check int) "implicit +inf bin = count - listed" 1
        (count - binned)
    | _ -> Alcotest.fail "buckets shape")
  | _ -> Alcotest.fail "histogram shape")

let test_metrics_always_on () =
  Obs.disable ();
  Obs.reset ();
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () -> Metrics.set_always_on false)
    (fun () ->
      let c = Metrics.counter "ao.count" in
      let h = Metrics.histogram "ao.hist" in
      Metrics.incr c;
      Alcotest.(check int) "gated while obs off" 0 (Metrics.get c);
      Metrics.set_always_on true;
      Alcotest.(check bool) "flag readable" true (Metrics.always_on ());
      Metrics.incr c;
      Metrics.observe h 0.5;
      Alcotest.(check int) "counter moves with obs off" 1 (Metrics.get c);
      match List.assoc "ao.hist" (Metrics.snapshot ()) with
      | Metrics.Histogram { count; _ } ->
        Alcotest.(check int) "histogram moves with obs off" 1 count
      | _ -> Alcotest.fail "hist kind")

let test_metrics_exemplars () =
  fresh ();
  let h = Metrics.histogram ~buckets:[| 0.1; 1.0 |] "ex.h" in
  Metrics.observe h 0.05;
  Alcotest.(check int) "rid-less observations leave no exemplar" 0
    (List.length (Metrics.exemplars h));
  Metrics.observe ~rid:"a" h 0.03;
  Metrics.observe ~rid:"b" h 0.07;
  Metrics.observe ~rid:"c" h 0.01;  (* smaller than b: must not displace *)
  Metrics.observe ~rid:"d" h 0.5;
  Metrics.observe ~rid:"e" h 5.0;
  let exes = Metrics.exemplars h in
  Alcotest.(check int) "one exemplar per touched bucket" 3
    (List.length exes);
  let find ub = snd (List.find (fun (u, _) -> u = ub) exes) in
  Alcotest.(check string) "keep-max in the first bucket" "b"
    (find 0.1).Metrics.ex_rid;
  Alcotest.(check (float 1e-9)) "its value" 0.07 (find 0.1).Metrics.ex_value;
  Alcotest.(check string) "buckets are separate" "d"
    (find 1.0).Metrics.ex_rid;
  Alcotest.(check string) "+inf bucket has one too" "e"
    (find infinity).Metrics.ex_rid;
  (match List.rev exes with
  | (ub, _) :: _ -> Alcotest.(check bool) "+inf listed last" true (ub = infinity)
  | [] -> Alcotest.fail "no exemplars");
  Metrics.reset ();
  Alcotest.(check int) "reset clears exemplars" 0
    (List.length (Metrics.exemplars h))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_metrics_json_exemplars () =
  fresh ();
  let h = Metrics.histogram ~buckets:[| 1.0 |] "exj.h" in
  Metrics.observe h 0.5;
  Alcotest.(check bool) "no exemplars key without exemplars" false
    (contains (Metrics.to_json ()) "exemplars");
  Metrics.observe ~rid:"rq-j" h 0.7;
  let j = Json.parse (Metrics.to_json ()) in
  (match Json.member "exemplars" (Json.member "exj.h" j) with
  | Json.Arr [ e ] ->
    Alcotest.(check string) "rid" "rq-j" (Json.str (Json.member "rid" e));
    Alcotest.(check (float 1e-9)) "value" 0.7
      (Json.num (Json.member "value" e))
  | _ -> Alcotest.fail "exemplars shape")

(* A reader racing [reset] against concurrent [observe]s must never see a
   snapshot claiming observations it cannot locate in the buckets: the
   count is derived from the bins, so count = sum(bins) by construction. *)
let test_metrics_reset_observe_race () =
  fresh ();
  let h = Metrics.histogram "race.h" in
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Metrics.observe h 0.01
        done)
  in
  for _ = 1 to 200 do
    Metrics.reset ();
    match List.assoc "race.h" (Metrics.snapshot ()) with
    | Metrics.Histogram { count; buckets; _ } ->
      let binned = List.fold_left (fun acc (_, n) -> acc + n) 0 buckets in
      Alcotest.(check int) "count = sum of bins" binned count;
      if count > 0 then
        Alcotest.(check bool) "count > 0 implies a non-zero bucket" true
          (List.exists (fun (_, n) -> n > 0) buckets)
    | _ -> Alcotest.fail "hist kind"
  done;
  Atomic.set stop true;
  Domain.join writer

(* -- Prometheus exposition ------------------------------------------------- *)

let test_prom_sanitize () =
  Alcotest.(check string) "dots" "serve_request_s"
    (Prom.sanitize_name "serve.request_s");
  Alcotest.(check string) "digit first" "_0abc" (Prom.sanitize_name "0abc");
  Alcotest.(check string) "empty" "_" (Prom.sanitize_name "");
  Alcotest.(check string) "colon kept" "a:b" (Prom.sanitize_name "a:b");
  Alcotest.(check string) "label escapes" "a\\\\b\\\"c\\nd"
    (Prom.escape_label "a\\b\"c\nd");
  Alcotest.(check string) "help escapes quotes unchanged" "a\\\\b\"c\\nd"
    (Prom.escape_help "a\\b\"c\nd");
  Alcotest.(check string) "inf" "+Inf" (Prom.number infinity);
  Alcotest.(check string) "neg inf" "-Inf" (Prom.number neg_infinity);
  Alcotest.(check string) "NaN" "NaN" (Prom.number nan);
  Alcotest.(check string) "integral" "42" (Prom.number 42.)

(* Parse an exposition document into (comment lines, sample lines). *)
let prom_samples text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  |> List.map (fun l ->
         match String.rindex_opt l ' ' with
         | Some i ->
           ( String.sub l 0 i,
             float_of_string (String.sub l (i + 1) (String.length l - i - 1))
           )
         | None -> Alcotest.fail ("unparsable sample line: " ^ l))

let test_prom_render_conformance () =
  fresh ();
  Metrics.add (Metrics.counter "serve.requests") 7;
  Metrics.set (Metrics.gauge "serve.queue_depth") 3.;
  let h = Metrics.histogram "serve.request_s" in
  Metrics.observe h 1e-6;
  Metrics.observe h 0.5;
  Metrics.observe h 1e12;
  let text = Prom.current () in
  let samples = prom_samples text in
  let find name =
    match List.assoc_opt name samples with
    | Some v -> v
    | None -> Alcotest.fail ("missing sample " ^ name)
  in
  Alcotest.(check (float 1e-9)) "counter value" 7. (find "serve_requests");
  Alcotest.(check (float 1e-9)) "gauge value" 3. (find "serve_queue_depth");
  Alcotest.(check (float 1e-9)) "histogram count" 3.
    (find "serve_request_s_count");
  Alcotest.(check bool) "histogram sum" true
    (find "serve_request_s_sum" > 0.5);
  (* TYPE lines name the sanitized metric with the right kind. *)
  let has_line l = List.mem l (String.split_on_char '\n' text) in
  Alcotest.(check bool) "counter TYPE" true
    (has_line "# TYPE serve_requests counter");
  Alcotest.(check bool) "gauge TYPE" true
    (has_line "# TYPE serve_queue_depth gauge");
  Alcotest.(check bool) "histogram TYPE" true
    (has_line "# TYPE serve_request_s histogram");
  (* Buckets: cumulative, monotone, ending at le="+Inf" = _count. *)
  let buckets =
    List.filter
      (fun (name, _) ->
        String.length name > 24
        && String.sub name 0 24 = "serve_request_s_bucket{l")
      samples
  in
  Alcotest.(check bool) "has buckets" true (buckets <> []);
  let values = List.map snd buckets in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "cumulative buckets are monotone" true
    (monotone values);
  Alcotest.(check (float 1e-9)) "+Inf bucket equals count" 3.
    (find "serve_request_s_bucket{le=\"+Inf\"}")

let test_prom_exemplars () =
  fresh ();
  let h = Metrics.histogram ~buckets:[| 1.0 |] "expm.h" in
  Metrics.observe ~rid:"rq-slow" h 0.7;
  let text = Prom.current () in
  (* OpenMetrics exemplar syntax, parsed as a trailing comment by plain
     Prometheus text parsers. *)
  Alcotest.(check bool) "bucket line carries the exemplar" true
    (contains text "expm_h_bucket{le=\"1\"} 1 # {rid=\"rq-slow\"} 0.7 ");
  (* The un-exemplared surfaces stay exactly as before. *)
  Alcotest.(check bool) "sum line untouched" true
    (contains text "expm_h_sum 0.7\n");
  Alcotest.(check bool) "+Inf line untouched" true
    (contains text "expm_h_bucket{le=\"+Inf\"} 1\n")

let test_prom_escaped_help () =
  let text =
    Prom.render [ ("weird\nname", Metrics.Counter 1) ]
  in
  (* The original name survives, escaped, in HELP; the sample line uses the
     sanitized name. *)
  Alcotest.(check bool) "escaped HELP" true
    (List.mem "# HELP weird_name sepsat metric weird\\nname"
       (String.split_on_char '\n' text));
  Alcotest.(check (float 1e-9)) "sample" 1.
    (List.assoc "weird_name" (prom_samples text))

(* -- Rolling window quantiles ---------------------------------------------- *)

let test_window_basic () =
  let w = Window.create ~capacity:4 () in
  Alcotest.(check int) "empty length" 0 (Window.length w);
  Alcotest.(check (float 1e-9)) "empty quantile" 0. (Window.quantile w 0.5);
  List.iter (Window.add w) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check (float 1e-9)) "p0 = min" 1. (Window.quantile w 0.);
  Alcotest.(check (float 1e-9)) "p100 = max" 4. (Window.quantile w 1.);
  Alcotest.(check (float 1e-9)) "p50 interpolates" 2.5 (Window.quantile w 0.5);
  (* Ring wrap: the window slides to the newest [capacity] values. *)
  List.iter (Window.add w) [ 10.; 20.; 30.; 40. ];
  Alcotest.(check int) "length capped" 4 (Window.length w);
  Alcotest.(check int) "total keeps counting" 8 (Window.total w);
  Alcotest.(check (float 1e-9)) "old values evicted" 10.
    (Window.quantile w 0.);
  Window.clear w;
  Alcotest.(check int) "clear empties" 0 (Window.length w)

let test_window_exemplar () =
  let w = Window.create ~capacity:8 () in
  Alcotest.(check bool) "empty window: none" true
    (Window.exemplar w 0.99 = None);
  Window.add ~rid:"fast" w 1.;
  Window.add ~rid:"slow" w 100.;
  Window.add ~rid:"mid" w 10.;
  (match Window.exemplar w 0.99 with
  | Some (v, rid) ->
    Alcotest.(check (float 1e-9)) "p99 value is an actual observation" 100. v;
    Alcotest.(check string) "p99 rid" "slow" rid
  | None -> Alcotest.fail "expected an exemplar");
  (match Window.exemplar w 0. with
  | Some (v, rid) ->
    Alcotest.(check (float 1e-9)) "p0 value" 1. v;
    Alcotest.(check string) "p0 rid" "fast" rid
  | None -> Alcotest.fail "expected an exemplar");
  Window.add w 1000.;
  (match Window.exemplar w 1. with
  | Some (v, rid) ->
    Alcotest.(check (float 1e-9)) "rid-less max" 1000. v;
    Alcotest.(check string) "empty rid preserved" "" rid
  | None -> Alcotest.fail "expected an exemplar")

let prop_window_quantiles =
  let gen =
    QCheck2.Gen.(
      pair (int_range 1 64)
        (list_size (int_range 1 200) (float_bound_inclusive 1000.)))
  in
  QCheck2.Test.make ~name:"window quantiles bounded and ordered" ~count:100
    gen (fun (capacity, values) ->
      let w = Window.create ~capacity () in
      List.iter (Window.add w) values;
      let contents = Array.to_list (Window.snapshot w) in
      let lo = List.fold_left min infinity contents in
      let hi = List.fold_left max neg_infinity contents in
      match Window.quantiles w [ 0.5; 0.9; 0.99 ] with
      | [ p50; p90; p99 ] ->
        lo <= p50 && p50 <= p90 && p90 <= p99 && p99 <= hi
      | _ -> false)

(* -- Structured logging ---------------------------------------------------- *)

(* Capture sink + cleanup; Log state is process-global like Obs. *)
let with_log_capture f =
  let lines = ref [] in
  Log.enable ~sink:(fun l -> lines := l :: !lines) ();
  Fun.protect ~finally:Log.disable (fun () -> f lines)

let test_log_event_shape () =
  with_log_capture (fun lines ->
      Log.event "unit.test"
        [ ("s", Log.S "a\"b"); ("i", Log.I 42); ("f", Log.F 1.5);
          ("b", Log.B true); ("nf", Log.F infinity) ];
      match !lines with
      | [ line ] ->
        let j = Json.parse line in
        Alcotest.(check string) "event" "unit.test"
          (Json.str (Json.member "event" j));
        Alcotest.(check string) "level" "info"
          (Json.str (Json.member "level" j));
        Alcotest.(check bool) "ts present" true
          (Json.num (Json.member "ts" j) > 0.);
        Alcotest.(check string) "escaped string" "a\"b"
          (Json.str (Json.member "s" j));
        Alcotest.(check (float 1e-9)) "int" 42. (Json.num (Json.member "i" j));
        Alcotest.(check bool) "non-finite is null" true
          (Json.member "nf" j = Json.Null)
      | ls -> Alcotest.fail (Printf.sprintf "expected 1 line, got %d" (List.length ls)))

let test_log_ambient_fields () =
  with_log_capture (fun lines ->
      Log.with_fields [ ("rid", Log.S "rq-test") ] (fun () ->
          Log.event "inner" [ ("k", Log.I 1) ];
          (* explicit fields shadow ambient ones *)
          Log.event "shadow" [ ("rid", Log.S "explicit") ]);
      (try
         Log.with_fields [ ("rid", Log.S "doomed") ] (fun () ->
             failwith "boom")
       with Failure _ -> ());
      Log.event "outside" [];
      match List.rev !lines with
      | [ inner; shadow; outside ] ->
        Alcotest.(check string) "ambient rid" "rq-test"
          (Json.str (Json.member "rid" (Json.parse inner)));
        Alcotest.(check string) "explicit shadows ambient" "explicit"
          (Json.str (Json.member "rid" (Json.parse shadow)));
        (match Json.parse outside with
        | Json.Obj kvs ->
          Alcotest.(check bool) "context restored after exception" false
            (List.mem_assoc "rid" kvs)
        | _ -> Alcotest.fail "not an object")
      | ls -> Alcotest.fail (Printf.sprintf "expected 3 lines, got %d" (List.length ls)))

let test_log_sink_raises () =
  let lines = ref [] in
  let mode = ref `Raise in
  Log.enable
    ~sink:(fun l ->
      match !mode with `Raise -> failwith "sink down" | `Ok -> lines := l :: !lines)
    ();
  Fun.protect ~finally:Log.disable (fun () ->
      (try Log.event "lost" [ ("k", Log.I 1) ]
       with Failure _ -> ());
      mode := `Ok;
      Log.event "kept" [ ("k", Log.I 2) ];
      match !lines with
      | [ line ] ->
        (* The failed event must not leak half-formatted bytes into this
           one: the line parses and is the second event alone. *)
        let j = Json.parse line in
        Alcotest.(check string) "second event intact" "kept"
          (Json.str (Json.member "event" j));
        Alcotest.(check (float 1e-9)) "field" 2.
          (Json.num (Json.member "k" j))
      | ls -> Alcotest.fail (Printf.sprintf "expected 1 line, got %d" (List.length ls)))

let test_log_disabled_and_levels () =
  let lines = ref [] in
  Log.enable ~level:Obs.Info ~sink:(fun l -> lines := l :: !lines) ();
  Fun.protect ~finally:Log.disable (fun () ->
      Log.event ~level:Obs.Debug "too.detailed" [];
      Log.event ~level:Obs.Quiet "never" [];
      Alcotest.(check int) "debug filtered at info" 0 (List.length !lines);
      Log.set_level Obs.Debug;
      Log.event ~level:Obs.Debug "now.visible" [];
      Alcotest.(check int) "debug passes at debug" 1 (List.length !lines));
  Log.event "after.disable" [];
  Alcotest.(check int) "disabled drops" 1 (List.length !lines);
  let a = Log.mint "t" and b = Log.mint "t" in
  Alcotest.(check bool) "minted ids unique" true (a <> b)

(* -- Progress ------------------------------------------------------------- *)

let test_progress_tick () =
  fresh ();
  let seen = ref [] in
  Progress.set_callback (Some (fun s -> seen := s :: !seen));
  Progress.tick ~conflicts:1024 ~decisions:2048 ~propagations:10_000
    ~learnts:100 ~trail:50 ~vars:200 ~level:7
    ~started:(Unix.gettimeofday ());
  (match !seen with
  | [ s ] ->
    Alcotest.(check int) "conflicts" 1024 s.Progress.p_conflicts;
    Alcotest.(check int) "level" 7 s.Progress.p_level;
    Alcotest.(check bool) "elapsed sane" true (s.Progress.p_elapsed >= 0.)
  | _ -> Alcotest.fail "expected exactly one snapshot");
  let samples =
    List.filter_map
      (function Obs.Sample { name; _ } -> Some name | _ -> None)
      (Obs.events ())
  in
  Alcotest.(check bool) "conflict track emitted" true
    (List.mem "sat.conflicts" samples);
  (* An installed callback keeps receiving ticks with obs off — that is
     how the serve engine's lane table stays live in default runs... *)
  Obs.disable ();
  seen := [];
  Progress.tick ~conflicts:1 ~decisions:1 ~propagations:1 ~learnts:1 ~trail:1
    ~vars:1 ~level:1 ~started:0.;
  Alcotest.(check int) "callback still fires when obs is off" 1
    (List.length !seen);
  (* ...but with no consumer at all, a tick is a no-op. *)
  Progress.set_callback None;
  seen := [];
  Progress.tick ~conflicts:2 ~decisions:2 ~propagations:2 ~learnts:2 ~trail:2
    ~vars:2 ~level:2 ~started:0.;
  Alcotest.(check int) "no consumer, no tick" 0 (List.length !seen)

(* A real solve with tracing on: the pipeline spans land in the stream. *)
let test_pipeline_spans_end_to_end () =
  fresh ();
  let ctx = Sepsat_suf.Ast.create_ctx () in
  let f =
    Sepsat_workloads.Cache.formula ~bug:false ctx ~n_caches:2
  in
  let r = Sepsat.Decide.decide ctx f in
  Alcotest.(check bool) "valid" true (r.Sepsat.Decide.verdict = Sepsat_sep.Verdict.Valid);
  let span_names =
    List.filter_map
      (function Obs.Span { name; _ } -> Some name | _ -> None)
      (Obs.events ())
  in
  List.iter
    (fun phase ->
      Alcotest.(check bool) (phase ^ " span present") true
        (List.mem phase span_names))
    [ "elim"; "encode"; "cnf"; "sat" ];
  List.iter
    (fun (phase, t) ->
      Alcotest.(check bool) (phase ^ " time sane") true (t >= 0.))
    r.Sepsat.Decide.phase_times;
  Alcotest.(check int) "four phases" 4
    (List.length r.Sepsat.Decide.phase_times)

(* ------------------------------------------------------------------ *)
(* Clock: the process-global monotone-clamped wall clock behind trace
   timestamps and cross-process dump anchors *)

module Clock = Sepsat_obs.Clock

let test_clock_monotone () =
  let prev = ref (Clock.mono_now ()) in
  for _ = 1 to 10_000 do
    let v = Clock.mono_now () in
    Alcotest.(check bool) "never decreases" true (v >= !prev);
    prev := v
  done

let test_clock_pair_coherent () =
  let w1, m1 = Clock.pair () in
  let w2, m2 = Clock.pair () in
  (* the mono stamp is the wall reading clamped forward, never behind *)
  Alcotest.(check bool) "mono >= wall" true (m1 >= w1 && m2 >= w2);
  Alcotest.(check bool) "mono ordered across pairs" true (m2 >= m1);
  Alcotest.(check bool) "wall and mono agree to within the clamp" true
    (Float.abs (m1 -. w1) < 60.)

(* Domains hammering the clock concurrently: each domain's own sequence
   of readings must still be monotone — the CAS-max clamp is the shared
   state that makes this hold across all of them. *)
let test_clock_concurrent_monotone () =
  let failures = Atomic.make 0 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let prev = ref (Clock.mono_now ()) in
            for _ = 1 to 50_000 do
              let v = Clock.mono_now () in
              if v < !prev then Atomic.incr failures;
              prev := v
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no domain ever saw time go backwards" 0
    (Atomic.get failures)

let () =
  Obs.set_level Obs.Quiet;
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "disabled mode leaves no events" `Quick
            test_disabled_no_events;
          Alcotest.test_case "nested spans" `Quick test_span_basic;
          Alcotest.test_case "span survives exceptions" `Quick
            test_span_exception;
          Alcotest.test_case "timed" `Quick test_timed;
          Alcotest.test_case "ring overflow" `Quick test_ring_overflow;
          Alcotest.test_case "span summary" `Quick test_span_summary;
          QCheck_alcotest.to_alcotest prop_concurrent_well_nested;
        ] );
      ( "clock",
        [
          Alcotest.test_case "monotone under clamping" `Quick
            test_clock_monotone;
          Alcotest.test_case "wall/mono pair coherence" `Quick
            test_clock_pair_coherent;
          Alcotest.test_case "concurrent readers stay monotone" `Quick
            test_clock_concurrent_monotone;
        ] );
      ( "trace-ctx",
        [
          Alcotest.test_case "ambient rid scoping" `Quick
            test_trace_ctx_basic;
          Alcotest.test_case "spans tagged with the request rid" `Quick
            test_span_rid_tagging;
          Alcotest.test_case "explicit cross-domain handoff" `Quick
            test_trace_ctx_cross_domain;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "valid JSON" `Quick test_chrome_valid_json;
          Alcotest.test_case "matched B/E" `Quick
            test_chrome_matched_begin_end;
          Alcotest.test_case "thread names" `Quick test_chrome_thread_names;
          Alcotest.test_case "rid lands in event args" `Quick
            test_chrome_rid_args;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters, gauges, histograms" `Quick
            test_metrics_basic;
          Alcotest.test_case "json snapshot" `Quick test_metrics_json;
          Alcotest.test_case "strict json: finite bounds only" `Quick
            test_metrics_json_strict;
          Alcotest.test_case "always-on bypasses the obs gate" `Quick
            test_metrics_always_on;
          Alcotest.test_case "per-bucket exemplars: keep-max, reset" `Quick
            test_metrics_exemplars;
          Alcotest.test_case "exemplars in the json snapshot" `Quick
            test_metrics_json_exemplars;
          Alcotest.test_case "reset/observe race keeps count consistent"
            `Quick test_metrics_reset_observe_race;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "name/label/number rendering" `Quick
            test_prom_sanitize;
          Alcotest.test_case "exposition conformance" `Quick
            test_prom_render_conformance;
          Alcotest.test_case "OpenMetrics exemplar suffix" `Quick
            test_prom_exemplars;
          Alcotest.test_case "HELP escaping" `Quick test_prom_escaped_help;
        ] );
      ( "window",
        [
          Alcotest.test_case "ring, quantiles, wrap" `Quick test_window_basic;
          Alcotest.test_case "quantile exemplar is a real observation"
            `Quick test_window_exemplar;
          QCheck_alcotest.to_alcotest prop_window_quantiles;
        ] );
      ( "log",
        [
          Alcotest.test_case "event shape" `Quick test_log_event_shape;
          Alcotest.test_case "ambient correlation fields" `Quick
            test_log_ambient_fields;
          Alcotest.test_case "raising sink does not corrupt later events"
            `Quick test_log_sink_raises;
          Alcotest.test_case "levels, disable, mint" `Quick
            test_log_disabled_and_levels;
        ] );
      ( "progress",
        [ Alcotest.test_case "tick" `Quick test_progress_tick ] );
      ( "pipeline",
        [
          Alcotest.test_case "end-to-end spans" `Quick
            test_pipeline_spans_end_to_end;
        ] );
    ]
