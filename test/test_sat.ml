(* Tests for the CDCL SAT solver: unit behaviours, structured UNSAT
   instances, DIMACS I/O, and property tests against a brute-force
   reference. *)

module Solver = Sepsat_sat.Solver
module Lit = Sepsat_sat.Lit
module Dimacs = Sepsat_sat.Dimacs
module Deadline = Sepsat_util.Deadline

let result_t =
  Alcotest.testable
    (fun ppf r ->
      Format.pp_print_string ppf
        (match r with
        | Solver.Sat -> "sat"
        | Solver.Unsat -> "unsat"
        | Solver.Unknown -> "unknown"))
    ( = )

let test_lit () =
  let l = Lit.make 3 true in
  Alcotest.(check int) "var" 3 (Lit.var l);
  Alcotest.(check bool) "sign" true (Lit.sign l);
  Alcotest.(check bool) "neg sign" false (Lit.sign (Lit.neg l));
  Alcotest.(check int) "neg var" 3 (Lit.var (Lit.neg l));
  Alcotest.(check bool) "double neg" true (Lit.equal l (Lit.neg (Lit.neg l)));
  Alcotest.(check int) "dimacs" 4 (Lit.to_dimacs l);
  Alcotest.(check int) "dimacs neg" (-4) (Lit.to_dimacs (Lit.neg l));
  Alcotest.(check bool) "of_dimacs" true
    (Lit.equal l (Lit.of_dimacs (Lit.to_dimacs l)))

let test_empty_problem () =
  let s = Solver.create () in
  Alcotest.check result_t "no clauses" Solver.Sat (Solver.solve s)

let test_unit_propagation () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s and c = Solver.new_var s in
  Solver.add_clause s [ Lit.pos a ];
  Solver.add_clause s [ Lit.neg_of a; Lit.pos b ];
  Solver.add_clause s [ Lit.neg_of b; Lit.pos c ];
  Alcotest.check result_t "sat" Solver.Sat (Solver.solve s);
  Alcotest.(check bool) "a" true (Solver.value s (Lit.pos a));
  Alcotest.(check bool) "b" true (Solver.value s (Lit.pos b));
  Alcotest.(check bool) "c" true (Solver.value s (Lit.pos c))

let test_simple_unsat () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  List.iter (Solver.add_clause s)
    [
      [ Lit.pos a; Lit.pos b ];
      [ Lit.pos a; Lit.neg_of b ];
      [ Lit.neg_of a; Lit.pos b ];
      [ Lit.neg_of a; Lit.neg_of b ];
    ];
  Alcotest.check result_t "unsat" Solver.Unsat (Solver.solve s)

let test_empty_clause () =
  let s = Solver.create () in
  Solver.add_clause s [];
  Alcotest.check result_t "unsat" Solver.Unsat (Solver.solve s)

let test_tautology_dropped () =
  let s = Solver.create () in
  let a = Solver.new_var s in
  Solver.add_clause s [ Lit.pos a; Lit.neg_of a ];
  Alcotest.check result_t "sat" Solver.Sat (Solver.solve s)

let test_duplicate_literals () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ Lit.pos a; Lit.pos a; Lit.pos b ];
  Solver.add_clause s [ Lit.neg_of a; Lit.neg_of a ];
  Alcotest.check result_t "sat" Solver.Sat (Solver.solve s);
  Alcotest.(check bool) "b true" true (Solver.value s (Lit.pos b))

let pigeonhole holes =
  (* holes+1 pigeons into [holes] holes: classic hard UNSAT family. *)
  let s = Solver.create () in
  let pigeons = holes + 1 in
  let v = Array.init pigeons (fun _ -> Array.init holes (fun _ -> Solver.new_var s)) in
  for p = 0 to pigeons - 1 do
    Solver.add_clause s (List.init holes (fun h -> Lit.pos v.(p).(h)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Solver.add_clause s [ Lit.neg_of v.(p1).(h); Lit.neg_of v.(p2).(h) ]
      done
    done
  done;
  s

let test_pigeonhole () =
  List.iter
    (fun holes ->
      Alcotest.check result_t
        (Printf.sprintf "php %d" holes)
        Solver.Unsat
        (Solver.solve (pigeonhole holes)))
    [ 2; 3; 4; 5 ]

let test_incremental () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ Lit.pos a; Lit.pos b ];
  Alcotest.check result_t "sat 1" Solver.Sat (Solver.solve s);
  (* Block the model and re-solve until exhaustion: three models exist. *)
  let count = ref 0 in
  let rec loop () =
    match Solver.solve s with
    | Solver.Sat ->
      incr count;
      let blocking =
        List.map
          (fun v ->
            if Solver.value s (Lit.pos v) then Lit.neg_of v else Lit.pos v)
          [ a; b ]
      in
      Solver.add_clause s blocking;
      loop ()
    | Solver.Unsat -> ()
    | Solver.Unknown -> Alcotest.fail "unexpected unknown"
  in
  loop ();
  Alcotest.(check int) "model count" 3 !count

let test_conflict_budget () =
  let s = pigeonhole 7 in
  match Solver.solve ~conflict_budget:5 s with
  | Solver.Unknown -> ()
  | Solver.Unsat ->
    (* acceptable only if it needed fewer than 5 conflicts, which php(7)
       does not *)
    Alcotest.fail "php 7 cannot be refuted in 5 conflicts"
  | Solver.Sat -> Alcotest.fail "php is unsat"

let test_deadline_expired () =
  let s = pigeonhole 9 in
  match Solver.solve ~deadline:(Deadline.after (-1.)) s with
  | Solver.Unknown -> ()
  | Solver.Sat | Solver.Unsat -> Alcotest.fail "deadline should fire"

let test_stats () =
  let s = pigeonhole 4 in
  ignore (Solver.solve s);
  let st = Solver.stats s in
  Alcotest.(check bool) "conflicts > 0" true (st.Solver.conflicts > 0);
  Alcotest.(check bool) "decisions > 0" true (st.Solver.decisions > 0);
  Alcotest.(check bool) "propagations > 0" true (st.Solver.propagations > 0)

let test_dimacs_roundtrip () =
  let text = "c comment\np cnf 3 3\n1 -2 0\n2 3 0\n-1 0\n" in
  let cnf = Dimacs.parse text in
  Alcotest.(check int) "nvars" 3 cnf.Dimacs.nvars;
  Alcotest.(check int) "clauses" 3 (List.length cnf.Dimacs.clauses);
  let printed = Format.asprintf "%a" Dimacs.print cnf in
  let cnf2 = Dimacs.parse printed in
  Alcotest.(check bool) "roundtrip" true (cnf = cnf2);
  let s = Solver.create () in
  Dimacs.load_into s cnf;
  Alcotest.check result_t "solves" Solver.Sat (Solver.solve s);
  Alcotest.(check bool) "x1 false" false (Solver.value s (Lit.of_dimacs 1))

let test_export_cnf () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ Lit.pos a ] (* becomes a root-level fact *);
  Solver.add_clause s [ Lit.neg_of a; Lit.pos b ];
  let nvars, clauses = Solver.export_cnf s in
  Alcotest.(check int) "nvars" 2 nvars;
  (* reload into a fresh solver: must be satisfiable with the same forced
     values *)
  let s2 = Solver.create () in
  Dimacs.load_into s2 { Dimacs.nvars; clauses };
  Alcotest.check result_t "reload solves" Solver.Sat (Solver.solve s2);
  Alcotest.(check bool) "a forced" true (Solver.value s2 (Lit.pos a));
  Alcotest.(check bool) "b forced" true (Solver.value s2 (Lit.pos b))

let test_dimacs_errors () =
  Alcotest.(check bool) "bad token"
    true
    (match Dimacs.parse "p cnf 1 1\nfoo 0\n" with
    | exception Failure _ -> true
    | _ -> false);
  Alcotest.(check bool) "unterminated"
    true
    (match Dimacs.parse "p cnf 1 1\n1" with
    | exception Failure _ -> true
    | _ -> false)

(* -- DRUP proofs ---------------------------------------------------------- *)

module Proof = Sepsat_sat.Proof
module Drup_check = Sepsat_sat.Drup_check

let drup_result_t =
  Alcotest.testable
    (fun ppf r ->
      Format.pp_print_string ppf
        (match r with
        | Drup_check.Certified -> "certified"
        | Drup_check.Incomplete -> "incomplete"
        | Drup_check.Bogus m -> "bogus: " ^ m))
    (fun a b ->
      match (a, b) with
      | Drup_check.Certified, Drup_check.Certified -> true
      | Drup_check.Incomplete, Drup_check.Incomplete -> true
      | Drup_check.Bogus _, Drup_check.Bogus _ -> true
      | _ -> false)

let test_proof_unsat_certifies () =
  let s = Solver.create () in
  let proof = Solver.start_proof s in
  let a = Solver.new_var s and b = Solver.new_var s in
  List.iter (Solver.add_clause s)
    [
      [ Lit.pos a; Lit.pos b ];
      [ Lit.pos a; Lit.neg_of b ];
      [ Lit.neg_of a; Lit.pos b ];
      [ Lit.neg_of a; Lit.neg_of b ];
    ];
  Alcotest.check result_t "unsat" Solver.Unsat (Solver.solve s);
  Alcotest.check drup_result_t "certified" Drup_check.Certified
    (Drup_check.check (Proof.steps proof));
  Alcotest.(check bool) "certified fn" true (Drup_check.certified proof)

let test_proof_pigeonhole_certifies () =
  let s = pigeonhole 5 in
  (* recreate with proof enabled *)
  let s2 = Solver.create () in
  let proof = Solver.start_proof s2 in
  ignore s;
  let holes = 5 in
  let pigeons = holes + 1 in
  let v =
    Array.init pigeons (fun _ -> Array.init holes (fun _ -> Solver.new_var s2))
  in
  for p = 0 to pigeons - 1 do
    Solver.add_clause s2 (List.init holes (fun h -> Lit.pos v.(p).(h)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Solver.add_clause s2 [ Lit.neg_of v.(p1).(h); Lit.neg_of v.(p2).(h) ]
      done
    done
  done;
  Alcotest.check result_t "unsat" Solver.Unsat (Solver.solve s2);
  Alcotest.(check bool) "certified" true (Drup_check.certified proof)

let test_proof_sat_incomplete () =
  let s = Solver.create () in
  let proof = Solver.start_proof s in
  let a = Solver.new_var s in
  Solver.add_clause s [ Lit.pos a ];
  Alcotest.check result_t "sat" Solver.Sat (Solver.solve s);
  Alcotest.check drup_result_t "incomplete" Drup_check.Incomplete
    (Drup_check.check (Proof.steps proof))

let test_proof_tampering_detected () =
  (* a fabricated trace claiming an underivable clause must be rejected *)
  let a = Lit.of_dimacs 1 and b = Lit.of_dimacs 2 in
  let bogus =
    [
      Proof.Input [ a; b ];
      Proof.Learned [ Lit.neg a ] (* not RUP from (a or b) *);
      Proof.Learned [];
    ]
  in
  (match Drup_check.check bogus with
  | Drup_check.Bogus _ -> ()
  | Drup_check.Certified | Drup_check.Incomplete ->
    Alcotest.fail "tampered proof accepted");
  (* and a trace without the empty clause proves nothing *)
  let partial = [ Proof.Input [ a ]; Proof.Learned [ a ] ] in
  Alcotest.check drup_result_t "incomplete" Drup_check.Incomplete
    (Drup_check.check partial)

let test_proof_dimacs_output () =
  let p = Proof.create () in
  Proof.input p [ Lit.of_dimacs 1; Lit.of_dimacs (-2) ];
  Proof.learned p [ Lit.of_dimacs 1 ];
  Proof.deleted p [ Lit.of_dimacs 1; Lit.of_dimacs (-2) ];
  let text = Format.asprintf "%a" Proof.pp_dimacs p in
  Alcotest.(check bool) "has comment" true
    (String.length text > 0 && text.[0] = 'c');
  Alcotest.(check bool) "has delete line" true
    (String.split_on_char '\n' text |> List.exists (fun l ->
         String.length l > 0 && l.[0] = 'd'))

(* -- Properties: random CNF vs brute force ------------------------------- *)

let brute_force_sat nvars clauses =
  let rec loop assignment v =
    if v = nvars then
      List.for_all
        (List.exists (fun l ->
             if Lit.sign l then assignment.(Lit.var l)
             else not assignment.(Lit.var l)))
        clauses
    else begin
      assignment.(v) <- true;
      loop assignment (v + 1)
      ||
      (assignment.(v) <- false;
       loop assignment (v + 1))
    end
  in
  loop (Array.make nvars false) 0

let gen_cnf ~nvars ~nclauses ~width =
  QCheck2.Gen.(
    list_size (int_bound nclauses)
      (list_size (int_range 1 width)
         (map2 (fun v s -> Lit.make v s) (int_bound (nvars - 1)) bool)))

let test_proof_deletion_honoured () =
  (* After deleting the only clause that could support the inference, the
     learned clause is no longer RUP. *)
  let a = Lit.of_dimacs 1 and b = Lit.of_dimacs 2 in
  let trace_ok =
    [
      Proof.Input [ a; b ];
      Proof.Input [ a; Lit.neg b ];
      Proof.Learned [ a ] (* RUP: assume -1; both inputs propagate 2, -2 *);
      Proof.Input [ Lit.neg a ];
      Proof.Learned [];
    ]
  in
  Alcotest.check drup_result_t "valid trace" Drup_check.Certified
    (Drup_check.check trace_ok);
  let trace_deleted =
    [
      Proof.Input [ a; b ];
      Proof.Input [ a; Lit.neg b ];
      Proof.Deleted [ a; Lit.neg b ];
      Proof.Learned [ a ];
      Proof.Input [ Lit.neg a ];
      Proof.Learned [];
    ]
  in
  (match Drup_check.check trace_deleted with
  | Drup_check.Bogus _ -> ()
  | Drup_check.Certified | Drup_check.Incomplete ->
    Alcotest.fail "deleted support should break the RUP check")

let test_proof_phantom_deletion () =
  (* deleting a clause that was never added is a no-op, not an error; the
     rest of the trace must still replay *)
  let a = Lit.of_dimacs 1 and b = Lit.of_dimacs 2 and c = Lit.of_dimacs 3 in
  let trace =
    [
      Proof.Input [ a ];
      Proof.Deleted [ b; c ] (* never added *);
      Proof.Deleted [ a; b ] (* never added either *);
      Proof.Input [ Lit.neg a ];
      Proof.Learned [];
    ]
  in
  Alcotest.check drup_result_t "phantom deletion ignored" Drup_check.Certified
    (Drup_check.check trace)

let test_proof_empty_learned () =
  let a = Lit.of_dimacs 1 in
  (* the empty clause is RUP exactly when propagation alone conflicts *)
  Alcotest.check drup_result_t "empty clause from contradictory units"
    Drup_check.Certified
    (Drup_check.check [ Proof.Input [ a ]; Proof.Input [ Lit.neg a ];
                        Proof.Learned [] ]);
  (* ... and Bogus when the database is satisfiable *)
  (match Drup_check.check [ Proof.Input [ a ]; Proof.Learned [] ] with
  | Drup_check.Bogus _ -> ()
  | Drup_check.Certified | Drup_check.Incomplete ->
    Alcotest.fail "empty clause learned from a satisfiable database");
  (* unit deletions are ignored (lenient DRUP), so the conclusion stands *)
  Alcotest.check drup_result_t "unit deletion ignored" Drup_check.Certified
    (Drup_check.check
       [ Proof.Input [ a ]; Proof.Deleted [ a ]; Proof.Input [ Lit.neg a ];
         Proof.Learned [] ])

let test_proof_across_restarts () =
  (* restarts inside one search: the pigeonhole trace below forces enough
     conflicts that the Luby scheduler fires; the trace must still replay *)
  let s = Solver.create () in
  let proof = Solver.start_proof s in
  let holes = 5 in
  let v =
    Array.init (holes + 1) (fun _ ->
        Array.init holes (fun _ -> Solver.new_var s))
  in
  for p = 0 to holes do
    Solver.add_clause s (List.init holes (fun h -> Lit.pos v.(p).(h)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to holes do
      for p2 = p1 + 1 to holes do
        Solver.add_clause s [ Lit.neg_of v.(p1).(h); Lit.neg_of v.(p2).(h) ]
      done
    done
  done;
  Alcotest.check result_t "unsat" Solver.Unsat (Solver.solve s);
  Alcotest.(check bool) "search restarted" true
    ((Solver.stats s).Solver.restarts > 0);
  Alcotest.(check bool) "certified across restarts" true
    (Drup_check.certified proof);
  (* restarts across solve calls: a proof spanning a Sat answer, later
     clause additions and a final Unsat must also replay *)
  let s2 = Solver.create () in
  let proof2 = Solver.start_proof s2 in
  let x = Solver.new_var s2 and y = Solver.new_var s2 in
  Solver.add_clause s2 [ Lit.pos x; Lit.pos y ];
  Alcotest.check result_t "first solve sat" Solver.Sat (Solver.solve s2);
  Alcotest.check drup_result_t "sat stage incomplete" Drup_check.Incomplete
    (Drup_check.check (Proof.steps proof2));
  Solver.add_clause s2 [ Lit.neg_of x ];
  Solver.add_clause s2 [ Lit.neg_of y ];
  Alcotest.check result_t "second solve unsat" Solver.Unsat (Solver.solve s2);
  Alcotest.(check bool) "certified across solves" true
    (Drup_check.certified proof2)

(* Property: every UNSAT answer on random CNF comes with a certifiable
   proof. *)
let prop_random_unsat_certifies =
  QCheck2.Test.make ~name:"random unsat proofs certify" ~count:300
    (gen_cnf ~nvars:10 ~nclauses:55 ~width:3)
    (fun clauses ->
      let s = Solver.create () in
      let proof = Solver.start_proof s in
      for _ = 1 to 10 do
        ignore (Solver.new_var s)
      done;
      List.iter (Solver.add_clause s) clauses;
      match Solver.solve s with
      | Solver.Unsat -> Drup_check.certified proof
      | Solver.Sat | Solver.Unknown -> true)

let prop_random_cnf ~name ~nvars ~nclauses ~width ~count =
  QCheck2.Test.make ~name ~count (gen_cnf ~nvars ~nclauses ~width)
    (fun clauses ->
      let s = Solver.create () in
      for _ = 1 to nvars do
        ignore (Solver.new_var s)
      done;
      List.iter (Solver.add_clause s) clauses;
      match Solver.solve s with
      | Solver.Sat ->
        (* the model must satisfy every clause *)
        List.for_all (List.exists (fun l -> Solver.value s l)) clauses
      | Solver.Unsat -> not (brute_force_sat nvars clauses)
      | Solver.Unknown -> false)

(* -- Incremental interface: assumptions, cores, phases, cancellation ------ *)

let test_assumptions_basic () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ Lit.pos a; Lit.pos b ];
  Alcotest.check result_t "assume -a" Solver.Sat
    (Solver.solve ~assumptions:[ Lit.neg_of a ] s);
  Alcotest.(check bool) "b forced" true (Solver.value s (Lit.pos b));
  Solver.add_clause s [ Lit.neg_of b ];
  Alcotest.check result_t "assume -a with -b clause" Solver.Unsat
    (Solver.solve ~assumptions:[ Lit.neg_of a ] s);
  (* assumptions are retracted: the database alone is still satisfiable *)
  Alcotest.check result_t "no assumptions" Solver.Sat (Solver.solve s);
  Alcotest.(check bool) "a true in model" true (Solver.value s (Lit.pos a))

let test_assumptions_core () =
  let s = Solver.create () in
  let a = Solver.new_var s
  and b = Solver.new_var s
  and c = Solver.new_var s in
  Solver.add_clause s [ Lit.neg_of a; Lit.neg_of b ];
  (* c is irrelevant; the core must not include it *)
  let assumptions = [ Lit.pos c; Lit.pos a; Lit.pos b ] in
  Alcotest.check result_t "conflicting assumptions" Solver.Unsat
    (Solver.solve ~assumptions s);
  let core = Solver.unsat_core s in
  Alcotest.(check bool) "core non-empty" true (core <> []);
  Alcotest.(check bool) "core within assumptions" true
    (List.for_all (fun l -> List.exists (Lit.equal l) assumptions) core);
  Alcotest.(check bool) "irrelevant assumption dropped" false
    (List.exists (Lit.equal (Lit.pos c)) core);
  (* the core is genuinely unsatisfiable with the database *)
  Alcotest.check result_t "core re-solves unsat" Solver.Unsat
    (Solver.solve ~assumptions:core s);
  (* the solver survives the failures and still answers without assumptions *)
  Alcotest.check result_t "still sat alone" Solver.Sat (Solver.solve s)

let test_contradictory_assumptions () =
  let s = Solver.create () in
  let a = Solver.new_var s in
  ignore (Solver.new_var s);
  Alcotest.check result_t "a and -a" Solver.Unsat
    (Solver.solve ~assumptions:[ Lit.pos a; Lit.neg_of a ] s);
  let core = Solver.unsat_core s in
  Alcotest.(check bool) "core mentions a" true
    (List.exists (fun l -> Lit.var l = a) core);
  Alcotest.check result_t "reusable" Solver.Sat (Solver.solve s)

let test_eliminated_stat () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ Lit.pos a; Lit.neg_of a; Lit.pos b ] (* tautology *);
  Alcotest.(check int) "tautology eliminated" 1
    (Solver.stats s).Solver.eliminated;
  Solver.add_clause s [ Lit.pos a ];
  Solver.add_clause s [ Lit.pos a; Lit.pos b ] (* satisfied at root *);
  Alcotest.(check int) "root-satisfied eliminated" 2
    (Solver.stats s).Solver.eliminated;
  Alcotest.check result_t "sat" Solver.Sat (Solver.solve s)

let test_warm_start () =
  let s = Solver.create () in
  let vars = Array.init 6 (fun _ -> Solver.new_var s) in
  (* wholly unconstrained variables follow their seeded phases *)
  Solver.add_clause s [ Lit.pos vars.(0); Lit.pos vars.(1) ];
  let phases = Array.init 6 (fun i -> i mod 2 = 0) in
  Solver.warm_start s phases;
  Alcotest.check result_t "sat" Solver.Sat (Solver.solve s);
  let m = Solver.model s in
  for i = 2 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "phase of v%d honoured" i)
      phases.(i) m.(vars.(i))
  done

let test_stop_flag () =
  let s = Solver.create () in
  (* a pigeonhole instance large enough that it cannot finish instantly *)
  let holes = 8 in
  let v =
    Array.init (holes + 1) (fun _ ->
        Array.init holes (fun _ -> Solver.new_var s))
  in
  for p = 0 to holes do
    Solver.add_clause s (List.init holes (fun h -> Lit.pos v.(p).(h)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to holes do
      for p2 = p1 + 1 to holes do
        Solver.add_clause s [ Lit.neg_of v.(p1).(h); Lit.neg_of v.(p2).(h) ]
      done
    done
  done;
  let flag = Atomic.make true in
  Solver.set_stop s flag;
  Alcotest.check result_t "cancelled" Solver.Unknown (Solver.solve s);
  Alcotest.(check bool) "interrupted" true (Solver.interrupted s);
  Atomic.set flag false;
  Alcotest.check result_t "resumes to unsat" Solver.Unsat (Solver.solve s)

let gen_cnf_with_assumptions ~nvars ~nclauses ~width ~nassum =
  QCheck2.Gen.(
    pair
      (gen_cnf ~nvars ~nclauses ~width)
      (list_size (int_bound nassum)
         (map2 (fun v s -> Lit.make v s) (int_bound (nvars - 1)) bool)))

(* Property: [solve ~assumptions] answers exactly as solving the formula
   with the assumptions added as unit clauses — without poisoning the
   database. *)
let prop_assumptions_agree =
  QCheck2.Test.make ~name:"assumptions agree with unit clauses" ~count:300
    (gen_cnf_with_assumptions ~nvars:10 ~nclauses:40 ~width:3 ~nassum:6)
    (fun (clauses, assumptions) ->
      let s = Solver.create () in
      for _ = 1 to 10 do
        ignore (Solver.new_var s)
      done;
      List.iter (Solver.add_clause s) clauses;
      let incremental = Solver.solve ~assumptions s in
      let reference =
        not
          (brute_force_sat 10
             (clauses @ List.map (fun l -> [ l ]) assumptions))
      in
      match incremental with
      | Solver.Sat -> not reference
      | Solver.Unsat -> reference
      | Solver.Unknown -> false)

(* Property: the failed-assumption core, asserted as units, really is
   unsatisfiable with the database. *)
let prop_failed_core_unsat =
  QCheck2.Test.make ~name:"failed assumption cores are unsat" ~count:300
    (gen_cnf_with_assumptions ~nvars:10 ~nclauses:40 ~width:3 ~nassum:6)
    (fun (clauses, assumptions) ->
      let s = Solver.create () in
      for _ = 1 to 10 do
        ignore (Solver.new_var s)
      done;
      List.iter (Solver.add_clause s) clauses;
      match Solver.solve ~assumptions s with
      | Solver.Sat | Solver.Unknown -> true
      | Solver.Unsat ->
        let core = Solver.unsat_core s in
        List.for_all (fun l -> List.exists (Lit.equal l) assumptions) core
        && not
             (brute_force_sat 10
                (clauses @ List.map (fun l -> [ l ]) core)))

let () =
  Alcotest.run "sat"
    [
      ("lit", [ Alcotest.test_case "basics" `Quick test_lit ]);
      ( "solver",
        [
          Alcotest.test_case "empty problem" `Quick test_empty_problem;
          Alcotest.test_case "unit propagation" `Quick test_unit_propagation;
          Alcotest.test_case "simple unsat" `Quick test_simple_unsat;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "tautology" `Quick test_tautology_dropped;
          Alcotest.test_case "duplicate literals" `Quick test_duplicate_literals;
          Alcotest.test_case "pigeonhole" `Slow test_pigeonhole;
          Alcotest.test_case "incremental" `Quick test_incremental;
          Alcotest.test_case "conflict budget" `Quick test_conflict_budget;
          Alcotest.test_case "deadline" `Quick test_deadline_expired;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "errors" `Quick test_dimacs_errors;
          Alcotest.test_case "export" `Quick test_export_cnf;
        ] );
      ( "proof",
        [
          Alcotest.test_case "unsat certifies" `Quick test_proof_unsat_certifies;
          Alcotest.test_case "pigeonhole certifies" `Slow
            test_proof_pigeonhole_certifies;
          Alcotest.test_case "sat is incomplete" `Quick test_proof_sat_incomplete;
          Alcotest.test_case "tampering detected" `Quick
            test_proof_tampering_detected;
          Alcotest.test_case "dimacs output" `Quick test_proof_dimacs_output;
          Alcotest.test_case "deletion honoured" `Quick
            test_proof_deletion_honoured;
          Alcotest.test_case "phantom deletion" `Quick
            test_proof_phantom_deletion;
          Alcotest.test_case "empty learned clause" `Quick
            test_proof_empty_learned;
          Alcotest.test_case "replay across restarts" `Slow
            test_proof_across_restarts;
          QCheck_alcotest.to_alcotest prop_random_unsat_certifies;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "assumptions basic" `Quick test_assumptions_basic;
          Alcotest.test_case "failed core" `Quick test_assumptions_core;
          Alcotest.test_case "contradictory assumptions" `Quick
            test_contradictory_assumptions;
          Alcotest.test_case "eliminated stat" `Quick test_eliminated_stat;
          Alcotest.test_case "warm start" `Quick test_warm_start;
          Alcotest.test_case "stop flag" `Quick test_stop_flag;
          QCheck_alcotest.to_alcotest prop_assumptions_agree;
          QCheck_alcotest.to_alcotest prop_failed_core_unsat;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest
            (prop_random_cnf ~name:"random 3-cnf (12 vars)" ~nvars:12
               ~nclauses:50 ~width:3 ~count:300);
          QCheck_alcotest.to_alcotest
            (prop_random_cnf ~name:"random wide cnf (10 vars)" ~nvars:10
               ~nclauses:30 ~width:6 ~count:200);
          QCheck_alcotest.to_alcotest
            (prop_random_cnf ~name:"random unit-heavy cnf (8 vars)" ~nvars:8
               ~nclauses:25 ~width:2 ~count:300);
        ] );
    ]
