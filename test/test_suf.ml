(* Tests for the SUF front end: AST, parser, interpretation semantics,
   positive-equality analysis and function elimination. *)

module Ast = Sepsat_suf.Ast
module Parse = Sepsat_suf.Parse
module Interp = Sepsat_suf.Interp
module Polarity = Sepsat_suf.Polarity
module Elim = Sepsat_suf.Elim
module Sset = Sepsat_util.Sset
module Random_formula = Sepsat_workloads.Random_formula

let test_ast_smart_constructors () =
  let ctx = Ast.create_ctx () in
  let x = Ast.const ctx "x" in
  Alcotest.(check bool) "const shared" true (x == Ast.const ctx "x");
  Alcotest.(check bool) "eq refl" true (Ast.eq ctx x x == Ast.tru ctx);
  Alcotest.(check bool) "lt irrefl" true (Ast.lt ctx x x == Ast.fls ctx);
  Alcotest.(check bool) "succ pred cancel" true
    (Ast.succ ctx (Ast.pred ctx x) == x);
  Alcotest.(check bool) "pred succ cancel" true
    (Ast.pred ctx (Ast.succ ctx x) == x);
  Alcotest.(check bool) "plus 0" true (Ast.plus ctx x 0 == x);
  Alcotest.(check bool) "plus assoc" true
    (Ast.plus ctx (Ast.plus ctx x 2) (-2) == x);
  let y = Ast.const ctx "y" in
  Alcotest.(check bool) "eq symmetric sharing" true
    (Ast.eq ctx x y == Ast.eq ctx y x);
  let b = Ast.bconst ctx "b" in
  Alcotest.(check bool) "ite same branches" true (Ast.tite ctx b x x == x);
  Alcotest.(check bool) "fite const guard" true
    (Ast.fite ctx (Ast.tru ctx) b (Ast.fls ctx) == b)

let test_arity_discipline () =
  let ctx = Ast.create_ctx () in
  let x = Ast.const ctx "x" in
  ignore (Ast.app ctx "f" [ x ]);
  Alcotest.(check bool) "arity conflict" true
    (match Ast.app ctx "f" [ x; x ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "kind conflict" true
    (match Ast.papp ctx "f" [ x ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "const as predicate" true
    (match Ast.bconst ctx "x" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_queries () =
  let ctx = Ast.create_ctx () in
  let f =
    Parse.formula ctx "(and (= (f x) (g x y)) (or (P (succ x)) (< y z)))"
  in
  Alcotest.(check (list (pair string int)))
    "functions"
    [ ("f", 1); ("g", 2); ("x", 0); ("y", 0); ("z", 0) ]
    (Ast.functions f);
  Alcotest.(check (list (pair string int)))
    "predicates" [ ("P", 1) ] (Ast.predicates f);
  Alcotest.(check int) "atoms" 2 (List.length (Ast.atoms f));
  Alcotest.(check bool) "has applications" true (Ast.has_applications f);
  let g = Parse.formula ctx "(= x y)" in
  Alcotest.(check bool) "no applications" false (Ast.has_applications g)

let test_fresh_name () =
  let ctx = Ast.create_ctx () in
  ignore (Ast.const ctx "v");
  let n1 = Ast.fresh_name ctx "v" in
  Alcotest.(check string) "suffixed" "v!1" n1;
  ignore (Ast.const ctx n1);
  Alcotest.(check string) "next" "v!2" (Ast.fresh_name ctx "v");
  Alcotest.(check string) "unused stem" "w" (Ast.fresh_name ctx "w")

let test_parse_errors () =
  let expect_error text =
    let ctx = Ast.create_ctx () in
    match Parse.formula ctx text with
    | exception Parse.Error _ -> true
    | _ -> false
  in
  List.iter
    (fun text ->
      Alcotest.(check bool)
        (Printf.sprintf "reject %S" text)
        true (expect_error text))
    [
      "";
      "(and x)";
      "(= x)";
      "(not)";
      "(< x y";
      "(= x y))";
      "(= x 3)";
      "(succ x)";
      "(= (and x y) z)";
      "(P)";
    ]

let test_parse_comments () =
  let ctx = Ast.create_ctx () in
  let f = Parse.formula ctx "; a comment\n(= x ; mid\n y)\n" in
  Alcotest.(check bool) "parsed" true
    (f == Ast.eq ctx (Ast.const ctx "x") (Ast.const ctx "y"))

let prop_roundtrip =
  QCheck2.Test.make ~name:"print/parse roundtrip (semantic)" ~count:200
    QCheck2.Gen.(pair (int_bound 100000) (int_bound 1000))
    (fun (seed, iseed) ->
      let ctx = Ast.create_ctx () in
      let f = Random_formula.generate Random_formula.default ctx ~seed in
      (* equality operands are canonicalized by node id, so the reparse may
         be syntactically reordered; it must stay semantically identical and
         size-preserving *)
      let ctx2 = Ast.create_ctx () in
      let g = Parse.formula ctx2 (Ast.to_string f) in
      let same_value k =
        let i = Interp.random ~seed:(iseed + k) ~range:5 in
        Interp.eval i f = Interp.eval i g
      in
      Ast.size f = Ast.size g
      && List.for_all same_value [ 0; 1; 2; 3; 4; 5; 6; 7 ])

(* Fuzz: the parser must either succeed or raise Parse.Error — never crash
   with anything else. *)
let prop_parser_fuzz =
  let gen =
    QCheck2.Gen.(
      string_size ~gen:(oneofl
        [ '('; ')'; ' '; '\n'; 'x'; 'y'; '='; '<'; '+'; '-'; '1'; 'f'; ';'; '>' ])
        (int_bound 60))
  in
  QCheck2.Test.make ~name:"parser fuzz: Parse.Error or success" ~count:500 gen
    (fun text ->
      let ctx = Ast.create_ctx () in
      match Parse.formula ctx text with
      | _ -> true
      | exception Parse.Error _ -> true
      | exception _ -> false)

let test_interp () =
  let ctx = Ast.create_ctx () in
  let x = Ast.const ctx "x" in
  let i = Interp.random ~seed:7 ~range:10 in
  Alcotest.(check bool)
    "x < succ x" true
    (Interp.eval i (Ast.lt ctx x (Ast.succ ctx x)));
  Alcotest.(check int) "succ"
    (Interp.eval_term i x + 1)
    (Interp.eval_term i (Ast.succ ctx x));
  Alcotest.(check int) "pred"
    (Interp.eval_term i x - 1)
    (Interp.eval_term i (Ast.pred ctx x));
  let j = Interp.override_const i "x" 42 in
  Alcotest.(check int) "override" 42 (Interp.eval_term j x);
  let fx = Ast.app ctx "f" [ x ] in
  Alcotest.(check int) "functional consistency" (Interp.eval_term j fx)
    (Interp.eval_term j fx)

let test_polarity_cases () =
  let check name text expected_p =
    let ctx = Ast.create_ctx () in
    let f = Parse.formula ctx text in
    let c = Polarity.classify f in
    Alcotest.(check (list string))
      name expected_p
      (Sset.elements c.Polarity.p_funcs)
  in
  check "positive equality" "(= (f x) (g y))" [ "f"; "g" ];
  check "negated equality" "(not (= (f x) y))" [];
  check "inequality" "(< (f x) y)" [];
  check "antecedent negative" "(=> (= a b) (= (f a) (f b)))" [ "f" ];
  check "ite guard" "(= (ite (= a b) x y) (f z))" [ "f"; "x"; "y" ];
  (* y is only compared positively, so it is p too *)
  check "nested application" "(= (f (g x)) y)" [ "f"; "y" ]

(* Key elimination property: extending an interpretation to the fresh
   constants by the definition order makes F_sep evaluate exactly like
   F_suf. *)
let extend_interp interp (defs : Elim.def list) =
  List.fold_left
    (fun interp (d : Elim.def) ->
      if d.Elim.is_predicate then begin
        let value =
          interp.Interp.pred d.Elim.symbol
            (List.map (Interp.eval_term interp) d.Elim.args)
        in
        {
          interp with
          Interp.pred =
            (fun name args ->
              if String.equal name d.Elim.fresh && args = [] then value
              else interp.Interp.pred name args);
        }
      end
      else begin
        let value =
          interp.Interp.func d.Elim.symbol
            (List.map (Interp.eval_term interp) d.Elim.args)
        in
        Interp.override_const interp d.Elim.fresh value
      end)
    interp defs

let prop_elim_semantics name eliminate =
  QCheck2.Test.make ~name ~count:150
    QCheck2.Gen.(pair (int_bound 100000) (int_bound 1000))
    (fun (seed, iseed) ->
      let ctx = Ast.create_ctx () in
      let f = Random_formula.generate Random_formula.default ctx ~seed in
      let result = eliminate ctx f in
      if Ast.has_applications result.Elim.formula then false
      else begin
        let interp = Interp.random ~seed:iseed ~range:6 in
        let extended = extend_interp interp result.Elim.defs in
        Interp.eval interp f = Interp.eval extended result.Elim.formula
      end)

let test_elim_p_consts () =
  let ctx = Ast.create_ctx () in
  let f = Parse.formula ctx "(= (f x) (g y))" in
  let r = Elim.eliminate ctx f in
  Alcotest.(check bool)
    "some p constant from f" true
    (Sset.exists (fun n -> n = "f" || String.length n > 1 && n.[0] = 'f')
       r.Elim.p_consts);
  Alcotest.(check bool) "x not p" false (Sset.mem "x" r.Elim.p_consts)

let test_elim_functional_consistency () =
  let ctx = Ast.create_ctx () in
  let f = Parse.formula ctx "(=> (= a b) (= (f a) (f b)))" in
  let r = Elim.eliminate ctx f in
  Alcotest.(check bool)
    "no applications" false
    (Ast.has_applications r.Elim.formula);
  Alcotest.(check bool) "valid via brute" true (Sepsat_sep.Brute.valid r.Elim.formula)

let test_ackermann_agreement () =
  List.iter
    (fun text ->
      let ctx1 = Ast.create_ctx () in
      let v1 =
        Sepsat_sep.Brute.valid
          (Elim.eliminate ctx1 (Parse.formula ctx1 text)).Elim.formula
      in
      let ctx2 = Ast.create_ctx () in
      let v2 =
        Sepsat_sep.Brute.valid
          (Elim.ackermannize ctx2 (Parse.formula ctx2 text)).Elim.formula
      in
      Alcotest.(check bool) text v1 v2)
    [
      "(=> (= a b) (= (f a) (f b)))";
      "(=> (= (f a) (f b)) (= a b))";
      "(= (f (f a)) (f a))";
      "(=> (and (= a b) (= b c)) (= (f a) (f c)))";
      "(=> (P a) (P a))";
      "(=> (and (= a b) (P a)) (P b))";
    ]

module Smtlib = Sepsat_suf.Smtlib
module Decide = Sepsat.Decide
module Verdict = Sepsat_sep.Verdict

(* SMT-LIB scripts: answer check-sat through the decision procedure. *)
let smt_answer text =
  let ctx = Ast.create_ctx () in
  match Smtlib.script ctx text with
  | script -> (
    let goal = Smtlib.goal ctx script in
    match (Decide.decide ctx goal).Decide.verdict with
    | Verdict.Valid -> "unsat"
    | Verdict.Invalid _ -> "sat"
    | Verdict.Unknown w -> "unknown: " ^ w)
  | exception Smtlib.Error _ -> "error"

let test_smtlib_scripts () =
  List.iter
    (fun (text, want) ->
      Alcotest.(check string) (String.sub text 0 (min 40 (String.length text)))
        want (smt_answer text))
    [
      ( "(set-logic QF_UFIDL)(declare-fun x () Int)(declare-fun y () Int)\n\
         (assert (< x y))(assert (< y x))(check-sat)",
        "unsat" );
      ( "(declare-const x Int)(declare-const y Int)\n\
         (assert (<= (- x y) 3))(assert (>= (- x y) 2))(check-sat)",
        "sat" );
      ( "(declare-fun f (Int) Int)(declare-const a Int)(declare-const b Int)\n\
         (assert (= a b))(assert (distinct (f a) (f b)))(check-sat)",
        "unsat" );
      ("(declare-const p Bool)(assert (= p (not p)))(check-sat)", "unsat");
      ( "(declare-const x Int)(assert (let ((z (+ x 1))) (< x z)))(check-sat)",
        "sat" );
      ( "(declare-fun P (Int) Bool)(declare-const u Int)(declare-const v Int)\n\
         (assert (P u))(assert (not (P v)))(assert (= u v))(check-sat)",
        "unsat" );
      ( "(declare-const a Int)(declare-const b Int)(declare-const c Int)\n\
         (assert (distinct a b c))(assert (< a b))(assert (< b c))(check-sat)",
        "sat" );
      ( "(declare-const x Int)(declare-const y Int)\n\
         (assert (xor (< x y) (<= x y)))(check-sat)",
        "sat" );
      ("(declare-const x Int)(assert (< x 3))(check-sat)", "error");
      ("(push 1)", "error");
      ("(define-fun f () Int 3)", "error");
      ("(declare-const x Real)", "error");
    ]

let test_smtlib_structure () =
  let ctx = Ast.create_ctx () in
  let s =
    Smtlib.script ctx
      "(set-logic QF_IDL)(declare-const x Int)(assert (< x (+ x 1)))\n\
       (assert true)(check-sat)(exit)"
  in
  Alcotest.(check (option string)) "logic" (Some "QF_IDL") s.Smtlib.logic;
  Alcotest.(check int) "assertions" 2 (List.length s.Smtlib.assertions);
  Alcotest.(check bool) "check requested" true s.Smtlib.requested_check

(* print ∘ parse round trips: re-parsing a printed script into the same
   context yields the identical hash-consed formula, and printing again is a
   textual fixpoint. *)
let roundtrip_check name ctx f =
  let text = Smtlib.script_to_string [ f ] in
  match Smtlib.script ctx text with
  | exception Smtlib.Error msg ->
    Alcotest.failf "%s: printed script does not re-parse: %s" name msg
  | s -> (
    match s.Smtlib.assertions with
    | [ f' ] ->
      if not (f' == f) then
        Alcotest.failf "%s: reparse is not the identical formula" name;
      Alcotest.(check string)
        (name ^ " print fixpoint") text
        (Smtlib.script_to_string s.Smtlib.assertions)
    | other ->
      Alcotest.failf "%s: expected 1 assertion, got %d" name
        (List.length other))

let test_smtlib_roundtrip_suite () =
  List.iter
    (fun (b : Sepsat_workloads.Suite.benchmark) ->
      let ctx = Ast.create_ctx () in
      roundtrip_check b.Sepsat_workloads.Suite.name ctx
        (b.Sepsat_workloads.Suite.build ctx))
    Sepsat_workloads.Suite.benchmarks

let prop_smtlib_roundtrip_random =
  QCheck2.Test.make ~name:"smtlib roundtrip on random formulas" ~count:200
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let ctx = Ast.create_ctx () in
      let f = Random_formula.generate Random_formula.default ctx ~seed in
      roundtrip_check "random" ctx f;
      true)

(* ------------------------------------------------------------------ *)
(* Structural digests                                                  *)

let test_digest_distinguishes () =
  let ctx = Ast.create_ctx () in
  let f = Parse.formula ctx "(= (f x) (f y))" in
  let g = Parse.formula ctx "(= (f x) (f z))" in
  let h = Parse.formula ctx "(= (f y) (f x))" in
  Alcotest.(check bool)
    "distinct formulas, distinct digests" true
    (Ast.digest f <> Ast.digest g);
  (* eq is symmetric: hash-consing already identifies these, and the digest
     must agree with that identification *)
  Alcotest.(check string) "symmetric eq" (Ast.digest f) (Ast.digest h);
  Alcotest.(check bool) "hex, 32 chars" true (String.length (Ast.digest f) = 32)

(* The And/Or/Eq smart constructors canonicalize operands by hash-cons node
   id, which depends on construction order within a context. The digest must
   not: the same formula built in contexts with different allocation orders
   digests identically. *)
let test_digest_order_independent () =
  let text = "(and (or (P x) (= y z)) (= (f x) (succ y)))" in
  let ctx1 = Ast.create_ctx () in
  (* warm ctx2 so every shared node gets different ids than in ctx1 *)
  let ctx2 = Ast.create_ctx () in
  ignore (Parse.formula ctx2 "(= (g z) (succ (f (pred y))))");
  ignore (Parse.formula ctx2 "(or (P q) (Q x))");
  let f1 = Parse.formula ctx1 text in
  let f2 = Parse.formula ctx2 text in
  Alcotest.(check string) "same digest across contexts" (Ast.digest f1)
    (Ast.digest f2)

let prop_digest_roundtrip =
  QCheck2.Test.make
    ~name:"digest survives print/parse and smtlib round trips" ~count:200
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let ctx = Ast.create_ctx () in
      let f = Random_formula.generate Random_formula.default ctx ~seed in
      let d = Ast.digest f in
      (* native syntax into a fresh context *)
      let ctx2 = Ast.create_ctx () in
      let g = Parse.formula ctx2 (Ast.to_string f) in
      (* smtlib print/re-parse into yet another fresh context *)
      let text = Smtlib.script_to_string [ f ] in
      let ctx3 = Ast.create_ctx () in
      let s = Smtlib.script ctx3 text in
      let h =
        match s.Smtlib.assertions with [ h ] -> h | _ -> assert false
      in
      d = Ast.digest g && d = Ast.digest h)

let () =
  Alcotest.run "suf"
    [
      ( "ast",
        [
          Alcotest.test_case "smart constructors" `Quick
            test_ast_smart_constructors;
          Alcotest.test_case "arity discipline" `Quick test_arity_discipline;
          Alcotest.test_case "queries" `Quick test_queries;
          Alcotest.test_case "fresh names" `Quick test_fresh_name;
        ] );
      ( "parse",
        [
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "comments" `Quick test_parse_comments;
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_parser_fuzz;
        ] );
      ("interp", [ Alcotest.test_case "basics" `Quick test_interp ]);
      ( "polarity",
        [ Alcotest.test_case "classification" `Quick test_polarity_cases ] );
      ( "smtlib",
        [
          Alcotest.test_case "scripts" `Quick test_smtlib_scripts;
          Alcotest.test_case "structure" `Quick test_smtlib_structure;
          Alcotest.test_case "suite round trip" `Quick
            test_smtlib_roundtrip_suite;
          QCheck_alcotest.to_alcotest prop_smtlib_roundtrip_random;
        ] );
      ( "digest",
        [
          Alcotest.test_case "distinguishes" `Quick test_digest_distinguishes;
          Alcotest.test_case "order independent" `Quick
            test_digest_order_independent;
          QCheck_alcotest.to_alcotest prop_digest_roundtrip;
        ] );
      ( "elim",
        [
          Alcotest.test_case "p constants" `Quick test_elim_p_consts;
          Alcotest.test_case "functional consistency" `Quick
            test_elim_functional_consistency;
          Alcotest.test_case "ackermann agreement" `Quick
            test_ackermann_agreement;
          QCheck_alcotest.to_alcotest
            (prop_elim_semantics "ITE elimination preserves evaluation"
               Elim.eliminate);
          QCheck_alcotest.to_alcotest
            (prop_elim_semantics "Ackermann elimination preserves evaluation"
               Elim.ackermannize);
        ] );
    ]
