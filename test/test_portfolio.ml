(* Tests for the multicore portfolio and the incremental SEP_THOLD sweep:
   the race must agree with every individual method, and a whole sweep must
   run on a single SAT solver instance with point-for-point the verdicts of
   the per-threshold fixed encodings. *)

module Ast = Sepsat_suf.Ast
module Suite = Sepsat_workloads.Suite
module Decide = Sepsat.Decide
module Portfolio = Sepsat.Portfolio
module Verdict = Sepsat_sep.Verdict
module Deadline = Sepsat_util.Deadline

let deadline () = Deadline.after 30.

let verdict_label = function
  | Verdict.Valid -> "valid"
  | Verdict.Invalid _ -> "invalid"
  | Verdict.Unknown why -> "unknown: " ^ why

let decide_on method_ (bench : Suite.benchmark) =
  let ctx = Ast.create_ctx () in
  let formula = bench.Suite.build ctx in
  Decide.decide ~method_ ~deadline:(deadline ()) ctx formula

(* Small representatives of both verdicts; the heavyweights live in the
   bench driver, not the test suite. *)
let agreement_benchmarks = [ "pipe.2"; "cache.3"; "drv.2" ]

let test_portfolio_agreement () =
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> Alcotest.fail (name ^ " missing")
      | Some bench ->
        let pf = decide_on Decide.Portfolio bench in
        (match pf.Decide.winner with
        | Some _ -> ()
        | None -> Alcotest.fail (name ^ ": portfolio reported no winner"));
        List.iter
          (fun m ->
            let single = decide_on m bench in
            match (pf.Decide.verdict, single.Decide.verdict) with
            | Verdict.Unknown _, _ | _, Verdict.Unknown _ ->
              Alcotest.failf "%s: unknown verdict (portfolio %s, single %s)"
                name
                (verdict_label pf.Decide.verdict)
                (verdict_label single.Decide.verdict)
            | pv, sv ->
              Alcotest.(check string)
                (Format.asprintf "%s: portfolio vs %a" name Decide.pp_method m)
                (verdict_label sv) (verdict_label pv))
          Decide.portfolio_members)
    agreement_benchmarks

let test_portfolio_invalid () =
  (* A buggy instance: the race must surface Invalid with a usable
     countermodel from whichever member wins. *)
  let bench =
    match Suite.find "cache.3" with
    | Some b -> b
    | None -> Alcotest.fail "cache.3 missing"
  in
  let ctx = Ast.create_ctx () in
  let formula = bench.Suite.build ~bug:true ctx in
  let r = Decide.decide ~method_:Decide.Portfolio ~deadline:(deadline ()) ctx formula in
  match r.Decide.verdict with
  | Verdict.Invalid _ ->
    Alcotest.(check bool) "winner recorded" true (r.Decide.winner <> None);
    Alcotest.(check bool) "witness extracted" true (r.Decide.witness <> None)
  | v -> Alcotest.failf "expected invalid, got %s" (verdict_label v)

let test_portfolio_facade () =
  match Suite.find "pipe.2" with
  | None -> Alcotest.fail "pipe.2 missing"
  | Some bench ->
    let ctx = Ast.create_ctx () in
    let formula = bench.Suite.build ctx in
    let r = Portfolio.decide ~deadline:(deadline ()) ctx formula in
    Alcotest.(check bool) "valid" true (r.Decide.verdict = Verdict.Valid);
    (match Portfolio.winner r with
    | Some m ->
      Alcotest.(check bool) "winner raced" true
        (List.mem m Portfolio.members)
    | None -> Alcotest.fail "no winner");
    Alcotest.(check int) "four members" 4 (List.length Portfolio.members)

(* -- Incremental sweep ----------------------------------------------------- *)

let sweep_benchmarks = [ "pipe.2"; "cache.3" ]

let test_sweep_single_solver () =
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> Alcotest.fail (name ^ " missing")
      | Some bench ->
        let ctx = Ast.create_ctx () in
        let formula = bench.Suite.build ctx in
        let sweep = Decide.decide_sweep ~deadline:(deadline ()) ctx formula in
        Alcotest.(check int)
          (name ^ ": one solver for the whole sweep")
          1 sweep.Decide.solver_creates;
        Alcotest.(check int)
          (name ^ ": one point per threshold")
          (List.length Decide.default_sweep_thresholds)
          (List.length sweep.Decide.points))
    sweep_benchmarks

let test_sweep_matches_fixed () =
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> Alcotest.fail (name ^ " missing")
      | Some bench ->
        let ctx = Ast.create_ctx () in
        let formula = bench.Suite.build ctx in
        let sweep = Decide.decide_sweep ~deadline:(deadline ()) ctx formula in
        List.iter
          (fun (p : Decide.sweep_point) ->
            let fixed =
              decide_on (Decide.Hybrid_at p.Decide.sw_threshold) bench
            in
            Alcotest.(check string)
              (Printf.sprintf "%s at threshold %d" name p.Decide.sw_threshold)
              (verdict_label fixed.Decide.verdict)
              (verdict_label p.Decide.sw_verdict))
          sweep.Decide.points)
    sweep_benchmarks

let test_sweep_buggy_invalid () =
  (* On a buggy instance every threshold must answer Invalid, and the decoded
     countermodel comes off the selector-aware decoder. *)
  let bench =
    match Suite.find "pipe.2" with
    | Some b -> b
    | None -> Alcotest.fail "pipe.2 missing"
  in
  let ctx = Ast.create_ctx () in
  let formula = bench.Suite.build ~bug:true ctx in
  let sweep = Decide.decide_sweep ~deadline:(deadline ()) ctx formula in
  Alcotest.(check int) "single solver" 1 sweep.Decide.solver_creates;
  List.iter
    (fun (p : Decide.sweep_point) ->
      match p.Decide.sw_verdict with
      | Verdict.Invalid _ -> ()
      | v ->
        Alcotest.failf "threshold %d: expected invalid, got %s"
          p.Decide.sw_threshold (verdict_label v))
    sweep.Decide.points

let () =
  Alcotest.run "portfolio"
    [
      ( "race",
        [
          Alcotest.test_case "agrees with members" `Slow
            test_portfolio_agreement;
          Alcotest.test_case "invalid with witness" `Slow
            test_portfolio_invalid;
          Alcotest.test_case "facade" `Quick test_portfolio_facade;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "single solver" `Quick test_sweep_single_solver;
          Alcotest.test_case "matches fixed thresholds" `Slow
            test_sweep_matches_fixed;
          Alcotest.test_case "buggy instance invalid" `Quick
            test_sweep_buggy_invalid;
        ] );
    ]
