(* Tests for the SatELite-style simplifier: equisatisfiability of the
   simplified database, totality of reconstructed models, DRUP soundness of
   elimination, and the freeze/restore rules the incremental API depends
   on. *)

module Solver = Sepsat_sat.Solver
module Lit = Sepsat_sat.Lit
module Proof = Sepsat_sat.Proof
module Drup_check = Sepsat_sat.Drup_check
module Deadline = Sepsat_util.Deadline
module Ast = Sepsat_suf.Ast
module Verdict = Sepsat_sep.Verdict
module Decide = Sepsat.Decide
module Suite = Sepsat_workloads.Suite
module Random_formula = Sepsat_workloads.Random_formula

let result_t =
  Alcotest.testable
    (fun ppf r ->
      Format.pp_print_string ppf
        (match r with
        | Solver.Sat -> "sat"
        | Solver.Unsat -> "unsat"
        | Solver.Unknown -> "unknown"))
    ( = )

let fresh_vars s n = Array.init n (fun _ -> Solver.new_var s)

(* -- Unit tests: each elimination rule, observable through stats ---------- *)

let test_subsumption () =
  let s = Solver.create () in
  let v = fresh_vars s 4 in
  Solver.add_clause s [ Lit.pos v.(0); Lit.pos v.(1) ];
  (* strictly subsumed by the clause above *)
  Solver.add_clause s [ Lit.pos v.(0); Lit.pos v.(1); Lit.pos v.(2) ];
  Solver.add_clause s [ Lit.pos v.(2); Lit.pos v.(3) ];
  Solver.simplify s;
  let st = Solver.stats s in
  Alcotest.(check bool) "subsumed something" true (st.Solver.simp_subsumed > 0);
  Alcotest.check result_t "still sat" Solver.Sat (Solver.solve s)

let test_self_subsumption () =
  let s = Solver.create () in
  let v = fresh_vars s 3 in
  (* (a or b) and (a or -b or c): resolving on b strengthens the second
     clause to (a or c) which then survives as the strengthened form *)
  Solver.add_clause s [ Lit.pos v.(0); Lit.pos v.(1) ];
  Solver.add_clause s [ Lit.pos v.(0); Lit.neg_of v.(1); Lit.pos v.(2) ];
  Solver.simplify s;
  let st = Solver.stats s in
  Alcotest.(check bool) "strengthened something" true
    (st.Solver.simp_strengthened > 0);
  Alcotest.check result_t "still sat" Solver.Sat (Solver.solve s)

let test_bve_eliminates_and_reconstructs () =
  let s = Solver.create () in
  let v = fresh_vars s 4 in
  let clauses =
    [
      [ Lit.pos v.(0); Lit.pos v.(1) ];
      [ Lit.neg_of v.(0); Lit.pos v.(2) ];
      [ Lit.neg_of v.(0); Lit.pos v.(3) ];
      [ Lit.pos v.(2); Lit.pos v.(3) ];
    ]
  in
  List.iter (Solver.add_clause s) clauses;
  Solver.simplify s;
  let st = Solver.stats s in
  Alcotest.(check bool) "eliminated a variable" true
    (st.Solver.simp_vars_eliminated > 0);
  Alcotest.check result_t "sat" Solver.Sat (Solver.solve s);
  (* the reconstructed model must satisfy every ORIGINAL clause, including
     those parked on the extension stack *)
  List.iter
    (fun c ->
      Alcotest.(check bool) "original clause satisfied" true
        (List.exists (fun l -> Solver.value s l) c))
    clauses

let test_blocked_clause () =
  let s = Solver.create () in
  let v = fresh_vars s 3 in
  (* (a or b) is blocked on a: its only resolution partner on -a is
     (-a or -b), and the resolvent (b or -b) is tautological *)
  let clauses =
    [
      [ Lit.pos v.(0); Lit.pos v.(1) ];
      [ Lit.neg_of v.(0); Lit.neg_of v.(1) ];
      [ Lit.pos v.(1); Lit.pos v.(2) ];
    ]
  in
  List.iter (Solver.add_clause s) clauses;
  Solver.simplify s;
  Alcotest.check result_t "sat" Solver.Sat (Solver.solve s);
  List.iter
    (fun c ->
      Alcotest.(check bool) "original clause satisfied" true
        (List.exists (fun l -> Solver.value s l) c))
    clauses

let test_frozen_never_eliminated () =
  let s = Solver.create () in
  let v = fresh_vars s 4 in
  (* v0 has exactly one positive and one negative occurrence — the easiest
     possible elimination — but freezing must protect it *)
  Solver.freeze s v.(0);
  Solver.add_clause s [ Lit.pos v.(0); Lit.pos v.(1) ];
  Solver.add_clause s [ Lit.neg_of v.(0); Lit.pos v.(2) ];
  Solver.add_clause s [ Lit.pos v.(3); Lit.pos v.(1) ];
  Solver.simplify s;
  Alcotest.(check bool) "frozen var survives" false (Solver.is_eliminated s v.(0));
  Alcotest.check result_t "sat" Solver.Sat (Solver.solve s)

let test_assumption_vars_not_eliminated () =
  let s = Solver.create () in
  Solver.set_simplify s true;
  let v = fresh_vars s 4 in
  Solver.add_clause s [ Lit.pos v.(0); Lit.pos v.(1) ];
  Solver.add_clause s [ Lit.neg_of v.(0); Lit.pos v.(2) ];
  Solver.add_clause s [ Lit.neg_of v.(1); Lit.pos v.(3) ];
  Alcotest.check result_t "sat under assumption" Solver.Sat
    (Solver.solve ~assumptions:[ Lit.pos v.(0) ] s);
  Alcotest.(check bool) "assumption var not eliminated" false
    (Solver.is_eliminated s v.(0));
  (* the assumption held in the model *)
  Alcotest.(check bool) "assumption honoured" true
    (Solver.value s (Lit.pos v.(0)))

let test_restore_on_add () =
  let s = Solver.create () in
  let v = fresh_vars s 3 in
  Solver.add_clause s [ Lit.pos v.(0); Lit.pos v.(1) ];
  Solver.add_clause s [ Lit.neg_of v.(0); Lit.pos v.(2) ];
  Solver.simplify s;
  Alcotest.(check bool) "v0 eliminated" true (Solver.is_eliminated s v.(0));
  (* a later increment mentions the eliminated variable: its defining
     clauses must come back before the new clause constrains it *)
  Solver.add_clause s [ Lit.neg_of v.(1) ];
  Solver.add_clause s [ Lit.pos v.(0) ];
  Alcotest.(check bool) "v0 restored" false (Solver.is_eliminated s v.(0));
  Alcotest.(check bool) "restore counted" true
    ((Solver.stats s).Solver.simp_restored > 0);
  Alcotest.check result_t "sat" Solver.Sat (Solver.solve s);
  (* v0 forces v2 through the restored clause (-v0 or v2) *)
  Alcotest.(check bool) "restored clause propagates" true
    (Solver.value s (Lit.pos v.(2)))

let test_warm_start_no_resurrection () =
  let s = Solver.create () in
  let v = fresh_vars s 3 in
  Solver.add_clause s [ Lit.pos v.(0); Lit.pos v.(1) ];
  Solver.add_clause s [ Lit.neg_of v.(0); Lit.pos v.(2) ];
  Solver.simplify s;
  Alcotest.(check bool) "v0 eliminated" true (Solver.is_eliminated s v.(0));
  (* seeding phases for every variable must not bring v0 back as a
     decision variable, and solving must still extend the model over it *)
  Solver.warm_start s [| true; false; true |];
  Alcotest.(check bool) "still eliminated" true (Solver.is_eliminated s v.(0));
  Alcotest.check result_t "sat" Solver.Sat (Solver.solve s);
  Alcotest.(check bool) "eliminated var has a model value" true
    (let m = Solver.model s in
     Array.length m > v.(0)
     && List.exists (fun l -> Solver.value s l)
          [ Lit.pos v.(0); Lit.pos v.(1) ])

let test_unsat_core_under_inprocessing () =
  let s = Solver.create () in
  Solver.set_simplify s true;
  let v = fresh_vars s 4 in
  Solver.add_clause s [ Lit.neg_of v.(0); Lit.neg_of v.(1) ];
  Solver.add_clause s [ Lit.pos v.(2); Lit.pos v.(3) ];
  let assumptions = [ Lit.pos v.(3); Lit.pos v.(0); Lit.pos v.(1) ] in
  Alcotest.check result_t "unsat" Solver.Unsat (Solver.solve ~assumptions s);
  let core = Solver.unsat_core s in
  Alcotest.(check bool) "core non-empty" true (core <> []);
  Alcotest.(check bool) "core within assumptions" true
    (List.for_all (fun l -> List.exists (Lit.equal l) assumptions) core);
  Alcotest.(check bool) "irrelevant assumption dropped" false
    (List.exists (Lit.equal (Lit.pos v.(3))) core);
  Alcotest.check result_t "core re-solves unsat" Solver.Unsat
    (Solver.solve ~assumptions:core s);
  Alcotest.check result_t "still sat alone" Solver.Sat (Solver.solve s)

(* -- DRUP soundness of every elimination rule ----------------------------- *)

let pigeonhole ~simplify ~proof holes =
  let s = Solver.create () in
  Solver.set_simplify s simplify;
  let p = if proof then Some (Solver.start_proof s) else None in
  let pigeons = holes + 1 in
  let v =
    Array.init pigeons (fun _ -> Array.init holes (fun _ -> Solver.new_var s))
  in
  for pg = 0 to pigeons - 1 do
    Solver.add_clause s (List.init holes (fun h -> Lit.pos v.(pg).(h)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Solver.add_clause s [ Lit.neg_of v.(p1).(h); Lit.neg_of v.(p2).(h) ]
      done
    done
  done;
  (s, p)

let test_proof_with_simplification () =
  let s, proof = pigeonhole ~simplify:true ~proof:true 5 in
  Alcotest.check result_t "unsat" Solver.Unsat (Solver.solve s);
  Alcotest.(check bool) "simplification actually ran" true
    ((Solver.stats s).Solver.simp_rounds > 0);
  match proof with
  | None -> assert false
  | Some p -> Alcotest.(check bool) "certified" true (Drup_check.certified p)

let test_proof_with_bve_and_subsumption () =
  (* an instance built so that subsumption, strengthening and BVE all fire
     before the UNSAT conclusion; the trace must still replay *)
  let s = Solver.create () in
  Solver.set_simplify s true;
  let proof = Solver.start_proof s in
  let v = fresh_vars s 6 in
  List.iter (Solver.add_clause s)
    [
      [ Lit.pos v.(0); Lit.pos v.(1) ];
      [ Lit.pos v.(0); Lit.pos v.(1); Lit.pos v.(2) ] (* subsumed *);
      [ Lit.pos v.(0); Lit.neg_of v.(1); Lit.pos v.(2) ] (* strengthens *);
      [ Lit.neg_of v.(0); Lit.pos v.(3) ] (* BVE candidate on v0 *);
      [ Lit.neg_of v.(2); Lit.pos v.(4) ];
      [ Lit.neg_of v.(3); Lit.pos v.(5) ];
      [ Lit.neg_of v.(4); Lit.neg_of v.(5) ];
      [ Lit.pos v.(2) ];
      [ Lit.pos v.(3) ];
    ];
  Alcotest.check result_t "unsat" Solver.Unsat (Solver.solve s);
  Alcotest.(check bool) "certified" true (Drup_check.certified proof)

(* -- Fig. 2 benchmarks, certified with simplification (the CI gate) ------- *)

let test_figure2_certified () =
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> Alcotest.fail ("unknown benchmark " ^ name)
      | Some b ->
        let ctx = Ast.create_ctx () in
        let f = b.Suite.build ctx in
        let r =
          Decide.decide ~deadline:(Deadline.after 60.) ~certify:true
            ~simplify:true ctx f
        in
        (match r.Decide.verdict with
        | Verdict.Valid -> ()
        | Verdict.Invalid _ -> Alcotest.fail (name ^ ": expected valid")
        | Verdict.Unknown why -> Alcotest.fail (name ^ ": unknown: " ^ why));
        Alcotest.(check (option bool))
          (name ^ " DRUP-certified")
          (Some true) r.Decide.certified)
    [ "pipe.3"; "cache.5"; "tv.1" ]

(* -- Sweep and warm-start product paths under inprocessing ---------------- *)

let test_sweep_verdicts_simplify_invariant () =
  List.iter
    (fun (name, bug) ->
      match Suite.find name with
      | None -> Alcotest.fail ("unknown benchmark " ^ name)
      | Some b ->
        let sweep_with simplify =
          let ctx = Ast.create_ctx () in
          let f = b.Suite.build ?bug ctx in
          let sw =
            Decide.decide_sweep ~deadline:(Deadline.after 60.) ~simplify ctx f
          in
          List.map
            (fun p ->
              ( p.Decide.sw_threshold,
                match p.Decide.sw_verdict with
                | Verdict.Valid -> "valid"
                | Verdict.Invalid _ -> "invalid"
                | Verdict.Unknown _ -> "unknown" ))
            sw.Decide.points
        in
        Alcotest.(check (list (pair int string)))
          (name ^ " sweep agrees on/off")
          (sweep_with false) (sweep_with true))
    [ ("drv.1", None); ("drv.1", Some true); ("cache.3", None) ]

(* -- Properties ----------------------------------------------------------- *)

let brute_force_sat nvars clauses =
  let rec loop assignment v =
    if v = nvars then
      List.for_all
        (List.exists (fun l ->
             if Lit.sign l then assignment.(Lit.var l)
             else not assignment.(Lit.var l)))
        clauses
    else begin
      assignment.(v) <- true;
      loop assignment (v + 1)
      ||
      (assignment.(v) <- false;
       loop assignment (v + 1))
    end
  in
  loop (Array.make nvars false) 0

let gen_cnf ~nvars ~nclauses ~width =
  QCheck2.Gen.(
    list_size (int_bound nclauses)
      (list_size (int_range 1 width)
         (map2 (fun v s -> Lit.make v s) (int_bound (nvars - 1)) bool)))

let solve_with ~simplify nvars clauses =
  let s = Solver.create () in
  Solver.set_simplify s simplify;
  for _ = 1 to nvars do
    ignore (Solver.new_var s)
  done;
  List.iter (Solver.add_clause s) clauses;
  (Solver.solve s, s)

(* Equisatisfiability: simplified and plain search agree, and a simplified
   Sat answer's reconstructed model satisfies every ORIGINAL clause. *)
let prop_equisat_random_cnf =
  QCheck2.Test.make ~name:"simplified solver agrees with plain" ~count:400
    (gen_cnf ~nvars:12 ~nclauses:55 ~width:3)
    (fun clauses ->
      let plain, _ = solve_with ~simplify:false 12 clauses in
      let simplified, s = solve_with ~simplify:true 12 clauses in
      plain = simplified
      &&
      match simplified with
      | Solver.Sat ->
        List.for_all (List.exists (fun l -> Solver.value s l)) clauses
      | Solver.Unsat | Solver.Unknown -> true)

(* A forced preprocessing pass (Solver.simplify) preserves the verdict even
   when [solve] would not have scheduled one. *)
let prop_forced_simplify_equisat =
  QCheck2.Test.make ~name:"forced simplify preserves verdict" ~count:300
    (gen_cnf ~nvars:10 ~nclauses:40 ~width:4)
    (fun clauses ->
      let s = Solver.create () in
      for _ = 1 to 10 do
        ignore (Solver.new_var s)
      done;
      List.iter (Solver.add_clause s) clauses;
      Solver.simplify s;
      match Solver.solve s with
      | Solver.Sat ->
        List.for_all (List.exists (fun l -> Solver.value s l)) clauses
      | Solver.Unsat -> not (brute_force_sat 10 clauses)
      | Solver.Unknown -> false)

(* Every UNSAT answer under simplification carries a certifiable DRUP
   trace — elimination must not punch holes in the proof. *)
let prop_unsat_simplified_certifies =
  QCheck2.Test.make ~name:"simplified unsat proofs certify" ~count:300
    (gen_cnf ~nvars:10 ~nclauses:55 ~width:3)
    (fun clauses ->
      let s = Solver.create () in
      Solver.set_simplify s true;
      let proof = Solver.start_proof s in
      for _ = 1 to 10 do
        ignore (Solver.new_var s)
      done;
      List.iter (Solver.add_clause s) clauses;
      Solver.simplify s;
      match Solver.solve s with
      | Solver.Unsat -> Drup_check.certified proof
      | Solver.Sat | Solver.Unknown -> true)

(* Incremental discipline: assumptions agree with the brute-force oracle
   across two solve calls on one simplifying solver, and assumption
   variables are never left eliminated. *)
let gen_cnf_with_assumptions ~nvars ~nclauses ~width ~nassum =
  QCheck2.Gen.(
    triple
      (gen_cnf ~nvars ~nclauses ~width)
      (list_size (int_bound nassum)
         (map2 (fun v s -> Lit.make v s) (int_bound (nvars - 1)) bool))
      (list_size (int_bound nassum)
         (map2 (fun v s -> Lit.make v s) (int_bound (nvars - 1)) bool)))

let prop_incremental_assumptions_simplified =
  QCheck2.Test.make
    ~name:"assumptions under inprocessing agree with oracle" ~count:300
    (gen_cnf_with_assumptions ~nvars:10 ~nclauses:40 ~width:3 ~nassum:6)
    (fun (clauses, assum1, assum2) ->
      let s = Solver.create () in
      Solver.set_simplify s true;
      for _ = 1 to 10 do
        ignore (Solver.new_var s)
      done;
      List.iter (Solver.add_clause s) clauses;
      let agrees assumptions =
        let reference =
          not
            (brute_force_sat 10
               (clauses @ List.map (fun l -> [ l ]) assumptions))
        in
        (match Solver.solve ~assumptions s with
        | Solver.Sat -> not reference
        | Solver.Unsat -> reference
        | Solver.Unknown -> false)
        && List.for_all
             (fun l -> not (Solver.is_eliminated s (Lit.var l)))
             assumptions
      in
      agrees assum1 && agrees assum2)

(* The full SUF pipeline: verdicts with and without simplification agree on
   the same random formula (the differential fuzzer's core check, kept here
   as a fast deterministic battery). *)
let prop_suf_verdicts_agree =
  QCheck2.Test.make ~name:"SUF verdicts agree simplify on/off" ~count:200
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let decide simplify =
        let ctx = Ast.create_ctx () in
        let f = Random_formula.generate Random_formula.small ctx ~seed in
        (Decide.decide ~deadline:(Deadline.after 10.) ~simplify ctx f)
          .Decide.verdict
      in
      match (decide false, decide true) with
      | Verdict.Valid, Verdict.Valid -> true
      | Verdict.Invalid _, Verdict.Invalid _ -> true
      | Verdict.Unknown _, _ | _, Verdict.Unknown _ -> true
      | _ -> false)

let () =
  Alcotest.run "simplify"
    [
      ( "rules",
        [
          Alcotest.test_case "subsumption" `Quick test_subsumption;
          Alcotest.test_case "self-subsumption" `Quick test_self_subsumption;
          Alcotest.test_case "bve + reconstruction" `Quick
            test_bve_eliminates_and_reconstructs;
          Alcotest.test_case "blocked clause" `Quick test_blocked_clause;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "frozen never eliminated" `Quick
            test_frozen_never_eliminated;
          Alcotest.test_case "assumption vars protected" `Quick
            test_assumption_vars_not_eliminated;
          Alcotest.test_case "restore on add" `Quick test_restore_on_add;
          Alcotest.test_case "warm start no resurrection" `Quick
            test_warm_start_no_resurrection;
          Alcotest.test_case "unsat core under inprocessing" `Quick
            test_unsat_core_under_inprocessing;
          QCheck_alcotest.to_alcotest prop_incremental_assumptions_simplified;
        ] );
      ( "proof",
        [
          Alcotest.test_case "pigeonhole certifies" `Slow
            test_proof_with_simplification;
          Alcotest.test_case "bve + subsumption certify" `Quick
            test_proof_with_bve_and_subsumption;
          QCheck_alcotest.to_alcotest prop_unsat_simplified_certifies;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "fig2 certified with simplification" `Slow
            test_figure2_certified;
          Alcotest.test_case "sweep verdicts invariant" `Slow
            test_sweep_verdicts_simplify_invariant;
          QCheck_alcotest.to_alcotest prop_suf_verdicts_agree;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_equisat_random_cnf;
          QCheck_alcotest.to_alcotest prop_forced_simplify_equisat;
        ] );
    ]
