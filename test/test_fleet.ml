(* Tests for the fleet subsystem: consistent-hash ring (distribution
   bounds, minimal remapping, affinity), poll wrapper, buffered line
   connections, the persistent disk cache (restart survival, torn-tail
   tolerance), the warm protocol op, client retry, and an end-to-end
   fleet — real router, real supervised backend processes — including a
   SIGKILL mid-load and a warm restart. *)

module Ring = Sepsat_fleet.Ring
module Poll = Sepsat_fleet.Poll
module Lineconn = Sepsat_fleet.Lineconn
module Disk_cache = Sepsat_fleet.Disk_cache
module Fleet = Sepsat_fleet.Fleet
module Json = Sepsat_serve.Json
module Protocol = Sepsat_serve.Protocol
module Engine = Sepsat_serve.Engine
module Session = Sepsat_serve.Session
module Ast = Sepsat_suf.Ast
module Parse = Sepsat_suf.Parse
module Prom = Sepsat_obs.Prom
module Metrics = Sepsat_obs.Metrics

let tmpdir prefix =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.int 1000000))
  in
  Unix.mkdir d 0o755;
  d

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)

let test_ring_basics () =
  let r = Ring.create [ 0; 1; 2 ] in
  Alcotest.(check (list int)) "members" [ 0; 1; 2 ] (Ring.members r);
  Alcotest.(check bool) "not empty" false (Ring.is_empty r);
  Alcotest.(check bool) "empty ring" true (Ring.is_empty (Ring.create []));
  Alcotest.(check (option int)) "empty lookup" None
    (Ring.lookup (Ring.create []) "k");
  (* lookup_order: head is the owner, and the whole order is a
     permutation of the members. *)
  let order = Ring.lookup_order r "some-key" in
  Alcotest.(check (option int)) "order head = lookup"
    (Ring.lookup r "some-key")
    (match order with [] -> None | b :: _ -> Some b);
  Alcotest.(check (list int)) "order is a permutation" [ 0; 1; 2 ]
    (List.sort compare order)

let test_ring_distribution () =
  let n = 5 in
  let keys = 20_000 in
  let r = Ring.create (List.init n Fun.id) in
  let counts = Array.make n 0 in
  for i = 0 to keys - 1 do
    match Ring.lookup r (Printf.sprintf "key-%d" i) with
    | Some b -> counts.(b) <- counts.(b) + 1
    | None -> Alcotest.fail "lookup on a populated ring"
  done;
  let fair = float_of_int keys /. float_of_int n in
  Array.iteri
    (fun b c ->
      let share = float_of_int c /. fair in
      if share < 0.5 || share > 1.8 then
        Alcotest.failf "backend %d owns %.0f%% of fair share" b
          (100. *. share))
    counts

let test_ring_remap_on_join () =
  let n = 4 in
  let keys = 10_000 in
  let before = Ring.create (List.init n Fun.id) in
  let after = Ring.add before n in
  let moved = ref 0 in
  for i = 0 to keys - 1 do
    let key = Printf.sprintf "remap-%d" i in
    let b = Ring.lookup before key and a = Ring.lookup after key in
    if b <> a then begin
      incr moved;
      (* Consistent hashing's defining property: a join only steals keys
         for the new member — nothing reshuffles between the old ones. *)
      Alcotest.(check (option int)) "moved keys go to the new member"
        (Some n) a
    end
  done;
  let fair = float_of_int keys /. float_of_int (n + 1) in
  if float_of_int !moved > 2.5 *. fair then
    Alcotest.failf "join remapped %d keys (fair share %.0f)" !moved fair

let test_ring_remap_on_leave () =
  let n = 5 in
  let keys = 10_000 in
  let before = Ring.create (List.init n Fun.id) in
  let after = Ring.remove before 2 in
  for i = 0 to keys - 1 do
    let key = Printf.sprintf "leave-%d" i in
    match Ring.lookup before key with
    | Some 2 -> ()  (* orphaned keys land wherever the arcs dictate *)
    | owner ->
      Alcotest.(check (option int)) "survivors keep their keys" owner
        (Ring.lookup after key)
  done

let prop_ring_affinity =
  QCheck2.Test.make ~name:"ring lookup is a pure function of membership"
    ~count:200
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 64))
    (fun key ->
      let a = Ring.create [ 0; 1; 2; 3 ] in
      let b = Ring.create [ 3; 2; 1; 0 ] in
      (* Same members (any order, independently built) — same owner:
         the property that gives backend caches their affinity. *)
      Ring.lookup a key = Ring.lookup b key
      && List.sort compare (Ring.lookup_order a key) = [ 0; 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Poll                                                                *)

let test_poll_readiness () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let p = Poll.create () in
  Poll.set p a ~read:true ~write:false;
  Alcotest.(check int) "one registration" 1 (Poll.registered p);
  Alcotest.(check int) "quiet socket: timeout" 0
    (List.length (Poll.wait p ~timeout_s:0.05));
  ignore (Unix.write_substring b "x" 0 1);
  (match Poll.wait p ~timeout_s:1.0 with
  | [ r ] ->
    Alcotest.(check bool) "right fd" true (r.Poll.r_fd = a);
    Alcotest.(check bool) "readable" true r.Poll.r_readable
  | l -> Alcotest.failf "expected one ready fd, got %d" (List.length l));
  Poll.set p a ~read:false ~write:true;
  (match Poll.wait p ~timeout_s:1.0 with
  | [ r ] -> Alcotest.(check bool) "writable" true r.Poll.r_writable
  | l -> Alcotest.failf "expected one writable fd, got %d" (List.length l));
  Poll.remove p a;
  Alcotest.(check int) "deregistered" 0 (Poll.registered p);
  Unix.close a;
  Unix.close b

(* ------------------------------------------------------------------ *)
(* Lineconn                                                            *)

let wr fd s = ignore (Unix.write_substring fd s 0 (String.length s))

let rd fd =
  let b = Bytes.create 4096 in
  match Unix.read fd b 0 4096 with
  | 0 -> ""
  | n -> Bytes.sub_string b 0 n

let test_lineconn_read_banking () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let c = Lineconn.create a in
  wr b "hel";
  (match Lineconn.on_readable c with
  | `Nothing -> ()
  | _ -> Alcotest.fail "partial line must bank, not deliver");
  wr b "lo\nwo";
  (match Lineconn.on_readable c with
  | `Lines [ "hello" ] -> ()
  | _ -> Alcotest.fail "completed line delivered, tail banked");
  wr b "rld\n\ntail\n";
  (match Lineconn.on_readable c with
  | `Lines [ "world"; "tail" ] -> ()  (* blank line filtered *)
  | _ -> Alcotest.fail "two lines, blank filtered");
  Unix.close b;
  (match Lineconn.on_readable c with
  | `Closed -> ()
  | _ -> Alcotest.fail "EOF with nothing pending is Closed");
  Lineconn.close c

let test_lineconn_eof_with_pending () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let c = Lineconn.create a in
  wr b "last\n";
  Unix.close b;
  (match Lineconn.on_readable c with
  | `Lines [ "last" ] -> ()
  | _ -> Alcotest.fail "final batch delivered before Closed");
  (match Lineconn.on_readable c with
  | `Closed -> ()
  | _ -> Alcotest.fail "Closed on the next call");
  Lineconn.close c

let test_lineconn_write_queue () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let c = Lineconn.create a in
  Alcotest.(check bool) "idle" false (Lineconn.wants_write c);
  Lineconn.enqueue c "ping";
  Lineconn.enqueue c "pong";
  Alcotest.(check bool) "queued" true (Lineconn.wants_write c);
  (match Lineconn.on_writable c with
  | `Ok -> ()
  | `Closed -> Alcotest.fail "healthy socket");
  Alcotest.(check bool) "drained" false (Lineconn.wants_write c);
  Alcotest.(check string) "newline-framed on the wire" "ping\npong\n" (rd b);
  Lineconn.close c;
  Unix.close b

(* ------------------------------------------------------------------ *)
(* Disk cache                                                          *)

let entry verdict ms =
  { Disk_cache.d_verdict = verdict; d_witness = None; d_solve_ms = ms }

let test_disk_cache_restart () =
  let dir = tmpdir "sepsat-disk" in
  let path = Filename.concat dir "verdicts.jsonl" in
  let c = Disk_cache.open_ ~path in
  Alcotest.(check int) "fresh cache empty" 0 (Disk_cache.size c);
  Disk_cache.put c "k1|hybrid" (entry Protocol.Valid 12.5);
  Disk_cache.put c "k2|hybrid"
    {
      Disk_cache.d_verdict = Protocol.Invalid;
      d_witness = Some "wdigest";
      d_solve_ms = 3.;
    };
  (* First write wins: a re-served verdict must not grow the log. *)
  Disk_cache.put c "k1|hybrid" (entry Protocol.Valid 99.);
  Alcotest.(check int) "two keys" 2 (Disk_cache.size c);
  Alcotest.(check int) "two appends" 2 (Disk_cache.stats c).Disk_cache.s_appended;
  Disk_cache.close c;
  let c2 = Disk_cache.open_ ~path in
  Alcotest.(check int) "reload finds both" 2 (Disk_cache.size c2);
  Alcotest.(check int) "loaded from disk" 2
    (Disk_cache.stats c2).Disk_cache.s_loaded;
  (match Disk_cache.find c2 "k1|hybrid" with
  | Some e ->
    Alcotest.(check bool) "verdict survives" true
      (e.Disk_cache.d_verdict = Protocol.Valid);
    Alcotest.(check (float 1e-9)) "first write won" 12.5 e.Disk_cache.d_solve_ms
  | None -> Alcotest.fail "k1 must survive the restart");
  (match Disk_cache.find c2 "k2|hybrid" with
  | Some e ->
    Alcotest.(check (option string)) "witness survives" (Some "wdigest")
      e.Disk_cache.d_witness
  | None -> Alcotest.fail "k2 must survive the restart");
  let st = Disk_cache.stats c2 in
  Alcotest.(check int) "hits counted" 2 st.Disk_cache.s_hits;
  Disk_cache.close c2;
  Sys.remove path;
  Unix.rmdir dir

let test_disk_cache_torn_tail () =
  let dir = tmpdir "sepsat-torn" in
  let path = Filename.concat dir "verdicts.jsonl" in
  let c = Disk_cache.open_ ~path in
  Disk_cache.put c "good|sd" (entry Protocol.Valid 1.);
  Disk_cache.put c "also|sd" (entry Protocol.Invalid 2.);
  Disk_cache.close c;
  (* Crash mid-append: the log ends in garbage and half a record. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "not json at all\n";
  output_string oc "{\"key\":\"torn|sd\",\"verdi";
  close_out oc;
  let c2 = Disk_cache.open_ ~path in
  Alcotest.(check int) "torn tail skipped, rest recovered" 2
    (Disk_cache.size c2);
  (* The cache stays writable after recovery. *)
  Disk_cache.put c2 "after|sd" (entry Protocol.Valid 3.);
  Disk_cache.close c2;
  let c3 = Disk_cache.open_ ~path in
  Alcotest.(check int) "append after torn tail persists" 3
    (Disk_cache.size c3);
  Disk_cache.close c3;
  Sys.remove path;
  Unix.rmdir dir

(* ------------------------------------------------------------------ *)
(* Warm op: protocol and engine                                        *)

let test_protocol_warm_roundtrip () =
  let w =
    Protocol.Warm
      {
        Protocol.wr_id = "w1";
        wr_key = "abc|hybrid";
        wr_verdict = Protocol.Invalid;
        wr_witness = Some "wd";
        wr_solve_ms = 7.25;
      }
  in
  (match Protocol.request_of_line (Protocol.request_to_line w) with
  | Ok (Protocol.Warm w') ->
    Alcotest.(check string) "id" "w1" w'.Protocol.wr_id;
    Alcotest.(check string) "key" "abc|hybrid" w'.Protocol.wr_key;
    Alcotest.(check bool) "verdict" true
      (w'.Protocol.wr_verdict = Protocol.Invalid);
    Alcotest.(check (option string)) "witness" (Some "wd")
      w'.Protocol.wr_witness;
    Alcotest.(check (float 1e-9)) "solve_ms" 7.25 w'.Protocol.wr_solve_ms
  | _ -> Alcotest.fail "warm request must round-trip");
  (match
     Protocol.request_of_line
       "{\"op\":\"warm\",\"id\":\"x\",\"key\":\"k\",\"verdict\":\"unknown\"}"
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "indecisive warm must be rejected");
  match Protocol.reply_of_line (Protocol.reply_to_line (Protocol.Warmed "w1")) with
  | Ok (Protocol.Warmed "w1") -> ()
  | _ -> Alcotest.fail "warmed reply must round-trip"

let test_engine_warm () =
  let eng = Engine.create ~workers:1 () in
  let ctx = Ast.create_ctx () in
  let f = Parse.formula ctx "(= x x)" in
  let key = Ast.digest f ^ "|hybrid" in
  Alcotest.(check bool) "decisive warm accepted" true
    (Engine.warm eng ~key ~verdict:Protocol.Valid ~witness:None ~solve_ms:123.);
  Alcotest.(check bool) "unknown warm rejected" false
    (Engine.warm eng ~key:"other" ~verdict:(Protocol.Unknown "budget")
       ~witness:None ~solve_ms:0.);
  (match Engine.solve ~block:true eng (Engine.job "(= x x)") with
  | Some (Ok o) ->
    Alcotest.(check bool) "warmed formula answers from the cache" true
      (o.Engine.o_origin = Protocol.Cache_hit);
    Alcotest.(check (float 1e-9)) "cost reported from the warm entry" 123.
      o.Engine.o_solve_ms
  | _ -> Alcotest.fail "expected a served verdict");
  Engine.shutdown eng

(* ------------------------------------------------------------------ *)
(* Prom const labels                                                   *)

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i =
    if i + n > m then false
    else String.sub hay i n = needle || go (i + 1)
  in
  go 0

let test_prom_const_labels () =
  let snapshot = [ ("x.count", Metrics.Counter 3); ("g", Metrics.Gauge 1.5) ] in
  let plain = Prom.render snapshot in
  Alcotest.(check bool) "default output is unlabelled" true
    (String.length plain > 0 && not (contains plain "{"));
  Prom.set_const_labels [ ("backend", "7") ];
  let labelled = Prom.render snapshot in
  Prom.set_const_labels [];
  Alcotest.(check bool) "counter labelled" true
    (contains labelled "x_count{backend=\"7\"} 3");
  Alcotest.(check bool) "gauge labelled" true
    (contains labelled "g{backend=\"7\"} 1.5");
  (* Back to default: byte-identical to the historical format. *)
  Alcotest.(check string) "reset restores the unlabelled format" plain
    (Prom.render snapshot)

(* ------------------------------------------------------------------ *)
(* Session retry                                                       *)

let test_session_retry_busy_then_ok () =
  let c2s_r, c2s_w = Unix.pipe () in
  let s2c_r, s2c_w = Unix.pipe () in
  let seen = Atomic.make 0 in
  let server =
    Thread.create
      (fun () ->
        let ic = Unix.in_channel_of_descr c2s_r in
        let oc = Unix.out_channel_of_descr s2c_w in
        (* Shed twice, then answer: the client's retry loop must absorb
           exactly the two busy replies. *)
        (try
           for _ = 1 to 3 do
             let line = input_line ic in
             ignore line;
             let n = 1 + Atomic.fetch_and_add seen 1 in
             let reply =
               if n <= 2 then Protocol.Busy "p" else Protocol.Pong "p"
             in
             output_string oc (Protocol.reply_to_line reply);
             output_char oc '\n';
             flush oc
           done
         with End_of_file | Sys_error _ -> ()))
      ()
  in
  let session =
    Session.of_channels
      (Unix.in_channel_of_descr s2c_r)
      (Unix.out_channel_of_descr c2s_w)
  in
  let _, reply =
    Session.with_retry ~attempts:5 ~base_s:0.005 ~cap_s:0.02 ~path:"/nonexistent"
      session
      (fun s -> Session.rpc s (Protocol.Ping "p"))
  in
  (match reply with
  | Protocol.Pong _ -> ()
  | r ->
    Alcotest.failf "expected pong after retries, got %s"
      (Protocol.reply_to_line r));
  Alcotest.(check int) "two sheds absorbed" 3 (Atomic.get seen);
  Thread.join server;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ c2s_r; c2s_w; s2c_r; s2c_w ]

let test_session_retry_exhaustion () =
  let c2s_r, c2s_w = Unix.pipe () in
  let s2c_r, s2c_w = Unix.pipe () in
  let server =
    Thread.create
      (fun () ->
        let ic = Unix.in_channel_of_descr c2s_r in
        let oc = Unix.out_channel_of_descr s2c_w in
        (try
           for _ = 1 to 2 do
             ignore (input_line ic);
             output_string oc (Protocol.reply_to_line (Protocol.Busy "p"));
             output_char oc '\n';
             flush oc
           done
         with End_of_file | Sys_error _ -> ()))
      ()
  in
  let session =
    Session.of_channels
      (Unix.in_channel_of_descr s2c_r)
      (Unix.out_channel_of_descr c2s_w)
  in
  let _, reply =
    Session.with_retry ~attempts:2 ~base_s:0.005 ~cap_s:0.01 ~path:"/nonexistent"
      session
      (fun s -> Session.rpc s (Protocol.Ping "p"))
  in
  (match reply with
  | Protocol.Busy _ -> ()  (* the budget ran out: last transient surfaces *)
  | r ->
    Alcotest.failf "expected busy after exhaustion, got %s"
      (Protocol.reply_to_line r));
  Thread.join server;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ c2s_r; c2s_w; s2c_r; s2c_w ]

(* ------------------------------------------------------------------ *)
(* End-to-end fleet: real router, real backend processes               *)

(* cwd differs between [dune runtest] (_build/default/test) and
   [dune exec] (the project root); resolve the binary either way and hand
   the supervisor an absolute path. *)
let sufdec_exe =
  let candidates =
    [ "../bin/sufdec.exe"; "_build/default/bin/sufdec.exe"; "bin/sufdec.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p ->
    if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p
  | None -> "../bin/sufdec.exe"

let rec wait_until ~tries ~sleep_s f =
  f ()
  || tries > 0
     && begin
          Unix.sleepf sleep_s;
          wait_until ~tries:(tries - 1) ~sleep_s f
        end

let fleet_stats session =
  match Session.stats session with
  | Some j -> j
  | None -> Alcotest.fail "fleet did not answer stats"

let backends_of j =
  match Json.member "backends" j with Some (Json.Arr l) -> l | _ -> []

let up_count j =
  List.length
    (List.filter
       (fun b -> Json.mem_bool "up" b = Some true)
       (backends_of j))

let solve_retrying ~path session text =
  let s, reply =
    Session.with_retry ~path !session (fun s -> Session.solve s text)
  in
  session := s;
  reply

let test_fleet_end_to_end () =
  if not (Sys.file_exists sufdec_exe) then
    Alcotest.fail "sufdec binary not built next to the tests";
  let dir = tmpdir "sepsat-fleet" in
  let socket = Filename.concat dir "fleet.sock" in
  let cache_dir = Filename.concat dir "cache" in
  let cfg =
    {
      (Fleet.default ~socket ~backends:2) with
      Fleet.f_cache_dir = Some cache_dir;
      f_workers = Some 1;
      f_timeout_s = 20.;
      f_exe = Some sufdec_exe;
    }
  in
  let fleet = Domain.spawn (fun () -> Fleet.run cfg) in
  let session = ref (Session.connect ~retries:100 socket) in
  (* Cold solve through the router (retry rides out backend startup).
     The reply must carry the router-minted trace: a fleet rid and the
     six-hop breakdown summing to the end-to-end time — the [reply] hop
     is the remainder by construction, so the sum check is really a
     check that no hop went negative or wildly over. *)
  (match solve_retrying ~path:socket session "(= x x)" with
  | Protocol.Ok_solve s -> (
    Alcotest.(check string) "valid through the fleet" "valid"
      (Protocol.verdict_to_string s.Protocol.sv_verdict);
    match s.Protocol.sv_trace with
    | None -> Alcotest.fail "fleet reply carries no trace"
    | Some tr ->
      Alcotest.(check bool) "router-minted fl- rid" true
        (String.length tr.Protocol.rt_rid > 3
        && String.sub tr.Protocol.rt_rid 0 3 = "fl-");
      Alcotest.(check (list string)) "six hops in causal order"
        [
          "router.parse"; "router.queue"; "wire"; "shard.queue";
          "shard.solve"; "reply";
        ]
        (List.map fst tr.Protocol.rt_hops);
      List.iter
        (fun (name, ms) ->
          Alcotest.(check bool) (name ^ " non-negative") true (ms >= 0.))
        tr.Protocol.rt_hops;
      let sum = List.fold_left (fun a (_, ms) -> a +. ms) 0. tr.Protocol.rt_hops in
      Alcotest.(check bool) "hops sum to the end-to-end time" true
        (Float.abs (sum -. s.Protocol.sv_time_ms)
        <= Float.max 0.05 (0.01 *. s.Protocol.sv_time_ms));
      Alcotest.(check bool) "served by a shard, not the cache" true
        (tr.Protocol.rt_served_by <> "cache"))
  | r ->
    Alcotest.failf "expected a verdict, got %s" (Protocol.reply_to_line r));
  (* Same formula again: the persistent tier answers at the router, and
     the trace says so — served_by "cache", with the lookup as a hop. *)
  (match solve_retrying ~path:socket session "(= x x)" with
  | Protocol.Ok_solve s -> (
    Alcotest.(check bool) "repeat served from cache" true
      (s.Protocol.sv_origin = Protocol.Cache_hit);
    match s.Protocol.sv_trace with
    | None -> Alcotest.fail "cache-hit reply carries no trace"
    | Some tr ->
      Alcotest.(check string) "cache hit attributed" "cache"
        tr.Protocol.rt_served_by;
      Alcotest.(check bool) "cache lookup is its own hop" true
        (List.mem_assoc "router.cache" tr.Protocol.rt_hops))
  | r ->
    Alcotest.failf "expected a cached verdict, got %s"
      (Protocol.reply_to_line r));
  (* The fleet dump nests one flight document per process: the router's
     own ring plus each backend's, the raw material of [sufdec trace]. *)
  (match Session.dump !session with
  | None -> Alcotest.fail "fleet did not answer dump"
  | Some body -> (
    match Json.parse body with
    | Error e -> Alcotest.failf "fleet dump does not parse: %s" e
    | Ok j ->
      Alcotest.(check (option string)) "fleet dump schema"
        (Some "sepsat-fleet-dump-1") (Json.mem_str "schema" j);
      Alcotest.(check bool) "router flight document present" true
        (match Json.member "router" j with
        | Some (Json.Obj _) -> true
        | _ -> false);
      let parts =
        match Json.member "backends" j with
        | Some (Json.Arr l) -> l
        | _ -> []
      in
      Alcotest.(check int) "one flight part per backend" 2
        (List.length parts);
      (* the router's hop spans and the shard's serve spans share the
         fleet rid — the property [sufdec trace] assembly rests on *)
      let rids_of flight =
        match Json.member "records" flight with
        | Some (Json.Arr rs) ->
          List.filter_map (Json.mem_str "rid") rs
          |> List.filter (fun r ->
                 String.length r > 3 && String.sub r 0 3 = "fl-")
        | _ -> []
      in
      let router_rids =
        match Json.member "router" j with
        | Some f -> rids_of f
        | None -> []
      in
      let backend_rids =
        List.concat_map
          (fun p ->
            match Json.member "flight" p with
            | Some f -> rids_of f
            | None -> [])
          parts
      in
      Alcotest.(check bool) "a fleet rid appears on both sides" true
        (List.exists (fun r -> List.mem r backend_rids) router_rids)));
  (* Invalid formula, exercising witness plumbing through the router. *)
  (match solve_retrying ~path:socket session "(= a b)" with
  | Protocol.Ok_solve s ->
    Alcotest.(check string) "invalid through the fleet" "invalid"
      (Protocol.verdict_to_string s.Protocol.sv_verdict)
  | r ->
    Alcotest.failf "expected invalid, got %s" (Protocol.reply_to_line r));
  (* Both backends live, and the stats are the merged fleet shape. *)
  Alcotest.(check bool) "both backends up" true
    (wait_until ~tries:100 ~sleep_s:0.1 (fun () ->
         up_count (fleet_stats !session) = 2));
  let j = fleet_stats !session in
  Alcotest.(check bool) "fleet marker" true
    (Json.mem_bool "fleet" j = Some true);
  Alcotest.(check bool) "disk cache stats present" true
    (Json.member "disk_cache" j <> None && Json.member "disk_cache" j <> Some Json.Null);
  (* Merged metrics: per-backend series, metadata deduplicated. *)
  (match Session.metrics !session with
  | None -> Alcotest.fail "fleet did not answer metrics"
  | Some body ->
    let count needle =
      let n = String.length needle and m = String.length body in
      let rec go i acc =
        if i + n > m then acc
        else if String.sub body i n = needle then go (i + 1) (acc + 1)
        else go (i + 1) acc
      in
      go 0 0
    in
    Alcotest.(check bool) "backend 0 series present" true
      (count "backend=\"0\"" > 0);
    Alcotest.(check bool) "backend 1 series present" true
      (count "backend=\"1\"" > 0);
    Alcotest.(check int) "TYPE line deduplicated" 1
      (count "# TYPE serve_requests counter"));
  (* SIGKILL one backend; the fleet must keep answering correctly and
     bring a replacement up. *)
  let victim =
    match backends_of (fleet_stats !session) with
    | b :: _ -> (
      match Json.member "pid" b with
      | Some (Json.Num p) -> int_of_float p
      | _ -> Alcotest.fail "backend pid missing from stats")
    | [] -> Alcotest.fail "no backends in stats"
  in
  Unix.kill victim Sys.sigkill;
  for i = 0 to 9 do
    match
      solve_retrying ~path:socket session (Printf.sprintf "(= v%d v%d)" i i)
    with
    | Protocol.Ok_solve s ->
      Alcotest.(check string)
        (Printf.sprintf "verdict %d during recovery" i)
        "valid"
        (Protocol.verdict_to_string s.Protocol.sv_verdict)
    | r ->
      Alcotest.failf "lost request %d during recovery: %s" i
        (Protocol.reply_to_line r)
  done;
  Alcotest.(check bool) "killed backend restarted" true
    (wait_until ~tries:200 ~sleep_s:0.1 (fun () ->
         let j = fleet_stats !session in
         up_count j = 2
         && List.exists
              (fun b ->
                match Json.member "spawns" b with
                | Some (Json.Num s) -> s >= 2.
                | _ -> false)
              (backends_of j)));
  (* Graceful shutdown: drain, propagate, reap, bye. *)
  Session.shutdown !session;
  Session.close !session;
  Domain.join fleet;
  Alcotest.(check bool) "socket removed on shutdown" false
    (Sys.file_exists socket);
  (* Restart the fleet on the same cache dir: verdicts survive. *)
  let fleet2 = Domain.spawn (fun () -> Fleet.run cfg) in
  let session2 = ref (Session.connect ~retries:100 socket) in
  (match solve_retrying ~path:socket session2 "(= x x)" with
  | Protocol.Ok_solve s ->
    Alcotest.(check bool) "verdict survived the restart" true
      (s.Protocol.sv_origin = Protocol.Cache_hit);
    Alcotest.(check string) "and is still valid" "valid"
      (Protocol.verdict_to_string s.Protocol.sv_verdict)
  | r ->
    Alcotest.failf "expected a cached verdict after restart, got %s"
      (Protocol.reply_to_line r));
  let j2 = fleet_stats !session2 in
  (match Json.member "disk_cache" j2 with
  | Some d ->
    let num k = Option.value ~default:0. (Json.mem_num k d) in
    Alcotest.(check bool) "cache loaded from disk" true (num "loaded" >= 1.);
    Alcotest.(check bool) "hit counter > 0 after restart" true
      (num "hits" >= 1.)
  | None -> Alcotest.fail "disk cache stats missing after restart");
  Session.shutdown !session2;
  Session.close !session2;
  Domain.join fleet2

let () =
  Random.self_init ();
  Alcotest.run "fleet"
    [
      ( "ring",
        [
          Alcotest.test_case "basics" `Quick test_ring_basics;
          Alcotest.test_case "distribution bounds" `Quick
            test_ring_distribution;
          Alcotest.test_case "minimal remapping on join" `Quick
            test_ring_remap_on_join;
          Alcotest.test_case "survivors keep keys on leave" `Quick
            test_ring_remap_on_leave;
          QCheck_alcotest.to_alcotest prop_ring_affinity;
        ] );
      ( "poll",
        [ Alcotest.test_case "readiness and interest" `Quick test_poll_readiness ] );
      ( "lineconn",
        [
          Alcotest.test_case "read banking" `Quick test_lineconn_read_banking;
          Alcotest.test_case "eof with pending batch" `Quick
            test_lineconn_eof_with_pending;
          Alcotest.test_case "write queue" `Quick test_lineconn_write_queue;
        ] );
      ( "disk cache",
        [
          Alcotest.test_case "survives restart" `Quick test_disk_cache_restart;
          Alcotest.test_case "tolerates a torn tail" `Quick
            test_disk_cache_torn_tail;
        ] );
      ( "warm",
        [
          Alcotest.test_case "protocol roundtrip" `Quick
            test_protocol_warm_roundtrip;
          Alcotest.test_case "engine cache seeding" `Quick test_engine_warm;
        ] );
      ( "telemetry",
        [ Alcotest.test_case "const labels" `Quick test_prom_const_labels ] );
      ( "retry",
        [
          Alcotest.test_case "busy then ok" `Quick
            test_session_retry_busy_then_ok;
          Alcotest.test_case "budget exhaustion" `Quick
            test_session_retry_exhaustion;
        ] );
      ( "fleet",
        [ Alcotest.test_case "end to end" `Quick test_fleet_end_to_end ] );
    ]
