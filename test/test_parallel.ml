(* Tests for structure-parallel solving (lib/core/parallel, lib/sep/component):
   the component split's independence, COMPONENTS/CUBE agreement with the
   sequential pipeline on random formulas and on the suite, merged
   countermodels that certify, the UNSAT short-circuit, and graceful
   degeneration on formulas that refuse to split. *)

module Ast = Sepsat_suf.Ast
module Elim = Sepsat_suf.Elim
module Component = Sepsat_sep.Component
module Verdict = Sepsat_sep.Verdict
module Deadline = Sepsat_util.Deadline
module Decide = Sepsat.Decide
module Parallel = Sepsat.Parallel
module Witness = Sepsat.Witness
module Certify = Sepsat_check.Certify
module Hybrid = Sepsat_encode.Hybrid
module Suite = Sepsat_workloads.Suite
module Random_formula = Sepsat_workloads.Random_formula

let deadline () = Deadline.after_wall 60.

let verdict_label = function
  | Verdict.Valid -> "valid"
  | Verdict.Invalid _ -> "invalid"
  | Verdict.Unknown why -> "unknown: " ^ why

let bench name =
  match Suite.find name with
  | Some b -> b
  | None -> Alcotest.fail (name ^ " missing")

let decide_bench ?bug ?(certify = false) method_ name =
  let ctx = Ast.create_ctx () in
  let formula = (bench name).Suite.build ?bug ctx in
  (formula, Decide.decide ~method_ ~deadline:(deadline ()) ~certify ctx formula)

(* -- The split itself ------------------------------------------------------ *)

let split_of name =
  let ctx = Ast.create_ctx () in
  let f = (bench name).Suite.build ctx in
  let elim = Elim.eliminate ctx f in
  Component.split ctx ~p_consts:elim.Elim.p_consts elim.Elim.formula

let test_split_batch_independent () =
  let split = split_of "batch.0" in
  Alcotest.(check int) "four units, four components" 4
    (List.length split.Component.components);
  (* components share no classes *)
  let all_ids =
    List.concat_map
      (fun (c : Component.component) -> c.Component.class_ids)
      split.Component.components
  in
  Alcotest.(check int) "class sets disjoint"
    (List.length all_ids)
    (List.length (List.sort_uniq compare all_ids));
  (* every conjunct of the negation landed somewhere *)
  let placed =
    List.fold_left
      (fun acc (c : Component.component) -> acc + c.Component.n_conjuncts)
      0 split.Component.components
  in
  Alcotest.(check int) "no conjunct dropped" split.Component.n_conjuncts placed

let test_split_connected_is_single () =
  List.iter
    (fun name ->
      let split = split_of name in
      Alcotest.(check int)
        (name ^ ": connected suite formula stays whole")
        1
        (List.length split.Component.components))
    [ "lsu.0"; "cache.2"; "pipe.1" ]

(* -- COMPONENTS ------------------------------------------------------------ *)

let test_components_agreement () =
  List.iter
    (fun name ->
      let _, mono = decide_bench Decide.Hybrid_default name in
      let _, comp = decide_bench Decide.Components name in
      Alcotest.(check string) (name ^ ": components vs hybrid")
        (verdict_label mono.Decide.verdict)
        (verdict_label comp.Decide.verdict))
    [ "pipe.2"; "cache.3"; "tv.1"; "batch.0"; "batch.2" ]

let test_components_merged_witness () =
  (* A healthy batch is invalid; the countermodel merges every unit's
     scenario and must falsify the whole formula under Certify. *)
  let f, r = decide_bench Decide.Components "batch.0" in
  match r.Decide.verdict with
  | Verdict.Invalid _ -> (
    Alcotest.(check bool) "witness surfaced" true (r.Decide.witness <> None);
    match Certify.check f r with
    | Ok (Certify.Invalid_witnessed w) ->
      Alcotest.(check bool) "merged witness falsifies" true
        (Witness.falsifies w f)
    | Ok o -> Alcotest.failf "expected witnessed invalid, got %a" Certify.pp_outcome o
    | Error e -> Alcotest.failf "certification error: %a" Certify.pp_error e)
  | v -> Alcotest.failf "expected invalid, got %s" (verdict_label v)

let test_components_shortcircuit () =
  (* The bug variant blocks one unit: a single UNSAT component decides the
     whole batch, and its DRUP proof certifies the verdict. *)
  let f, r = decide_bench ~bug:true ~certify:true Decide.Components "batch.0" in
  (match r.Decide.verdict with
  | Verdict.Valid -> ()
  | v -> Alcotest.failf "expected valid, got %s" (verdict_label v));
  Alcotest.(check (option bool)) "winning proof replayed" (Some true)
    r.Decide.certified;
  match Certify.check ~expect_proof:true f r with
  | Ok Certify.Valid_certified -> ()
  | Ok o -> Alcotest.failf "expected certified valid, got %a" Certify.pp_outcome o
  | Error e -> Alcotest.failf "certification error: %a" Certify.pp_error e

let test_components_degenerate () =
  (* Single-component formulas take the unchanged sequential path: eager
     encode stats are present and the phase profile is the eager one plus
     the split probe. *)
  let _, r = decide_bench ~certify:true Decide.Components "lsu.0" in
  Alcotest.(check string) "still valid" "valid" (verdict_label r.Decide.verdict);
  Alcotest.(check bool) "eager encode stats" true (r.Decide.encode_stats <> None);
  Alcotest.(check bool) "split phase recorded" true
    (List.mem_assoc "split" r.Decide.phase_times);
  Alcotest.(check bool) "eager sat phase" true
    (List.mem_assoc "sat" r.Decide.phase_times);
  (* ... while a real split reports the pooled solve phase instead *)
  let _, r' = decide_bench Decide.Components "batch.0" in
  Alcotest.(check bool) "pooled: no eager stats" true
    (r'.Decide.encode_stats = None);
  Alcotest.(check bool) "pooled solve phase" true
    (List.mem_assoc "solve" r'.Decide.phase_times)

(* -- CUBE ------------------------------------------------------------------ *)

let test_cube_agreement () =
  List.iter
    (fun name ->
      let _, mono = decide_bench Decide.Hybrid_default name in
      let _, cube = decide_bench Decide.Cube_and_conquer name in
      Alcotest.(check string) (name ^ ": cube vs hybrid")
        (verdict_label mono.Decide.verdict)
        (verdict_label cube.Decide.verdict);
      Alcotest.(check (option bool)) (name ^ ": cube never certifies") None
        cube.Decide.certified;
      Alcotest.(check bool) (name ^ ": probe phase recorded") true
        (List.mem_assoc "probe" cube.Decide.phase_times))
    [ "pipe.2"; "cache.3"; "lsu.1"; "batch.0" ]

let solve_cubes_on ?bug ~probe_budget name =
  let ctx = Ast.create_ctx () in
  let f = (bench name).Suite.build ?bug ctx in
  let elim = Elim.eliminate ctx f in
  Parallel.solve_cubes ~probe_budget ~config:Hybrid.default
    ~deadline:(deadline ()) ctx ~p_consts:elim.Elim.p_consts
    elim.Elim.formula

let test_cube_fanout_valid () =
  (* A starved probe forces the actual cube fan-out; every sign cube over
     the split variables is unsatisfiable, which is validity. *)
  let r = solve_cubes_on ~probe_budget:1 "pipe.3" in
  (match r.Parallel.qr_verdict with
  | Verdict.Valid -> ()
  | v -> Alcotest.failf "expected valid, got %s" (verdict_label v));
  Alcotest.(check bool) "cubes actually ran" true (r.Parallel.qr_n_cubes > 0)

let test_cube_fanout_invalid () =
  let r = solve_cubes_on ~bug:true ~probe_budget:1 "cache.3" in
  match r.Parallel.qr_verdict with
  | Verdict.Invalid _ ->
    Alcotest.(check bool) "model decoded" true
      (r.Parallel.qr_assignment <> None)
  | v -> Alcotest.failf "expected invalid, got %s" (verdict_label v)

(* -- Random cross-check ---------------------------------------------------- *)

let prop_parallel_agreement =
  QCheck2.Test.make
    ~name:"COMPONENTS and CUBE match the sequential verdict" ~count:200
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let ctx = Ast.create_ctx () in
      let f = Random_formula.generate Random_formula.small ctx ~seed in
      let verdict m =
        let r = Decide.decide ~method_:m ~deadline:(deadline ()) ctx f in
        match r.Decide.verdict with
        | Verdict.Unknown why ->
          Alcotest.failf "%a unknown (%s) on %s" Decide.pp_method m why
            (Ast.to_string f)
        | v -> verdict_label v
      in
      let reference = verdict Decide.Hybrid_default in
      reference = verdict Decide.Components
      && reference = verdict Decide.Cube_and_conquer)

let () =
  Alcotest.run "parallel"
    [
      ( "split",
        [
          Alcotest.test_case "batch splits independent" `Quick
            test_split_batch_independent;
          Alcotest.test_case "connected stays single" `Quick
            test_split_connected_is_single;
        ] );
      ( "components",
        [
          Alcotest.test_case "agreement" `Slow test_components_agreement;
          Alcotest.test_case "merged witness" `Quick
            test_components_merged_witness;
          Alcotest.test_case "unsat short-circuit" `Quick
            test_components_shortcircuit;
          Alcotest.test_case "degeneration" `Quick test_components_degenerate;
        ] );
      ( "cube",
        [
          Alcotest.test_case "agreement" `Slow test_cube_agreement;
          Alcotest.test_case "fan-out valid" `Quick test_cube_fanout_valid;
          Alcotest.test_case "fan-out invalid" `Quick test_cube_fanout_invalid;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_parallel_agreement ] );
    ]
