(* Tests of the flight recorder: ring discipline, tear-free concurrent
   recording, JSON dumps (on demand, to file, on signal) and the ambient
   rid default.

   Flight state is process-global, so every test starts from [fresh ()]. *)

module Flight = Sepsat_obs.Flight
module Trace_ctx = Sepsat_obs.Trace_ctx
module Obs = Sepsat_obs.Obs
module Log = Sepsat_obs.Log
module Json = Sepsat_serve.Json

let fresh ?capacity () =
  Flight.disable ();
  Flight.reset ();
  Obs.disable ();
  Obs.reset ();
  Flight.enable ?capacity ()

let test_disabled_no_records () =
  Flight.disable ();
  Flight.reset ();
  Flight.record Flight.Event "dead";
  Alcotest.(check int) "no records" 0 (List.length (Flight.records ()));
  Alcotest.(check bool) "still disabled" false (Flight.enabled ())

let test_record_fields () =
  fresh ();
  Flight.record ~rid:"rq-1" ~dur_ms:2.5 ~data:[ ("k", "v") ] Flight.Span
    "solve";
  Trace_ctx.with_rid "rq-ambient" (fun () ->
      Flight.record Flight.Event "mark");
  match Flight.records () with
  | [ a; b ] ->
    Alcotest.(check string) "name" "solve" a.Flight.fr_name;
    Alcotest.(check string) "explicit rid" "rq-1" a.Flight.fr_rid;
    Alcotest.(check (float 1e-9)) "duration" 2.5 a.Flight.fr_dur_ms;
    Alcotest.(check (list (pair string string))) "payload" [ ("k", "v") ]
      a.Flight.fr_data;
    Alcotest.(check bool) "kind" true (a.Flight.fr_kind = Flight.Span);
    Alcotest.(check string) "ambient rid is the default" "rq-ambient"
      b.Flight.fr_rid;
    Alcotest.(check bool) "timestamps ordered" true
      (a.Flight.fr_ts <= b.Flight.fr_ts)
  | rs -> Alcotest.fail (Printf.sprintf "expected 2 records, got %d"
                           (List.length rs))

let test_ring_overwrite_keeps_newest () =
  fresh ~capacity:16 ();
  for i = 0 to 99 do
    Flight.record ~data:[ ("i", string_of_int i) ] Flight.Event "tick"
  done;
  let rs = Flight.records () in
  Alcotest.(check int) "ring keeps capacity" 16 (List.length rs);
  Alcotest.(check int) "dropped counted" 84 (Flight.dropped ());
  (* Timestamps of back-to-back records can collide at clock resolution,
     so assert the surviving *set*, not the sort order. *)
  let values =
    List.map (fun r -> int_of_string (List.assoc "i" r.Flight.fr_data)) rs
    |> List.sort compare
  in
  Alcotest.(check (list int)) "exactly the newest survive"
    (List.init 16 (fun i -> 84 + i))
    values

(* Obs spans double-record into the flight ring even with the span
   collector off — this is what makes a default server debuggable. The
   span record carries the request rid and the span path. *)
let test_spans_feed_flight () =
  fresh ();
  Alcotest.(check bool) "obs collector stays off" false (Obs.enabled ());
  Trace_ctx.with_rid "rq-f" (fun () ->
      Obs.span "outer" (fun () -> Obs.span "inner" (fun () -> ())));
  let find name =
    List.find (fun r -> r.Flight.fr_name = name) (Flight.records ())
  in
  let inner = find "inner" and outer = find "outer" in
  Alcotest.(check string) "rid tagged" "rq-f" inner.Flight.fr_rid;
  Alcotest.(check string) "path shows nesting" "outer/inner"
    (List.assoc "path" inner.Flight.fr_data);
  Alcotest.(check bool) "outer path omitted when trivial" true
    (not (List.mem_assoc "path" outer.Flight.fr_data));
  Alcotest.(check bool) "durations non-negative" true
    (inner.Flight.fr_dur_ms >= 0. && outer.Flight.fr_dur_ms >= 0.);
  Alcotest.(check int) "no obs events recorded" 0
    (List.length (Obs.events ()))

(* Log events tee into the ring even without a log sink enabled. *)
let test_logs_feed_flight () =
  fresh ();
  Log.event "serve.request" [ ("rid", Log.S "rq-l"); ("n", Log.I 3) ];
  match
    List.filter (fun r -> r.Flight.fr_kind = Flight.Log) (Flight.records ())
  with
  | [ r ] ->
    Alcotest.(check string) "event name" "serve.request" r.Flight.fr_name;
    Alcotest.(check string) "rid lifted from fields" "rq-l" r.Flight.fr_rid;
    Alcotest.(check string) "fields stringified" "3"
      (List.assoc "n" r.Flight.fr_data)
  | rs ->
    Alcotest.fail (Printf.sprintf "expected 1 log record, got %d"
                     (List.length rs))

let parse_dump text =
  match Json.parse text with
  | Ok j -> j
  | Error e -> Alcotest.fail ("dump does not parse: " ^ e)

let dump_records j =
  match Json.member "records" j with
  | Some (Json.Arr rs) -> rs
  | _ -> Alcotest.fail "dump has no records array"

let test_dump_json_roundtrip () =
  fresh ();
  Flight.record ~rid:"rq-\"quoted\"\n" ~dur_ms:1.25
    ~data:[ ("edge", "tab\tand\\backslash") ]
    Flight.Span "weird";
  let j = parse_dump (Flight.to_json ()) in
  Alcotest.(check (option string)) "schema" (Some "sepsat-flight-1")
    (Json.mem_str "schema" j);
  Alcotest.(check bool) "pid present" true (Json.mem_int "pid" j <> None);
  (match dump_records j with
  | [ r ] ->
    Alcotest.(check (option string)) "escaped rid survives"
      (Some "rq-\"quoted\"\n") (Json.mem_str "rid" r);
    Alcotest.(check (option string)) "escaped payload survives"
      (Some "tab\tand\\backslash")
      (Option.bind (Json.member "data" r) (Json.mem_str "edge"))
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 record, got %d"
                           (List.length rs)))

let test_write_and_dump_files () =
  fresh ();
  let dir = Filename.temp_file "flight" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Flight.record ~rid:"rq-w" Flight.Event "written";
  let path = Filename.concat dir "out.json" in
  Flight.write path;
  let read_file p =
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Alcotest.(check bool) "written file parses" true
    (dump_records (parse_dump (read_file path)) <> []);
  Flight.set_dump_dir dir;
  let dumped = Flight.dump ~reason:"unit test/..x" () in
  Alcotest.(check bool) "dump lands in the dump dir" true
    (Filename.dirname dumped = dir);
  Alcotest.(check bool) "reason sanitized into the name" true
    (String.length (Filename.basename dumped) > 0
    && not (String.contains (Filename.basename dumped) '/')
    && not (String.contains (Filename.basename dumped) ' '));
  Alcotest.(check bool) "dump file parses" true
    (dump_records (parse_dump (read_file dumped)) <> []);
  let again = Flight.dump ~reason:"unit test/..x" () in
  Alcotest.(check bool) "sequence numbers keep dumps distinct" true
    (again <> dumped)

let test_signal_dump () =
  fresh ();
  let dir = Filename.temp_file "flightsig" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Flight.set_dump_dir dir;
  Flight.record ~rid:"rq-sig" Flight.Event "before-signal";
  Flight.install_signal_dump ();
  Unix.kill (Unix.getpid ()) Sys.sigusr1;
  (* Signals are delivered at safe points; poll briefly for the file. *)
  let rec wait tries =
    let files = Sys.readdir dir in
    if Array.length files > 0 then files
    else if tries = 0 then files
    else begin
      Unix.sleepf 0.05;
      wait (tries - 1)
    end
  in
  let files = wait 100 in
  Alcotest.(check bool) "signal produced a dump" true
    (Array.length files > 0);
  let j =
    let ic = open_in_bin (Filename.concat dir files.(0)) in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        parse_dump (really_input_string ic (in_channel_length ic)))
  in
  Alcotest.(check bool) "dump holds the pre-signal record" true
    (List.exists
       (fun r -> Json.mem_str "name" r = Some "before-signal")
       (dump_records j))

(* -- Clock anchors and cross-process assembly ------------------------------ *)

let test_records_carry_mono () =
  fresh ();
  Flight.record ~rid:"rq-m" Flight.Event "stamp";
  (match Flight.records () with
  | [ r ] ->
    (* fr_ts and fr_mono come from one [Clock.pair] reading: the clamp
       only ever pushes mono forward, never behind the wall stamp *)
    Alcotest.(check bool) "mono present and >= wall" true
      (r.Flight.fr_mono >= r.Flight.fr_ts);
    Alcotest.(check bool) "mono close to wall" true
      (r.Flight.fr_mono -. r.Flight.fr_ts < 60.)
  | rs ->
    Alcotest.fail
      (Printf.sprintf "expected 1 record, got %d" (List.length rs)));
  let j = parse_dump (Flight.to_json ()) in
  let wall = Json.mem_num "wall" j and mono = Json.mem_num "mono" j in
  Alcotest.(check bool) "dump header carries the wall/mono pair" true
    (wall <> None && mono <> None && Option.get mono >= Option.get wall);
  match dump_records j with
  | [ r ] ->
    Alcotest.(check bool) "record mono serialized" true
      (Json.mem_num "mono" r <> None)
  | _ -> Alcotest.fail "dump lost the record"

let mk_record ?(rid = "") ?(dur_ms = 0.) ~mono name =
  {
    Flight.fr_ts = 0.;
    (* deliberately bogus: assemble must use mono, not ts *)
    fr_mono = mono;
    fr_tid = 0;
    fr_rid = rid;
    fr_kind = (if dur_ms > 0. then Flight.Span else Flight.Event);
    fr_name = name;
    fr_dur_ms = dur_ms;
    fr_data = [];
  }

let assemble_events doc =
  match Json.parse doc with
  | Error e -> Alcotest.fail ("assembled trace does not parse: " ^ e)
  | Ok j -> (
    match Json.member "traceEvents" j with
    | Some (Json.Arr es) -> (j, es)
    | _ -> Alcotest.fail "no traceEvents array")

(* Two processes whose mono clocks have wildly different bases (one a
   boot-relative counter, one epoch-like) but whose dump anchors tie each
   to the wall timeline: assembly must align via anchor-relative mono
   offsets only, landing both records where their wall/mono pairs say
   they ended. *)
let test_assemble_aligns_skewed_clocks () =
  let a =
    {
      Flight.src_label = "router";
      src_pid = 100;
      src_wall = 1000.;
      src_mono = 500.;
      src_records = [ mk_record ~rid:"fl-1" ~dur_ms:10. ~mono:499.9 "hop.a" ];
    }
  in
  let b =
    {
      Flight.src_label = "backend-0";
      src_pid = 200;
      src_wall = 1000.05;
      src_mono = 9999.;
      (* ends 0.1 s before B's dump => abs 999.95, before A's record *)
      src_records = [ mk_record ~rid:"fl-1" ~dur_ms:20. ~mono:9998.9 "hop.b" ];
    }
  in
  let _, es = assemble_events (Flight.assemble [ a; b ]) in
  let lanes =
    List.filter_map
      (fun e ->
        if Json.mem_str "ph" e = Some "M" then
          Option.bind (Json.member "args" e) (Json.mem_str "name")
        else None)
      es
  in
  Alcotest.(check (list string)) "one lane per source, in order"
    [ "router"; "backend-0" ] lanes;
  let find name =
    List.find
      (fun e -> Json.mem_str "name" e = Some name)
      es
  in
  let ts e = Option.get (Json.mem_num "ts" e) in
  let dur e = Option.get (Json.mem_num "dur" e) in
  let ea = find "hop.a" and eb = find "hop.b" in
  Alcotest.(check string) "spans are X events" "X"
    (Option.get (Json.mem_str "ph" ea));
  (* absolute ends: a = 1000 - 0.1 = 999.9, b = 1000.05 - 0.1 = 999.95;
     starts: a = 999.89, b = 999.93; origin = min start = a's start *)
  Alcotest.(check (float 1.)) "a starts at the origin" 0. (ts ea);
  Alcotest.(check (float 1.)) "b starts 40ms later" 40_000. (ts eb);
  Alcotest.(check (float 1e-3)) "a duration in us" 10_000. (dur ea);
  Alcotest.(check (float 1e-3)) "b duration in us" 20_000. (dur eb);
  Alcotest.(check bool) "rid in args" true
    (Option.bind (Json.member "args" ea) (Json.mem_str "rid")
    = Some "fl-1")

let test_assemble_rid_filter () =
  let src =
    {
      Flight.src_label = "server";
      src_pid = 1;
      src_wall = 100.;
      src_mono = 100.;
      src_records =
        [
          mk_record ~rid:"fl-keep" ~dur_ms:1. ~mono:99.9 "keep.span";
          mk_record ~rid:"fl-drop" ~dur_ms:1. ~mono:99.9 "drop.span";
          mk_record ~rid:"fl-keep" ~mono:99.95 "keep.mark";
        ];
    }
  in
  let _, es = assemble_events (Flight.assemble ~rid:"fl-keep" [ src ]) in
  let names =
    List.filter_map
      (fun e ->
        if Json.mem_str "ph" e = Some "M" then None
        else Json.mem_str "name" e)
      es
  in
  Alcotest.(check (list string)) "only the rid's records survive"
    [ "keep.span"; "keep.mark" ] names;
  let mark =
    List.find (fun e -> Json.mem_str "name" e = Some "keep.mark") es
  in
  Alcotest.(check (option string)) "point records become instants"
    (Some "i") (Json.mem_str "ph" mark)

(* End-to-end through the real recorder: record under two rids, dump,
   re-decode the dump as a source (the [sufdec trace] path), assemble. *)
let test_assemble_from_live_dump () =
  fresh ();
  Flight.record ~rid:"fl-live" ~dur_ms:2. Flight.Span "serve.solve";
  Flight.record ~rid:"rq-other" ~dur_ms:1. Flight.Span "noise";
  let j = parse_dump (Flight.to_json ()) in
  let wall = Option.get (Json.mem_num "wall" j) in
  let mono = Option.get (Json.mem_num "mono" j) in
  let records =
    List.map
      (fun r ->
        let ts = Option.get (Json.mem_num "ts" r) in
        {
          Flight.fr_ts = ts;
          fr_mono = Option.value ~default:ts (Json.mem_num "mono" r);
          fr_tid = Option.value ~default:0 (Json.mem_int "tid" r);
          fr_rid = Option.value ~default:"" (Json.mem_str "rid" r);
          fr_kind = Flight.Span;
          fr_name = Option.value ~default:"" (Json.mem_str "name" r);
          fr_dur_ms = Option.value ~default:0. (Json.mem_num "dur_ms" r);
          fr_data = [];
        })
      (dump_records j)
  in
  let src =
    {
      Flight.src_label = "server";
      src_pid = Option.value ~default:0 (Json.mem_int "pid" j);
      src_wall = wall;
      src_mono = mono;
      src_records = records;
    }
  in
  let _, es = assemble_events (Flight.assemble ~rid:"fl-live" [ src ]) in
  let spans =
    List.filter (fun e -> Json.mem_str "ph" e = Some "X") es
  in
  Alcotest.(check int) "exactly the one request's span" 1
    (List.length spans);
  Alcotest.(check (option string)) "span name survives the round trip"
    (Some "serve.solve")
    (Json.mem_str "name" (List.hd spans))

(* -- Concurrency ----------------------------------------------------------- *)

(* Writers on several domains emit records whose rid, name and payload are
   all derived from one value; any record a concurrent reader sees must be
   internally consistent — the single-pointer-write discipline means a read
   can miss a record but never mix fields of two. *)
let prop_concurrent_no_torn_records =
  let gen = QCheck2.Gen.(pair (int_range 2 4) (int_range 50 200)) in
  QCheck2.Test.make ~name:"concurrent flight records never tear" ~count:20
    gen (fun (n_domains, n_records) ->
      fresh ~capacity:64 ();
      let consistent r =
        (* rid "w<d>-<i>", name "rec-<d>-<i>", data [("d", d); ("i", i)] *)
        match String.split_on_char '-' r.Flight.fr_name with
        | [ "rec"; d; i ] ->
          r.Flight.fr_rid = Printf.sprintf "w%s-%s" d i
          && List.assoc_opt "d" r.Flight.fr_data = Some d
          && List.assoc_opt "i" r.Flight.fr_data = Some i
          && r.Flight.fr_dur_ms = float_of_string i
        | _ -> false
      in
      let writers =
        List.init n_domains (fun d ->
            Domain.spawn (fun () ->
                for i = 0 to n_records - 1 do
                  Flight.record
                    ~rid:(Printf.sprintf "w%d-%d" d i)
                    ~dur_ms:(float_of_int i)
                    ~data:
                      [ ("d", string_of_int d); ("i", string_of_int i) ]
                    Flight.Span
                    (Printf.sprintf "rec-%d-%d" d i)
                done))
      in
      (* Read (and render) while the writers run, then once after. *)
      let ok = ref true in
      for _ = 1 to 20 do
        ok := !ok && List.for_all consistent (Flight.records ());
        ok := !ok && (match Json.parse (Flight.to_json ()) with
                     | Ok _ -> true
                     | Error _ -> false)
      done;
      List.iter Domain.join writers;
      !ok && List.for_all consistent (Flight.records ()))

(* The dump taken under load is valid JSON whose record objects all carry
   the schema's fields. *)
let prop_dump_under_load_valid =
  QCheck2.Test.make ~name:"dump under load is well-formed JSON" ~count:10
    QCheck2.Gen.(int_range 2 3)
    (fun n_domains ->
      fresh ~capacity:128 ();
      let stop = Atomic.make false in
      let writers =
        List.init n_domains (fun d ->
            Domain.spawn (fun () ->
                let i = ref 0 in
                while not (Atomic.get stop) do
                  incr i;
                  Flight.record
                    ~rid:(Printf.sprintf "w%d" d)
                    ~data:[ ("i", string_of_int !i) ]
                    Flight.Event "load"
                done))
      in
      let ok = ref true in
      for _ = 1 to 10 do
        match Json.parse (Flight.to_json ()) with
        | Error _ -> ok := false
        | Ok j ->
          ok :=
            !ok
            && Json.mem_str "schema" j = Some "sepsat-flight-1"
            && (match Json.member "records" j with
               | Some (Json.Arr rs) ->
                 List.for_all
                   (fun r ->
                     Json.mem_str "name" r <> None
                     && Json.mem_num "ts" r <> None
                     && Json.mem_int "tid" r <> None
                     && Json.mem_str "kind" r <> None)
                   rs
               | _ -> false)
      done;
      Atomic.set stop true;
      List.iter Domain.join writers;
      !ok)

let () =
  Alcotest.run "flight"
    [
      ( "ring",
        [
          Alcotest.test_case "disabled mode records nothing" `Quick
            test_disabled_no_records;
          Alcotest.test_case "record fields and ambient rid" `Quick
            test_record_fields;
          Alcotest.test_case "overwrite keeps the newest N" `Quick
            test_ring_overwrite_keeps_newest;
        ] );
      ( "feeds",
        [
          Alcotest.test_case "obs spans tee in with obs off" `Quick
            test_spans_feed_flight;
          Alcotest.test_case "log events tee in without a sink" `Quick
            test_logs_feed_flight;
        ] );
      ( "dump",
        [
          Alcotest.test_case "json round-trip with hostile strings" `Quick
            test_dump_json_roundtrip;
          Alcotest.test_case "write and dump files" `Quick
            test_write_and_dump_files;
          Alcotest.test_case "SIGUSR1 dump" `Quick test_signal_dump;
        ] );
      ( "assemble",
        [
          Alcotest.test_case "records and dumps carry clock anchors" `Quick
            test_records_carry_mono;
          Alcotest.test_case "skewed mono clocks align via anchors" `Quick
            test_assemble_aligns_skewed_clocks;
          Alcotest.test_case "rid filter and instants" `Quick
            test_assemble_rid_filter;
          Alcotest.test_case "live dump decodes and assembles" `Quick
            test_assemble_from_live_dump;
        ] );
      ( "concurrency",
        [
          QCheck_alcotest.to_alcotest prop_concurrent_no_torn_records;
          QCheck_alcotest.to_alcotest prop_dump_under_load_valid;
        ] );
    ]
