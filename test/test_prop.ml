(* Tests for the propositional formula manager and Tseitin conversion. *)

module F = Sepsat_prop.Formula
module Tseitin = Sepsat_prop.Tseitin
module Solver = Sepsat_sat.Solver
module Lit = Sepsat_sat.Lit

let test_constants () =
  let ctx = F.create_ctx () in
  Alcotest.(check bool) "tru shared" true (F.tru ctx == F.tru ctx);
  Alcotest.(check bool) "not true = false" true
    (F.not_ ctx (F.tru ctx) == F.fls ctx);
  Alcotest.(check bool) "of_bool" true (F.of_bool ctx true == F.tru ctx)

let test_smart_constructors () =
  let ctx = F.create_ctx () in
  let a = F.fresh_var ctx and b = F.fresh_var ctx in
  Alcotest.(check bool) "and true" true (F.and_ ctx a (F.tru ctx) == a);
  Alcotest.(check bool) "and false" true
    (F.and_ ctx a (F.fls ctx) == F.fls ctx);
  Alcotest.(check bool) "or false" true (F.or_ ctx a (F.fls ctx) == a);
  Alcotest.(check bool) "or true" true (F.or_ ctx a (F.tru ctx) == F.tru ctx);
  Alcotest.(check bool) "idempotent and" true (F.and_ ctx a a == a);
  Alcotest.(check bool) "contradiction" true
    (F.and_ ctx a (F.not_ ctx a) == F.fls ctx);
  Alcotest.(check bool) "excluded middle" true
    (F.or_ ctx a (F.not_ ctx a) == F.tru ctx);
  Alcotest.(check bool) "double negation" true (F.not_ ctx (F.not_ ctx a) == a);
  Alcotest.(check bool) "commutative sharing" true
    (F.and_ ctx a b == F.and_ ctx b a)

let test_derived () =
  let ctx = F.create_ctx () in
  let a = F.fresh_var ctx and b = F.fresh_var ctx in
  let assign_of va vb i = if i = F.var_index a then va else vb in
  List.iter
    (fun (va, vb) ->
      let e = assign_of va vb in
      Alcotest.(check bool) "implies" (not va || vb) (F.eval e (F.implies ctx a b));
      Alcotest.(check bool) "iff" (va = vb) (F.eval e (F.iff ctx a b));
      Alcotest.(check bool) "xor" (va <> vb) (F.eval e (F.xor ctx a b));
      (* ite a b (iff a b): selects b when a holds, (a <=> b) otherwise *)
      Alcotest.(check bool) "ite"
        (if va then vb else va = vb)
        (F.eval e (F.ite ctx a b (F.iff ctx a b))))
    [ (true, true); (true, false); (false, true); (false, false) ]

let test_size_sharing () =
  let ctx = F.create_ctx () in
  let a = F.fresh_var ctx and b = F.fresh_var ctx in
  let ab = F.and_ ctx a b in
  let f = F.or_ ctx ab (F.not_ ctx ab) in
  (* or simplifies x ∨ ¬x to true *)
  Alcotest.(check bool) "tautology folded" true (f == F.tru ctx);
  let g = F.or_ ctx ab (F.and_ ctx ab a) in
  (* and_ ctx ab a is a distinct node; sharing keeps the size small *)
  Alcotest.(check bool) "size bounded" true (F.size g <= 5)

let test_var_errors () =
  let ctx = F.create_ctx () in
  Alcotest.(check bool) "unallocated var rejected" true
    (match F.var ctx 0 with exception Invalid_argument _ -> true | _ -> false);
  let v = F.fresh_var ctx in
  Alcotest.(check bool) "allocated ok" true (F.var ctx 0 == v);
  Alcotest.(check bool) "var_index of non-var" true
    (match F.var_index (F.tru ctx) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Random formula generator producing (formula, reference-eval closure). *)
let gen_formula nvars depth =
  let open QCheck2.Gen in
  let rec go ctx depth =
    if depth = 0 then
      oneof
        [
          map (fun i -> F.var ctx (i mod nvars)) (int_bound (nvars - 1));
          pure (F.tru ctx);
          pure (F.fls ctx);
        ]
    else
      oneof
        [
          map (fun i -> F.var ctx (i mod nvars)) (int_bound (nvars - 1));
          map (F.not_ ctx) (go ctx (depth - 1));
          map2 (F.and_ ctx) (go ctx (depth - 1)) (go ctx (depth - 1));
          map2 (F.or_ ctx) (go ctx (depth - 1)) (go ctx (depth - 1));
          map2 (F.xor ctx) (go ctx (depth - 1)) (go ctx (depth - 1));
          map3 (F.ite ctx) (go ctx (depth - 1)) (go ctx (depth - 1))
            (go ctx (depth - 1));
        ]
  in
  let ctx = F.create_ctx () in
  for _ = 1 to nvars do
    ignore (F.fresh_var ctx)
  done;
  map (fun f -> (ctx, f)) (go ctx depth)

(* Property: Tseitin encoding is equisatisfiable and model-faithful. The
   brute-force reference enumerates all assignments of the formula's
   variables. *)
let prop_tseitin_equisat =
  QCheck2.Test.make ~name:"tseitin equisatisfiable" ~count:300
    (gen_formula 5 4) (fun (_ctx, f) ->
      let nvars = 5 in
      let sat_brute =
        let rec loop a v =
          if v = nvars then F.eval (fun i -> a.(i)) f
          else begin
            a.(v) <- true;
            loop a (v + 1)
            ||
            (a.(v) <- false;
             loop a (v + 1))
          end
        in
        loop (Array.make nvars false) 0
      in
      let solver = Solver.create () in
      let ts = Tseitin.create solver in
      Tseitin.assert_root ts f;
      match Solver.solve solver with
      | Solver.Sat ->
        (* the decoded model must satisfy the formula *)
        let assign i =
          match Tseitin.find_var ts i with
          | Some lit -> Solver.value solver lit
          | None -> false
        in
        sat_brute && F.eval assign f
      | Solver.Unsat -> not sat_brute
      | Solver.Unknown -> false)

(* Property: evaluation respects the Boolean algebra laws used by the smart
   constructors. *)
let prop_eval_consistent =
  QCheck2.Test.make ~name:"simplification preserves evaluation" ~count:300
    QCheck2.Gen.(pair (gen_formula 4 4) (array_size (pure 4) bool))
    (fun ((ctx, f), assignment) ->
      let e i = assignment.(i) in
      (* rebuilding the formula through the constructors must not change its
         value *)
      let rec rebuild (g : F.t) =
        match g.F.node with
        | F.True -> F.tru ctx
        | F.False -> F.fls ctx
        | F.Var i -> F.var ctx i
        | F.Not h -> F.not_ ctx (rebuild h)
        | F.And (a, b) -> F.and_ ctx (rebuild a) (rebuild b)
        | F.Or (a, b) -> F.or_ ctx (rebuild a) (rebuild b)
      in
      F.eval e f = F.eval e (rebuild f))

let test_tseitin_clause_count () =
  let ctx = F.create_ctx () in
  let vars = Array.init 10 (fun _ -> F.fresh_var ctx) in
  let f = Array.fold_left (F.and_ ctx) (F.tru ctx) vars in
  (* Polarity: the conjunctive root splits into 10 unit clauses, no gates. *)
  let solver = Solver.create () in
  let ts = Tseitin.create solver in
  Tseitin.assert_root ts f;
  Alcotest.(check int) "polarity clauses" 10 (Tseitin.clauses_added ts);
  (* Full: 9 And nodes, 3 clauses each, plus the root unit. *)
  let solver2 = Solver.create () in
  let ts2 = Tseitin.create ~mode:Tseitin.Full solver2 in
  Tseitin.assert_root ts2 f;
  Alcotest.(check int) "full clauses" 28 (Tseitin.clauses_added ts2)

(* Property: the Plaisted-Greenbaum conversion reaches the same verdict as
   the full Tseitin conversion and never emits more clauses. *)
let prop_pg_matches_full =
  QCheck2.Test.make ~name:"polarity and full conversions agree" ~count:300
    (gen_formula 5 4) (fun (_ctx, f) ->
      let run mode =
        let solver = Solver.create () in
        let ts = Tseitin.create ~mode solver in
        Tseitin.assert_root ts f;
        (Solver.solve solver, Tseitin.clauses_added ts)
      in
      let vpg, npg = run Tseitin.Polarity in
      let vfull, nfull = run Tseitin.Full in
      vpg = vfull && npg <= nfull)

(* Property: Full mode keeps models projectable too. *)
let prop_full_model_faithful =
  QCheck2.Test.make ~name:"full tseitin model-faithful" ~count:150
    (gen_formula 4 4) (fun (_ctx, f) ->
      let solver = Solver.create () in
      let ts = Tseitin.create ~mode:Tseitin.Full solver in
      Tseitin.assert_root ts f;
      match Solver.solve solver with
      | Solver.Sat ->
        let assign i =
          match Tseitin.find_var ts i with
          | Some lit -> Solver.value solver lit
          | None -> false
        in
        F.eval assign f
      | Solver.Unsat | Solver.Unknown -> true)

let () =
  Alcotest.run "prop"
    [
      ( "formula",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
          Alcotest.test_case "derived connectives" `Quick test_derived;
          Alcotest.test_case "size and sharing" `Quick test_size_sharing;
          Alcotest.test_case "variable errors" `Quick test_var_errors;
        ] );
      ( "tseitin",
        [
          Alcotest.test_case "clause count" `Quick test_tseitin_clause_count;
          QCheck_alcotest.to_alcotest prop_tseitin_equisat;
          QCheck_alcotest.to_alcotest prop_pg_matches_full;
          QCheck_alcotest.to_alcotest prop_full_model_faithful;
          QCheck_alcotest.to_alcotest prop_eval_consistent;
        ] );
    ]
