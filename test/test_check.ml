(* Tests for the witness-checking / differential-fuzzing subsystem
   (lib/check): witness extraction and evaluation, per-answer certification,
   cross-method agreement with valid witnesses, the delta debugger, and a
   mutation test proving an injected encoding bug is caught and shrunk to a
   tiny reproducer. *)

module Ast = Sepsat_suf.Ast
module Parse = Sepsat_suf.Parse
module Smtlib = Sepsat_suf.Smtlib
module Interp = Sepsat_suf.Interp
module Verdict = Sepsat_sep.Verdict
module Deadline = Sepsat_util.Deadline
module Decide = Sepsat.Decide
module Witness = Sepsat.Witness
module Certify = Sepsat_check.Certify
module Shrink = Sepsat_check.Shrink
module Differential = Sepsat_check.Differential
module Random_formula = Sepsat_workloads.Random_formula

(* -- Witness extraction and certification --------------------------------- *)

let decide m ctx f =
  Decide.decide ~method_:m ~deadline:(Deadline.after 30.) ~certify:true ctx f

let test_witness_invalid () =
  let ctx = Ast.create_ctx () in
  let f = Parse.formula ctx "(=> (= (f a) (f b)) (= a b))" in
  let r = decide Decide.Hybrid_default ctx f in
  match Certify.check ~expect_proof:true f r with
  | Ok (Certify.Invalid_witnessed w) ->
    Alcotest.(check bool) "witness falsifies" true (Witness.falsifies w f);
    Alcotest.(check bool) "surfaced in result" true (r.Decide.witness <> None);
    (* the witness must pin f's table at both argument values *)
    Alcotest.(check bool) "has function table" true
      (List.mem_assoc "f" w.Witness.funcs)
  | Ok o -> Alcotest.failf "expected witnessed invalid, got %a" Certify.pp_outcome o
  | Error e -> Alcotest.failf "certification error: %a" Certify.pp_error e

let test_witness_valid_certified () =
  let ctx = Ast.create_ctx () in
  let f = Parse.formula ctx "(=> (= a b) (= (f (g a)) (f (g b))))" in
  let r = decide Decide.Sd ctx f in
  match Certify.check ~expect_proof:true f r with
  | Ok Certify.Valid_certified -> ()
  | Ok o -> Alcotest.failf "expected certified valid, got %a" Certify.pp_outcome o
  | Error e -> Alcotest.failf "certification error: %a" Certify.pp_error e

let test_missing_proof_rejected () =
  let ctx = Ast.create_ctx () in
  let f = Parse.formula ctx "(= x x)" in
  (* no ~certify: the valid verdict has no DRUP trace to replay *)
  let r = Decide.decide ~method_:Decide.Sd ctx f in
  match Certify.check ~expect_proof:true f r with
  | Error (Certify.Proof_error _) -> ()
  | Error e -> Alcotest.failf "expected proof error, got %a" Certify.pp_error e
  | Ok o -> Alcotest.failf "expected proof error, got %a" Certify.pp_outcome o

let test_forged_witness_rejected () =
  let ctx = Ast.create_ctx () in
  let f = Parse.formula ctx "(= x y)" in
  let r = decide Decide.Eij ctx f in
  match r.Decide.verdict with
  | Verdict.Invalid _ ->
    (* forge an assignment that does not falsify x = y *)
    let forged =
      Verdict.Invalid
        { Sepsat_sep.Brute.ints = [ ("x", 0); ("y", 0) ]; bools = [] }
    in
    let r' = { r with Decide.verdict = forged; witness = None } in
    (match Certify.check f r' with
    | Error (Certify.Witness_error _) -> ()
    | Error e -> Alcotest.failf "expected witness error, got %a" Certify.pp_error e
    | Ok o -> Alcotest.failf "forged witness accepted as %a" Certify.pp_outcome o)
  | _ -> Alcotest.fail "x = y should be invalid"

(* -- Satellite: eager methods agree at every threshold, with valid
   witnesses, on seeded Random_formula.small instances ---------------------- *)

let eager_methods =
  [
    Decide.Sd;
    Decide.Eij;
    Decide.Hybrid_at 0;
    Decide.Hybrid_default;
    Decide.Hybrid_at max_int;
  ]

let prop_eager_agreement_with_witnesses =
  QCheck2.Test.make
    ~name:"SD/EIJ/HYBRID{0,default,max}: same verdicts, valid witnesses"
    ~count:60
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let ctx = Ast.create_ctx () in
      let f = Random_formula.generate Random_formula.small ctx ~seed in
      let outcomes =
        List.map
          (fun m ->
            let r = decide m ctx f in
            match Certify.check ~expect_proof:true f r with
            | Ok (Certify.Invalid_witnessed _) -> false
            | Ok (Certify.Valid_certified | Certify.Valid_uncertified) -> true
            | Ok (Certify.Gave_up why) ->
              Alcotest.failf "unknown verdict (%s) on %s" why (Ast.to_string f)
            | Error e ->
              Alcotest.failf "certification error %a on %s" Certify.pp_error e
                (Ast.to_string f))
          eager_methods
      in
      match outcomes with
      | [] -> false
      | v :: rest -> List.for_all (( = ) v) rest)

(* -- Delta debugger -------------------------------------------------------- *)

let test_shrink_to_core () =
  let ctx = Ast.create_ctx () in
  (* Invalidity witnessed only by the (= x y) conjunct; everything else is
     satisfiable padding the shrinker must discard. *)
  let f =
    Parse.formula ctx
      "(and (and (or (< a b) (= (f a) c)) (not (= x y))) (or (P x) (< c (+ a 2))))"
  in
  let invalid g =
    match (decide Decide.Hybrid_default ctx g).Decide.verdict with
    | Verdict.Invalid _ -> true
    | Verdict.Valid | Verdict.Unknown _ -> false
  in
  Alcotest.(check bool) "seed formula invalid" true (invalid f);
  let shrunk = Shrink.shrink ctx ~still_failing:invalid f in
  Alcotest.(check bool) "still invalid" true (invalid shrunk);
  if Ast.size shrunk > 4 then
    Alcotest.failf "shrunk to %d nodes, expected <= 4: %s" (Ast.size shrunk)
      (Ast.to_string shrunk)

(* -- Differential driver --------------------------------------------------- *)

let test_differential_clean () =
  let summary =
    Differential.fuzz
      ~procedures:(Differential.default_procedures ~timeout:30. ())
      ~iters:40 ~seed:7 ()
  in
  Alcotest.(check int) "no failures" 0
    (List.length summary.Differential.failures);
  Alcotest.(check bool) "saw sat answers" true
    (summary.Differential.tally.Differential.sat_answers > 0);
  Alcotest.(check bool) "saw unsat answers" true
    (summary.Differential.tally.Differential.unsat_answers > 0)

(* Injected encoding bug: a procedure that decides the formula with every
   succ/pred collapsed — an offset-dropping translation defect. The
   differential driver must flag the disagreement and shrink it to a tiny
   arithmetic reproducer. *)

let strip_offsets ctx root =
  let fmemo = Hashtbl.create 64 and tmemo = Hashtbl.create 64 in
  let rec go_f (f : Ast.formula) =
    match Hashtbl.find_opt fmemo f.Ast.fid with
    | Some f' -> f'
    | None ->
      let f' =
        match f.Ast.fnode with
        | Ast.Ftrue -> Ast.tru ctx
        | Ast.Ffalse -> Ast.fls ctx
        | Ast.Bconst b -> Ast.bconst ctx b
        | Ast.Not g -> Ast.not_ ctx (go_f g)
        | Ast.And (a, b) -> Ast.and_ ctx (go_f a) (go_f b)
        | Ast.Or (a, b) -> Ast.or_ ctx (go_f a) (go_f b)
        | Ast.Eq (t1, t2) -> Ast.eq ctx (go_t t1) (go_t t2)
        | Ast.Lt (t1, t2) -> Ast.lt ctx (go_t t1) (go_t t2)
        | Ast.Papp (p, args) -> Ast.papp ctx p (List.map go_t args)
      in
      Hashtbl.add fmemo f.Ast.fid f';
      f'
  and go_t (t : Ast.term) =
    match Hashtbl.find_opt tmemo t.Ast.tid with
    | Some t' -> t'
    | None ->
      let t' =
        match t.Ast.tnode with
        | Ast.Const c -> Ast.const ctx c
        | Ast.Succ a | Ast.Pred a -> go_t a (* the bug *)
        | Ast.Tite (c, a, b) -> Ast.tite ctx (go_f c) (go_t a) (go_t b)
        | Ast.App (g, args) -> Ast.app ctx g (List.map go_t args)
      in
      Hashtbl.add tmemo t.Ast.tid t';
      t'
  in
  go_f root

let buggy_procedure =
  {
    Differential.name = "EIJ-buggy";
    expect_proof = false;
    run =
      (fun ctx f ->
        Decide.decide ~method_:Decide.Eij ~deadline:(Deadline.after 30.) ctx
          (strip_offsets ctx f));
  }

let test_mutation_caught_and_shrunk () =
  let procedures =
    [
      Differential.procedure_of_method ~timeout:30. Decide.Hybrid_default;
      buggy_procedure;
    ]
  in
  let summary =
    Differential.fuzz ~procedures ~gen:Random_formula.small ~iters:40 ~seed:1
      ()
  in
  match summary.Differential.failures with
  | [] -> Alcotest.fail "injected encoding bug was not caught in 40 iterations"
  | c :: _ ->
    (* the bug may surface as a cross-method disagreement or be caught even
       earlier, as a witness/proof of the buggy procedure failing its own
       certification — both mean the oracle caught it *)
    (match c.Differential.failure.Differential.kind with
    | Differential.Disagreement
    | Differential.Bad_witness "EIJ-buggy"
    | Differential.Bad_proof "EIJ-buggy" -> ()
    | Differential.Bad_witness p | Differential.Bad_proof p ->
      Alcotest.failf "a sound procedure (%s) failed certification" p
    | Differential.Crash p -> Alcotest.failf "unexpected crash in %s" p);
    let n = Ast.size c.Differential.shrunk in
    if n >= 10 then
      Alcotest.failf "reproducer has %d nodes (expected < 10): %s" n
        (Ast.to_string c.Differential.shrunk);
    (* the printed reproducer re-parses, and its induced validity query is
       exactly the shrunk formula *)
    let ctx2 = Ast.create_ctx () in
    (match Smtlib.script ctx2 c.Differential.script with
    | exception Smtlib.Error msg ->
      Alcotest.failf "reproducer does not re-parse: %s" msg
    | s ->
      Alcotest.(check int) "one assertion" 1 (List.length s.Smtlib.assertions);
      Alcotest.(check bool) "check-sat requested" true s.Smtlib.requested_check)

let () =
  Alcotest.run "check"
    [
      ( "certify",
        [
          Alcotest.test_case "invalid answers are witnessed" `Quick
            test_witness_invalid;
          Alcotest.test_case "valid answers certify" `Quick
            test_witness_valid_certified;
          Alcotest.test_case "missing proof rejected" `Quick
            test_missing_proof_rejected;
          Alcotest.test_case "forged witness rejected" `Quick
            test_forged_witness_rejected;
        ] );
      ( "agreement",
        [ QCheck_alcotest.to_alcotest prop_eager_agreement_with_witnesses ] );
      ("shrink", [ Alcotest.test_case "padding discarded" `Quick test_shrink_to_core ]);
      ( "differential",
        [
          Alcotest.test_case "clean fuzz run" `Slow test_differential_clean;
          Alcotest.test_case "injected bug caught and shrunk" `Slow
            test_mutation_caught_and_shrunk;
        ] );
    ]
