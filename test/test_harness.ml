(* Tests for the experiment harness: clustering, the runner, and the ASCII
   plotter. *)

module Cluster = Sepsat_harness.Cluster
module Runner = Sepsat_harness.Runner
module Ascii_plot = Sepsat_harness.Ascii_plot
module Suite = Sepsat_workloads.Suite
module Decide = Sepsat.Decide
module Verdict = Sepsat_sep.Verdict

let test_variance () =
  Alcotest.(check (float 1e-9)) "empty" 0. (Cluster.variance [||]);
  Alcotest.(check (float 1e-9)) "singleton" 0. (Cluster.variance [| 5. |]);
  Alcotest.(check (float 1e-9)) "pair" 1. (Cluster.variance [| 1.; 3. |]);
  Alcotest.(check (float 1e-9)) "uniform" 0. (Cluster.variance [| 2.; 2.; 2. |])

let test_best_split () =
  (* two obvious clusters: {1,2,3} and {100,101} *)
  Alcotest.(check int) "split at 3" 3
    (Cluster.best_split [| 1.; 2.; 3.; 100.; 101. |]);
  Alcotest.(check int) "split pair" 1 (Cluster.best_split [| 0.; 10. |]);
  Alcotest.(check bool) "too small rejected" true
    (match Cluster.best_split [| 1. |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* The returned split minimizes the cost over all splits. *)
let prop_best_split_minimal =
  QCheck2.Test.make ~name:"best split is minimal" ~count:300
    QCheck2.Gen.(list_size (int_range 2 12) (float_bound_inclusive 100.))
    (fun values ->
      let a = Array.of_list (List.sort compare values) in
      let cost k =
        Cluster.variance (Array.sub a 0 k)
        +. Cluster.variance (Array.sub a k (Array.length a - k))
      in
      let k = Cluster.best_split a in
      let ok = ref true in
      for j = 1 to Array.length a - 1 do
        if cost j < cost k -. 1e-9 then ok := false
      done;
      !ok)

let test_select_threshold () =
  (* run-times cluster into {fast} and {slow}; the threshold is the smallest
     multiple of 100 above the last fast sample's predicate count *)
  let samples =
    [ (50, 0.1); (120, 0.2); (640, 0.3); (800, 50.); (2000, 60.) ]
  in
  Alcotest.(check int) "rounded up" 700 (Cluster.select_threshold samples);
  let samples2 = [ (100, 0.1); (700, 0.2); (50, 30.); (20, 40.) ] in
  Alcotest.(check int) "multiple of 100 strictly above" 800
    (Cluster.select_threshold samples2)

(* The threshold is always a positive multiple of 100 strictly above the
   split point's predicate count. *)
let prop_threshold_shape =
  QCheck2.Test.make ~name:"threshold is a multiple of 100" ~count:200
    QCheck2.Gen.(
      list_size (int_range 2 16)
        (pair (int_bound 5000) (float_bound_inclusive 100.)))
    (fun samples ->
      let t = Cluster.select_threshold samples in
      let max_count = List.fold_left (fun acc (n, _) -> max acc n) 0 samples in
      t > 0 && t mod 100 = 0 && t <= max_count + 100)

(* The plotter accepts any point soup without raising. *)
let prop_plot_total =
  QCheck2.Test.make ~name:"ascii plot never raises" ~count:200
    QCheck2.Gen.(
      list_size (int_bound 30)
        (pair (float_range (-10.) 1000.) (float_range (-10.) 1000.)))
    (fun points ->
      let series = [ { Ascii_plot.label = "s"; glyph = '*'; points } ] in
      let out =
        Format.asprintf "%a"
          (fun ppf () ->
            Ascii_plot.scatter ~diagonal:true ~xlabel:"x" ~ylabel:"y" ppf
              series)
          ()
      in
      String.length out > 0)

let test_runner () =
  match Suite.find "drv.1" with
  | None -> Alcotest.fail "drv.1 missing"
  | Some bench ->
    let row = Runner.run ~deadline_s:20. Decide.Hybrid_default bench in
    Alcotest.(check string) "name" "drv.1" row.Runner.bench;
    Alcotest.(check string) "family" "device-driver" row.Runner.family;
    Alcotest.(check bool) "completed" true (row.Runner.outcome = Runner.Completed);
    Alcotest.(check bool) "valid" true (row.Runner.verdict = Verdict.Valid);
    Alcotest.(check bool) "size positive" true (row.Runner.size > 0);
    Alcotest.(check bool) "sep counted" true (row.Runner.sep_cnt > 0);
    Alcotest.(check (float 1e-9)) "penalized = total"
      row.Runner.total_time
      (Runner.penalized_time ~deadline_s:20. row)

let test_runner_timeout_penalty () =
  let row =
    {
      Runner.bench = "x";
      family = "f";
      invariant_checking = false;
      method_ = Decide.Sd;
      size = 500;
      sep_cnt = 1;
      verdict = Verdict.Unknown "timeout";
      outcome = Runner.Timed_out;
      total_time = 3.;
      wall_time = 3.;
      translate_time = 1.;
      sat_time = 2.;
      cnf_clauses = 0;
      conflicts = 0;
      decisions = 0;
      propagations = 0;
      trans_constraints = 0;
      winner = None;
      phase_times = [ ("elim", 1.); ("sat", 2.) ];
      alloc_words = 0.;
      major_words = 0.;
      heap_words = 0;
    }
  in
  Alcotest.(check (float 1e-9)) "penalty" 30.
    (Runner.penalized_time ~deadline_s:30. row);
  Alcotest.(check (float 1e-9)) "normalized" 60.
    (Runner.normalized_time ~deadline_s:30. row)

(* ------------------------------------------------------------------ *)
(* Perf-regression baselines                                           *)

module Baseline = Sepsat_harness.Baseline

let fake_row ?(method_ = Decide.Sd) ?(phases = [ ("elim", 0.1); ("sat", 0.2) ])
    bench wall =
  {
    Runner.bench;
    family = "f";
    invariant_checking = false;
    method_;
    size = 10;
    sep_cnt = 1;
    verdict = Verdict.Valid;
    outcome = Runner.Completed;
    total_time = wall;
    wall_time = wall;
    translate_time = 0.;
    sat_time = 0.;
    cnf_clauses = 0;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    trans_constraints = 0;
    winner = None;
    phase_times = phases;
    alloc_words = 0.;
    major_words = 0.;
    heap_words = 0;
  }

let entry ?(method_ = "sd") ?(phases = []) bench wall =
  {
    Baseline.e_bench = bench;
    e_method = method_;
    e_wall_s = wall;
    e_runs = 1;
    e_phases = phases;
  }

let test_baseline_of_rows () =
  let rows =
    [
      fake_row "a" 2.0 ~phases:[ ("sat", 1.9) ];
      fake_row "a" 1.0 ~phases:[ ("sat", 0.9) ];
      fake_row "a" 3.0 ~phases:[ ("sat", 2.9) ];
      fake_row "b" 0.5;
      fake_row "a" ~method_:Decide.Eij 4.0;
    ]
  in
  match Baseline.of_rows rows with
  | [ a_sd; b; a_eij ] ->
    Alcotest.(check string) "first-seen order" "a" a_sd.Baseline.e_bench;
    Alcotest.(check (float 1e-9)) "min-of-k wall" 1.0 a_sd.Baseline.e_wall_s;
    Alcotest.(check int) "runs aggregated" 3 a_sd.Baseline.e_runs;
    Alcotest.(check (float 1e-9)) "phases follow the fastest run" 0.9
      (List.assoc "sat" a_sd.Baseline.e_phases);
    Alcotest.(check string) "second bench" "b" b.Baseline.e_bench;
    Alcotest.(check bool) "methods kept apart" true
      (a_eij.Baseline.e_method <> a_sd.Baseline.e_method)
  | es -> Alcotest.failf "expected 3 entries, got %d" (List.length es)

let test_baseline_roundtrip () =
  let entries = Baseline.of_rows [ fake_row "a" 1.5; fake_row "b" 0.25 ] in
  let path = Filename.temp_file "baseline" ".json" in
  Baseline.write path entries;
  let back =
    match Baseline.read path with
    | Ok es -> es
    | Error e -> Alcotest.failf "read: %s" e
  in
  Sys.remove path;
  Alcotest.(check int) "entry count" (List.length entries) (List.length back);
  List.iter2
    (fun (a : Baseline.entry) (b : Baseline.entry) ->
      Alcotest.(check string) "bench" a.Baseline.e_bench b.Baseline.e_bench;
      Alcotest.(check string) "method" a.Baseline.e_method b.Baseline.e_method;
      Alcotest.(check (float 1e-9)) "wall" a.Baseline.e_wall_s b.Baseline.e_wall_s;
      Alcotest.(check (float 1e-9)) "phase"
        (List.assoc "sat" a.Baseline.e_phases)
        (List.assoc "sat" b.Baseline.e_phases))
    entries back

let test_baseline_compare () =
  let base =
    [
      entry "a" 1.0; entry "b" 1.0; entry "c" 1.0; entry "d" 1.0;
      entry "gone" 1.0;
    ]
  in
  (* identical run: no regressions, drift 1 *)
  let same = [ entry "a" 1.0; entry "b" 1.0; entry "c" 1.0; entry "d" 1.0 ] in
  let c = Baseline.compare_ ~baseline:base same in
  Alcotest.(check bool) "identical is clean" false (Baseline.regressed c);
  Alcotest.(check (float 1e-9)) "no drift" 1.0 c.Baseline.c_drift;
  Alcotest.(check int) "missing reported" 1
    (List.length c.Baseline.c_missing);
  (* a uniformly 3x slower machine is drift, not regression *)
  let slow = [ entry "a" 3.0; entry "b" 3.0; entry "c" 3.0; entry "d" 3.0 ] in
  let c = Baseline.compare_ ~baseline:base slow in
  Alcotest.(check (float 1e-9)) "drift absorbed" 3.0 c.Baseline.c_drift;
  Alcotest.(check bool) "uniform slowdown is clean" false
    (Baseline.regressed c);
  (* one benchmark leaving the pack is exactly what gets flagged *)
  let spike =
    [ entry "a" 1.0; entry "b" 1.0; entry "c" 1.0;
      entry "d" 2.0 ~phases:[ ("sat", 1.9) ] ]
  in
  let base_p =
    [ entry "a" 1.0; entry "b" 1.0; entry "c" 1.0;
      entry "d" 1.0 ~phases:[ ("sat", 0.9) ] ]
  in
  let c = Baseline.compare_ ~baseline:base_p spike in
  Alcotest.(check bool) "spike regresses" true (Baseline.regressed c);
  (match c.Baseline.c_regressions with
  | [ d ] ->
    Alcotest.(check string) "the right bench" "d" d.Baseline.d_bench;
    (match d.Baseline.d_worst_phase with
    | Some (name, _) -> Alcotest.(check string) "attributed" "sat" name
    | None -> Alcotest.fail "no phase attribution")
  | ds -> Alcotest.failf "expected 1 regression, got %d" (List.length ds));
  (* below the absolute floor nothing fires, however large the ratio *)
  let tiny_base = [ entry "a" 0.001; entry "b" 0.001 ] in
  let tiny_cur = [ entry "a" 0.010; entry "b" 0.001 ] in
  let c = Baseline.compare_ ~baseline:tiny_base tiny_cur in
  Alcotest.(check bool) "absolute floor holds" false (Baseline.regressed c);
  (* new benchmarks are reported, never flagged *)
  let c =
    Baseline.compare_ ~baseline:[ entry "a" 1.0 ]
      [ entry "a" 1.0; entry "fresh" 9.0 ]
  in
  Alcotest.(check int) "new reported" 1 (List.length c.Baseline.c_new);
  Alcotest.(check bool) "new never regresses" false (Baseline.regressed c)

let test_baseline_reads_report () =
  (* a schema-2 report written by Runner.write_json reads back as a
     baseline, aggregating repeated runs by min *)
  let rows =
    [ fake_row "a" 2.0; fake_row "a" 1.0; fake_row "b" 0.5 ]
  in
  let path = Filename.temp_file "report" ".json" in
  Runner.write_json path rows;
  let back =
    match Baseline.read path with
    | Ok es -> es
    | Error e -> Alcotest.failf "read: %s" e
  in
  Sys.remove path;
  match back with
  | [ a; b ] ->
    Alcotest.(check string) "bench a" "a" a.Baseline.e_bench;
    Alcotest.(check (float 1e-6)) "report min" 1.0 a.Baseline.e_wall_s;
    Alcotest.(check int) "report runs" 2 a.Baseline.e_runs;
    Alcotest.(check string) "bench b" "b" b.Baseline.e_bench
  | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es)

let test_ascii_plot () =
  let series =
    [
      { Ascii_plot.label = "a"; glyph = '+'; points = [ (1., 1.); (10., 100.) ] };
      { Ascii_plot.label = "b"; glyph = 'o'; points = [ (5., 0.5) ] };
    ]
  in
  let out =
    Format.asprintf "%a"
      (fun ppf () ->
        Ascii_plot.scatter ~diagonal:true ~xlabel:"x" ~ylabel:"y" ppf series)
      ()
  in
  Alcotest.(check bool) "contains glyphs" true
    (String.contains out '+' && String.contains out 'o');
  Alcotest.(check bool) "non-empty" true (String.length out > 100);
  let empty =
    Format.asprintf "%a"
      (fun ppf () -> Ascii_plot.scatter ~xlabel:"x" ~ylabel:"y" ppf [])
      ()
  in
  Alcotest.(check string) "no data" "(no data)\n" empty

let () =
  Alcotest.run "harness"
    [
      ( "cluster",
        [
          Alcotest.test_case "variance" `Quick test_variance;
          Alcotest.test_case "best split" `Quick test_best_split;
          Alcotest.test_case "select threshold" `Quick test_select_threshold;
          QCheck_alcotest.to_alcotest prop_best_split_minimal;
          QCheck_alcotest.to_alcotest prop_threshold_shape;
        ] );
      ( "runner",
        [
          Alcotest.test_case "run benchmark" `Quick test_runner;
          Alcotest.test_case "timeout penalty" `Quick test_runner_timeout_penalty;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "of_rows aggregates by min" `Quick
            test_baseline_of_rows;
          Alcotest.test_case "write/read roundtrip" `Quick
            test_baseline_roundtrip;
          Alcotest.test_case "drift-adjusted compare" `Quick
            test_baseline_compare;
          Alcotest.test_case "reads schema-2 reports" `Quick
            test_baseline_reads_report;
        ] );
      ( "ascii_plot",
        [
          Alcotest.test_case "scatter" `Quick test_ascii_plot;
          QCheck_alcotest.to_alcotest prop_plot_total;
        ] );
    ]
