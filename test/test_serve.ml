(* Tests for the serving subsystem: JSON codec, wire protocol, bounded
   queue, sharded LRU cache with single-flight deduplication, the engine
   (caching correctness against a fresh [Decide.decide], shedding,
   deadlines) and the socket/channel protocol front ends. *)

module Json = Sepsat_serve.Json
module Protocol = Sepsat_serve.Protocol
module Bqueue = Sepsat_serve.Bqueue
module Cache = Sepsat_serve.Cache
module Engine = Sepsat_serve.Engine
module Server = Sepsat_serve.Server
module Session = Sepsat_serve.Session
module Ast = Sepsat_suf.Ast
module Parse = Sepsat_suf.Parse
module Decide = Sepsat.Decide
module Verdict = Sepsat_sep.Verdict
module Deadline = Sepsat_util.Deadline
module Random_formula = Sepsat_workloads.Random_formula
module Loadgen = Sepsat_harness.Loadgen
module Trace_ctx = Sepsat_obs.Trace_ctx

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let rec json_eq a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Num x, Json.Num y -> x = y
  | Json.Str x, Json.Str y -> x = y
  | Json.Arr x, Json.Arr y ->
    List.length x = List.length y && List.for_all2 json_eq x y
  | Json.Obj x, Json.Obj y ->
    List.length x = List.length y
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> k1 = k2 && json_eq v1 v2)
         x y
  | _ -> false

let test_json_roundtrip () =
  let values =
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Num 0.;
      Json.Num (-42.);
      Json.Num 3.25;
      Json.Num 1e100;
      Json.Str "";
      Json.Str "plain";
      Json.Str "quotes \" and \\ and \ncontrol \t bytes";
      Json.Arr [];
      Json.Arr [ Json.Num 1.; Json.Str "two"; Json.Null ];
      Json.Obj [];
      Json.Obj
        [
          ("k", Json.Str "v");
          ("nested", Json.Obj [ ("a", Json.Arr [ Json.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = Json.to_string v in
      match Json.parse s with
      | Ok v' ->
        Alcotest.(check bool) ("roundtrip " ^ s) true (json_eq v v')
      | Error e -> Alcotest.failf "reparse of %s failed: %s" s e)
    values

let test_json_parse () =
  let ok s = Result.is_ok (Json.parse s)
  and err s = Result.is_error (Json.parse s) in
  Alcotest.(check bool) "whitespace" true (ok " { \"a\" : [ 1 , 2 ] } ");
  Alcotest.(check bool) "unicode escape" true
    (match Json.parse "\"\\u0041\\u00e9\"" with
    | Ok (Json.Str s) -> s = "A\xc3\xa9"
    | _ -> false);
  Alcotest.(check bool) "surrogate pair" true
    (match Json.parse "\"\\ud83d\\ude00\"" with
    | Ok (Json.Str s) -> String.length s = 4
    | _ -> false);
  Alcotest.(check bool) "exponent" true
    (match Json.parse "1.5e2" with Ok (Json.Num n) -> n = 150. | _ -> false);
  Alcotest.(check bool) "trailing garbage" true (err "{} x");
  Alcotest.(check bool) "bare word" true (err "verdict");
  Alcotest.(check bool) "unterminated string" true (err "\"abc");
  Alcotest.(check bool) "trailing comma" true (err "[1,]");
  Alcotest.(check bool) "empty input" true (err "");
  Alcotest.(check bool) "integral floats as ints" true
    (Json.to_string (Json.Num 42.) = "42")

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)

let test_protocol_requests () =
  let reqs =
    [
      Protocol.Solve
        {
          Protocol.sq_id = "r1";
          sq_lang = Protocol.Suf;
          sq_text = "(= x y)";
          sq_method = Decide.Hybrid_at 700;
          sq_timeout_s = Some 2.5;
          sq_trace = None;
        };
      Protocol.Solve
        {
          Protocol.sq_id = "";
          sq_lang = Protocol.Smt;
          sq_text = "(assert true)(check-sat)";
          sq_method = Decide.Hybrid_default;
          sq_timeout_s = None;
          sq_trace =
            Some
              {
                Protocol.tc_rid = "fl-1-7";
                tc_path = [ "router" ];
              };
        };
      Protocol.Ping "p1";
      Protocol.Stats_req "s1";
      Protocol.Shutdown "bye-now";
    ]
  in
  List.iter
    (fun r ->
      let line = Protocol.request_to_line r in
      match Protocol.request_of_line line with
      | Ok r' ->
        Alcotest.(check string) ("request roundtrip " ^ line) line
          (Protocol.request_to_line r')
      | Error e -> Alcotest.failf "reparse of %s failed: %s" line e)
    reqs;
  (* defaults: op defaults to solve, id to "" *)
  (match Protocol.request_of_line "{\"formula\":\"(= x x)\"}" with
  | Ok (Protocol.Solve q) ->
    Alcotest.(check string) "default id" "" q.Protocol.sq_id;
    Alcotest.(check string) "text" "(= x x)" q.Protocol.sq_text
  | _ -> Alcotest.fail "expected default solve");
  Alcotest.(check bool) "malformed line" true
    (Result.is_error (Protocol.request_of_line "not json"))

let test_protocol_replies () =
  let replies =
    [
      Protocol.Ok_solve
        {
          Protocol.sv_id = "r1";
          sv_verdict = Protocol.Valid;
          sv_origin = Protocol.Solved;
          sv_digest = String.make 32 'a';
          sv_witness = None;
          sv_solve_ms = 12.5;
          sv_time_ms = 13.;
          sv_trace = None;
        };
      Protocol.Ok_solve
        {
          Protocol.sv_id = "r2";
          sv_verdict = Protocol.Invalid;
          sv_origin = Protocol.Cache_hit;
          sv_digest = String.make 32 'b';
          sv_witness = Some (String.make 32 'c');
          sv_solve_ms = 1.;
          sv_time_ms = 0.25;
          sv_trace =
            Some
              {
                Protocol.rt_rid = "fl-1-7";
                rt_served_by = "2";
                rt_hops =
                  [ ("shard.queue", 0.5); ("shard.solve", 1.25) ];
                rt_recv_wall = 1000.5;
                rt_recv_mono = 1000.5;
                rt_send_wall = 1000.625;
                rt_send_mono = 1000.625;
              };
        };
      Protocol.Ok_solve
        {
          Protocol.sv_id = "r3";
          sv_verdict = Protocol.Unknown "timeout";
          sv_origin = Protocol.Joined;
          sv_digest = String.make 32 'd';
          sv_witness = None;
          sv_solve_ms = 0.;
          sv_time_ms = 0.;
          sv_trace = None;
        };
      Protocol.Busy "r4";
      Protocol.Error ("r5", "parse error: oops");
      Protocol.Pong "p";
      Protocol.Stats ("s", Json.Obj [ ("requests", Json.Num 3.) ]);
      Protocol.Bye "q";
    ]
  in
  List.iter
    (fun r ->
      let line = Protocol.reply_to_line r in
      match Protocol.reply_of_line line with
      | Ok r' ->
        Alcotest.(check string) ("reply roundtrip " ^ line) line
          (Protocol.reply_to_line r')
      | Error e -> Alcotest.failf "reparse of %s failed: %s" line e)
    replies;
  Alcotest.(check string) "reply_id" "r4"
    (Protocol.reply_id (Protocol.Busy "r4"))

(* ------------------------------------------------------------------ *)
(* Bounded queue                                                       *)

let test_bqueue_bounds () =
  let q = Bqueue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Bqueue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Bqueue.try_push q 2);
  Alcotest.(check bool) "push 3 sheds" false (Bqueue.try_push q 3);
  Alcotest.(check int) "depth" 2 (Bqueue.length q);
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Bqueue.pop q);
  Alcotest.(check bool) "room again" true (Bqueue.try_push q 4);
  Bqueue.close q;
  Alcotest.(check bool) "closed rejects" false (Bqueue.try_push q 5);
  Alcotest.(check bool) "closed blocks reject" false (Bqueue.push q 5);
  Alcotest.(check (option int)) "drains 2" (Some 2) (Bqueue.pop q);
  Alcotest.(check (option int)) "drains 4" (Some 4) (Bqueue.pop q);
  Alcotest.(check (option int)) "then empty" None (Bqueue.pop q)

let test_bqueue_concurrent () =
  let q = Bqueue.create ~capacity:4 in
  let n = 500 in
  let producers =
    List.init 2 (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to n - 1 do
              ignore (Bqueue.push q ((p * n) + i))
            done))
  in
  let consumers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            let rec loop acc =
              match Bqueue.pop q with
              | Some v -> loop (v :: acc)
              | None -> acc
            in
            loop []))
  in
  List.iter Domain.join producers;
  Bqueue.close q;
  let received = List.concat_map Domain.join consumers in
  Alcotest.(check int) "all items received" (2 * n) (List.length received);
  Alcotest.(check int) "no duplicates" (2 * n)
    (List.length (List.sort_uniq compare received))

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)

let test_cache_lru () =
  (* one shard makes the eviction order deterministic *)
  let c = Cache.create ~shards:1 ~capacity:2 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  (* touching [a] makes [b] the least recently used *)
  Alcotest.(check (option int)) "hit a" (Some 1) (Cache.find c "a");
  Cache.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Cache.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Cache.find c "c");
  let s = Cache.stats c in
  Alcotest.(check int) "evictions" 1 s.Cache.evictions;
  Alcotest.(check int) "size" 2 s.Cache.size;
  (* overwrite does not evict *)
  Cache.add c "a" 10;
  Alcotest.(check (option int)) "overwrite" (Some 10) (Cache.find c "a");
  Alcotest.(check (option int)) "c still there" (Some 3) (Cache.find c "c");
  Cache.clear c;
  Alcotest.(check (option int)) "cleared" None (Cache.find c "a");
  let disabled = Cache.create ~shards:1 ~capacity:0 () in
  Cache.add disabled "k" 1;
  Alcotest.(check (option int)) "capacity 0 stores nothing" None
    (Cache.find disabled "k")

let test_cache_find_or_compute () =
  let c = Cache.create ~shards:1 ~capacity:8 () in
  let runs = ref 0 in
  let compute cacheable () =
    incr runs;
    (!runs, cacheable)
  in
  let v, o = Cache.find_or_compute c "k" ~compute:(compute true) in
  Alcotest.(check int) "computed value" 1 v;
  Alcotest.(check bool) "computed origin" true (o = Cache.Computed);
  let v, o = Cache.find_or_compute c "k" ~compute:(compute true) in
  Alcotest.(check int) "cached value" 1 v;
  Alcotest.(check bool) "hit origin" true (o = Cache.Hit);
  (* a computation that declines caching is re-run next time *)
  let v, _ = Cache.find_or_compute c "u" ~compute:(compute false) in
  Alcotest.(check int) "uncached first" 2 v;
  let v, o = Cache.find_or_compute c "u" ~compute:(compute false) in
  Alcotest.(check int) "uncached recomputed" 3 v;
  Alcotest.(check bool) "recomputed origin" true (o = Cache.Computed);
  (* an exception clears the in-flight entry so later calls retry *)
  (match Cache.find_or_compute c "boom" ~compute:(fun () -> failwith "x") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected the computation's exception");
  let v, _ = Cache.find_or_compute c "boom" ~compute:(compute true) in
  Alcotest.(check int) "retried after failure" 4 v

let test_cache_single_flight () =
  let c = Cache.create ~shards:1 ~capacity:8 () in
  let computes = Atomic.make 0 in
  let gate = Atomic.make false in
  let worker () =
    Cache.find_or_compute c "shared" ~compute:(fun () ->
        Atomic.incr computes;
        while not (Atomic.get gate) do
          Domain.cpu_relax ()
        done;
        ("value", true))
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  (* let everyone pile onto the in-flight entry, then open the gate *)
  while Atomic.get computes = 0 do
    Domain.cpu_relax ()
  done;
  Unix.sleepf 0.05;
  Atomic.set gate true;
  let results = List.map Domain.join domains in
  Alcotest.(check int) "computed exactly once" 1 (Atomic.get computes);
  List.iter
    (fun (v, _) -> Alcotest.(check string) "same value" "value" v)
    results;
  let computed =
    List.length (List.filter (fun (_, o) -> o = Cache.Computed) results)
  in
  let joined =
    List.length (List.filter (fun (_, o) -> o = Cache.Joined) results)
  in
  Alcotest.(check int) "one computer" 1 computed;
  Alcotest.(check int) "three joiners" 3 joined;
  Alcotest.(check int) "stats joins" 3 (Cache.stats c).Cache.joins

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

let verdict_string (r : Engine.reply) =
  match r with
  | Ok o -> Protocol.verdict_to_string o.Engine.o_verdict
  | Error e -> "error:" ^ e

(* The satellite property: for random formulas, the served answer — cold,
   then from the cache — always equals a fresh [Decide.decide] verdict. *)
let prop_cache_matches_decide =
  QCheck2.Test.make ~name:"served verdict = fresh Decide.decide" ~count:15
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let ctx = Ast.create_ctx () in
      let f = Random_formula.generate Random_formula.small ctx ~seed in
      let text = Ast.to_string f in
      let expected =
        (Decide.decide ~deadline:(Deadline.after_wall 20.) ctx f)
          .Decide.verdict
      in
      let expected = Protocol.verdict_to_string (Protocol.verdict_of_sep expected) in
      let engine = Engine.create ~workers:1 ~cache_capacity:64 () in
      Fun.protect
        ~finally:(fun () -> Engine.shutdown engine)
        (fun () ->
          let job = Engine.job ~timeout_s:20. text in
          let first = Option.get (Engine.solve ~block:true engine job) in
          let second = Option.get (Engine.solve ~block:true engine job) in
          let hit_ok =
            match (first, second) with
            | Ok a, Ok b -> (
              match a.Engine.o_verdict with
              | Protocol.Unknown _ -> true (* unknowns are never cached *)
              | _ ->
                b.Engine.o_origin = Protocol.Cache_hit
                && a.Engine.o_digest = b.Engine.o_digest)
            | _ -> false
          in
          verdict_string first = expected
          && verdict_string second = expected
          && hit_ok))

let test_engine_shedding () =
  let started = Atomic.make 0 in
  let gate = Atomic.make false in
  let backend ~method_:_ ~deadline:_ ctx _f =
    Atomic.incr started;
    while not (Atomic.get gate) do
      Domain.cpu_relax ()
    done;
    ignore ctx;
    Verdict.Valid
  in
  let engine =
    Engine.create ~workers:1 ~queue_capacity:1 ~cache_capacity:64 ~backend ()
  in
  let replies = Bqueue.create ~capacity:8 in
  let submit text =
    Engine.submit engine (Engine.job text) (fun r ->
        ignore (Bqueue.try_push replies (text, r)))
  in
  Alcotest.(check bool) "first accepted" true (submit "(= a a)");
  (* wait until the worker owns it, so the queue is empty again *)
  while Atomic.get started = 0 do
    Domain.cpu_relax ()
  done;
  Alcotest.(check bool) "second queued" true (submit "(= b b)");
  Alcotest.(check bool) "third shed" false (submit "(= c c)");
  Alcotest.(check int) "shed counted" 1 (Engine.stats engine).Engine.st_shed;
  Atomic.set gate true;
  let r1 = Option.get (Bqueue.pop replies) in
  let r2 = Option.get (Bqueue.pop replies) in
  List.iter
    (fun (text, r) ->
      Alcotest.(check string) (text ^ " solved") "valid" (verdict_string r))
    [ r1; r2 ];
  Engine.shutdown engine;
  let s = Engine.stats engine in
  Alcotest.(check int) "completed" 2 s.Engine.st_completed;
  Alcotest.(check int) "submitted" 2 s.Engine.st_submitted

let test_engine_deadline_unknown () =
  (* a backend that honors its deadline: spins until the budget fires; the
     engine must answer unknown and must not cache it *)
  let backend ~method_:_ ~deadline ctx _f =
    ignore ctx;
    match Deadline.remaining deadline with
    | Some s when s > 1. -> Verdict.Valid
    | _ ->
      let rec spin () =
        Deadline.check deadline;
        Unix.sleepf 0.002;
        spin ()
      in
      spin ()
  in
  let engine = Engine.create ~workers:1 ~cache_capacity:64 ~backend () in
  let r1 =
    Option.get
      (Engine.solve ~block:true engine (Engine.job ~timeout_s:0.05 "(= x y)"))
  in
  (match r1 with
  | Ok o -> (
    match o.Engine.o_verdict with
    | Protocol.Unknown _ -> ()
    | v ->
      Alcotest.failf "expected unknown, got %s"
        (Protocol.verdict_to_string v))
  | Error e -> Alcotest.failf "expected unknown, got error %s" e);
  (* same formula under a generous budget: the unknown was not cached *)
  let r2 =
    Option.get
      (Engine.solve ~block:true engine (Engine.job ~timeout_s:30. "(= x y)"))
  in
  (match r2 with
  | Ok o ->
    Alcotest.(check string) "decisive under big budget" "valid"
      (Protocol.verdict_to_string o.Engine.o_verdict);
    Alcotest.(check bool) "not a cache hit" true
      (o.Engine.o_origin = Protocol.Solved)
  | Error e -> Alcotest.failf "unexpected error %s" e);
  Engine.shutdown engine

(* The trace-context handoff (the fleet's correctness property): a job
   built from a wire trace adopts the fleet rid and upstream hop path as
   the ambient context of everything recorded while serving it, and the
   next untraced job on the same worker gets a fresh server-minted rid —
   installing a whole context, not just a rid, is what prevents stale
   ambient state from leaking between requests that share a domain. *)
let test_engine_trace_adoption () =
  let seen = Bqueue.create ~capacity:8 in
  let backend ~method_:_ ~deadline:_ ctx _f =
    ignore ctx;
    ignore (Bqueue.try_push seen (Trace_ctx.rid (), Trace_ctx.path ()));
    Verdict.Valid
  in
  let engine = Engine.create ~workers:1 ~cache_capacity:64 ~backend () in
  let solve job = Option.get (Engine.solve ~block:true engine job) in
  let traced =
    solve (Engine.job ~rid:"fl-9-1" ~path:[ "router" ] "(= a a)")
  in
  (* Submitting from inside an ambient context must not leak it into the
     job: the job minted its own rid at creation. *)
  (* structurally distinct from the first formula — names wash out of
     the digest, so a mere rename would be answered from the cache and
     the backend (and this test's probe) would never run *)
  let untraced =
    Trace_ctx.with_rid "stale-ambient" (fun () ->
        solve (Engine.job "(= b (f b))"))
  in
  (match (traced, untraced) with
  | Ok a, Ok b ->
    Alcotest.(check bool) "queue time measured" true
      (a.Engine.o_queue_ms >= 0. && b.Engine.o_queue_ms >= 0.)
  | _ -> Alcotest.fail "expected two Ok outcomes");
  (match Bqueue.pop seen with
  | Some (rid, path) ->
    Alcotest.(check string) "wire rid adopted" "fl-9-1" rid;
    Alcotest.(check bool) "upstream hop is the path root" true
      (match path with "router" :: _ -> true | _ -> false)
  | None -> Alcotest.fail "backend never ran for the traced job");
  (match Bqueue.pop seen with
  | Some (rid, path) ->
    Alcotest.(check bool) "untraced job gets a minted rq- rid" true
      (String.length rid > 3 && String.sub rid 0 3 = "rq-");
    Alcotest.(check bool) "no stale upstream hops" true
      (not (List.mem "router" path) && rid <> "stale-ambient")
  | None -> Alcotest.fail "backend never ran for the untraced job");
  Engine.shutdown engine

(* Wire compatibility: a solve without a trace object and a reply without
   one parse to None — old clients and old servers interoperate with new
   ones; and the trace context round-trips exactly when present. *)
let test_protocol_trace_compat () =
  (match Protocol.request_of_line "{\"op\":\"solve\",\"formula\":\"(= x x)\"}" with
  | Ok (Protocol.Solve q) ->
    Alcotest.(check bool) "absent trace parses to None" true
      (q.Protocol.sq_trace = None)
  | _ -> Alcotest.fail "expected solve");
  (match
     Protocol.request_of_line
       "{\"op\":\"solve\",\"formula\":\"(= x x)\",\"trace\":{\"rid\":\"fl-1-2\",\"path\":[\"router\",\"edge\"]}}"
   with
  | Ok (Protocol.Solve q) -> (
    match q.Protocol.sq_trace with
    | Some tc ->
      Alcotest.(check string) "rid" "fl-1-2" tc.Protocol.tc_rid;
      Alcotest.(check (list string)) "path" [ "router"; "edge" ]
        tc.Protocol.tc_path
    | None -> Alcotest.fail "trace dropped")
  | _ -> Alcotest.fail "expected solve");
  (* a reply trace survives print -> parse with its hop list ordered *)
  let reply =
    Protocol.Ok_solve
      {
        Protocol.sv_id = "t";
        sv_verdict = Protocol.Valid;
        sv_origin = Protocol.Solved;
        sv_digest = String.make 32 'e';
        sv_witness = None;
        sv_solve_ms = 2.;
        sv_time_ms = 3.;
        sv_trace =
          Some
            {
              Protocol.rt_rid = "fl-1-3";
              rt_served_by = "1";
              rt_hops =
                [
                  ("router.parse", 0.1); ("router.queue", 0.2);
                  ("wire", 0.3); ("shard.queue", 0.4);
                  ("shard.solve", 1.9); ("reply", 0.1);
                ];
              (* realistic epoch-seconds anchors: the parse must preserve
                 them to sub-microsecond, or hop arithmetic downstream
                 turns to noise *)
              rt_recv_wall = 1786307311.712345;
              rt_recv_mono = 1786307311.712345;
              rt_send_wall = 1786307311.7159;
              rt_send_mono = 1786307311.7159;
            };
      }
  in
  match Protocol.reply_of_line (Protocol.reply_to_line reply) with
  | Ok (Protocol.Ok_solve s) -> (
    match s.Protocol.sv_trace with
    | Some tr ->
      Alcotest.(check string) "rid" "fl-1-3" tr.Protocol.rt_rid;
      Alcotest.(check string) "served_by" "1" tr.Protocol.rt_served_by;
      Alcotest.(check (list (pair string (float 1e-9)))) "hops in order"
        [
          ("router.parse", 0.1); ("router.queue", 0.2); ("wire", 0.3);
          ("shard.queue", 0.4); ("shard.solve", 1.9); ("reply", 0.1);
        ]
        tr.Protocol.rt_hops;
      Alcotest.(check (float 1e-7)) "recv anchor exact" 1786307311.712345
        tr.Protocol.rt_recv_mono;
      Alcotest.(check (float 1e-7)) "send anchor exact" 1786307311.7159
        tr.Protocol.rt_send_mono
    | None -> Alcotest.fail "reply trace dropped")
  | _ -> Alcotest.fail "reply did not round-trip"

let test_engine_parse_error () =
  let engine = Engine.create ~workers:1 () in
  let r =
    Option.get (Engine.solve ~block:true engine (Engine.job "(= x"))
  in
  Alcotest.(check bool) "parse error surfaces" true (Result.is_error r);
  Alcotest.(check int) "error counted" 1 (Engine.stats engine).Engine.st_errors;
  Engine.shutdown engine

(* ------------------------------------------------------------------ *)
(* Protocol front ends                                                 *)

let test_serve_channels () =
  let requests =
    String.concat "\n"
      [
        Protocol.request_to_line (Protocol.Ping "p");
        Protocol.request_to_line
          (Protocol.Solve
             {
               Protocol.sq_id = "good";
               sq_lang = Protocol.Suf;
               sq_text = "(= x x)";
               sq_method = Decide.Hybrid_default;
               sq_timeout_s = Some 10.;
               sq_trace = None;
             });
        "this is not json";
        "";
        Protocol.request_to_line (Protocol.Stats_req "st");
        Protocol.request_to_line (Protocol.Shutdown "q");
      ]
    ^ "\n"
  in
  let in_path = Filename.temp_file "sufserve" ".in" in
  let out_path = Filename.temp_file "sufserve" ".out" in
  let oc = open_out in_path in
  output_string oc requests;
  close_out oc;
  let engine = Engine.create ~workers:1 () in
  let ic = open_in in_path in
  let oc = open_out out_path in
  let outcome = Server.serve_channels engine ic oc in
  close_in ic;
  close_out oc;
  Engine.shutdown engine;
  Alcotest.(check bool) "shutdown request ends the loop" true
    (outcome = `Shutdown);
  let ic = open_in out_path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let replies =
    List.rev_map
      (fun l ->
        match Protocol.reply_of_line l with
        | Ok r -> r
        | Error e -> Alcotest.failf "bad reply line %s: %s" l e)
      !lines
  in
  let find id =
    List.find_opt (fun r -> Protocol.reply_id r = id) replies
  in
  (match find "p" with
  | Some (Protocol.Pong _) -> ()
  | _ -> Alcotest.fail "no pong");
  (match find "good" with
  | Some (Protocol.Ok_solve s) ->
    Alcotest.(check string) "solve verdict" "valid"
      (Protocol.verdict_to_string s.Protocol.sv_verdict)
  | _ -> Alcotest.fail "no solve reply");
  (match find "st" with
  | Some (Protocol.Stats _) -> ()
  | _ -> Alcotest.fail "no stats reply");
  (match find "q" with
  | Some (Protocol.Bye _) -> ()
  | _ -> Alcotest.fail "no bye");
  Alcotest.(check bool) "malformed line got an error reply" true
    (List.exists (function Protocol.Error _ -> true | _ -> false) replies);
  Sys.remove in_path;
  Sys.remove out_path

let test_serve_unix_end_to_end () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sufserve-%d.sock" (Unix.getpid ()))
  in
  let engine = Engine.create ~workers:2 () in
  let server = Domain.spawn (fun () -> Server.serve_unix engine ~path) in
  let client k =
    Domain.spawn (fun () ->
        let s = Session.connect ~retries:100 path in
        let r1 = Session.solve s ~id:"a" "(= x x)" in
        let r2 = Session.solve s ~id:"b" "(= x x)" in
        let r3 = Session.solve s ~id:"c" (Printf.sprintf "(= c%d d)" k) in
        Session.close s;
        (r1, r2, r3))
  in
  let clients = List.init 3 client in
  let results = List.map Domain.join clients in
  List.iter
    (fun (r1, r2, r3) ->
      (match r1 with
      | Protocol.Ok_solve s ->
        Alcotest.(check string) "valid over the wire" "valid"
          (Protocol.verdict_to_string s.Protocol.sv_verdict)
      | _ -> Alcotest.fail "expected ok for r1");
      (match r2 with
      | Protocol.Ok_solve s ->
        (* the session is serial: by the time r2 is sent, this client's own
           r1 answer is cached *)
        Alcotest.(check bool) "repeat answered from the cache" true
          (s.Protocol.sv_origin = Protocol.Cache_hit);
        Alcotest.(check string) "cached verdict" "valid"
          (Protocol.verdict_to_string s.Protocol.sv_verdict)
      | _ -> Alcotest.fail "expected ok for r2");
      match r3 with
      | Protocol.Ok_solve s ->
        Alcotest.(check string) "invalid over the wire" "invalid"
          (Protocol.verdict_to_string s.Protocol.sv_verdict);
        Alcotest.(check bool) "witness digest present" true
          (s.Protocol.sv_witness <> None)
      | _ -> Alcotest.fail "expected ok for r3")
    results;
  (* stats and shutdown *)
  let s = Session.connect ~retries:10 path in
  Alcotest.(check bool) "ping" true (Session.ping s);
  (match Session.stats s with
  | Some j ->
    Alcotest.(check bool) "stats counts the requests" true
      (match Json.member "submitted" j with
      | Some (Json.Num n) -> n >= 9.
      | _ -> false)
  | None -> Alcotest.fail "no stats");
  Session.shutdown s;
  Session.close s;
  Domain.join server;
  Engine.shutdown engine;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists path)

(* ------------------------------------------------------------------ *)
(* Telemetry: metrics op, HTTP scrape, stats quantiles, correlation    *)

module Obs = Sepsat_obs.Obs
module Metrics = Sepsat_obs.Metrics
module Log = Sepsat_obs.Log

let test_protocol_metrics_roundtrip () =
  (* request *)
  let line = Protocol.request_to_line (Protocol.Metrics_req "m1") in
  (match Protocol.request_of_line line with
  | Ok (Protocol.Metrics_req id) -> Alcotest.(check string) "req id" "m1" id
  | Ok _ -> Alcotest.fail "wrong request"
  | Error e -> Alcotest.failf "parse: %s" e);
  (* reply carries the exposition body and its content type *)
  let body = "# TYPE serve_requests counter\nserve_requests 3\n" in
  let rline = Protocol.reply_to_line (Protocol.Metrics ("m1", body)) in
  (match Protocol.reply_of_line rline with
  | Ok (Protocol.Metrics (id, b)) ->
    Alcotest.(check string) "reply id" "m1" id;
    Alcotest.(check string) "body survives the wire" body b
  | Ok _ -> Alcotest.fail "wrong reply"
  | Error e -> Alcotest.failf "parse: %s" e);
  Alcotest.(check string) "reply_id" "m1"
    (Protocol.reply_id (Protocol.Metrics ("m1", body)));
  (* the wire object advertises the scrape content type *)
  match Json.parse rline with
  | Ok j ->
    Alcotest.(check bool) "content_type on the wire" true
      (match Json.member "content_type" j with
      | Some (Json.Str s) -> s = Sepsat_obs.Prom.content_type
      | _ -> false)
  | Error e -> Alcotest.failf "reply not json: %s" e

let test_engine_metrics_always_on () =
  (* Operational counters move even with the observability layer off —
     [Engine.create] arms [Metrics.set_always_on]. *)
  Obs.disable ();
  Metrics.reset ();
  let engine = Engine.create ~workers:1 () in
  Fun.protect
    ~finally:(fun () ->
      Engine.shutdown engine;
      Metrics.set_always_on false)
    (fun () ->
      Alcotest.(check bool) "create armed always-on" true
        (Metrics.always_on ());
      ignore (Engine.solve ~block:true engine (Engine.job "(= x x)"));
      ignore (Engine.solve ~block:true engine (Engine.job "(= x x)"));
      Alcotest.(check int) "requests counted with obs off" 2
        (Metrics.get (Metrics.counter "serve.requests"));
      Alcotest.(check int) "cache hit counted" 1
        (Metrics.get (Metrics.counter "serve.cache.hits"));
      (* ...and the scrape body reflects them *)
      let body = Sepsat_obs.Prom.current () in
      let has_line l = List.mem l (String.split_on_char '\n' body) in
      Alcotest.(check bool) "scrape sees the counter" true
        (has_line "serve_requests 2"))

let test_engine_stats_quantiles () =
  Obs.disable ();
  let engine = Engine.create ~workers:1 () in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown engine)
    (fun () ->
      for i = 1 to 5 do
        ignore
          (Engine.solve ~block:true engine
             (Engine.job (Printf.sprintf "(= x%d x%d)" i i)))
      done;
      let s = Engine.stats engine in
      Alcotest.(check int) "window saw every request" 5 s.Engine.st_lat_count;
      Alcotest.(check bool) "p50 positive" true (s.Engine.st_p50_ms > 0.);
      Alcotest.(check bool) "quantiles ordered" true
        (s.Engine.st_p50_ms <= s.Engine.st_p90_ms
        && s.Engine.st_p90_ms <= s.Engine.st_p99_ms);
      (* stats_json exports them *)
      let j = Engine.stats_json engine in
      Alcotest.(check bool) "latency_ms object" true
        (match Json.member "latency_ms" j with
        | Some (Json.Obj kvs) ->
          List.mem_assoc "p50" kvs && List.mem_assoc "p90" kvs
          && List.mem_assoc "p99" kvs && List.mem_assoc "count" kvs
        | _ -> false))

(* Every span of a request — the request root and its descendants on the
   worker domain — carries the server-minted rid, so one rid filters the
   whole request out of a Chrome trace. *)
let test_engine_rid_tagged_spans () =
  Obs.disable ();
  Obs.reset ();
  Obs.enable ();
  let engine = Engine.create ~workers:1 () in
  let job = Engine.job ~id:"ridspan" "(= rs rs)" in
  Fun.protect
    ~finally:(fun () ->
      Engine.shutdown engine;
      Obs.disable ())
    (fun () ->
      (match Engine.solve ~block:true engine job with
      | Some (Ok _) -> ()
      | _ -> Alcotest.fail "solve failed");
      let rids_of name =
        List.filter_map
          (function
            | Sepsat_obs.Obs.Span { name = n; rid; _ } when n = name ->
              Some rid
            | _ -> None)
          (Sepsat_obs.Obs.events ())
      in
      (match rids_of "serve.request" with
      | rid :: _ ->
        Alcotest.(check string) "request root carries the job rid"
          job.Engine.jb_rid rid
      | [] -> Alcotest.fail "no serve.request span");
      match rids_of "serve.solve" with
      | rid :: _ ->
        Alcotest.(check string) "descendant span inherits the rid"
          job.Engine.jb_rid rid
      | [] -> Alcotest.fail "no serve.solve span")

(* stats carries the p99 exemplar rid, and stats_json exposes the
   histogram exemplars and live-lane table. *)
let test_engine_stats_exemplars () =
  Obs.disable ();
  let engine = Engine.create ~workers:1 () in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown engine)
    (fun () ->
      (* Formulas whose negation needs real CDCL search, so the solver's
         solve-start progress tick fires (a trivially-false instance is
         answered before search begins and feeds no lane). *)
      for i = 1 to 4 do
        ignore
          (Engine.solve ~block:true engine
             (Engine.job (Printf.sprintf "(= (f ex%d) (f ey%d))" i i)))
      done;
      let s = Engine.stats engine in
      Alcotest.(check bool) "p99 exemplar rid minted by the server" true
        (String.length s.Engine.st_p99_rid > 3
        && String.sub s.Engine.st_p99_rid 0 3 = "rq-");
      Alcotest.(check bool) "lanes table populated by progress ticks" true
        (s.Engine.st_lanes <> []);
      let j = Engine.stats_json engine in
      (match Json.member "latency_ms" j with
      | Some lat ->
        Alcotest.(check (option string)) "p99_rid exported"
          (Some s.Engine.st_p99_rid)
          (Json.mem_str "p99_rid" lat)
      | None -> Alcotest.fail "no latency_ms object");
      (match Json.member "exemplars" j with
      | Some (Json.Arr (_ :: _ as exes)) ->
        List.iter
          (fun e ->
            (match Json.mem_str "rid" e with
            | Some rid ->
              Alcotest.(check bool) "exemplar rid minted" true
                (String.length rid > 3 && String.sub rid 0 3 = "rq-")
            | None -> Alcotest.fail "exemplar without rid");
            Alcotest.(check bool) "exemplar value positive" true
              (match Json.mem_num "value_s" e with
              | Some v -> v > 0.
              | None -> false))
          exes
      | _ -> Alcotest.fail "no exemplars array");
      match Json.member "lanes" j with
      | Some (Json.Arr lanes) ->
        Alcotest.(check bool) "lanes exported" true (lanes <> []);
        List.iter
          (fun ln ->
            Alcotest.(check bool) "lane has tid and name" true
              (Json.mem_int "tid" ln <> None && Json.mem_str "name" ln <> None))
          lanes
      | _ -> Alcotest.fail "no lanes array")

(* The acceptance property: every served request is reconstructible from
   the JSON log stream by correlation id. *)
let test_engine_log_correlation () =
  let lines = ref [] in
  let mu = Mutex.create () in
  Log.enable ~sink:(fun l -> Mutex.protect mu (fun () -> lines := l :: !lines)) ();
  let engine = Engine.create ~workers:2 () in
  let ids = List.init 4 (fun i -> Printf.sprintf "rq-corr-%d" i) in
  Fun.protect
    ~finally:(fun () ->
      Engine.shutdown engine;
      Log.disable ())
    (fun () ->
      List.iteri
        (fun i id ->
          let text =
            if i = 3 then "(= broken" (* errors must correlate too *)
            else Printf.sprintf "(= c%d c%d)" i i
          in
          ignore (Engine.solve ~block:true engine (Engine.job ~id text)))
        ids);
  let parsed =
    List.map
      (fun l ->
        match Json.parse l with
        | Ok (Json.Obj kvs) -> kvs
        | _ -> Alcotest.failf "log line is not a json object: %s" l)
      !lines
  in
  let str k kvs =
    match List.assoc_opt k kvs with Some (Json.Str s) -> Some s | _ -> None
  in
  List.iter
    (fun id ->
      let mine = List.filter (fun kvs -> str "id" kvs = Some id) parsed in
      Alcotest.(check bool) (id ^ " has log lines") true (mine <> []);
      let events = List.filter_map (str "event") mine in
      Alcotest.(check bool) (id ^ " has serve.request") true
        (List.mem "serve.request" events);
      Alcotest.(check bool) (id ^ " has a terminal event") true
        (List.mem "serve.reply" events || List.mem "serve.error" events);
      (* one rid per request, present on every line of that request *)
      match List.filter_map (str "rid") mine with
      | [] -> Alcotest.fail (id ^ " lines carry no rid")
      | rid :: rest as rids ->
        Alcotest.(check int) (id ^ " rid on every line") (List.length mine)
          (List.length rids);
        List.iter (Alcotest.(check string) (id ^ " single rid") rid) rest)
    ids

let test_serve_channels_metrics_op () =
  let requests =
    String.concat "\n"
      [
        Protocol.request_to_line (Protocol.Solve
          {
            Protocol.sq_id = "warm";
            sq_lang = Protocol.Suf;
            sq_text = "(= m m)";
            sq_method = Decide.Hybrid_default;
            sq_timeout_s = Some 10.;
            sq_trace = None;
          });
        Protocol.request_to_line (Protocol.Metrics_req "m");
        Protocol.request_to_line (Protocol.Shutdown "q");
      ]
    ^ "\n"
  in
  let in_path = Filename.temp_file "sufmetrics" ".in" in
  let out_path = Filename.temp_file "sufmetrics" ".out" in
  let oc = open_out in_path in
  output_string oc requests;
  close_out oc;
  let engine = Engine.create ~workers:1 () in
  (* the registry is process-global: zero it so the scrape value below is
     this test's traffic alone *)
  Metrics.reset ();
  let ic = open_in in_path in
  let oc = open_out out_path in
  ignore (Server.serve_channels engine ic oc);
  close_in ic;
  close_out oc;
  Engine.shutdown engine;
  let ic = open_in out_path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove in_path;
  Sys.remove out_path;
  let metrics_reply =
    List.find_map
      (fun l ->
        match Protocol.reply_of_line l with
        | Ok (Protocol.Metrics (id, body)) -> Some (id, body)
        | _ -> None)
      !lines
  in
  match metrics_reply with
  | None -> Alcotest.fail "no metrics reply"
  | Some (id, body) ->
    Alcotest.(check string) "id echoed" "m" id;
    let lines = String.split_on_char '\n' body in
    Alcotest.(check bool) "typed exposition" true
      (List.mem "# TYPE serve_requests counter" lines);
    (* solves are answered asynchronously, so no exact value here — just a
       well-formed sample (the deterministic value check is the always-on
       test above) *)
    let sample =
      List.find_opt
        (fun l ->
          String.length l > 15 && String.sub l 0 15 = "serve_requests ")
        lines
    in
    match sample with
    | None -> Alcotest.fail "no serve_requests sample"
    | Some l ->
      let v = String.sub l 15 (String.length l - 15) in
      Alcotest.(check bool) "sample value parses" true
        (Float.is_finite (float_of_string v))

(* The dump op returns the flight recorder as one JSON body; after a
   served request, the dump holds that request's records. *)
let test_serve_channels_dump_op () =
  let requests =
    String.concat "\n"
      [
        Protocol.request_to_line (Protocol.Dump_req "d");
        Protocol.request_to_line (Protocol.Shutdown "q");
      ]
    ^ "\n"
  in
  let in_path = Filename.temp_file "sufdump" ".in" in
  let out_path = Filename.temp_file "sufdump" ".out" in
  let oc = open_out in_path in
  output_string oc requests;
  close_out oc;
  Sepsat_obs.Flight.reset ();
  let engine = Engine.create ~workers:1 () in
  (* Serve one request to completion first (the protocol answers solves
     asynchronously, so an in-band solve could land after the dump). *)
  (match Engine.solve ~block:true engine (Engine.job "(= fd fd)") with
  | Some (Ok _) -> ()
  | _ -> Alcotest.fail "warmup solve failed");
  let ic = open_in in_path in
  let oc = open_out out_path in
  ignore (Server.serve_channels engine ic oc);
  close_in ic;
  close_out oc;
  Engine.shutdown engine;
  let ic = open_in out_path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove in_path;
  Sys.remove out_path;
  let dump_reply =
    List.find_map
      (fun l ->
        match Protocol.reply_of_line l with
        | Ok (Protocol.Dump (id, body)) -> Some (id, body)
        | _ -> None)
      !lines
  in
  match dump_reply with
  | None -> Alcotest.fail "no dump reply"
  | Some (id, body) ->
    Alcotest.(check string) "id echoed" "d" id;
    (match Json.parse body with
    | Error e -> Alcotest.fail ("dump body does not parse: " ^ e)
    | Ok j ->
      Alcotest.(check (option string)) "schema" (Some "sepsat-flight-1")
        (Json.mem_str "schema" j);
      match Json.member "records" j with
      | Some (Json.Arr (_ :: _ as rs)) ->
        (* The served request left rid-tagged records behind. *)
        Alcotest.(check bool) "a request record is present" true
          (List.exists
             (fun r ->
               match Json.mem_str "rid" r with
               | Some rid ->
                 String.length rid > 3 && String.sub rid 0 3 = "rq-"
               | None -> false)
             rs)
      | _ -> Alcotest.fail "dump has no records")

let test_serve_metrics_http () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sufmetrics-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  Metrics.set_always_on true;
  Metrics.incr (Metrics.counter "serve.requests");
  Metrics.set_always_on false;
  let stop = Atomic.make false in
  let th = Server.serve_metrics ~path ~stop in
  let scrape target =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    let req = Printf.sprintf "GET %s HTTP/1.0\r\nHost: x\r\n\r\n" target in
    ignore (Unix.write_substring fd req 0 (String.length req));
    let buf = Buffer.create 1024 in
    let chunk = Bytes.create 1024 in
    let rec drain () =
      match Unix.read fd chunk 0 1024 with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        drain ()
    in
    drain ();
    Unix.close fd;
    Buffer.contents buf
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join th)
    (fun () ->
      let resp = scrape "/metrics" in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "200" true (contains resp "HTTP/1.0 200 OK");
      Alcotest.(check bool) "prometheus content type" true
        (contains resp "Content-Type: text/plain; version=0.0.4");
      Alcotest.(check bool) "content length framed" true
        (contains resp "Content-Length: ");
      Alcotest.(check bool) "typed body" true
        (contains resp "# TYPE serve_requests counter");
      let missing = scrape "/nope" in
      Alcotest.(check bool) "404 elsewhere" true
        (contains missing "HTTP/1.0 404 Not Found"));
  Alcotest.(check bool) "socket removed on stop" false (Sys.file_exists path)

(* ------------------------------------------------------------------ *)
(* Load generator                                                      *)

let test_loadgen_smoke () =
  let config =
    {
      Loadgen.default with
      Loadgen.clients = 2;
      repeats = 2;
      bench_names = [ "cache.5"; "tv.1" ];
      workers = 2;
    }
  in
  let r = Loadgen.run config in
  Alcotest.(check int) "requests" 8 r.Loadgen.r_requests;
  Alcotest.(check int) "all ok" 8 r.Loadgen.r_ok;
  Alcotest.(check int) "no errors" 0 r.Loadgen.r_errors;
  Alcotest.(check (list (triple string string string))) "no mismatches" []
    r.Loadgen.r_mismatches;
  Alcotest.(check bool) "cache was exercised" true
    (r.Loadgen.r_hit.Loadgen.l_count + r.Loadgen.r_joined.Loadgen.l_count > 0);
  (* the JSON report parses back *)
  let path = Filename.temp_file "loadgen" ".json" in
  Loadgen.write_json path r;
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "report is valid json" true
    (Result.is_ok (Json.parse line))

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse" `Quick test_json_parse;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "requests" `Quick test_protocol_requests;
          Alcotest.test_case "replies" `Quick test_protocol_replies;
          Alcotest.test_case "trace context compat and roundtrip" `Quick
            test_protocol_trace_compat;
        ] );
      ( "bqueue",
        [
          Alcotest.test_case "bounds and close" `Quick test_bqueue_bounds;
          Alcotest.test_case "concurrent" `Quick test_bqueue_concurrent;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_cache_lru;
          Alcotest.test_case "find_or_compute" `Quick
            test_cache_find_or_compute;
          Alcotest.test_case "single flight" `Quick test_cache_single_flight;
        ] );
      ( "engine",
        [
          QCheck_alcotest.to_alcotest prop_cache_matches_decide;
          Alcotest.test_case "shedding" `Quick test_engine_shedding;
          Alcotest.test_case "deadline yields unknown" `Quick
            test_engine_deadline_unknown;
          Alcotest.test_case "parse error" `Quick test_engine_parse_error;
          Alcotest.test_case "wire trace adoption, no stale context" `Quick
            test_engine_trace_adoption;
        ] );
      ( "server",
        [
          Alcotest.test_case "channels" `Quick test_serve_channels;
          Alcotest.test_case "unix socket" `Quick test_serve_unix_end_to_end;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "metrics op roundtrip" `Quick
            test_protocol_metrics_roundtrip;
          Alcotest.test_case "always-on serve metrics" `Quick
            test_engine_metrics_always_on;
          Alcotest.test_case "stats rolling quantiles" `Quick
            test_engine_stats_quantiles;
          Alcotest.test_case "logs correlate every request" `Quick
            test_engine_log_correlation;
          Alcotest.test_case "spans carry the request rid" `Quick
            test_engine_rid_tagged_spans;
          Alcotest.test_case "p99 exemplar rid, exemplars and lanes" `Quick
            test_engine_stats_exemplars;
          Alcotest.test_case "metrics over the protocol" `Quick
            test_serve_channels_metrics_op;
          Alcotest.test_case "flight dump over the protocol" `Quick
            test_serve_channels_dump_op;
          Alcotest.test_case "GET /metrics over http" `Quick
            test_serve_metrics_http;
        ] );
      ("loadgen", [ Alcotest.test_case "smoke" `Quick test_loadgen_smoke ]);
    ]
