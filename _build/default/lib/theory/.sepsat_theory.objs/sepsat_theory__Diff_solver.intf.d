lib/theory/diff_solver.mli:
