lib/theory/diff_solver.ml: Array Hashtbl List Queue Sepsat_util
