(* Constraint x − y <= c becomes edge y --c--> x; with a virtual source at
   distance 0 to every node, Bellman-Ford either stabilizes (the distances
   are a model) or keeps relaxing after |V| rounds (a negative cycle).

   Two usage modes coexist:
   - batch: [assert_le] + [infeasibility]/[model], which run Bellman-Ford
     from scratch (used by the lazy refinement loop, once per candidate
     model);
   - incremental: [assert_and_check], which maintains a satisfying potential
     function and repairs it per assertion, Cotton-Maler style (used by the
     SVC tableau, once per literal). The potentials are kept consistent only
     through this entry point. *)

module Vec = Sepsat_util.Vec

type 'a edge = { src : int; dst : int; weight : int; tag : 'a }

type undo =
  | Set_pi of int * int  (* node, previous potential *)
  | Drop_adj of int  (* node: remove the head of its adjacency list *)

type 'a t = {
  names : string Vec.t;
  index : (string, int) Hashtbl.t;
  mutable edges : 'a edge list;
  mutable marks : ('a edge list * int * int) list;
      (* saved (edges, n_edges, undo-trail length) *)
  mutable n_edges : int;
  out_adj : 'a edge list Vec.t;  (* node -> edges with src = node *)
  pi : int Vec.t;  (* potential satisfying pi(dst) <= pi(src) + w *)
  undo_trail : undo Vec.t;
}

let create () =
  {
    names = Vec.create ~dummy:"";
    index = Hashtbl.create 64;
    edges = [];
    marks = [];
    n_edges = 0;
    out_adj = Vec.create ~dummy:[];
    pi = Vec.create ~dummy:0;
    undo_trail = Vec.create ~dummy:(Set_pi (0, 0));
  }

let node t name =
  match Hashtbl.find_opt t.index name with
  | Some i -> i
  | None ->
    let i = Vec.size t.names in
    Vec.push t.names name;
    Vec.push t.out_adj [];
    Vec.push t.pi 0;
    Hashtbl.add t.index name i;
    i

let name t i = Vec.get t.names i

let num_nodes t = Vec.size t.names

let install_edge t e =
  t.edges <- e :: t.edges;
  t.n_edges <- t.n_edges + 1;
  Vec.set t.out_adj e.src (e :: Vec.get t.out_adj e.src);
  Vec.push t.undo_trail (Drop_adj e.src)

let assert_le t ~x ~y ~c ~tag = install_edge t { src = y; dst = x; weight = c; tag }

let push t = t.marks <- (t.edges, t.n_edges, Vec.size t.undo_trail) :: t.marks

let pop t =
  match t.marks with
  | [] -> invalid_arg "Diff_solver.pop: empty stack"
  | (edges, n, trail_len) :: rest ->
    t.edges <- edges;
    t.n_edges <- n;
    t.marks <- rest;
    while Vec.size t.undo_trail > trail_len do
      match Vec.pop t.undo_trail with
      | Set_pi (v, old) -> Vec.set t.pi v old
      | Drop_adj v -> (
        match Vec.get t.out_adj v with
        | _ :: rest -> Vec.set t.out_adj v rest
        | [] -> assert false)
    done

let set_pi t v value =
  Vec.push t.undo_trail (Set_pi (v, Vec.get t.pi v));
  Vec.set t.pi v value

(* Incremental repair after adding y --c--> x: decrease potentials along the
   cone of influence; a decrease reaching y closes a negative cycle. *)
let assert_and_check t ~x ~y ~c ~tag =
  install_edge t { src = y; dst = x; weight = c; tag };
  if Vec.get t.pi x <= Vec.get t.pi y + c then true
  else begin
    set_pi t x (Vec.get t.pi y + c);
    let queue = Queue.create () in
    Queue.add x queue;
    let consistent = ref true in
    while !consistent && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let rec scan = function
        | [] -> ()
        | e :: rest ->
          if !consistent && Vec.get t.pi e.dst > Vec.get t.pi u + e.weight
          then begin
            if e.dst = y then consistent := false
            else begin
              set_pi t e.dst (Vec.get t.pi u + e.weight);
              Queue.add e.dst queue
            end
          end;
          if !consistent then scan rest
      in
      scan (Vec.get t.out_adj u)
    done;
    !consistent
  end

(* Runs Bellman-Ford; returns either the distance array or a negative
   cycle. *)
let bellman_ford t =
  let n = num_nodes t in
  let dist = Array.make n 0 in
  let pred = Array.make n None in
  let edges = Array.of_list t.edges in
  let changed = ref true in
  let rounds = ref 0 in
  let last_relaxed = ref (-1) in
  while !changed && !rounds <= n do
    changed := false;
    incr rounds;
    Array.iter
      (fun e ->
        if dist.(e.src) + e.weight < dist.(e.dst) then begin
          dist.(e.dst) <- dist.(e.src) + e.weight;
          pred.(e.dst) <- Some e;
          changed := true;
          last_relaxed := e.dst
        end)
      edges
  done;
  if not !changed then Ok dist
  else begin
    (* A vertex relaxed in round n+1 has a predecessor chain of length more
       than n, which must therefore contain a cycle: walk predecessors n
       times to land on it, then collect it. *)
    let start = !last_relaxed in
    assert (start >= 0);
    let v = ref start in
    for _ = 1 to n do
      match pred.(!v) with Some e -> v := e.src | None -> assert false
    done;
    (* [!v] is on the cycle. *)
    let cycle = ref [] in
    let u = ref !v in
    let continue = ref true in
    while !continue do
      match pred.(!u) with
      | Some e ->
        cycle := e :: !cycle;
        u := e.src;
        if !u = !v then continue := false
      | None -> assert false
    done;
    Error !cycle
  end

let infeasibility t =
  match bellman_ford t with
  | Ok _ -> None
  | Error cycle -> Some (List.map (fun e -> e.tag) cycle)

let model t =
  match bellman_ford t with
  | Error _ -> invalid_arg "Diff_solver.model: infeasible"
  | Ok dist ->
    let shift = Array.fold_left (fun acc d -> max acc (-d)) 0 dist in
    List.init (num_nodes t) (fun i -> (name t i, dist.(i) + shift))
