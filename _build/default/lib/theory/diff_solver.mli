(** Integer difference-constraint solver.

    Decides conjunctions of bounds [x − y ≤ c] over the integers: the
    conjunction is satisfiable iff the constraint graph (one weighted edge per
    bound) has no negative-weight cycle, checked with Bellman-Ford. On
    inconsistency the solver reports the cycle's client tags — the minimal
    explanation the lazy (CVC-style) loop turns into a conflict clause. On
    consistency, shortest-path potentials yield a concrete integer model.

    Constraints are tagged with an arbitrary client value ['a] and managed on
    an assertion stack ([push]/[pop]), as the SVC-style case-splitting search
    requires. *)

type 'a t

val create : unit -> 'a t

val node : 'a t -> string -> int
(** Interns a name as a graph node. *)

val name : 'a t -> int -> string

val num_nodes : 'a t -> int

val assert_le : 'a t -> x:int -> y:int -> c:int -> tag:'a -> unit
(** Asserts [x − y <= c]. *)

val push : 'a t -> unit
(** Marks a backtracking point (constraints only; interned nodes persist). *)

val pop : 'a t -> unit
(** Discards constraints asserted since the matching [push]. *)

val assert_and_check : 'a t -> x:int -> y:int -> c:int -> tag:'a -> bool
(** Asserts [x − y <= c] and incrementally repairs the solution potentials
    (Cotton-Maler style): returns [false] iff the constraint closes a
    negative cycle, in which case the state is inconsistent until the
    enclosing [pop]. Much cheaper than a fresh {!infeasibility} run when
    constraints arrive one at a time, as in tableau search. *)

val infeasibility : 'a t -> 'a list option
(** [Some tags] — the asserted bounds are unsatisfiable and [tags] label a
    negative cycle witnessing it; [None] — satisfiable. *)

val model : 'a t -> (string * int) list
(** An integer assignment (shifted to be non-negative) satisfying every
    asserted bound. @raise Invalid_argument if the state is infeasible. *)
