module Solver = Sepsat_sat.Solver
module Lit = Sepsat_sat.Lit

type t = {
  solver : Solver.t;
  var_lits : (int, Lit.t) Hashtbl.t;  (* formula var index -> solver literal *)
  memo : (int, Lit.t) Hashtbl.t;  (* formula node id -> solver literal *)
  mutable const_true : Lit.t option;
  mutable n_clauses : int;
}

let create solver =
  {
    solver;
    var_lits = Hashtbl.create 256;
    memo = Hashtbl.create 1024;
    const_true = None;
    n_clauses = 0;
  }

let add_clause t c =
  t.n_clauses <- t.n_clauses + 1;
  Solver.add_clause t.solver c

let lit_of_var t i =
  match Hashtbl.find_opt t.var_lits i with
  | Some l -> l
  | None ->
    let l = Lit.pos (Solver.new_var t.solver) in
    Hashtbl.add t.var_lits i l;
    l

let find_var t i = Hashtbl.find_opt t.var_lits i

let true_lit t =
  match t.const_true with
  | Some l -> l
  | None ->
    let l = Lit.pos (Solver.new_var t.solver) in
    add_clause t [ l ];
    t.const_true <- Some l;
    l

let rec encode t (f : Formula.t) =
  match Hashtbl.find_opt t.memo f.id with
  | Some l -> l
  | None ->
    let l =
      match f.node with
      | Formula.True -> true_lit t
      | Formula.False -> Lit.neg (true_lit t)
      | Formula.Var i -> lit_of_var t i
      | Formula.Not g -> Lit.neg (encode t g)
      | Formula.And (a, b) ->
        let la = encode t a and lb = encode t b in
        let l = Lit.pos (Solver.new_var t.solver) in
        add_clause t [ Lit.neg l; la ];
        add_clause t [ Lit.neg l; lb ];
        add_clause t [ l; Lit.neg la; Lit.neg lb ];
        l
      | Formula.Or (a, b) ->
        let la = encode t a and lb = encode t b in
        let l = Lit.pos (Solver.new_var t.solver) in
        add_clause t [ Lit.neg l; la; lb ];
        add_clause t [ l; Lit.neg la ];
        add_clause t [ l; Lit.neg lb ];
        l
    in
    Hashtbl.add t.memo f.id l;
    l

let assert_root t f =
  let l = encode t f in
  add_clause t [ l ]

let clauses_added t = t.n_clauses
