(** Hash-consed propositional formula DAGs.

    This is the [F_bool] target language of every encoding. Nodes are
    hash-consed inside an explicit manager ({!ctx}) — the usual EDA circuit
    manager discipline — so structural equality is physical equality, shared
    subformulas are represented once, and DAG sizes (the paper's formula-size
    metric) are meaningful. Smart constructors perform constant folding and
    local simplification. *)

type ctx

type t = private { id : int; node : node }

and node =
  | True
  | False
  | Var of int  (** manager-allocated Boolean variable *)
  | Not of t
  | And of t * t
  | Or of t * t

val create_ctx : unit -> ctx

val tru : ctx -> t

val fls : ctx -> t

val of_bool : ctx -> bool -> t

val fresh_var : ctx -> t
(** A fresh Boolean variable node. *)

val var : ctx -> int -> t
(** The variable node of an already-allocated index.
    @raise Invalid_argument if the index was never allocated. *)

val var_index : t -> int
(** @raise Invalid_argument if the node is not a variable. *)

val nb_vars : ctx -> int
(** Number of variables allocated so far (indices are [0 .. nb_vars-1]). *)

val not_ : ctx -> t -> t

val and_ : ctx -> t -> t -> t

val or_ : ctx -> t -> t -> t

val implies : ctx -> t -> t -> t

val iff : ctx -> t -> t -> t

val xor : ctx -> t -> t -> t

val ite : ctx -> t -> t -> t -> t

val and_list : ctx -> t list -> t

val or_list : ctx -> t list -> t

val eval : (int -> bool) -> t -> bool
(** Evaluates under a variable assignment. *)

val size : t -> int
(** Number of distinct DAG nodes reachable from the root. *)

val pp : Format.formatter -> t -> unit
