lib/prop/formula.mli: Format
