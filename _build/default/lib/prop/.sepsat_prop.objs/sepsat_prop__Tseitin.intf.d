lib/prop/tseitin.mli: Formula Sepsat_sat
