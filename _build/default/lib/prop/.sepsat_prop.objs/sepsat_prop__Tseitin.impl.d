lib/prop/tseitin.ml: Formula Hashtbl Sepsat_sat
