lib/prop/formula.ml: Format Hashtbl List
