(** Tseitin CNF conversion into a live SAT solver.

    Each distinct formula DAG node is encoded once (sharing-preserving), so
    the clause count is linear in the DAG size, matching the translation the
    paper feeds to zChaff. Negations reuse the complemented literal and cost
    no variables or clauses. *)

type t

val create : Sepsat_sat.Solver.t -> t

val lit_of_var : t -> int -> Sepsat_sat.Lit.t
(** Solver literal standing for a formula variable index; allocated (and
    cached) on demand, so the caller can decode models. *)

val find_var : t -> int -> Sepsat_sat.Lit.t option
(** Like {!lit_of_var} but without allocating: [None] means the formula
    variable never reached the solver (its value is unconstrained). *)

val encode : t -> Formula.t -> Sepsat_sat.Lit.t
(** Returns the literal equisatisfiably representing the formula; definition
    clauses are added to the solver as a side effect. *)

val assert_root : t -> Formula.t -> unit
(** Encodes the formula and asserts it as a unit clause. *)

val clauses_added : t -> int
(** Total CNF clauses this encoder has pushed into the solver (the "# of CNF
    clauses" column of the paper's Fig. 2). *)
