type t = { id : int; node : node }

and node =
  | True
  | False
  | Var of int
  | Not of t
  | And of t * t
  | Or of t * t

type key =
  | KTrue
  | KFalse
  | KVar of int
  | KNot of int
  | KAnd of int * int
  | KOr of int * int

type ctx = {
  mutable next_id : int;
  mutable next_var : int;
  tbl : (key, t) Hashtbl.t;
}

let create_ctx () = { next_id = 0; next_var = 0; tbl = Hashtbl.create 4096 }

let mk ctx key node =
  match Hashtbl.find_opt ctx.tbl key with
  | Some f -> f
  | None ->
    let f = { id = ctx.next_id; node } in
    ctx.next_id <- ctx.next_id + 1;
    Hashtbl.add ctx.tbl key f;
    f

let tru ctx = mk ctx KTrue True

let fls ctx = mk ctx KFalse False

let of_bool ctx b = if b then tru ctx else fls ctx

let var ctx i =
  if i < 0 || i >= ctx.next_var then invalid_arg "Formula.var: unallocated";
  mk ctx (KVar i) (Var i)

let fresh_var ctx =
  let i = ctx.next_var in
  ctx.next_var <- ctx.next_var + 1;
  mk ctx (KVar i) (Var i)

let var_index f =
  match f.node with
  | Var i -> i
  | True | False | Not _ | And _ | Or _ ->
    invalid_arg "Formula.var_index: not a variable"

let nb_vars ctx = ctx.next_var

let not_ ctx f =
  match f.node with
  | True -> fls ctx
  | False -> tru ctx
  | Not g -> g
  | Var _ | And _ | Or _ -> mk ctx (KNot f.id) (Not f)

let and_ ctx a b =
  match (a.node, b.node) with
  | False, _ | _, False -> fls ctx
  | True, _ -> b
  | _, True -> a
  | _ ->
    if a == b then a
    else if (match a.node with Not a' -> a' == b | _ -> false) then fls ctx
    else if (match b.node with Not b' -> b' == a | _ -> false) then fls ctx
    else
      let x, y = if a.id <= b.id then (a, b) else (b, a) in
      mk ctx (KAnd (x.id, y.id)) (And (x, y))

let or_ ctx a b =
  match (a.node, b.node) with
  | True, _ | _, True -> tru ctx
  | False, _ -> b
  | _, False -> a
  | _ ->
    if a == b then a
    else if (match a.node with Not a' -> a' == b | _ -> false) then tru ctx
    else if (match b.node with Not b' -> b' == a | _ -> false) then tru ctx
    else
      let x, y = if a.id <= b.id then (a, b) else (b, a) in
      mk ctx (KOr (x.id, y.id)) (Or (x, y))

let implies ctx a b = or_ ctx (not_ ctx a) b

let iff ctx a b = and_ ctx (implies ctx a b) (implies ctx b a)

let xor ctx a b = not_ ctx (iff ctx a b)

let ite ctx c a b = and_ ctx (implies ctx c a) (implies ctx (not_ ctx c) b)

let and_list ctx fs = List.fold_left (and_ ctx) (tru ctx) fs

let or_list ctx fs = List.fold_left (or_ ctx) (fls ctx) fs

let eval assign root =
  let memo = Hashtbl.create 64 in
  let rec go f =
    match Hashtbl.find_opt memo f.id with
    | Some b -> b
    | None ->
      let b =
        match f.node with
        | True -> true
        | False -> false
        | Var i -> assign i
        | Not g -> not (go g)
        | And (a, b) -> go a && go b
        | Or (a, b) -> go a || go b
      in
      Hashtbl.add memo f.id b;
      b
  in
  go root

let size root =
  let seen = Hashtbl.create 64 in
  let rec go f =
    if not (Hashtbl.mem seen f.id) then begin
      Hashtbl.add seen f.id ();
      match f.node with
      | True | False | Var _ -> ()
      | Not g -> go g
      | And (a, b) | Or (a, b) ->
        go a;
        go b
    end
  in
  go root;
  Hashtbl.length seen

let pp ppf root =
  let rec go ppf f =
    match f.node with
    | True -> Format.pp_print_string ppf "true"
    | False -> Format.pp_print_string ppf "false"
    | Var i -> Format.fprintf ppf "b%d" i
    | Not g -> Format.fprintf ppf "(not %a)" go g
    | And (a, b) -> Format.fprintf ppf "(and %a %a)" go a go b
    | Or (a, b) -> Format.fprintf ppf "(or %a %a)" go a go b
  in
  go ppf root
