(** Lifting separation-logic countermodels back to SUF.

    A falsifying assignment of the eliminated formula [F_sep] determines a
    first-order interpretation falsifying the original formula: each fresh
    constant's value becomes a function-table entry at its definition's
    argument values. Constants absent from the assignment (simplified away
    during encoding) may take any value — they cannot influence [F_sep] — so
    they default to 0. *)

module Elim = Sepsat_suf.Elim
module Interp = Sepsat_suf.Interp
module Brute = Sepsat_sep.Brute

val lift : Elim.result -> Brute.assignment -> Interp.t
(** An interpretation of the *original* formula's symbols; if the assignment
    falsifies [F_sep], the interpretation falsifies the original formula. *)
