module Elim = Sepsat_suf.Elim
module Interp = Sepsat_suf.Interp
module Brute = Sepsat_sep.Brute

let lift (elim : Elim.result) (a : Brute.assignment) =
  let int_of name =
    match List.assoc_opt name a.Brute.ints with Some v -> v | None -> 0
  in
  let bool_of name =
    match List.assoc_opt name a.Brute.bools with Some b -> b | None -> false
  in
  (* Definition arguments are application-free, so this interpretation is
     enough to evaluate them. *)
  let const_interp =
    {
      Interp.func =
        (fun name args ->
          match args with
          | [] -> int_of name
          | _ :: _ -> invalid_arg "Countermodel.lift: nested application");
      Interp.pred =
        (fun name args ->
          match args with
          | [] -> bool_of name
          | _ :: _ -> invalid_arg "Countermodel.lift: nested application");
    }
  in
  let ftables : (string, (int list * int) list) Hashtbl.t = Hashtbl.create 16 in
  let ptables : (string, (int list * bool) list) Hashtbl.t = Hashtbl.create 16 in
  let append tbl key entry =
    let prev = try Hashtbl.find tbl key with Not_found -> [] in
    Hashtbl.replace tbl key (prev @ [ entry ])
  in
  List.iter
    (fun (d : Elim.def) ->
      let vals = List.map (Interp.eval_term const_interp) d.Elim.args in
      if d.Elim.is_predicate then append ptables d.symbol (vals, bool_of d.fresh)
      else append ftables d.symbol (vals, int_of d.fresh))
    elim.Elim.defs;
  let lookup tbl default name vals =
    match Hashtbl.find_opt tbl name with
    | None -> default
    | Some entries -> (
      (* First-match order mirrors the elimination's ITE chains. *)
      match List.find_opt (fun (vs, _) -> vs = vals) entries with
      | Some (_, v) -> v
      | None -> default)
  in
  {
    Interp.func =
      (fun name args ->
        match args with [] -> int_of name | _ :: _ -> lookup ftables 0 name args);
    Interp.pred =
      (fun name args ->
        match args with
        | [] -> bool_of name
        | _ :: _ -> lookup ptables false name args);
  }
