lib/core/countermodel.mli: Sepsat_sep Sepsat_suf
