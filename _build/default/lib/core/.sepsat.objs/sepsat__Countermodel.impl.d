lib/core/countermodel.ml: Hashtbl List Sepsat_sep Sepsat_suf
