lib/core/decide.ml: Format Sepsat_baselines Sepsat_encode Sepsat_prop Sepsat_sat Sepsat_sep Sepsat_suf Sepsat_util String
