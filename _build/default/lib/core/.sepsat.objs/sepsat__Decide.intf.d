lib/core/decide.mli: Format Sepsat_encode Sepsat_sat Sepsat_sep Sepsat_suf Sepsat_util
