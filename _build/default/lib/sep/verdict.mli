(** Verdicts of the validity-checking procedures. *)

type t =
  | Valid
  | Invalid of Brute.assignment
      (** with a falsifying assignment of the separation-logic formula *)
  | Unknown of string  (** resource exhaustion; the payload says which *)

val pp : Format.formatter -> t -> unit

val agrees : t -> t -> bool
(** Whether two verdicts agree where both are decisive ([Unknown] agrees with
    everything). *)
