module Ast = Sepsat_suf.Ast

type t = { ctx : Ast.ctx; memo : (int, (Ground.t * Ast.formula) list) Hashtbl.t }

let create ctx = { ctx; memo = Hashtbl.create 256 }

(* Merge two ground->condition maps (each sorted), or-ing collisions. *)
let rec merge ctx xs ys =
  match (xs, ys) with
  | [], zs | zs, [] -> zs
  | (g1, c1) :: xs', (g2, c2) :: ys' -> (
    match Ground.compare g1 g2 with
    | 0 -> (g1, Ast.or_ ctx c1 c2) :: merge ctx xs' ys'
    | n when n < 0 -> (g1, c1) :: merge ctx xs' ys
    | _ -> (g2, c2) :: merge ctx xs ys')

let under ctx cond entries =
  List.map (fun (g, c) -> (g, Ast.and_ ctx cond c)) entries

let rec of_term t (term : Ast.term) =
  match Hashtbl.find_opt t.memo term.tid with
  | Some entries -> entries
  | None ->
    let entries =
      match term.tnode with
      | Ast.Const _ | Ast.Succ _ | Ast.Pred _ ->
        [ (Normal.ground_of_term term, Ast.tru t.ctx) ]
      | Ast.Tite (c, a, b) ->
        merge t.ctx
          (under t.ctx c (of_term t a))
          (under t.ctx (Ast.not_ t.ctx c) (of_term t b))
      | Ast.App _ -> invalid_arg "Ground_map.of_term: application present"
    in
    Hashtbl.add t.memo term.tid entries;
    entries
