module Ast = Sepsat_suf.Ast
module Interp = Sepsat_suf.Interp

type assignment = { ints : (string * int) list; bools : (string * bool) list }

let interp_of_assignment { ints; bools } =
  {
    Interp.func =
      (fun name args ->
        match (List.assoc_opt name ints, args) with
        | Some v, [] -> v
        | _ ->
          invalid_arg
            (Printf.sprintf "Brute: unassigned function symbol %S" name));
    Interp.pred =
      (fun name args ->
        match (List.assoc_opt name bools, args) with
        | Some b, [] -> b
        | _ ->
          invalid_arg
            (Printf.sprintf "Brute: unassigned predicate symbol %S" name));
  }

(* Offsets of every constant, computed without the Classes machinery so the
   oracle stays independent of it. *)
let offsets formula =
  let offs = Hashtbl.create 32 in
  let rec leaf (t : Ast.term) k =
    match t.tnode with
    | Ast.Const c ->
      let l, u = try Hashtbl.find offs c with Not_found -> (k, k) in
      Hashtbl.replace offs c (min l k, max u k)
    | Ast.Succ u -> leaf u (k + 1)
    | Ast.Pred u -> leaf u (k - 1)
    | Ast.Tite (_, a, b) ->
      leaf a k;
      leaf b k
    | Ast.App _ -> invalid_arg "Brute: application present"
  in
  let collect atom =
    match (atom : Ast.formula).fnode with
    | Ast.Eq (t1, t2) | Ast.Lt (t1, t2) ->
      leaf t1 0;
      leaf t2 0
    | _ -> ()
  in
  List.iter collect (Ast.atoms formula);
  offs

let countermodel formula =
  let consts =
    Ast.functions formula
    |> List.map (fun (name, arity) ->
           if arity > 0 then invalid_arg "Brute: application present" else name)
  in
  let bconsts = Ast.predicates formula |> List.map fst in
  let offs = offsets formula in
  let off name = try Hashtbl.find offs name with Not_found -> (0, 0) in
  (* Small-model range: min of the gap-compression bound and the
     per-variable budget bound (see Classes.build). *)
  let umax, lmin, budget =
    List.fold_left
      (fun (umax, lmin, budget) name ->
        let l, u = off name in
        (max umax u, min lmin l, budget + max 0 u - min 0 l + 1))
      (0, 0, 0) consts
  in
  let spread = umax - lmin in
  let compression = ((List.length consts - 1) * (spread + 1)) + 1 in
  let range = max 1 (min compression budget) in
  let shift =
    List.fold_left (fun acc name -> max acc (-fst (off name))) 0 consts
  in
  let lo = shift and hi = shift + range - 1 in
  let found = ref None in
  let rec enum_bools pending bools =
    match pending with
    | [] -> enum_ints consts [] bools
    | b :: rest ->
      enum_bools rest ((b, true) :: bools);
      if !found = None then enum_bools rest ((b, false) :: bools)
  and enum_ints pending ints bools =
    match pending with
    | [] ->
      let assignment = { ints; bools } in
      if not (Interp.eval (interp_of_assignment assignment) formula) then
        found := Some assignment
    | c :: rest ->
      let v = ref lo in
      while !found = None && !v <= hi do
        enum_ints rest ((c, !v) :: ints) bools;
        incr v
      done
  in
  enum_bools bconsts [];
  !found

let valid formula = countermodel formula = None
