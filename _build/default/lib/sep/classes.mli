(** Equivalence classes of symbolic constants (paper §4 steps 1, 3, 4).

    Two g-constants share a class when they are (transitively) compared by
    some atom or merged through the branches of an ITE term. Classes can be
    encoded independently of one another; per class the structure records the
    small-domain size [range(V_i)] and the separation-predicate upper bound
    [SepCnt(V_i)] that drives the hybrid SD/EIJ choice. *)

module Ast = Sepsat_suf.Ast
module Sset = Sepsat_util.Sset

type class_info = {
  id : int;
  members : string list;  (** g-constants, sorted *)
  range : int;
      (** small-domain size. The paper states [Σ (u(v) − l(v) + 1)], which is
          insufficient as written (two constants with offsets {+1} and {0}
          get 2 values, yet falsifying [¬(x+1 < y)] needs a spread of 2); we
          use the provably sufficient gap-compression bound
          [(n − 1)(W + 1) + 1] with [W = max u − min l] over the class, which
          coincides on equality-only classes *)
  shift : int;
      (** domain lower bound [L = max(0, max_v −l(v))], so member values live
          in [\[L, L + range − 1\]] and every ground term stays non-negative *)
  umax : int;  (** largest positive offset over members *)
  sep_cnt : int;  (** paper's [SepCnt(V_i)] upper bound *)
  p_neighbors : Sset.t;
      (** p-constants appearing in this class's atoms; the SD encoder must
          make room for their fixed diverse values *)
}

type t

val build : p_consts:Sset.t -> Ast.formula -> t
(** The formula must be application-free and normalized
    ({!Normal.normalize}). *)

val classes : t -> class_info array

val atom_class : t -> Ast.formula -> class_info option
(** Class owning an [Eq]/[Lt] atom of the formula; [None] when the atom
    compares only p-constants. @raise Not_found on foreign atoms. *)

val const_class : t -> string -> class_info option
(** Class of a constant; [None] for p-constants.
    @raise Not_found for unknown constants. *)

val is_p : t -> string -> bool

val offsets : t -> string -> int * int
(** [(l(v), u(v))]: least and greatest offset the constant occurs with;
    [(0, 0)] for constants with no recorded occurrence. *)

val total_sep_cnt : t -> int
(** Formula-level separation-predicate estimate (x-axis of paper Fig. 3). *)

val num_atoms : t -> int
