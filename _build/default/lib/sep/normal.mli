(** Ground-term normalization (paper §4 step 2).

    Rewrites an application-free formula to a fixed point of

    {v
    succ (pred T)       -> T
    pred (succ T)       -> T
    succ (ITE(F,T1,T2)) -> ITE(F, succ T1, succ T2)
    pred (ITE(F,T1,T2)) -> ITE(F, pred T1, pred T2)
    v}

    so that afterwards every term is an ITE tree whose leaves are ground
    terms [v + k]. *)

module Ast = Sepsat_suf.Ast

val normalize : Ast.ctx -> Ast.formula -> Ast.formula
(** @raise Invalid_argument if the formula still contains uninterpreted
    applications (run {!Sepsat_suf.Elim} first). *)

val is_normal : Ast.formula -> bool
(** Whether every term already has the ITE-of-ground shape. *)

val ground_of_term : Ast.term -> Ground.t
(** Reads a ground leaf. @raise Invalid_argument if the term contains an ITE
    or application. *)

val leaves : Ast.term -> Ground.t list
(** Distinct ground leaves of a normalized term, sorted. *)

val enum_grounds : Ast.ctx -> Ast.term -> (Ast.formula * Ground.t) list
(** Path-condition decomposition of a normalized term: all pairs [(c, g)]
    such that the term evaluates to ground term [g] exactly when the
    conjunction [c] of ITE guards along the path holds. Conditions of the
    returned list are exhaustive and mutually exclusive. *)
