lib/sep/ground.mli: Format Sepsat_suf
