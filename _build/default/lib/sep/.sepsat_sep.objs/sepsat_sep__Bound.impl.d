lib/sep/bound.ml: Format Ground Int Printf String
