lib/sep/ground.ml: Format Int Sepsat_suf String
