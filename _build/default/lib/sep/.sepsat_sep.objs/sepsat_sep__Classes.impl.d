lib/sep/classes.ml: Array Ground Hashtbl List Normal Sepsat_suf Sepsat_util String
