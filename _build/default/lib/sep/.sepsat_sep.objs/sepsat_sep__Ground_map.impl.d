lib/sep/ground_map.ml: Ground Hashtbl List Normal Sepsat_suf
