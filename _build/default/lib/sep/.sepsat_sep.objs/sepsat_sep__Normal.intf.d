lib/sep/normal.mli: Ground Sepsat_suf
