lib/sep/bound.mli: Format Ground
