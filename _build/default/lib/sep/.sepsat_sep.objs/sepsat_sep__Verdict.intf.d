lib/sep/verdict.mli: Brute Format
