lib/sep/brute.mli: Sepsat_suf
