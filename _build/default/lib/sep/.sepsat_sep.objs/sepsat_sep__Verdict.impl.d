lib/sep/verdict.ml: Brute Format List
