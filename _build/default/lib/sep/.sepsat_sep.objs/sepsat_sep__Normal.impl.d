lib/sep/normal.ml: Ground Hashtbl List Printf Sepsat_suf
