lib/sep/brute.ml: Hashtbl List Printf Sepsat_suf
