lib/sep/classes.mli: Sepsat_suf Sepsat_util
