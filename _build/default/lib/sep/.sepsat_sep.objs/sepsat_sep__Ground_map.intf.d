lib/sep/ground_map.mli: Ground Sepsat_suf
