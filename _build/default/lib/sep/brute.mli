(** Brute-force validity oracle for separation logic.

    Exhaustively enumerates assignments over the finite domain guaranteed
    sufficient by the small-model property (paper §2.1.2): every symbolic
    constant ranges over [\[L, L + R − 1\]] where [R] is the sum over all
    constants of [u(v) − l(v) + 1] and [L] clears the most negative offset.
    Exponential in the number of constants — strictly a test oracle used to
    cross-check the six decision paths on small formulas. *)

module Ast = Sepsat_suf.Ast

type assignment = {
  ints : (string * int) list;  (** symbolic constants *)
  bools : (string * bool) list;  (** symbolic Boolean constants *)
}

val interp_of_assignment : assignment -> Sepsat_suf.Interp.t
(** @raise Invalid_argument when applied to a symbol outside the
    assignment. *)

val countermodel : Ast.formula -> assignment option
(** A falsifying assignment of an application-free formula, or [None] when
    the formula is valid. @raise Invalid_argument on applications. *)

val valid : Ast.formula -> bool
