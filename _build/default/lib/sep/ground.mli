(** Ground terms [v + k]: a symbolic constant plus an integer offset.

    After normalization (paper §4 step 2) every term is an ITE tree whose
    leaves are ground terms; separation predicates compare ground terms. *)

type t = { base : string; offset : int }

val make : string -> int -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_term : Sepsat_suf.Ast.ctx -> t -> Sepsat_suf.Ast.term
(** Back to AST form: [succ]/[pred] chains over the base constant. *)
