module Ast = Sepsat_suf.Ast
module Sset = Sepsat_util.Sset
module Union_find = Sepsat_util.Union_find

type class_info = {
  id : int;
  members : string list;
  range : int;
  shift : int;
  umax : int;
  sep_cnt : int;
  p_neighbors : Sset.t;
}

type t = {
  infos : class_info array;
  const_to_class : (string, int) Hashtbl.t;  (* g-constant -> class id *)
  atom_to_class : (int, int option) Hashtbl.t;  (* atom fid -> class id *)
  offs : (string, int * int) Hashtbl.t;  (* constant -> (l, u) *)
  p_consts : Sset.t;
  total_sep : int;
  n_atoms : int;
}

let build ~p_consts formula =
  let atoms = Ast.atoms formula in
  (* Index the g-constants. *)
  let g_names =
    Ast.functions formula
    |> List.filter_map (fun (name, arity) ->
           if arity > 0 then
             invalid_arg "Classes.build: formula contains applications"
           else if Sset.mem name p_consts then None
           else Some name)
  in
  let g_index = Hashtbl.create 64 in
  List.iteri (fun i name -> Hashtbl.add g_index name i) g_names;
  let g_count = List.length g_names in
  let g_array = Array.of_list g_names in
  let uf = Union_find.create g_count in
  (* Offsets of every constant, p included. *)
  let offs = Hashtbl.create 64 in
  let note_leaf (g : Ground.t) =
    let l, u =
      try Hashtbl.find offs g.Ground.base with Not_found -> (g.offset, g.offset)
    in
    Hashtbl.replace offs g.Ground.base (min l g.offset, max u g.offset)
  in
  (* Dependency set of a term, summarized as its class representative after
     merging everything inside the set; [None] = pure-p term. *)
  let dep_memo = Hashtbl.create 256 in
  let rec dep (t : Ast.term) =
    match Hashtbl.find_opt dep_memo t.tid with
    | Some d -> d
    | None ->
      let d =
        match t.tnode with
        | Ast.Const _ | Ast.Succ _ | Ast.Pred _ ->
          let g = Normal.ground_of_term t in
          note_leaf g;
          Hashtbl.find_opt g_index g.Ground.base
        | Ast.Tite (_, a, b) -> (
          match (dep a, dep b) with
          | None, d | d, None -> d
          | Some i, Some j ->
            Union_find.union uf i j;
            Some (Union_find.find uf i))
        | Ast.App _ -> invalid_arg "Classes.build: application present"
      in
      Hashtbl.add dep_memo t.tid d;
      d
  in
  let atom_sides f =
    match (f : Ast.formula).fnode with
    | Ast.Eq (t1, t2) | Ast.Lt (t1, t2) -> (t1, t2)
    | _ -> assert false
  in
  (* First pass: merge classes across every atom. *)
  List.iter
    (fun atom ->
      let t1, t2 = atom_sides atom in
      match (dep t1, dep t2) with
      | Some i, Some j -> Union_find.union uf i j
      | None, _ | _, None -> ())
    atoms;
  (* Resolve representatives into dense class ids. *)
  let rep_to_id = Hashtbl.create 16 in
  let class_members = Hashtbl.create 16 in
  Array.iteri
    (fun i name ->
      let rep = Union_find.find uf i in
      let id =
        match Hashtbl.find_opt rep_to_id rep with
        | Some id -> id
        | None ->
          let id = Hashtbl.length rep_to_id in
          Hashtbl.add rep_to_id rep id;
          id
      in
      let members =
        try Hashtbl.find class_members id with Not_found -> []
      in
      Hashtbl.replace class_members id (name :: members))
    g_array;
  let n_classes = Hashtbl.length rep_to_id in
  let class_of_const name =
    match Hashtbl.find_opt g_index name with
    | None -> None
    | Some i -> Some (Hashtbl.find rep_to_id (Union_find.find uf i))
  in
  (* Second pass: per-atom class, SepCnt and p-neighbors. *)
  let sep_cnt = Array.make n_classes 0 in
  let p_neighbors = Array.make n_classes Sset.empty in
  let atom_to_class = Hashtbl.create 64 in
  let total_sep = ref 0 in
  List.iter
    (fun atom ->
      let t1, t2 = atom_sides atom in
      let leaves1 = Normal.leaves t1 and leaves2 = Normal.leaves t2 in
      let m = List.length leaves1 * List.length leaves2 in
      total_sep := !total_sep + m;
      let cls =
        match (dep t1, dep t2) with
        | Some i, _ | _, Some i ->
          Some (Hashtbl.find rep_to_id (Union_find.find uf i))
        | None, None -> None
      in
      Hashtbl.replace atom_to_class atom.Ast.fid cls;
      match cls with
      | None -> ()
      | Some id ->
        sep_cnt.(id) <- sep_cnt.(id) + m;
        let note (g : Ground.t) =
          if Sset.mem g.Ground.base p_consts then
            p_neighbors.(id) <- Sset.add g.Ground.base p_neighbors.(id)
        in
        List.iter note leaves1;
        List.iter note leaves2)
    atoms;
  let offsets_of name =
    try Hashtbl.find offs name with Not_found -> (0, 0)
  in
  let infos =
    Array.init n_classes (fun id ->
        let members =
          List.sort String.compare (Hashtbl.find class_members id)
        in
        (* Small-model range: the smaller of two sufficient bounds.
           - Gap compression: in any model, sort the member values and
             compress every gap to at most W + 1, where W = max u − min l
             bounds the offset difference any atom can compare across; all
             cross-member comparisons v_i + a ⋈ v_j + b keep their outcome.
             Hence (n − 1)(W + 1) + 1 values suffice.
           - Per-variable budget (the paper's Σ formula, with offsets
             0-extended — without the extension it is insufficient, see the
             module interface): Σ_v (max(0, u(v)) − min(0, l(v)) + 1). *)
        let shift, umax, lmin, budget =
          List.fold_left
            (fun (shift, umax, lmin, budget) name ->
              let l, u = offsets_of name in
              ( max shift (-l),
                max umax u,
                min lmin l,
                budget + max 0 u - min 0 l + 1 ))
            (0, 0, 0, 0) members
        in
        let spread = umax - lmin in
        let compression = ((List.length members - 1) * (spread + 1)) + 1 in
        let range = min compression budget in
        {
          id;
          members;
          range;
          shift;
          umax;
          sep_cnt = sep_cnt.(id);
          p_neighbors = p_neighbors.(id);
        })
  in
  let const_to_class = Hashtbl.create 64 in
  List.iter
    (fun name ->
      match class_of_const name with
      | Some id -> Hashtbl.add const_to_class name id
      | None -> assert false)
    g_names;
  {
    infos;
    const_to_class;
    atom_to_class;
    offs;
    p_consts;
    total_sep = !total_sep;
    n_atoms = List.length atoms;
  }

let classes t = t.infos

let atom_class t atom =
  match Hashtbl.find_opt t.atom_to_class (atom : Ast.formula).fid with
  | None -> raise Not_found
  | Some None -> None
  | Some (Some id) -> Some t.infos.(id)

let const_class t name =
  if Sset.mem name t.p_consts then None
  else
    match Hashtbl.find_opt t.const_to_class name with
    | Some id -> Some t.infos.(id)
    | None -> raise Not_found

let is_p t name = Sset.mem name t.p_consts

let offsets t name = try Hashtbl.find t.offs name with Not_found -> (0, 0)

let total_sep_cnt t = t.total_sep

let num_atoms t = t.n_atoms
