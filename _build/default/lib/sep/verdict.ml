type t = Valid | Invalid of Brute.assignment | Unknown of string

let pp ppf = function
  | Valid -> Format.pp_print_string ppf "valid"
  | Invalid { Brute.ints; bools } ->
    Format.fprintf ppf "invalid:";
    List.iter (fun (n, v) -> Format.fprintf ppf " %s=%d" n v) ints;
    List.iter (fun (n, b) -> Format.fprintf ppf " %s=%b" n b) bools
  | Unknown why -> Format.fprintf ppf "unknown (%s)" why

let agrees a b =
  match (a, b) with
  | Valid, Valid -> true
  | Invalid _, Invalid _ -> true
  | Unknown _, (Valid | Invalid _ | Unknown _) -> true
  | (Valid | Invalid _), Unknown _ -> true
  | Valid, Invalid _ | Invalid _, Valid -> false
