module Ast = Sepsat_suf.Ast

type t = { base : string; offset : int }

let make base offset = { base; offset }

let compare a b =
  match String.compare a.base b.base with
  | 0 -> Int.compare a.offset b.offset
  | c -> c

let equal a b = compare a b = 0

let pp ppf { base; offset } =
  if offset = 0 then Format.pp_print_string ppf base
  else if offset > 0 then Format.fprintf ppf "%s+%d" base offset
  else Format.fprintf ppf "%s%d" base offset

let to_term ctx { base; offset } = Ast.plus ctx (Ast.const ctx base) offset
