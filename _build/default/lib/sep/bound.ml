type t = { x : string; y : string; c : int }

type view = { bound : t; negated : bool }

let view ~x ~y ~c =
  match String.compare x y with
  | 0 -> invalid_arg "Bound.view: identical constants"
  | n when n < 0 -> { bound = { x; y; c }; negated = false }
  | _ ->
    (* x − y <= c  <=>  not (y − x <= −c − 1) *)
    { bound = { x = y; y = x; c = -c - 1 }; negated = true }

let negate v = { v with negated = not v.negated }

let compare a b =
  match String.compare a.x b.x with
  | 0 -> (
    match String.compare a.y b.y with 0 -> Int.compare a.c b.c | n -> n)
  | n -> n

let equal a b = compare a b = 0

let pp ppf { x; y; c } = Format.fprintf ppf "%s-%s<=%d" x y c

(* g1 = g2 with g1 = x+a, g2 = y+b:  x − y = b − a. *)
let eq_grounds ~is_p (g1 : Ground.t) (g2 : Ground.t) =
  if String.equal g1.Ground.base g2.Ground.base then
    `Static (g1.offset = g2.offset)
  else if is_p g1.Ground.base || is_p g2.Ground.base then
    (* Maximally diverse interpretation: a p-constant differs from every
       other constant (paper §4 step 5). *)
    `Static false
  else
    let d = g2.offset - g1.offset in
    `Conj
      ( view ~x:g1.Ground.base ~y:g2.Ground.base ~c:d,
        view ~x:g2.Ground.base ~y:g1.Ground.base ~c:(-d) )

(* g1 < g2:  x − y <= b − a − 1. *)
let lt_grounds ~is_p (g1 : Ground.t) (g2 : Ground.t) =
  if String.equal g1.Ground.base g2.Ground.base then
    `Static (g1.offset < g2.offset)
  else if is_p g1.Ground.base || is_p g2.Ground.base then
    invalid_arg
      (Printf.sprintf "Bound.lt_grounds: p-constant %s or %s under inequality"
         g1.Ground.base g2.Ground.base)
  else `Bound (view ~x:g1.Ground.base ~y:g2.Ground.base ~c:(g2.offset - g1.offset - 1))
