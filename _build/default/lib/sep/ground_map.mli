(** Ground-term decomposition with per-ground conditions.

    For a normalized term, computes the pairs [(g, c)] such that the term
    evaluates to ground term [g] exactly when condition [c] holds (paper §4
    step 5: "T1 evaluates to a ground term g_i under the condition c_1i").
    Unlike a per-ITE-path enumeration — which explodes exponentially on
    chained ITEs — this works bottom-up over the shared DAG and merges the
    conditions of equal grounds with disjunction, so the result size is the
    number of *distinct* grounds and the work is polynomial.

    The conditions of one decomposition are exhaustive and pairwise
    exclusive. State is a memo table, so terms shared across many atoms are
    decomposed once. *)

module Ast = Sepsat_suf.Ast

type t

val create : Ast.ctx -> t

val of_term : t -> Ast.term -> (Ground.t * Ast.formula) list
(** Sorted by ground term. @raise Invalid_argument on applications. *)
