(** Canonical integer difference bounds over symbolic constants.

    A separation predicate between ground terms reduces to a bound
    [x − y ≤ c]. Over the integers its negation is again a bound
    ([y − x ≤ −c − 1]), so one Boolean variable per canonical bound suffices —
    the EIJ insight. Canonical form orders the two constants lexicographically
    and tracks whether the client's bound is the variable or its negation. *)

type t = { x : string; y : string; c : int }
(** Invariant: [x < y] lexicographically; meaning [x − y <= c]. *)

type view = { bound : t; negated : bool }
(** The client bound is [bound] itself, or its integer negation when
    [negated]. *)

val view : x:string -> y:string -> c:int -> view
(** Canonical view of [x − y <= c]. @raise Invalid_argument if [x = y]. *)

val negate : view -> view

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** Classification of a ground-term comparison (paper §4 step 5):
    - [`Static b] — decidable up front: both sides share a base constant, or a
      p-constant is involved and the maximally diverse interpretation settles
      the equality;
    - a bound (or conjunction of two bounds for equality) otherwise. *)

val eq_grounds :
  is_p:(string -> bool) ->
  Ground.t ->
  Ground.t ->
  [ `Static of bool | `Conj of view * view ]

val lt_grounds :
  is_p:(string -> bool) ->
  Ground.t ->
  Ground.t ->
  [ `Static of bool | `Bound of view ]
(** @raise Invalid_argument if a p-constant occurs under an inequality with a
    different base — the positive-equality classification is supposed to rule
    this out. *)
