module Ast = Sepsat_suf.Ast

(* Normalization works by pushing an integer shift down to the leaves: a term
   is rewritten bottom-up, and succ/pred contribute +-1 to the shift applied
   to the subterm. This reaches the rewrite system's fixed point in one
   pass. *)

let normalize ctx root =
  let fmemo = Hashtbl.create 256 in
  let tmemo = Hashtbl.create 256 in
  (* (tid, shift) -> normalized term *)
  let rec go_t (t : Ast.term) shift =
    match Hashtbl.find_opt tmemo (t.tid, shift) with
    | Some t' -> t'
    | None ->
      let t' =
        match t.tnode with
        | Ast.Const _ -> Ast.plus ctx t shift
        | Ast.Succ u -> go_t u (shift + 1)
        | Ast.Pred u -> go_t u (shift - 1)
        | Ast.Tite (c, a, b) ->
          Ast.tite ctx (go_f c) (go_t a shift) (go_t b shift)
        | Ast.App (f, _) ->
          invalid_arg
            (Printf.sprintf
               "Normal.normalize: application of %S present; eliminate first" f)
      in
      Hashtbl.add tmemo (t.tid, shift) t';
      t'
  and go_f (f : Ast.formula) =
    match Hashtbl.find_opt fmemo f.fid with
    | Some f' -> f'
    | None ->
      let f' =
        match f.fnode with
        | Ast.Ftrue | Ast.Ffalse | Ast.Bconst _ -> f
        | Ast.Not g -> Ast.not_ ctx (go_f g)
        | Ast.And (a, b) -> Ast.and_ ctx (go_f a) (go_f b)
        | Ast.Or (a, b) -> Ast.or_ ctx (go_f a) (go_f b)
        | Ast.Eq (t1, t2) -> Ast.eq ctx (go_t t1 0) (go_t t2 0)
        | Ast.Lt (t1, t2) -> Ast.lt ctx (go_t t1 0) (go_t t2 0)
        | Ast.Papp (p, _) ->
          invalid_arg
            (Printf.sprintf
               "Normal.normalize: application of %S present; eliminate first" p)
      in
      Hashtbl.add fmemo f.fid f';
      f'
  in
  go_f root

let ground_of_term t =
  let rec go (t : Ast.term) offset =
    match t.tnode with
    | Ast.Const c -> Ground.make c offset
    | Ast.Succ u -> go u (offset + 1)
    | Ast.Pred u -> go u (offset - 1)
    | Ast.Tite _ | Ast.App _ ->
      invalid_arg "Normal.ground_of_term: not a ground leaf"
  in
  go t 0

(* A term is in normal form when no ITE or application occurs strictly below
   a succ/pred. *)
let rec term_normal (t : Ast.term) under_shift =
  match t.tnode with
  | Ast.Const _ -> true
  | Ast.Succ u | Ast.Pred u -> term_normal u true
  | Ast.Tite (c, a, b) ->
    (not under_shift) && formula_normal c && term_normal a false
    && term_normal b false
  | Ast.App _ -> false

and formula_normal (f : Ast.formula) =
  match f.fnode with
  | Ast.Ftrue | Ast.Ffalse | Ast.Bconst _ -> true
  | Ast.Not g -> formula_normal g
  | Ast.And (a, b) | Ast.Or (a, b) -> formula_normal a && formula_normal b
  | Ast.Eq (t1, t2) | Ast.Lt (t1, t2) ->
    term_normal t1 false && term_normal t2 false
  | Ast.Papp _ -> false

let is_normal = formula_normal

let leaves t =
  let rec go (t : Ast.term) acc =
    match t.tnode with
    | Ast.Const _ | Ast.Succ _ | Ast.Pred _ -> ground_of_term t :: acc
    | Ast.Tite (_, a, b) -> go a (go b acc)
    | Ast.App _ -> invalid_arg "Normal.leaves: application present"
  in
  List.sort_uniq Ground.compare (go t [])

let enum_grounds ctx t =
  let rec go (t : Ast.term) cond acc =
    match t.tnode with
    | Ast.Const _ | Ast.Succ _ | Ast.Pred _ -> (cond, ground_of_term t) :: acc
    | Ast.Tite (c, a, b) ->
      let acc = go a (Ast.and_ ctx cond c) acc in
      go b (Ast.and_ ctx cond (Ast.not_ ctx c)) acc
    | Ast.App _ -> invalid_arg "Normal.enum_grounds: application present"
  in
  List.rev (go t (Ast.tru ctx) [])
