type t = Atom of string | List of t list

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let lex text =
  let n = String.length text in
  let tokens = ref [] in
  let i = ref 0 in
  let is_atom_char c =
    match c with
    | '(' | ')' | ';' -> false
    | c -> not (c = ' ' || c = '\t' || c = '\n' || c = '\r')
  in
  while !i < n do
    let c = text.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = ';' then begin
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '(' then begin
      tokens := "(" :: !tokens;
      incr i
    end
    else if c = ')' then begin
      tokens := ")" :: !tokens;
      incr i
    end
    else begin
      let start = !i in
      while !i < n && is_atom_char text.[!i] do
        incr i
      done;
      tokens := String.sub text start (!i - start) :: !tokens
    end
  done;
  List.rev !tokens

let parse_all text =
  let rec read = function
    | [] -> error "unexpected end of input"
    | "(" :: rest ->
      let items, rest = read_list rest [] in
      (List items, rest)
    | ")" :: _ -> error "unexpected ')'"
    | atom :: rest -> (Atom atom, rest)
  and read_list tokens acc =
    match tokens with
    | [] -> error "missing ')'"
    | ")" :: rest -> (List.rev acc, rest)
    | _ ->
      let s, rest = read tokens in
      read_list rest (s :: acc)
  in
  let rec all tokens acc =
    match tokens with
    | [] -> List.rev acc
    | _ ->
      let s, rest = read tokens in
      all rest (s :: acc)
  in
  all (lex text) []

let parse_one text =
  match parse_all text with
  | [ s ] -> s
  | [] -> error "no s-expression in input"
  | _ :: _ :: _ -> error "more than one top-level s-expression"
