(** Minimal s-expression reader shared by the concrete-syntax front ends
    ({!Parse} and {!Smtlib}). *)

type t = Atom of string | List of t list

exception Error of string

val parse_all : string -> t list
(** All top-level s-expressions of the text. Comments run from [;] to end of
    line. @raise Error on unbalanced parentheses. *)

val parse_one : string -> t
(** Exactly one top-level s-expression. @raise Error otherwise. *)
