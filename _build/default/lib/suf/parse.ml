exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type sexp = Sexp.t = Atom of string | List of Sexp.t list

(* -- Conversion ------------------------------------------------------------ *)

let reserved =
  [
    "true"; "false"; "not"; "and"; "or"; "=>"; "iff"; "ite"; "="; "<"; "<=";
    ">"; ">="; "succ"; "pred"; "+"; "-";
  ]

let check_name name =
  if List.mem name reserved then error "reserved word %S used as a symbol" name;
  match int_of_string_opt name with
  | Some _ -> error "integer literal %S: SUF has no numeric constants" name
  | None -> ()

let rec to_formula ctx s =
  match s with
  | Atom "true" -> Ast.tru ctx
  | Atom "false" -> Ast.fls ctx
  | Atom name ->
    check_name name;
    Ast.bconst ctx name
  | List [] -> error "empty list"
  | List (Atom head :: args) -> formula_app ctx head args
  | List (List _ :: _) -> error "formula head must be an atom"

and formula_app ctx head args =
  let f2 name build =
    match args with
    | [ a; b ] -> build (to_formula ctx a) (to_formula ctx b)
    | _ -> error "%s expects 2 arguments" name
  in
  let t2 name build =
    match args with
    | [ a; b ] -> build (to_term ctx a) (to_term ctx b)
    | _ -> error "%s expects 2 term arguments" name
  in
  match head with
  | "not" -> (
    match args with
    | [ a ] -> Ast.not_ ctx (to_formula ctx a)
    | _ -> error "not expects 1 argument")
  | "and" -> (
    match args with
    | [] | [ _ ] -> error "and expects >= 2 arguments"
    | _ -> Ast.and_list ctx (List.map (to_formula ctx) args))
  | "or" -> (
    match args with
    | [] | [ _ ] -> error "or expects >= 2 arguments"
    | _ -> Ast.or_list ctx (List.map (to_formula ctx) args))
  | "=>" -> f2 "=>" (Ast.implies ctx)
  | "iff" -> f2 "iff" (Ast.iff ctx)
  | "ite" -> (
    match args with
    | [ c; a; b ] ->
      Ast.fite ctx (to_formula ctx c) (to_formula ctx a) (to_formula ctx b)
    | _ -> error "ite expects 3 arguments")
  | "=" -> t2 "=" (Ast.eq ctx)
  | "<" -> t2 "<" (Ast.lt ctx)
  | "<=" -> t2 "<=" (Ast.le ctx)
  | ">" -> t2 ">" (Ast.gt ctx)
  | ">=" -> t2 ">=" (Ast.ge ctx)
  | name ->
    check_name name;
    if args = [] then error "application of %S with no arguments" name;
    Ast.papp ctx name (List.map (to_term ctx) args)

and to_term ctx s =
  match s with
  | Atom name ->
    check_name name;
    Ast.const ctx name
  | List [] -> error "empty list"
  | List (Atom head :: args) -> term_app ctx head args
  | List (List _ :: _) -> error "term head must be an atom"

and term_app ctx head args =
  match head with
  | "succ" -> (
    match args with
    | [ a ] -> Ast.succ ctx (to_term ctx a)
    | _ -> error "succ expects 1 argument")
  | "pred" -> (
    match args with
    | [ a ] -> Ast.pred ctx (to_term ctx a)
    | _ -> error "pred expects 1 argument")
  | "+" | "-" -> (
    match args with
    | [ a; Atom k ] -> (
      match int_of_string_opt k with
      | Some k ->
        let k = if head = "+" then k else -k in
        Ast.plus ctx (to_term ctx a) k
      | None -> error "%s expects an integer offset" head)
    | _ -> error "%s expects a term and an integer" head)
  | "ite" -> (
    match args with
    | [ c; a; b ] ->
      Ast.tite ctx (to_formula ctx c) (to_term ctx a) (to_term ctx b)
    | _ -> error "ite expects 3 arguments")
  | name ->
    check_name name;
    if args = [] then error "application of %S with no arguments" name;
    Ast.app ctx name (List.map (to_term ctx) args)

let formula ctx text =
  match Sexp.parse_one text with
  | exception Sexp.Error msg -> error "%s" msg
  | s -> (
    try to_formula ctx s with Invalid_argument msg -> error "%s" msg)

let formula_of_file ctx path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  formula ctx text
