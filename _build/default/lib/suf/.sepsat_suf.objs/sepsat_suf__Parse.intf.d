lib/suf/parse.mli: Ast
