lib/suf/smtlib.ml: Ast Format Hashtbl List Option Sexp String
