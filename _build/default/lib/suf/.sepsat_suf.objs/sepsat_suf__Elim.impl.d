lib/suf/elim.ml: Ast Hashtbl List Polarity Sepsat_util
