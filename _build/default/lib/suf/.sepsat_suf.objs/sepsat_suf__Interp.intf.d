lib/suf/interp.mli: Ast
