lib/suf/parse.ml: Ast Format List Sexp
