lib/suf/elim.mli: Ast Sepsat_util
