lib/suf/ast.ml: Format Hashtbl List Printf
