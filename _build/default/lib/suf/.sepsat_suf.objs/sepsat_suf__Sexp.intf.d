lib/suf/sexp.mli:
