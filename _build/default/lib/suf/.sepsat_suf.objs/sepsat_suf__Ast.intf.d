lib/suf/ast.mli: Format
