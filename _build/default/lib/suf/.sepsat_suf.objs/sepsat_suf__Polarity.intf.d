lib/suf/polarity.mli: Ast Sepsat_util
