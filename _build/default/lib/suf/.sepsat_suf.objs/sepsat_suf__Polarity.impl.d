lib/suf/polarity.ml: Ast Hashtbl List Sepsat_util
