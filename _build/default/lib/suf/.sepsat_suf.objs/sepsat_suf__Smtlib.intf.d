lib/suf/smtlib.mli: Ast
