lib/suf/sexp.ml: Format List String
