lib/suf/interp.ml: Ast Hashtbl List String
