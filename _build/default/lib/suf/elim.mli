(** Elimination of uninterpreted function and predicate applications
    (paper §2.1.1).

    Two validity-preserving schemes are provided:

    - {!eliminate} — the Bryant-German-Velev nested-ITE scheme used by the
      paper: the i-th application [f(ā_i)] becomes
      [ITE(ā_i = ā_1, vf_1, ITE(ā_i = ā_2, vf_2, ..., vf_i))], which bakes in
      functional consistency. Fresh constants introduced for p-function
      symbols are reported in [p_consts] (the set [V_p] of paper §4 step 1).
    - {!ackermannize} — classical Ackermann expansion, used as an independent
      cross-check: fresh constants plus explicit functional-consistency
      antecedents.

    Both leave a *separation logic* formula: symbolic constants, succ/pred,
    ITE, equalities, inequalities and Boolean structure only. *)

type def = {
  fresh : string;  (** introduced symbolic (Boolean) constant *)
  symbol : string;  (** the eliminated function/predicate symbol *)
  args : Ast.term list;  (** arguments, already in eliminated form *)
  is_predicate : bool;
}

type result = {
  formula : Ast.formula;  (** application-free; valid iff the input is *)
  p_consts : Sepsat_util.Sset.t;
      (** symbolic constants interpretable maximally diversely: p-classified
          input constants plus fresh constants of p-function symbols *)
  defs : def list;
      (** introduction order; lets tests extend an interpretation of the
          original formula to the fresh constants *)
}

val eliminate : Ast.ctx -> Ast.formula -> result

val ackermannize : Ast.ctx -> Ast.formula -> result
(** [p_consts] is empty: Ackermann expansion does not exploit positive
    equality. *)
